file(REMOVE_RECURSE
  "CMakeFiles/sgxb_common.dir/check.cc.o"
  "CMakeFiles/sgxb_common.dir/check.cc.o.d"
  "CMakeFiles/sgxb_common.dir/flags.cc.o"
  "CMakeFiles/sgxb_common.dir/flags.cc.o.d"
  "CMakeFiles/sgxb_common.dir/log.cc.o"
  "CMakeFiles/sgxb_common.dir/log.cc.o.d"
  "CMakeFiles/sgxb_common.dir/rng.cc.o"
  "CMakeFiles/sgxb_common.dir/rng.cc.o.d"
  "CMakeFiles/sgxb_common.dir/stats.cc.o"
  "CMakeFiles/sgxb_common.dir/stats.cc.o.d"
  "CMakeFiles/sgxb_common.dir/table.cc.o"
  "CMakeFiles/sgxb_common.dir/table.cc.o.d"
  "libsgxb_common.a"
  "libsgxb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
