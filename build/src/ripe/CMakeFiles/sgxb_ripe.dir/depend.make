# Empty dependencies file for sgxb_ripe.
# This may be replaced when dependencies are built.
