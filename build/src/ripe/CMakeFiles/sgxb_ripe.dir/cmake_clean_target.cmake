file(REMOVE_RECURSE
  "libsgxb_ripe.a"
)
