file(REMOVE_RECURSE
  "CMakeFiles/sgxb_ripe.dir/ripe.cc.o"
  "CMakeFiles/sgxb_ripe.dir/ripe.cc.o.d"
  "libsgxb_ripe.a"
  "libsgxb_ripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_ripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
