file(REMOVE_RECURSE
  "libsgxb_sim.a"
)
