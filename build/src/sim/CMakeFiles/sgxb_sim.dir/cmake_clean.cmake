file(REMOVE_RECURSE
  "CMakeFiles/sgxb_sim.dir/cache.cc.o"
  "CMakeFiles/sgxb_sim.dir/cache.cc.o.d"
  "CMakeFiles/sgxb_sim.dir/epc.cc.o"
  "CMakeFiles/sgxb_sim.dir/epc.cc.o.d"
  "CMakeFiles/sgxb_sim.dir/machine.cc.o"
  "CMakeFiles/sgxb_sim.dir/machine.cc.o.d"
  "libsgxb_sim.a"
  "libsgxb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
