# Empty dependencies file for sgxb_sim.
# This may be replaced when dependencies are built.
