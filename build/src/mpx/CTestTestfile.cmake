# CMake generated Testfile for 
# Source directory: /root/repo/src/mpx
# Build directory: /root/repo/build/src/mpx
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
