file(REMOVE_RECURSE
  "libsgxb_mpx.a"
)
