# Empty dependencies file for sgxb_mpx.
# This may be replaced when dependencies are built.
