file(REMOVE_RECURSE
  "CMakeFiles/sgxb_mpx.dir/mpx_runtime.cc.o"
  "CMakeFiles/sgxb_mpx.dir/mpx_runtime.cc.o.d"
  "libsgxb_mpx.a"
  "libsgxb_mpx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_mpx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
