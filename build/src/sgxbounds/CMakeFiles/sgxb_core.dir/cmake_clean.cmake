file(REMOVE_RECURSE
  "CMakeFiles/sgxb_core.dir/boundless.cc.o"
  "CMakeFiles/sgxb_core.dir/boundless.cc.o.d"
  "CMakeFiles/sgxb_core.dir/bounds_runtime.cc.o"
  "CMakeFiles/sgxb_core.dir/bounds_runtime.cc.o.d"
  "CMakeFiles/sgxb_core.dir/libc.cc.o"
  "CMakeFiles/sgxb_core.dir/libc.cc.o.d"
  "CMakeFiles/sgxb_core.dir/metadata.cc.o"
  "CMakeFiles/sgxb_core.dir/metadata.cc.o.d"
  "libsgxb_core.a"
  "libsgxb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
