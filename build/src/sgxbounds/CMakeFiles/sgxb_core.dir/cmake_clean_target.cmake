file(REMOVE_RECURSE
  "libsgxb_core.a"
)
