file(REMOVE_RECURSE
  "libsgxb_enclave.a"
)
