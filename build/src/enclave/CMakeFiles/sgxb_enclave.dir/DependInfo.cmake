
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enclave/address_space.cc" "src/enclave/CMakeFiles/sgxb_enclave.dir/address_space.cc.o" "gcc" "src/enclave/CMakeFiles/sgxb_enclave.dir/address_space.cc.o.d"
  "/root/repo/src/enclave/enclave.cc" "src/enclave/CMakeFiles/sgxb_enclave.dir/enclave.cc.o" "gcc" "src/enclave/CMakeFiles/sgxb_enclave.dir/enclave.cc.o.d"
  "/root/repo/src/enclave/page_manager.cc" "src/enclave/CMakeFiles/sgxb_enclave.dir/page_manager.cc.o" "gcc" "src/enclave/CMakeFiles/sgxb_enclave.dir/page_manager.cc.o.d"
  "/root/repo/src/enclave/trap.cc" "src/enclave/CMakeFiles/sgxb_enclave.dir/trap.cc.o" "gcc" "src/enclave/CMakeFiles/sgxb_enclave.dir/trap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sgxb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
