file(REMOVE_RECURSE
  "CMakeFiles/sgxb_enclave.dir/address_space.cc.o"
  "CMakeFiles/sgxb_enclave.dir/address_space.cc.o.d"
  "CMakeFiles/sgxb_enclave.dir/enclave.cc.o"
  "CMakeFiles/sgxb_enclave.dir/enclave.cc.o.d"
  "CMakeFiles/sgxb_enclave.dir/page_manager.cc.o"
  "CMakeFiles/sgxb_enclave.dir/page_manager.cc.o.d"
  "CMakeFiles/sgxb_enclave.dir/trap.cc.o"
  "CMakeFiles/sgxb_enclave.dir/trap.cc.o.d"
  "libsgxb_enclave.a"
  "libsgxb_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
