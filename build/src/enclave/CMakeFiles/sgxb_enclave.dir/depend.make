# Empty dependencies file for sgxb_enclave.
# This may be replaced when dependencies are built.
