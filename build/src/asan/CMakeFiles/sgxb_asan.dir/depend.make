# Empty dependencies file for sgxb_asan.
# This may be replaced when dependencies are built.
