file(REMOVE_RECURSE
  "libsgxb_asan.a"
)
