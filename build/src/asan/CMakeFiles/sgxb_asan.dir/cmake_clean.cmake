file(REMOVE_RECURSE
  "CMakeFiles/sgxb_asan.dir/asan_runtime.cc.o"
  "CMakeFiles/sgxb_asan.dir/asan_runtime.cc.o.d"
  "libsgxb_asan.a"
  "libsgxb_asan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_asan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
