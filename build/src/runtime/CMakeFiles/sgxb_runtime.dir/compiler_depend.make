# Empty compiler generated dependencies file for sgxb_runtime.
# This may be replaced when dependencies are built.
