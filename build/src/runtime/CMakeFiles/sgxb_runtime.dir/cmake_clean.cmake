file(REMOVE_RECURSE
  "CMakeFiles/sgxb_runtime.dir/heap.cc.o"
  "CMakeFiles/sgxb_runtime.dir/heap.cc.o.d"
  "CMakeFiles/sgxb_runtime.dir/stack.cc.o"
  "CMakeFiles/sgxb_runtime.dir/stack.cc.o.d"
  "CMakeFiles/sgxb_runtime.dir/syscall_shim.cc.o"
  "CMakeFiles/sgxb_runtime.dir/syscall_shim.cc.o.d"
  "CMakeFiles/sgxb_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/sgxb_runtime.dir/thread_pool.cc.o.d"
  "libsgxb_runtime.a"
  "libsgxb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
