file(REMOVE_RECURSE
  "libsgxb_runtime.a"
)
