
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/heap.cc" "src/runtime/CMakeFiles/sgxb_runtime.dir/heap.cc.o" "gcc" "src/runtime/CMakeFiles/sgxb_runtime.dir/heap.cc.o.d"
  "/root/repo/src/runtime/stack.cc" "src/runtime/CMakeFiles/sgxb_runtime.dir/stack.cc.o" "gcc" "src/runtime/CMakeFiles/sgxb_runtime.dir/stack.cc.o.d"
  "/root/repo/src/runtime/syscall_shim.cc" "src/runtime/CMakeFiles/sgxb_runtime.dir/syscall_shim.cc.o" "gcc" "src/runtime/CMakeFiles/sgxb_runtime.dir/syscall_shim.cc.o.d"
  "/root/repo/src/runtime/thread_pool.cc" "src/runtime/CMakeFiles/sgxb_runtime.dir/thread_pool.cc.o" "gcc" "src/runtime/CMakeFiles/sgxb_runtime.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/enclave/CMakeFiles/sgxb_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sgxb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
