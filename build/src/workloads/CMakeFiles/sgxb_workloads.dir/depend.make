# Empty dependencies file for sgxb_workloads.
# This may be replaced when dependencies are built.
