file(REMOVE_RECURSE
  "libsgxb_workloads.a"
)
