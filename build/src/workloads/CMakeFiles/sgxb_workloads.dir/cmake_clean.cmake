file(REMOVE_RECURSE
  "CMakeFiles/sgxb_workloads.dir/parsec.cc.o"
  "CMakeFiles/sgxb_workloads.dir/parsec.cc.o.d"
  "CMakeFiles/sgxb_workloads.dir/phoenix.cc.o"
  "CMakeFiles/sgxb_workloads.dir/phoenix.cc.o.d"
  "CMakeFiles/sgxb_workloads.dir/spec.cc.o"
  "CMakeFiles/sgxb_workloads.dir/spec.cc.o.d"
  "CMakeFiles/sgxb_workloads.dir/workload.cc.o"
  "CMakeFiles/sgxb_workloads.dir/workload.cc.o.d"
  "libsgxb_workloads.a"
  "libsgxb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
