file(REMOVE_RECURSE
  "libsgxb_policy.a"
)
