file(REMOVE_RECURSE
  "CMakeFiles/sgxb_policy.dir/policy.cc.o"
  "CMakeFiles/sgxb_policy.dir/policy.cc.o.d"
  "libsgxb_policy.a"
  "libsgxb_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
