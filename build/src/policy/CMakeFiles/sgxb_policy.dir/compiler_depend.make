# Empty compiler generated dependencies file for sgxb_policy.
# This may be replaced when dependencies are built.
