file(REMOVE_RECURSE
  "libsgxb_ir.a"
)
