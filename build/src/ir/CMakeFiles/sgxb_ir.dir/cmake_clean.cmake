file(REMOVE_RECURSE
  "CMakeFiles/sgxb_ir.dir/builder.cc.o"
  "CMakeFiles/sgxb_ir.dir/builder.cc.o.d"
  "CMakeFiles/sgxb_ir.dir/interp.cc.o"
  "CMakeFiles/sgxb_ir.dir/interp.cc.o.d"
  "CMakeFiles/sgxb_ir.dir/ir.cc.o"
  "CMakeFiles/sgxb_ir.dir/ir.cc.o.d"
  "CMakeFiles/sgxb_ir.dir/passes.cc.o"
  "CMakeFiles/sgxb_ir.dir/passes.cc.o.d"
  "libsgxb_ir.a"
  "libsgxb_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
