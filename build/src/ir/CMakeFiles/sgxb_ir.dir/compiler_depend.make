# Empty compiler generated dependencies file for sgxb_ir.
# This may be replaced when dependencies are built.
