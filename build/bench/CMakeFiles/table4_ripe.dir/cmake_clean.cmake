file(REMOVE_RECURSE
  "CMakeFiles/table4_ripe.dir/table4_ripe.cc.o"
  "CMakeFiles/table4_ripe.dir/table4_ripe.cc.o.d"
  "table4_ripe"
  "table4_ripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
