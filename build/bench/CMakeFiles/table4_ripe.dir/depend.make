# Empty dependencies file for table4_ripe.
# This may be replaced when dependencies are built.
