file(REMOVE_RECURSE
  "CMakeFiles/fig07_overheads.dir/fig07_overheads.cc.o"
  "CMakeFiles/fig07_overheads.dir/fig07_overheads.cc.o.d"
  "fig07_overheads"
  "fig07_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
