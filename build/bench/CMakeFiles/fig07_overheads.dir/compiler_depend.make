# Empty compiler generated dependencies file for fig07_overheads.
# This may be replaced when dependencies are built.
