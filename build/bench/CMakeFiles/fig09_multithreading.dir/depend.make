# Empty dependencies file for fig09_multithreading.
# This may be replaced when dependencies are built.
