file(REMOVE_RECURSE
  "CMakeFiles/fig09_multithreading.dir/fig09_multithreading.cc.o"
  "CMakeFiles/fig09_multithreading.dir/fig09_multithreading.cc.o.d"
  "fig09_multithreading"
  "fig09_multithreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_multithreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
