
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/run_workload.cc" "bench/CMakeFiles/run_workload.dir/run_workload.cc.o" "gcc" "bench/CMakeFiles/run_workload.dir/run_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/sgxb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/sgxb_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sgxbounds/CMakeFiles/sgxb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asan/CMakeFiles/sgxb_asan.dir/DependInfo.cmake"
  "/root/repo/build/src/mpx/CMakeFiles/sgxb_mpx.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sgxb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/sgxb_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sgxb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
