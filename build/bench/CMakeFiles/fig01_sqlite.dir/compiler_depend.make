# Empty compiler generated dependencies file for fig01_sqlite.
# This may be replaced when dependencies are built.
