file(REMOVE_RECURSE
  "CMakeFiles/fig01_sqlite.dir/fig01_sqlite.cc.o"
  "CMakeFiles/fig01_sqlite.dir/fig01_sqlite.cc.o.d"
  "fig01_sqlite"
  "fig01_sqlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sqlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
