# Empty dependencies file for fig11_spec_sgx.
# This may be replaced when dependencies are built.
