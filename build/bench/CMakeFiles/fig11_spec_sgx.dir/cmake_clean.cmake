file(REMOVE_RECURSE
  "CMakeFiles/fig11_spec_sgx.dir/fig11_spec_sgx.cc.o"
  "CMakeFiles/fig11_spec_sgx.dir/fig11_spec_sgx.cc.o.d"
  "fig11_spec_sgx"
  "fig11_spec_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_spec_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
