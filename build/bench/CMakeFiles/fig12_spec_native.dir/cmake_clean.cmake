file(REMOVE_RECURSE
  "CMakeFiles/fig12_spec_native.dir/fig12_spec_native.cc.o"
  "CMakeFiles/fig12_spec_native.dir/fig12_spec_native.cc.o.d"
  "fig12_spec_native"
  "fig12_spec_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_spec_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
