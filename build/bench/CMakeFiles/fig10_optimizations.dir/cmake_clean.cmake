file(REMOVE_RECURSE
  "CMakeFiles/fig10_optimizations.dir/fig10_optimizations.cc.o"
  "CMakeFiles/fig10_optimizations.dir/fig10_optimizations.cc.o.d"
  "fig10_optimizations"
  "fig10_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
