file(REMOVE_RECURSE
  "CMakeFiles/fig08_working_set.dir/fig08_working_set.cc.o"
  "CMakeFiles/fig08_working_set.dir/fig08_working_set.cc.o.d"
  "fig08_working_set"
  "fig08_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
