# Empty compiler generated dependencies file for fig08_working_set.
# This may be replaced when dependencies are built.
