file(REMOVE_RECURSE
  "CMakeFiles/sec7_case_attacks.dir/sec7_case_attacks.cc.o"
  "CMakeFiles/sec7_case_attacks.dir/sec7_case_attacks.cc.o.d"
  "sec7_case_attacks"
  "sec7_case_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_case_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
