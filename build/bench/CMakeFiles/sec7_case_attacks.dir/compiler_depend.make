# Empty compiler generated dependencies file for sec7_case_attacks.
# This may be replaced when dependencies are built.
