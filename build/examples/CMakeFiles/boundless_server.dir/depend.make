# Empty dependencies file for boundless_server.
# This may be replaced when dependencies are built.
