file(REMOVE_RECURSE
  "CMakeFiles/boundless_server.dir/boundless_server.cpp.o"
  "CMakeFiles/boundless_server.dir/boundless_server.cpp.o.d"
  "boundless_server"
  "boundless_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundless_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
