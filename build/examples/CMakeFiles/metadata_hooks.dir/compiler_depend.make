# Empty compiler generated dependencies file for metadata_hooks.
# This may be replaced when dependencies are built.
