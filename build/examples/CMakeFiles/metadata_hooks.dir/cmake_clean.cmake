file(REMOVE_RECURSE
  "CMakeFiles/metadata_hooks.dir/metadata_hooks.cpp.o"
  "CMakeFiles/metadata_hooks.dir/metadata_hooks.cpp.o.d"
  "metadata_hooks"
  "metadata_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
