file(REMOVE_RECURSE
  "CMakeFiles/heartbleed_demo.dir/heartbleed_demo.cpp.o"
  "CMakeFiles/heartbleed_demo.dir/heartbleed_demo.cpp.o.d"
  "heartbleed_demo"
  "heartbleed_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbleed_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
