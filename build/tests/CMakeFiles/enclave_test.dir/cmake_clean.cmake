file(REMOVE_RECURSE
  "CMakeFiles/enclave_test.dir/enclave_test.cc.o"
  "CMakeFiles/enclave_test.dir/enclave_test.cc.o.d"
  "enclave_test"
  "enclave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
