file(REMOVE_RECURSE
  "CMakeFiles/ripe_test.dir/ripe_test.cc.o"
  "CMakeFiles/ripe_test.dir/ripe_test.cc.o.d"
  "ripe_test"
  "ripe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
