# Empty dependencies file for ripe_test.
# This may be replaced when dependencies are built.
