# Empty compiler generated dependencies file for heap_fuzz_test.
# This may be replaced when dependencies are built.
