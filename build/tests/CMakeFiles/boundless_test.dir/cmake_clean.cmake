file(REMOVE_RECURSE
  "CMakeFiles/boundless_test.dir/boundless_test.cc.o"
  "CMakeFiles/boundless_test.dir/boundless_test.cc.o.d"
  "boundless_test"
  "boundless_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
