# Empty dependencies file for boundless_test.
# This may be replaced when dependencies are built.
