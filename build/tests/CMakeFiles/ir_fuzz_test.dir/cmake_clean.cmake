file(REMOVE_RECURSE
  "CMakeFiles/ir_fuzz_test.dir/ir_fuzz_test.cc.o"
  "CMakeFiles/ir_fuzz_test.dir/ir_fuzz_test.cc.o.d"
  "ir_fuzz_test"
  "ir_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
