# Empty dependencies file for tagged_ptr_test.
# This may be replaced when dependencies are built.
