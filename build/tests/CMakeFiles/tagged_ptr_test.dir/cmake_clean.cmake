file(REMOVE_RECURSE
  "CMakeFiles/tagged_ptr_test.dir/tagged_ptr_test.cc.o"
  "CMakeFiles/tagged_ptr_test.dir/tagged_ptr_test.cc.o.d"
  "tagged_ptr_test"
  "tagged_ptr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagged_ptr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
