# Empty compiler generated dependencies file for libc_fuzz_test.
# This may be replaced when dependencies are built.
