file(REMOVE_RECURSE
  "CMakeFiles/libc_fuzz_test.dir/libc_fuzz_test.cc.o"
  "CMakeFiles/libc_fuzz_test.dir/libc_fuzz_test.cc.o.d"
  "libc_fuzz_test"
  "libc_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libc_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
