file(REMOVE_RECURSE
  "CMakeFiles/bounds_runtime_test.dir/bounds_runtime_test.cc.o"
  "CMakeFiles/bounds_runtime_test.dir/bounds_runtime_test.cc.o.d"
  "bounds_runtime_test"
  "bounds_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
