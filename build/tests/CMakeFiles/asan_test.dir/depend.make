# Empty dependencies file for asan_test.
# This may be replaced when dependencies are built.
