# Empty compiler generated dependencies file for asan_test.
# This may be replaced when dependencies are built.
