file(REMOVE_RECURSE
  "CMakeFiles/asan_test.dir/asan_test.cc.o"
  "CMakeFiles/asan_test.dir/asan_test.cc.o.d"
  "asan_test"
  "asan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
