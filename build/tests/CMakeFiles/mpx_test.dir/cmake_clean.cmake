file(REMOVE_RECURSE
  "CMakeFiles/mpx_test.dir/mpx_test.cc.o"
  "CMakeFiles/mpx_test.dir/mpx_test.cc.o.d"
  "mpx_test"
  "mpx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
