# Empty dependencies file for mpx_test.
# This may be replaced when dependencies are built.
