// End-to-end tests of the trace record/replay subsystem: a same-configuration
// replay must reproduce the live run's PerfCounters and cycle totals
// bit-for-bit (every field, every workload shape — single- and multi-threaded,
// completed and crashed), the EPC sweeper must match a full per-point replay
// exactly, and the record-once/replay-many sweep must beat live re-execution
// by the margin the subsystem exists for.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/runtime/syscall_shim.h"
#include "src/trace/record.h"
#include "src/trace/sweep.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_replay.h"

namespace sgxb {
namespace {

// Compares EVERY PerfCounters field; on mismatch names the field.
void ExpectCountersEqual(const PerfCounters& a, const PerfCounters& b,
                         const std::string& what) {
  struct Field {
    const char* name;
    uint64_t PerfCounters::*member;
  };
  static const Field kFields[] = {
      {"cycles", &PerfCounters::cycles},
      {"alu_ops", &PerfCounters::alu_ops},
      {"branches", &PerfCounters::branches},
      {"fp_ops", &PerfCounters::fp_ops},
      {"calls", &PerfCounters::calls},
      {"syscalls", &PerfCounters::syscalls},
      {"loads", &PerfCounters::loads},
      {"stores", &PerfCounters::stores},
      {"metadata_loads", &PerfCounters::metadata_loads},
      {"metadata_stores", &PerfCounters::metadata_stores},
      {"l1_accesses", &PerfCounters::l1_accesses},
      {"l1_misses", &PerfCounters::l1_misses},
      {"l2_misses", &PerfCounters::l2_misses},
      {"llc_accesses", &PerfCounters::llc_accesses},
      {"llc_misses", &PerfCounters::llc_misses},
      {"epc_faults", &PerfCounters::epc_faults},
      {"minor_faults", &PerfCounters::minor_faults},
      {"bounds_checks", &PerfCounters::bounds_checks},
      {"bounds_violations", &PerfCounters::bounds_violations},
      {"ecalls", &PerfCounters::ecalls},
      {"ocalls", &PerfCounters::ocalls},
      {"transition_cycles", &PerfCounters::transition_cycles},
  };
  for (const Field& f : kFields) {
    EXPECT_EQ(a.*f.member, b.*f.member) << what << ": field " << f.name;
  }
}

RecordedRun Record(const char* workload, PolicyKind kind, SizeClass size,
                   uint32_t threads = 1) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find(workload);
  EXPECT_NE(info, nullptr) << workload;
  MachineSpec spec;
  WorkloadConfig cfg;
  cfg.size = size;
  cfg.threads = threads;
  return RecordWorkloadRun(*info, kind, spec, PolicyOptions{}, cfg);
}

// Acceptance core: replaying under the recording configuration reproduces the
// live run exactly — three workloads, two policies, including a multithreaded
// run (kmeans at 4 simulated threads fans the trace across 5 cpus).
TEST(TraceReplay, BitIdenticalAcrossWorkloadsAndPolicies) {
  struct Case {
    const char* workload;
    uint32_t threads;
  };
  const Case cases[] = {{"kmeans", 4}, {"matrixmul", 1}, {"wordcount", 1}};
  const PolicyKind policies[] = {PolicyKind::kSgxBounds, PolicyKind::kAsan};
  for (const Case& c : cases) {
    for (PolicyKind kind : policies) {
      const std::string what =
          std::string(c.workload) + "/" + PolicyName(kind);
      const RecordedRun rec = Record(c.workload, kind, SizeClass::kXS, c.threads);
      ASSERT_FALSE(rec.live.crashed) << what;
      const ReplayResult replay = ReplayTrace(rec.trace);
      EXPECT_EQ(replay.cycles, rec.live.cycles) << what;
      ExpectCountersEqual(replay.counters, rec.live.counters, what);
      if (c.threads > 1) {
        EXPECT_GT(replay.cpu_count, 1u) << what << ": expected a multi-cpu trace";
      }
    }
  }
}

// A run that dies mid-flight (MPX exhausts the address space reserving bounds
// tables on astar) records up to the trap; the replay of that prefix must
// reproduce the crashed run's counters bit-for-bit too.
TEST(TraceReplay, CrashedRunReplaysBitIdentical) {
  const RecordedRun rec = Record("astar", PolicyKind::kMpx, SizeClass::kM);
  ASSERT_TRUE(rec.live.crashed) << "expected astar/MPX/M to OOM";
  EXPECT_EQ(rec.trace.summary.crashed, 1u);
  const ReplayResult replay = ReplayTrace(rec.trace);
  EXPECT_TRUE(replay.crashed);
  EXPECT_EQ(replay.trap_kind, rec.trace.summary.trap_kind);
  EXPECT_EQ(replay.cycles, rec.live.cycles);
  ExpectCountersEqual(replay.counters, rec.live.counters, "astar/MPX crash");
}

TEST(TraceReplay, SaveLoadRoundTripPreservesReplay) {
  const RecordedRun rec = Record("matrixmul", PolicyKind::kSgxBounds, SizeClass::kXS);
  const std::string path = ::testing::TempDir() + "trace_roundtrip.sgxtrace";
  std::string error;
  ASSERT_TRUE(SaveTrace(rec.trace, path, &error)) << error;
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(loaded.header.workload, rec.trace.header.workload);
  EXPECT_EQ(loaded.header.cost_table_id, rec.trace.header.cost_table_id);
  EXPECT_EQ(loaded.summary.event_count, rec.trace.summary.event_count);
  EXPECT_EQ(loaded.summary.stream_hash, rec.trace.summary.stream_hash);
  EXPECT_EQ(loaded.events, rec.trace.events);

  const ReplayResult replay = ReplayTrace(loaded);
  EXPECT_EQ(replay.cycles, rec.live.cycles);
  ExpectCountersEqual(replay.counters, rec.live.counters, "round-trip");
}

// The ECALL/OCALL transition axis: a live run with transitions enabled
// writes a v2 trace whose replay reproduces the new counters bit-for-bit,
// and the extra cost-table fields survive a save/load round trip.
TEST(TraceReplay, TransitionCostsReplayBitIdentical) {
  TraceRecorder recorder("transitions/manual", "");
  MachineSpec spec;
  spec.costs.EnableTransitions();
  spec.trace = &recorder;
  constexpr uint32_t kRequests = 50;
  const RunResult live =
      RunPolicyKind(PolicyKind::kSgxBounds, spec, PolicyOptions{}, [&](auto& env) {
        SyscallShim shim(&env.enclave);
        auto buf = env.policy.Malloc(env.cpu, 4096);
        const std::vector<uint8_t> payload(64, 0x5a);
        for (uint32_t i = 0; i < kRequests; ++i) {
          env.cpu.Ecall();
          const uint32_t addr = env.policy.AddrOf(buf);
          shim.Recv(env.cpu, addr, payload, 0, 4096);
          env.cpu.MemAccess(addr, 64, AccessClass::kAppLoad);
          shim.Send(env.cpu, addr, 64);
        }
      });
  ASSERT_FALSE(live.crashed);
  EXPECT_EQ(live.counters.ecalls, kRequests);
  EXPECT_EQ(live.counters.ocalls, 2 * kRequests);  // recv + send per request
  EXPECT_EQ(live.counters.transition_cycles,
            live.counters.ecalls * spec.costs.ecall +
                live.counters.ocalls * spec.costs.OcallCost());

  const Trace trace = recorder.TakeTrace();
  EXPECT_EQ(trace.header.version, kTraceVersionTransitions);

  const ReplayResult replay = ReplayTrace(trace);
  EXPECT_EQ(replay.cycles, live.cycles);
  ExpectCountersEqual(replay.counters, live.counters, "transitions");

  const std::string path = ::testing::TempDir() + "trace_transitions.sgxtrace";
  std::string error;
  ASSERT_TRUE(SaveTrace(trace, path, &error)) << error;
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded, &error)) << error;
  std::remove(path.c_str());
  EXPECT_EQ(loaded.header.version, kTraceVersionTransitions);
  EXPECT_TRUE(loaded.header.costs == trace.header.costs);
  const ReplayResult roundtrip = ReplayTrace(loaded);
  ExpectCountersEqual(roundtrip.counters, live.counters, "transitions round-trip");
}

// With transitions DISABLED (every pre-existing configuration), the new
// counters stay zero live and replayed, and the trace stays version 1 —
// the gate that keeps all older results and golden traces bit-stable.
TEST(TraceReplay, TransitionsOffLeavesTracesAtV1) {
  const RecordedRun rec = Record("matrixmul", PolicyKind::kSgxBounds, SizeClass::kXS);
  EXPECT_EQ(rec.trace.header.version, kTraceVersion);
  EXPECT_EQ(rec.live.counters.ecalls, 0u);
  EXPECT_EQ(rec.live.counters.ocalls, 0u);
  EXPECT_EQ(rec.live.counters.transition_cycles, 0u);
  const ReplayResult replay = ReplayTrace(rec.trace);
  EXPECT_EQ(replay.counters.ecalls, 0u);
  EXPECT_EQ(replay.counters.ocalls, 0u);
  EXPECT_EQ(replay.counters.transition_cycles, 0u);
}

// The sweeper's shortcut (EPC faults never change cache behaviour) must be
// invisible: at every EPC size its result equals a full replay at that size.
TEST(EpcSweeper, MatchesFullReplayAtEverySize) {
  const RecordedRun rec = Record("kmeans", PolicyKind::kSgxBounds, SizeClass::kXS);
  const SimConfig base = SimConfigFromHeader(rec.trace.header);
  const EpcSweeper sweeper(rec.trace, base);

  EXPECT_EQ(sweeper.base_result().cycles, rec.live.cycles);

  const uint64_t mibs[] = {8, 16, 32, 64, 94, 128};
  for (uint64_t mib : mibs) {
    SimConfig cfg = base;
    cfg.epc_bytes = mib * kMiB;
    const ReplayResult full = ReplayTrace(rec.trace, cfg);
    const ReplayResult swept = sweeper.ReplayAt(mib * kMiB);
    EXPECT_EQ(swept.cycles, full.cycles) << mib << " MiB";
    EXPECT_EQ(swept.counters.cycles, full.counters.cycles) << mib << " MiB";
    EXPECT_EQ(swept.counters.epc_faults, full.counters.epc_faults) << mib << " MiB";
    // Cache behaviour is EPC-independent by construction; assert it held.
    EXPECT_EQ(full.counters.llc_misses, sweeper.base_result().counters.llc_misses)
        << mib << " MiB";
  }
}

// The point of the subsystem: a record-once/replay-many EPC sweep beats
// re-executing the workload per point by >=3x wall-clock, while producing an
// identical cycle series. 12 points, generous margin (typically 5-8x here).
TEST(EpcSweeper, SweepBeatsLiveReexecutionThreefold) {
  using Clock = std::chrono::steady_clock;
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("kmeans");
  ASSERT_NE(info, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;
  const uint64_t mibs[] = {4, 8, 12, 16, 24, 32, 48, 64, 80, 94, 112, 128};

  const auto live_start = Clock::now();
  std::vector<uint64_t> live_cycles;
  for (uint64_t mib : mibs) {
    MachineSpec spec;
    spec.epc_bytes = mib * kMiB;
    live_cycles.push_back(
        info->run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg).cycles);
  }
  const double live_s =
      std::chrono::duration<double>(Clock::now() - live_start).count();

  const auto replay_start = Clock::now();
  const RecordedRun rec =
      RecordWorkloadRun(*info, PolicyKind::kSgxBounds, MachineSpec{}, PolicyOptions{}, cfg);
  const EpcSweeper sweeper(rec.trace, SimConfigFromHeader(rec.trace.header));
  std::vector<uint64_t> swept_cycles;
  for (uint64_t mib : mibs) {
    swept_cycles.push_back(sweeper.ReplayAt(mib * kMiB).cycles);
  }
  const double replay_s =
      std::chrono::duration<double>(Clock::now() - replay_start).count();

  ASSERT_EQ(swept_cycles, live_cycles) << "sweep series diverged from live";
  EXPECT_GE(live_s, 3.0 * replay_s)
      << "record-once/replay-many not >=3x faster: live " << live_s << "s vs replay "
      << replay_s << "s over " << (sizeof(mibs) / sizeof(mibs[0])) << " points";
}

// Replaying with enclave mode off reprices the same access stream as a
// non-SGX machine: it must equal actually running outside the enclave.
TEST(TraceReplay, EnclaveOffReplayMatchesLiveNativeRun) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("matrixmul");
  ASSERT_NE(info, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;

  const RecordedRun rec =
      RecordWorkloadRun(*info, PolicyKind::kSgxBounds, MachineSpec{}, PolicyOptions{}, cfg);
  SimConfig native_cfg = SimConfigFromHeader(rec.trace.header);
  native_cfg.enclave_mode = false;
  const ReplayResult replay = ReplayTrace(rec.trace, native_cfg);

  MachineSpec native_spec;
  native_spec.enclave_mode = false;
  const RunResult live =
      info->run(PolicyKind::kSgxBounds, native_spec, PolicyOptions{}, cfg);

  EXPECT_EQ(replay.cycles, live.cycles);
  ExpectCountersEqual(replay.counters, live.counters, "enclave-off replay");
}

// Deterministic re-recording: the same workload/config/seed produces the
// exact same event stream (prerequisite for the golden-trace regression).
TEST(TraceRecorder, RerecordingIsDeterministic) {
  const RecordedRun a = Record("wordcount", PolicyKind::kSgxBounds, SizeClass::kXS);
  const RecordedRun b = Record("wordcount", PolicyKind::kSgxBounds, SizeClass::kXS);
  EXPECT_EQ(a.trace.summary.stream_hash, b.trace.summary.stream_hash);
  EXPECT_EQ(a.trace.summary.event_count, b.trace.summary.event_count);
  EXPECT_EQ(a.trace.events, b.trace.events);
}

// Truncated prefix traces (event_limit) keep the full-stream hash and count
// in the summary but retain only the prefix bytes, and still decode cleanly.
TEST(TraceRecorder, EventLimitRetainsDecodablePrefix) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("kmeans");
  ASSERT_NE(info, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;
  TraceRecorder recorder("kmeans/XS");
  recorder.set_event_limit(512);
  MachineSpec spec;
  spec.trace = &recorder;
  info->run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg);
  const Trace trace = recorder.TakeTrace();

  EXPECT_EQ(trace.summary.truncated, 1u);
  EXPECT_GT(trace.summary.event_count, 512u);

  TraceReader reader(trace);
  TraceEvent ev;
  uint64_t decoded = 0;
  while (reader.Next(&ev)) {
    ++decoded;
  }
  EXPECT_EQ(decoded, 512u);
}

// The decode-once substrate: replaying a DecodedTrace equals streaming
// replay, and the mmap-backed zero-copy load path produces the exact same
// decode as the heap loader.
TEST(DecodedTrace, MatchesStreamingReplayAndMappedLoad) {
  const RecordedRun rec = Record("matrixmul", PolicyKind::kSgxBounds, SizeClass::kXS);
  const DecodedTrace decoded(rec.trace);
  EXPECT_EQ(decoded.event_count(), rec.trace.summary.event_count);
  EXPECT_EQ(decoded.stream_hash(), rec.trace.summary.stream_hash);

  SimConfig cfg = SimConfigFromHeader(rec.trace.header);
  cfg.epc_bytes = 16 * kMiB;
  const ReplayResult streamed = ReplayTrace(rec.trace, cfg);
  const ReplayResult from_decode = ReplayDecoded(decoded, cfg);
  EXPECT_EQ(from_decode.cycles, streamed.cycles);
  ExpectCountersEqual(from_decode.counters, streamed.counters, "decoded replay");

  const std::string path = ::testing::TempDir() + "trace_mapped.sgxtrace";
  std::string error;
  ASSERT_TRUE(SaveTrace(rec.trace, path, &error)) << error;
  MappedTrace mapped;
  ASSERT_TRUE(mapped.Load(path, &error)) << error;
  const DecodedTrace from_map(mapped.header(), mapped.summary(), mapped.events_begin(),
                              mapped.events_end());
  std::remove(path.c_str());
  EXPECT_EQ(from_map.stream_hash(), decoded.stream_hash());
  EXPECT_EQ(from_map.event_count(), decoded.event_count());
  const ReplayResult from_map_replay = ReplayDecoded(from_map, cfg);
  EXPECT_EQ(from_map_replay.cycles, streamed.cycles);
  ExpectCountersEqual(from_map_replay.counters, streamed.counters, "mmap replay");
}

// The generalized capture axes: one enclave-ON capture must re-price cost
// tables and enclave mode (not just EPC size) bit-identically to a full
// replay, and must refuse configs with a different cache geometry.
TEST(ConfigSweeper, RepricesCostTableAndEnclaveAxes) {
  const RecordedRun rec = Record("kmeans", PolicyKind::kSgxBounds, SizeClass::kXS);
  const DecodedTrace decoded(rec.trace);
  const SimConfig base = SimConfigFromHeader(rec.trace.header);
  const ConfigSweeper sweeper(decoded, base);

  std::vector<SimConfig> cases;
  {
    SimConfig pricier = base;  // scale the SGX-pressure prices
    pricier.costs.dram = 300;
    pricier.costs.mee_line = 540;
    pricier.costs.epc_fault = 90000;
    cases.push_back(pricier);
  }
  {
    SimConfig native = base;  // enclave off from an enclave-ON capture
    native.enclave_mode = false;
    cases.push_back(native);
  }
  {
    SimConfig both = base;  // cross-axis: native pricing + cheaper compute
    both.enclave_mode = false;
    both.costs.alu = 2;
    both.costs.syscall_native = 1600;
    both.epc_bytes = 8 * kMiB;  // irrelevant outside the enclave; must not leak
    cases.push_back(both);
  }
  for (size_t i = 0; i < cases.size(); ++i) {
    ASSERT_TRUE(sweeper.Covers(cases[i])) << "case " << i;
    const ReplayResult full = ReplayDecoded(decoded, cases[i]);
    const ReplayResult swept = sweeper.Replay(cases[i]);
    EXPECT_EQ(swept.cycles, full.cycles) << "case " << i;
    ExpectCountersEqual(swept.counters, full.counters,
                        "capture axis case " + std::to_string(i));
  }

  SimConfig other_geometry = base;
  other_geometry.l3_bytes = base.l3_bytes / 2;
  EXPECT_FALSE(sweeper.Covers(other_geometry))
      << "cache geometry changes hit/miss outcomes; capture must not claim it";
}

// The parallel sweep engine over a sampled 4-axis grid (EPC size, cost
// table, enclave mode, L3 geometry) must be bit-identical to a sequential
// full replay of every config — including the geometry points, which cannot
// use the capture shortcut.
TEST(SweepEngine, MatchesSequentialReplayOnSampledGrid) {
  const RecordedRun rec = Record("kmeans", PolicyKind::kSgxBounds, SizeClass::kXS);
  const DecodedTrace decoded(rec.trace);
  const SimConfig base = SimConfigFromHeader(rec.trace.header);

  std::vector<SweepRequest> grid;
  for (uint64_t epc_mib : {8, 32, 94}) {
    for (uint32_t dram : {150, 300}) {
      for (bool enclave : {true, false}) {
        for (uint64_t l3_div : {1, 2}) {
          SweepRequest req;
          req.trace = &decoded;
          req.config = base;
          req.config.epc_bytes = epc_mib * kMiB;
          req.config.costs.dram = dram;
          req.config.enclave_mode = enclave;
          req.config.l3_bytes = base.l3_bytes / l3_div;
          grid.push_back(req);
        }
      }
    }
  }

  SweepOptions opt;
  opt.threads = 4;
  SweepEngine engine(opt);
  const std::vector<ReplayResult> swept = engine.Run(grid);
  ASSERT_EQ(swept.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    const ReplayResult full = ReplayDecoded(decoded, grid[i].config);
    EXPECT_EQ(swept[i].cycles, full.cycles) << "request " << i;
    ExpectCountersEqual(swept[i].counters, full.counters,
                        "sweep request " + std::to_string(i));
  }
  EXPECT_EQ(engine.stats().requests, grid.size());
  EXPECT_EQ(engine.stats().memo_hits + engine.stats().capture_replays +
                engine.stats().full_replays,
            grid.size());
}

// --bench_threads must never change results: the same grid swept on 1, 4 and
// 16 threads produces identical ReplayResults AND identical stats (the
// dedup/memo accounting is resolved before dispatch, not by racing workers).
TEST(SweepEngine, ThreadCountInvariance) {
  const RecordedRun rec = Record("wordcount", PolicyKind::kSgxBounds, SizeClass::kXS);
  const DecodedTrace decoded(rec.trace);
  const SimConfig base = SimConfigFromHeader(rec.trace.header);

  std::vector<SweepRequest> grid;
  for (uint64_t epc_mib : {8, 16, 24, 32, 48, 64, 94, 128}) {
    for (bool enclave : {true, false}) {
      SweepRequest req;
      req.trace = &decoded;
      req.config = base;
      req.config.epc_bytes = epc_mib * kMiB;
      req.config.enclave_mode = enclave;
      grid.push_back(req);
    }
  }
  grid.push_back(grid.front());  // an in-batch duplicate must also be stable

  std::vector<std::vector<ReplayResult>> per_threads;
  std::vector<SweepStats> per_stats;
  for (uint32_t threads : {1u, 4u, 16u}) {
    SweepOptions opt;
    opt.threads = threads;
    SweepEngine engine(opt);
    per_threads.push_back(engine.Run(grid));
    per_stats.push_back(engine.stats());
  }
  for (size_t t = 1; t < per_threads.size(); ++t) {
    ASSERT_EQ(per_threads[t].size(), per_threads[0].size());
    for (size_t i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(per_threads[t][i].cycles, per_threads[0][i].cycles)
          << "threads variant " << t << ", request " << i;
      ExpectCountersEqual(per_threads[t][i].counters, per_threads[0][i].counters,
                          "threads variant " + std::to_string(t) + " request " +
                              std::to_string(i));
    }
    EXPECT_EQ(per_stats[t].memo_hits, per_stats[0].memo_hits);
    EXPECT_EQ(per_stats[t].captures_built, per_stats[0].captures_built);
    EXPECT_EQ(per_stats[t].capture_replays, per_stats[0].capture_replays);
    EXPECT_EQ(per_stats[t].full_replays, per_stats[0].full_replays);
  }

  // Re-running the same grid on the same engine must answer from the memo.
  SweepOptions opt;
  opt.threads = 4;
  SweepEngine engine(opt);
  const std::vector<ReplayResult> first = engine.Run(grid);
  const uint64_t replays_after_first =
      engine.stats().capture_replays + engine.stats().full_replays;
  const std::vector<ReplayResult> second = engine.Run(grid);
  EXPECT_EQ(engine.stats().capture_replays + engine.stats().full_replays,
            replays_after_first)
      << "second pass should be pure memo hits";
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(second[i].cycles, first[i].cycles) << "memoized request " << i;
  }
}

}  // namespace
}  // namespace sgxb
