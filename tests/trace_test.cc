// End-to-end tests of the trace record/replay subsystem: a same-configuration
// replay must reproduce the live run's PerfCounters and cycle totals
// bit-for-bit (every field, every workload shape — single- and multi-threaded,
// completed and crashed), the EPC sweeper must match a full per-point replay
// exactly, and the record-once/replay-many sweep must beat live re-execution
// by the margin the subsystem exists for.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/trace/record.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_replay.h"

namespace sgxb {
namespace {

// Compares EVERY PerfCounters field; on mismatch names the field.
void ExpectCountersEqual(const PerfCounters& a, const PerfCounters& b,
                         const std::string& what) {
  struct Field {
    const char* name;
    uint64_t PerfCounters::*member;
  };
  static const Field kFields[] = {
      {"cycles", &PerfCounters::cycles},
      {"alu_ops", &PerfCounters::alu_ops},
      {"branches", &PerfCounters::branches},
      {"fp_ops", &PerfCounters::fp_ops},
      {"calls", &PerfCounters::calls},
      {"syscalls", &PerfCounters::syscalls},
      {"loads", &PerfCounters::loads},
      {"stores", &PerfCounters::stores},
      {"metadata_loads", &PerfCounters::metadata_loads},
      {"metadata_stores", &PerfCounters::metadata_stores},
      {"l1_accesses", &PerfCounters::l1_accesses},
      {"l1_misses", &PerfCounters::l1_misses},
      {"l2_misses", &PerfCounters::l2_misses},
      {"llc_accesses", &PerfCounters::llc_accesses},
      {"llc_misses", &PerfCounters::llc_misses},
      {"epc_faults", &PerfCounters::epc_faults},
      {"minor_faults", &PerfCounters::minor_faults},
      {"bounds_checks", &PerfCounters::bounds_checks},
      {"bounds_violations", &PerfCounters::bounds_violations},
  };
  for (const Field& f : kFields) {
    EXPECT_EQ(a.*f.member, b.*f.member) << what << ": field " << f.name;
  }
}

RecordedRun Record(const char* workload, PolicyKind kind, SizeClass size,
                   uint32_t threads = 1) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find(workload);
  EXPECT_NE(info, nullptr) << workload;
  MachineSpec spec;
  WorkloadConfig cfg;
  cfg.size = size;
  cfg.threads = threads;
  return RecordWorkloadRun(*info, kind, spec, PolicyOptions{}, cfg);
}

// Acceptance core: replaying under the recording configuration reproduces the
// live run exactly — three workloads, two policies, including a multithreaded
// run (kmeans at 4 simulated threads fans the trace across 5 cpus).
TEST(TraceReplay, BitIdenticalAcrossWorkloadsAndPolicies) {
  struct Case {
    const char* workload;
    uint32_t threads;
  };
  const Case cases[] = {{"kmeans", 4}, {"matrixmul", 1}, {"wordcount", 1}};
  const PolicyKind policies[] = {PolicyKind::kSgxBounds, PolicyKind::kAsan};
  for (const Case& c : cases) {
    for (PolicyKind kind : policies) {
      const std::string what =
          std::string(c.workload) + "/" + PolicyName(kind);
      const RecordedRun rec = Record(c.workload, kind, SizeClass::kXS, c.threads);
      ASSERT_FALSE(rec.live.crashed) << what;
      const ReplayResult replay = ReplayTrace(rec.trace);
      EXPECT_EQ(replay.cycles, rec.live.cycles) << what;
      ExpectCountersEqual(replay.counters, rec.live.counters, what);
      if (c.threads > 1) {
        EXPECT_GT(replay.cpu_count, 1u) << what << ": expected a multi-cpu trace";
      }
    }
  }
}

// A run that dies mid-flight (MPX exhausts the address space reserving bounds
// tables on astar) records up to the trap; the replay of that prefix must
// reproduce the crashed run's counters bit-for-bit too.
TEST(TraceReplay, CrashedRunReplaysBitIdentical) {
  const RecordedRun rec = Record("astar", PolicyKind::kMpx, SizeClass::kM);
  ASSERT_TRUE(rec.live.crashed) << "expected astar/MPX/M to OOM";
  EXPECT_EQ(rec.trace.summary.crashed, 1u);
  const ReplayResult replay = ReplayTrace(rec.trace);
  EXPECT_TRUE(replay.crashed);
  EXPECT_EQ(replay.trap_kind, rec.trace.summary.trap_kind);
  EXPECT_EQ(replay.cycles, rec.live.cycles);
  ExpectCountersEqual(replay.counters, rec.live.counters, "astar/MPX crash");
}

TEST(TraceReplay, SaveLoadRoundTripPreservesReplay) {
  const RecordedRun rec = Record("matrixmul", PolicyKind::kSgxBounds, SizeClass::kXS);
  const std::string path = ::testing::TempDir() + "trace_roundtrip.sgxtrace";
  std::string error;
  ASSERT_TRUE(SaveTrace(rec.trace, path, &error)) << error;
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(loaded.header.workload, rec.trace.header.workload);
  EXPECT_EQ(loaded.header.cost_table_id, rec.trace.header.cost_table_id);
  EXPECT_EQ(loaded.summary.event_count, rec.trace.summary.event_count);
  EXPECT_EQ(loaded.summary.stream_hash, rec.trace.summary.stream_hash);
  EXPECT_EQ(loaded.events, rec.trace.events);

  const ReplayResult replay = ReplayTrace(loaded);
  EXPECT_EQ(replay.cycles, rec.live.cycles);
  ExpectCountersEqual(replay.counters, rec.live.counters, "round-trip");
}

// The sweeper's shortcut (EPC faults never change cache behaviour) must be
// invisible: at every EPC size its result equals a full replay at that size.
TEST(EpcSweeper, MatchesFullReplayAtEverySize) {
  const RecordedRun rec = Record("kmeans", PolicyKind::kSgxBounds, SizeClass::kXS);
  const SimConfig base = SimConfigFromHeader(rec.trace.header);
  const EpcSweeper sweeper(rec.trace, base);

  EXPECT_EQ(sweeper.base_result().cycles, rec.live.cycles);

  const uint64_t mibs[] = {8, 16, 32, 64, 94, 128};
  for (uint64_t mib : mibs) {
    SimConfig cfg = base;
    cfg.epc_bytes = mib * kMiB;
    const ReplayResult full = ReplayTrace(rec.trace, cfg);
    const ReplayResult swept = sweeper.ReplayAt(mib * kMiB);
    EXPECT_EQ(swept.cycles, full.cycles) << mib << " MiB";
    EXPECT_EQ(swept.counters.cycles, full.counters.cycles) << mib << " MiB";
    EXPECT_EQ(swept.counters.epc_faults, full.counters.epc_faults) << mib << " MiB";
    // Cache behaviour is EPC-independent by construction; assert it held.
    EXPECT_EQ(full.counters.llc_misses, sweeper.base_result().counters.llc_misses)
        << mib << " MiB";
  }
}

// The point of the subsystem: a record-once/replay-many EPC sweep beats
// re-executing the workload per point by >=3x wall-clock, while producing an
// identical cycle series. 12 points, generous margin (typically 5-8x here).
TEST(EpcSweeper, SweepBeatsLiveReexecutionThreefold) {
  using Clock = std::chrono::steady_clock;
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("kmeans");
  ASSERT_NE(info, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;
  const uint64_t mibs[] = {4, 8, 12, 16, 24, 32, 48, 64, 80, 94, 112, 128};

  const auto live_start = Clock::now();
  std::vector<uint64_t> live_cycles;
  for (uint64_t mib : mibs) {
    MachineSpec spec;
    spec.epc_bytes = mib * kMiB;
    live_cycles.push_back(
        info->run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg).cycles);
  }
  const double live_s =
      std::chrono::duration<double>(Clock::now() - live_start).count();

  const auto replay_start = Clock::now();
  const RecordedRun rec =
      RecordWorkloadRun(*info, PolicyKind::kSgxBounds, MachineSpec{}, PolicyOptions{}, cfg);
  const EpcSweeper sweeper(rec.trace, SimConfigFromHeader(rec.trace.header));
  std::vector<uint64_t> swept_cycles;
  for (uint64_t mib : mibs) {
    swept_cycles.push_back(sweeper.ReplayAt(mib * kMiB).cycles);
  }
  const double replay_s =
      std::chrono::duration<double>(Clock::now() - replay_start).count();

  ASSERT_EQ(swept_cycles, live_cycles) << "sweep series diverged from live";
  EXPECT_GE(live_s, 3.0 * replay_s)
      << "record-once/replay-many not >=3x faster: live " << live_s << "s vs replay "
      << replay_s << "s over " << (sizeof(mibs) / sizeof(mibs[0])) << " points";
}

// Replaying with enclave mode off reprices the same access stream as a
// non-SGX machine: it must equal actually running outside the enclave.
TEST(TraceReplay, EnclaveOffReplayMatchesLiveNativeRun) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("matrixmul");
  ASSERT_NE(info, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;

  const RecordedRun rec =
      RecordWorkloadRun(*info, PolicyKind::kSgxBounds, MachineSpec{}, PolicyOptions{}, cfg);
  SimConfig native_cfg = SimConfigFromHeader(rec.trace.header);
  native_cfg.enclave_mode = false;
  const ReplayResult replay = ReplayTrace(rec.trace, native_cfg);

  MachineSpec native_spec;
  native_spec.enclave_mode = false;
  const RunResult live =
      info->run(PolicyKind::kSgxBounds, native_spec, PolicyOptions{}, cfg);

  EXPECT_EQ(replay.cycles, live.cycles);
  ExpectCountersEqual(replay.counters, live.counters, "enclave-off replay");
}

// Deterministic re-recording: the same workload/config/seed produces the
// exact same event stream (prerequisite for the golden-trace regression).
TEST(TraceRecorder, RerecordingIsDeterministic) {
  const RecordedRun a = Record("wordcount", PolicyKind::kSgxBounds, SizeClass::kXS);
  const RecordedRun b = Record("wordcount", PolicyKind::kSgxBounds, SizeClass::kXS);
  EXPECT_EQ(a.trace.summary.stream_hash, b.trace.summary.stream_hash);
  EXPECT_EQ(a.trace.summary.event_count, b.trace.summary.event_count);
  EXPECT_EQ(a.trace.events, b.trace.events);
}

// Truncated prefix traces (event_limit) keep the full-stream hash and count
// in the summary but retain only the prefix bytes, and still decode cleanly.
TEST(TraceRecorder, EventLimitRetainsDecodablePrefix) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("kmeans");
  ASSERT_NE(info, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;
  TraceRecorder recorder("kmeans/XS");
  recorder.set_event_limit(512);
  MachineSpec spec;
  spec.trace = &recorder;
  info->run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg);
  const Trace trace = recorder.TakeTrace();

  EXPECT_EQ(trace.summary.truncated, 1u);
  EXPECT_GT(trace.summary.event_count, 512u);

  TraceReader reader(trace);
  TraceEvent ev;
  uint64_t decoded = 0;
  while (reader.Next(&ev)) {
    ++decoded;
  }
  EXPECT_EQ(decoded, 512u);
}

}  // namespace
}  // namespace sgxb
