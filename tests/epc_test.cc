// Tests for the EPC residency/paging simulator.

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/epc.h"

namespace sgxb {
namespace {

TEST(EpcTest, FirstTouchFaults) {
  EpcSim epc(16 * kPageSize);
  EXPECT_TRUE(epc.Touch(3));
  EXPECT_FALSE(epc.Touch(3));
  EXPECT_EQ(epc.faults(), 1u);
  EXPECT_EQ(epc.resident_pages(), 1u);
}

TEST(EpcTest, EvictsLruWhenFull) {
  EpcSim epc(4 * kPageSize);
  for (uint32_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(epc.Touch(p));
  }
  // Touch page 0 so page 1 becomes LRU.
  EXPECT_FALSE(epc.Touch(0));
  EXPECT_TRUE(epc.Touch(100));  // evicts page 1
  EXPECT_TRUE(epc.Resident(0));
  EXPECT_FALSE(epc.Resident(1));
  EXPECT_EQ(epc.evictions(), 1u);
}

TEST(EpcTest, SequentialSweepFaultsOncePerPage) {
  EpcSim epc(8 * kPageSize);
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (uint32_t p = 0; p < 8; ++p) {
      epc.Touch(p);
    }
  }
  EXPECT_EQ(epc.faults(), 8u);  // fits: only cold faults
}

TEST(EpcTest, ThrashingWorkingSet) {
  EpcSim epc(8 * kPageSize);
  // Working set of 16 pages touched round-robin: every touch faults after
  // warmup because LRU always evicted the page 8 touches ago.
  uint64_t faults_before = 0;
  for (int sweep = 0; sweep < 4; ++sweep) {
    for (uint32_t p = 0; p < 16; ++p) {
      epc.Touch(p);
    }
    if (sweep == 0) {
      faults_before = epc.faults();
      EXPECT_EQ(faults_before, 16u);
    }
  }
  EXPECT_EQ(epc.faults(), 64u);  // all touches fault
}

TEST(EpcTest, InvalidateRemovesResidency) {
  EpcSim epc(4 * kPageSize);
  epc.Touch(7);
  EXPECT_TRUE(epc.Resident(7));
  epc.Invalidate(7);
  EXPECT_FALSE(epc.Resident(7));
  EXPECT_EQ(epc.resident_pages(), 0u);
  // Invalidating a non-resident page is a no-op.
  epc.Invalidate(7);
  EXPECT_EQ(epc.resident_pages(), 0u);
}

TEST(EpcTest, ResetClearsEverything) {
  EpcSim epc(4 * kPageSize);
  epc.Touch(1);
  epc.Touch(2);
  epc.Reset();
  EXPECT_EQ(epc.resident_pages(), 0u);
  EXPECT_EQ(epc.faults(), 0u);
  EXPECT_FALSE(epc.Resident(1));
  EXPECT_TRUE(epc.Touch(1));  // faults again after reset
}

TEST(EpcTest, CapacityPagesMatchesConfig) {
  EpcSim epc(94 * kMiB);
  EXPECT_EQ(epc.capacity_pages(), 94u * 1024 / 4);
}

}  // namespace
}  // namespace sgxb
