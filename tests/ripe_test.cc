// Tests for the RIPE reproduction: the Table 4 detection matrix must hold
// exactly, and each scenario class must behave per its mechanism.

#include <gtest/gtest.h>

#include "src/ripe/ripe.h"

namespace sgxb {
namespace {

TEST(RipeTest, SixteenScenarios) {
  const auto& scenarios = RipeScenarios();
  EXPECT_EQ(scenarios.size(), 16u);
  int intra = 0;
  for (const auto& s : scenarios) {
    intra += s.intra_object ? 1 : 0;
  }
  EXPECT_EQ(intra, 8);
}

TEST(RipeTest, NativePreventsNothing) {
  const RipeSummary summary = RunRipeSuite(Defense::kNone);
  EXPECT_EQ(summary.prevented, 0);
  EXPECT_EQ(summary.succeeded, 16);
}

TEST(RipeTest, Table4MpxPreventsTwo) {
  const RipeSummary summary = RunRipeSuite(Defense::kMpx);
  EXPECT_EQ(summary.prevented, 2);
}

TEST(RipeTest, Table4AsanPreventsEight) {
  const RipeSummary summary = RunRipeSuite(Defense::kAsan);
  EXPECT_EQ(summary.prevented, 8);
}

TEST(RipeTest, Table4SgxBoundsPreventsEight) {
  const RipeSummary summary = RunRipeSuite(Defense::kSgxBounds);
  EXPECT_EQ(summary.prevented, 8);
}

TEST(RipeTest, PreventedAttacksNeverSucceed) {
  for (const Defense d :
       {Defense::kNone, Defense::kMpx, Defense::kAsan, Defense::kSgxBounds}) {
    std::vector<AttackOutcome> outcomes;
    RunRipeSuite(d, &outcomes);
    for (const auto& outcome : outcomes) {
      EXPECT_FALSE(outcome.prevented && outcome.succeeded);
    }
  }
}

TEST(RipeTest, IntraObjectEscapesEveryDefense) {
  // SS6.6: in-struct overflows escape object-granularity bounds checking.
  for (const Defense d : {Defense::kMpx, Defense::kAsan, Defense::kSgxBounds}) {
    for (const auto& scenario : RipeScenarios()) {
      if (!scenario.intra_object) {
        continue;
      }
      const AttackOutcome outcome = RunAttack(scenario, d);
      EXPECT_FALSE(outcome.prevented) << DefenseName(d) << " / " << scenario.name;
      EXPECT_TRUE(outcome.succeeded) << DefenseName(d) << " / " << scenario.name;
    }
  }
}

TEST(RipeTest, InterObjectCaughtByAsanAndSgxBounds) {
  for (const Defense d : {Defense::kAsan, Defense::kSgxBounds}) {
    for (const auto& scenario : RipeScenarios()) {
      if (scenario.intra_object) {
        continue;
      }
      const AttackOutcome outcome = RunAttack(scenario, d);
      EXPECT_TRUE(outcome.prevented) << DefenseName(d) << " / " << scenario.name;
    }
  }
}

TEST(RipeTest, MpxCatchesOnlyDirectStackSmashes) {
  for (const auto& scenario : RipeScenarios()) {
    const AttackOutcome outcome = RunAttack(scenario, Defense::kMpx);
    const bool expect_prevented = !scenario.intra_object &&
                                  scenario.technique == AttackTechnique::kDirectLoop &&
                                  scenario.location == AttackLocation::kStack;
    EXPECT_EQ(outcome.prevented, expect_prevented) << scenario.name;
  }
}

TEST(RipeTest, LibcMediatedAttacksBypassMpx) {
  // The BNDPRESERVE escape hatch: bounds die at the uninstrumented libc
  // boundary, so the copy lands.
  for (const auto& scenario : RipeScenarios()) {
    if (scenario.technique == AttackTechnique::kDirectLoop) {
      continue;
    }
    const AttackOutcome outcome = RunAttack(scenario, Defense::kMpx);
    EXPECT_TRUE(outcome.succeeded) << scenario.name;
  }
}

TEST(RipeTest, DefenseNames) {
  EXPECT_STREQ(DefenseName(Defense::kSgxBounds), "SGXBounds");
  EXPECT_STREQ(DefenseName(Defense::kNone), "native");
}

TEST(RipeTest, NarrowingExtensionCatchesIntraObject) {
  // SS8 "catching intra-object overflows": with bounds narrowing, SGXBounds
  // prevents all 16 attacks (the forward in-struct overflows now trip the
  // narrowed upper bound).
  const RipeSummary summary =
      RunRipeSuite(Defense::kSgxBounds, nullptr, /*narrow_bounds=*/true);
  EXPECT_EQ(summary.prevented, 16);
  EXPECT_EQ(summary.succeeded, 0);
}

TEST(RipeTest, NarrowingDoesNotAffectOtherDefenses) {
  EXPECT_EQ(RunRipeSuite(Defense::kMpx, nullptr, true).prevented, 2);
  EXPECT_EQ(RunRipeSuite(Defense::kAsan, nullptr, true).prevented, 8);
}

}  // namespace
}  // namespace sgxb
