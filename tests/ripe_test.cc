// Tests for the RIPE reproduction: the Table 4 detection matrix must hold
// exactly, and each scenario class must behave per its mechanism. Defenses
// are dispatched through the scheme registry (SchemeOf(kind)
// .make_ripe_defense), so every registered scheme is also checked against
// its own declared expectation.

#include <gtest/gtest.h>

#include "src/policy/registry.h"
#include "src/ripe/ripe.h"

namespace sgxb {
namespace {

TEST(RipeTest, SixteenScenarios) {
  const auto& scenarios = RipeScenarios();
  EXPECT_EQ(scenarios.size(), 16u);
  int intra = 0;
  for (const auto& s : scenarios) {
    intra += s.intra_object ? 1 : 0;
  }
  EXPECT_EQ(intra, 8);
}

TEST(RipeTest, NativePreventsNothing) {
  const RipeSummary summary = RunRipeSuite(PolicyKind::kNative);
  EXPECT_EQ(summary.prevented, 0);
  EXPECT_EQ(summary.succeeded, 16);
}

TEST(RipeTest, Table4MpxPreventsTwo) {
  const RipeSummary summary = RunRipeSuite(PolicyKind::kMpx);
  EXPECT_EQ(summary.prevented, 2);
}

TEST(RipeTest, Table4AsanPreventsEight) {
  const RipeSummary summary = RunRipeSuite(PolicyKind::kAsan);
  EXPECT_EQ(summary.prevented, 8);
}

TEST(RipeTest, Table4SgxBoundsPreventsEight) {
  const RipeSummary summary = RunRipeSuite(PolicyKind::kSgxBounds);
  EXPECT_EQ(summary.prevented, 8);
}

// Every registered scheme - including plugged-in ones like l4ptr - must
// prevent exactly what its descriptor declares. This is the registry-level
// Table 4: a scheme whose defense drifts from its claim fails here.
TEST(RipeTest, EverySchemeMatchesItsDeclaredExpectation) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    const RipeSummary summary = RunRipeSuite(d->kind);
    EXPECT_EQ(summary.prevented, d->ripe_expected_prevented) << d->id;
    EXPECT_EQ(summary.total, 16) << d->id;
  }
}

TEST(RipeTest, PreventedAttacksNeverSucceed) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    std::vector<AttackOutcome> outcomes;
    RunRipeSuite(d->kind, &outcomes);
    for (const auto& outcome : outcomes) {
      EXPECT_FALSE(outcome.prevented && outcome.succeeded) << d->id;
    }
  }
}

TEST(RipeTest, IntraObjectEscapesEveryDefense) {
  // SS6.6: in-struct overflows escape object-granularity bounds checking.
  // True for every registered scheme (they are all object-granularity).
  for (const SchemeDescriptor* d : AllSchemes()) {
    if (!d->caps.detects_oob_write) {
      continue;  // native prevents nothing, covered above
    }
    for (const auto& scenario : RipeScenarios()) {
      if (!scenario.intra_object) {
        continue;
      }
      const AttackOutcome outcome = RunAttack(scenario, d->kind);
      EXPECT_FALSE(outcome.prevented) << d->id << " / " << scenario.name;
      EXPECT_TRUE(outcome.succeeded) << d->id << " / " << scenario.name;
    }
  }
}

TEST(RipeTest, InterObjectCaughtByAsanAndSgxBounds) {
  for (const PolicyKind kind : {PolicyKind::kAsan, PolicyKind::kSgxBounds}) {
    for (const auto& scenario : RipeScenarios()) {
      if (scenario.intra_object) {
        continue;
      }
      const AttackOutcome outcome = RunAttack(scenario, kind);
      EXPECT_TRUE(outcome.prevented) << PolicyName(kind) << " / " << scenario.name;
    }
  }
}

TEST(RipeTest, InterObjectCaughtByL4Ptr) {
  // The fifth scheme carries both bounds in the pointer tag: direct stores
  // and the fortified libc both see them, so all 8 inter-object attacks are
  // prevented without any in-memory metadata.
  for (const auto& scenario : RipeScenarios()) {
    const AttackOutcome outcome = RunAttack(scenario, PolicyKind::kL4Ptr);
    EXPECT_EQ(outcome.prevented, !scenario.intra_object) << scenario.name;
  }
}

TEST(RipeTest, MpxCatchesOnlyDirectStackSmashes) {
  for (const auto& scenario : RipeScenarios()) {
    const AttackOutcome outcome = RunAttack(scenario, PolicyKind::kMpx);
    const bool expect_prevented = !scenario.intra_object &&
                                  scenario.technique == AttackTechnique::kDirectLoop &&
                                  scenario.location == AttackLocation::kStack;
    EXPECT_EQ(outcome.prevented, expect_prevented) << scenario.name;
  }
}

TEST(RipeTest, LibcMediatedAttacksBypassMpx) {
  // The BNDPRESERVE escape hatch: bounds die at the uninstrumented libc
  // boundary, so the copy lands.
  for (const auto& scenario : RipeScenarios()) {
    if (scenario.technique == AttackTechnique::kDirectLoop) {
      continue;
    }
    const AttackOutcome outcome = RunAttack(scenario, PolicyKind::kMpx);
    EXPECT_TRUE(outcome.succeeded) << scenario.name;
  }
}

TEST(RipeTest, NarrowingExtensionCatchesIntraObject) {
  // SS8 "catching intra-object overflows": with bounds narrowing, SGXBounds
  // prevents all 16 attacks (the forward in-struct overflows now trip the
  // narrowed upper bound).
  const RipeSummary summary =
      RunRipeSuite(PolicyKind::kSgxBounds, nullptr, /*narrow_bounds=*/true);
  EXPECT_EQ(summary.prevented, 16);
  EXPECT_EQ(summary.succeeded, 0);
}

TEST(RipeTest, NarrowingDoesNotAffectOtherDefenses) {
  EXPECT_EQ(RunRipeSuite(PolicyKind::kMpx, nullptr, true).prevented, 2);
  EXPECT_EQ(RunRipeSuite(PolicyKind::kAsan, nullptr, true).prevented, 8);
  // NarrowTo is a no-op for l4ptr's defense too.
  EXPECT_EQ(RunRipeSuite(PolicyKind::kL4Ptr, nullptr, true).prevented, 8);
}

}  // namespace
}  // namespace sgxb
