// Tests for stack allocator, syscall shim, and the deterministic thread pool.

#include <gtest/gtest.h>

#include "src/runtime/stack.h"
#include "src/runtime/syscall_shim.h"
#include "src/runtime/thread_pool.h"

namespace sgxb {
namespace {

EnclaveConfig SmallConfig() {
  EnclaveConfig cfg;
  cfg.space_bytes = 64 * kMiB;
  return cfg;
}

TEST(StackTest, FramePushPopRestoresTop) {
  Enclave e(SmallConfig());
  StackAllocator stack(&e, 64 * kKiB);
  Cpu& cpu = e.main_cpu();
  const uint32_t f1 = stack.PushFrame();
  const uint32_t a = stack.Alloca(cpu, 100);
  EXPECT_GE(a, stack.base());
  const uint32_t top_after_a = stack.top();
  const uint32_t f2 = stack.PushFrame();
  stack.Alloca(cpu, 200);
  stack.PopFrame(f2);
  EXPECT_EQ(stack.top(), top_after_a);
  stack.PopFrame(f1);
  EXPECT_EQ(stack.top(), stack.base());
}

TEST(StackTest, AllocaMemoryIsUsable) {
  Enclave e(SmallConfig());
  StackAllocator stack(&e, 64 * kKiB);
  Cpu& cpu = e.main_cpu();
  stack.PushFrame();
  const uint32_t a = stack.Alloca(cpu, 64);
  e.Store<uint64_t>(cpu, a, 99);
  EXPECT_EQ(e.Load<uint64_t>(cpu, a), 99u);
}

TEST(StackTest, OverflowHitsGuardPage) {
  Enclave e(SmallConfig());
  StackAllocator stack(&e, 16 * kKiB);
  Cpu& cpu = e.main_cpu();
  stack.PushFrame();
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) {
          stack.Alloca(cpu, 1024);
        }
      },
      SimTrap);
}

TEST(ShimTest, RecvCopiesIntoEnclave) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  SyscallShim shim(&e);
  const uint32_t buf = e.pages().ReserveLow(kPageSize, "buf");
  e.pages().Commit(&cpu, buf, kPageSize);
  const std::vector<uint8_t> wire{'h', 'e', 'l', 'l', 'o'};
  const uint32_t n = shim.Recv(cpu, buf, wire, 0, 100);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(e.Load<uint8_t>(cpu, buf + 1), 'e');
  EXPECT_EQ(shim.stats().bytes_in, 5u);
  EXPECT_EQ(shim.stats().syscalls, 1u);
}

TEST(ShimTest, RecvRespectsOffsetAndLength) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  SyscallShim shim(&e);
  const uint32_t buf = e.pages().ReserveLow(kPageSize, "buf");
  e.pages().Commit(&cpu, buf, kPageSize);
  const std::vector<uint8_t> wire{1, 2, 3, 4, 5};
  EXPECT_EQ(shim.Recv(cpu, buf, wire, 3, 10), 2u);
  EXPECT_EQ(e.Load<uint8_t>(cpu, buf), 4);
  EXPECT_EQ(shim.Recv(cpu, buf, wire, 5, 10), 0u);
  EXPECT_EQ(shim.Recv(cpu, buf, wire, 9, 10), 0u);
}

TEST(ShimTest, SendCopiesOutOfEnclave) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  SyscallShim shim(&e);
  const uint32_t buf = e.pages().ReserveLow(kPageSize, "buf");
  e.pages().Commit(&cpu, buf, kPageSize);
  e.Store<uint8_t>(cpu, buf, 'x');
  e.Store<uint8_t>(cpu, buf + 1, 'y');
  const auto out = shim.Send(cpu, buf, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 'x');
  EXPECT_EQ(out[1], 'y');
}

TEST(ShimTest, SyscallsChargeCycles) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  SyscallShim shim(&e);
  const uint64_t before = cpu.cycles();
  shim.Plain(cpu);
  EXPECT_GT(cpu.cycles(), before);
}

TEST(ThreadPoolTest, MakespanIsMaxOverWorkers) {
  Enclave e(SmallConfig());
  Cpu& main = e.main_cpu();
  const ParallelResult r = RunParallel(e, main, 4, [](ThreadCtx& ctx) {
    ctx.cpu->Alu((ctx.tid + 1) * 100);  // worker 3 does the most work
  });
  const uint64_t slowest = 400;  // 400 ALU ops at 1 cycle
  EXPECT_EQ(r.makespan_cycles, slowest);
  EXPECT_EQ(r.combined.alu_ops, 100u + 200 + 300 + 400);
  EXPECT_GE(main.cycles(), slowest);  // makespan + spawn cost charged
}

TEST(ThreadPoolTest, WorkersShareLlc) {
  Enclave e(SmallConfig());
  Cpu& main = e.main_cpu();
  const uint32_t buf = e.pages().ReserveLow(kPageSize, "buf");
  e.pages().Commit(nullptr, buf, kPageSize);
  uint64_t llc_misses[2] = {0, 0};
  RunParallel(e, main, 2, [&](ThreadCtx& ctx) {
    ctx.cpu->MemAccess(buf, 4, AccessClass::kAppLoad);
    llc_misses[ctx.tid] = ctx.cpu->counters().llc_misses;
  });
  EXPECT_EQ(llc_misses[0], 1u);  // cold
  EXPECT_EQ(llc_misses[1], 0u);  // warmed by worker 0 via shared LLC
}

TEST(ThreadPoolTest, DeterministicAcrossRuns) {
  auto run_once = []() {
    Enclave e(SmallConfig());
    Cpu& main = e.main_cpu();
    const uint32_t buf = e.pages().ReserveLow(64 * kKiB, "buf");
    e.pages().Commit(nullptr, buf, 64 * kKiB);
    RunParallel(e, main, 4, [&](ThreadCtx& ctx) {
      for (uint32_t i = 0; i < 1000; ++i) {
        ctx.cpu->MemAccess(buf + (i * 67 + ctx.tid * 13) % (64 * 1024), 4,
                           AccessClass::kAppLoad);
      }
    });
    return main.cycles();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sgxb
