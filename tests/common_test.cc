// Tests for src/common: PRNG determinism and distributions, statistics,
// table rendering, flag parsing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace sgxb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(RngTest, ZipfIsSkewed) {
  Rng rng(17);
  uint64_t low_ranks = 0;
  const uint64_t n = 1000;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t r = rng.NextZipf(n, 0.9);
    EXPECT_LT(r, n);
    if (r < n / 10) {
      ++low_ranks;
    }
  }
  // Zipf(0.9): the top decile should receive well over half the draws.
  EXPECT_GT(low_ranks, 5000u);
}

TEST(RngTest, NextKeyHasRequestedLength) {
  Rng rng(23);
  const std::string key = rng.NextKey(16);
  EXPECT_EQ(key.size(), 16u);
  for (char c : key) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-12);
}

TEST(StatsTest, GeoMean) {
  EXPECT_DOUBLE_EQ(GeoMean({1.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
  EXPECT_NEAR(GeoMean({1.17, 1.17, 1.17}), 1.17, 1e-12);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(StatsTest, Formatters) {
  EXPECT_EQ(FormatRatio(1.175), "1.18x");
  EXPECT_EQ(FormatOverheadPercent(1.17), "+17.0%");
  EXPECT_EQ(FormatBytes(71 * kMiB), "71.0 MB");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(TableTest, RendersAlignedRows) {
  Table t({"bench", "SGX", "SGXBounds"});
  t.AddRow({"kmeans", "1.00x", "1.17x"});
  t.AddSeparator();
  t.AddRow({"gmean", "1.00x", "1.17x"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("kmeans"), std::string::npos);
  EXPECT_NE(out.find("1.17x"), std::string::npos);
  // Header separator plus separator row -> at least 4 horizontal rules.
  size_t rules = 0;
  for (size_t pos = out.find('+'); pos != std::string::npos; pos = out.find('+', pos + 1)) {
    if (pos == 0 || out[pos - 1] == '\n') {
      ++rules;
    }
  }
  EXPECT_GE(rules, 4u);
}

TEST(FlagsTest, ParsesTypedFlags) {
  FlagParser parser;
  int64_t threads = 1;
  uint64_t epc = 0;
  double theta = 0.0;
  bool verbose = false;
  std::string name;
  parser.AddInt("threads", &threads, "");
  parser.AddUint("epc", &epc, "");
  parser.AddDouble("theta", &theta, "");
  parser.AddBool("verbose", &verbose, "");
  parser.AddString("name", &name, "");

  const char* argv[] = {"prog",      "--threads=8", "--epc", "94", "--theta=0.99",
                        "--verbose", "--name=fig7", "pos"};
  auto positional = parser.Parse(8, const_cast<char**>(argv));
  EXPECT_EQ(threads, 8);
  EXPECT_EQ(epc, 94u);
  EXPECT_DOUBLE_EQ(theta, 0.99);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "fig7");
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "pos");
}

TEST(LatencyHistogramTest, EmptyAndExactZeroBucket) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Add(0, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogramTest, QuantileRelativeErrorWithinTwoPercent) {
  // Lognormal-ish latency stream from the house PRNG; exact quantiles via
  // Percentile, sketched quantiles must land within the advertised 2%.
  Rng rng(7);
  LatencyHistogram h;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = 100 + rng.NextBounded(1000) * rng.NextBounded(1000);
    h.Add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    // Exact order statistic at the sketch's own rank definition
    // (ceil(q * count)-th smallest); the sketch may only add bucket error.
    const size_t rank = static_cast<size_t>(std::ceil(q * samples.size()));
    const double want = static_cast<double>(samples[rank == 0 ? 0 : rank - 1]);
    const double got = h.Quantile(q);
    EXPECT_NEAR(got, want, want * 0.02) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantilesClampedToObservedRange) {
  LatencyHistogram h;
  h.Add(1000);
  h.Add(1001);
  EXPECT_GE(h.Quantile(0.0), 1000.0);
  EXPECT_LE(h.Quantile(1.0), 1001.0);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedStream) {
  Rng rng(11);
  LatencyHistogram whole, left, right;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBounded(1u << 20);
    whole.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
  EXPECT_EQ(left.Digest(), whole.Digest());
  EXPECT_EQ(left.P99(), whole.P99());
}

TEST(LatencyHistogramTest, AddWithCountMatchesRepeatedAdd) {
  LatencyHistogram a, b;
  a.Add(777, 42);
  for (int i = 0; i < 42; ++i) {
    b.Add(777);
  }
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(UnitsTest, AlignAndPageHelpers) {
  EXPECT_EQ(AlignUp(1u, 16u), 16u);
  EXPECT_EQ(AlignUp(16u, 16u), 16u);
  EXPECT_EQ(PagesFor(1), 1u);
  EXPECT_EQ(PagesFor(kPageSize), 1u);
  EXPECT_EQ(PagesFor(kPageSize + 1), 2u);
  EXPECT_EQ(PageOf(kPageSize), 1u);
  EXPECT_EQ(LineOf(64), 1u);
}

}  // namespace
}  // namespace sgxb
