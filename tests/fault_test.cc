// Fault-injection engine + trap-recovery layer tests: plan parsing, seeded
// determinism (same plan + seed => bit-identical runs), recovery semantics
// (retry / containment / watchdog), service-level containment bounds for the
// kvstore and httpd wrappers, and record/replay identity of injected runs.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/apps/contained_service.h"
#include "src/fault/fault.h"
#include "src/trace/trace_recorder.h"
#include "src/trace/trace_replay.h"

namespace sgxb {
namespace {

// --- plan parsing -----------------------------------------------------------------

TEST(FaultPlan, ParsesFullGrammar) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(
      "alloc_fail@alloc:100; wild_write@access:5000*3+2500, epc_storm@cycle:900000;"
      "metadata_flip@access:777;seed=9",
      &plan, &error))
      << error;
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.seed, 9u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::kAllocFail);
  EXPECT_EQ(plan.events[0].trigger, FaultTrigger::kAllocIndex);
  EXPECT_EQ(plan.events[0].at, 100u);
  EXPECT_EQ(plan.events[0].count, 1u);

  EXPECT_EQ(plan.events[1].kind, FaultKind::kWildWrite);
  EXPECT_EQ(plan.events[1].trigger, FaultTrigger::kAccessCount);
  EXPECT_EQ(plan.events[1].at, 5000u);
  EXPECT_EQ(plan.events[1].count, 3u);
  EXPECT_EQ(plan.events[1].period, 2500u);

  EXPECT_EQ(plan.events[2].kind, FaultKind::kEpcStorm);
  EXPECT_EQ(plan.events[2].trigger, FaultTrigger::kCycleCount);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kMetadataFlip);
}

TEST(FaultPlan, RejectsBadSpecsNamingValidChoices) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("cosmic_ray@access:5", &plan, &error));
  EXPECT_NE(error.find("cosmic_ray"), std::string::npos);
  EXPECT_NE(error.find("alloc_fail|wild_write|epc_storm|metadata_flip"), std::string::npos);

  EXPECT_FALSE(FaultPlan::Parse("alloc_fail@page:5", &plan, &error));
  EXPECT_NE(error.find("access|alloc|cycle"), std::string::npos);

  EXPECT_FALSE(FaultPlan::Parse("alloc_fail@alloc:0", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("alloc_fail@alloc:x", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("alloc_fail:5", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("seed=abc", &plan, &error));
}

TEST(FaultPlan, ToSpecRoundTrips) {
  FaultPlan plan;
  std::string error;
  const std::string spec = "wild_write@access:5000*3+2500;alloc_fail@alloc:7;seed=123";
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << error;
  FaultPlan again;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToSpec(), &again, &error)) << error;
  ASSERT_EQ(again.events.size(), plan.events.size());
  EXPECT_EQ(again.seed, plan.seed);
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(again.events[i].trigger, plan.events[i].trigger) << i;
    EXPECT_EQ(again.events[i].at, plan.events[i].at) << i;
    EXPECT_EQ(again.events[i].count, plan.events[i].count) << i;
  }
}

TEST(FaultPlan, SeededCampaignsAreDeterministic) {
  const FaultPlan a = FaultPlan::Campaign(FaultKind::kWildWrite, 7, 5, 100000);
  const FaultPlan b = FaultPlan::Campaign(FaultKind::kWildWrite, 7, 5, 100000);
  ASSERT_EQ(a.events.size(), 5u);
  EXPECT_EQ(a.ToSpec(), b.ToSpec());
  const FaultPlan c = FaultPlan::Campaign(FaultKind::kWildWrite, 8, 5, 100000);
  EXPECT_NE(a.ToSpec(), c.ToSpec());
  const FaultPlan m = FaultPlan::Mixed(7, 8, 100000);
  ASSERT_EQ(m.events.size(), 8u);
}

// --- recovery semantics -----------------------------------------------------------

MachineSpec SpecWithRecovery() {
  MachineSpec spec;
  spec.recovery.enabled = true;
  return spec;
}

TEST(Recovery, TransientAllocFailureIsRetriedAndRecovered) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("alloc_fail@alloc:10", &plan, &error)) << error;
  MachineSpec spec = SpecWithRecovery();
  spec.faults = &plan;

  uint64_t served = 0;
  const RunResult r =
      RunPolicyKind(PolicyKind::kSgxBounds, spec, PolicyOptions{}, [&](auto& env) {
        for (int i = 0; i < 32; ++i) {
          if (env.Serve([&] {
                auto p = env.policy.Malloc(env.cpu, 64);
                env.policy.template Store<uint32_t>(env.cpu, p, i);
              })) {
            ++served;
          }
        }
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
  EXPECT_EQ(served, 32u);  // the failed request was retried, not dropped
  EXPECT_EQ(r.fault_stats.injected[static_cast<int>(FaultKind::kAllocFail)], 1u);
  EXPECT_GE(r.recovery_stats.retried, 1u);
  EXPECT_EQ(r.recovery_stats.recovered, 1u);
  EXPECT_EQ(r.recovery_stats.contained, 0u);
  EXPECT_EQ(
      r.recovery_stats.trap_by_kind[static_cast<int>(TrapKind::kOutOfMemory)],
      r.recovery_stats.total_traps());
}

TEST(Recovery, RetryBackoffChargesSimulatedCycles) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("alloc_fail@alloc:10", &plan, &error)) << error;

  auto run = [&](bool with_faults) {
    MachineSpec spec = SpecWithRecovery();
    if (with_faults) {
      spec.faults = &plan;
    }
    return RunPolicyKind(PolicyKind::kNative, spec, PolicyOptions{}, [&](auto& env) {
      for (int i = 0; i < 32; ++i) {
        env.Serve([&] { env.policy.Malloc(env.cpu, 64); });
      }
    });
  };
  const RunResult clean = run(false);
  const RunResult faulted = run(true);
  // The faulted run re-ran one request and slept the backoff: strictly slower.
  EXPECT_GT(faulted.cycles, clean.cycles + faulted.recovery_stats.retried * 10000);
}

TEST(Recovery, DisabledRecoveryPropagatesTheTrap) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("alloc_fail@alloc:5", &plan, &error)) << error;
  MachineSpec spec;  // recovery disabled
  spec.faults = &plan;
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, spec, PolicyOptions{}, [&](auto& env) {
        for (int i = 0; i < 16; ++i) {
          env.Serve([&] { env.policy.Malloc(env.cpu, 64); });
        }
      });
  EXPECT_TRUE(r.crashed);
  EXPECT_EQ(r.trap, TrapKind::kOutOfMemory);
  EXPECT_EQ(r.recovery_stats.contained, 0u);
}

TEST(Recovery, WatchdogRethrowsWhenRequestBudgetExhausted) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("alloc_fail@alloc:5", &plan, &error)) << error;
  MachineSpec spec = SpecWithRecovery();
  spec.faults = &plan;
  spec.recovery.request_cycle_budget = 1;  // any trap exceeds this
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, spec, PolicyOptions{}, [&](auto& env) {
        for (int i = 0; i < 16; ++i) {
          env.Serve([&] { env.policy.Malloc(env.cpu, 64); });
        }
      });
  EXPECT_TRUE(r.crashed);
  EXPECT_EQ(r.trap, TrapKind::kOutOfMemory);
  EXPECT_EQ(r.recovery_stats.watchdog_kills, 1u);
  EXPECT_EQ(r.recovery_stats.retried, 0u);
}

// --- seeded determinism across the full pipeline ----------------------------------

TEST(FaultDeterminism, SamePlanSameSeedBitIdenticalAcrossPolicies) {
  for (PolicyKind kind : kAllPolicies) {
    const FaultPlan plan = FaultPlan::Mixed(/*seed=*/11, /*events=*/6, /*span=*/3000);
    auto run = [&] {
      MachineSpec spec = SpecWithRecovery();
      spec.faults = &plan;
      OracleKvResult kv;
      RunResult r = RunPolicyKind(kind, spec, PolicyOptions{}, [&](auto& env) {
        kv = RunOracleKvCampaign(env, /*requests=*/400, /*keyspace=*/128,
                                 /*value_bytes=*/48, /*seed=*/5);
      });
      return std::make_pair(r, kv);
    };
    const auto [r1, kv1] = run();
    const auto [r2, kv2] = run();
    const std::string what = PolicyName(kind);
    EXPECT_EQ(r1.cycles, r2.cycles) << what;
    EXPECT_EQ(r1.crashed, r2.crashed) << what;
    EXPECT_TRUE(r1.counters == r2.counters) << what;
    EXPECT_EQ(r1.fault_stats.total_injected(), r2.fault_stats.total_injected()) << what;
    EXPECT_EQ(r1.fault_stats.skipped, r2.fault_stats.skipped) << what;
    EXPECT_EQ(r1.recovery_stats.total_traps(), r2.recovery_stats.total_traps()) << what;
    EXPECT_EQ(kv1.served, kv2.served) << what;
    EXPECT_EQ(kv1.oracle_mismatches, kv2.oracle_mismatches) << what;
  }
}

// --- record/replay of injected runs -----------------------------------------------

TEST(FaultTrace, InjectedRunRecordsAndReplaysBitIdentical) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(
      "alloc_fail@alloc:20;wild_write@access:2000*2+1500;epc_storm@access:3000;seed=3",
      &plan, &error))
      << error;
  TraceRecorder recorder("fault_campaign/test", "");
  MachineSpec spec = SpecWithRecovery();
  spec.faults = &plan;
  spec.trace = &recorder;

  OracleKvResult kv;
  const RunResult live =
      RunPolicyKind(PolicyKind::kSgxBounds, spec, PolicyOptions{}, [&](auto& env) {
        kv = RunOracleKvCampaign(env, /*requests=*/300, /*keyspace=*/96,
                                 /*value_bytes=*/48, /*seed=*/13);
      });
  EXPECT_GT(live.fault_stats.total_injected(), 0u);

  const Trace trace = recorder.TakeTrace();
  ASSERT_FALSE(trace.summary.truncated);
  EXPECT_EQ(trace.summary.crashed, live.crashed ? 1u : 0u);

  const ReplayResult replay = ReplayTrace(trace);
  EXPECT_EQ(replay.cycles, live.cycles);
  EXPECT_EQ(replay.counters.loads, live.counters.loads);
  EXPECT_EQ(replay.counters.stores, live.counters.stores);
  EXPECT_EQ(replay.counters.metadata_loads, live.counters.metadata_loads);
  EXPECT_EQ(replay.counters.llc_misses, live.counters.llc_misses);
  EXPECT_EQ(replay.counters.epc_faults, live.counters.epc_faults);
  EXPECT_TRUE(replay.counters == live.counters);
  EXPECT_EQ(replay.crashed, live.crashed);
}

// --- service containment ----------------------------------------------------------

TEST(Containment, KvStoreServesAllButInjectedUnderTransientCampaign) {
  // Transient faults only (allocation failures + EPC storms): every trap is
  // retryable, so the contained store must keep serving.
  FaultPlan plan = FaultPlan::Campaign(FaultKind::kAllocFail, /*seed=*/21, /*events=*/4,
                                       /*span=*/4800);
  const FaultPlan storms =
      FaultPlan::Campaign(FaultKind::kEpcStorm, /*seed=*/22, /*events=*/2, /*span=*/4800);
  plan.events.insert(plan.events.end(), storms.events.begin(), storms.events.end());

  constexpr uint64_t kRequests = 600;
  for (PolicyKind kind : kAllPolicies) {
    const std::string what = PolicyName(kind);
    MachineSpec base = SpecWithRecovery();
    OracleKvResult clean;
    const RunResult clean_run =
        RunPolicyKind(kind, base, PolicyOptions{}, [&](auto& env) {
          clean = RunOracleKvCampaign(env, kRequests, 128, 48, /*seed=*/5);
        });
    ASSERT_FALSE(clean_run.crashed) << what;
    ASSERT_EQ(clean.served, kRequests) << what;

    MachineSpec spec = SpecWithRecovery();
    spec.faults = &plan;
    OracleKvResult kv;
    const RunResult r = RunPolicyKind(kind, spec, PolicyOptions{}, [&](auto& env) {
      kv = RunOracleKvCampaign(env, kRequests, 128, 48, /*seed=*/5);
    });
    EXPECT_FALSE(r.crashed) << what << ": " << r.trap_message;
    EXPECT_EQ(kv.served + kv.dropped, kRequests) << what;
    EXPECT_GE(kv.served, clean.served - r.fault_stats.total_injected()) << what;
    EXPECT_EQ(kv.oracle_mismatches, 0u) << what;
    // Per-kind accounting: transient campaigns only ever trap as OOM.
    EXPECT_EQ(r.recovery_stats.trap_by_kind[static_cast<int>(TrapKind::kOutOfMemory)],
              r.recovery_stats.total_traps())
        << what;
  }
}

TEST(Containment, HttpdKeepsServingUnderMixedCampaign) {
  const FaultPlan plan = FaultPlan::Mixed(/*seed=*/31, /*events=*/8, /*span=*/4000);
  constexpr uint64_t kRequests = 200;
  for (PolicyKind kind : kAllPolicies) {
    const std::string what = PolicyName(kind);
    MachineSpec spec = SpecWithRecovery();
    spec.faults = &plan;
    ServiceResult sr;
    const RunResult r = RunPolicyKind(kind, spec, PolicyOptions{}, [&](auto& env) {
      sr = RunContainedHttpdWorkload(env, /*connections=*/4, kRequests);
    });
    EXPECT_FALSE(r.crashed) << what << ": " << r.trap_message;
    EXPECT_EQ(sr.served + sr.dropped, kRequests) << what;
    EXPECT_GE(sr.served, kRequests - r.fault_stats.total_injected()) << what;
    // Every drop was a contained trap, and every trap is accounted by kind.
    EXPECT_EQ(sr.dropped, r.recovery_stats.contained) << what;
    EXPECT_EQ(r.recovery_stats.total_traps(),
              r.recovery_stats.contained + r.recovery_stats.retried)
        << what;
  }
}

TEST(Containment, MemcachedSurvivesMixedCampaign) {
  const FaultPlan plan = FaultPlan::Mixed(/*seed=*/41, /*events=*/6, /*span=*/4000);
  MachineSpec spec = SpecWithRecovery();
  spec.faults = &plan;
  ServiceResult sr;
  const RunResult r =
      RunPolicyKind(PolicyKind::kSgxBounds, spec, PolicyOptions{}, [&](auto& env) {
        sr = RunContainedMemcachedWorkload(env, /*requests=*/400, /*keyspace=*/256,
                                           /*seed=*/7);
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
  EXPECT_EQ(sr.served + sr.dropped, 400u);
  EXPECT_GE(sr.served, 400u - r.fault_stats.total_injected() -
                           r.recovery_stats.contained);
}

// --- metadata corruptors ----------------------------------------------------------

TEST(MetadataFlip, LandsInSchemeMetadataOrIsCountedSkipped) {
  // Native has no metadata: the flip must be counted skipped, never crash.
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("metadata_flip@access:400*3+400;seed=17", &plan, &error))
      << error;
  for (PolicyKind kind : kAllPolicies) {
    MachineSpec spec = SpecWithRecovery();
    spec.faults = &plan;
    OracleKvResult kv;
    const RunResult r = RunPolicyKind(kind, spec, PolicyOptions{}, [&](auto& env) {
      kv = RunOracleKvCampaign(env, /*requests=*/200, /*keyspace=*/64, 48, /*seed=*/3);
    });
    const std::string what = PolicyName(kind);
    EXPECT_FALSE(r.crashed) << what << ": " << r.trap_message;
    const uint64_t flips =
        r.fault_stats.injected[static_cast<int>(FaultKind::kMetadataFlip)];
    if (kind == PolicyKind::kNative) {
      EXPECT_EQ(flips, 0u) << what;
      EXPECT_EQ(r.fault_stats.skipped, 3u) << what;
    } else {
      EXPECT_EQ(flips + r.fault_stats.skipped, 3u) << what;
      EXPECT_GT(flips, 0u) << what;
    }
  }
}

// --- overlay exhaustion plumbing --------------------------------------------------

TEST(OverlayExhaust, PolicyOptionPlumbsThroughToBoundlessMemory) {
  // Probe through the harness: the scheme with a boundless-memory overlay
  // (SGXBounds) must see the configured exhaust policy inside a run.
  auto observed = [](const PolicyOptions& options) {
    std::optional<OverlayExhaustPolicy> got;
    MachineSpec spec;
    spec.space_bytes = 64 * kMiB;
    spec.heap_reserve = 16 * kMiB;
    const RunResult r =
        RunPolicyKind(PolicyKind::kSgxBounds, spec, options, [&](auto& env) {
          if constexpr (requires { env.policy.runtime().boundless().exhaust_policy(); }) {
            got = env.policy.runtime().boundless().exhaust_policy();
          }
        });
    EXPECT_FALSE(r.crashed) << r.trap_message;
    return got;
  };
  PolicyOptions fail_fast;
  fail_fast.overlay_exhaust = OverlayExhaustPolicy::kFailFast;
  EXPECT_EQ(observed(fail_fast), OverlayExhaustPolicy::kFailFast);
  EXPECT_EQ(observed(PolicyOptions{}), OverlayExhaustPolicy::kEvictOldest);
}

}  // namespace
}  // namespace sgxb
