// Tests for the fortified libc wrappers: correct data movement, EINVAL on
// bounds violations (never boundless fallback - SS5.1), string semantics.

#include <gtest/gtest.h>

#include <memory>

#include "src/sgxbounds/libc.h"

namespace sgxb {
namespace {

struct Fixture : public ::testing::Test {
  Fixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    rt = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    libc = std::make_unique<FortifiedLibc>(rt.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SgxBoundsRuntime> rt;
  std::unique_ptr<FortifiedLibc> libc;
};

TEST_F(Fixture, MemcpyMovesBytes) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr src = rt->Malloc(cpu, 64);
  const TaggedPtr dst = rt->Malloc(cpu, 64);
  ASSERT_EQ(libc->CopyInString(cpu, src, "hello world"), LibcError::kOk);
  EXPECT_EQ(libc->Memcpy(cpu, dst, src, 12), LibcError::kOk);
  std::string out;
  ASSERT_EQ(libc->ReadString(cpu, dst, &out), LibcError::kOk);
  EXPECT_EQ(out, "hello world");
}

TEST_F(Fixture, MemcpyOverflowReturnsEinval) {
  // The Heartbleed pattern: copy length exceeds the source object.
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr src = rt->Malloc(cpu, 16);
  const TaggedPtr dst = rt->Malloc(cpu, 64 * 1024);
  EXPECT_EQ(libc->Memcpy(cpu, dst, src, 64 * 1024), LibcError::kEinval);
  EXPECT_EQ(libc->violations(), 1u);
}

TEST_F(Fixture, MemcpyDstOverflowReturnsEinval) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr src = rt->Malloc(cpu, 128);
  const TaggedPtr dst = rt->Malloc(cpu, 16);
  EXPECT_EQ(libc->Memcpy(cpu, dst, src, 128), LibcError::kEinval);
}

TEST_F(Fixture, MemsetFillsAndChecks) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 32);
  EXPECT_EQ(libc->Memset(cpu, p, 0xab, 32), LibcError::kOk);
  EXPECT_EQ(rt->Load<uint8_t>(cpu, TaggedAdd(p, 31)), 0xabu);
  EXPECT_EQ(libc->Memset(cpu, p, 0, 33), LibcError::kEinval);
}

TEST_F(Fixture, MemcmpComparesAndChecks) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr a = rt->Malloc(cpu, 16);
  const TaggedPtr b = rt->Malloc(cpu, 16);
  libc->CopyInString(cpu, a, "abc");
  libc->CopyInString(cpu, b, "abd");
  int result = 0;
  EXPECT_EQ(libc->Memcmp(cpu, a, b, 4, &result), LibcError::kOk);
  EXPECT_LT(result, 0);
  EXPECT_EQ(libc->Memcmp(cpu, a, b, 17, &result), LibcError::kEinval);
}

TEST_F(Fixture, StrlenStopsAtBoundIfUnterminated) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 8);
  // Fill with non-zero bytes; no terminator inside bounds.
  libc->Memset(cpu, p, 'x', 8);
  uint32_t len = 0;
  EXPECT_EQ(libc->Strlen(cpu, p, &len), LibcError::kEinval);
}

TEST_F(Fixture, StrcpyAndStrcmp) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr a = rt->Malloc(cpu, 32);
  const TaggedPtr b = rt->Malloc(cpu, 32);
  libc->CopyInString(cpu, a, "sgxbounds");
  EXPECT_EQ(libc->Strcpy(cpu, b, a), LibcError::kOk);
  int cmp = 1;
  EXPECT_EQ(libc->Strcmp(cpu, a, b, &cmp), LibcError::kOk);
  EXPECT_EQ(cmp, 0);
}

TEST_F(Fixture, StrcpyIntoTooSmallBufferFails) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr a = rt->Malloc(cpu, 32);
  const TaggedPtr b = rt->Malloc(cpu, 4);
  libc->CopyInString(cpu, a, "longer-than-four");
  EXPECT_EQ(libc->Strcpy(cpu, b, a), LibcError::kEinval);
}

TEST_F(Fixture, StrncpyTruncates) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr a = rt->Malloc(cpu, 32);
  const TaggedPtr b = rt->Malloc(cpu, 8);
  libc->CopyInString(cpu, a, "abcdefghij");
  EXPECT_EQ(libc->Strncpy(cpu, b, a, 8), LibcError::kOk);
  EXPECT_EQ(rt->Load<uint8_t>(cpu, TaggedAdd(b, 7)), static_cast<uint8_t>('h'));
}

TEST_F(Fixture, StrchrFindsCharacterWithBound) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr s = rt->Malloc(cpu, 16);
  libc->CopyInString(cpu, s, "find=me");
  TaggedPtr hit = 0;
  EXPECT_EQ(libc->Strchr(cpu, s, '=', &hit), LibcError::kOk);
  EXPECT_EQ(ExtractPtr(hit), ExtractPtr(s) + 4);
  EXPECT_EQ(ExtractUb(hit), ExtractUb(s));  // bound inherited
  EXPECT_EQ(libc->Strchr(cpu, s, 'z', &hit), LibcError::kOk);
  EXPECT_EQ(hit, 0u);
}

TEST_F(Fixture, WrappersNeverUseBoundlessOverlay) {
  // SS5.1: wrappers return errno instead of redirecting.
  rt->set_policy(OobPolicy::kBoundless);
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr src = rt->Malloc(cpu, 16);
  const TaggedPtr dst = rt->Malloc(cpu, 8);
  EXPECT_EQ(libc->Memcpy(cpu, dst, src, 16), LibcError::kEinval);
  EXPECT_EQ(rt->boundless().stats().redirected_stores, 0u);
}

}  // namespace
}  // namespace sgxb
