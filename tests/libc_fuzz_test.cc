// Differential fuzzing of the fortified libc against the host's semantics:
// for random strings and buffers, every wrapper must (a) agree with the
// host's <cstring> result when the operation is in bounds, and (b) return
// EINVAL without touching memory when it is not.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/sgxbounds/libc.h"

namespace sgxb {
namespace {

struct Rig {
  Rig() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    rt = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    libc = std::make_unique<FortifiedLibc>(rt.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SgxBoundsRuntime> rt;
  std::unique_ptr<FortifiedLibc> libc;
};

class LibcFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LibcFuzz, MemcpyMemcmpAgreeWithHost) {
  Rig rig;
  Cpu& cpu = rig.enclave->main_cpu();
  Rng rng(static_cast<uint64_t>(GetParam()) * 1299709 + 1);
  for (int round = 0; round < 200; ++round) {
    const uint32_t size_a = 1 + static_cast<uint32_t>(rng.NextBounded(256));
    const uint32_t size_b = 1 + static_cast<uint32_t>(rng.NextBounded(256));
    const TaggedPtr a = rig.rt->Malloc(cpu, size_a);
    const TaggedPtr b = rig.rt->Malloc(cpu, size_b);
    std::string host_a(size_a, 0);
    for (auto& c : host_a) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    // Fill enclave buffer a to match host_a.
    for (uint32_t i = 0; i < size_a; ++i) {
      rig.rt->Store<uint8_t>(cpu, TaggedAdd(a, i), static_cast<uint8_t>(host_a[i]));
    }
    const uint32_t n = 1 + static_cast<uint32_t>(rng.NextBounded(300));
    const bool fits = n <= size_a && n <= size_b;
    const LibcError err = rig.libc->Memcpy(cpu, b, a, n);
    if (!fits) {
      EXPECT_EQ(err, LibcError::kEinval);
    } else {
      ASSERT_EQ(err, LibcError::kOk);
      int cmp = 1;
      ASSERT_EQ(rig.libc->Memcmp(cpu, a, b, n, &cmp), LibcError::kOk);
      EXPECT_EQ(cmp, 0);
      // Spot-check against host bytes.
      const uint32_t probe = static_cast<uint32_t>(rng.NextBounded(n));
      EXPECT_EQ(rig.rt->Load<uint8_t>(cpu, TaggedAdd(b, probe)),
                static_cast<uint8_t>(host_a[probe]));
    }
    rig.rt->Free(cpu, a);
    rig.rt->Free(cpu, b);
  }
}

TEST_P(LibcFuzz, StringFunctionsAgreeWithHost) {
  Rig rig;
  Cpu& cpu = rig.enclave->main_cpu();
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 2);
  for (int round = 0; round < 200; ++round) {
    // Random printable strings (may contain no NUL until we add it).
    const uint32_t len = static_cast<uint32_t>(rng.NextBounded(120));
    std::string host = rng.NextKey(len);
    const uint32_t buf_size = len + 1 + static_cast<uint32_t>(rng.NextBounded(32));
    const TaggedPtr s = rig.rt->Malloc(cpu, buf_size);
    ASSERT_EQ(rig.libc->CopyInString(cpu, s, host), LibcError::kOk);

    uint32_t measured = 0;
    ASSERT_EQ(rig.libc->Strlen(cpu, s, &measured), LibcError::kOk);
    EXPECT_EQ(measured, host.size());

    // strchr agrees with host.
    const char needle = static_cast<char>('a' + rng.NextBounded(26));
    TaggedPtr hit = 0;
    ASSERT_EQ(rig.libc->Strchr(cpu, s, needle, &hit), LibcError::kOk);
    const char* host_hit = std::strchr(host.c_str(), needle);
    if (host_hit == nullptr) {
      EXPECT_EQ(hit, 0u);
    } else {
      ASSERT_NE(hit, 0u);
      EXPECT_EQ(ExtractPtr(hit) - ExtractPtr(s),
                static_cast<uint32_t>(host_hit - host.c_str()));
    }

    // strcmp against a mutated copy agrees in sign with the host.
    std::string other = host;
    if (!other.empty() && rng.NextBounded(2) == 0) {
      other[rng.NextBounded(other.size())] = static_cast<char>('a' + rng.NextBounded(26));
    }
    const TaggedPtr t = rig.rt->Malloc(cpu, static_cast<uint32_t>(other.size()) + 1);
    ASSERT_EQ(rig.libc->CopyInString(cpu, t, other), LibcError::kOk);
    int cmp = 0;
    ASSERT_EQ(rig.libc->Strcmp(cpu, s, t, &cmp), LibcError::kOk);
    const int host_cmp = std::strcmp(host.c_str(), other.c_str());
    EXPECT_EQ(cmp < 0, host_cmp < 0);
    EXPECT_EQ(cmp == 0, host_cmp == 0);
    EXPECT_EQ(cmp > 0, host_cmp > 0);

    rig.rt->Free(cpu, s);
    rig.rt->Free(cpu, t);
  }
}

TEST_P(LibcFuzz, OverflowingCopiesNeverCorruptNeighbours) {
  Rig rig;
  Cpu& cpu = rig.enclave->main_cpu();
  Rng rng(static_cast<uint64_t>(GetParam()) * 32452843 + 3);
  for (int round = 0; round < 100; ++round) {
    const uint32_t size = 8 + static_cast<uint32_t>(rng.NextBounded(64));
    const TaggedPtr dst = rig.rt->Malloc(cpu, size);
    const TaggedPtr sentinel = rig.rt->Malloc(cpu, 16);
    rig.rt->Store<uint64_t>(cpu, sentinel, 0x5e17a9e15e17a9e1ULL);
    const TaggedPtr src = rig.rt->Malloc(cpu, 4096);
    // Attacker-length copy, always past dst's end.
    const uint32_t n = size + 1 + static_cast<uint32_t>(rng.NextBounded(512));
    EXPECT_EQ(rig.libc->Memcpy(cpu, dst, src, n), LibcError::kEinval);
    EXPECT_EQ(rig.rt->Load<uint64_t>(cpu, sentinel), 0x5e17a9e15e17a9e1ULL);
    rig.rt->Free(cpu, src);
    rig.rt->Free(cpu, sentinel);
    rig.rt->Free(cpu, dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LibcFuzz, ::testing::Range(0, 5));

}  // namespace
}  // namespace sgxb
