// Directed tests for the pre-decoded direct-threaded engine (src/ir/exec/):
// the edge cases a differential fuzzer is unlikely to pin down - phi-cycle
// parallel copies, argument/div-by-zero quirks, step-limit boundaries that
// land inside fused superinstructions, decode caching, and the decoder's
// fusion decisions.

#include <gtest/gtest.h>

#include <memory>

#include "src/enclave/trap.h"
#include "src/ir/builder.h"
#include "src/ir/exec/decoder.h"
#include "src/ir/interp.h"
#include "src/ir/passes.h"

namespace sgxb {
namespace {

struct Rig {
  Rig() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 1 * kMiB);
    sgx = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    interp = std::make_unique<Interpreter>(enclave.get(), heap.get(), stack.get());
    interp->AttachSgx(sgx.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<SgxBoundsRuntime> sgx;
  std::unique_ptr<Interpreter> interp;
};

// Runs `fn` on a fresh rig under `engine`; returns {trapped, result, steps}.
struct Outcome {
  bool trapped = false;
  uint64_t result = 0;
  uint64_t steps = 0;
  PerfCounters counters;
};

Outcome RunOn(IrEngine engine, const IrFunction& fn,
              const std::vector<uint64_t>& args = {},
              uint64_t max_steps = 200 * 1000 * 1000) {
  Rig rig;
  rig.interp->set_engine(engine);
  Outcome out;
  try {
    out.result = rig.interp->Run(fn, rig.enclave->main_cpu(), args, max_steps);
  } catch (const SimTrap&) {
    out.trapped = true;
  }
  out.steps = rig.interp->stats().steps;
  out.counters = rig.enclave->main_cpu().counters();
  return out;
}

// A hand-built function whose loop header carries a phi SWAP - the parallel
// copy (a, b) <- (b, a) that a naive sequential lowering gets wrong and that
// forces the decoder's cycle-breaking temporary:
//
//   entry: a0=1 b0=2 i0=0 limit=3 ten=10; br loop
//   loop:  a=phi(a0,b) b=phi(b0,a) i=phi(i0,inext)
//          inext=i+1; c=inext<limit; condbr c loop exit
//   exit:  ret a*ten + b
//
// Two full swaps before exit, so the correct answer is 1*10 + 2 = 12.
IrFunction BuildPhiSwap() {
  IrFunction fn;
  fn.name = "phi_swap";
  fn.num_values = 14;
  IrBlock entry;
  entry.instrs.push_back({1, IrOp::kConst, IrType::kI64, {}, 1});
  entry.instrs.push_back({2, IrOp::kConst, IrType::kI64, {}, 2});
  entry.instrs.push_back({3, IrOp::kConst, IrType::kI64, {}, 0});
  entry.instrs.push_back({9, IrOp::kConst, IrType::kI64, {}, 3});
  entry.instrs.push_back({11, IrOp::kConst, IrType::kI64, {}, 10});
  entry.instrs.push_back({0, IrOp::kBr, IrType::kI64, {}, 1});
  IrBlock loop;
  loop.preds = {0, 1};
  loop.instrs.push_back({4, IrOp::kPhi, IrType::kI64, {1, 5}});
  loop.instrs.push_back({5, IrOp::kPhi, IrType::kI64, {2, 4}});
  loop.instrs.push_back({6, IrOp::kPhi, IrType::kI64, {3, 7}});
  loop.instrs.push_back({7, IrOp::kAdd, IrType::kI64, {6, 1}});
  loop.instrs.push_back(
      {8, IrOp::kICmp, IrType::kI64, {7, 9}, static_cast<int64_t>(IrCmp::kULt)});
  loop.instrs.push_back({0, IrOp::kCondBr, IrType::kI64, {8}, 1, 2});
  IrBlock exit;
  exit.preds = {1};
  exit.instrs.push_back({12, IrOp::kMul, IrType::kI64, {4, 11}});
  exit.instrs.push_back({13, IrOp::kAdd, IrType::kI64, {12, 5}});
  exit.instrs.push_back({0, IrOp::kRet, IrType::kI64, {13}});
  fn.blocks = {entry, loop, exit};
  return fn;
}

TEST(IrExec, PhiSwapCycleMatchesReference) {
  const IrFunction fn = BuildPhiSwap();
  ASSERT_EQ(fn.Verify(), "");
  const Outcome ref = RunOn(IrEngine::kReference, fn);
  EXPECT_EQ(ref.result, 12u);
  for (const IrEngine engine : {IrEngine::kThreaded, IrEngine::kJit}) {
    const Outcome out = RunOn(engine, fn);
    EXPECT_EQ(out.result, 12u);
    EXPECT_EQ(ref.steps, out.steps);
    EXPECT_TRUE(ref.counters == out.counters);
  }

  // The back edge's parallel copy is a cycle: the decoder must have parked
  // one destination in a temporary and routed the stub through a free jump.
  const DecodedFunction df = DecodeFunction(fn, DecodeOptions{});
  EXPECT_GE(df.phi_cycle_temps, 1u);
  EXPECT_GT(df.edge_stubs, 0u);
  EXPECT_GT(df.CountUOp(UOp::kJump), 0u);
  EXPECT_GT(df.num_slots, fn.num_values);  // temp slots appended
}

TEST(IrExec, ArgReadsZeroOutOfRange) {
  // Four declared arguments, but only one supplied at runtime: reading past
  // the supplied vector yields 0 in the reference.
  IrBuilder b("args", /*num_args=*/4);
  const ValueId in_range = b.Arg(0);
  const ValueId oob = b.Arg(3);
  b.Ret(b.Add(b.Mul(in_range, b.Const(100)), oob));
  const IrFunction fn = b.Finish();
  for (const IrEngine engine :
       {IrEngine::kReference, IrEngine::kThreaded, IrEngine::kJit}) {
    const Outcome out = RunOn(engine, fn, {7});
    EXPECT_FALSE(out.trapped);
    EXPECT_EQ(out.result, 700u);  // oob argument reads as 0
  }
}

TEST(IrExec, DivRemByZeroYieldZero) {
  IrBuilder b("divzero", /*num_args=*/1);
  const ValueId x = b.Const(12345);
  const ValueId z = b.Arg(0);  // runtime zero: no const folding
  b.Ret(b.Add(b.Bin(IrOp::kUDiv, x, z), b.Bin(IrOp::kURem, x, z)));
  const IrFunction fn = b.Finish();
  for (const IrEngine engine :
       {IrEngine::kReference, IrEngine::kThreaded, IrEngine::kJit}) {
    const Outcome out = RunOn(engine, fn, {0});
    EXPECT_FALSE(out.trapped);
    EXPECT_EQ(out.result, 0u);
    const Outcome nz = RunOn(engine, fn, {100});
    EXPECT_EQ(nz.result, 12345u / 100 + 12345u % 100);
  }
}

// Small kernel mixing fused forms: xorshift pairs, a fused compare-branch
// latch, and (once instrumented) gep+check+access superinstructions.
IrFunction BuildFusedKernel(uint32_t n) {
  IrBuilder b("fused");
  const ValueId buf = b.Malloc(b.Const(static_cast<int64_t>(n) * 8));
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  ValueId x = b.Mul(loop.iv, b.Const(0x9e3779b9));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kShl, x, b.Const(13)));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kLShr, x, b.Const(7)));
  b.Store(IrType::kI64, x, b.Gep(buf, loop.iv, 8));
  b.EndLoop(loop);
  const ValueId r = b.Load(IrType::kI64, b.Gep(buf, b.Const(n / 2), 8));
  b.Free(buf);
  b.Ret(r);
  return b.Finish();
}

TEST(IrExec, StepLimitTrapsIdenticallyIncludingMidFusedOp) {
  IrFunction fn = BuildFusedKernel(16);
  RunSgxBoundsPass(fn, SgxPassOptions{});
  const Outcome full = RunOn(IrEngine::kReference, fn);
  ASSERT_FALSE(full.trapped);
  // Sweep limits across several loop iterations' worth of steps: every
  // boundary - including ones inside fused pairs and gep+check+access
  // triples - must trap (or not) identically, with identical step counts
  // and identical Cpu counters at the trap point.
  for (uint64_t limit = full.steps - 40; limit <= full.steps; ++limit) {
    const Outcome ref = RunOn(IrEngine::kReference, fn, {}, limit);
    EXPECT_EQ(ref.trapped, limit < full.steps) << "limit " << limit;
    for (const IrEngine engine : {IrEngine::kThreaded, IrEngine::kJit}) {
      const Outcome out = RunOn(engine, fn, {}, limit);
      EXPECT_EQ(ref.trapped, out.trapped)
          << "limit " << limit << " engine " << IrEngineName(engine);
      EXPECT_EQ(ref.steps, out.steps)
          << "limit " << limit << " engine " << IrEngineName(engine);
      EXPECT_EQ(ref.result, out.result)
          << "limit " << limit << " engine " << IrEngineName(engine);
      EXPECT_TRUE(ref.counters == out.counters)
          << "limit " << limit << " engine " << IrEngineName(engine);
    }
  }
}

TEST(IrExec, DecodeCacheReusesDecodedPrograms) {
  Rig rig;
  rig.interp->set_engine(IrEngine::kThreaded);
  const IrFunction fn = BuildFusedKernel(8);
  const uint64_t first = rig.interp->Run(fn, rig.enclave->main_cpu());
  const uint64_t second = rig.interp->Run(fn, rig.enclave->main_cpu());
  const uint64_t third = rig.interp->Run(fn, rig.enclave->main_cpu());
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, third);
  EXPECT_EQ(rig.interp->decode_cache().misses(), 1u);
  EXPECT_EQ(rig.interp->decode_cache().hits(), 2u);
  EXPECT_EQ(rig.interp->decode_cache().size(), 1u);
}

TEST(IrExec, DecoderFusesInstrumentationPatterns) {
  IrFunction fn = BuildFusedKernel(8);
  // Uninstrumented: xorshift pairs and the compare-branch latch fuse.
  {
    const DecodedFunction df = DecodeFunction(fn, DecodeOptions{});
    EXPECT_GT(df.CountUOp(UOp::kXorShlImm), 0u);
    EXPECT_GT(df.CountUOp(UOp::kXorLShrImm), 0u);
    EXPECT_GT(df.CountUOp(UOp::kCmpBr), 0u);
    EXPECT_GT(df.fused_superinstructions, 0u);
  }
  // fuse=false: no superinstructions at all.
  {
    DecodeOptions opts;
    opts.fuse = false;
    const DecodedFunction df = DecodeFunction(fn, opts);
    EXPECT_EQ(df.CountUOp(UOp::kXorShlImm), 0u);
    EXPECT_EQ(df.CountUOp(UOp::kCmpBr), 0u);
    EXPECT_EQ(df.fused_superinstructions, 0u);
  }
  // SGXBounds-instrumented with the optimizations on: loop checks hoist to
  // the preheader, leaving gep+maskptr+access triples in the body.
  {
    IrFunction hardened = BuildFusedKernel(8);
    RunSgxBoundsPass(hardened, SgxPassOptions{});
    const DecodedFunction df = DecodeFunction(hardened, DecodeOptions{});
    EXPECT_GT(df.CountUOp(UOp::kGepMaskLoad) + df.CountUOp(UOp::kGepMaskStore), 0u);
  }
  // With hoisting and elision off, every access keeps its check and the full
  // gep+maskptr+check+access quad fuses.
  RunSgxBoundsPass(fn, SgxPassOptions{/*elide_safe=*/false, /*hoist_loops=*/false});
  {
    const DecodedFunction df = DecodeFunction(fn, DecodeOptions{});
    const size_t gep_fused = df.CountUOp(UOp::kGepMaskSgxCheckLoad) +
                             df.CountUOp(UOp::kGepMaskSgxCheckUpperLoad) +
                             df.CountUOp(UOp::kGepMaskSgxCheckStore) +
                             df.CountUOp(UOp::kGepMaskSgxCheckUpperStore);
    EXPECT_GT(gep_fused, 0u);
  }
  // MPX tracking: gep fusion is disabled (bounds must flow through the gep),
  // and geps lower to their bounds-propagating form instead.
  {
    DecodeOptions opts;
    opts.track_mpx = true;
    const DecodedFunction df = DecodeFunction(fn, opts);
    EXPECT_EQ(df.CountUOp(UOp::kGepSgxCheckLoad) +
                  df.CountUOp(UOp::kGepSgxCheckUpperLoad) +
                  df.CountUOp(UOp::kGepSgxCheckStore) +
                  df.CountUOp(UOp::kGepSgxCheckUpperStore),
              0u);
    EXPECT_GT(df.CountUOp(UOp::kGepMpx), 0u);
  }
}

}  // namespace
}  // namespace sgxb
