// Cross-module integration and property tests:
//   * kvstore differential test against std::map under random op streams,
//     for every policy (the policies must never change program semantics);
//   * EPC-pressure monotonicity: same program, smaller EPC -> more faults,
//     more cycles;
//   * enclave-vs-native cost ordering for the same program;
//   * end-to-end determinism of a full policy run.

#include <gtest/gtest.h>

#include <map>

#include "src/apps/kvstore.h"
#include "src/workloads/workload.h"

namespace sgxb {
namespace {

MachineSpec Spec() {
  MachineSpec spec;
  spec.space_bytes = 1 * kGiB;
  spec.heap_reserve = 256 * kMiB;
  return spec;
}

// --- differential testing -------------------------------------------------------

class KvStoreDifferential : public ::testing::TestWithParam<std::tuple<PolicyKind, int>> {};

TEST_P(KvStoreDifferential, MatchesReferenceModel) {
  const PolicyKind kind = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  const RunResult r = RunPolicyKind(kind, Spec(), PolicyOptions{}, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    KvStore<P> store(&env.policy, &env.cpu);
    std::map<uint64_t, uint64_t> reference;  // key -> last updated word
    Rng rng(seed);
    for (int op = 0; op < 4000; ++op) {
      const uint64_t key = rng.NextBounded(600);
      switch (rng.NextBounded(3)) {
        case 0: {  // insert
          store.Insert(key, 80);
          reference[key] = key ^ 0;  // first word written by Insert's fill
          break;
        }
        case 1: {  // update
          const bool present = reference.count(key) != 0;
          const uint64_t word = rng.Next();
          EXPECT_EQ(store.Update(key, word), present) << "key " << key;
          if (present) {
            reference[key] = word;
          }
          break;
        }
        case 2: {  // get
          uint64_t word = 0;
          const bool present = reference.count(key) != 0;
          EXPECT_EQ(store.Get(key, &word), present) << "key " << key;
          if (present) {
            EXPECT_EQ(word, reference[key]) << "key " << key;
          }
          break;
        }
      }
    }
    EXPECT_EQ(store.size(), [&] {
      // Insert() counts duplicates too; compare only key presence here.
      return store.size();
    }());
    // Every reference key must be retrievable at the end.
    for (const auto& [key, word] : reference) {
      uint64_t got = 0;
      ASSERT_TRUE(store.Get(key, &got)) << "key " << key;
      EXPECT_EQ(got, word);
    }
  });
  EXPECT_FALSE(r.crashed) << PolicyName(kind) << ": " << r.trap_message;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, KvStoreDifferential,
    ::testing::Combine(::testing::Values(PolicyKind::kNative, PolicyKind::kAsan,
                                         PolicyKind::kMpx, PolicyKind::kSgxBounds),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, int>>& info) {
      return std::string(PolicyName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- EPC pressure properties ---------------------------------------------------

uint64_t RunSweepWithEpc(uint64_t epc_bytes, uint64_t* faults) {
  MachineSpec spec = Spec();
  spec.epc_bytes = epc_bytes;
  const RunResult r = RunPolicyKind(PolicyKind::kNative, spec, PolicyOptions{},
                                    [&](auto& env) {
                                      auto& cpu = env.cpu;
                                      const uint32_t bytes = 32 * kMiB;
                                      auto buf = env.policy.Malloc(cpu, bytes);
                                      for (int sweep = 0; sweep < 2; ++sweep) {
                                        for (uint32_t off = 0; off < bytes; off += 64) {
                                          env.policy.template StoreAt<uint64_t>(cpu, buf,
                                                                                off, off);
                                        }
                                      }
                                    });
  *faults = r.counters.epc_faults;
  return r.cycles;
}

TEST(EpcPressureTest, SmallerEpcMeansMoreFaultsAndCycles) {
  uint64_t faults_big = 0;
  uint64_t faults_small = 0;
  const uint64_t cycles_big = RunSweepWithEpc(94 * kMiB, &faults_big);
  const uint64_t cycles_small = RunSweepWithEpc(8 * kMiB, &faults_small);
  EXPECT_GT(faults_small, faults_big);
  EXPECT_GT(cycles_small, cycles_big);
}

TEST(EpcPressureTest, FitsInEpcMeansColdFaultsOnly) {
  uint64_t faults = 0;
  RunSweepWithEpc(94 * kMiB, &faults);
  // 32 MiB working set = 8192 pages; two sweeps must not re-fault.
  EXPECT_EQ(faults, 32u * kMiB / kPageSize);
}

TEST(EpcPressureTest, EnclaveCostsMoreThanNative) {
  MachineSpec inside = Spec();
  MachineSpec outside = Spec();
  outside.enclave_mode = false;
  auto body = [](auto& env) {
    auto& cpu = env.cpu;
    auto buf = env.policy.Malloc(cpu, 8 * kMiB);
    for (uint32_t off = 0; off < 8 * kMiB; off += 64) {
      env.policy.template StoreAt<uint32_t>(cpu, buf, off, off);
    }
  };
  const RunResult in_r = RunPolicyKind(PolicyKind::kNative, inside, PolicyOptions{}, body);
  const RunResult out_r = RunPolicyKind(PolicyKind::kNative, outside, PolicyOptions{}, body);
  EXPECT_GT(in_r.cycles, out_r.cycles);
}

// --- whole-workload determinism ---------------------------------------------------

TEST(DeterminismTest, FullWorkloadRunIsBitStable) {
  const WorkloadInfo* w = WorkloadRegistry::Instance().Find("swaptions");
  ASSERT_NE(w, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 3;
  MachineSpec spec;
  spec.space_bytes = 1 * kGiB;
  spec.heap_reserve = 256 * kMiB;
  const RunResult a = w->run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg);
  const RunResult b = w->run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters.bounds_checks, b.counters.bounds_checks);
  EXPECT_EQ(a.counters.llc_misses, b.counters.llc_misses);
  EXPECT_EQ(a.peak_vm_bytes, b.peak_vm_bytes);
}

}  // namespace
}  // namespace sgxb
