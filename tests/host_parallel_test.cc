// Tests for the host-parallel bench dispatcher: ParallelFor must cover every
// index exactly once, propagate exceptions, and — the property the bench
// drivers rely on — produce bit-identical simulation results regardless of
// the host thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/common/host_parallel.h"
#include "src/workloads/workload.h"

namespace sgxb {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(100);
    ParallelFor(hits.size(), threads, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, ZeroJobsIsANoop) {
  ParallelFor(0, 4, [&](size_t) { FAIL(); });
}

TEST(ParallelForTest, PropagatesWorkerException) {
  EXPECT_THROW(
      ParallelFor(8, 4,
                  [&](size_t i) {
                    if (i == 3) {
                      throw std::runtime_error("boom");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, HostHardwareThreadsIsPositive) {
  EXPECT_GE(HostHardwareThreads(), 1u);
}

// --- the work-stealing variant ----------------------------------------------

TEST(ParallelForWorkStealingTest, CoversEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u, 7u, 16u}) {
    std::vector<std::atomic<int>> hits(257);  // odd size: uneven chunk split
    ParallelForWorkStealing(hits.size(), threads, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

// The scenario stealing exists for: one chunk holds nearly all the cost. A
// static split would serialize it; stealing must still cover every index
// exactly once while the long tasks migrate.
TEST(ParallelForWorkStealingTest, CoversSkewedCostsExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  std::atomic<uint64_t> sink{0};
  ParallelForWorkStealing(hits.size(), 8, [&](size_t i) {
    ++hits[i];
    // Front-loaded cost: the first chunk's indices spin, the rest return
    // immediately, forcing the idle workers to steal from worker 0.
    if (i < 8) {
      uint64_t acc = 0;
      for (uint64_t k = 0; k < 2000000; ++k) {
        acc += k * i;
      }
      sink += acc;
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForWorkStealingTest, ZeroJobsIsANoop) {
  ParallelForWorkStealing(0, 4, [&](size_t) { FAIL(); });
}

TEST(ParallelForWorkStealingTest, PropagatesWorkerException) {
  EXPECT_THROW(
      ParallelForWorkStealing(64, 4,
                              [&](size_t i) {
                                if (i == 33) {
                                  throw std::runtime_error("boom");
                                }
                              }),
      std::runtime_error);
}

// --- determinism across thread counts ---------------------------------------

MachineSpec TinySpec() {
  MachineSpec spec;
  spec.space_bytes = 2 * kGiB;
  spec.heap_reserve = 1 * kGiB;
  spec.epc_bytes = 94 * kMiB;
  return spec;
}

// Every field a bench table is derived from.
void ExpectSameResult(const RunResult& a, const RunResult& b, const std::string& label) {
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.peak_vm_bytes, b.peak_vm_bytes) << label;
  EXPECT_EQ(a.crashed, b.crashed) << label;
  EXPECT_EQ(a.counters.instructions(), b.counters.instructions()) << label;
  EXPECT_EQ(a.counters.l1_misses, b.counters.l1_misses) << label;
  EXPECT_EQ(a.counters.llc_misses, b.counters.llc_misses) << label;
  EXPECT_EQ(a.counters.epc_faults, b.counters.epc_faults) << label;
  EXPECT_EQ(a.counters.bounds_checks, b.counters.bounds_checks) << label;
  EXPECT_EQ(a.mpx_bt_count, b.mpx_bt_count) << label;
}

// The fig drivers fan (workload, policy) jobs across host threads. Each run
// owns its machine, so results collected by job index must match a serial
// run exactly — this is the invariant that keeps every printed table
// byte-identical under any --bench_threads value.
TEST(ParallelForTest, SimulationResultsIdenticalAcrossThreadCounts) {
  auto& reg = WorkloadRegistry::Instance();
  const std::vector<const WorkloadInfo*> workloads = {reg.Find("histogram"),
                                                      reg.Find("matrixmul")};
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 2;

  std::vector<std::pair<const WorkloadInfo*, PolicyKind>> jobs;
  for (const WorkloadInfo* w : workloads) {
    ASSERT_NE(w, nullptr);
    for (PolicyKind kind : kAllPolicies) {
      jobs.emplace_back(w, kind);
    }
  }

  auto run_suite = [&](uint32_t threads) {
    std::vector<RunResult> out(jobs.size());
    ParallelFor(jobs.size(), threads, [&](size_t i) {
      out[i] = jobs[i].first->run(jobs[i].second, TinySpec(), PolicyOptions{}, cfg);
    });
    return out;
  };

  const std::vector<RunResult> serial = run_suite(1);
  const std::vector<RunResult> parallel = run_suite(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameResult(serial[i], parallel[i],
                     jobs[i].first->name + "/" + PolicyName(jobs[i].second));
  }
}

}  // namespace
}  // namespace sgxb
