// Tests for the mini IR: builder/verifier, interpreter semantics, the
// instrumentation passes, and the SS4.4 analyses (safe-access elision,
// scalar-evolution check hoisting).

#include <gtest/gtest.h>

#include <memory>

#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/passes.h"

namespace sgxb {
namespace {

struct IrFixture : public ::testing::Test {
  IrFixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 256 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 64 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 1 * kMiB);
    sgx = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    asan = std::make_unique<AsanRuntime>(enclave.get(), heap.get());
    mpx = std::make_unique<MpxRuntime>(enclave.get());
    interp = std::make_unique<Interpreter>(enclave.get(), heap.get(), stack.get());
    interp->AttachSgx(sgx.get());
    interp->AttachAsan(asan.get());
    interp->AttachMpx(mpx.get());
  }

  uint64_t Run(const IrFunction& fn, const std::vector<uint64_t>& args = {}) {
    return interp->Run(fn, enclave->main_cpu(), args);
  }

  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<SgxBoundsRuntime> sgx;
  std::unique_ptr<AsanRuntime> asan;
  std::unique_ptr<MpxRuntime> mpx;
  std::unique_ptr<Interpreter> interp;
};

// sum = 0; for (i = 0; i < n; i++) sum += a[i]  over a malloc'd i64 array
// initialized to a[i] = i.
IrFunction BuildSumKernel(uint32_t n) {
  IrBuilder b("sum");
  const ValueId size = b.Const(n * 8);
  const ValueId arr = b.Malloc(size);
  const ValueId zero = b.Const(0);
  const ValueId bound = b.Const(n);
  auto init = b.BeginCountedLoop(zero, bound, 1);
  b.Store(IrType::kI64, init.iv, b.Gep(arr, init.iv, 8));
  b.EndLoop(init);
  const ValueId zero2 = b.Const(0);
  auto loop = b.BeginCountedLoop(zero2, bound, 1);
  const ValueId v = b.Load(IrType::kI64, b.Gep(arr, loop.iv, 8));
  // Accumulate into memory cell to keep the example simple (no reduction phi).
  (void)v;
  b.EndLoop(loop);
  // Return a[n-1].
  const ValueId last = b.Load(IrType::kI64, b.Gep(arr, b.Const(n - 1), 8));
  b.Ret(last);
  return b.Finish();
}

TEST_F(IrFixture, StraightLineArithmetic) {
  IrBuilder b("arith");
  const ValueId a = b.Const(21);
  const ValueId two = b.Const(2);
  const ValueId m = b.Mul(a, two);
  b.Ret(m);
  EXPECT_EQ(Run(b.Finish()), 42u);
}

TEST_F(IrFixture, ArgsArePassedThrough) {
  IrBuilder b("args", 2);
  const ValueId x = b.Arg(0);
  const ValueId y = b.Arg(1);
  b.Ret(b.Add(x, y));
  EXPECT_EQ(Run(b.Finish(), {30, 12}), 42u);
}

TEST_F(IrFixture, LoadStoreRoundTrip) {
  IrBuilder b("mem");
  const ValueId buf = b.Alloca(64);
  const ValueId v = b.Const(0x1122334455667788);
  b.Store(IrType::kI64, v, buf);
  b.Ret(b.Load(IrType::kI64, buf));
  EXPECT_EQ(Run(b.Finish()), 0x1122334455667788u);
}

TEST_F(IrFixture, NarrowTypesTruncate) {
  IrBuilder b("narrow");
  const ValueId buf = b.Alloca(16);
  b.Store(IrType::kI8, b.Const(0x1ff), buf);
  b.Ret(b.Load(IrType::kI8, buf));
  EXPECT_EQ(Run(b.Finish()), 0xffu);
}

TEST_F(IrFixture, CountedLoopComputes) {
  const IrFunction fn = BuildSumKernel(100);
  EXPECT_EQ(Run(fn), 99u);
}

TEST_F(IrFixture, VerifierCatchesMissingTerminator) {
  IrFunction fn;
  fn.name = "bad";
  fn.blocks.emplace_back();
  IrInstr c;
  c.id = 1;
  c.op = IrOp::kConst;
  fn.num_values = 2;
  fn.blocks[0].instrs.push_back(c);
  EXPECT_NE(fn.Verify(), "");
}

TEST_F(IrFixture, ToStringListsInstructions) {
  const IrFunction fn = BuildSumKernel(4);
  const std::string text = fn.ToString();
  EXPECT_NE(text.find("malloc"), std::string::npos);
  EXPECT_NE(text.find("phi"), std::string::npos);
  EXPECT_NE(text.find("condbr"), std::string::npos);
}

TEST_F(IrFixture, SgxPassPreservesSemantics) {
  IrFunction fn = BuildSumKernel(64);
  const uint64_t plain = Run(fn);
  IrFunction hardened = BuildSumKernel(64);
  RunSgxBoundsPass(hardened);
  EXPECT_EQ(Run(hardened), plain);
}

TEST_F(IrFixture, AsanPassPreservesSemantics) {
  IrFunction hardened = BuildSumKernel(64);
  RunAsanPass(hardened);
  EXPECT_EQ(Run(hardened), 63u);
}

TEST_F(IrFixture, MpxPassPreservesSemantics) {
  IrFunction hardened = BuildSumKernel(64);
  RunMpxPass(hardened);
  EXPECT_EQ(Run(hardened), 63u);
}

IrFunction BuildOverflowKernel(uint32_t alloc, uint32_t upto) {
  // for (i = 0; i < upto; i++) a[i] = i  with a = malloc(alloc * 8).
  IrBuilder b("overflow");
  const ValueId arr = b.Malloc(b.Const(alloc * 8));
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(upto), 1);
  b.Store(IrType::kI64, loop.iv, b.Gep(arr, loop.iv, 8));
  b.EndLoop(loop);
  b.Ret();
  return b.Finish();
}

TEST_F(IrFixture, UninstrumentedOverflowSilentlyCorrupts) {
  IrFunction fn = BuildOverflowKernel(8, 9);
  EXPECT_NO_THROW(Run(fn));
}

TEST_F(IrFixture, SgxPassCatchesOverflow) {
  // With hoisting on, the preheader range check fires before the loop runs;
  // with hoisting off, the per-access check fires at i == 8. Both trap.
  for (bool hoist : {true, false}) {
    IrFunction fn = BuildOverflowKernel(8, 9);
    SgxPassOptions options;
    options.hoist_loops = hoist;
    RunSgxBoundsPass(fn, options);
    try {
      Run(fn);
      FAIL() << "hoist=" << hoist;
    } catch (const SimTrap& t) {
      EXPECT_EQ(t.kind(), TrapKind::kSgxBoundsViolation);
    }
  }
}

TEST_F(IrFixture, AsanPassCatchesOverflow) {
  IrFunction fn = BuildOverflowKernel(8, 9);
  RunAsanPass(fn);
  try {
    Run(fn);
    FAIL();
  } catch (const SimTrap& t) {
    EXPECT_EQ(t.kind(), TrapKind::kAsanReport);
  }
}

TEST_F(IrFixture, MpxPassCatchesOverflow) {
  IrFunction fn = BuildOverflowKernel(8, 9);
  RunMpxPass(fn);
  try {
    Run(fn);
    FAIL();
  } catch (const SimTrap& t) {
    EXPECT_EQ(t.kind(), TrapKind::kMpxBoundRange);
  }
}

TEST_F(IrFixture, FindCountedLoopsRecognizesCanonicalForm) {
  const IrFunction fn = BuildSumKernel(16);
  const auto loops = FindCountedLoops(fn);
  ASSERT_EQ(loops.size(), 2u);  // the init loop and the sum loop
  for (const auto& loop : loops) {
    EXPECT_EQ(loop.step, 1);
    EXPECT_FALSE(loop.body_blocks.empty());
  }
}

TEST_F(IrFixture, SafeAccessAnalysisProvesConstantAccesses) {
  IrBuilder b("safe");
  const ValueId buf = b.Alloca(64);
  const ValueId idx = b.Const(3);
  const ValueId p = b.Gep(buf, idx, 8);
  b.Store(IrType::kI64, b.Const(1), p);  // a[3] of 8 slots: safe
  const ValueId idx2 = b.Const(7);
  const ValueId p2 = b.Gep(buf, idx2, 8);
  b.Store(IrType::kI64, b.Const(1), p2);  // a[7]: last slot, safe
  b.Ret();
  IrFunction fn = b.Finish();
  SgxPassStats stats = RunSgxBoundsPass(fn);
  EXPECT_EQ(stats.checks_elided_safe, 2u);
  EXPECT_EQ(stats.checks_inserted, 0u);
}

TEST_F(IrFixture, UnsafeConstantAccessStillChecked) {
  IrBuilder b("unsafe");
  const ValueId buf = b.Alloca(64);
  const ValueId idx = b.Const(8);  // one past the end
  const ValueId p = b.Gep(buf, idx, 8);
  b.Store(IrType::kI64, b.Const(1), p);
  b.Ret();
  IrFunction fn = b.Finish();
  SgxPassStats stats = RunSgxBoundsPass(fn);
  EXPECT_EQ(stats.checks_elided_safe, 0u);
  EXPECT_EQ(stats.checks_inserted, 1u);
  EXPECT_THROW(Run(fn), SimTrap);
}

TEST_F(IrFixture, HoistingMovesChecksOutOfLoop) {
  IrFunction fn = BuildSumKernel(128);
  SgxPassOptions options;
  options.elide_safe = false;
  SgxPassStats stats = RunSgxBoundsPass(fn, options);
  // The two loop-body accesses hoist; range checks appear in preheaders.
  EXPECT_GE(stats.checks_hoisted, 2u);
  EXPECT_GE(fn.CountOp(IrOp::kSgxCheckRange), 2u);
  EXPECT_EQ(Run(fn), 127u);
}

TEST_F(IrFixture, HoistingRespectsStrideLimit) {
  // Stride 2048 B/iteration exceeds the SS4.4 limit of 1024: not hoisted.
  IrBuilder b("bigstride");
  const ValueId arr = b.Malloc(b.Const(2048 * 64));
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(64), 1);
  b.Store(IrType::kI64, loop.iv, b.Gep(arr, loop.iv, 2048));
  b.EndLoop(loop);
  b.Ret();
  IrFunction fn = b.Finish();
  SgxPassStats stats = RunSgxBoundsPass(fn);
  EXPECT_EQ(stats.checks_hoisted, 0u);
  EXPECT_EQ(stats.checks_inserted, 1u);
}

TEST_F(IrFixture, HoistingReducesCycles) {
  IrFunction slow_fn = BuildSumKernel(4096);
  IrFunction fast_fn = BuildSumKernel(4096);
  SgxPassOptions no_opt;
  no_opt.elide_safe = false;
  no_opt.hoist_loops = false;
  SgxPassOptions all_opt;
  all_opt.elide_safe = false;
  RunSgxBoundsPass(slow_fn, no_opt);
  RunSgxBoundsPass(fast_fn, all_opt);
  Cpu* cpu_slow = enclave->NewCpu();
  Cpu* cpu_fast = enclave->NewCpu();
  interp->Run(slow_fn, *cpu_slow);
  interp->Run(fast_fn, *cpu_fast);
  EXPECT_LT(cpu_fast->cycles(), cpu_slow->cycles());
}

TEST_F(IrFixture, MaskedGepCannotCorruptTag) {
  // A huge index overflows the 32-bit pointer but the mask keeps UB intact,
  // so the check still fires (SS3.2 pointer-arithmetic hardening).
  IrBuilder b("evil");
  const ValueId arr = b.Malloc(b.Const(64));
  // Unmasked, this index would flip UB bits; masked, it wraps within the low
  // 32 bits to +70, which the (intact) bounds check rejects.
  const ValueId evil = b.Const((1LL << 33) + 70);
  const ValueId p = b.Gep(arr, evil, 1);
  b.Store(IrType::kI8, b.Const(1), p);
  b.Ret();
  IrFunction fn = b.Finish();
  RunSgxBoundsPass(fn);
  EXPECT_GE(fn.CountOp(IrOp::kMaskPtr), 1u);
  EXPECT_THROW(Run(fn), SimTrap);
}

TEST_F(IrFixture, MpxPassInstrumentsPointerTraffic) {
  // p = malloc; slot = alloca; *slot = p; q = *slot; *q = 1
  IrBuilder b("ptrs");
  const ValueId p = b.Malloc(b.Const(32));
  const ValueId slot = b.Alloca(8);
  b.Store(IrType::kPtr, p, slot);
  const ValueId q = b.Load(IrType::kPtr, slot);
  b.Store(IrType::kI8, b.Const(1), q);
  b.Ret();
  IrFunction fn = b.Finish();
  BaselinePassStats stats = RunMpxPass(fn);
  EXPECT_EQ(stats.ptr_stores_instrumented, 1u);
  EXPECT_EQ(stats.ptr_loads_instrumented, 1u);
  EXPECT_NO_THROW(Run(fn));
  EXPECT_GT(mpx->stats().bndstx, 0u);
  EXPECT_GT(mpx->stats().bndldx, 0u);
}

TEST_F(IrFixture, MpxBoundsSurviveTableRoundTrip) {
  // Overflow through a pointer that went through memory: MPX still catches
  // it because bndldx restores the bounds.
  IrBuilder b("ptr_oob");
  const ValueId p = b.Malloc(b.Const(32));
  const ValueId slot = b.Alloca(8);
  b.Store(IrType::kPtr, p, slot);
  const ValueId q = b.Load(IrType::kPtr, slot);
  const ValueId oob = b.Gep(q, b.Const(32), 1);
  b.Store(IrType::kI8, b.Const(1), oob);
  b.Ret();
  IrFunction fn = b.Finish();
  RunMpxPass(fn);
  EXPECT_THROW(Run(fn), SimTrap);
}

// Bounds must survive a pointer-valued phi and the GEP applied to it: if the
// interpreter dropped the association at the merge point, the OOB store
// would sail through with INIT (unchecked) bounds instead of trapping.
IrFunction BuildPhiPointerKernel(uint32_t idx) {
  // p = arg0 ? &a[0] : &c[0]; p[idx] = 7  with a, c = malloc(8 * 8).
  IrBuilder b("phiptr", 1);
  const ValueId take_a = b.Arg(0);
  const ValueId a = b.Malloc(b.Const(8 * 8));
  const ValueId c = b.Malloc(b.Const(8 * 8));
  const uint32_t left = b.NewBlock();
  const uint32_t right = b.NewBlock();
  const uint32_t join = b.NewBlock();
  b.CondBr(take_a, left, right);
  b.SetBlock(left);
  const ValueId pa = b.Gep(a, b.Const(0), 8);
  b.Br(join);
  b.SetBlock(right);
  const ValueId pc = b.Gep(c, b.Const(0), 8);
  b.Br(join);
  b.SetBlock(join);
  const ValueId p = b.Phi(IrType::kPtr, {pa, pc});
  b.Store(IrType::kI64, b.Const(7), b.Gep(p, b.Const(idx), 8));
  b.Ret(b.Const(1));
  return b.Finish();
}

TEST_F(IrFixture, MpxBoundsPropagateThroughPhiAndGep) {
  for (uint64_t take_a : {0u, 1u}) {
    IrFunction ok = BuildPhiPointerKernel(7);  // last valid element
    RunMpxPass(ok);
    EXPECT_EQ(Run(ok, {take_a}), 1u) << "take_a=" << take_a;

    IrFunction oob = BuildPhiPointerKernel(8);  // one past the end
    RunMpxPass(oob);
    try {
      Run(oob, {take_a});
      FAIL() << "take_a=" << take_a;
    } catch (const SimTrap& t) {
      EXPECT_EQ(t.kind(), TrapKind::kMpxBoundRange);
    }
  }
}

TEST_F(IrFixture, ArgWithOutOfRangeIndexReadsAsZero) {
  // A malformed kArg (negative or past the argument list) must evaluate to 0
  // rather than read out of bounds of the args vector.
  for (int64_t bad_index : {int64_t{-1}, int64_t{-1000}, int64_t{5}}) {
    IrBuilder b("badarg", 1);
    const ValueId x = b.Arg(0);
    b.Ret(x);
    IrFunction fn = b.Finish();
    for (auto& block : fn.blocks) {
      for (auto& instr : block.instrs) {
        if (instr.op == IrOp::kArg) {
          instr.imm = bad_index;
        }
      }
    }
    EXPECT_EQ(Run(fn, {42}), 0u) << "imm=" << bad_index;
  }
}

TEST_F(IrFixture, StepLimitStopsRunawayLoops) {
  IrBuilder b("forever");
  const uint32_t header = b.NewBlock();
  b.Br(header);
  b.SetBlock(header);
  b.Br(header);
  IrFunction fn = b.Finish();
  EXPECT_THROW(interp->Run(fn, enclave->main_cpu(), {}, 1000), SimTrap);
}

TEST_F(IrFixture, InstrumentationBlowupOrdering) {
  // MPX on pointer-chasing code inserts more memory-touching instructions
  // than SGXBounds (paper: 10x instructions on pca).
  auto build = [] {
    IrBuilder b("chase");
    const ValueId slots = b.Malloc(b.Const(64 * 8));
    const ValueId obj = b.Malloc(b.Const(64));
    auto fill = b.BeginCountedLoop(b.Const(0), b.Const(64), 1);
    b.Store(IrType::kPtr, obj, b.Gep(slots, fill.iv, 8));
    b.EndLoop(fill);
    auto loop = b.BeginCountedLoop(b.Const(0), b.Const(64), 1);
    const ValueId q = b.Load(IrType::kPtr, b.Gep(slots, loop.iv, 8));
    b.Store(IrType::kI8, b.Const(1), q);
    b.EndLoop(loop);
    b.Ret();
    return b.Finish();
  };
  IrFunction sgx_fn = build();
  IrFunction mpx_fn = build();
  SgxPassOptions no_opt;
  no_opt.elide_safe = false;
  no_opt.hoist_loops = false;
  RunSgxBoundsPass(sgx_fn, no_opt);
  RunMpxPass(mpx_fn);
  Cpu* cpu_sgx = enclave->NewCpu();
  Cpu* cpu_mpx = enclave->NewCpu();
  interp->Run(sgx_fn, *cpu_sgx);
  interp->Run(mpx_fn, *cpu_mpx);
  // MPX's table walks generate more metadata traffic than SGXBounds' footer
  // loads on this pointer-dense kernel.
  EXPECT_GT(cpu_mpx->counters().metadata_loads + cpu_mpx->counters().metadata_stores,
            cpu_sgx->counters().metadata_loads + cpu_sgx->counters().metadata_stores);
}

}  // namespace
}  // namespace sgxb
