// Tests for Cpu/MemorySystem cycle charging: hierarchy latencies, MEE and
// EPC-fault charging in enclave mode, and counter bookkeeping.

#include <gtest/gtest.h>

#include "src/sim/machine.h"

namespace sgxb {
namespace {

SimConfig SmallConfig(bool enclave) {
  SimConfig cfg;
  cfg.enclave_mode = enclave;
  cfg.epc_bytes = 16 * kPageSize;
  return cfg;
}

TEST(MachineTest, AluBranchFpCharges) {
  MemorySystem mem(SmallConfig(false));
  Cpu cpu(&mem);
  cpu.Alu(3);
  cpu.Branch();
  cpu.Fp(2);
  const auto& costs = mem.costs();
  EXPECT_EQ(cpu.cycles(), 3 * costs.alu + costs.branch + 2 * costs.fp);
  EXPECT_EQ(cpu.counters().alu_ops, 3u);
  EXPECT_EQ(cpu.counters().branches, 1u);
  EXPECT_EQ(cpu.counters().fp_ops, 2u);
}

TEST(MachineTest, ColdAccessMissesAllLevels) {
  MemorySystem mem(SmallConfig(false));
  Cpu cpu(&mem);
  cpu.MemAccess(0x1000, 4, AccessClass::kAppLoad);
  EXPECT_EQ(cpu.counters().l1_misses, 1u);
  EXPECT_EQ(cpu.counters().l2_misses, 1u);
  EXPECT_EQ(cpu.counters().llc_misses, 1u);
  EXPECT_EQ(cpu.cycles(), static_cast<uint64_t>(mem.costs().dram));
}

TEST(MachineTest, WarmAccessHitsL1) {
  MemorySystem mem(SmallConfig(false));
  Cpu cpu(&mem);
  cpu.MemAccess(0x1000, 4, AccessClass::kAppLoad);
  const uint64_t cold = cpu.cycles();
  cpu.MemAccess(0x1000, 4, AccessClass::kAppLoad);
  EXPECT_EQ(cpu.cycles() - cold, static_cast<uint64_t>(mem.costs().l1_hit));
  EXPECT_EQ(cpu.counters().l1_accesses, 2u);
  EXPECT_EQ(cpu.counters().l1_misses, 1u);
}

TEST(MachineTest, EnclaveModeChargesMeeAndFault) {
  MemorySystem mem(SmallConfig(true));
  Cpu cpu(&mem);
  cpu.MemAccess(0x1000, 4, AccessClass::kAppLoad);
  const auto& costs = mem.costs();
  EXPECT_EQ(cpu.cycles(), static_cast<uint64_t>(costs.dram) + costs.mee_line + costs.epc_fault);
  EXPECT_EQ(cpu.counters().epc_faults, 1u);
  // Same page, different line: resident page, no fault, still MEE.
  cpu.MemAccess(0x1040, 4, AccessClass::kAppLoad);
  EXPECT_EQ(cpu.counters().epc_faults, 1u);
}

TEST(MachineTest, NonEnclaveModeNeverFaultsEpc) {
  MemorySystem mem(SmallConfig(false));
  Cpu cpu(&mem);
  for (uint32_t p = 0; p < 64; ++p) {
    cpu.MemAccess(p * kPageSize, 4, AccessClass::kAppLoad);
  }
  EXPECT_EQ(cpu.counters().epc_faults, 0u);
}

TEST(MachineTest, MultiLineAccessTouchesEachLine) {
  MemorySystem mem(SmallConfig(false));
  Cpu cpu(&mem);
  cpu.MemAccess(0x1000, 256, AccessClass::kAppStore);  // 4 lines
  EXPECT_EQ(cpu.counters().l1_accesses, 4u);
  EXPECT_EQ(cpu.counters().stores, 1u);
}

TEST(MachineTest, StraddlingAccessTouchesTwoLines) {
  MemorySystem mem(SmallConfig(false));
  Cpu cpu(&mem);
  cpu.MemAccess(0x103e, 4, AccessClass::kAppLoad);  // crosses a 64B boundary
  EXPECT_EQ(cpu.counters().l1_accesses, 2u);
}

TEST(MachineTest, MetadataClassCountsSeparately) {
  MemorySystem mem(SmallConfig(false));
  Cpu cpu(&mem);
  cpu.MemAccess(0x1000, 4, AccessClass::kMetadataLoad);
  cpu.MemAccess(0x2000, 4, AccessClass::kMetadataStore);
  EXPECT_EQ(cpu.counters().metadata_loads, 1u);
  EXPECT_EQ(cpu.counters().metadata_stores, 1u);
  EXPECT_EQ(cpu.counters().loads, 0u);
  EXPECT_EQ(cpu.counters().stores, 0u);
}

TEST(MachineTest, SyscallCostDependsOnMode) {
  MemorySystem enclave_mem(SmallConfig(true));
  MemorySystem native_mem(SmallConfig(false));
  Cpu a(&enclave_mem);
  Cpu b(&native_mem);
  a.Syscall();
  b.Syscall();
  EXPECT_GT(a.cycles(), b.cycles());
}

TEST(MachineTest, CountersAggregate) {
  PerfCounters a;
  PerfCounters b;
  a.cycles = 10;
  a.loads = 2;
  b.cycles = 5;
  b.loads = 1;
  b.epc_faults = 3;
  a += b;
  EXPECT_EQ(a.cycles, 15u);
  EXPECT_EQ(a.loads, 3u);
  EXPECT_EQ(a.page_faults(), 3u);
}

TEST(MachineTest, SharedLlcAcrossCpus) {
  MemorySystem mem(SmallConfig(false));
  Cpu a(&mem);
  Cpu b(&mem);
  a.MemAccess(0x5000, 4, AccessClass::kAppLoad);  // fills LLC
  b.MemAccess(0x5000, 4, AccessClass::kAppLoad);  // misses private L1/L2, hits LLC
  EXPECT_EQ(b.counters().llc_misses, 0u);
  EXPECT_EQ(b.counters().l1_misses, 1u);
  EXPECT_EQ(b.cycles(), static_cast<uint64_t>(mem.costs().l3_hit));
}

}  // namespace
}  // namespace sgxb
