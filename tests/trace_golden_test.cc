// Golden-trace regression: a checked-in 2048-event prefix of the canonical
// recording (kmeans/XS under SGXBounds, seed 42) is re-recorded and compared
// event by event. Any change to the workload's access sequence, the
// instrumentation's memory behaviour, or the trace encoding fails this test
// LOUDLY, with a decoded event-level diff of the first divergences.
//
// If the change is intentional (new encoding, deliberate behaviour change),
// regenerate with:
//   trace_tool record --workload=kmeans --size=XS --policy=sgxbounds \
//     --event_limit=2048 --out=tests/golden/kmeans_xs_sgxbounds.sgxtrace
// and say so in the commit message.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/trace/record.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_reader.h"

#ifndef SGXB_GOLDEN_TRACE_DIR
#error "build must define SGXB_GOLDEN_TRACE_DIR"
#endif

namespace sgxb {
namespace {

constexpr uint64_t kGoldenEventLimit = 2048;

Trace RecordCurrent() {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("kmeans");
  EXPECT_NE(info, nullptr);
  TraceRecorder recorder("kmeans/XS");
  recorder.set_event_limit(kGoldenEventLimit);
  MachineSpec spec;  // defaults: enclave on, 94 MiB EPC, seed 42
  spec.trace = &recorder;
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;
  info->run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg);
  return recorder.TakeTrace();
}

TEST(TraceGolden, MatchesCheckedInPrefix) {
  const std::string path =
      std::string(SGXB_GOLDEN_TRACE_DIR) + "/kmeans_xs_sgxbounds.sgxtrace";
  Trace golden;
  std::string error;
  ASSERT_TRUE(LoadTrace(path, &golden, &error))
      << error << " — if the golden trace is missing, regenerate it (see the "
      << "comment at the top of this test)";

  // A cost-table or machine-default change invalidates the golden by
  // construction; fail with that explanation rather than a raw byte diff.
  const Trace current = RecordCurrent();
  ASSERT_EQ(golden.header.cost_table_id, current.header.cost_table_id)
      << "cost table changed; regenerate tests/golden/kmeans_xs_sgxbounds.sgxtrace";
  ASSERT_EQ(golden.header.epc_bytes, current.header.epc_bytes)
      << "machine defaults changed; regenerate the golden trace";

  if (golden.summary.stream_hash == current.summary.stream_hash &&
      golden.summary.event_count == current.summary.event_count &&
      golden.events == current.events) {
    return;  // identical
  }

  // Decode both prefixes and report the first diverging events.
  TraceReader rg(golden), rc(current);
  TraceEvent eg, ec;
  int shown = 0;
  while (shown < 10) {
    const bool hg = rg.Next(&eg);
    const bool hc = rc.Next(&ec);
    if (!hg && !hc) {
      break;
    }
    if (!hg || !hc) {
      ADD_FAILURE() << "event #" << ((hg ? rc.position() : rg.position()) - 1)
                    << ": " << (hg ? "current" : "golden") << " stream ends; "
                    << (hg ? "golden" : "current")
                    << " continues with: " << FormatTraceEvent(hg ? eg : ec);
      break;
    }
    if (!(eg == ec)) {
      ADD_FAILURE() << "event #" << (rg.position() - 1) << " diverges\n"
                    << "  golden:  " << FormatTraceEvent(eg) << "\n"
                    << "  current: " << FormatTraceEvent(ec);
      ++shown;
    }
  }
  FAIL() << "recorded event stream diverged from tests/golden/"
         << "kmeans_xs_sgxbounds.sgxtrace (golden: " << golden.summary.event_count
         << " events, hash " << std::hex << golden.summary.stream_hash
         << "; current: " << std::dec << current.summary.event_count
         << " events, hash " << std::hex << current.summary.stream_hash
         << ") — an intentional encoding/behaviour change requires regenerating "
         << "the golden trace (see the comment at the top of this test)";
}

// The trace encodes cycle-stamped memory events, so it is the sharpest
// engine-equivalence check available: the threaded and jit engines batch pure
// compute charges between observable points, and any slip in that accounting
// shifts a stamp. Record an interpreter-driven workload under all three
// engines and require byte-identical streams.
Trace RecordIrWorkload(IrEngine engine) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("ir_mix");
  EXPECT_NE(info, nullptr);
  TraceRecorder recorder("ir_mix/XS");
  recorder.set_event_limit(kGoldenEventLimit);
  MachineSpec spec;
  spec.trace = &recorder;
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;
  PolicyOptions options;
  options.ir_engine = engine;
  info->run(PolicyKind::kSgxBounds, spec, options, cfg);
  return recorder.TakeTrace();
}

TEST(TraceGolden, IrWorkloadTraceIsEngineInvariant) {
  const Trace ref = RecordIrWorkload(IrEngine::kReference);
  for (const IrEngine engine : {IrEngine::kThreaded, IrEngine::kJit}) {
    const Trace other = RecordIrWorkload(engine);
    EXPECT_EQ(ref.summary.event_count, other.summary.event_count);
    EXPECT_EQ(ref.summary.stream_hash, other.summary.stream_hash);
    EXPECT_TRUE(ref.events == other.events)
        << IrEngineName(engine)
        << " engine shifted the cycle-stamped event stream";
  }
}

}  // namespace
}  // namespace sgxb
