// Tests for the metadata management API (SS4.3, Table 2): hook firing,
// extra metadata slots, and the paper's double-free-detection example.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {
namespace {

struct Fixture : public ::testing::Test {
  Fixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
};

TEST_F(Fixture, OnCreateFiresForMalloc) {
  MetadataRegistry registry;
  std::vector<std::pair<uint32_t, uint32_t>> created;
  MetadataHooks hooks;
  hooks.on_create = [&](Cpu&, uint32_t base, uint32_t size, ObjKind kind) {
    EXPECT_EQ(kind, ObjKind::kHeap);
    created.emplace_back(base, size);
  };
  registry.Register(std::move(hooks));
  SgxBoundsRuntime rt(enclave.get(), heap.get(), OobPolicy::kFailFast, &registry);
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt.Malloc(cpu, 48);
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(created[0].first, ExtractPtr(p));
  EXPECT_EQ(created[0].second, 48u);
}

TEST_F(Fixture, OnAccessFiresWithFooterAddress) {
  MetadataRegistry registry;
  uint32_t seen_metadata = 0;
  AccessType seen_type = AccessType::kRead;
  MetadataHooks hooks;
  hooks.on_access = [&](Cpu&, uint32_t, uint32_t, uint32_t metadata, AccessType type) {
    seen_metadata = metadata;
    seen_type = type;
  };
  registry.Register(std::move(hooks));
  SgxBoundsRuntime rt(enclave.get(), heap.get(), OobPolicy::kFailFast, &registry);
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt.Malloc(cpu, 48);
  rt.Store<uint32_t>(cpu, p, 1);
  EXPECT_EQ(seen_metadata, ExtractUb(p));
  EXPECT_EQ(seen_type, AccessType::kWrite);
}

TEST_F(Fixture, OnDeleteFiresBeforeFree) {
  MetadataRegistry registry;
  bool deleted = false;
  MetadataHooks hooks;
  hooks.on_delete = [&](Cpu&, uint32_t) { deleted = true; };
  registry.Register(std::move(hooks));
  SgxBoundsRuntime rt(enclave.get(), heap.get(), OobPolicy::kFailFast, &registry);
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt.Malloc(cpu, 48);
  rt.Free(cpu, p);
  EXPECT_TRUE(deleted);
}

TEST_F(Fixture, ExtraSlotsExtendFooter) {
  MetadataRegistry registry(/*extra_slots=*/2);
  EXPECT_EQ(registry.FooterBytes(), 12u);
  SgxBoundsRuntime rt(enclave.get(), heap.get(), OobPolicy::kFailFast, &registry);
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt.Malloc(cpu, 40);
  EXPECT_EQ(heap->BlockSize(ExtractPtr(p)), 52u);
  // Slots start zeroed and are individually addressable.
  const uint32_t ub = ExtractUb(p);
  EXPECT_EQ(enclave->Peek<uint32_t>(registry.SlotAddr(ub, 0)), 0u);
  enclave->Poke<uint32_t>(registry.SlotAddr(ub, 1), 0x5a5a5a5au);
  EXPECT_EQ(enclave->Peek<uint32_t>(registry.SlotAddr(ub, 1)), 0x5a5a5a5au);
}

TEST_F(Fixture, DoubleFreeDetectionViaMagicSlot) {
  // The paper's SS4.3 example: a magic-number slot catches double frees
  // probabilistically.
  constexpr uint32_t kMagicLive = 0xa110c8ed;
  constexpr uint32_t kMagicFreed = 0xdeadf7ee;
  MetadataRegistry registry(/*extra_slots=*/1);
  int double_frees = 0;
  MetadataHooks hooks;
  Enclave* e = enclave.get();
  hooks.on_create = [&, e](Cpu& cpu, uint32_t base, uint32_t size, ObjKind) {
    e->Store<uint32_t>(cpu, registry.SlotAddr(base + size, 0), kMagicLive,
                       AccessClass::kMetadataStore);
  };
  hooks.on_delete = [&, e](Cpu& cpu, uint32_t metadata) {
    const uint32_t magic =
        e->Load<uint32_t>(cpu, registry.SlotAddr(metadata, 0), AccessClass::kMetadataLoad);
    if (magic == kMagicFreed) {
      ++double_frees;
    }
    e->Store<uint32_t>(cpu, registry.SlotAddr(metadata, 0), kMagicFreed,
                       AccessClass::kMetadataStore);
  };
  registry.Register(std::move(hooks));
  SgxBoundsRuntime rt(enclave.get(), heap.get(), OobPolicy::kFailFast, &registry);
  Cpu& cpu = enclave->main_cpu();

  const TaggedPtr p = rt.Malloc(cpu, 64);
  const uint32_t base = ExtractPtr(p);
  rt.Free(cpu, p);
  EXPECT_EQ(double_frees, 0);
  // Simulate the double free on the stale pointer (heap reuse not yet
  // re-tagging the footer): fire the delete hook again as Free would.
  registry.FireDelete(cpu, ExtractUb(p));
  EXPECT_EQ(double_frees, 1);
  (void)base;
}

TEST_F(Fixture, MultipleHookSetsAllFire) {
  MetadataRegistry registry;
  int count = 0;
  for (int i = 0; i < 3; ++i) {
    MetadataHooks hooks;
    hooks.on_create = [&](Cpu&, uint32_t, uint32_t, ObjKind) { ++count; };
    registry.Register(std::move(hooks));
  }
  SgxBoundsRuntime rt(enclave.get(), heap.get(), OobPolicy::kFailFast, &registry);
  Cpu& cpu = enclave->main_cpu();
  rt.Malloc(cpu, 16);
  EXPECT_EQ(count, 3);
}

TEST_F(Fixture, NoHooksMeansNoAccessOverhead) {
  MetadataRegistry registry;
  SgxBoundsRuntime rt(enclave.get(), heap.get(), OobPolicy::kFailFast, &registry);
  EXPECT_FALSE(registry.has_hooks());
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt.Malloc(cpu, 16);
  const uint64_t cycles_before = cpu.cycles();
  rt.Load<uint32_t>(cpu, p);
  // A check is ~7 cycles of ALU/branch + 2 cache hits; no hook dispatch.
  EXPECT_LT(cpu.cycles() - cycles_before, 40u);
}

}  // namespace
}  // namespace sgxb
