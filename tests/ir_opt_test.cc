// Directed tests for the scheme-generic check-optimization pipeline
// (src/ir/opt): dominator tree, redundant-check elimination across blocks,
// pattern-loop recognition on non-affine trip counts, in-field elision
// against actually-out-of-bounds fields, and engine invariance of optimized
// functions (reference/threaded/jit bit-identical).

#include <gtest/gtest.h>

#include <memory>

#include "src/enclave/trap.h"
#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/opt/analysis.h"
#include "src/ir/opt/pipeline.h"
#include "src/policy/shadow/shadow_runtime.h"

namespace sgxb {
namespace {

// --- dominator tree ---------------------------------------------------------

// entry -> {left, right} -> join, plus an unreachable block 4.
IrFunction BuildDiamond() {
  IrFunction fn;
  fn.name = "diamond";
  fn.num_values = 2;
  IrBlock entry;
  entry.instrs.push_back({1, IrOp::kConst, IrType::kI64, {}, 1});
  entry.instrs.push_back({0, IrOp::kCondBr, IrType::kI64, {1}, 1, 2});
  IrBlock left;
  left.preds = {0};
  left.instrs.push_back({0, IrOp::kBr, IrType::kI64, {}, 3});
  IrBlock right;
  right.preds = {0};
  right.instrs.push_back({0, IrOp::kBr, IrType::kI64, {}, 3});
  IrBlock join;
  join.preds = {1, 2};
  join.instrs.push_back({0, IrOp::kRet, IrType::kI64, {1}});
  IrBlock dead;
  dead.instrs.push_back({0, IrOp::kRet, IrType::kI64, {1}});
  fn.blocks = {entry, left, right, join, dead};
  return fn;
}

TEST(DominatorTree, DiamondIdomsAndUnreachable) {
  const IrFunction fn = BuildDiamond();
  const DominatorTree dom(fn);
  EXPECT_EQ(dom.idom(0), DominatorTree::kNone);
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 0u);
  EXPECT_EQ(dom.idom(3), 0u);  // join's idom is the branch, not a side
  EXPECT_TRUE(dom.Dominates(0, 3));
  EXPECT_TRUE(dom.Dominates(3, 3));  // reflexive
  EXPECT_FALSE(dom.Dominates(1, 3));
  EXPECT_FALSE(dom.Dominates(2, 1));
  EXPECT_FALSE(dom.reachable(4));
  EXPECT_FALSE(dom.Dominates(0, 4));
}

// --- redundant-check elimination --------------------------------------------

IrInstr Check(ValueId ptr, int64_t size) {
  IrInstr instr;
  instr.id = 0;
  instr.op = IrOp::kSchemeCheck;
  instr.args = {ptr};
  instr.imm = size;
  return instr;
}

uint32_t CountChecks(const IrFunction& fn) {
  uint32_t n = 0;
  for (const IrBlock& block : fn.blocks) {
    for (const IrInstr& instr : block.instrs) {
      n += instr.op == IrOp::kSchemeCheck ? 1 : 0;
    }
  }
  return n;
}

// entry: check(p,8); condbr -> b1, b2
// b1:    check(p,8)  dominated, equal     -> deleted
//        check(p,4)  dominated, narrower  -> deleted
//        check(p,16) wider                -> kept
//        check(q,8)  different pointer    -> kept
// b2:    (no checks)
// b3:    check(p,8)  dominated by entry's -> deleted (through the join:
//        neither b1 nor b2 dominates b3, but entry does)
TEST(RedundantChecks, DominatedEqualOrNarrowerDeletedAcrossBlocks) {
  IrFunction fn;
  fn.name = "rce";
  fn.num_values = 4;
  IrBlock entry;
  entry.instrs.push_back({1, IrOp::kConst, IrType::kI64, {}, 100});  // p
  entry.instrs.push_back({2, IrOp::kConst, IrType::kI64, {}, 200});  // q
  entry.instrs.push_back({3, IrOp::kConst, IrType::kI64, {}, 1});
  entry.instrs.push_back(Check(1, 8));
  entry.instrs.push_back({0, IrOp::kCondBr, IrType::kI64, {3}, 1, 2});
  IrBlock b1;
  b1.preds = {0};
  b1.instrs.push_back(Check(1, 8));
  b1.instrs.push_back(Check(1, 4));
  b1.instrs.push_back(Check(1, 16));
  b1.instrs.push_back(Check(2, 8));
  b1.instrs.push_back({0, IrOp::kBr, IrType::kI64, {}, 3});
  IrBlock b2;
  b2.preds = {0};
  b2.instrs.push_back({0, IrOp::kBr, IrType::kI64, {}, 3});
  IrBlock b3;
  b3.preds = {1, 2};
  b3.instrs.push_back(Check(1, 8));
  b3.instrs.push_back({0, IrOp::kRet, IrType::kI64, {3}});
  fn.blocks = {entry, b1, b2, b3};

  EXPECT_EQ(CountChecks(fn), 6u);
  EXPECT_EQ(EliminateRedundantChecks(fn, IrOp::kSchemeCheck), 3u);
  EXPECT_EQ(CountChecks(fn), 3u);
}

// Sibling branches do not dominate each other: a check in b1 must not
// license deleting the same check in b2 or in the join.
TEST(RedundantChecks, NonDominatingCheckDoesNotLicenseDeletion) {
  IrFunction fn;
  fn.name = "rce_neg";
  fn.num_values = 3;
  IrBlock entry;
  entry.instrs.push_back({1, IrOp::kConst, IrType::kI64, {}, 100});
  entry.instrs.push_back({2, IrOp::kConst, IrType::kI64, {}, 1});
  entry.instrs.push_back({0, IrOp::kCondBr, IrType::kI64, {2}, 1, 2});
  IrBlock b1;
  b1.preds = {0};
  b1.instrs.push_back(Check(1, 8));
  b1.instrs.push_back({0, IrOp::kBr, IrType::kI64, {}, 3});
  IrBlock b2;
  b2.preds = {0};
  b2.instrs.push_back(Check(1, 8));
  b2.instrs.push_back({0, IrOp::kBr, IrType::kI64, {}, 3});
  IrBlock b3;
  b3.preds = {1, 2};
  b3.instrs.push_back(Check(1, 8));
  b3.instrs.push_back({0, IrOp::kRet, IrType::kI64, {2}});
  fn.blocks = {entry, b1, b2, b3};

  EXPECT_EQ(EliminateRedundantChecks(fn, IrOp::kSchemeCheck), 0u);
  EXPECT_EQ(CountChecks(fn), 3u);
}

// --- pattern-loop recognition -----------------------------------------------

// Rewrites the last `icmp slt` into `icmp ne` - the exit-test shape a front
// end commonly emits for `for (i = start; i != bound; i += step)`. The trip
// count is unchanged when step divides (bound - start).
void FlipLastCmpToNe(IrFunction& fn) {
  IrInstr* last = nullptr;
  for (IrBlock& block : fn.blocks) {
    for (IrInstr& instr : block.instrs) {
      if (instr.op == IrOp::kICmp &&
          instr.imm == static_cast<int64_t>(IrCmp::kSLt)) {
        last = &instr;
      }
    }
  }
  ASSERT_NE(last, nullptr);
  last->imm = static_cast<int64_t>(IrCmp::kNe);
}

IrFunction BuildLoopKernel(uint32_t n, int64_t step) {
  IrBuilder b("loop");
  const ValueId a = b.Malloc(b.Const(static_cast<int64_t>(n) * 8));
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(n), step);
  b.Store(IrType::kI64, loop.iv, b.Gep(a, loop.iv, 8));
  b.EndLoop(loop);
  b.Ret();
  return b.Finish();
}

TEST(PatternLoops, NeLoopRecognizedOnlyWhenFinalIvProvable) {
  IrFunction slt = BuildLoopKernel(64, 1);
  EXPECT_EQ(FindCountedLoops(slt).size(), 1u);
  EXPECT_EQ(FindMonotonicNeLoops(slt).size(), 0u);

  FlipLastCmpToNe(slt);
  EXPECT_EQ(FindCountedLoops(slt).size(), 0u);
  ASSERT_EQ(FindMonotonicNeLoops(slt).size(), 1u);
  EXPECT_EQ(FindMonotonicNeLoops(slt)[0].step, 1);

  // (bound - start) not divisible by step: the IV would step over the bound
  // and wrap, so the loop must be rejected.
  IrFunction wrap = BuildLoopKernel(64, 3);
  FlipLastCmpToNe(wrap);
  EXPECT_EQ(FindMonotonicNeLoops(wrap).size(), 0u);
}

TEST(PatternLoops, OverStrideLoopPatternHoistedNotScevHoisted) {
  CheckPassConfig hoist_only;
  hoist_only.elide_safe = false;
  hoist_only.hoist_loops = true;
  hoist_only.pattern_loops = false;
  // 256 elements * 8-byte scale = 2048-byte stride: beyond the SS4.4 window,
  // so SCEV hoisting must refuse and the per-iteration check stays.
  IrFunction fn = BuildLoopKernel(65536, 256);
  CheckPassStats stats = RunCheckPipeline(fn, SgxBoundsCheckLowering(), hoist_only);
  EXPECT_EQ(stats.checks_hoisted, 0u);
  EXPECT_EQ(stats.checks_pattern_hoisted, 0u);
  EXPECT_EQ(stats.checks_inserted, 1u);

  // Pattern-based loop optimization has no stride window: the extent comes
  // from the provable final IV value, not an affine closure.
  CheckPassConfig pattern = hoist_only;
  pattern.pattern_loops = true;
  IrFunction fn2 = BuildLoopKernel(65536, 256);
  stats = RunCheckPipeline(fn2, SgxBoundsCheckLowering(), pattern);
  EXPECT_EQ(stats.checks_hoisted, 0u);
  EXPECT_EQ(stats.checks_pattern_hoisted, 1u);
  EXPECT_EQ(stats.checks_inserted, 0u);

  // The `i != n` flavor: invisible to SCEV hoisting (non-affine exit test),
  // caught by the pattern pass via FindMonotonicNeLoops.
  IrFunction fn3 = BuildLoopKernel(4096, 1);
  FlipLastCmpToNe(fn3);
  stats = RunCheckPipeline(fn3, SgxBoundsCheckLowering(), pattern);
  EXPECT_EQ(stats.checks_hoisted, 0u);
  EXPECT_EQ(stats.checks_pattern_hoisted, 1u);
  EXPECT_EQ(stats.checks_inserted, 0u);
}

// --- in-field elision + runtime agreement -----------------------------------

// Field accesses at constant offsets on a RUNTIME-sized record (the size is
// loaded from memory, so static object-size analysis is blind). Writes 3 and
// 4 into two i32 fields at offsets 0/4 and returns their sum; `oob_field`
// adds an i64 store at offset 8 - past an 8-byte record's footprint.
IrFunction BuildFieldsKernel(int64_t record_size, bool oob_field) {
  IrBuilder b("fields");
  const ValueId cell = b.Malloc(b.Const(8));
  b.Store(IrType::kI64, b.Const(record_size), cell);
  const ValueId sz = b.Load(IrType::kI64, cell);
  const ValueId rec = b.Malloc(sz);
  b.Store(IrType::kI32, b.Const(3), b.Gep(rec, b.Const(0), 1, /*offset=*/0));
  b.Store(IrType::kI32, b.Const(4), b.Gep(rec, b.Const(0), 1, /*offset=*/4));
  const ValueId lo = b.Load(IrType::kI32, b.Gep(rec, b.Const(0), 1, /*offset=*/0));
  const ValueId hi = b.Load(IrType::kI32, b.Gep(rec, b.Const(0), 1, /*offset=*/4));
  if (oob_field) {
    b.Store(IrType::kI64, b.Add(lo, hi), b.Gep(rec, b.Const(0), 1, /*offset=*/8));
  }
  b.Ret(b.Add(lo, hi));
  return b.Finish();
}

CheckPassConfig InFieldOnly() {
  CheckPassConfig config;
  config.elide_safe = false;
  config.hoist_loops = false;
  config.elide_infield = true;
  return config;
}

struct ShadowRig {
  ShadowRig() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 1 * kMiB);
    rt = std::make_unique<ShadowRuntime>(enclave.get(), heap.get());
    interp = std::make_unique<Interpreter>(enclave.get(), heap.get(), stack.get());
    interp->AttachScheme(rt.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<ShadowRuntime> rt;
  std::unique_ptr<Interpreter> interp;
};

TEST(InFieldElision, SubFloorFieldsElidedAndStillSafe) {
  IrFunction fn = BuildFieldsKernel(/*record_size=*/8, /*oob_field=*/false);
  const CheckPassStats stats =
      RunCheckPipeline(fn, TaggedSchemeCheckLowering(kShadowGranule), InFieldOnly());
  // Six accesses (cell store/load at offset 0 size 8; two i32 field stores
  // and two i32 field loads at offsets 0/4) all fit the 8-byte floor.
  EXPECT_EQ(stats.checks_elided_infield, 6u);
  EXPECT_EQ(stats.checks_inserted, 0u);
  ASSERT_EQ(fn.Verify(), "");

  ShadowRig rig;
  EXPECT_EQ(rig.interp->Run(fn, rig.enclave->main_cpu()), 7u);
}

TEST(InFieldElision, FieldBeyondFloorStaysCheckedAndTraps) {
  // offset 8 + size 8 = 16 > the 8-byte floor: the pass must keep that one
  // check, and on an 8-byte record the runtime must trap on it.
  IrFunction fn = BuildFieldsKernel(/*record_size=*/8, /*oob_field=*/true);
  const CheckPassStats stats =
      RunCheckPipeline(fn, TaggedSchemeCheckLowering(kShadowGranule), InFieldOnly());
  EXPECT_EQ(stats.checks_elided_infield, 6u);
  EXPECT_EQ(stats.checks_inserted, 1u);

  ShadowRig rig;
  EXPECT_THROW(rig.interp->Run(fn, rig.enclave->main_cpu()), SimTrap);

  // The same field on a 16-byte record is in bounds: the kept check passes.
  IrFunction ok = BuildFieldsKernel(/*record_size=*/16, /*oob_field=*/true);
  RunCheckPipeline(ok, TaggedSchemeCheckLowering(kShadowGranule), InFieldOnly());
  ShadowRig rig2;
  EXPECT_EQ(rig2.interp->Run(ok, rig2.enclave->main_cpu()), 7u);
}

// A scheme with exact bounds (no footprint floor) must never see in-field
// elision, whatever the config asks for.
TEST(InFieldElision, ExactBoundsSchemeIgnoresInFieldFlag) {
  IrFunction fn = BuildFieldsKernel(/*record_size=*/8, /*oob_field=*/false);
  const CheckPassStats stats =
      RunCheckPipeline(fn, SgxBoundsCheckLowering(), InFieldOnly());
  EXPECT_EQ(stats.checks_elided_infield, 0u);
  EXPECT_EQ(stats.checks_inserted, 6u);
}

// --- engine invariance on optimized functions --------------------------------

struct SgxRig {
  SgxRig() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 1 * kMiB);
    sgx = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    interp = std::make_unique<Interpreter>(enclave.get(), heap.get(), stack.get());
    interp->AttachSgx(sgx.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<SgxBoundsRuntime> sgx;
  std::unique_ptr<Interpreter> interp;
};

struct Outcome {
  uint64_t result = 0;
  uint64_t steps = 0;
  PerfCounters counters;
};

Outcome RunOn(IrEngine engine, const IrFunction& fn) {
  SgxRig rig;
  rig.interp->set_engine(engine);
  Outcome out;
  out.result = rig.interp->Run(fn, rig.enclave->main_cpu());
  out.steps = rig.interp->stats().steps;
  out.counters = rig.enclave->main_cpu().counters();
  return out;
}

// Init loop (t[i] = i), then a read-modify-write loop through one gep per
// iteration, then a read-back of t[3]: trips SCEV hoisting, and - with the
// kNe flip on the RMW loop - the pattern pass. Expected result 3 + 7 = 10.
IrFunction BuildRmwKernel(uint32_t n) {
  IrBuilder b("rmw");
  const ValueId t = b.Malloc(b.Const(static_cast<int64_t>(n) * 8));
  auto init = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Store(IrType::kI64, init.iv, b.Gep(t, init.iv, 8));
  b.EndLoop(init);
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  const ValueId slot = b.Gep(t, loop.iv, 8);
  b.Store(IrType::kI64, b.Add(b.Load(IrType::kI64, slot), b.Const(7)), slot);
  b.EndLoop(loop);
  b.Ret(b.Load(IrType::kI64, b.Gep(t, b.Const(3), 8)));
  return b.Finish();
}

TEST(EngineInvariance, OptimizedFunctionsBitIdenticalAcrossEngines) {
  for (const bool flip : {false, true}) {
    IrFunction fn = BuildRmwKernel(512);
    if (flip) {
      FlipLastCmpToNe(fn);  // the RMW loop's exit test becomes `i != n`
    }
    CheckPassConfig all;
    all.elide_redundant = true;
    all.pattern_loops = true;
    all.elide_infield = true;
    const CheckPassStats stats = RunCheckPipeline(fn, SgxBoundsCheckLowering(), all);
    EXPECT_GT(stats.checks_hoisted + stats.checks_pattern_hoisted, 0u)
        << "flip=" << flip;
    if (flip) {
      EXPECT_GT(stats.checks_pattern_hoisted, 0u);
    }
    ASSERT_EQ(fn.Verify(), "");

    const Outcome ref = RunOn(IrEngine::kReference, fn);
    EXPECT_EQ(ref.result, 10u);
    for (const IrEngine engine : {IrEngine::kThreaded, IrEngine::kJit}) {
      const Outcome out = RunOn(engine, fn);
      EXPECT_EQ(out.result, ref.result) << IrEngineName(engine);
      EXPECT_EQ(out.steps, ref.steps) << IrEngineName(engine);
      EXPECT_TRUE(out.counters == ref.counters) << IrEngineName(engine);
    }
  }
}

}  // namespace
}  // namespace sgxb
