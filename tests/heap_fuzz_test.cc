// Property-based allocator testing: random alloc/free sequences must never
// produce overlapping live blocks, must stay within the reservation, must
// reuse released memory (bounded footprint under churn), and the ASan
// wrapper must keep its redzone invariants through arbitrary sequences.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/asan/asan_runtime.h"
#include "src/common/rng.h"
#include "src/fault/fault.h"
#include "src/runtime/heap.h"

namespace sgxb {
namespace {

class HeapFuzz : public ::testing::TestWithParam<int> {};

TEST_P(HeapFuzz, LiveBlocksNeverOverlap) {
  EnclaveConfig cfg;
  cfg.space_bytes = 256 * kMiB;
  Enclave enclave(cfg);
  Heap heap(&enclave, 64 * kMiB);
  Cpu& cpu = enclave.main_cpu();
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);

  std::map<uint32_t, uint32_t> live;  // addr -> size
  for (int op = 0; op < 5000; ++op) {
    if (live.empty() || rng.NextBounded(5) < 3) {
      const uint32_t size = 1 + static_cast<uint32_t>(rng.NextBounded(2000));
      const uint32_t align = 1u << rng.NextBounded(7);  // 1..64
      const uint32_t addr = heap.Alloc(cpu, size, std::max(align, 1u));
      ASSERT_EQ(addr % std::max(align, 1u), 0u);
      // No overlap with any live block.
      auto next = live.lower_bound(addr);
      if (next != live.end()) {
        ASSERT_LE(addr + size, next->first) << "overlaps following block";
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second, addr) << "overlaps preceding block";
      }
      live[addr] = size;
      // The block is usable end to end.
      enclave.Store<uint8_t>(cpu, addr, 0xaa);
      enclave.Store<uint8_t>(cpu, addr + size - 1, 0xbb);
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBounded(live.size()));
      heap.Free(cpu, it->first);
      live.erase(it);
    }
  }
  EXPECT_EQ(heap.stats().live_bytes, [&] {
    uint64_t total = 0;
    for (const auto& [addr, size] : live) {
      total += size;
    }
    return total;
  }());
}

TEST_P(HeapFuzz, ChurnFootprintIsBounded) {
  EnclaveConfig cfg;
  cfg.space_bytes = 256 * kMiB;
  Enclave enclave(cfg);
  Heap heap(&enclave, 64 * kMiB);
  Cpu& cpu = enclave.main_cpu();
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);

  // Steady-state churn at ~1 MiB live: committed bytes must stay near the
  // high-water mark instead of growing without bound.
  std::vector<uint32_t> live;
  for (int op = 0; op < 20000; ++op) {
    if (live.size() < 512 && (live.empty() || rng.NextBounded(2) == 0)) {
      live.push_back(heap.Alloc(cpu, 1024 + static_cast<uint32_t>(rng.NextBounded(1024))));
    } else {
      const size_t idx = rng.NextBounded(live.size());
      heap.Free(cpu, live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_LE(enclave.pages().committed_bytes(), 4 * kMiB);
}

TEST_P(HeapFuzz, AsanWrapperSurvivesChurnWithInvariants) {
  EnclaveConfig cfg;
  cfg.space_bytes = 512 * kMiB;
  Enclave enclave(cfg);
  Heap heap(&enclave, 128 * kMiB);
  AsanConfig aconfig;
  aconfig.quarantine_bytes = 2 * kMiB;
  AsanRuntime asan(&enclave, &heap, aconfig);
  Cpu& cpu = enclave.main_cpu();
  Rng rng(static_cast<uint64_t>(GetParam()) * 271 + 9);

  std::vector<std::pair<uint32_t, uint32_t>> live;  // addr, size
  for (int op = 0; op < 3000; ++op) {
    if (live.size() < 64 && (live.empty() || rng.NextBounded(3) != 0)) {
      const uint32_t size = 1 + static_cast<uint32_t>(rng.NextBounded(500));
      const uint32_t addr = asan.Malloc(cpu, size);
      // Invariants: interior addressable, boundaries poisoned.
      EXPECT_TRUE(asan.CheckAccess(cpu, addr, 1, false, /*fatal=*/false));
      EXPECT_TRUE(asan.CheckAccess(cpu, addr + size - 1, 1, true, false));
      EXPECT_FALSE(asan.CheckAccess(cpu, addr - 1, 1, false, false));
      EXPECT_FALSE(asan.CheckAccess(cpu, addr + size, 1, false, false));
      live.emplace_back(addr, size);
    } else {
      const size_t idx = rng.NextBounded(live.size());
      asan.Free(cpu, live[idx].first);
      // Freed memory is poisoned (quarantine keeps it unreusable).
      EXPECT_FALSE(asan.CheckAccess(cpu, live[idx].first, 1, false, false));
      live[idx] = live.back();
      live.pop_back();
    }
  }
}

TEST_P(HeapFuzz, InjectedAllocFailuresKeepInvariants) {
  // Periodic injected allocation failures in the middle of a random
  // alloc/free stream: every failure must surface as a clean kOutOfMemory
  // trap, and the free list must hold its invariants after each one.
  EnclaveConfig cfg;
  cfg.space_bytes = 256 * kMiB;
  Enclave enclave(cfg);
  Heap heap(&enclave, 64 * kMiB);
  Cpu& cpu = enclave.main_cpu();
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);

  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("alloc_fail@alloc:5*400+7", &plan, &error)) << error;
  FaultInjector injector(plan);
  injector.Arm(&enclave, &heap);

  std::vector<uint32_t> live;
  uint64_t failures = 0;
  for (int op = 0; op < 4000; ++op) {
    if (live.size() < 256 && (live.empty() || rng.NextBounded(3) != 0)) {
      const uint32_t size = 1 + static_cast<uint32_t>(rng.NextBounded(900));
      try {
        live.push_back(heap.Alloc(cpu, size));
      } catch (const SimTrap& trap) {
        ASSERT_EQ(trap.kind(), TrapKind::kOutOfMemory);
        ++failures;
        std::string why;
        ASSERT_TRUE(heap.CheckInvariants(&why)) << "after failed Malloc: " << why;
      }
    } else {
      const size_t idx = rng.NextBounded(live.size());
      heap.Free(cpu, live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  injector.Disarm();

  EXPECT_GT(failures, 0u);
  EXPECT_EQ(failures,
            injector.stats().injected[static_cast<int>(FaultKind::kAllocFail)]);
  EXPECT_EQ(failures, heap.stats().failed_allocs);
  // Surviving blocks are still live and the heap is still fully usable.
  std::string why;
  ASSERT_TRUE(heap.CheckInvariants(&why)) << why;
  for (const uint32_t addr : live) {
    EXPECT_TRUE(heap.IsLive(addr));
  }
  const uint32_t after = heap.Alloc(cpu, 128);
  EXPECT_NE(after, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace sgxb
