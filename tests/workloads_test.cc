// Tests for the workload registry and kernels: every registered workload
// must run to completion under native + SGXBounds at size XS, the registry
// must contain the paper's benchmark counts, and the characteristic
// behaviours the evaluation relies on must hold (parameterized over suites).

#include <gtest/gtest.h>

#include "src/workloads/workload.h"

namespace sgxb {
namespace {

MachineSpec TinySpec() {
  MachineSpec spec;
  spec.space_bytes = 2 * kGiB;
  spec.heap_reserve = 1 * kGiB;
  spec.epc_bytes = 94 * kMiB;
  return spec;
}

WorkloadConfig TinyConfig() {
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 2;
  return cfg;
}

TEST(WorkloadRegistryTest, PaperBenchmarkCounts) {
  auto& reg = WorkloadRegistry::Instance();
  EXPECT_EQ(reg.BySuite("phoenix").size(), 7u);  // all 7 Phoenix apps (SS6.1)
  EXPECT_EQ(reg.BySuite("parsec").size(), 9u);   // 9 of 13 PARSEC apps
  EXPECT_EQ(reg.BySuite("spec").size(), 13u);    // 13 of 19 SPEC programs
}

TEST(WorkloadRegistryTest, FindByName) {
  auto& reg = WorkloadRegistry::Instance();
  EXPECT_NE(reg.Find("kmeans"), nullptr);
  EXPECT_NE(reg.Find("dedup"), nullptr);
  EXPECT_NE(reg.Find("mcf"), nullptr);
  EXPECT_EQ(reg.Find("raytrace"), nullptr);  // excluded by the paper
}

TEST(WorkloadRegistryTest, SizeClassNames) {
  EXPECT_STREQ(SizeClassName(SizeClass::kXS), "XS");
  EXPECT_STREQ(SizeClassName(SizeClass::kXL), "XL");
  EXPECT_EQ(SizeMultiplier(SizeClass::kXS), 1u);
  EXPECT_EQ(SizeMultiplier(SizeClass::kXL), 16u);
}

// Every workload must complete under the native and SGXBounds policies and
// produce nonzero cycle counts. (MPX is exercised separately because some
// workloads are *designed* to OOM it, per the paper.)
class AllWorkloads : public ::testing::TestWithParam<const WorkloadInfo*> {};

TEST_P(AllWorkloads, RunsUnderNative) {
  const WorkloadInfo* w = GetParam();
  const RunResult r = w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, TinyConfig());
  EXPECT_FALSE(r.crashed) << w->name << ": " << r.trap_message;
  EXPECT_GT(r.cycles, 0u) << w->name;
  EXPECT_GT(r.peak_vm_bytes, 0u) << w->name;
}

TEST_P(AllWorkloads, RunsUnderSgxBounds) {
  const WorkloadInfo* w = GetParam();
  const RunResult r =
      w->run(PolicyKind::kSgxBounds, TinySpec(), PolicyOptions{}, TinyConfig());
  EXPECT_FALSE(r.crashed) << w->name << ": " << r.trap_message;
  EXPECT_GT(r.counters.bounds_checks, 0u) << w->name;
  EXPECT_EQ(r.counters.bounds_violations, 0u) << w->name;
}

TEST_P(AllWorkloads, SgxBoundsMemoryNearNative) {
  // The paper's headline: +0.1% memory. Allow a few percent at XS where the
  // footer/page rounding is visible.
  const WorkloadInfo* w = GetParam();
  const RunResult native =
      w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, TinyConfig());
  const RunResult sgxb =
      w->run(PolicyKind::kSgxBounds, TinySpec(), PolicyOptions{}, TinyConfig());
  EXPECT_LT(sgxb.VmRatioOver(native), 1.10) << w->name;
}

TEST_P(AllWorkloads, DeterministicCycles) {
  const WorkloadInfo* w = GetParam();
  const RunResult a = w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, TinyConfig());
  const RunResult b = w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, TinyConfig());
  EXPECT_EQ(a.cycles, b.cycles) << w->name;
  EXPECT_EQ(a.peak_vm_bytes, b.peak_vm_bytes) << w->name;
}

std::string WorkloadTestName(const ::testing::TestParamInfo<const WorkloadInfo*>& info) {
  return info.param->name;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllWorkloads,
                         ::testing::ValuesIn(WorkloadRegistry::Instance().All()),
                         WorkloadTestName);

TEST(WorkloadBehaviourTest, AsanIsSlowerThanSgxBoundsOnPointerFreeKernels) {
  auto& reg = WorkloadRegistry::Instance();
  const WorkloadInfo* w = reg.Find("histogram");
  ASSERT_NE(w, nullptr);
  const RunResult sgxb =
      w->run(PolicyKind::kSgxBounds, TinySpec(), PolicyOptions{}, TinyConfig());
  const RunResult asan = w->run(PolicyKind::kAsan, TinySpec(), PolicyOptions{}, TinyConfig());
  EXPECT_GT(asan.cycles, sgxb.cycles);
}

TEST(WorkloadBehaviourTest, MpxChokesOnPointerIntensivePca) {
  // Paper SS6.2: pca under MPX suffers a many-fold instruction blowup.
  auto& reg = WorkloadRegistry::Instance();
  const WorkloadInfo* w = reg.Find("pca");
  ASSERT_NE(w, nullptr);
  const RunResult native =
      w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, TinyConfig());
  const RunResult mpx = w->run(PolicyKind::kMpx, TinySpec(), PolicyOptions{}, TinyConfig());
  ASSERT_FALSE(mpx.crashed) << mpx.trap_message;
  EXPECT_GT(mpx.CyclesRatioOver(native), 1.5);
  EXPECT_GT(mpx.mpx_bt_count, 0u);
}

TEST(WorkloadBehaviourTest, MpxRunsCleanOnMatrixmul) {
  // Paper Table 3: matrixmul needs one bounds table and runs at ~native
  // speed under MPX (bounds stay in registers).
  auto& reg = WorkloadRegistry::Instance();
  const WorkloadInfo* w = reg.Find("matrixmul");
  ASSERT_NE(w, nullptr);
  const RunResult native =
      w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, TinyConfig());
  const RunResult mpx = w->run(PolicyKind::kMpx, TinySpec(), PolicyOptions{}, TinyConfig());
  ASSERT_FALSE(mpx.crashed);
  EXPECT_LT(mpx.CyclesRatioOver(native), 1.25);
  EXPECT_LE(mpx.mpx_bt_count, 2u);
}

TEST(WorkloadBehaviourTest, SwaptionsBloatsAsanMemory) {
  // Paper SS6.2: alloc/free churn + quarantine -> ASan footprint explosion.
  auto& reg = WorkloadRegistry::Instance();
  const WorkloadInfo* w = reg.Find("swaptions");
  ASSERT_NE(w, nullptr);
  const RunResult native =
      w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, TinyConfig());
  const RunResult asan = w->run(PolicyKind::kAsan, TinySpec(), PolicyOptions{}, TinyConfig());
  const RunResult sgxb =
      w->run(PolicyKind::kSgxBounds, TinySpec(), PolicyOptions{}, TinyConfig());
  EXPECT_GT(asan.VmRatioOver(native), 5.0);
  EXPECT_LT(sgxb.VmRatioOver(native), 1.1);
}

TEST(WorkloadBehaviourTest, MoreThreadsReduceMakespan) {
  auto& reg = WorkloadRegistry::Instance();
  const WorkloadInfo* w = reg.Find("histogram");
  ASSERT_NE(w, nullptr);
  WorkloadConfig one = TinyConfig();
  one.threads = 1;
  WorkloadConfig four = TinyConfig();
  four.threads = 4;
  const RunResult r1 = w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, one);
  const RunResult r4 = w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, four);
  EXPECT_LT(r4.cycles, r1.cycles);
}

TEST(WorkloadBehaviourTest, LargerSizeClassesCostMore) {
  auto& reg = WorkloadRegistry::Instance();
  const WorkloadInfo* w = reg.Find("linear_regression");
  ASSERT_NE(w, nullptr);
  WorkloadConfig xs = TinyConfig();
  WorkloadConfig s = TinyConfig();
  s.size = SizeClass::kS;
  const RunResult rxs = w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, xs);
  const RunResult rs = w->run(PolicyKind::kNative, TinySpec(), PolicyOptions{}, s);
  EXPECT_GT(rs.cycles, rxs.cycles);
  EXPECT_GT(rs.peak_vm_bytes, rxs.peak_vm_bytes);
}

}  // namespace
}  // namespace sgxb
