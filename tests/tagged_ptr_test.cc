// Tests for the tagged-pointer codec, including the paper's corner cases:
// integer-overflow-resistant arithmetic and cast round-trips.

#include <gtest/gtest.h>

#include "src/sgxbounds/tagged_ptr.h"

namespace sgxb {
namespace {

TEST(TaggedPtrTest, PackUnpackRoundTrip) {
  const TaggedPtr t = MakeTagged(0x1000, 0x2000);
  EXPECT_EQ(ExtractPtr(t), 0x1000u);
  EXPECT_EQ(ExtractUb(t), 0x2000u);
}

TEST(TaggedPtrTest, UntaggedDetection) {
  EXPECT_FALSE(IsTagged(MakeTagged(0x1000, 0)));
  EXPECT_TRUE(IsTagged(MakeTagged(0x1000, 1)));
  EXPECT_FALSE(IsTagged(0));
}

TEST(TaggedPtrTest, AddAffectsOnlyLowBits) {
  const TaggedPtr t = MakeTagged(0x1000, 0x2000);
  const TaggedPtr t2 = TaggedAdd(t, 0x10);
  EXPECT_EQ(ExtractPtr(t2), 0x1010u);
  EXPECT_EQ(ExtractUb(t2), 0x2000u);
}

TEST(TaggedPtrTest, NegativeDeltaWrapsWithinLowBits) {
  const TaggedPtr t = MakeTagged(0x1000, 0x2000);
  const TaggedPtr t2 = TaggedAdd(t, -0x800);
  EXPECT_EQ(ExtractPtr(t2), 0x800u);
  EXPECT_EQ(ExtractUb(t2), 0x2000u);
}

TEST(TaggedPtrTest, OverflowingDeltaCannotCorruptUpperBound) {
  // SS3.2: a malicious 64-bit index must not change UB.
  const TaggedPtr t = MakeTagged(0x1000, 0x2000);
  const TaggedPtr t2 = TaggedAdd(t, 0x7fffffffffffffffLL);
  EXPECT_EQ(ExtractUb(t2), 0x2000u);
  const TaggedPtr t3 = TaggedAdd(t, 0x100000000LL);  // exactly 2^32
  EXPECT_EQ(ExtractPtr(t3), 0x1000u);
  EXPECT_EQ(ExtractUb(t3), 0x2000u);
}

TEST(TaggedPtrTest, IntCastRoundTripPreservesBound) {
  // SS3.2 "Type casts": pointer -> integer -> pointer keeps the tag.
  const TaggedPtr t = MakeTagged(0xabcd, 0xffff);
  const uint64_t as_int = static_cast<uint64_t>(t);
  const TaggedPtr back = static_cast<TaggedPtr>(as_int);
  EXPECT_EQ(ExtractPtr(back), 0xabcdu);
  EXPECT_EQ(ExtractUb(back), 0xffffu);
}

TEST(TaggedPtrTest, WithPtrReplacesLowHalf) {
  const TaggedPtr t = MakeTagged(0x1000, 0x2000);
  EXPECT_EQ(ExtractPtr(WithPtr(t, 0x1500)), 0x1500u);
  EXPECT_EQ(ExtractUb(WithPtr(t, 0x1500)), 0x2000u);
}

TEST(TaggedPtrTest, BoundsViolatedPredicate) {
  // Object [0x100, 0x200), accesses of 4 bytes.
  EXPECT_FALSE(BoundsViolated(0x100, 0x100, 0x200, 4));
  EXPECT_FALSE(BoundsViolated(0x1fc, 0x100, 0x200, 4));
  EXPECT_TRUE(BoundsViolated(0x1fd, 0x100, 0x200, 4));   // last byte past UB
  EXPECT_TRUE(BoundsViolated(0x200, 0x100, 0x200, 1));   // at UB
  EXPECT_TRUE(BoundsViolated(0xff, 0x100, 0x200, 1));    // below LB
  EXPECT_FALSE(BoundsViolated(0x180, 0x100, 0x200, 0));  // zero-size never past UB
}

TEST(TaggedPtrTest, BoundsViolatedNoWraparoundFalseNegative) {
  // p + size overflowing 32 bits must still be caught (64-bit compare).
  EXPECT_TRUE(BoundsViolated(0xfffffff0u, 0x100, 0x200, 0x20));
}

}  // namespace
}  // namespace sgxb
