// Tests for src/farm/resilience: the fault-tolerant farm layer. Pins the
// bit-identity contract (host thread count never changes a resilient result
// byte, every recovery mode produces a distinct pinned digest for the same
// fault campaign), ring failover's bounded key movement, phase-A fault
// containment/classification, and the seeded retry-backoff schedule.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/farm/farm.h"
#include "src/farm/resilience.h"
#include "src/farm/ring.h"

namespace sgxb {
namespace {

// Small faulted fleet used by the digest tests: one crash, one hang, one
// poison event against 4 shards, open-loop at moderate utilization.
FarmConfig FaultedConfig(RecoveryMode mode) {
  FarmConfig cfg;
  cfg.app = FarmApp::kKvStore;
  cfg.policy = PolicyKind::kSgxBounds;
  cfg.shards = 4;
  cfg.load.requests = 4000;
  cfg.open_loop = true;
  cfg.offered_rps = 600000;
  cfg.machine.recovery.enabled = true;
  cfg.resilience.enabled = true;
  cfg.resilience.mode = mode;
  std::string error;
  EXPECT_TRUE(ShardFaultPlan::Parse("crash@1:500,hang@2:1200,poison@0:300;seed=9",
                                    &cfg.resilience.shard_faults, &error))
      << error;
  return cfg;
}

TEST(FarmResilienceTest, DigestInvariantAcrossHostThreads) {
  for (uint32_t m = 0; m < kRecoveryModeCount; ++m) {
    FarmConfig cfg = FaultedConfig(static_cast<RecoveryMode>(m));
    cfg.host_threads = 1;
    const FarmResult ref = RunFarm(cfg);
    EXPECT_TRUE(ref.resilience.enabled);
    for (const uint32_t threads : {4u, 16u}) {
      cfg.host_threads = threads;
      const FarmResult r = RunFarm(cfg);
      EXPECT_EQ(r.digest, ref.digest)
          << RecoveryModeName(cfg.resilience.mode) << " at " << threads
          << " host threads";
      EXPECT_EQ(r.resilience.digest, ref.resilience.digest);
      EXPECT_EQ(r.resilience.completed, ref.resilience.completed);
      EXPECT_EQ(r.makespan_cycles, ref.makespan_cycles);
    }
  }
}

TEST(FarmResilienceTest, RecoveryModesProduceDistinctOutcomes) {
  // The same fault campaign under different recovery policies must not
  // collapse to one timeline: each mode gets its own digest.
  std::set<uint64_t> digests;
  for (uint32_t m = 0; m < kRecoveryModeCount; ++m) {
    const FarmResult r = RunFarm(FaultedConfig(static_cast<RecoveryMode>(m)));
    digests.insert(r.digest);
  }
  EXPECT_EQ(digests.size(), static_cast<size_t>(kRecoveryModeCount));
}

TEST(FarmResilienceTest, RepeatedRunsBitIdentical) {
  const FarmConfig cfg = FaultedConfig(RecoveryMode::kFailoverHedge);
  const FarmResult a = RunFarm(cfg);
  const FarmResult b = RunFarm(cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.resilience.digest, b.resilience.digest);
  EXPECT_EQ(a.resilience.retries, b.resilience.retries);
  EXPECT_EQ(a.resilience.hedges, b.resilience.hedges);
}

TEST(FarmResilienceTest, SupervisorActsPerMode) {
  // Crash + hang: failstop never reacts; restart restarts; failover removes.
  const FarmResult stop = RunFarm(FaultedConfig(RecoveryMode::kFailStop));
  EXPECT_EQ(stop.resilience.detections, 0u);
  EXPECT_EQ(stop.resilience.restarts, 0u);
  EXPECT_EQ(stop.resilience.failovers, 0u);
  EXPECT_GT(stop.resilience.failed_timeout, 0u) << "dead shard with no recovery";

  const FarmResult restart = RunFarm(FaultedConfig(RecoveryMode::kRestart));
  EXPECT_GT(restart.resilience.detections, 0u);
  EXPECT_GT(restart.resilience.restarts, 0u);
  EXPECT_EQ(restart.resilience.failovers, 0u);

  const FarmResult failover = RunFarm(FaultedConfig(RecoveryMode::kFailover));
  EXPECT_GT(failover.resilience.detections, 0u);
  EXPECT_EQ(failover.resilience.restarts, 0u);
  EXPECT_GT(failover.resilience.failovers, 0u);
  EXPECT_GT(failover.resilience.completed, stop.resilience.completed);
}

TEST(FarmResilienceTest, FailoverMovesOnlyVictimKeys) {
  // Ring rebalance on shard removal: keys the victim did not own keep their
  // owner, and every key the victim owned lands on a survivor.
  ConsistentHashRing before(8, 64);
  ConsistentHashRing after(8, 64);
  constexpr uint32_t kVictim = 3;
  ASSERT_TRUE(after.RemoveShard(kVictim));
  EXPECT_EQ(after.live_shards(), 7u);
  uint64_t moved = 0;
  for (uint64_t key = 0; key < 50000; ++key) {
    const uint32_t s0 = before.Route(key);
    const uint32_t s1 = after.Route(key);
    if (s0 != kVictim) {
      EXPECT_EQ(s1, s0) << "key " << key << " moved without owning the victim";
    } else {
      EXPECT_NE(s1, kVictim);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(FarmResilienceTest, PhaseAFaultContainedAndClassified) {
  // A poisoned-metadata event is a real phase-A injection into the victim
  // shard's enclave: the per-request recovery layer contains the trap,
  // classifies it, and the farm survives to report it. memcached re-reads
  // cached objects, so a flipped LB footer reliably trips bounds checks on
  // later requests (kvstore rewrites values too often to keep the victim
  // object live).
  FarmConfig cfg;
  cfg.app = FarmApp::kMemcached;
  cfg.policy = PolicyKind::kSgxBounds;
  cfg.shards = 2;
  cfg.load.requests = 4000;
  cfg.load.keyspace = 16;
  cfg.machine.recovery.enabled = true;
  cfg.resilience.enabled = true;
  cfg.resilience.mode = RecoveryMode::kFailover;
  // Poison only trips requests touching the corrupted keys, so suspect drops
  // interleave with successes; convict on the first one rather than waiting
  // for a consecutive run that key mixing never produces.
  cfg.resilience.sick_threshold = 1;
  std::string error;
  ASSERT_TRUE(ShardFaultPlan::Parse(
      "poison@0:100,poison@0:200,poison@0:300,poison@1:500;seed=5",
      &cfg.resilience.shard_faults, &error))
      << error;
  const FarmResult r = RunFarm(cfg);
  EXPECT_GT(r.fault_totals.total_injected(), 0u) << "injection never fired";
  EXPECT_GT(r.recovery_totals.total_traps(), 0u) << "trap not observed";
  EXPECT_GT(r.recovery_totals.contained, 0u) << "trap not contained";
  // Suspect drops feed the supervisor's conviction counter; a persistently
  // poisoned shard gets convicted and failed over.
  EXPECT_GT(r.resilience.convictions, 0u);
  EXPECT_GT(r.resilience.failovers, 0u);
  // The faulted requests surface as suspect drops in the phase-A view, never
  // as a simulator crash.
  uint64_t dropped = 0;
  for (const FarmShardStats& s : r.shards) {
    EXPECT_FALSE(s.crashed);
    dropped += s.dropped;
  }
  EXPECT_GT(dropped, 0u);
}

TEST(FarmResilienceTest, RetryBackoffReproducibleFromSeed) {
  ResilienceConfig rc;
  // Same (seed, request, attempt) -> same delay, always.
  for (uint32_t req = 0; req < 64; ++req) {
    for (uint32_t attempt = 1; attempt <= rc.max_retries; ++attempt) {
      EXPECT_EQ(RetryBackoffCycles(rc, 42, req, attempt),
                RetryBackoffCycles(rc, 42, req, attempt));
    }
  }
  // Different seeds or requests decorrelate the jitter.
  EXPECT_NE(RetryBackoffCycles(rc, 42, 7, 1), RetryBackoffCycles(rc, 43, 7, 1));
  // Exponential base: attempt k sits in [base<<(k-1), base<<(k-1) + jitter).
  const uint64_t jitter_span = rc.backoff_cycles / 4 + 1;
  for (uint32_t attempt = 1; attempt <= 3; ++attempt) {
    const uint64_t base = rc.backoff_cycles << (attempt - 1);
    const uint64_t d = RetryBackoffCycles(rc, 42, 11, attempt);
    EXPECT_GE(d, base);
    EXPECT_LT(d, base + jitter_span);
  }
  // The exponential growth caps.
  const uint64_t deep = RetryBackoffCycles(rc, 42, 11, 30);
  EXPECT_GE(deep, rc.backoff_cap_cycles);
  EXPECT_LT(deep, rc.backoff_cap_cycles + jitter_span);
}

TEST(FarmResilienceTest, FairWeatherReportStaysZero) {
  // Resilience off: the report must stay inert and the digest must not mix
  // any resilience state (zero-cost-when-off).
  FarmConfig cfg;
  cfg.app = FarmApp::kKvStore;
  cfg.policy = PolicyKind::kSgxBounds;
  cfg.shards = 2;
  cfg.load.requests = 1000;
  const FarmResult r = RunFarm(cfg);
  EXPECT_FALSE(r.resilience.enabled);
  EXPECT_EQ(r.resilience.attempts, 0u);
  EXPECT_EQ(r.resilience.digest, 0u);
  EXPECT_EQ(r.fault_totals.total_injected(), 0u);
  EXPECT_EQ(r.served, 1000u);
}

}  // namespace
}  // namespace sgxb
