// Tests for the set-associative cache model.

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/cache.h"

namespace sgxb {
namespace {

TEST(CacheTest, GeometryDerivedFromSizeAndWays) {
  Cache c(32 * kKiB, 8);
  EXPECT_EQ(c.sets(), 32u * 1024 / 64 / 8);
  EXPECT_EQ(c.ways(), 8u);
}

TEST(CacheTest, MissThenHit) {
  Cache c(32 * kKiB, 8);
  EXPECT_FALSE(c.Access(100));
  EXPECT_TRUE(c.Access(100));
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  Cache c(32 * kKiB, 8);  // 64 sets
  const uint32_t sets = c.sets();
  // Fill one set with 8 distinct lines, then a 9th evicts the LRU (first).
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(c.Access(i * sets));
  }
  // Touch line 0 to make line 1*sets the LRU.
  EXPECT_TRUE(c.Access(0));
  EXPECT_FALSE(c.Access(8 * sets));   // evicts 1*sets
  EXPECT_TRUE(c.Access(0));           // still resident
  EXPECT_FALSE(c.Access(1 * sets));   // was evicted
}

TEST(CacheTest, ContainsDoesNotAllocate) {
  Cache c(32 * kKiB, 8);
  EXPECT_FALSE(c.Contains(5));
  EXPECT_EQ(c.misses(), 0u);
  c.Access(5);
  EXPECT_TRUE(c.Contains(5));
}

TEST(CacheTest, FlushEmptiesCache) {
  Cache c(32 * kKiB, 8);
  c.Access(1);
  c.Access(2);
  c.Flush();
  EXPECT_FALSE(c.Contains(1));
  EXPECT_FALSE(c.Contains(2));
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  Cache c(32 * kKiB, 8);
  const uint32_t lines = static_cast<uint32_t>(32 * kKiB / kCacheLineSize);
  // Two sequential sweeps over 4x the capacity: second sweep still misses.
  uint64_t misses_after_first;
  for (uint32_t i = 0; i < 4 * lines; ++i) {
    c.Access(i);
  }
  misses_after_first = c.misses();
  for (uint32_t i = 0; i < 4 * lines; ++i) {
    c.Access(i);
  }
  EXPECT_EQ(c.misses(), 2 * misses_after_first);
}

TEST(CacheTest, WorkingSetSmallerThanCacheHitsOnReuse) {
  Cache c(32 * kKiB, 8);
  const uint32_t lines = static_cast<uint32_t>(32 * kKiB / kCacheLineSize) / 2;
  for (uint32_t i = 0; i < lines; ++i) {
    c.Access(i);
  }
  const uint64_t misses = c.misses();
  for (uint32_t i = 0; i < lines; ++i) {
    c.Access(i);
  }
  EXPECT_EQ(c.misses(), misses);  // all hits on the second sweep
}

}  // namespace
}  // namespace sgxb
