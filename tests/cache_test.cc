// Tests for the set-associative cache model.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.h"
#include "src/sim/cache.h"

namespace sgxb {
namespace {

TEST(CacheTest, GeometryDerivedFromSizeAndWays) {
  Cache c(32 * kKiB, 8);
  EXPECT_EQ(c.sets(), 32u * 1024 / 64 / 8);
  EXPECT_EQ(c.ways(), 8u);
}

TEST(CacheTest, MissThenHit) {
  Cache c(32 * kKiB, 8);
  EXPECT_FALSE(c.Access(100));
  EXPECT_TRUE(c.Access(100));
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  Cache c(32 * kKiB, 8);  // 64 sets
  const uint32_t sets = c.sets();
  // Fill one set with 8 distinct lines, then a 9th evicts the LRU (first).
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(c.Access(i * sets));
  }
  // Touch line 0 to make line 1*sets the LRU.
  EXPECT_TRUE(c.Access(0));
  EXPECT_FALSE(c.Access(8 * sets));   // evicts 1*sets
  EXPECT_TRUE(c.Access(0));           // still resident
  EXPECT_FALSE(c.Access(1 * sets));   // was evicted
}

TEST(CacheTest, ContainsDoesNotAllocate) {
  Cache c(32 * kKiB, 8);
  EXPECT_FALSE(c.Contains(5));
  EXPECT_EQ(c.misses(), 0u);
  c.Access(5);
  EXPECT_TRUE(c.Contains(5));
}

TEST(CacheTest, FlushEmptiesCache) {
  Cache c(32 * kKiB, 8);
  c.Access(1);
  c.Access(2);
  c.Flush();
  EXPECT_FALSE(c.Contains(1));
  EXPECT_FALSE(c.Contains(2));
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  Cache c(32 * kKiB, 8);
  const uint32_t lines = static_cast<uint32_t>(32 * kKiB / kCacheLineSize);
  // Two sequential sweeps over 4x the capacity: second sweep still misses.
  uint64_t misses_after_first;
  for (uint32_t i = 0; i < 4 * lines; ++i) {
    c.Access(i);
  }
  misses_after_first = c.misses();
  for (uint32_t i = 0; i < 4 * lines; ++i) {
    c.Access(i);
  }
  EXPECT_EQ(c.misses(), 2 * misses_after_first);
}

TEST(CacheTest, RepeatedLineUsesMruFastPath) {
  Cache c(32 * kKiB, 8);
  EXPECT_FALSE(c.Access(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(c.Access(7));
  }
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 100u);
}

TEST(CacheTest, AlternatingTwoLinesHitAfterFirstMisses) {
  // Two lines mapping to the same set, accessed alternately (the data +
  // metadata interleaving pattern the way-1 fast path exists for): both miss
  // once, then every access hits.
  Cache c(32 * kKiB, 8);
  const uint32_t sets = c.sets();
  EXPECT_FALSE(c.Access(0));
  EXPECT_FALSE(c.Access(sets));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(c.Access(0));
    EXPECT_TRUE(c.Access(sets));
  }
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 100u);
}

TEST(CacheTest, AlternationDoesNotDisturbLruOrderOfOtherWays) {
  Cache c(32 * kKiB, 8);  // 64 sets, 8 ways
  const uint32_t sets = c.sets();
  // Fill one set: lines 0..7*sets, LRU order oldest-first.
  for (uint32_t i = 0; i < 8; ++i) {
    c.Access(i * sets);
  }
  // Heavy alternation between the two newest lines (ways 0/1 fast path).
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(c.Access(7 * sets));
    EXPECT_TRUE(c.Access(6 * sets));
  }
  // A new line must evict line 0 (still the LRU), not the alternating pair.
  EXPECT_FALSE(c.Access(8 * sets));
  EXPECT_FALSE(c.Contains(0));
  EXPECT_TRUE(c.Contains(6 * sets));
  EXPECT_TRUE(c.Contains(7 * sets));
  EXPECT_TRUE(c.Contains(1 * sets));
}

// Reference model: exact LRU as a per-set move-to-front list, with none of
// the Cache class's fast paths. The Cache must agree with it access for
// access, for every associativity including direct-mapped (ways == 1, which
// exercises the sentinel slot guarding the inline way-1 probe).
class RefLru {
 public:
  RefLru(uint32_t sets, uint32_t ways) : ways_(ways), sets_(sets) {}

  bool Access(uint32_t line) {
    auto& set = sets_[line % sets_.size()];
    for (size_t i = 0; i < set.size(); ++i) {
      if (set[i] == line) {
        set.erase(set.begin() + i);
        set.insert(set.begin(), line);
        return true;
      }
    }
    set.insert(set.begin(), line);
    if (set.size() > ways_) {
      set.pop_back();
    }
    return false;
  }

 private:
  uint32_t ways_;
  std::vector<std::vector<uint32_t>> sets_;
};

TEST(CacheTest, MatchesReferenceLruOnScrambledTrace) {
  for (uint32_t ways : {1u, 2u, 4u, 8u, 16u}) {
    const uint32_t sets = 16;
    Cache c(static_cast<uint64_t>(sets) * ways * kCacheLineSize, ways);
    ASSERT_EQ(c.sets(), sets);
    RefLru ref(sets, ways);
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint32_t x = 12345;
    for (int i = 0; i < 30000; ++i) {
      x = x * 1664525u + 1013904223u;  // LCG; mix of conflicts and repeats
      const uint32_t line = (x >> 8) % (sets * ways * 2);
      const bool hit = c.Access(line);
      ASSERT_EQ(hit, ref.Access(line)) << "ways=" << ways << " step=" << i;
      ++(hit ? hits : misses);
    }
    EXPECT_EQ(c.hits(), hits) << "ways=" << ways;
    EXPECT_EQ(c.misses(), misses) << "ways=" << ways;
  }
}

TEST(CacheTest, WorkingSetSmallerThanCacheHitsOnReuse) {
  Cache c(32 * kKiB, 8);
  const uint32_t lines = static_cast<uint32_t>(32 * kKiB / kCacheLineSize) / 2;
  for (uint32_t i = 0; i < lines; ++i) {
    c.Access(i);
  }
  const uint64_t misses = c.misses();
  for (uint32_t i = 0; i < lines; ++i) {
    c.Access(i);
  }
  EXPECT_EQ(c.misses(), misses);  // all hits on the second sweep
}

}  // namespace
}  // namespace sgxb
