// Tests for the AddressSanitizer baseline: shadow encoding, redzone
// detection, quarantine behaviour, memory blow-up characteristics.

#include <gtest/gtest.h>

#include <memory>

#include "src/asan/asan_runtime.h"

namespace sgxb {
namespace {

struct Fixture : public ::testing::Test {
  Fixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 256 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 64 * kMiB);
    AsanConfig config;
    config.quarantine_bytes = 1 * kMiB;  // small cap to exercise eviction
    asan = std::make_unique<AsanRuntime>(enclave.get(), heap.get(), config);
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<AsanRuntime> asan;
};

TEST_F(Fixture, ShadowReservationIsOneEighth) {
  EXPECT_EQ(enclave->pages().ReservedForTag("asan-shadow"),
            enclave->pages().space_bytes() / 8);
  // And it counts fully toward virtual memory (the paper's constant 512 MB).
  EXPECT_GE(enclave->PeakVirtualBytes(), enclave->pages().space_bytes() / 8);
}

TEST_F(Fixture, InBoundsAccessPasses) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t p = asan->Malloc(cpu, 100);
  EXPECT_TRUE(asan->CheckAccess(cpu, p, 4, false));
  EXPECT_TRUE(asan->CheckAccess(cpu, p + 96, 4, true));
  EXPECT_TRUE(asan->CheckAccess(cpu, p + 99, 1, true));
}

TEST_F(Fixture, RedzoneHitReports) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t p = asan->Malloc(cpu, 100);
  EXPECT_THROW(asan->CheckAccess(cpu, p - 1, 1, false), SimTrap);
  EXPECT_THROW(asan->CheckAccess(cpu, p + 104, 1, true), SimTrap);  // right rz
  try {
    asan->CheckAccess(cpu, p - 4, 4, false);
    FAIL();
  } catch (const SimTrap& t) {
    EXPECT_EQ(t.kind(), TrapKind::kAsanReport);
  }
}

TEST_F(Fixture, PartialGranuleDetectsTailOverflow) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t p = asan->Malloc(cpu, 5);  // 5 bytes: partial granule
  EXPECT_TRUE(asan->CheckAccess(cpu, p + 4, 1, false));
  EXPECT_THROW(asan->CheckAccess(cpu, p + 5, 1, false), SimTrap);
  EXPECT_THROW(asan->CheckAccess(cpu, p + 4, 4, false), SimTrap);  // spans past 5
}

TEST_F(Fixture, NonFatalModeReturnsFalse) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t p = asan->Malloc(cpu, 16);
  EXPECT_FALSE(asan->CheckAccess(cpu, p - 1, 1, false, /*fatal=*/false));
  EXPECT_EQ(asan->stats().reports, 1u);
}

TEST_F(Fixture, UseAfterFreeDetected) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t p = asan->Malloc(cpu, 64);
  asan->Free(cpu, p);
  EXPECT_THROW(asan->CheckAccess(cpu, p, 4, false), SimTrap);
}

TEST_F(Fixture, DoubleFreeDetected) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t p = asan->Malloc(cpu, 64);
  asan->Free(cpu, p);
  EXPECT_THROW(asan->Free(cpu, p), SimTrap);
}

TEST_F(Fixture, QuarantineDelaysReuse) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = asan->Malloc(cpu, 256);
  asan->Free(cpu, a);
  const uint32_t b = asan->Malloc(cpu, 256);
  EXPECT_NE(a, b);  // the freed block is quarantined, not recycled
}

TEST_F(Fixture, QuarantineEvictsAtCapacity) {
  Cpu& cpu = enclave->main_cpu();
  // Push ~2 MiB through a 1 MiB quarantine.
  for (int i = 0; i < 64; ++i) {
    const uint32_t p = asan->Malloc(cpu, 32 * 1024);
    asan->Free(cpu, p);
  }
  EXPECT_GT(asan->stats().quarantine_evictions, 0u);
  EXPECT_LE(asan->stats().quarantine_bytes_held, 1 * kMiB);
}

TEST_F(Fixture, ChurnGrowsFootprintUnlikePlainHeap) {
  // The swaptions effect: alloc/free churn with quarantine keeps eating new
  // pages instead of recycling.
  Cpu& cpu = enclave->main_cpu();
  const uint64_t before = enclave->pages().committed_bytes();
  for (int i = 0; i < 512; ++i) {
    const uint32_t p = asan->Malloc(cpu, 1024);
    asan->Free(cpu, p);
  }
  const uint64_t growth = enclave->pages().committed_bytes() - before;
  EXPECT_GT(growth, 400u * 1024);  // ~512 KB of dead-but-held blocks
}

TEST_F(Fixture, RedzoneScalesWithAllocationSize) {
  EXPECT_EQ(asan->RedzoneFor(16), 16u);
  EXPECT_GE(asan->RedzoneFor(1 << 20), 256u);
  EXPECT_LE(asan->RedzoneFor(64 * 1024 * 1024), 2048u);
}

TEST_F(Fixture, ShadowChecksGenerateMetadataTraffic) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t p = asan->Malloc(cpu, 64);
  const uint64_t before = cpu.counters().metadata_loads;
  asan->CheckAccess(cpu, p, 4, false);
  EXPECT_EQ(cpu.counters().metadata_loads, before + 1);
}

TEST_F(Fixture, RegisterObjectPoisonsAround) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t raw = heap->Alloc(cpu, 256, 64);
  const uint32_t user = raw + 64;
  asan->RegisterObject(cpu, user, 64, AsanRuntime::kShadowGlobalRedzone);
  EXPECT_TRUE(asan->CheckAccess(cpu, user, 8, false));
  EXPECT_THROW(asan->CheckAccess(cpu, user - 8, 8, false), SimTrap);
  EXPECT_THROW(asan->CheckAccess(cpu, user + 64, 8, false), SimTrap);
}

}  // namespace
}  // namespace sgxb
