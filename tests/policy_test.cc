// Cross-policy tests: the same kernel must produce identical *data* under
// all four policies while exhibiting the paper's cost ordering; hardened
// policies must catch the same overflow the native run misses.

#include <gtest/gtest.h>

#include "src/policy/run.h"

namespace sgxb {
namespace {

MachineSpec SmallSpec() {
  MachineSpec spec;
  spec.space_bytes = 512 * kMiB;
  spec.heap_reserve = 128 * kMiB;
  spec.epc_bytes = 16 * kMiB;
  return spec;
}

// A little array-copy kernel (the paper's Fig. 4 example) returning a
// checksum computed inside the policy world.
template <typename P>
uint64_t CopyKernel(Env<P>& env, uint32_t n) {
  auto& cpu = env.cpu;
  auto s = env.policy.Malloc(cpu, n * 8);
  auto d = env.policy.Malloc(cpu, n * 8);
  for (uint32_t i = 0; i < n; ++i) {
    env.policy.template Store<uint64_t>(cpu, env.policy.Offset(cpu, s, i * 8), i * 31 + 7);
  }
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t v =
        env.policy.template Load<uint64_t>(cpu, env.policy.Offset(cpu, s, i * 8));
    env.policy.template Store<uint64_t>(cpu, env.policy.Offset(cpu, d, i * 8), v);
  }
  uint64_t sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += env.policy.template Load<uint64_t>(cpu, env.policy.Offset(cpu, d, i * 8));
  }
  return sum;
}

TEST(PolicyTest, AllPoliciesComputeSameResult) {
  uint64_t sums[4];
  int i = 0;
  for (PolicyKind kind : kAllPolicies) {
    uint64_t out = 0;
    const RunResult r = RunPolicyKind(kind, SmallSpec(), PolicyOptions{},
                                      [&](auto& env) { out = CopyKernel(env, 1000); });
    EXPECT_FALSE(r.crashed) << PolicyName(kind) << ": " << r.trap_message;
    sums[i++] = out;
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[1], sums[2]);
  EXPECT_EQ(sums[2], sums[3]);
}

TEST(PolicyTest, CostOrderingMatchesPaper) {
  // native <= sgxbounds < asan for a simple scalar kernel.
  uint64_t cycles[4] = {0, 0, 0, 0};
  int i = 0;
  for (PolicyKind kind : kAllPolicies) {  // native, mpx, asan, sgxbounds
    const RunResult r = RunPolicyKind(kind, SmallSpec(), PolicyOptions{},
                                      [&](auto& env) { CopyKernel(env, 4000); });
    cycles[i++] = r.cycles;
  }
  const uint64_t native = cycles[0];
  const uint64_t sgxbounds = cycles[3];
  const uint64_t asan = cycles[2];
  EXPECT_LT(native, sgxbounds);
  EXPECT_LT(sgxbounds, asan);
}

TEST(PolicyTest, HardenedPoliciesCatchOverflow) {
  for (PolicyKind kind : {PolicyKind::kAsan, PolicyKind::kMpx, PolicyKind::kSgxBounds}) {
    const RunResult r =
        RunPolicyKind(kind, SmallSpec(), PolicyOptions{}, [&](auto& env) {
          auto& cpu = env.cpu;
          auto a = env.policy.Malloc(cpu, 64);
          // Off-by-one write past the object.
          env.policy.template Store<uint8_t>(cpu, env.policy.Offset(cpu, a, 64), 1);
        });
    EXPECT_TRUE(r.crashed) << PolicyName(kind);
  }
}

TEST(PolicyTest, NativeMissesSmallOverflowIntoNeighbour) {
  // The point of the paper: native SGX silently corrupts.
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, SmallSpec(), PolicyOptions{}, [&](auto& env) {
        auto& cpu = env.cpu;
        auto a = env.policy.Malloc(cpu, 64);
        env.policy.template Store<uint8_t>(cpu, env.policy.Offset(cpu, a, 64), 1);
      });
  EXPECT_FALSE(r.crashed);
}

TEST(PolicyTest, SgxBoundsMemoryOverheadIsTiny) {
  const uint32_t n = 512;  // 512 x 4 KiB objects
  auto body = [&](auto& env) {
    for (uint32_t i = 0; i < n; ++i) {
      env.policy.Malloc(env.cpu, 4096 - 16);
    }
  };
  const RunResult native =
      RunPolicyKind(PolicyKind::kNative, SmallSpec(), PolicyOptions{}, body);
  const RunResult sgxb =
      RunPolicyKind(PolicyKind::kSgxBounds, SmallSpec(), PolicyOptions{}, body);
  const RunResult asan = RunPolicyKind(PolicyKind::kAsan, SmallSpec(), PolicyOptions{}, body);
  EXPECT_LT(sgxb.VmRatioOver(native), 1.05);
  EXPECT_GT(asan.VmRatioOver(native), 2.0);  // shadow reservation dominates
}

TEST(PolicyTest, MpxPointerChasingAllocatesTables) {
  const RunResult r =
      RunPolicyKind(PolicyKind::kMpx, SmallSpec(), PolicyOptions{}, [&](auto& env) {
        auto& cpu = env.cpu;
        using Ptr = typename std::decay_t<decltype(env.policy)>::Ptr;
        // An array of pointers to small objects (the pca pattern).
        auto arr = env.policy.Malloc(cpu, 1000 * kPtrSlotBytes);
        for (uint32_t i = 0; i < 1000; ++i) {
          Ptr obj = env.policy.Malloc(cpu, 64);
          env.policy.StorePtr(cpu, env.policy.Offset(cpu, arr, i * kPtrSlotBytes), obj);
        }
      });
  EXPECT_FALSE(r.crashed);
  EXPECT_GE(r.mpx_bt_count, 1u);
}

TEST(PolicyTest, SgxBoundsPointerInMemoryKeepsBounds) {
  const RunResult r = RunPolicyKind(
      PolicyKind::kSgxBounds, SmallSpec(), PolicyOptions{}, [&](auto& env) {
        auto& cpu = env.cpu;
        auto slot_arr = env.policy.Malloc(cpu, kPtrSlotBytes);
        auto obj = env.policy.Malloc(cpu, 32);
        env.policy.StorePtr(cpu, slot_arr, obj);
        auto loaded = env.policy.LoadPtr(cpu, slot_arr);
        // Bounds survived the round trip: OOB through the loaded pointer traps.
        env.policy.template Store<uint8_t>(cpu, env.policy.Offset(cpu, loaded, 32), 1);
      });
  EXPECT_TRUE(r.crashed);
  EXPECT_EQ(r.trap, TrapKind::kSgxBoundsViolation);
}

TEST(PolicyTest, MpxLosesBoundsThroughForeignStore) {
  // A pointer stored without bndstx (e.g. by uninstrumented code) loads back
  // with INIT bounds -> the attack is missed. SGXBounds does not have this
  // hole (previous test).
  const RunResult r = RunPolicyKind(
      PolicyKind::kMpx, SmallSpec(), PolicyOptions{}, [&](auto& env) {
        auto& cpu = env.cpu;
        auto slot = env.policy.Malloc(cpu, kPtrSlotBytes);
        auto obj = env.policy.Malloc(cpu, 32);
        // Raw store bypassing bndstx: what memcpy-ing a struct of pointers
        // through uninstrumented libc does.
        env.policy.enclave()->template Store<uint64_t>(cpu, env.policy.AddrOf(slot),
                                                       env.policy.AddrOf(obj));
        auto loaded = env.policy.LoadPtr(cpu, slot);
        env.policy.template Store<uint8_t>(cpu, env.policy.Offset(cpu, loaded, 32), 1);
      });
  EXPECT_FALSE(r.crashed);  // silently unprotected
}

TEST(PolicyTest, SpanHoistingReducesSgxBoundsCost) {
  auto body = [&](auto& env) {
    auto& cpu = env.cpu;
    const uint32_t n = 20000;
    auto a = env.policy.Malloc(cpu, n * 4);
    auto span = env.policy.OpenSpan(cpu, a, n * 4);
    for (uint32_t i = 0; i < n; ++i) {
      span.template Store<uint32_t>(cpu, i * 4, i);
    }
  };
  PolicyOptions with_opt;
  PolicyOptions no_opt;
  no_opt.opt_hoist_checks = false;
  const RunResult fast =
      RunPolicyKind(PolicyKind::kSgxBounds, SmallSpec(), with_opt, body);
  const RunResult slow = RunPolicyKind(PolicyKind::kSgxBounds, SmallSpec(), no_opt, body);
  EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(PolicyTest, SafeElisionReducesFieldAccessCost) {
  auto body = [&](auto& env) {
    auto& cpu = env.cpu;
    auto obj = env.policy.Malloc(cpu, 64);
    for (int i = 0; i < 5000; ++i) {
      env.policy.template StoreField<uint32_t>(cpu, obj, 16, i);
    }
  };
  PolicyOptions with_opt;
  PolicyOptions no_opt;
  no_opt.opt_safe_elision = false;
  const RunResult fast =
      RunPolicyKind(PolicyKind::kSgxBounds, SmallSpec(), with_opt, body);
  const RunResult slow = RunPolicyKind(PolicyKind::kSgxBounds, SmallSpec(), no_opt, body);
  EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(PolicyTest, OutsideEnclaveIsFasterThanInside) {
  MachineSpec inside = SmallSpec();
  MachineSpec outside = SmallSpec();
  outside.enclave_mode = false;
  auto body = [&](auto& env) { CopyKernel(env, 20000); };
  const RunResult in_r = RunPolicyKind(PolicyKind::kNative, inside, PolicyOptions{}, body);
  const RunResult out_r = RunPolicyKind(PolicyKind::kNative, outside, PolicyOptions{}, body);
  EXPECT_GT(in_r.cycles, out_r.cycles);
  EXPECT_GT(in_r.counters.epc_faults, 0u);
  EXPECT_EQ(out_r.counters.epc_faults, 0u);
}

TEST(PolicyTest, RunResultRatios) {
  RunResult base;
  base.cycles = 100;
  base.peak_vm_bytes = 1000;
  RunResult other;
  other.cycles = 117;
  other.peak_vm_bytes = 1001;
  EXPECT_NEAR(other.CyclesRatioOver(base), 1.17, 1e-9);
  EXPECT_NEAR(other.VmRatioOver(base), 1.001, 1e-9);
}

}  // namespace
}  // namespace sgxb
