// Tests for the enclave facade: address space, page manager reservations,
// commit/guard semantics, typed access, VM accounting.

#include <gtest/gtest.h>

#include "src/enclave/enclave.h"

namespace sgxb {
namespace {

EnclaveConfig SmallConfig() {
  EnclaveConfig cfg;
  cfg.space_bytes = 64 * kMiB;
  cfg.sim.epc_bytes = 8 * kMiB;
  return cfg;
}

TEST(EnclaveTest, StoreLoadRoundTrip) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  const uint32_t base = e.pages().ReserveLow(kPageSize, "test");
  e.pages().Commit(&cpu, base, kPageSize);
  e.Store<uint64_t>(cpu, base + 8, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(e.Load<uint64_t>(cpu, base + 8), 0xdeadbeefcafef00dULL);
}

TEST(EnclaveTest, UncommittedAccessTraps) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  const uint32_t base = e.pages().ReserveLow(kPageSize, "test");
  EXPECT_THROW(e.Load<uint32_t>(cpu, base), SimTrap);
  try {
    e.Load<uint32_t>(cpu, base);
    FAIL() << "expected trap";
  } catch (const SimTrap& t) {
    EXPECT_EQ(t.kind(), TrapKind::kSegFault);
  }
}

TEST(EnclaveTest, NullPageIsGuard) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  EXPECT_THROW(e.Load<uint32_t>(cpu, 0), SimTrap);
  EXPECT_THROW(e.Load<uint32_t>(cpu, 100), SimTrap);
}

TEST(EnclaveTest, TopPageIsGuard) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  const uint32_t top = static_cast<uint32_t>(e.config().space_bytes - 8);
  EXPECT_THROW(e.Load<uint32_t>(cpu, top), SimTrap);
}

TEST(EnclaveTest, AccessSpanningGuardPageTraps) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  const uint32_t base = e.pages().ReserveLow(3 * kPageSize, "test");
  e.pages().Commit(&cpu, base, 3 * kPageSize);
  e.pages().SetGuardPage(PageOf(base) + 1);
  // A large access spanning the guard page in the middle must trap.
  uint8_t buf[2 * kPageSize + 16];
  EXPECT_THROW(e.LoadBytes(cpu, base, buf, sizeof(buf)), SimTrap);
}

TEST(EnclaveTest, CommittedPagesAreZeroed) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  const uint32_t base = e.pages().ReserveLow(kPageSize, "test");
  e.pages().Commit(&cpu, base, kPageSize);
  e.Store<uint32_t>(cpu, base, 42);
  e.pages().Decommit(base, kPageSize);
  e.pages().Commit(&cpu, base, kPageSize);
  EXPECT_EQ(e.Load<uint32_t>(cpu, base), 0u);
}

TEST(EnclaveTest, CommitChargesMinorFaultsOnce) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  const uint32_t base = e.pages().ReserveLow(4 * kPageSize, "test");
  e.pages().Commit(&cpu, base, 4 * kPageSize);
  EXPECT_EQ(cpu.counters().minor_faults, 4u);
  e.pages().Commit(&cpu, base, 4 * kPageSize);  // idempotent
  EXPECT_EQ(cpu.counters().minor_faults, 4u);
}

TEST(EnclaveTest, VmAccountingFullVsOnCommit) {
  Enclave e(SmallConfig());
  Cpu& cpu = e.main_cpu();
  const uint64_t vm0 = e.pages().vm_bytes();
  const uint32_t lazy = e.pages().ReserveLow(8 * kPageSize, "heap", VmAccounting::kOnCommit);
  EXPECT_EQ(e.pages().vm_bytes(), vm0);  // nothing committed yet
  e.pages().Commit(&cpu, lazy, 2 * kPageSize);
  EXPECT_EQ(e.pages().vm_bytes(), vm0 + 2 * kPageSize);
  e.pages().ReserveHigh(16 * kPageSize, "shadow", VmAccounting::kFull);
  EXPECT_EQ(e.pages().vm_bytes(), vm0 + 2 * kPageSize + 16 * kPageSize);
  EXPECT_GE(e.PeakVirtualBytes(), e.pages().vm_bytes());
}

TEST(EnclaveTest, ReserveExhaustionTrapsOom) {
  Enclave e(SmallConfig());
  EXPECT_THROW(e.pages().ReserveLow(128 * kMiB, "too-big"), SimTrap);
  try {
    e.pages().ReserveHigh(128 * kMiB, "too-big");
    FAIL();
  } catch (const SimTrap& t) {
    EXPECT_EQ(t.kind(), TrapKind::kOutOfMemory);
  }
}

TEST(EnclaveTest, HighAndLowRegionsDoNotOverlap) {
  Enclave e(SmallConfig());
  const uint32_t low = e.pages().ReserveLow(kMiB, "low");
  const uint32_t high = e.pages().ReserveHigh(kMiB, "high");
  EXPECT_LT(low + kMiB, high);
}

TEST(EnclaveTest, ReservedForTagSums) {
  Enclave e(SmallConfig());
  e.pages().ReserveLow(kPageSize, "bt");
  e.pages().ReserveLow(kPageSize, "bt");
  e.pages().ReserveLow(kPageSize, "other");
  EXPECT_EQ(e.pages().ReservedForTag("bt"), 2u * kPageSize);
}

TEST(EnclaveTest, TotalCountersAggregatesAllCpus) {
  Enclave e(SmallConfig());
  Cpu& main = e.main_cpu();
  Cpu* extra = e.NewCpu();
  main.Alu(5);
  extra->Alu(7);
  EXPECT_EQ(e.TotalCounters().alu_ops, 12u);
}

TEST(EnclaveTest, PeekPokeBypassCharging) {
  Enclave e(SmallConfig());
  const uint32_t base = e.pages().ReserveLow(kPageSize, "test");
  e.pages().Commit(nullptr, base, kPageSize);
  e.Poke<uint32_t>(base, 7);
  EXPECT_EQ(e.Peek<uint32_t>(base), 7u);
  EXPECT_EQ(e.main_cpu().cycles(), 0u);
}

TEST(TrapTest, MessagesNameTheKind) {
  const SimTrap t(TrapKind::kSgxBoundsViolation, 0x1234, "test");
  EXPECT_NE(std::string(t.what()).find("SGXBOUNDS-VIOLATION"), std::string::npos);
  EXPECT_EQ(t.addr(), 0x1234u);
}

}  // namespace
}  // namespace sgxb
