// Integration tests for the case-study applications: functional correctness
// of the kvstore/memcached/httpd/nginx analogues under every policy, plus
// the SS7 security reproductions (Heartbleed, CVE-2011-4971, CVE-2013-2028).

#include <gtest/gtest.h>

#include "src/apps/httpd.h"
#include "src/apps/kvstore.h"
#include "src/apps/memcached.h"
#include "src/apps/netserver.h"
#include "src/apps/nginx_app.h"

namespace sgxb {
namespace {

MachineSpec AppSpec() {
  MachineSpec spec;
  spec.space_bytes = 2 * kGiB;
  spec.heap_reserve = 1 * kGiB;
  return spec;
}

// --- kvstore -------------------------------------------------------------------

TEST(KvStoreTest, InsertGetRoundTripAllPolicies) {
  for (PolicyKind kind : kAllPolicies) {
    const RunResult r = RunPolicyKind(kind, AppSpec(), PolicyOptions{}, [&](auto& env) {
      using P = std::decay_t<decltype(env.policy)>;
      KvStore<P> store(&env.policy, &env.cpu);
      for (uint64_t k = 0; k < 5000; ++k) {
        store.Insert((k * 7919) % 5000, 120);
      }
      uint64_t word = 0;
      for (uint64_t k = 0; k < 5000; ++k) {
        ASSERT_TRUE(store.Get(k, &word)) << "key " << k;
      }
      ASSERT_FALSE(store.Get(999999, &word));
    });
    EXPECT_FALSE(r.crashed) << PolicyName(kind) << ": " << r.trap_message;
  }
}

TEST(KvStoreTest, UpdateAndScan) {
  const RunResult r =
      RunPolicyKind(PolicyKind::kSgxBounds, AppSpec(), PolicyOptions{}, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        KvStore<P> store(&env.policy, &env.cpu);
        for (uint64_t k = 0; k < 2000; ++k) {
          store.Insert(k, 64);
        }
        ASSERT_TRUE(store.Update(1234, 0xabcd));
        uint64_t word = 0;
        ASSERT_TRUE(store.Get(1234, &word));
        EXPECT_EQ(word, 0xabcdu);
        EXPECT_GT(store.Scan(500, 10), 0u);
        EXPECT_FALSE(store.Update(99999, 1));
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
}

TEST(KvStoreTest, SpeedtestRunsAndCountsHits) {
  SpeedtestConfig cfg;
  cfg.items = 20000;
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, AppSpec(), PolicyOptions{}, [&](auto& env) {
        const SpeedtestResult result = RunSpeedtest(env, cfg);
        EXPECT_EQ(result.misses, 0u);
        EXPECT_EQ(result.hits, cfg.items);
        EXPECT_GT(result.scanned, 0u);
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
}

TEST(KvStoreTest, SgxBoundsCostWithinPaperEnvelope) {
  // Fig. 1: SGXBounds SQLite overhead is 30-35%; allow a generous envelope.
  SpeedtestConfig cfg;
  cfg.items = 15000;
  auto run = [&](PolicyKind kind) {
    return RunPolicyKind(kind, AppSpec(), PolicyOptions{},
                         [&](auto& env) { RunSpeedtest(env, cfg); });
  };
  const RunResult native = run(PolicyKind::kNative);
  const RunResult sgxb = run(PolicyKind::kSgxBounds);
  EXPECT_GT(sgxb.CyclesRatioOver(native), 1.0);
  EXPECT_LT(sgxb.CyclesRatioOver(native), 1.8);
  EXPECT_LT(sgxb.VmRatioOver(native), 1.1);
}

// --- memcached -------------------------------------------------------------------

TEST(MemcachedTest, SetGetProtocol) {
  for (PolicyKind kind : kAllPolicies) {
    const RunResult r = RunPolicyKind(kind, AppSpec(), PolicyOptions{}, [&](auto& env) {
      using P = std::decay_t<decltype(env.policy)>;
      SyscallShim shim(&env.enclave);
      Memcached<P> cache(&env.policy, &env.cpu, &shim, 1024);
      cache.Set(42, 512);
      cache.Set(43, 512);
      EXPECT_EQ(cache.Get(42), 512u);
      EXPECT_EQ(cache.Get(99), 0u);
      EXPECT_EQ(cache.item_count(), 2u);
      cache.Set(42, 256);  // replace
      EXPECT_EQ(cache.Get(42), 256u);
      EXPECT_EQ(cache.item_count(), 2u);
      EXPECT_GT(cache.ServeRequest("G 42"), 0u);
      EXPECT_GT(cache.ServeRequest("S 77 128"), 0u);
      EXPECT_EQ(cache.Get(77), 128u);
    });
    EXPECT_FALSE(r.crashed) << PolicyName(kind) << ": " << r.trap_message;
  }
}

TEST(MemcachedTest, Cve2011_4971DetectedByAllDefenses) {
  for (PolicyKind kind : {PolicyKind::kAsan, PolicyKind::kMpx, PolicyKind::kSgxBounds}) {
    const RunResult r = RunPolicyKind(kind, AppSpec(), PolicyOptions{}, [&](auto& env) {
      using P = std::decay_t<decltype(env.policy)>;
      SyscallShim shim(&env.enclave);
      Memcached<P> cache(&env.policy, &env.cpu, &shim, 1024);
      std::string outcome;
      cache.HandleBinarySet(-1, &outcome);  // negative body length
    });
    EXPECT_TRUE(r.crashed) << PolicyName(kind);
  }
}

TEST(MemcachedTest, Cve2011_4971CorruptsNative) {
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, AppSpec(), PolicyOptions{}, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        Memcached<P> cache(&env.policy, &env.cpu, &shim, 1024);
        std::string outcome;
        EXPECT_FALSE(cache.HandleBinarySet(-1, &outcome));
      });
  EXPECT_FALSE(r.crashed);
}

TEST(MemcachedTest, BoundlessModeSurvivesCve) {
  PolicyOptions options;
  options.oob = OobPolicy::kBoundless;
  const RunResult r =
      RunPolicyKind(PolicyKind::kSgxBounds, AppSpec(), options, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        Memcached<P> cache(&env.policy, &env.cpu, &shim, 1024);
        std::string outcome;
        cache.HandleBinarySet(-1, &outcome);
        // The overflow was absorbed by the overlay; the cache still works.
        cache.Set(1, 64);
        EXPECT_EQ(cache.Get(1), 64u);
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
}

// --- httpd / Heartbleed -------------------------------------------------------------

TEST(HttpdTest, ServesRequestsAllPolicies) {
  for (PolicyKind kind : kAllPolicies) {
    const RunResult r = RunPolicyKind(kind, AppSpec(), PolicyOptions{}, [&](auto& env) {
      using P = std::decay_t<decltype(env.policy)>;
      SyscallShim shim(&env.enclave);
      Httpd<P> server(&env.policy, &env.cpu, &shim);
      const uint32_t c0 = server.OpenConnection();
      const uint32_t c1 = server.OpenConnection();
      server.ServeGet(c0, "GET / HTTP/1.1\r\n\r\n");
      server.ServeGet(c1, "GET /index.html HTTP/1.1\r\n\r\n");
      EXPECT_EQ(server.requests_served(), 2u);
    });
    EXPECT_FALSE(r.crashed) << PolicyName(kind) << ": " << r.trap_message;
  }
}

TEST(HttpdTest, PoolFooterPageArtifact) {
  // SS7: Apache's page-aligned pools + the 4-byte footer => ~+50% memory for
  // SGXBounds relative to native, far below ASan's shadow-dominated usage.
  auto run = [&](PolicyKind kind) {
    return RunPolicyKind(kind, AppSpec(), PolicyOptions{}, [&](auto& env) {
      using P = std::decay_t<decltype(env.policy)>;
      SyscallShim shim(&env.enclave);
      Httpd<P> server(&env.policy, &env.cpu, &shim);
      for (int i = 0; i < 64; ++i) {
        server.OpenConnection();
      }
    });
  };
  const RunResult native = run(PolicyKind::kNative);
  const RunResult sgxb = run(PolicyKind::kSgxBounds);
  const RunResult asan = run(PolicyKind::kAsan);
  EXPECT_GT(sgxb.VmRatioOver(native), 1.2);  // the pool-page artifact
  EXPECT_LT(sgxb.VmRatioOver(native), 1.7);
  EXPECT_GT(asan.VmRatioOver(native), 5.0);  // shadow reservation dominates
}

TEST(HttpdTest, HeartbleedLeaksUnderNative) {
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, AppSpec(), PolicyOptions{}, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        Httpd<P> server(&env.policy, &env.cpu, &shim);
        bool survived = false;
        const auto echoed = server.Heartbeat(16, 256, &survived);
        ASSERT_EQ(echoed.size(), 256u);
        const std::string as_str(echoed.begin(), echoed.end());
        EXPECT_NE(as_str.find("PRIVATE-KEY"), std::string::npos)
            << "the over-read should have leaked the adjacent secret";
      });
  EXPECT_FALSE(r.crashed);
}

TEST(HttpdTest, HeartbleedDetectedByAllDefenses) {
  for (PolicyKind kind : {PolicyKind::kAsan, PolicyKind::kMpx, PolicyKind::kSgxBounds}) {
    const RunResult r = RunPolicyKind(kind, AppSpec(), PolicyOptions{}, [&](auto& env) {
      using P = std::decay_t<decltype(env.policy)>;
      SyscallShim shim(&env.enclave);
      Httpd<P> server(&env.policy, &env.cpu, &shim);
      bool survived = false;
      server.Heartbeat(16, 256, &survived);
    });
    EXPECT_TRUE(r.crashed) << PolicyName(kind);
  }
}

TEST(HttpdTest, HeartbleedBoundlessAnswersZerosAndContinues) {
  // SS7: "SGXBounds ... copies zeros into the reply ... allowing Apache to
  // continue its execution."
  PolicyOptions options;
  options.oob = OobPolicy::kBoundless;
  const RunResult r =
      RunPolicyKind(PolicyKind::kSgxBounds, AppSpec(), options, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        Httpd<P> server(&env.policy, &env.cpu, &shim);
        bool survived = false;
        const auto echoed = server.Heartbeat(16, 256, &survived);
        EXPECT_TRUE(survived);
        ASSERT_EQ(echoed.size(), 256u);
        // The legitimate 16 payload bytes come back; everything past the
        // object bound reads as zeros - no secret bytes.
        for (size_t i = 16; i < echoed.size(); ++i) {
          EXPECT_EQ(echoed[i], 0) << "index " << i;
        }
        const uint32_t cid = server.OpenConnection();
        server.ServeGet(cid, "GET / HTTP/1.1\r\n\r\n");
        EXPECT_EQ(server.requests_served(), 1u);
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
}

// --- nginx / CVE-2013-2028 ------------------------------------------------------------

TEST(NginxTest, ServesPageWithDoubleCopy) {
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, AppSpec(), PolicyOptions{}, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        NginxApp<P> server(&env.policy, &env.cpu, &shim);
        server.ServeGet("GET / HTTP/1.1\r\n\r\n");
        EXPECT_EQ(server.requests_served(), 1u);
        // Both copies happened: >= 2x page bytes moved out via the shim.
        EXPECT_GE(shim.stats().bytes_out, NginxApp<P>::kPageBytes);
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
}

TEST(NginxTest, BenignChunkAccepted) {
  const RunResult r =
      RunPolicyKind(PolicyKind::kSgxBounds, AppSpec(), PolicyOptions{}, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        NginxApp<P> server(&env.policy, &env.cpu, &shim);
        bool survived = false;
        std::string detail;
        EXPECT_FALSE(server.ChunkedRequest("400", &survived, &detail));
        EXPECT_TRUE(survived);
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
}

TEST(NginxTest, Cve2013_2028SmashesStackNative) {
  const RunResult r =
      RunPolicyKind(PolicyKind::kNative, AppSpec(), PolicyOptions{}, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        NginxApp<P> server(&env.policy, &env.cpu, &shim);
        bool survived = false;
        std::string detail;
        // 0xffffffffffffff0 parses to a negative off_t.
        EXPECT_TRUE(server.ChunkedRequest("fffffffffffffff0", &survived, &detail));
        EXPECT_TRUE(survived) << detail;  // silently corrupted, keeps running
      });
  EXPECT_FALSE(r.crashed);
}

TEST(NginxTest, Cve2013_2028DetectedByAllDefenses) {
  // The worker catches the trap and dies (survived == false); the stack is
  // never smashed. That per-worker fail-stop is the detection - nginx's
  // master would respawn the worker.
  for (PolicyKind kind : {PolicyKind::kAsan, PolicyKind::kMpx, PolicyKind::kSgxBounds}) {
    const RunResult r = RunPolicyKind(kind, AppSpec(), PolicyOptions{}, [&](auto& env) {
      using P = std::decay_t<decltype(env.policy)>;
      SyscallShim shim(&env.enclave);
      NginxApp<P> server(&env.policy, &env.cpu, &shim);
      bool survived = true;
      std::string detail;
      const bool smashed = server.ChunkedRequest("fffffffffffffff0", &survived, &detail);
      EXPECT_FALSE(smashed) << PolicyName(kind);
      EXPECT_FALSE(survived) << PolicyName(kind) << ": " << detail;
    });
    EXPECT_FALSE(r.crashed) << PolicyName(kind) << ": " << r.trap_message;
  }
}

TEST(NginxTest, Cve2013_2028BoundlessDropsAndContinues) {
  PolicyOptions options;
  options.oob = OobPolicy::kBoundless;
  const RunResult r =
      RunPolicyKind(PolicyKind::kSgxBounds, AppSpec(), options, [&](auto& env) {
        using P = std::decay_t<decltype(env.policy)>;
        SyscallShim shim(&env.enclave);
        NginxApp<P> server(&env.policy, &env.cpu, &shim);
        bool survived = false;
        std::string detail;
        const bool smashed = server.ChunkedRequest("fffffffffffffff0", &survived, &detail);
        EXPECT_FALSE(smashed);
        EXPECT_TRUE(survived);
        EXPECT_TRUE(server.StillServing());
      });
  EXPECT_FALSE(r.crashed) << r.trap_message;
}

// --- closed-loop curve ---------------------------------------------------------------

TEST(NetServerTest, ClosedLoopShape) {
  // Below saturation: latency flat, throughput linear in clients.
  const CurvePoint a = ClosedLoopPoint(1, 4, 36000);
  const CurvePoint b = ClosedLoopPoint(4, 4, 36000);
  EXPECT_NEAR(a.latency_ms, b.latency_ms, 1e-9);
  EXPECT_NEAR(b.kops_per_sec, 4 * a.kops_per_sec, 1e-6);
  // Beyond saturation: throughput flat, latency linear.
  const CurvePoint c = ClosedLoopPoint(16, 4, 36000);
  EXPECT_NEAR(c.kops_per_sec, b.kops_per_sec, 1e-6);
  EXPECT_NEAR(c.latency_ms, 4 * b.latency_ms, 1e-9);
}

}  // namespace
}  // namespace sgxb
