// Directed tests for the template JIT tier (src/ir/exec/jit/): the pieces
// the engine-differential fuzzer cannot reach - the PROT_EXEC fallback path
// (forced via SGXB_IR_FORCE_NOEXEC), the helper-only cross-check mode
// (SGXB_IR_JIT_HELPER_ONLY), the per-function code cache, and the W^X
// discipline of the installed code mappings.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/enclave/trap.h"
#include "src/ir/builder.h"
#include "src/ir/exec/decoder.h"
#include "src/ir/exec/jit/code_buffer.h"
#include "src/ir/exec/jit/compiler.h"
#include "src/ir/interp.h"
#include "src/ir/passes.h"

namespace sgxb {
namespace {

// Sets an environment variable for one scope; restores the prior state on
// destruction so test order cannot leak knobs.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

struct Rig {
  Rig() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 1 * kMiB);
    sgx = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    interp = std::make_unique<Interpreter>(enclave.get(), heap.get(), stack.get());
    interp->AttachSgx(sgx.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<SgxBoundsRuntime> sgx;
  std::unique_ptr<Interpreter> interp;
};

// Store-load kernel with enough shape to exercise fused superinstructions
// and (instrumented) gep+check+access quads through the JIT.
IrFunction BuildKernel(uint32_t n, bool instrument) {
  IrBuilder b("jitk");
  const ValueId buf = b.Malloc(b.Const(static_cast<int64_t>(n) * 8));
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  ValueId x = b.Mul(loop.iv, b.Const(0x9e3779b9));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kShl, x, b.Const(13)));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kLShr, x, b.Const(7)));
  b.Store(IrType::kI64, x, b.Gep(buf, loop.iv, 8));
  b.EndLoop(loop);
  const ValueId r = b.Load(IrType::kI64, b.Gep(buf, b.Const(n / 2), 8));
  b.Free(buf);
  b.Ret(r);
  IrFunction fn = b.Finish();
  if (instrument) {
    RunSgxBoundsPass(fn, SgxPassOptions{});
  }
  return fn;
}

struct Outcome {
  bool trapped = false;
  uint64_t result = 0;
  uint64_t steps = 0;
  PerfCounters counters;
};

Outcome RunOn(IrEngine engine, const IrFunction& fn) {
  Rig rig;
  rig.interp->set_engine(engine);
  Outcome out;
  try {
    out.result = rig.interp->Run(fn, rig.enclave->main_cpu());
  } catch (const SimTrap&) {
    out.trapped = true;
  }
  out.steps = rig.interp->stats().steps;
  out.counters = rig.enclave->main_cpu().counters();
  return out;
}

TEST(IrJit, NoexecKnobDisablesExecutableMemory) {
  ScopedEnv guard("SGXB_IR_FORCE_NOEXEC", "1");
  EXPECT_FALSE(jit::JitExecutableAvailable());
}

TEST(IrJit, FallsBackToThreadedWhenExecUnavailable) {
  const IrFunction fn = BuildKernel(32, /*instrument=*/true);
  const Outcome ref = RunOn(IrEngine::kReference, fn);
  ASSERT_FALSE(ref.trapped);

  ScopedEnv guard("SGXB_IR_FORCE_NOEXEC", "1");
  const IrExecStatsSnapshot before = SnapshotIrExecStats();
  Rig rig;
  rig.interp->set_engine(IrEngine::kJit);
  const uint64_t result = rig.interp->Run(fn, rig.enclave->main_cpu());
  EXPECT_EQ(result, ref.result);
  EXPECT_EQ(rig.interp->stats().steps, ref.steps);
  EXPECT_TRUE(rig.enclave->main_cpu().counters() == ref.counters);
  // The fallback ran the threaded engine: nothing was compiled or cached.
  EXPECT_EQ(rig.interp->jit_cache().size(), 0u);
  const IrExecStatsSnapshot after = SnapshotIrExecStats();
  EXPECT_GT(after.jit_noexec_fallbacks, before.jit_noexec_fallbacks);
}

TEST(IrJit, HelperOnlyModeIsBitIdentical) {
  // Thunk-vs-template cross-check: every non-control op routed through the
  // slow-path helpers must reproduce the reference run exactly.
  for (const bool instrument : {false, true}) {
    const IrFunction fn = BuildKernel(48, instrument);
    const Outcome ref = RunOn(IrEngine::kReference, fn);
    ScopedEnv guard("SGXB_IR_JIT_HELPER_ONLY", "1");
    const Outcome jit = RunOn(IrEngine::kJit, fn);
    EXPECT_EQ(jit.trapped, ref.trapped) << "instrument " << instrument;
    EXPECT_EQ(jit.result, ref.result) << "instrument " << instrument;
    EXPECT_EQ(jit.steps, ref.steps) << "instrument " << instrument;
    EXPECT_TRUE(jit.counters == ref.counters) << "instrument " << instrument;
  }
}

TEST(IrJit, CodeCacheReusesCompiledPrograms) {
  if (!jit::JitExecutableAvailable()) {
    GTEST_SKIP() << "no executable memory in this sandbox";
  }
  Rig rig;
  rig.interp->set_engine(IrEngine::kJit);
  const IrFunction fn = BuildKernel(8, /*instrument=*/false);
  const uint64_t first = rig.interp->Run(fn, rig.enclave->main_cpu());
  const uint64_t second = rig.interp->Run(fn, rig.enclave->main_cpu());
  const uint64_t third = rig.interp->Run(fn, rig.enclave->main_cpu());
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, third);
  EXPECT_EQ(rig.interp->jit_cache().misses(), 1u);
  EXPECT_EQ(rig.interp->jit_cache().hits(), 2u);
  EXPECT_EQ(rig.interp->jit_cache().size(), 1u);
  EXPECT_GT(rig.interp->jit_cache().compiled_bytes(), 0u);
  // Instrumenting changes the function hash: a separate cache entry.
  const IrFunction hardened = BuildKernel(8, /*instrument=*/true);
  rig.interp->Run(hardened, rig.enclave->main_cpu());
  EXPECT_EQ(rig.interp->jit_cache().size(), 2u);
}

#if defined(__linux__)
TEST(IrJit, InstalledCodeIsWriteXorExecute) {
  if (!jit::JitExecutableAvailable()) {
    GTEST_SKIP() << "no executable memory in this sandbox";
  }
  const IrFunction fn = BuildKernel(8, /*instrument=*/false);
  const DecodedFunction df = DecodeFunction(fn, DecodeOptions{});
  jit::JitProgram jp = jit::CompileDecodedFunction(df);
  ASSERT_TRUE(jp.ok());
  const uintptr_t entry = reinterpret_cast<uintptr_t>(jp.entry);

  // The mapping holding the entry point must be r-x (never writable).
  std::ifstream maps("/proc/self/maps");
  ASSERT_TRUE(maps.is_open());
  std::string line;
  bool found = false;
  while (std::getline(maps, line)) {
    uintptr_t lo = 0, hi = 0;
    char perms[8] = {0};
    if (std::sscanf(line.c_str(), "%lx-%lx %7s", &lo, &hi, perms) != 3) {
      continue;
    }
    if (entry >= lo && entry < hi) {
      found = true;
      EXPECT_EQ(perms[0], 'r') << line;
      EXPECT_EQ(perms[1], '-') << "JIT code mapped writable: " << line;
      EXPECT_EQ(perms[2], 'x') << line;
      break;
    }
  }
  EXPECT_TRUE(found) << "JIT entry point not found in /proc/self/maps";
}
#endif  // __linux__

}  // namespace
}  // namespace sgxb
