// Tests for the enclave heap allocator: alignment, reuse, coalescing,
// exhaustion, stats.

#include <gtest/gtest.h>

#include "src/runtime/heap.h"

namespace sgxb {
namespace {

struct HeapFixture : public ::testing::Test {
  HeapFixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
};

TEST_F(HeapFixture, AllocReturnsAlignedUsableMemory) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = heap->Alloc(cpu, 100);
  EXPECT_EQ(a % 16, 0u);
  enclave->Store<uint32_t>(cpu, a, 1);
  enclave->Store<uint32_t>(cpu, a + 96, 2);
  EXPECT_EQ(enclave->Load<uint32_t>(cpu, a), 1u);
}

TEST_F(HeapFixture, DistinctBlocksDoNotOverlap) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = heap->Alloc(cpu, 64);
  const uint32_t b = heap->Alloc(cpu, 64);
  EXPECT_TRUE(a + 64 <= b || b + 64 <= a);
}

TEST_F(HeapFixture, FreeEnablesReuse) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = heap->Alloc(cpu, 128);
  heap->Free(cpu, a);
  const uint32_t b = heap->Alloc(cpu, 128);
  EXPECT_EQ(a, b);  // first-fit reuses the freed block
}

TEST_F(HeapFixture, CoalescingMergesNeighbours) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = heap->Alloc(cpu, 64);
  const uint32_t b = heap->Alloc(cpu, 64);
  const uint32_t c = heap->Alloc(cpu, 64);
  (void)c;
  heap->Free(cpu, a);
  heap->Free(cpu, b);
  // a+b coalesced: a 128-byte alloc fits at a.
  const uint32_t d = heap->Alloc(cpu, 128);
  EXPECT_EQ(d, a);
}

TEST_F(HeapFixture, CustomAlignmentHonored) {
  Cpu& cpu = enclave->main_cpu();
  heap->Alloc(cpu, 24);  // misalign the cursor
  const uint32_t a = heap->Alloc(cpu, 64, 1024);
  EXPECT_EQ(a % 1024, 0u);
}

TEST_F(HeapFixture, ExhaustionThrowsOom) {
  Cpu& cpu = enclave->main_cpu();
  EXPECT_THROW(heap->Alloc(cpu, 32 * kMiB), SimTrap);
}

TEST_F(HeapFixture, TryAllocReturnsZeroInsteadOfThrowing) {
  Cpu& cpu = enclave->main_cpu();
  EXPECT_EQ(heap->TryAlloc(cpu, 32 * kMiB), 0u);
  EXPECT_EQ(heap->stats().failed_allocs, 1u);
}

TEST_F(HeapFixture, StatsTrackLiveAndPeak) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = heap->Alloc(cpu, 1000);
  const uint32_t b = heap->Alloc(cpu, 2000);
  EXPECT_EQ(heap->stats().live_bytes, 3000u);
  heap->Free(cpu, a);
  EXPECT_EQ(heap->stats().live_bytes, 2000u);
  EXPECT_EQ(heap->stats().peak_live_bytes, 3000u);
  heap->Free(cpu, b);
  EXPECT_EQ(heap->stats().alloc_calls, 2u);
  EXPECT_EQ(heap->stats().free_calls, 2u);
}

TEST_F(HeapFixture, BlockSizeReturnsRequestedSize) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = heap->Alloc(cpu, 100);
  EXPECT_EQ(heap->BlockSize(a), 100u);
}

TEST_F(HeapFixture, IsLiveInteriorPointer) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t a = heap->Alloc(cpu, 100);
  EXPECT_TRUE(heap->IsLive(a));
  EXPECT_TRUE(heap->IsLive(a + 50));
  EXPECT_FALSE(heap->IsLive(a + 100));
  heap->Free(cpu, a);
  EXPECT_FALSE(heap->IsLive(a));
}

TEST_F(HeapFixture, ChurnStaysBounded) {
  // Alloc/free churn must reuse memory instead of growing the footprint
  // (this is the property ASan's quarantine deliberately breaks).
  Cpu& cpu = enclave->main_cpu();
  const uint64_t before = enclave->pages().committed_bytes();
  for (int i = 0; i < 10000; ++i) {
    const uint32_t p = heap->Alloc(cpu, 256);
    heap->Free(cpu, p);
  }
  const uint64_t after = enclave->pages().committed_bytes();
  EXPECT_LE(after - before, 8u * kPageSize);
}

TEST_F(HeapFixture, VmGrowsWithCommitNotReserve) {
  Cpu& cpu = enclave->main_cpu();
  const uint64_t vm0 = enclave->pages().vm_bytes();
  heap->Alloc(cpu, 1 * kMiB);
  EXPECT_GE(enclave->pages().vm_bytes(), vm0 + 1 * kMiB);
  EXPECT_LT(enclave->pages().vm_bytes(), vm0 + 2 * kMiB);
}

}  // namespace
}  // namespace sgxb
