// Tests for boundless memory (SS4.2): redirected stores/loads, zero-fill
// semantics, LRU eviction, capacity bound, integration with the runtime's
// kBoundless policy.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {
namespace {

struct Fixture : public ::testing::Test {
  Fixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    rt = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get(), OobPolicy::kBoundless);
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SgxBoundsRuntime> rt;
};

TEST_F(Fixture, OobLoadWithNoChunkReturnsZero) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  // Dirty the adjacent memory so a missed redirect would read nonzero.
  const TaggedPtr q = rt->Malloc(cpu, 64);
  rt->Store<uint32_t>(cpu, q, 0xdeadbeefu);
  EXPECT_EQ(rt->Load<uint32_t>(cpu, TaggedAdd(p, 64)), 0u);
  EXPECT_EQ(rt->boundless().stats().zero_fills, 1u);
}

TEST_F(Fixture, OobStoreDoesNotCorruptNeighbour) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr a = rt->Malloc(cpu, 64);
  const TaggedPtr b = rt->Malloc(cpu, 64);
  rt->Store<uint32_t>(cpu, b, 1111);
  // Overflow `a` far enough to land inside `b` if not redirected.
  const int64_t delta = static_cast<int64_t>(ExtractPtr(b)) - ExtractPtr(a);
  rt->Store<uint32_t>(cpu, TaggedAdd(a, delta), 2222);
  EXPECT_EQ(rt->Load<uint32_t>(cpu, b), 1111u);  // neighbour intact
}

TEST_F(Fixture, OobStoreThenLoadSeesValueThroughOverlay) {
  // The "illusion of boundless memory": OOB store then OOB load from the
  // same address observes the stored value.
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  rt->Store<uint32_t>(cpu, TaggedAdd(p, 100), 777);
  EXPECT_EQ(rt->Load<uint32_t>(cpu, TaggedAdd(p, 100)), 777u);
  EXPECT_EQ(rt->boundless().stats().redirected_stores, 1u);
  EXPECT_EQ(rt->boundless().stats().redirected_loads, 1u);
}

TEST_F(Fixture, InBoundsAccessesUnaffected) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  rt->Store<uint32_t>(cpu, p, 5);
  EXPECT_EQ(rt->Load<uint32_t>(cpu, p), 5u);
  EXPECT_EQ(rt->boundless().stats().redirected_loads, 0u);
  EXPECT_EQ(rt->boundless().stats().redirected_stores, 0u);
}

TEST_F(Fixture, ChunksAreReusedWithinSameKilobyte) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  rt->Store<uint32_t>(cpu, TaggedAdd(p, 100), 1);
  rt->Store<uint32_t>(cpu, TaggedAdd(p, 104), 2);
  rt->Store<uint32_t>(cpu, TaggedAdd(p, 200), 3);
  EXPECT_EQ(rt->boundless().stats().chunk_allocs, 1u);  // same 1 KiB chunk
}

TEST_F(Fixture, LruCapacityBoundsOverlayMemory) {
  // A "negative size" style bug touching many distinct KBs cannot allocate
  // more than the 1 MiB cap (1024 chunks).
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  BoundlessMemory& bl = rt->boundless();
  for (uint32_t k = 0; k < 3000; ++k) {
    rt->Store<uint32_t>(cpu, TaggedAdd(p, 1024 + k * BoundlessMemory::kChunkBytes), k);
  }
  EXPECT_LE(bl.chunk_count(), BoundlessMemory::kDefaultCapacity / BoundlessMemory::kChunkBytes);
  EXPECT_GT(bl.stats().chunk_evictions, 0u);
}

TEST_F(Fixture, EvictedChunkReadsAsZeroAgain) {
  Cpu& cpu = enclave->main_cpu();
  BoundlessMemory bl(enclave.get(), heap.get(), /*capacity_bytes=*/2 * BoundlessMemory::kChunkBytes);
  // Two chunks fit; writing a third evicts the first.
  const uint32_t a1 = bl.RedirectStore(cpu, 0x100000);
  enclave->Store<uint32_t>(cpu, a1, 11);
  bl.RedirectStore(cpu, 0x200000);
  bl.RedirectStore(cpu, 0x300000);
  uint32_t out = 0;
  EXPECT_FALSE(bl.RedirectLoad(cpu, 0x100000, &out));  // evicted -> zeros
}

// --- behaviour at the full 1 MiB default cap (1024 chunks) ----------------

TEST_F(Fixture, EvictionOrderAtFullOneMibCap) {
  Cpu& cpu = enclave->main_cpu();
  BoundlessMemory bl(enclave.get(), heap.get());  // default 1 MiB cap
  const uint32_t kChunks =
      BoundlessMemory::kDefaultCapacity / BoundlessMemory::kChunkBytes;
  auto addr_of = [](uint32_t i) {
    return 0x01000000u + i * BoundlessMemory::kChunkBytes;
  };
  for (uint32_t i = 0; i < kChunks; ++i) {
    const uint32_t ov = bl.RedirectStore(cpu, addr_of(i));
    enclave->Store<uint32_t>(cpu, ov, i + 1);
  }
  ASSERT_EQ(bl.chunk_count(), kChunks);
  EXPECT_EQ(bl.stats().chunk_evictions, 0u);

  // Refresh chunk 0 (now MRU); the next insert must evict chunk 1, the true
  // least-recently-used, not chunk 0.
  uint32_t out = 0;
  ASSERT_TRUE(bl.RedirectLoad(cpu, addr_of(0), &out));
  EXPECT_EQ(enclave->Load<uint32_t>(cpu, out), 1u);
  bl.RedirectStore(cpu, addr_of(kChunks));
  EXPECT_EQ(bl.stats().chunk_evictions, 1u);
  EXPECT_TRUE(bl.RedirectLoad(cpu, addr_of(0), &out)) << "MRU chunk was evicted";
  EXPECT_FALSE(bl.RedirectLoad(cpu, addr_of(1), &out)) << "LRU chunk survived";
}

TEST_F(Fixture, EvictedOverlayStorageIsReusedAtCap) {
  Cpu& cpu = enclave->main_cpu();
  BoundlessMemory bl(enclave.get(), heap.get());
  const uint32_t kChunks =
      BoundlessMemory::kDefaultCapacity / BoundlessMemory::kChunkBytes;
  auto addr_of = [](uint32_t i) {
    return 0x01000000u + i * BoundlessMemory::kChunkBytes;
  };
  // Chunk-aligned stores return the chunk's overlay base directly.
  std::set<uint32_t> bases;
  for (uint32_t i = 0; i < kChunks; ++i) {
    bases.insert(bl.RedirectStore(cpu, addr_of(i)));
  }
  ASSERT_EQ(bases.size(), kChunks);
  // Past the cap, every insert evicts one chunk and recycles its overlay
  // storage: the overlay never grows beyond its 1 MiB arena.
  for (uint32_t i = 0; i < 256; ++i) {
    const uint32_t base = bl.RedirectStore(cpu, addr_of(kChunks + i));
    EXPECT_TRUE(bases.count(base) != 0)
        << "chunk " << i << " allocated fresh storage instead of reusing";
  }
  EXPECT_EQ(bl.chunk_count(), kChunks);
  EXPECT_EQ(bl.stats().chunk_evictions, 256u);
  EXPECT_EQ(bl.stats().chunk_allocs, kChunks + 256u);
}

TEST_F(Fixture, EvictedReadsReturnZerosAtFullCap) {
  Cpu& cpu = enclave->main_cpu();
  BoundlessMemory bl(enclave.get(), heap.get());
  const uint32_t kChunks =
      BoundlessMemory::kDefaultCapacity / BoundlessMemory::kChunkBytes;
  auto addr_of = [](uint32_t i) {
    return 0x01000000u + i * BoundlessMemory::kChunkBytes;
  };
  const uint32_t marker_addr = addr_of(0);
  enclave->Store<uint32_t>(cpu, bl.RedirectStore(cpu, marker_addr), 0xabcdu);

  // Fill the whole cap with fresh chunks; the marker chunk is pushed out.
  for (uint32_t i = 1; i <= kChunks; ++i) {
    bl.RedirectStore(cpu, addr_of(i));
  }
  uint32_t out = 0;
  EXPECT_FALSE(bl.RedirectLoad(cpu, marker_addr, &out)) << "marker survived the cap";

  // Re-inserting the marker's chunk recycles overlay storage that previously
  // held 0xabcd; a new chunk must still read as zeros.
  const uint32_t fresh = bl.RedirectStore(cpu, marker_addr + 4);
  EXPECT_EQ(enclave->Load<uint32_t>(cpu, fresh - 4), 0u);
}

// --- overlay-exhaustion degradation policy --------------------------------

TEST_F(Fixture, EvictOldestIsTheDefaultAndTripsNothing) {
  Cpu& cpu = enclave->main_cpu();
  BoundlessMemory bl(enclave.get(), heap.get(), 2 * BoundlessMemory::kChunkBytes);
  EXPECT_EQ(bl.exhaust_policy(), OverlayExhaustPolicy::kEvictOldest);
  bl.RedirectStore(cpu, 0x100000);
  bl.RedirectStore(cpu, 0x200000);
  bl.RedirectStore(cpu, 0x300000);  // over capacity: quiet eviction
  EXPECT_EQ(bl.stats().chunk_evictions, 1u);
  EXPECT_EQ(bl.stats().exhaust_trips, 0u);
}

TEST_F(Fixture, FailFastExhaustTrapsAtCapacity) {
  Cpu& cpu = enclave->main_cpu();
  BoundlessMemory bl(enclave.get(), heap.get(), 2 * BoundlessMemory::kChunkBytes);
  bl.set_exhaust_policy(OverlayExhaustPolicy::kFailFast);
  const uint32_t a1 = bl.RedirectStore(cpu, 0x100000);
  enclave->Store<uint32_t>(cpu, a1, 42);
  bl.RedirectStore(cpu, 0x200000);
  try {
    bl.RedirectStore(cpu, 0x300000);
    FAIL() << "overlay exhaustion did not trap under kFailFast";
  } catch (const SimTrap& trap) {
    EXPECT_EQ(trap.kind(), TrapKind::kOutOfMemory);
    EXPECT_NE(std::string(trap.what()).find("boundless overlay exhausted"),
              std::string::npos);
  }
  // The trap fired *instead of* evicting: existing chunks are intact.
  EXPECT_EQ(bl.stats().exhaust_trips, 1u);
  EXPECT_EQ(bl.stats().chunk_evictions, 0u);
  EXPECT_EQ(bl.chunk_count(), 2u);
  uint32_t out = 0;
  ASSERT_TRUE(bl.RedirectLoad(cpu, 0x100000, &out));
  EXPECT_EQ(enclave->Load<uint32_t>(cpu, out), 42u);
}

TEST_F(Fixture, ExhaustPolicyCanDegradeMidRun) {
  // A service can start fail-fast (loud) and switch to evict-oldest
  // (degraded-but-alive) after the first trip.
  Cpu& cpu = enclave->main_cpu();
  BoundlessMemory bl(enclave.get(), heap.get(), 2 * BoundlessMemory::kChunkBytes);
  bl.set_exhaust_policy(OverlayExhaustPolicy::kFailFast);
  bl.RedirectStore(cpu, 0x100000);
  bl.RedirectStore(cpu, 0x200000);
  EXPECT_THROW(bl.RedirectStore(cpu, 0x300000), SimTrap);
  bl.set_exhaust_policy(OverlayExhaustPolicy::kEvictOldest);
  bl.RedirectStore(cpu, 0x300000);  // now succeeds by evicting the oldest
  EXPECT_EQ(bl.stats().exhaust_trips, 1u);
  EXPECT_EQ(bl.stats().chunk_evictions, 1u);
  uint32_t out = 0;
  EXPECT_FALSE(bl.RedirectLoad(cpu, 0x100000, &out));  // oldest was evicted
  EXPECT_TRUE(bl.RedirectLoad(cpu, 0x300000, &out));
}

TEST_F(Fixture, RuntimeExhaustTrapReportsUniformFormat) {
  // Through the full runtime path: a fail-fast overlay exhaustion surfaces
  // as "kind @ addr: detail" like every other trap.
  rt->boundless().set_exhaust_policy(OverlayExhaustPolicy::kFailFast);
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  const uint32_t cap_chunks =
      BoundlessMemory::kDefaultCapacity / BoundlessMemory::kChunkBytes;
  try {
    for (uint32_t k = 0; k <= cap_chunks; ++k) {
      rt->Store<uint32_t>(cpu, TaggedAdd(p, 1024 + k * BoundlessMemory::kChunkBytes), k);
    }
    FAIL() << "overlay exhaustion did not trap";
  } catch (const SimTrap& trap) {
    EXPECT_EQ(trap.kind(), TrapKind::kOutOfMemory);
    const std::string msg = trap.what();
    EXPECT_NE(msg.find("OUT-OF-MEMORY @ 0x"), std::string::npos) << msg;
  }
}

TEST_F(Fixture, RedirectIsChargedAsSlowPath) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  const uint64_t before = cpu.cycles();
  rt->Load<uint32_t>(cpu, p);
  const uint64_t fast = cpu.cycles() - before;
  const uint64_t before2 = cpu.cycles();
  rt->Load<uint32_t>(cpu, TaggedAdd(p, 5000));
  const uint64_t slow = cpu.cycles() - before2;
  EXPECT_GT(slow, fast * 3);
}

TEST_F(Fixture, FailFastModeStillTraps) {
  rt->set_policy(OobPolicy::kFailFast);
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  EXPECT_THROW(rt->Load<uint32_t>(cpu, TaggedAdd(p, 64)), SimTrap);
}

}  // namespace
}  // namespace sgxb
