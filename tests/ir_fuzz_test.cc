// Differential fuzzing of the instrumentation passes: generate random (but
// memory-safe) canonical IR programs, run them uninstrumented and under each
// of the three passes, and require
//   (1) identical results (passes preserve semantics),
//   (2) zero violations (no false positives on safe programs),
// and for deliberately-broken variants,
//   (3) the SGXBounds pass traps while the uninstrumented run corrupts.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/passes.h"

namespace sgxb {
namespace {

struct FuzzRig {
  FuzzRig() {
    EnclaveConfig cfg;
    cfg.space_bytes = 256 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 64 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 4 * kMiB);
    sgx = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    asan = std::make_unique<AsanRuntime>(enclave.get(), heap.get());
    mpx = std::make_unique<MpxRuntime>(enclave.get());
    interp = std::make_unique<Interpreter>(enclave.get(), heap.get(), stack.get());
    interp->AttachSgx(sgx.get());
    interp->AttachAsan(asan.get());
    interp->AttachMpx(mpx.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<SgxBoundsRuntime> sgx;
  std::unique_ptr<AsanRuntime> asan;
  std::unique_ptr<MpxRuntime> mpx;
  std::unique_ptr<Interpreter> interp;
};

// Generates a random program of `n_arrays` arrays, a few counted loops doing
// stores/loads/arithmetic at safe indices, returning a checksum. With
// `overflow`, one loop bound exceeds its array by one element.
IrFunction GenerateProgram(uint64_t seed, bool overflow) {
  Rng rng(seed);
  IrBuilder b("fuzz");
  const uint32_t n_arrays = 2 + rng.NextBounded(3);
  std::vector<ValueId> arrays;
  std::vector<uint32_t> sizes;  // in i64 elements
  for (uint32_t a = 0; a < n_arrays; ++a) {
    const uint32_t elems = 8 + static_cast<uint32_t>(rng.NextBounded(120));
    sizes.push_back(elems);
    if (rng.NextBounded(2) == 0) {
      arrays.push_back(b.Malloc(b.Const(elems * 8)));
    } else {
      arrays.push_back(b.Alloca(elems * 8));
    }
  }
  // Init loops.
  for (uint32_t a = 0; a < n_arrays; ++a) {
    auto loop = b.BeginCountedLoop(b.Const(0), b.Const(sizes[a]), 1);
    const ValueId v = b.Mul(loop.iv, b.Const(static_cast<int64_t>(rng.NextBounded(13) + 1)));
    b.Store(IrType::kI64, v, b.Gep(arrays[a], loop.iv, 8));
    b.EndLoop(loop);
  }
  // Compute loops: read one array, combine, store into another.
  const uint32_t acc_cell = 0;
  const ValueId acc = b.Alloca(8);
  b.Store(IrType::kI64, b.Const(0), acc);
  for (int pass = 0; pass < 3; ++pass) {
    const uint32_t src = static_cast<uint32_t>(rng.NextBounded(n_arrays));
    const uint32_t dst = static_cast<uint32_t>(rng.NextBounded(n_arrays));
    const uint32_t limit = std::min(sizes[src], sizes[dst]);
    const uint32_t bound = overflow && pass == 1 ? limit + 1 : limit;
    auto loop = b.BeginCountedLoop(b.Const(0), b.Const(bound), 1);
    const ValueId v = b.Load(IrType::kI64, b.Gep(arrays[src], loop.iv, 8));
    const ValueId w = b.Add(v, b.Const(static_cast<int64_t>(rng.NextBounded(97))));
    b.Store(IrType::kI64, w, b.Gep(arrays[dst], loop.iv, 8));
    const ValueId old = b.Load(IrType::kI64, acc);
    b.Store(IrType::kI64, b.Add(old, w), acc);
    b.EndLoop(loop);
  }
  (void)acc_cell;
  b.Ret(b.Load(IrType::kI64, acc));
  return b.Finish();
}

class IrFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IrFuzz, PassesPreserveSemanticsOnSafePrograms) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 7919 + 3;
  uint64_t reference = 0;
  {
    FuzzRig rig;
    IrFunction fn = GenerateProgram(seed, /*overflow=*/false);
    reference = rig.interp->Run(fn, rig.enclave->main_cpu());
  }
  {
    FuzzRig rig;
    IrFunction fn = GenerateProgram(seed, false);
    for (const bool elide : {false, true}) {
      for (const bool hoist : {false, true}) {
        FuzzRig inner;
        IrFunction hardened = GenerateProgram(seed, false);
        SgxPassOptions options;
        options.elide_safe = elide;
        options.hoist_loops = hoist;
        RunSgxBoundsPass(hardened, options);
        EXPECT_EQ(inner.interp->Run(hardened, inner.enclave->main_cpu()), reference)
            << "seed " << seed << " elide " << elide << " hoist " << hoist;
        EXPECT_EQ(inner.sgx->stats().violations, 0u);
      }
    }
  }
  {
    FuzzRig rig;
    IrFunction hardened = GenerateProgram(seed, false);
    RunAsanPass(hardened);
    EXPECT_EQ(rig.interp->Run(hardened, rig.enclave->main_cpu()), reference);
    EXPECT_EQ(rig.asan->stats().reports, 0u);
  }
  {
    FuzzRig rig;
    IrFunction hardened = GenerateProgram(seed, false);
    RunMpxPass(hardened);
    EXPECT_EQ(rig.interp->Run(hardened, rig.enclave->main_cpu()), reference);
    EXPECT_EQ(rig.mpx->stats().violations, 0u);
  }
}

TEST_P(IrFuzz, SgxPassTrapsOnOverflowingVariant) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 7919 + 3;
  // Uninstrumented: runs to completion (silent corruption).
  {
    FuzzRig rig;
    IrFunction fn = GenerateProgram(seed, /*overflow=*/true);
    EXPECT_NO_THROW(rig.interp->Run(fn, rig.enclave->main_cpu()));
  }
  // Hardened: must trap, with or without the optimizations.
  for (const bool opts : {false, true}) {
    FuzzRig rig;
    IrFunction fn = GenerateProgram(seed, true);
    SgxPassOptions options;
    options.elide_safe = opts;
    options.hoist_loops = opts;
    RunSgxBoundsPass(fn, options);
    EXPECT_THROW(rig.interp->Run(fn, rig.enclave->main_cpu()), SimTrap)
        << "seed " << seed << " opts " << opts;
  }
}

// --- engine differential coverage ----------------------------------------------
//
// Every random program - safe and overflowing, under every instrumentation
// pass - must behave identically on the reference, threaded, and jit
// engines: same return value or same trap, same interpreter stats, and
// bit-identical PerfCounters (the engines' definition of "same simulation").

enum class Hardening { kNone, kSgx, kSgxOpt, kAsan, kMpx };

struct EngineOutcome {
  bool trapped = false;
  std::string trap_detail;
  uint64_t result = 0;
  PerfCounters counters;
  InterpStats stats;
};

EngineOutcome RunUnderEngine(IrEngine engine, uint64_t seed, bool overflow,
                             Hardening hardening) {
  FuzzRig rig;
  rig.interp->set_engine(engine);
  IrFunction fn = GenerateProgram(seed, overflow);
  switch (hardening) {
    case Hardening::kNone:
      break;
    case Hardening::kSgx:
      RunSgxBoundsPass(fn, SgxPassOptions{});
      break;
    case Hardening::kSgxOpt: {
      SgxPassOptions options;
      options.elide_safe = true;
      options.hoist_loops = true;
      RunSgxBoundsPass(fn, options);
      break;
    }
    case Hardening::kAsan:
      RunAsanPass(fn);
      break;
    case Hardening::kMpx:
      RunMpxPass(fn);
      break;
  }
  EngineOutcome out;
  try {
    out.result = rig.interp->Run(fn, rig.enclave->main_cpu());
  } catch (const SimTrap& trap) {
    out.trapped = true;
    out.trap_detail = trap.what();
  }
  out.counters = rig.enclave->main_cpu().counters();
  out.stats = rig.interp->stats();
  return out;
}

TEST_P(IrFuzz, EnginesAgreeOnEveryProgram) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 7919 + 3;
  for (const bool overflow : {false, true}) {
    for (const Hardening hardening : {Hardening::kNone, Hardening::kSgx,
                                      Hardening::kSgxOpt, Hardening::kAsan,
                                      Hardening::kMpx}) {
      const EngineOutcome ref =
          RunUnderEngine(IrEngine::kReference, seed, overflow, hardening);
      for (const IrEngine other : {IrEngine::kThreaded, IrEngine::kJit}) {
        const EngineOutcome out =
            RunUnderEngine(other, seed, overflow, hardening);
        const std::string what = "seed " + std::to_string(seed) + " overflow " +
                                 std::to_string(overflow) + " hardening " +
                                 std::to_string(static_cast<int>(hardening)) +
                                 " engine " + IrEngineName(other);
        EXPECT_EQ(ref.trapped, out.trapped) << what;
        EXPECT_EQ(ref.trap_detail, out.trap_detail) << what;
        EXPECT_EQ(ref.result, out.result) << what;
        EXPECT_TRUE(ref.counters == out.counters) << what;
        EXPECT_EQ(ref.stats.steps, out.stats.steps) << what;
        EXPECT_EQ(ref.stats.loads, out.stats.loads) << what;
        EXPECT_EQ(ref.stats.stores, out.stats.stores) << what;
        EXPECT_EQ(ref.stats.checks, out.stats.checks) << what;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace sgxb
