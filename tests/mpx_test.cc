// Tests for the Intel MPX emulation: checks, table walks, on-demand BT
// allocation, the stored-pointer-value escape hatch, register file.

#include <gtest/gtest.h>

#include <memory>

#include "src/mpx/mpx_runtime.h"
#include "src/runtime/heap.h"

namespace sgxb {
namespace {

struct Fixture : public ::testing::Test {
  Fixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 256 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 64 * kMiB);
    mpx = std::make_unique<MpxRuntime>(enclave.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<MpxRuntime> mpx;
};

TEST_F(Fixture, BdReservedAtStartup) {
  EXPECT_EQ(enclave->pages().ReservedForTag("mpx-bd"), 32u * kKiB);
}

TEST_F(Fixture, BndCheckPassesInBounds) {
  Cpu& cpu = enclave->main_cpu();
  const MpxBounds b = mpx->BndMk(cpu, 0x1000, 0x100);
  EXPECT_TRUE(mpx->BndCheck(cpu, b, 0x1000, 4));
  EXPECT_TRUE(mpx->BndCheck(cpu, b, 0x10fc, 4));
}

TEST_F(Fixture, BndCheckTrapsOutOfBounds) {
  Cpu& cpu = enclave->main_cpu();
  const MpxBounds b = mpx->BndMk(cpu, 0x1000, 0x100);
  EXPECT_THROW(mpx->BndCheck(cpu, b, 0x10fd, 4), SimTrap);
  EXPECT_THROW(mpx->BndCheck(cpu, b, 0xfff, 1), SimTrap);
  try {
    mpx->BndCheck(cpu, b, 0x2000, 1);
    FAIL();
  } catch (const SimTrap& t) {
    EXPECT_EQ(t.kind(), TrapKind::kMpxBoundRange);
  }
}

TEST_F(Fixture, InitBoundsNeverTrap) {
  Cpu& cpu = enclave->main_cpu();
  const MpxBounds init;
  EXPECT_TRUE(init.IsInit());
  EXPECT_TRUE(mpx->BndCheck(cpu, init, 0xdeadbeef, 8));
}

TEST_F(Fixture, StxLdxRoundTrip) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t slot = heap->Alloc(cpu, 8);
  const MpxBounds b = mpx->BndMk(cpu, 0x4000, 0x40);
  mpx->BndStx(cpu, slot, 0x4000, b);
  // Invalidate the register so the load must walk the tables.
  mpx->RegInvalidate(slot);
  const MpxBounds loaded = mpx->BndLdx(cpu, slot, 0x4000);
  EXPECT_EQ(loaded.lb, 0x4000u);
  EXPECT_EQ(loaded.ub, 0x4040u);
}

TEST_F(Fixture, ValueMismatchReturnsInitBounds) {
  // The pointer at `slot` was overwritten without bndstx (uninstrumented
  // libc or a data race): MPX silently drops protection.
  Cpu& cpu = enclave->main_cpu();
  const uint32_t slot = heap->Alloc(cpu, 8);
  const MpxBounds b = mpx->BndMk(cpu, 0x4000, 0x40);
  mpx->BndStx(cpu, slot, 0x4000, b);
  mpx->RegInvalidate(slot);
  const MpxBounds loaded = mpx->BndLdx(cpu, slot, /*ptr_value=*/0x9999);
  EXPECT_TRUE(loaded.IsInit());
  EXPECT_EQ(mpx->stats().value_mismatches, 1u);
}

TEST_F(Fixture, LdxWithoutTableReturnsInit) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t slot = heap->Alloc(cpu, 8);
  EXPECT_TRUE(mpx->BndLdx(cpu, slot, 0x1234).IsInit());
  EXPECT_EQ(mpx->bt_count(), 0u);  // loads never allocate tables
}

TEST_F(Fixture, BtAllocatedOnDemandPerMegabyteRegion) {
  Cpu& cpu = enclave->main_cpu();
  const MpxBounds b = mpx->BndMk(cpu, 0x1000, 16);
  // Slots within the same 1 MiB region share one BT.
  const uint32_t r1a = heap->Alloc(cpu, 8);
  const uint32_t r1b = heap->Alloc(cpu, 8);
  mpx->BndStx(cpu, r1a, 0x1000, b);
  mpx->BndStx(cpu, r1b, 0x1000, b);
  EXPECT_EQ(mpx->bt_count(), 1u);
  // A slot 2 MiB away needs a new table.
  const uint32_t far = heap->Alloc(cpu, 4 * kMiB);  // jump the heap forward
  mpx->BndStx(cpu, far + 2 * kMiB, 0x1000, b);
  EXPECT_EQ(mpx->bt_count(), 2u);
  EXPECT_EQ(enclave->pages().ReservedForTag("mpx-bt"), 2u * 4 * kMiB);
}

TEST_F(Fixture, BtReservationCountsFullyInVm) {
  Cpu& cpu = enclave->main_cpu();
  const MpxBounds b = mpx->BndMk(cpu, 0x1000, 16);
  const uint64_t vm_before = enclave->pages().vm_bytes();
  const uint32_t slot = heap->Alloc(cpu, 8);
  mpx->BndStx(cpu, slot, 0x1000, b);
  EXPECT_GE(enclave->pages().vm_bytes() - vm_before, 4 * kMiB);
}

TEST_F(Fixture, TableWalkGeneratesMetadataTraffic) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t slot = heap->Alloc(cpu, 8);
  const MpxBounds b = mpx->BndMk(cpu, 0x1000, 16);
  mpx->BndStx(cpu, slot, 0x1000, b);
  mpx->RegInvalidate(slot);
  const uint64_t loads_before = cpu.counters().metadata_loads;
  mpx->BndLdx(cpu, slot, 0x1000);
  // BD entry + BT entry: two dependent metadata loads.
  EXPECT_EQ(cpu.counters().metadata_loads, loads_before + 2);
}

TEST_F(Fixture, RegisterFileHoldsFourEntries) {
  Cpu& cpu = enclave->main_cpu();
  const MpxBounds b = mpx->BndMk(cpu, 0x1000, 16);
  MpxBounds out;
  for (uint32_t i = 0; i < 4; ++i) {
    mpx->BndStx(cpu, 0x100000 + i * 8, 0x1000, b);  // inserts into regs
  }
  EXPECT_TRUE(mpx->RegLookup(0x100000, &out));
  EXPECT_TRUE(mpx->RegLookup(0x100018, &out));
  // A fifth insert evicts the LRU (0x100008 - 0x100000 was refreshed above).
  mpx->BndStx(cpu, 0x100020, 0x1000, b);
  EXPECT_FALSE(mpx->RegLookup(0x100008, &out));
  EXPECT_TRUE(mpx->RegLookup(0x100000, &out));
}

TEST_F(Fixture, ManyBtsExhaustAddressSpace) {
  // MPX's failure mode on dedup/SQLite: bounds tables exhaust the enclave.
  Cpu& cpu = enclave->main_cpu();
  const MpxBounds b = mpx->BndMk(cpu, 0x1000, 16);
  bool oom = false;
  try {
    for (uint32_t mb = 0; mb < 300; ++mb) {
      // Fake pointer slots spread across the address space: each new 1 MiB
      // region forces a 4 MiB BT in a 256 MiB enclave.
      mpx->BndStx(cpu, 0x100000 + mb * kMiB, 0x1000, b);
    }
  } catch (const SimTrap& t) {
    oom = t.kind() == TrapKind::kOutOfMemory;
  }
  EXPECT_TRUE(oom);
}

}  // namespace
}  // namespace sgxb
