// Tests for src/farm: consistent-hash routing invariants, load generator
// determinism, transition-cost gating, and the farm-level bit-identity
// guarantees (host thread count never changes a result byte).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/farm/farm.h"
#include "src/farm/load_gen.h"
#include "src/farm/ring.h"

namespace sgxb {
namespace {

TEST(RingTest, DeterministicPlacement) {
  const ConsistentHashRing a(8, 64);
  const ConsistentHashRing b(8, 64);
  for (uint64_t key = 0; key < 10000; ++key) {
    EXPECT_EQ(a.Route(key), b.Route(key));
  }
}

TEST(RingTest, CoversAllShards) {
  const ConsistentHashRing ring(16, 64);
  std::vector<uint64_t> hits(16, 0);
  for (uint64_t key = 0; key < 100000; ++key) {
    ++hits[ring.Route(key)];
  }
  for (uint32_t s = 0; s < 16; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " owns no keys";
  }
}

TEST(RingTest, BoundedKeyMovementOnShardAdd) {
  // Growing n -> n+1 shards must move about 1/(n+1) of the key space and
  // every moved key must land on the new shard.
  constexpr uint64_t kKeys = 200000;
  for (const uint32_t n : {4u, 8u, 16u}) {
    const ConsistentHashRing before(n, 64);
    const ConsistentHashRing after(n + 1, 64);
    uint64_t moved = 0;
    for (uint64_t key = 0; key < kKeys; ++key) {
      const uint32_t s0 = before.Route(key);
      const uint32_t s1 = after.Route(key);
      if (s0 != s1) {
        ++moved;
        EXPECT_EQ(s1, n) << "key " << key << " moved between surviving shards";
      }
    }
    const double frac = static_cast<double>(moved) / kKeys;
    const double ideal = 1.0 / (n + 1);
    EXPECT_GT(frac, ideal * 0.5) << "n=" << n;
    EXPECT_LT(frac, ideal * 2.0) << "n=" << n;
  }
}

TEST(RingTest, RemovalOnlyReassignsVictimKeys) {
  // Shrinking n+1 -> n only reassigns keys the removed shard owned.
  const ConsistentHashRing big(9, 64);
  const ConsistentHashRing small(8, 64);
  for (uint64_t key = 0; key < 50000; ++key) {
    const uint32_t s_big = big.Route(key);
    if (s_big != 8) {
      EXPECT_EQ(small.Route(key), s_big);
    }
  }
}

TEST(LoadGenTest, PureFunctionOfSeed) {
  LoadGenConfig cfg;
  cfg.requests = 1000;
  cfg.key_theta = 0.99;
  const std::vector<FarmRequest> a = GenerateRequests(cfg);
  const std::vector<FarmRequest> b = GenerateRequests(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].client, b[i].client);
  }
  // Divergence check on the uniform stream (Zipf skew makes unrelated seeds
  // collide on the hot keys by design).
  cfg.key_theta = 0.0;
  const std::vector<FarmRequest> u1 = GenerateRequests(cfg);
  cfg.seed = 43;
  const std::vector<FarmRequest> u2 = GenerateRequests(cfg);
  size_t diff = 0;
  for (size_t i = 0; i < u1.size(); ++i) {
    diff += u1[i].key != u2[i].key ? 1 : 0;
  }
  EXPECT_GT(diff, u1.size() / 2);
}

TEST(LoadGenTest, PoissonArrivalsMonotoneAndSeeded) {
  const std::vector<uint64_t> a = PoissonArrivals(500, 1e6, 3.6, 42);
  const std::vector<uint64_t> b = PoissonArrivals(500, 1e6, 3.6, 42);
  EXPECT_EQ(a, b);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i], a[i - 1]);
  }
  // Mean gap should be within 20% of ghz*1e9/rate = 3600 cycles.
  const double mean = static_cast<double>(a.back()) / static_cast<double>(a.size());
  EXPECT_GT(mean, 3600 * 0.8);
  EXPECT_LT(mean, 3600 * 1.2);
}

FarmConfig SmallFarm() {
  FarmConfig cfg;
  cfg.shards = 4;
  cfg.policy = PolicyKind::kSgxBounds;
  cfg.app = FarmApp::kKvStore;
  cfg.load.requests = 2000;
  cfg.load.clients = 8;
  return cfg;
}

TEST(FarmTest, TransitionsDefaultOff) {
  // Without EnableTransitions the new counters must stay exactly zero for
  // every shard — the invariant that keeps all pre-farm results bit-stable.
  const FarmResult r = RunFarm(SmallFarm());
  EXPECT_EQ(r.served + r.dropped, 2000u);
  EXPECT_EQ(r.totals.ecalls, 0u);
  EXPECT_EQ(r.totals.ocalls, 0u);
  EXPECT_EQ(r.totals.transition_cycles, 0u);
}

TEST(FarmTest, TransitionsChargeOnePerRequest) {
  FarmConfig cfg = SmallFarm();
  cfg.machine.costs.EnableTransitions();
  const FarmResult r = RunFarm(cfg);
  // One ECALL per dispatched request, priced straight from the cost table.
  EXPECT_EQ(r.totals.ecalls, 2000u);
  EXPECT_EQ(r.totals.transition_cycles,
            r.totals.ecalls * cfg.machine.costs.ecall +
                r.totals.ocalls * cfg.machine.costs.OcallCost());
}

TEST(FarmTest, SwitchlessCheaperThanSync) {
  // netserver's recv/send pair exercises the OCALL axis; switchless host
  // calls must strictly reduce transition cycles without changing service
  // counts.
  FarmConfig sync_cfg = SmallFarm();
  sync_cfg.app = FarmApp::kNetserver;
  sync_cfg.machine.costs.EnableTransitions(/*use_switchless=*/false);
  FarmConfig swl_cfg = sync_cfg;
  swl_cfg.machine.costs.EnableTransitions(/*use_switchless=*/true);
  const FarmResult sync_r = RunFarm(sync_cfg);
  const FarmResult swl_r = RunFarm(swl_cfg);
  EXPECT_GT(sync_r.totals.ocalls, 0u);
  EXPECT_EQ(sync_r.totals.ocalls, swl_r.totals.ocalls);
  EXPECT_EQ(sync_r.served, swl_r.served);
  EXPECT_LT(swl_r.totals.transition_cycles, sync_r.totals.transition_cycles);
}

TEST(FarmTest, DigestInvariantAcrossHostThreads) {
  // The acceptance bar: 1, 4 and 16 host threads produce bit-identical
  // results, for both arrival models.
  for (const bool open_loop : {false, true}) {
    FarmConfig cfg = SmallFarm();
    cfg.machine.costs.EnableTransitions();
    cfg.open_loop = open_loop;
    cfg.offered_rps = 500000.0;
    cfg.host_threads = 1;
    const FarmResult base = RunFarm(cfg);
    for (const uint32_t threads : {4u, 16u}) {
      cfg.host_threads = threads;
      const FarmResult r = RunFarm(cfg);
      EXPECT_EQ(r.digest, base.digest) << "threads=" << threads
                                       << " open_loop=" << open_loop;
      EXPECT_EQ(r.served, base.served);
      EXPECT_EQ(r.makespan_cycles, base.makespan_cycles);
      EXPECT_EQ(r.totals.cycles, base.totals.cycles);
    }
  }
}

TEST(FarmTest, ShardCountsPartitionTheStream) {
  const FarmConfig cfg = SmallFarm();
  const FarmResult r = RunFarm(cfg);
  ASSERT_EQ(r.shards.size(), 4u);
  uint64_t requests = 0;
  for (const FarmShardStats& s : r.shards) {
    requests += s.requests;
    EXPECT_EQ(s.served + s.dropped, s.requests);
  }
  EXPECT_EQ(requests, 2000u);
  EXPECT_EQ(r.served + r.dropped, 2000u);
}

TEST(FarmTest, LatencyHistogramPopulated) {
  FarmConfig cfg = SmallFarm();
  const FarmResult r = RunFarm(cfg);
  EXPECT_EQ(r.latency.count(), r.served);
  EXPECT_GT(r.latency.P50(), 0.0);
  EXPECT_GE(r.latency.P999(), r.latency.P50());
}

TEST(FarmTest, EveryAppServes) {
  // Each registered farm app must run end to end under the paper's scheme.
  for (const std::string& name : FarmAppChoices()) {
    FarmApp app;
    ASSERT_TRUE(ParseFarmApp(name, &app));
    FarmConfig cfg = SmallFarm();
    cfg.app = app;
    cfg.shards = 2;
    cfg.load.requests = 200;
    cfg.machine.costs.EnableTransitions();
    const FarmResult r = RunFarm(cfg);
    EXPECT_GT(r.served, 0u) << name;
    EXPECT_EQ(r.totals.ecalls, 200u) << name;
  }
}

}  // namespace
}  // namespace sgxb
