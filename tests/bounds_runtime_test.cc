// Tests for the SGXBounds runtime: malloc/footer layout, check semantics,
// fail-fast traps, pointer arithmetic instrumentation, range checks.

#include <gtest/gtest.h>

#include <memory>

#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {
namespace {

struct Fixture : public ::testing::Test {
  Fixture() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    rt = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SgxBoundsRuntime> rt;
};

TEST_F(Fixture, MallocTagsPointerWithBounds) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 100);
  EXPECT_NE(ExtractPtr(p), 0u);
  EXPECT_EQ(ExtractUb(p), ExtractPtr(p) + 100);
}

TEST_F(Fixture, FooterHoldsLowerBound) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  const uint32_t ub = ExtractUb(p);
  EXPECT_EQ(enclave->Peek<uint32_t>(ub), ExtractPtr(p));
}

TEST_F(Fixture, MallocAddsOnlyFourBytes) {
  // SS3.1: metadata is 4 bytes per object (paper's 0.1% memory overhead).
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 100);
  EXPECT_EQ(heap->BlockSize(ExtractPtr(p)), 104u);
  EXPECT_EQ(rt->FooterBytes(), 4u);
}

TEST_F(Fixture, InBoundsAccessSucceeds) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  rt->Store<uint32_t>(cpu, p, 42);
  rt->Store<uint32_t>(cpu, TaggedAdd(p, 60), 7);
  EXPECT_EQ(rt->Load<uint32_t>(cpu, p), 42u);
  EXPECT_EQ(rt->Load<uint32_t>(cpu, TaggedAdd(p, 60)), 7u);
}

TEST_F(Fixture, OutOfBoundsTrapsInFailFast) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  EXPECT_THROW(rt->Load<uint32_t>(cpu, TaggedAdd(p, 64)), SimTrap);
  EXPECT_THROW(rt->Load<uint32_t>(cpu, TaggedAdd(p, 61)), SimTrap);  // size-aware
  EXPECT_THROW(rt->Store<uint32_t>(cpu, TaggedAdd(p, -4), 0), SimTrap);
  try {
    rt->Load<uint32_t>(cpu, TaggedAdd(p, 1000));
    FAIL();
  } catch (const SimTrap& t) {
    EXPECT_EQ(t.kind(), TrapKind::kSgxBoundsViolation);
  }
  EXPECT_EQ(rt->stats().violations, 4u);
}

TEST_F(Fixture, OffByOneWriteIsCaught) {
  // The canonical off-by-one from the paper's Fig. 4 example.
  Cpu& cpu = enclave->main_cpu();
  const uint32_t n = 16;
  const TaggedPtr arr = rt->Malloc(cpu, n * 4);
  for (uint32_t i = 0; i < n; ++i) {
    rt->Store<uint32_t>(cpu, TaggedAdd(arr, i * 4), i);
  }
  EXPECT_THROW(rt->Store<uint32_t>(cpu, TaggedAdd(arr, n * 4), 0), SimTrap);
}

TEST_F(Fixture, OverflowCannotCorruptFooterOfNeighbour) {
  // Writing up to UB-1 is allowed; the footer at UB belongs to the object
  // and an in-bounds store can never touch it.
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr a = rt->Malloc(cpu, 32);
  const uint32_t lb_before = enclave->Peek<uint32_t>(ExtractUb(a));
  rt->Store<uint32_t>(cpu, TaggedAdd(a, 28), 0xffffffffu);  // last valid word
  EXPECT_EQ(enclave->Peek<uint32_t>(ExtractUb(a)), lb_before);
}

TEST_F(Fixture, UntaggedPointersPassUnchecked) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t raw = heap->Alloc(cpu, 64);
  const TaggedPtr untagged = MakeTagged(raw, 0);
  rt->Store<uint32_t>(cpu, untagged, 5);
  EXPECT_EQ(rt->Load<uint32_t>(cpu, untagged), 5u);
  EXPECT_EQ(rt->stats().checks, 0u);
}

TEST_F(Fixture, FreeReleasesBlockViaLb) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 128);
  const uint32_t base = ExtractPtr(p);
  // Free through an interior pointer: LB from the footer finds the base.
  rt->Free(cpu, TaggedAdd(p, 64));
  EXPECT_FALSE(heap->IsLive(base));
}

TEST_F(Fixture, CallocZeroes) {
  Cpu& cpu = enclave->main_cpu();
  // Dirty a block, free it, calloc the same size: must read zeros.
  const TaggedPtr d = rt->Malloc(cpu, 64);
  rt->Store<uint64_t>(cpu, d, 0xffffffffffffffffULL);
  rt->Free(cpu, d);
  const TaggedPtr p = rt->Calloc(cpu, 16, 4);
  EXPECT_EQ(rt->Load<uint64_t>(cpu, p), 0u);
}

TEST_F(Fixture, PtrAddChargesAluAndPreservesUb) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  const uint64_t alu_before = cpu.counters().alu_ops;
  const TaggedPtr q = rt->PtrAdd(cpu, p, 8);
  EXPECT_EQ(cpu.counters().alu_ops, alu_before + 2);
  EXPECT_EQ(ExtractUb(q), ExtractUb(p));
}

TEST_F(Fixture, CheckRangeAcceptsExactExtent) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 256);
  rt->CheckRange(cpu, p, 256);  // must not throw
  EXPECT_THROW(rt->CheckRange(cpu, p, 257), SimTrap);
}

TEST_F(Fixture, UpperOnlyCheckSkipsLbLoad) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  const uint64_t meta_before = cpu.counters().metadata_loads;
  rt->CheckAccessUpperOnly(cpu, p, 4, AccessType::kRead);
  EXPECT_EQ(cpu.counters().metadata_loads, meta_before);  // no LB load
  rt->CheckAccess(cpu, p, 4, AccessType::kRead);
  EXPECT_EQ(cpu.counters().metadata_loads, meta_before + 1);
}

TEST_F(Fixture, SpecifyBoundsOnCallerStorage) {
  // Globals/stack path: caller owns storage incl. footer space.
  Cpu& cpu = enclave->main_cpu();
  const uint32_t base = heap->Alloc(cpu, 100 + 4);
  const TaggedPtr p = rt->SpecifyBounds(cpu, base, base + 100, ObjKind::kGlobal);
  EXPECT_EQ(ExtractPtr(p), base);
  EXPECT_EQ(ExtractUb(p), base + 100);
  rt->Store<uint8_t>(cpu, TaggedAdd(p, 99), 1);
  EXPECT_THROW(rt->Store<uint8_t>(cpu, TaggedAdd(p, 100), 1), SimTrap);
}

TEST_F(Fixture, ChecksAreCounted) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr p = rt->Malloc(cpu, 64);
  rt->Load<uint32_t>(cpu, p);
  rt->Load<uint32_t>(cpu, p);
  EXPECT_EQ(rt->stats().checks, 2u);
  EXPECT_EQ(cpu.counters().bounds_checks, 2u);
}

TEST_F(Fixture, NarrowBoundsRestrictsField) {
  // SS8 extension: struct { char buf[16]; u64 fptr; } - narrowing &s.buf
  // stops the in-struct overflow that whole-object bounds allow.
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr obj = rt->Malloc(cpu, 24);
  const TaggedPtr field = rt->NarrowBounds(cpu, obj, 0, 16);
  EXPECT_TRUE(rt->IsNarrowed(field));
  EXPECT_FALSE(rt->IsNarrowed(obj));
  // Whole-object pointer reaches offset 16 (the sibling member): allowed.
  rt->Store<uint8_t>(cpu, TaggedAdd(obj, 16), 1);
  // Narrowed pointer cannot.
  const ResolvedAccess ok =
      rt->CheckAccessAuto(cpu, TaggedAdd(field, 15), 1, AccessType::kWrite);
  EXPECT_EQ(ok.addr, ExtractPtr(field) + 15);
  EXPECT_THROW(rt->CheckAccessAuto(cpu, TaggedAdd(field, 16), 1, AccessType::kWrite),
               SimTrap);
}

TEST_F(Fixture, NarrowBoundsRejectsEscapingField) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr obj = rt->Malloc(cpu, 24);
  EXPECT_THROW(rt->NarrowBounds(cpu, obj, 16, 16), SimTrap);  // past the object
}

TEST_F(Fixture, NarrowedCheckSkipsLbFooterLoad) {
  Cpu& cpu = enclave->main_cpu();
  const TaggedPtr obj = rt->Malloc(cpu, 32);
  const TaggedPtr field = rt->NarrowBounds(cpu, obj, 0, 16);
  const uint64_t meta = cpu.counters().metadata_loads;
  rt->CheckAccessAuto(cpu, field, 4, AccessType::kRead);
  EXPECT_EQ(cpu.counters().metadata_loads, meta);  // UB-only path
}

// Parameterized sweep: every offset in a small object behaves correctly for
// every access size (property: violated iff off + size > object size).
class AccessSweep : public Fixture,
                    public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(AccessSweep, ViolationIffPastEnd) {
  Cpu& cpu = enclave->main_cpu();
  const uint32_t obj_size = 32;
  const TaggedPtr p = rt->Malloc(cpu, obj_size);
  const int off = std::get<0>(GetParam());
  const int size = std::get<1>(GetParam());
  const bool should_violate = off + size > static_cast<int>(obj_size);
  bool violated = false;
  try {
    switch (size) {
      case 1:
        rt->Load<uint8_t>(cpu, TaggedAdd(p, off));
        break;
      case 4:
        rt->Load<uint32_t>(cpu, TaggedAdd(p, off));
        break;
      case 8:
        rt->Load<uint64_t>(cpu, TaggedAdd(p, off));
        break;
    }
  } catch (const SimTrap&) {
    violated = true;
  }
  EXPECT_EQ(violated, should_violate) << "off=" << off << " size=" << size;
}

INSTANTIATE_TEST_SUITE_P(OffsetsAndSizes, AccessSweep,
                         ::testing::Combine(::testing::Values(0, 1, 24, 28, 29, 31, 32),
                                            ::testing::Values(1, 4, 8)));

}  // namespace
}  // namespace sgxb
