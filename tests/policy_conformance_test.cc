// Scheme-conformance battery: every scheme in the registry is checked
// against its own SchemeDescriptor claims, with no scheme-specific test
// code. Adding a sixth policy (one directory + one scheme_list.h entry)
// automatically puts it under:
//
//   * registry well-formedness (ids, aliases, baseline, --policies parsing);
//   * the detection matrix: out-of-bounds write/read and underflow must
//     crash exactly when the descriptor claims detection; use-after-free
//     must crash where claimed;
//   * allocation/access invariants: data written through every access path
//     (Store/StoreAt/StoreField/StorePtr/Span/Memcpy/Memset) reads back
//     intact, under every scheme;
//   * live-vs-replay identity: a recorded run's PerfCounters replay
//     bit-for-bit for every scheme;
//   * env.Serve() containment: with recovery enabled, a detected violation
//     is dropped and the run continues.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/policy/registry.h"
#include "src/policy/run.h"
#include "src/trace/record.h"
#include "src/trace/trace_replay.h"
#include "src/workloads/workload.h"

namespace sgxb {
namespace {

// --- registry well-formedness -----------------------------------------------

TEST(SchemeRegistry, CoversEveryPolicyKindExactlyOnce) {
  const auto& schemes = AllSchemes();
  EXPECT_EQ(schemes.size(), static_cast<size_t>(kPolicyKindCount));
  std::set<PolicyKind> kinds;
  std::set<std::string> ids;
  for (const SchemeDescriptor* d : schemes) {
    EXPECT_TRUE(kinds.insert(d->kind).second) << d->id;
    EXPECT_TRUE(ids.insert(d->id).second) << d->id;
    EXPECT_STRNE(d->id, "");
    EXPECT_STRNE(d->name, "");
    EXPECT_NE(d->make_ripe_defense, nullptr) << d->id;
  }
}

TEST(SchemeRegistry, ExactlyOneBaseline) {
  int baselines = 0;
  for (const SchemeDescriptor* d : AllSchemes()) {
    baselines += d->baseline ? 1 : 0;
  }
  EXPECT_EQ(baselines, 1);
}

TEST(SchemeRegistry, PaperSuiteIsTheFourPaperSchemes) {
  const auto& paper = PaperSchemes();
  ASSERT_EQ(paper.size(), 4u);
  EXPECT_EQ(paper[0]->kind, PolicyKind::kNative);
  EXPECT_EQ(paper[1]->kind, PolicyKind::kMpx);
  EXPECT_EQ(paper[2]->kind, PolicyKind::kAsan);
  EXPECT_EQ(paper[3]->kind, PolicyKind::kSgxBounds);
}

TEST(SchemeRegistry, LookupByIdAliasAndName) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    EXPECT_EQ(FindScheme(d->id), d);
    for (const char* alias : d->aliases) {
      EXPECT_EQ(FindScheme(alias), d) << alias;
    }
    EXPECT_STREQ(PolicyName(d->kind), d->name);
    EXPECT_EQ(&SchemeOf(d->kind), d);
  }
  EXPECT_EQ(FindScheme("no-such-scheme"), nullptr);
}

TEST(SchemeRegistry, ParsePolicyListShorthandsAndErrors) {
  std::string error;
  const auto paper = ParsePolicyList("paper", &error);
  EXPECT_EQ(paper.size(), 4u);
  const auto all = ParsePolicyList("all", &error);
  EXPECT_EQ(all.size(), static_cast<size_t>(kPolicyKindCount));
  const auto csv = ParsePolicyList("native,sgxbounds,l4ptr", &error);
  ASSERT_EQ(csv.size(), 3u);
  EXPECT_EQ(csv[0], PolicyKind::kNative);
  EXPECT_EQ(csv[1], PolicyKind::kSgxBounds);
  EXPECT_EQ(csv[2], PolicyKind::kL4Ptr);
  EXPECT_TRUE(ParsePolicyList("sgxbounds,bogus", &error).empty());
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

// --- detection matrix -------------------------------------------------------

// Each probe allocates two adjacent 64-byte objects (64 is a power of two,
// so even schemes with padded allocations place their bound exactly at
// offset 64) and commits one specific violation on the first.

RunResult ProbeOobWrite(PolicyKind kind) {
  return RunPolicyKind(kind, MachineSpec{}, PolicyOptions{}, [](auto& env) {
    auto a = env.policy.Malloc(env.cpu, 64);
    auto b = env.policy.Malloc(env.cpu, 64);
    (void)b;
    env.policy.StoreAt(env.cpu, a, 64, static_cast<uint8_t>(0xAB));
  });
}

RunResult ProbeOobRead(PolicyKind kind) {
  return RunPolicyKind(kind, MachineSpec{}, PolicyOptions{}, [](auto& env) {
    auto a = env.policy.Malloc(env.cpu, 64);
    auto b = env.policy.Malloc(env.cpu, 64);
    (void)b;
    (void)env.policy.template LoadAt<uint8_t>(env.cpu, a, 64);
  });
}

RunResult ProbeUnderflow(PolicyKind kind) {
  return RunPolicyKind(kind, MachineSpec{}, PolicyOptions{}, [](auto& env) {
    auto a = env.policy.Malloc(env.cpu, 64);
    auto b = env.policy.Malloc(env.cpu, 64);
    (void)a;
    auto before = env.policy.Offset(env.cpu, b, -1);
    env.policy.Store(env.cpu, before, static_cast<uint8_t>(0xCD));
  });
}

RunResult ProbeUseAfterFree(PolicyKind kind) {
  return RunPolicyKind(kind, MachineSpec{}, PolicyOptions{}, [](auto& env) {
    auto a = env.policy.Malloc(env.cpu, 64);
    env.policy.Free(env.cpu, a);
    (void)env.policy.template Load<uint8_t>(env.cpu, a);
  });
}

TEST(SchemeConformance, OobWriteDetectedIffClaimed) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    const RunResult r = ProbeOobWrite(d->kind);
    EXPECT_EQ(r.crashed, d->caps.detects_oob_write) << d->id << ": " << r.trap_message;
  }
}

TEST(SchemeConformance, OobReadDetectedIffClaimed) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    const RunResult r = ProbeOobRead(d->kind);
    EXPECT_EQ(r.crashed, d->caps.detects_oob_read) << d->id << ": " << r.trap_message;
  }
}

TEST(SchemeConformance, UnderflowDetectedIffClaimed) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    const RunResult r = ProbeUnderflow(d->kind);
    EXPECT_EQ(r.crashed, d->caps.detects_underflow) << d->id << ": " << r.trap_message;
  }
}

TEST(SchemeConformance, UseAfterFreeDetectedWhereClaimed) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    if (!d->caps.detects_uaf) {
      continue;  // schemes without quarantine legitimately read stale bytes
    }
    const RunResult r = ProbeUseAfterFree(d->kind);
    EXPECT_TRUE(r.crashed) << d->id;
  }
}

// --- allocation / access invariants -----------------------------------------

TEST(SchemeConformance, EveryAccessPathRoundTripsData) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    const RunResult r =
        RunPolicyKind(d->kind, MachineSpec{}, PolicyOptions{}, [](auto& env) {
          auto& pol = env.policy;
          Cpu& cpu = env.cpu;

          // StoreAt / LoadAt over a 256-byte object.
          auto p = pol.Malloc(cpu, 256);
          for (uint32_t i = 0; i < 32; ++i) {
            pol.StoreAt(cpu, p, i * 8, static_cast<uint64_t>(i) * 0x9E3779B9u);
          }
          for (uint32_t i = 0; i < 32; ++i) {
            ASSERT_EQ(pol.template LoadAt<uint64_t>(cpu, p, i * 8),
                      static_cast<uint64_t>(i) * 0x9E3779B9u);
          }

          // Field access.
          pol.StoreField(cpu, p, 16, static_cast<uint32_t>(0xDEADBEEF));
          ASSERT_EQ(pol.template LoadField<uint32_t>(cpu, p, 16), 0xDEADBEEFu);

          // Calloc zeroes.
          auto z = pol.Calloc(cpu, 8, 8);
          for (uint32_t i = 0; i < 8; ++i) {
            ASSERT_EQ(pol.template LoadAt<uint64_t>(cpu, z, i * 8), 0u);
          }

          // Memset + Memcpy.
          pol.Memset(cpu, z, 0x5A, 64);
          auto c = pol.Malloc(cpu, 64);
          pol.Memcpy(cpu, c, z, 64);
          ASSERT_EQ(pol.template LoadAt<uint8_t>(cpu, c, 63), 0x5Au);

          // Span (hoisted-check loop path).
          auto span = pol.OpenSpan(cpu, p, 256);
          for (uint32_t i = 0; i < 32; ++i) {
            span.Store(cpu, i * 8, static_cast<uint64_t>(i) + 7);
          }
          for (uint32_t i = 0; i < 32; ++i) {
            ASSERT_EQ(span.template Load<uint64_t>(cpu, i * 8),
                      static_cast<uint64_t>(i) + 7);
          }

          // Pointer-in-memory round trip preserves the address (and for
          // tagged schemes, the bounds ride along or are rederived).
          auto slot = pol.Malloc(cpu, 64);
          pol.StorePtr(cpu, slot, c);
          auto back = pol.LoadPtr(cpu, slot);
          ASSERT_EQ(pol.AddrOf(back), pol.AddrOf(c));
          ASSERT_EQ(pol.template LoadAt<uint8_t>(cpu, back, 0), 0x5Au);

          // Aligned allocation honours the request.
          auto al = pol.AlignedAlloc(cpu, 128, 64);
          ASSERT_EQ(pol.AddrOf(al) % 64, 0u);

          pol.Free(cpu, al);
          pol.Free(cpu, slot);
          pol.Free(cpu, c);
          pol.Free(cpu, z);
          pol.Free(cpu, p);
        });
    EXPECT_FALSE(r.crashed) << d->id << ": " << r.trap_message;
  }
}

// --- live vs replay ---------------------------------------------------------

TEST(SchemeConformance, LiveAndReplayCountersIdentical) {
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find("matrixmul");
  ASSERT_NE(info, nullptr);
  WorkloadConfig cfg;
  cfg.size = SizeClass::kXS;
  cfg.threads = 1;
  for (const SchemeDescriptor* d : AllSchemes()) {
    const RecordedRun rec =
        RecordWorkloadRun(*info, d->kind, MachineSpec{}, PolicyOptions{}, cfg);
    ASSERT_FALSE(rec.live.crashed) << d->id;
    const ReplayResult replay = ReplayTrace(rec.trace);
    EXPECT_EQ(replay.cycles, rec.live.cycles) << d->id;
    EXPECT_TRUE(replay.counters == rec.live.counters) << d->id;
  }
}

// --- Serve() containment ----------------------------------------------------

TEST(SchemeConformance, ServeContainsDetectedViolations) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    MachineSpec spec;
    spec.recovery.enabled = true;
    spec.recovery.max_retries = 0;  // a deterministic violation never heals
    bool served_violation = false;
    bool served_benign = false;
    const RunResult r = RunPolicyKind(d->kind, spec, PolicyOptions{}, [&](auto& env) {
      auto a = env.policy.Malloc(env.cpu, 64);
      auto b = env.policy.Malloc(env.cpu, 64);
      served_violation = env.Serve(
          [&] { env.policy.StoreAt(env.cpu, a, 64, static_cast<uint8_t>(1)); });
      served_benign = env.Serve(
          [&] { env.policy.StoreAt(env.cpu, b, 0, static_cast<uint8_t>(2)); });
    });
    EXPECT_FALSE(r.crashed) << d->id << ": " << r.trap_message;
    EXPECT_TRUE(served_benign) << d->id;
    if (d->caps.detects_oob_write) {
      EXPECT_FALSE(served_violation) << d->id;
      EXPECT_GE(r.recovery_stats.contained, 1u) << d->id;
    } else {
      EXPECT_TRUE(served_violation) << d->id;
      EXPECT_EQ(r.recovery_stats.contained, 0u) << d->id;
    }
  }
}

}  // namespace
}  // namespace sgxb
