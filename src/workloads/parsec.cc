// PARSEC 3.0 suite analogues (paper SS6.1): blackscholes, bodytrack, dedup,
// ferret, fluidanimate, streamcluster, swaptions, vips, x264.
//
// Each kernel preserves its original's defining memory characteristic:
//   blackscholes  - flat array of option records, FP-dominated
//   bodytrack     - particle filter with per-particle heap state (pointers)
//   dedup         - chunk/hash/store pipeline; wide pointer-bearing heap span
//                   (the workload that OOMs Intel MPX in Fig. 7)
//   ferret        - feature-vector similarity search, FP + sequential
//   fluidanimate  - SPH grid with neighbour-cell access (pointer slots)
//   streamcluster - online clustering, repeated distance sweeps
//   swaptions     - Monte-Carlo with intense small alloc/free churn
//                   (the workload that blows ASan's quarantine to 413 MB)
//   vips          - image pipeline: row-wise convolution over a large image
//   x264          - motion search: strided SAD over a reference frame

#include <algorithm>
#include <cmath>

#include "src/workloads/workload.h"
#include "src/workloads/workload_util.h"

namespace sgxb {
namespace {

// --- blackscholes -------------------------------------------------------------
struct BlackscholesBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    // Option record: S, K, r, v, T, type, result (32 B padded).
    const uint32_t n = 64 * 1024 * SizeMultiplier(cfg.size);
    constexpr uint32_t kRec = 32;
    Rng rng(cfg.seed);
    auto opts = AllocSparseFilled(env, env.cpu, n * kRec, rng);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      const Slice s = SliceFor(n, t.tid, t.nthreads);
      for (uint64_t i = s.begin; i < s.end; ++i) {
        const float spot = 10.f + 90.f * (env.policy.template LoadAt<uint32_t>(cpu, opts, i * kRec) % 997) / 997.f;
        const float strike =
            10.f + 90.f * (env.policy.template LoadAt<uint32_t>(cpu, opts, i * kRec + 4) % 991) / 991.f;
        // CNDF-based closed form; ~40 FP ops per option like the original.
        const float v = 0.3f;
        const float tte = 1.0f;
        const float d1 = (std::log(spot / strike) + (0.05f + v * v / 2) * tte) / (v * std::sqrt(tte));
        const float d2 = d1 - v * std::sqrt(tte);
        const float nd1 = 0.5f * (1.f + std::erf(d1 * 0.70710678f));
        const float nd2 = 0.5f * (1.f + std::erf(d2 * 0.70710678f));
        const float price = spot * nd1 - strike * std::exp(-0.05f * tte) * nd2;
        cpu.Fp(40);
        env.policy.template StoreAt<float>(cpu, opts, i * kRec + 24, price);
      }
    });
    env.policy.Free(env.cpu, opts);
  }
};

// --- bodytrack ----------------------------------------------------------------
struct BodytrackBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    const uint32_t particles = 2048 * SizeMultiplier(cfg.size);
    const uint32_t kStateFloats = 64;  // pose vector + weights
    const uint32_t frames = 4;
    Rng rng(cfg.seed);
    // Particle states are individually heap-allocated (pointer array), the
    // pattern that quadruples MPX's memory in the paper.
    auto index = env.policy.Malloc(env.cpu, particles * kPtrSlotBytes);
    for (uint32_t i = 0; i < particles; ++i) {
      Ptr st = env.policy.Malloc(env.cpu, kStateFloats * 4);
      for (uint32_t d = 0; d < kStateFloats * 4; d += kCacheLineSize) {
        env.policy.template Store<float>(env.cpu, env.policy.Offset(env.cpu, st, d),
                                         static_cast<float>(rng.NextDouble()));
      }
      env.policy.StorePtr(env.cpu, env.policy.Offset(env.cpu, index, i * kPtrSlotBytes), st);
    }
    // Small edge-map "image" per frame.
    const uint32_t img_bytes = 512 * kKiB;
    auto image = AllocSparseFilled(env, env.cpu, img_bytes, rng);
    for (uint32_t f = 0; f < frames; ++f) {
      env.Parallel([&](ThreadCtx& t) {
        Cpu& cpu = *t.cpu;
        const Slice s = SliceFor(particles, t.tid, t.nthreads);
        for (uint64_t i = s.begin; i < s.end; ++i) {
          double weight = 0;
          for (uint32_t d = 0; d < 16; ++d) {
            // particles[i]->pose[d]: the pointer reloads per element, the
            // double-indirection pattern that floods MPX with bndldx.
            Ptr st =
                env.policy.LoadPtr(cpu, env.policy.Offset(cpu, index, i * kPtrSlotBytes));
            const float pose = env.policy.template LoadField<float>(cpu, st, d * 4);
            const uint32_t px =
                (static_cast<uint32_t>(pose * 4096) + d * 131) % (img_bytes / 4);
            weight += env.policy.template LoadAt<uint32_t>(cpu, image, static_cast<uint64_t>(px) * 4) & 0xff;
            cpu.Fp(4);
          }
          Ptr st =
              env.policy.LoadPtr(cpu, env.policy.Offset(cpu, index, i * kPtrSlotBytes));
          env.policy.template StoreField<float>(cpu, st, 60 * 4, static_cast<float>(weight));
        }
      });
    }
  }
};

// --- dedup ---------------------------------------------------------------------
// Chunking + dedup + store pipeline. Unique chunk payloads are copied into
// the enclave heap, and chunk records (which hold payload pointers) end up
// interleaved with payloads across the whole heap span. Under Intel MPX each
// 1 MiB of record-bearing heap needs a 4 MiB bounds table: at the paper's
// input sizes this exhausts the enclave address space -> kOutOfMemory, the
// missing MPX bar for dedup in Fig. 7.
struct DedupBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    const uint64_t input_bytes = 128ULL * kMiB * SizeMultiplier(cfg.size);
    constexpr uint32_t kChunk = 8192;
    constexpr uint32_t kBuckets = 1 << 14;
    const uint32_t distinct = 1 << 13;
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;

    auto buckets = env.policy.Calloc(cpu, kBuckets, kPtrSlotBytes);
    auto staging = env.policy.Malloc(cpu, kChunk);

    const uint64_t chunks = input_bytes / kChunk;
    for (uint64_t c = 0; c < chunks; ++c) {
      // "Read" a chunk: the content is a function of its id so duplicates
      // exist; writing the staging buffer models the input copy. Most chunks
      // are unique (the ~15% dedup ratio of the PARSEC input).
      const uint64_t content_id = c % 7 != 0 ? c : rng.NextBounded(distinct);
      env.policy.Memset(cpu, staging, static_cast<uint8_t>(content_id), kChunk);
      // Rolling-hash fingerprint: sample 8 words of the chunk.
      uint64_t fp = content_id * 0x9e3779b97f4a7c15ULL;
      for (uint32_t w = 0; w < 8; ++w) {
        fp = fp * 31 + env.policy.template LoadAt<uint64_t>(cpu, staging, w * 512);
        cpu.Alu(3);
      }
      const uint32_t bucket = static_cast<uint32_t>(fp % kBuckets);
      // Probe the chain: node = {fp u64, payload Ptr, next Ptr} = 24 B.
      Ptr slot = env.policy.Offset(cpu, buckets, bucket * kPtrSlotBytes);
      Ptr node = env.policy.LoadPtr(cpu, slot);
      bool found = false;
      while (env.policy.AddrOf(node) != 0) {
        cpu.Branch();
        if (env.policy.template LoadField<uint64_t>(cpu, node, 0) == fp) {
          found = true;
          break;
        }
        node = env.policy.LoadPtr(cpu, env.policy.Offset(cpu, node, 16));
      }
      if (!found) {
        // Store the unique chunk: payload copy + record insert ("compress"
        // modeled by the fingerprint pass above).
        Ptr payload = env.policy.Malloc(cpu, kChunk);
        env.policy.Memcpy(cpu, payload, staging, kChunk);
        Ptr fresh = env.policy.Malloc(cpu, 24);
        env.policy.template StoreField<uint64_t>(cpu, fresh, 0, fp);
        env.policy.StorePtr(cpu, env.policy.Offset(cpu, fresh, 8), payload);
        Ptr head = env.policy.LoadPtr(cpu, slot);
        env.policy.StorePtr(cpu, env.policy.Offset(cpu, fresh, 16), head);
        env.policy.StorePtr(cpu, slot, fresh);
      }
    }
  }
};

// --- ferret -------------------------------------------------------------------
struct FerretBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t db_vecs = 16 * 1024 * SizeMultiplier(cfg.size);
    const uint32_t dim = 64;  // floats
    const uint32_t queries = 64;
    Rng rng(cfg.seed);
    auto db = AllocSparseFilled(env, env.cpu, db_vecs * dim * 4, rng);
    auto q = AllocDenseFilled(env, env.cpu, queries * dim * 4, rng);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      const Slice s = SliceFor(queries, t.tid, t.nthreads);
      for (uint64_t qi = s.begin; qi < s.end; ++qi) {
        float best = 1e30f;
        for (uint32_t v = 0; v < db_vecs; ++v) {
          float dist = 0;
          // Sample 8 dimensions per candidate (touches the vector's lines).
          for (uint32_t d = 0; d < 8; ++d) {
            const float a = env.policy.template LoadAt<float>(cpu, q, (qi * dim + d * 8) * 4);
            const float b =
                env.policy.template LoadAt<float>(cpu, db, (static_cast<uint64_t>(v) * dim + d * 8) * 4);
            dist += (a - b) * (a - b);
            cpu.Fp(3);
          }
          best = std::min(best, dist);
          cpu.Branch();
        }
        ConsumeDouble(best);
      }
    });
    env.policy.Free(env.cpu, q);
    env.policy.Free(env.cpu, db);
  }
};

// --- fluidanimate --------------------------------------------------------------
struct FluidanimateBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    // Grid of cells; each cell holds a pointer to its particle block. The
    // neighbour-cell pointer loads are why MPX's memory quadruples here.
    const uint32_t grid = 24 * SizeMultiplier(cfg.size);  // grid^2 cells
    const uint32_t cells = grid * grid;
    constexpr uint32_t kCellBytes = 16 * 16;  // 16 particles x (x,y,vx,vy)
    Rng rng(cfg.seed);
    auto cell_index = env.policy.Malloc(env.cpu, cells * kPtrSlotBytes);
    for (uint32_t i = 0; i < cells; ++i) {
      Ptr cell = env.policy.Malloc(env.cpu, kCellBytes);
      env.policy.template Store<float>(env.cpu, cell, static_cast<float>(rng.NextDouble()));
      env.policy.StorePtr(env.cpu, env.policy.Offset(env.cpu, cell_index, i * kPtrSlotBytes),
                          cell);
    }
    const uint32_t steps = 3;
    for (uint32_t step = 0; step < steps; ++step) {
      env.Parallel([&](ThreadCtx& t) {
        Cpu& cpu = *t.cpu;
        const Slice s = SliceFor(cells, t.tid, t.nthreads);
        for (uint64_t ci = s.begin; ci < s.end; ++ci) {
          const uint32_t cx = static_cast<uint32_t>(ci) % grid;
          const uint32_t cy = static_cast<uint32_t>(ci) / grid;
          Ptr self =
              env.policy.LoadPtr(cpu, env.policy.Offset(cpu, cell_index, ci * kPtrSlotBytes));
          // Density from the 4-neighbourhood.
          float density = 0;
          const int32_t dxs[] = {-1, 1, 0, 0};
          const int32_t dys[] = {0, 0, -1, 1};
          for (int nb = 0; nb < 4; ++nb) {
            const int32_t nx = static_cast<int32_t>(cx) + dxs[nb];
            const int32_t ny = static_cast<int32_t>(cy) + dys[nb];
            if (nx < 0 || ny < 0 || nx >= static_cast<int32_t>(grid) ||
                ny >= static_cast<int32_t>(grid)) {
              continue;
            }
            Ptr other = env.policy.LoadPtr(
                cpu, env.policy.Offset(cpu, cell_index,
                                       (static_cast<uint64_t>(ny) * grid + nx) * kPtrSlotBytes));
            for (uint32_t pp = 0; pp < 4; ++pp) {
              density += env.policy.template LoadField<float>(cpu, other, pp * 64);
              cpu.Fp(2);
            }
          }
          env.policy.template StoreField<float>(cpu, self, 8, density);
        }
      });
    }
  }
};

// --- streamcluster --------------------------------------------------------------
struct StreamclusterBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t n = 16 * 1024 * SizeMultiplier(cfg.size);
    const uint32_t dim = 32;
    const uint32_t centers = 16;
    Rng rng(cfg.seed);
    auto pts = AllocSparseFilled(env, env.cpu, n * dim * 4, rng);
    auto ctr = AllocDenseFilled(env, env.cpu, centers * dim * 4, rng);
    for (uint32_t round = 0; round < 2; ++round) {
      env.Parallel([&](ThreadCtx& t) {
        Cpu& cpu = *t.cpu;
        const Slice s = SliceFor(n, t.tid, t.nthreads);
        double cost = 0;
        for (uint64_t i = s.begin; i < s.end; ++i) {
          float best = 1e30f;
          for (uint32_t c = 0; c < centers; ++c) {
            float dist = 0;
            for (uint32_t d = 0; d < 4; ++d) {  // 4 sampled dims / candidate
              const float a = env.policy.template LoadAt<float>(cpu, pts, (i * dim + d * 8) * 4);
              const float b = env.policy.template LoadAt<float>(cpu, ctr, (c * dim + d * 8) * 4);
              dist += (a - b) * (a - b);
              cpu.Fp(3);
            }
            best = std::min(best, dist);
          }
          cost += best;
        }
        ConsumeDouble(cost);
      });
    }
    env.policy.Free(env.cpu, ctr);
    env.policy.Free(env.cpu, pts);
  }
};

// --- swaptions -----------------------------------------------------------------
// HJM-style Monte Carlo: every trial allocates a small path matrix, fills it,
// reduces it, frees it. Tiny working set, brutal alloc/free churn: ASan's
// quarantine turns this into unbounded footprint growth (413 MB in the
// paper); MPX keeps allocating bounds tables for the fresh path pointers.
struct SwaptionsBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t trials = 3000 * SizeMultiplier(cfg.size);
    constexpr uint32_t kPathBytes = 2048;
    Rng rng(cfg.seed);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      Rng trng(cfg.seed + t.tid * 7919);
      const Slice s = SliceFor(trials, t.tid, t.nthreads);
      double price = 0;
      for (uint64_t trial = s.begin; trial < s.end; ++trial) {
        auto path = env.policy.Malloc(cpu, kPathBytes);
        auto span = env.policy.OpenSpan(cpu, path, kPathBytes);
        float rate = 0.05f;
        for (uint32_t step = 0; step < kPathBytes / 8; ++step) {
          rate += 0.001f * static_cast<float>(trng.NextGaussian());
          span.template Store<float>(cpu, step * 8, rate);
          cpu.Fp(6);
        }
        float payoff = 0;
        for (uint32_t step = 0; step < kPathBytes / 8; step += 4) {
          payoff += span.template Load<float>(cpu, step * 8);
          cpu.Fp(1);
        }
        price += std::max(0.0f, payoff / (kPathBytes / 32) - 0.05f);
        env.policy.Free(cpu, path);
      }
      ConsumeDouble(price);
    });
  }
};

// --- vips ----------------------------------------------------------------------
struct VipsBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t width = 2048;
    const uint32_t height = 256 * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    auto src = AllocSparseFilled(env, env.cpu, width * height, rng);
    auto dst = env.policy.Calloc(env.cpu, width * height, 1);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      const Slice s = SliceFor(height - 2, t.tid, t.nthreads);
      for (uint64_t y = s.begin + 1; y < s.end + 1; ++y) {
        for (uint32_t x = 8; x + 8 < width; x += 8) {
          // 3x3 box blur on 8-byte groups: 3 row reads, 1 write.
          const uint64_t up = env.policy.template LoadAt<uint64_t>(cpu, src, (y - 1) * width + x);
          const uint64_t mid = env.policy.template LoadAt<uint64_t>(cpu, src, y * width + x);
          const uint64_t down = env.policy.template LoadAt<uint64_t>(cpu, src, (y + 1) * width + x);
          const uint64_t blurred = (up >> 2) + (mid >> 1) + (down >> 2);
          cpu.Alu(5);
          env.policy.template StoreAt<uint64_t>(cpu, dst, y * width + x, blurred);
        }
      }
    });
    env.policy.Free(env.cpu, dst);
    env.policy.Free(env.cpu, src);
  }
};

// --- x264 ----------------------------------------------------------------------
// Motion estimation: for each macroblock of the current frame, SAD over a
// +-8 pixel search window in the reference frame (strided reads). The inner
// SAD rows are fixed 16-byte reads at provably safe offsets - the safe-access
// elision showcase (paper: up to 20% gain on x264).
struct X264Body {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t width = 640;
    const uint32_t height = 96 * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    auto cur = AllocSparseFilled(env, env.cpu, width * height, rng);
    // Multi-reference search: 8 reference frames reached through the
    // picture-list pointer array (x264's frames->reference[]).
    constexpr uint32_t kRefs = 8;
    constexpr uint32_t kPasses = 6;  // frames encoded against the same references
    auto ref_list = env.policy.Malloc(env.cpu, kRefs * kPtrSlotBytes);
    for (uint32_t r = 0; r < kRefs; ++r) {
      auto ref = AllocSparseFilled(env, env.cpu, width * height, rng);
      env.policy.StorePtr(env.cpu, env.policy.Offset(env.cpu, ref_list, r * kPtrSlotBytes),
                          ref);
    }
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      auto cs = env.policy.OpenSpan(cpu, cur, static_cast<uint64_t>(width) * height);
      const uint32_t mb_rows = height / 16;
      const Slice s = SliceFor(mb_rows - 2, t.tid, t.nthreads);
      uint32_t list_idx = t.tid;
      for (uint32_t pass = 0; pass < kPasses; ++pass) {
      for (uint64_t mby = s.begin + 1; mby < s.end + 1; ++mby) {
        for (uint32_t mbx = 1; mbx + 1 < width / 16; ++mbx) {
          uint64_t best_sad = ~0ULL;
          for (int32_t dy = -8; dy <= 8; dy += 4) {
            for (int32_t dx = -8; dx <= 8; dx += 4) {
              uint64_t sad = 0;
              auto ref = env.policy.LoadPtr(
                  cpu, env.policy.Offset(cpu, ref_list,
                                         (list_idx++ % kRefs) * kPtrSlotBytes));
              for (uint32_t row = 0; row < 16; row += 4) {
                const uint64_t a = cs.template Load<uint64_t>(
                    cpu, (mby * 16 + row) * width + mbx * 16);
                const uint64_t b = env.policy.template LoadAt<uint64_t>(cpu, ref, (mby * 16 + row + dy) * width + mbx * 16 + dx);
                sad += (a > b) ? a - b : b - a;
                cpu.Alu(3);
              }
              best_sad = std::min(best_sad, sad);
              cpu.Branch();
            }
          }
          Consume(best_sad);
        }
      }
      }
    });
    env.policy.Free(env.cpu, cur);
  }
};

}  // namespace

void RegisterParsecWorkloads(WorkloadRegistry& registry) {
  REGISTER_WORKLOAD(registry, "parsec", "blackscholes", true, BlackscholesBody);
  REGISTER_WORKLOAD(registry, "parsec", "bodytrack", true, BodytrackBody);
  REGISTER_WORKLOAD(registry, "parsec", "dedup", true, DedupBody);
  REGISTER_WORKLOAD(registry, "parsec", "ferret", true, FerretBody);
  REGISTER_WORKLOAD(registry, "parsec", "fluidanimate", true, FluidanimateBody);
  REGISTER_WORKLOAD(registry, "parsec", "streamcluster", true, StreamclusterBody);
  REGISTER_WORKLOAD(registry, "parsec", "swaptions", true, SwaptionsBody);
  REGISTER_WORKLOAD(registry, "parsec", "vips", true, VipsBody);
  REGISTER_WORKLOAD(registry, "parsec", "x264", true, X264Body);
}

}  // namespace sgxb
