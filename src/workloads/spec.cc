// SPEC CPU2006 analogues (paper SS6.7): the 13 programs the paper evaluates.
// All single-threaded, CPU-intensive kernels whose defining memory behaviour
// mirrors the original:
//   astar   - grid of node records with neighbour pointers (MPX OOM in Fig. 11)
//   bzip2   - block-sorting compression passes over a buffer
//   gobmk   - branchy board evaluation on small arrays
//   h264ref - macroblock motion search (single-threaded x264 variant)
//   hmmer   - Viterbi DP rows, sequential
//   lbm     - lattice sweep with many directional fields per cell
//   libquantum - amplitude-vector gate sweeps
//   mcf     - arc array with node pointer dereferences (MPX OOM in Fig. 11;
//             ASan's worst EPC-thrashing case: 2.4x vs SGXBounds' 1%)
//   milc    - SU(3) lattice link multiplications, large FP working set
//   namd    - particle-pair force loops, small working set
//   sjeng   - game-tree search with make/unmake on a small board
//   sphinx3 - GMM acoustic scoring, FP streams
//   xalanc  - DOM-style node tree with child/sibling pointers (MPX OOM)

#include <algorithm>
#include <cmath>

#include "src/workloads/workload.h"
#include "src/workloads/workload_util.h"

namespace sgxb {
namespace {

// --- astar ---------------------------------------------------------------------
struct AstarBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    // Node record: 64 B with a neighbour-block pointer slot at offset 0
    // (the original's `way` structures are pointer-linked the same way).
    const uint32_t side = 1060 * static_cast<uint32_t>(std::sqrt(SizeMultiplier(cfg.size)));
    const uint32_t nodes = side * side;
    Cpu& cpu = env.cpu;
    auto grid = env.policy.Calloc(cpu, nodes, 64);
    // Link every node to its east neighbour at build time.
    for (uint32_t i = 0; i + 1 < nodes; i += 1) {
      Ptr node = env.policy.Offset(cpu, grid, static_cast<uint64_t>(i) * 64);
      Ptr next = env.policy.Offset(cpu, grid, static_cast<uint64_t>(i + 1) * 64);
      env.policy.StorePtr(cpu, node, next);
      if ((i & 7) == 0) {
        env.policy.template StoreField<uint32_t>(cpu, node, 8, i % 251);  // terrain cost
      }
    }
    // Bounded best-first sweep: chase neighbour pointers accumulating cost.
    Rng rng(cfg.seed);
    uint64_t cost = 0;
    const uint32_t expansions = 500 * 1000;
    Ptr cursor = env.policy.LoadPtr(cpu, grid);
    for (uint32_t e = 0; e < expansions; ++e) {
      cost += env.policy.template LoadField<uint32_t>(cpu, cursor, 8);
      env.policy.template StoreField<uint32_t>(cpu, cursor, 12, static_cast<uint32_t>(cost));
      cpu.Alu(4);
      cpu.Branch();
      if ((e & 63) == 0) {
        // Random restart: jump to a random node (open-list pop).
        const uint32_t j = static_cast<uint32_t>(rng.NextBounded(nodes - 1));
        cursor = env.policy.Offset(cpu, grid, static_cast<uint64_t>(j) * 64);
      }
      cursor = env.policy.LoadPtr(cpu, cursor);
      if (env.policy.AddrOf(cursor) == 0) {
        cursor = env.policy.LoadPtr(cpu, grid);
      }
    }
    Consume(cost);
  }
};

// --- bzip2 ---------------------------------------------------------------------
struct Bzip2Body {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t bytes = kMiB * SizeMultiplier(cfg.size);
    constexpr uint32_t kBlock = 256 * 1024;
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto buf = AllocDenseFilled(env, cpu, bytes, rng);
    auto counts = env.policy.Calloc(cpu, 65536, 4);
    for (uint32_t block = 0; block + kBlock <= bytes; block += kBlock) {
      // Counting sort over 2-byte prefixes (the BWT bucket pass).
      for (uint32_t i = 0; i < kBlock; i += 4) {
        const uint32_t w = env.policy.template LoadAt<uint32_t>(cpu, buf, block + i);
        const uint32_t prefix = w & 0xffff;
        const uint32_t c = env.policy.template LoadAt<uint32_t>(cpu, counts, prefix * 4);
        env.policy.template StoreAt<uint32_t>(cpu, counts, prefix * 4, c + 1);
        cpu.Alu(3);
      }
      // MTF + RLE pass.
      uint32_t run = 0;
      uint32_t prev = ~0u;
      for (uint32_t i = 0; i < kBlock; i += 8) {
        const uint64_t w = env.policy.template LoadAt<uint64_t>(cpu, buf, block + i);
        const uint32_t sym = static_cast<uint32_t>(w & 0xff);
        run = sym == prev ? run + 1 : 0;
        prev = sym;
        cpu.Alu(4);
        cpu.Branch();
      }
      Consume(run);
    }
  }
};

// --- gobmk ---------------------------------------------------------------------
struct GobmkBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    constexpr uint32_t kBoard = 19 * 19;
    const uint32_t positions = 12000 * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto board = env.policy.Calloc(cpu, kBoard, 1);
    auto marks = env.policy.Calloc(cpu, kBoard, 1);
    for (uint32_t pos = 0; pos < positions; ++pos) {
      // Play a stone, then count its liberties with a bounded flood fill.
      const uint32_t at = static_cast<uint32_t>(rng.NextBounded(kBoard));
      env.policy.template StoreAt<uint8_t>(cpu, board, at, static_cast<uint8_t>(1 + (pos & 1)));
      uint32_t stack[16];
      uint32_t sp = 0;
      uint32_t liberties = 0;
      stack[sp++] = at;
      while (sp > 0 && liberties < 8) {
        const uint32_t cur = stack[--sp];
        env.policy.template StoreAt<uint8_t>(cpu, marks, cur, 1);
        const int32_t deltas[4] = {-19, 19, -1, 1};
        for (int32_t d : deltas) {
          const int32_t nb = static_cast<int32_t>(cur) + d;
          cpu.Alu(2);
          cpu.Branch();
          if (nb < 0 || nb >= static_cast<int32_t>(kBoard)) {
            continue;
          }
          const uint8_t v = env.policy.template LoadAt<uint8_t>(cpu, board, static_cast<uint32_t>(nb));
          if (v == 0) {
            ++liberties;
          } else if (sp < 16) {
            stack[sp++] = static_cast<uint32_t>(nb);
          }
        }
      }
      Consume(liberties);
      if ((pos & 127) == 0) {
        env.policy.Memset(cpu, board, 0, kBoard);
        env.policy.Memset(cpu, marks, 0, kBoard);
      }
    }
  }
};

// --- h264ref -------------------------------------------------------------------
struct H264refBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t width = 352;
    const uint32_t height = 72 * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto cur = AllocSparseFilled(env, cpu, width * height, rng);
    auto ref = AllocSparseFilled(env, cpu, width * height, rng);
    for (uint32_t mby = 1; mby + 1 < height / 16; ++mby) {
      for (uint32_t mbx = 1; mbx + 1 < width / 16; ++mbx) {
        uint64_t best = ~0ULL;
        for (int32_t dy = -4; dy <= 4; dy += 2) {
          for (int32_t dx = -4; dx <= 4; dx += 2) {
            uint64_t sad = 0;
            for (uint32_t row = 0; row < 16; row += 2) {
              const uint64_t a =
                  env.policy.template LoadAt<uint64_t>(cpu, cur, (mby * 16 + row) * width + mbx * 16);
              const uint64_t b = env.policy.template LoadAt<uint64_t>(cpu, ref, (mby * 16 + row + dy) * width + mbx * 16 + dx);
              sad += a > b ? a - b : b - a;
              cpu.Alu(3);
            }
            best = std::min(best, sad);
            cpu.Branch();
          }
        }
        Consume(best);
      }
    }
  }
};

// --- hmmer ---------------------------------------------------------------------
struct HmmerBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t profile = 512;
    const uint32_t seq_len = 1500 * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto match = AllocDenseFilled(env, cpu, profile * 4, rng);
    auto row_prev = env.policy.Calloc(cpu, profile, 4);
    auto row_cur = env.policy.Calloc(cpu, profile, 4);
    for (uint32_t pos = 0; pos < seq_len; ++pos) {
      auto prev_row = pos % 2 == 0 ? row_prev : row_cur;
      auto cur_row = pos % 2 == 0 ? row_cur : row_prev;
      for (uint32_t k = 1; k < profile; ++k) {
        const int32_t diag = env.policy.template LoadAt<int32_t>(cpu, prev_row, (k - 1) * 4);
        const int32_t up = env.policy.template LoadAt<int32_t>(cpu, prev_row, k * 4);
        const int32_t emit =
            static_cast<int32_t>(env.policy.template LoadAt<uint32_t>(cpu, match, k * 4) & 0xff);
        env.policy.template StoreAt<int32_t>(cpu, cur_row, k * 4, std::max(diag, up - 3) + emit);
        cpu.Alu(4);
        cpu.Branch();
      }
    }
  }
};

// --- lbm -----------------------------------------------------------------------
struct LbmBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    // Cells hold 19 directional doubles (152 B, padded to 160).
    const uint32_t cells = 48 * 1024 * SizeMultiplier(cfg.size);
    constexpr uint32_t kCell = 160;
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto lattice = AllocSparseFilled(env, cpu, cells * kCell, rng);
    for (uint32_t step = 0; step < 2; ++step) {
      for (uint32_t c = 1; c + 1 < cells; ++c) {
        double rho = 0;
        // Stream from 4 sampled directions of this and neighbour cells.
        rho += env.policy.template LoadAt<double>(cpu, lattice, static_cast<uint64_t>(c) * kCell);
        rho += env.policy.template LoadAt<double>(cpu, lattice, static_cast<uint64_t>(c) * kCell + 72);
        rho += env.policy.template LoadAt<double>(cpu, lattice, static_cast<uint64_t>(c - 1) * kCell + 8);
        rho += env.policy.template LoadAt<double>(cpu, lattice, static_cast<uint64_t>(c + 1) * kCell + 16);
        cpu.Fp(12);
        env.policy.template StoreAt<double>(cpu, lattice, static_cast<uint64_t>(c) * kCell + 144, rho * 0.25);
      }
    }
    env.policy.Free(cpu, lattice);
  }
};

// --- libquantum ------------------------------------------------------------------
struct LibquantumBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t amps = 256 * 1024 * SizeMultiplier(cfg.size);  // complex floats
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto state = AllocSparseFilled(env, cpu, amps * 8, rng);
    for (uint32_t gate = 0; gate < 3; ++gate) {
      const uint32_t stride = 1u << (gate + 1);
      for (uint32_t i = 0; i < amps; i += stride) {
        const float re = env.policy.template LoadAt<float>(cpu, state, static_cast<uint64_t>(i) * 8);
        const float im = env.policy.template LoadAt<float>(cpu, state, static_cast<uint64_t>(i) * 8 + 4);
        env.policy.template StoreAt<float>(cpu, state, static_cast<uint64_t>(i) * 8, 0.70710678f * (re - im));
        env.policy.template StoreAt<float>(cpu, state, static_cast<uint64_t>(i) * 8 + 4,
                                   0.70710678f * (re + im));
        cpu.Fp(6);
      }
    }
    env.policy.Free(cpu, state);
  }
};

// --- mcf -----------------------------------------------------------------------
struct McfBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    // Arc record: 64 B holding a tail-node pointer slot. Nodes: 64 B.
    const uint32_t arcs = 1000 * 1000 * SizeMultiplier(cfg.size);
    const uint32_t nodes = arcs / 8;
    Cpu& cpu = env.cpu;
    Rng rng(cfg.seed);
    auto node_arr = env.policy.Calloc(cpu, nodes, 64);
    auto arc_arr = env.policy.Calloc(cpu, arcs, 64);
    // Build: every arc points at a random tail node (bndstx storm for MPX).
    for (uint32_t a = 0; a < arcs; ++a) {
      const uint32_t tail = static_cast<uint32_t>(rng.NextBounded(nodes));
      Ptr arc = env.policy.Offset(cpu, arc_arr, static_cast<uint64_t>(a) * 64);
      Ptr node = env.policy.Offset(cpu, node_arr, static_cast<uint64_t>(tail) * 64);
      env.policy.StorePtr(cpu, arc, node);
      env.policy.template StoreField<int32_t>(cpu, arc, 8,
                                              static_cast<int32_t>(rng.NextBounded(1000)));
    }
    // Pricing pass: sequential arcs, random node dereferences (mcf's
    // cache-hostile signature).
    int64_t reduced = 0;
    const uint32_t sweep = std::min(arcs, 4u * 1000 * 1000);
    for (uint32_t a = 0; a < sweep; ++a) {
      Ptr arc = env.policy.Offset(cpu, arc_arr, static_cast<uint64_t>(a) * 64);
      Ptr tail = env.policy.LoadPtr(cpu, arc);
      const int32_t cost = env.policy.template LoadField<int32_t>(cpu, arc, 8);
      const int32_t potential = env.policy.template LoadField<int32_t>(cpu, tail, 8);
      reduced += cost - potential;
      cpu.Alu(3);
      cpu.Branch();
    }
    Consume(static_cast<uint64_t>(reduced));
  }
};

// --- milc ----------------------------------------------------------------------
struct MilcBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    // SU(3) link field: 18 doubles per matrix (144 B), 4 links per site.
    const uint32_t sites = 24 * 1024 * SizeMultiplier(cfg.size);
    constexpr uint32_t kSite = 4 * 144;
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto links = AllocSparseFilled(env, cpu, sites * kSite, rng);
    double plaquette = 0;
    for (uint32_t s = 0; s + 1 < sites; s += 2) {
      // Multiply the first rows of two neighbouring link matrices.
      double acc = 0;
      for (uint32_t k = 0; k < 6; ++k) {
        const double a = env.policy.template LoadAt<double>(cpu, links, static_cast<uint64_t>(s) * kSite + k * 8);
        const double b = env.policy.template LoadAt<double>(cpu, links, static_cast<uint64_t>(s + 1) * kSite + 144 + k * 8);
        acc += a * b;
        cpu.Fp(4);
      }
      plaquette += acc;
    }
    ConsumeDouble(plaquette);
    env.policy.Free(cpu, links);
  }
};

// --- namd ----------------------------------------------------------------------
struct NamdBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t particles = 24 * 1024 * SizeMultiplier(cfg.size);
    constexpr uint32_t kRec = 32;  // x,y,z,fx,fy,fz,charge,pad
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto parts = AllocSparseFilled(env, cpu, particles * kRec, rng);
    for (uint32_t i = 0; i < particles; ++i) {
      const float xi = env.policy.template LoadAt<float>(cpu, parts, static_cast<uint64_t>(i) * kRec);
      float fx = 0;
      for (uint32_t nb = 1; nb <= 8; ++nb) {
        const uint32_t j = (i + nb * 17) % particles;
        const float xj = env.policy.template LoadAt<float>(cpu, parts, static_cast<uint64_t>(j) * kRec);
        const float dx = xi - xj;
        fx += dx / (0.1f + dx * dx);
        cpu.Fp(6);
      }
      env.policy.template StoreAt<float>(cpu, parts, static_cast<uint64_t>(i) * kRec + 12, fx);
    }
    env.policy.Free(cpu, parts);
  }
};

// --- sjeng ---------------------------------------------------------------------
struct SjengBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    constexpr uint32_t kBoard = 128;
    const uint32_t visits = 300 * 1000 * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto board = AllocDenseFilled(env, cpu, kBoard, rng);
    auto history = env.policy.Calloc(cpu, 4096, 4);
    int32_t alpha = -30000;
    for (uint32_t v = 0; v < visits; ++v) {
      const uint32_t from = static_cast<uint32_t>(rng.NextBounded(kBoard));
      const uint32_t to = static_cast<uint32_t>(rng.NextBounded(kBoard));
      // make-move
      const uint8_t piece = env.policy.template LoadAt<uint8_t>(cpu, board, from);
      const uint8_t captured = env.policy.template LoadAt<uint8_t>(cpu, board, to);
      env.policy.template StoreAt<uint8_t>(cpu, board, to, piece);
      env.policy.template StoreAt<uint8_t>(cpu, board, from, 0);
      // eval + history update
      const int32_t score = static_cast<int32_t>(piece) - static_cast<int32_t>(captured);
      const uint32_t h = (from * 131 + to) & 4095;
      const uint32_t hv = env.policy.template LoadAt<uint32_t>(cpu, history, h * 4);
      env.policy.template StoreAt<uint32_t>(cpu, history, h * 4, hv + 1);
      cpu.Alu(10);
      cpu.Branch(3);
      if (score > alpha) {
        alpha = score;
      }
      // unmake-move
      env.policy.template StoreAt<uint8_t>(cpu, board, from, piece);
      env.policy.template StoreAt<uint8_t>(cpu, board, to, captured);
    }
    Consume(static_cast<uint64_t>(alpha));
  }
};

// --- sphinx3 -------------------------------------------------------------------
struct Sphinx3Body {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t senones = 1024;
    const uint32_t dims = 16;
    const uint32_t frames = 400 * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    Cpu& cpu = env.cpu;
    auto means = AllocDenseFilled(env, cpu, senones * dims * 4, rng);
    auto vars = AllocDenseFilled(env, cpu, senones * dims * 4, rng);
    for (uint32_t f = 0; f < frames; ++f) {
      float feat[dims];
      for (uint32_t d = 0; d < dims; ++d) {
        feat[d] = static_cast<float>(rng.NextDouble());
      }
      float best = -1e30f;
      for (uint32_t s = 0; s < senones; s += 4) {  // sampled senones
        float score = 0;
        for (uint32_t d = 0; d < dims; d += 4) {
          const float m = env.policy.template LoadAt<float>(cpu, means, (s * dims + d) * 4);
          const float var = env.policy.template LoadAt<float>(cpu, vars, (s * dims + d) * 4);
          const float diff = feat[d] - m;
          score -= diff * diff * (1.0f + var);
          cpu.Fp(4);
        }
        best = std::max(best, score);
        cpu.Branch();
      }
      ConsumeDouble(best);
    }
  }
};

// --- xalanc --------------------------------------------------------------------
struct XalancBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    // DOM node: 144 B = {first_child Ptr, next_sibling Ptr, tag u32, ...}.
    const uint32_t node_count = 500 * 1000 * SizeMultiplier(cfg.size);
    constexpr uint32_t kNode = 144;
    Cpu& cpu = env.cpu;
    auto pool = env.policy.Calloc(cpu, node_count, kNode);
    // Build a wide tree: node i's first child is 4i+1, sibling is i+1 within
    // the same parent block.
    const uint32_t linked = node_count;
    for (uint32_t i = 0; i < linked; ++i) {
      Ptr node = env.policy.Offset(cpu, pool, static_cast<uint64_t>(i) * kNode);
      const uint32_t child = 4 * i + 1;
      if (child < node_count) {
        env.policy.StorePtr(cpu, node,
                            env.policy.Offset(cpu, pool, static_cast<uint64_t>(child) * kNode));
      }
      if ((i & 3) != 0 && i + 1 < node_count) {
        env.policy.StorePtr(
            cpu, env.policy.Offset(cpu, node, 8),
            env.policy.Offset(cpu, pool, static_cast<uint64_t>(i + 1) * kNode));
      }
      env.policy.template StoreField<uint32_t>(cpu, node, 16, i % 61);
    }
    // Transform pass: DFS matching tag patterns (the XSLT template walk).
    uint64_t matches = 0;
    Ptr stack_nodes[64];
    uint32_t sp = 0;
    stack_nodes[sp++] = env.policy.Offset(cpu, pool, 0);
    uint32_t visited = 0;
    const uint32_t budget = std::min(node_count, 2u * 1000 * 1000);
    while (sp > 0 && visited < budget) {
      Ptr node = stack_nodes[--sp];
      ++visited;
      const uint32_t tag = env.policy.template LoadField<uint32_t>(cpu, node, 16);
      if (tag % 7 == 0) {
        ++matches;
        env.policy.template StoreField<uint32_t>(cpu, node, 20, tag);
      }
      cpu.Alu(3);
      cpu.Branch(2);
      Ptr child = env.policy.LoadPtr(cpu, node);
      Ptr sibling = env.policy.LoadPtr(cpu, env.policy.Offset(cpu, node, 8));
      if (env.policy.AddrOf(sibling) != 0 && sp < 63) {
        stack_nodes[sp++] = sibling;
      }
      if (env.policy.AddrOf(child) != 0 && sp < 63) {
        stack_nodes[sp++] = child;
      }
    }
    Consume(matches);
  }
};

}  // namespace

void RegisterSpecWorkloads(WorkloadRegistry& registry) {
  REGISTER_WORKLOAD(registry, "spec", "astar", false, AstarBody);
  REGISTER_WORKLOAD(registry, "spec", "bzip2", false, Bzip2Body);
  REGISTER_WORKLOAD(registry, "spec", "gobmk", false, GobmkBody);
  REGISTER_WORKLOAD(registry, "spec", "h264ref", false, H264refBody);
  REGISTER_WORKLOAD(registry, "spec", "hmmer", false, HmmerBody);
  REGISTER_WORKLOAD(registry, "spec", "lbm", false, LbmBody);
  REGISTER_WORKLOAD(registry, "spec", "libquantum", false, LibquantumBody);
  REGISTER_WORKLOAD(registry, "spec", "mcf", false, McfBody);
  REGISTER_WORKLOAD(registry, "spec", "milc", false, MilcBody);
  REGISTER_WORKLOAD(registry, "spec", "namd", false, NamdBody);
  REGISTER_WORKLOAD(registry, "spec", "sjeng", false, SjengBody);
  REGISTER_WORKLOAD(registry, "spec", "sphinx3", false, Sphinx3Body);
  REGISTER_WORKLOAD(registry, "spec", "xalanc", false, XalancBody);
}

}  // namespace sgxb
