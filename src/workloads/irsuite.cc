// The "ir" suite: interpreter-driven kernels.
//
// Unlike the Phoenix/PARSEC/SPEC kernels (policy-templated C++ bodies),
// these workloads build a mini-IR program, run the policy's actual
// instrumentation pass over it, and execute it on the IR interpreter - the
// same pipeline as the paper's LLVM pass + hardware, scaled down. They are
// the workloads whose host cost is interpreter dispatch, which is what the
// threaded engine (src/ir/exec/) accelerates; simulated results are
// engine-invariant.
//
//   ir_copy     Fig. 4 array copy at scale: init + copy + checksum loops.
//               Dense gep+check+access triples (superinstruction fusion).
//   ir_mix      ALU-heavy xorshift mixing over a table: ~10 ALU ops per
//               access, the dispatch-bound worst case for the interpreter.
//   ir_stencil  3-point stencil with a carried accumulator phi: fusion plus
//               edge-stub parallel copies on every back edge.
//   ir_prng     xorshift64 stream generation, rounds unrolled straight-line
//               in the builder: hundreds of ALU steps per memory access, the
//               purely interpreter-bound case (dispatch is ~all of the host
//               cost; the cache model is visited once per sample).

#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/policy/scheme_ir.h"
#include "src/workloads/workload.h"

namespace sgxb {
namespace {

// Instruments `fn` for the policy, attaches the policy's runtime, and runs
// the function on the selected engine. Returns the kernel's checksum. The
// scheme's pass and runtime attachment come from its IR-lowering hook
// (src/policy/<scheme>/ir_lowering.h) - no scheme is named here.
template <typename P>
uint64_t RunIrKernel(Env<P>& env, IrFunction fn) {
  StackAllocator stack(&env.enclave, 1 * kMiB, "ir-stack");
  Interpreter interp(&env.enclave, &env.heap, &stack);
  interp.set_engine(env.options.ir_engine);
  env.pass_stats.Accumulate(SchemeIrLowering<P>::Apply(env.policy, interp, fn, env.options));
  return interp.Run(fn, env.cpu, {}, /*max_steps=*/UINT64_MAX);
}

// Elements per loop at size XS; multiplied by SizeMultiplier (1..16).
constexpr uint32_t kCopyBaseN = 24 * 1024;
constexpr uint32_t kMixBaseN = 12 * 1024;
constexpr uint32_t kStencilBaseN = 16 * 1024;
constexpr uint32_t kPrngBaseN = 6 * 1024;

IrFunction BuildCopyKernel(uint32_t n) {
  IrBuilder b("ir_copy");
  const ValueId bytes = b.Const(static_cast<int64_t>(n) * 8);
  const ValueId src = b.Malloc(bytes);
  const ValueId dst = b.Malloc(bytes);
  auto init = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Store(IrType::kI64, b.Mul(init.iv, b.Const(2654435761)), b.Gep(src, init.iv, 8));
  b.EndLoop(init);
  auto copy = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Store(IrType::kI64, b.Load(IrType::kI64, b.Gep(src, copy.iv, 8)),
          b.Gep(dst, copy.iv, 8));
  b.EndLoop(copy);
  // Checksum so the copy is observable; accumulate through memory (the mini
  // IR has no loop-carried reduction phi helper, and the extra access stream
  // is representative anyway).
  const ValueId acc = b.Malloc(b.Const(8));
  b.Store(IrType::kI64, b.Const(0), acc);
  auto sum = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  const ValueId v = b.Load(IrType::kI64, b.Gep(dst, sum.iv, 8));
  b.Store(IrType::kI64, b.Add(b.Load(IrType::kI64, acc), v), acc);
  b.EndLoop(sum);
  const ValueId result = b.Load(IrType::kI64, acc);
  b.Free(src);
  b.Free(dst);
  b.Free(acc);
  b.Ret(result);
  return b.Finish();
}

IrFunction BuildMixKernel(uint32_t n, uint32_t rounds) {
  IrBuilder b("ir_mix");
  const ValueId bytes = b.Const(static_cast<int64_t>(n) * 8);
  const ValueId table = b.Malloc(bytes);
  auto init = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Store(IrType::kI64, b.Add(b.Mul(init.iv, b.Const(0x9e3779b9)), b.Const(1)),
          b.Gep(table, init.iv, 8));
  b.EndLoop(init);
  // Each round xorshift-mixes every element in place: ~10 ALU micro-ops per
  // memory access, so host time is dominated by dispatch, not simulation of
  // memory.
  auto outer = b.BeginCountedLoop(b.Const(0), b.Const(rounds), 1);
  auto inner = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  const ValueId slot = b.Gep(table, inner.iv, 8);
  ValueId x = b.Load(IrType::kI64, slot);
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kShl, x, b.Const(13)));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kLShr, x, b.Const(7)));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kShl, x, b.Const(17)));
  x = b.Add(x, b.Mul(inner.iv, b.Const(0x85ebca6b)));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kLShr, x, b.Const(33)));
  b.Store(IrType::kI64, x, slot);
  b.EndLoop(inner);
  b.EndLoop(outer);
  const ValueId result = b.Load(IrType::kI64, b.Gep(table, b.Const(0), 8));
  b.Free(table);
  b.Ret(result);
  return b.Finish();
}

IrFunction BuildStencilKernel(uint32_t n, uint32_t sweeps) {
  IrBuilder b("ir_stencil");
  const ValueId bytes = b.Const(static_cast<int64_t>(n) * 8);
  const ValueId a = b.Malloc(bytes);
  const ValueId out = b.Malloc(bytes);
  auto init = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Store(IrType::kI64, b.Mul(init.iv, init.iv), b.Gep(a, init.iv, 8));
  b.EndLoop(init);
  // sweeps x (n-2) three-point updates: out[i+1] = a[i] + 2*a[i+1] + a[i+2],
  // i in [0, n-2) - byte offsets keep every access in bounds.
  auto sweep = b.BeginCountedLoop(b.Const(0), b.Const(sweeps), 1);
  auto body = b.BeginCountedLoop(b.Const(0), b.Const(n - 2), 1);
  const ValueId left = b.Load(IrType::kI64, b.Gep(a, body.iv, 8, /*offset=*/0));
  const ValueId mid = b.Load(IrType::kI64, b.Gep(a, body.iv, 8, /*offset=*/8));
  const ValueId right = b.Load(IrType::kI64, b.Gep(a, body.iv, 8, /*offset=*/16));
  const ValueId acc = b.Add(b.Add(left, right), b.Mul(mid, b.Const(2)));
  b.Store(IrType::kI64, acc, b.Gep(out, body.iv, 8, /*offset=*/8));
  b.EndLoop(body);
  b.EndLoop(sweep);
  const ValueId result = b.Load(IrType::kI64, b.Gep(out, b.Const(n / 2), 8));
  b.Free(a);
  b.Free(out);
  b.Ret(result);
  return b.Finish();
}

IrFunction BuildPrngKernel(uint32_t n, uint32_t rounds) {
  IrBuilder b("ir_prng");
  const ValueId bytes = b.Const(static_cast<int64_t>(n) * 8);
  const ValueId buf = b.Malloc(bytes);
  auto gen = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  // Seed each sample from the index (no loop-carried state needed), then run
  // `rounds` xorshift rounds unrolled straight-line by the builder: ~6 ALU
  // instructions per round, one store per sample.
  ValueId x = b.Bin(IrOp::kXor, b.Mul(gen.iv, b.Const(static_cast<int64_t>(0x9e3779b97f4a7c15ULL))),
                    b.Const(static_cast<int64_t>(0x2545f4914f6cdd1dULL)));
  for (uint32_t r = 0; r < rounds; ++r) {
    x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kShl, x, b.Const(13)));
    x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kLShr, x, b.Const(7)));
    x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kShl, x, b.Const(17)));
  }
  b.Store(IrType::kI64, x, b.Gep(buf, gen.iv, 8));
  b.EndLoop(gen);
  const ValueId result = b.Load(IrType::kI64, b.Gep(buf, b.Const(n / 2), 8));
  b.Free(buf);
  b.Ret(result);
  return b.Finish();
}

struct IrCopyBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    RunIrKernel(env, BuildCopyKernel(kCopyBaseN * SizeMultiplier(cfg.size)));
  }
};

struct IrMixBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    RunIrKernel(env, BuildMixKernel(kMixBaseN * SizeMultiplier(cfg.size), /*rounds=*/4));
  }
};

struct IrStencilBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    RunIrKernel(env,
                BuildStencilKernel(kStencilBaseN * SizeMultiplier(cfg.size), /*sweeps=*/4));
  }
};

struct IrPrngBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    RunIrKernel(env,
                BuildPrngKernel(kPrngBaseN * SizeMultiplier(cfg.size), /*rounds=*/16));
  }
};

}  // namespace

void RegisterIrWorkloads(WorkloadRegistry& registry) {
  REGISTER_WORKLOAD(registry, "ir", "ir_copy", false, IrCopyBody);
  REGISTER_WORKLOAD(registry, "ir", "ir_mix", false, IrMixBody);
  REGISTER_WORKLOAD(registry, "ir", "ir_stencil", false, IrStencilBody);
  REGISTER_WORKLOAD(registry, "ir", "ir_prng", false, IrPrngBody);
}

}  // namespace sgxb
