// Phoenix 2.0 suite analogues (paper SS6.1): histogram, kmeans,
// linear_regression, matrix_multiply, pca, string_match, word_count.
//
// Each kernel reimplements the original benchmark's algorithm and - the part
// that matters for the reproduction - its characteristic memory behaviour:
// flat sequential sweeps (histogram, linear_regression, string_match),
// iterative full-working-set sweeps (kmeans), cache-unfriendly strides
// (matrix_multiply), array-of-pointers column access (pca), and hash-chain
// pointer chasing (word_count).

#include <algorithm>
#include <cmath>

#include "src/workloads/workload.h"
#include "src/workloads/workload_util.h"

namespace sgxb {
namespace {

// --- histogram ---------------------------------------------------------------
// Flat byte image; each thread scans a slice and fills private histograms.
// Pointer-free: the paper reports ~zero overhead for every scheme here.
struct HistogramBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t bytes = 6 * kMiB * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    auto img = AllocSparseFilled(env, env.cpu, bytes, rng);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      auto hist = env.policy.Calloc(cpu, 3 * 256, 4);
      auto img_span = env.policy.OpenSpan(cpu, img, bytes);
      const Slice s = SliceFor(bytes / 8, t.tid, t.nthreads);
      for (uint64_t w = s.begin; w < s.end; ++w) {
        const uint64_t v = img_span.template Load<uint64_t>(cpu, w * 8);
        cpu.Alu(6);
        // r/g/b extracted from packed bytes; bump three counters.
        const uint32_t r = (v >> 0) & 0xff;
        const uint32_t g = (v >> 8) & 0xff;
        const uint32_t b = (v >> 16) & 0xff;
        for (uint32_t c : {r, g + 256u, b + 512u}) {
          const uint32_t cur = env.policy.template LoadAt<uint32_t>(cpu, hist, c * 4);
          env.policy.template StoreAt<uint32_t>(cpu, hist, c * 4, cur + 1);
        }
      }
      env.policy.Free(cpu, hist);
    });
  }
};

// --- kmeans ------------------------------------------------------------------
// Working sets chosen to match Table 3 exactly: 17/34/68/135/270 MB. Each
// iteration sweeps all points - once the set exceeds the EPC, every iteration
// thrashes. Points are 64-byte records; the kernel reads 4 features per
// record (one access per cache line per feature cluster), keeping the charged
// op count bounded while touching every line.
struct KmeansBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    // Working sets match Table 3: 17/34/68/135/270 MB. Like Phoenix's kmeans
    // (int** points), every point is an individually allocated 64-byte
    // record reached through a pointer array - so Intel MPX needs a bounds-
    // table entry per point slot (Table 3's growing BT counts), and its
    // metadata pushes the working set past the EPC at size M while native
    // and SGXBounds still fit: the Fig. 8 hump.
    const uint64_t ws = 17ULL * kMiB * SizeMultiplier(cfg.size);
    const uint32_t n = static_cast<uint32_t>(ws / 64);
    constexpr uint32_t kClusters = 8;
    constexpr uint32_t kIters = 2;
    auto index = env.policy.Malloc(env.cpu, n * kPtrSlotBytes);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      Rng rng(cfg.seed + t.tid);
      const Slice s = SliceFor(n, t.tid, t.nthreads);
      for (uint64_t i = s.begin; i < s.end; ++i) {
        Ptr point = env.policy.Malloc(cpu, 56);  // 56 B + footer/rounding = 64
        env.policy.template StoreAt<uint64_t>(cpu, point, 0, rng.Next());
        env.policy.template StoreAt<uint64_t>(cpu, point, 8, rng.Next());
        env.policy.StorePtr(cpu, env.policy.Offset(cpu, index, i * kPtrSlotBytes), point);
      }
    });
    Rng crng(cfg.seed);
    auto centroids = AllocDenseFilled(env, env.cpu, kClusters * 4 * 4, crng);

    for (uint32_t iter = 0; iter < kIters; ++iter) {
      env.Parallel([&](ThreadCtx& t) {
        Cpu& cpu = *t.cpu;
        // Centroids are loop-invariant: the compiler keeps them in
        // registers across the point sweep (loaded once per worker).
        auto cent = env.policy.OpenSpan(cpu, centroids, kClusters * 4 * 4);
        float cc[kClusters][4];
        for (uint32_t c = 0; c < kClusters; ++c) {
          for (uint32_t d = 0; d < 4; ++d) {
            cc[c][d] = cent.template Load<float>(cpu, (c * 4 + d) * 4);
          }
        }
        const Slice s = SliceFor(n, t.tid, t.nthreads);
        double local_sum = 0;
        for (uint64_t i = s.begin; i < s.end; ++i) {
          Ptr point =
              env.policy.LoadPtr(cpu, env.policy.Offset(cpu, index, i * kPtrSlotBytes));
          // The feature loop is the canonical counted loop the SS4.4 pass
          // hoists (the paper's ~20% kmeans gain).
          auto feat = env.policy.OpenSpan(cpu, point, 16);
          float f[4];
          for (uint32_t d = 0; d < 4; ++d) {
            f[d] = feat.template Load<float>(cpu, d * 4);
          }
          uint32_t best = 0;
          float best_dist = 1e30f;
          for (uint32_t c = 0; c < kClusters; ++c) {
            float dist = 0;
            for (uint32_t d = 0; d < 4; ++d) {
              const float cd = cc[c][d];
              dist += (f[d] - cd) * (f[d] - cd);
            }
            cpu.Fp(8);
            if (dist < best_dist) {
              best_dist = dist;
              best = c;
            }
            cpu.Branch();
          }
          local_sum += best_dist;
          env.policy.template StoreAt<uint32_t>(cpu, point, 48, best);
        }
        ConsumeDouble(local_sum);
      });
    }
  }
};

// --- linear_regression -------------------------------------------------------
// One sequential pass over (x, y) records accumulating the regression sums.
struct LinearRegressionBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t bytes = 8 * kMiB * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    auto data = AllocSparseFilled(env, env.cpu, bytes, rng);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      const Slice s = SliceFor(bytes / 8, t.tid, t.nthreads);
      uint64_t sx = 0;
      uint64_t sy = 0;
      uint64_t sxx = 0;
      uint64_t sxy = 0;
      for (uint64_t i = s.begin; i < s.end; ++i) {
        const uint64_t rec = env.policy.template LoadAt<uint64_t>(cpu, data, i * 8);
        const uint32_t x = static_cast<uint32_t>(rec) & 0xffff;
        const uint32_t y = static_cast<uint32_t>(rec >> 32) & 0xffff;
        sx += x;
        sy += y;
        sxx += static_cast<uint64_t>(x) * x;
        sxy += static_cast<uint64_t>(x) * y;
        cpu.Alu(8);
      }
      Consume(sx + sy + sxx + sxy);
    });
    env.policy.Free(env.cpu, data);
  }
};

// --- matrix_multiply ---------------------------------------------------------
// Working sets match Table 3: 2/7/26/103/412 MB (x4 per class). The kernel
// computes a fixed op budget of result elements with the classic i-k-j inner
// product: A rows sequential, B columns strided by the full row width - the
// cache-unfriendly pattern the paper highlights (SS6.3). MPX keeps all three
// bounds in registers -> ~zero overhead; ASan's shadow accesses destroy the
// remaining locality at XL.
struct MatrixMultiplyBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    static const uint64_t kWsMiB[] = {2, 7, 26, 103, 412};
    const uint64_t ws = kWsMiB[static_cast<int>(cfg.size)] * kMiB;
    const uint32_t n = static_cast<uint32_t>(std::sqrt(static_cast<double>(ws) / 24.0));
    const uint64_t budget = 6 * 1000 * 1000;  // multiply-adds across all threads
    const uint32_t rows = std::max<uint32_t>(1, static_cast<uint32_t>(budget / n / n));
    Rng rng(cfg.seed);
    auto a = AllocSparseFilled(env, env.cpu, n * n * 8, rng);
    auto b = AllocSparseFilled(env, env.cpu, n * n * 8, rng);
    auto c = env.policy.Calloc(env.cpu, n * n, 8);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      auto sa = env.policy.OpenSpan(cpu, a, static_cast<uint64_t>(n) * n * 8);
      auto sc = env.policy.OpenSpan(cpu, c, static_cast<uint64_t>(n) * n * 8);
      const Slice s = SliceFor(rows, t.tid, t.nthreads);
      for (uint64_t i = s.begin; i < s.end; ++i) {
        for (uint32_t j = 0; j < n; ++j) {
          double acc = 0;
          for (uint32_t k = 0; k < n; ++k) {
            const double av = sa.template Load<double>(cpu, (i * n + k) * 8);
            const double bv = env.policy.template LoadAt<double>(cpu, b, (static_cast<uint64_t>(k) * n + j) * 8);
            acc += av * bv;
            cpu.Fp(2);
          }
          sc.template Store<double>(cpu, (i * n + j) * 8, acc);
        }
      }
    });
    env.policy.Free(env.cpu, c);
    env.policy.Free(env.cpu, b);
    env.policy.Free(env.cpu, a);
  }
};

// --- pca ---------------------------------------------------------------------
// An array of row pointers, accessed column-major: every element access
// reloads the row pointer (matrix[i] then [j]) - the pointer-intensive
// pattern that costs Intel MPX a bndldx per element (paper: 10x instructions,
// 6.3x slowdown on pca).
struct PcaBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    // Phoenix pca: an array of row pointers (int**). The covariance phase
    // walks row PAIRS: two pointer loads per pair (bndldx pressure for MPX)
    // followed by row-major dot products. Row-major streaming keeps each
    // row's LB footer on the line right after the data the loop just read -
    // the cache-friendly metadata layout SS3.1 argues for.
    const uint32_t n = 8192 * SizeMultiplier(cfg.size);
    const uint32_t d = 100;  // floats per row (400 B)
    constexpr uint32_t kNeighbours = 8;  // covariance pairs per row
    auto rows = env.policy.Malloc(env.cpu, n * kPtrSlotBytes);
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      Rng rng(cfg.seed + t.tid);
      const Slice s = SliceFor(n, t.tid, t.nthreads);
      for (uint64_t i = s.begin; i < s.end; ++i) {
        Ptr row = env.policy.Malloc(cpu, d * 4);
        for (uint32_t off = 0; off < d * 4; off += kCacheLineSize) {
          env.policy.template StoreAt<float>(cpu, row, off,
                                             static_cast<float>(rng.NextDouble()));
        }
        env.policy.StorePtr(cpu, env.policy.Offset(cpu, rows, i * kPtrSlotBytes), row);
      }
    });
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      const Slice s = SliceFor(n, t.tid, t.nthreads);
      double cov = 0;
      for (uint64_t i = s.begin; i < s.end; ++i) {
        for (uint32_t nb = 1; nb <= kNeighbours; nb += 4) {
          // A covariance block: row i against four neighbour rows at once.
          // Five live row pointers, re-dereferenced per element the way the
          // Phoenix source (matrix[i][k] * matrix[j][k]) compiles under the
          // baseline instrumentations: more live pointers than MPX has
          // bounds registers, so every iteration spills and reloads bounds
          // (the "10x instructions / 25x L1 accesses" the paper measures on
          // pca). SGXBounds' tags simply ride along in the reloaded slots.
          uint64_t js[4];
          for (int q = 0; q < 4; ++q) {
            js[q] = (i + (nb + q) * 131) % n;
          }
          double dot = 0;
          for (uint32_t k = 0; k < d; k += 16) {  // line-strided sampling
            Ptr row_i =
                env.policy.LoadPtr(cpu, env.policy.Offset(cpu, rows, i * kPtrSlotBytes));
            const float a = env.policy.template LoadAt<float>(cpu, row_i, k * 4);
            for (int q = 0; q < 4; ++q) {
              Ptr row_j = env.policy.LoadPtr(
                  cpu, env.policy.Offset(cpu, rows, js[q] * kPtrSlotBytes));
              const float b = env.policy.template LoadAt<float>(cpu, row_j, k * 4);
              dot += static_cast<double>(a) * b;
              cpu.Fp(3);
            }
          }
          cov += dot;
        }
      }
      ConsumeDouble(cov);
    });
  }
};

// --- string_match ------------------------------------------------------------
// Scans a text corpus for a set of keys, 8 bytes at a time.
struct StringMatchBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    const uint32_t bytes = 8 * kMiB * SizeMultiplier(cfg.size);
    Rng rng(cfg.seed);
    auto text = AllocSparseFilled(env, env.cpu, bytes, rng);
    const uint64_t keys[4] = {rng.Next(), rng.Next(), rng.Next(), 0x6b65796b65796b65ULL};
    env.Parallel([&](ThreadCtx& t) {
      Cpu& cpu = *t.cpu;
      const Slice s = SliceFor(bytes / 8, t.tid, t.nthreads);
      uint64_t hits = 0;
      for (uint64_t i = s.begin; i < s.end; ++i) {
        const uint64_t w = env.policy.template LoadAt<uint64_t>(cpu, text, i * 8);
        for (const uint64_t key : keys) {
          cpu.Alu(1);
          if (w == key) {
            ++hits;
          }
        }
        cpu.Branch();
      }
      Consume(hits);
    });
    env.policy.Free(env.cpu, text);
  }
};

// --- word_count --------------------------------------------------------------
// Tokenizes text into word hashes and counts them in a chained hash table:
// bucket array of pointer slots, nodes {hash, count, next}. Pointer-chasing
// inserts make this MPX-hostile, like the paper's wordcount.
struct WordCountBody {
  template <typename P>
  void operator()(Env<P>& env, const WorkloadConfig& cfg) const {
    using Ptr = typename P::Ptr;
    const uint32_t bytes = 3 * kMiB * SizeMultiplier(cfg.size);
    const uint32_t kBuckets = 1 << 14;
    const uint32_t kDistinct = 1 << 16;  // ~4-deep chains: pointer chasing
    Rng rng(cfg.seed);
    auto text = AllocSparseFilled(env, env.cpu, bytes, rng);
    auto buckets = env.policy.Calloc(env.cpu, kBuckets, kPtrSlotBytes);

    // Node layout: [0]=hash u32, [4]=count u32, [8]=next Ptr slot, 8 B pad
    // (matches the original's word_t alignment; also keeps the allocator's
    // 16-byte rounding identical across hardening schemes).
    constexpr uint32_t kNodeBytes = 24;
    Cpu& cpu = env.cpu;  // table build is the serial phase
    for (uint64_t off = 0; off + 8 <= bytes; off += 8) {
      const uint64_t w = env.policy.template LoadAt<uint64_t>(cpu, text, off);
      const uint32_t word_hash = static_cast<uint32_t>(w % kDistinct) * 2654435761u;
      const uint32_t bucket = (word_hash >> 8) % kBuckets;
      cpu.Alu(6);
      Ptr slot = env.policy.Offset(cpu, buckets, bucket * kPtrSlotBytes);
      Ptr node = env.policy.LoadPtr(cpu, slot);
      bool found = false;
      while (env.policy.AddrOf(node) != 0) {
        cpu.Branch();
        const uint32_t h = env.policy.template LoadField<uint32_t>(cpu, node, 0);
        if (h == word_hash) {
          const uint32_t count = env.policy.template LoadField<uint32_t>(cpu, node, 4);
          env.policy.template StoreField<uint32_t>(cpu, node, 4, count + 1);
          found = true;
          break;
        }
        node = env.policy.LoadPtr(cpu, env.policy.Offset(cpu, node, 8));
      }
      if (!found) {
        Ptr fresh = env.policy.Malloc(cpu, kNodeBytes);
        env.policy.template StoreField<uint32_t>(cpu, fresh, 0, word_hash);
        env.policy.template StoreField<uint32_t>(cpu, fresh, 4, 1);
        Ptr head = env.policy.LoadPtr(cpu, slot);
        env.policy.StorePtr(cpu, env.policy.Offset(cpu, fresh, 8), head);
        env.policy.StorePtr(cpu, slot, fresh);
      }
    }
    env.policy.Free(cpu, text);
  }
};

}  // namespace

void RegisterPhoenixWorkloads(WorkloadRegistry& registry) {
  REGISTER_WORKLOAD(registry, "phoenix", "histogram", true, HistogramBody);
  REGISTER_WORKLOAD(registry, "phoenix", "kmeans", true, KmeansBody);
  REGISTER_WORKLOAD(registry, "phoenix", "linear_regression", true, LinearRegressionBody);
  REGISTER_WORKLOAD(registry, "phoenix", "matrixmul", true, MatrixMultiplyBody);
  REGISTER_WORKLOAD(registry, "phoenix", "pca", true, PcaBody);
  REGISTER_WORKLOAD(registry, "phoenix", "string_match", true, StringMatchBody);
  REGISTER_WORKLOAD(registry, "phoenix", "wordcount", true, WordCountBody);
}

}  // namespace sgxb
