// Shared helpers for workload kernels: array setup with bounded simulated
// traffic, slice partitioning for the thread pool.

#ifndef SGXBOUNDS_SRC_WORKLOADS_WORKLOAD_UTIL_H_
#define SGXBOUNDS_SRC_WORKLOADS_WORKLOAD_UTIL_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/policy/run.h"

namespace sgxb {

// Allocates `bytes` and initializes them with one charged 8-byte store per
// cache line plus a bulk zero of the remainder. This touches every line of
// the working set (correct cold-cache/EPC behaviour) while keeping the
// simulated instruction count proportional to lines, not bytes - kernels
// document this as their "input generation" phase.
template <typename P>
typename P::Ptr AllocSparseFilled(Env<P>& env, Cpu& cpu, uint32_t bytes, Rng& rng) {
  auto p = env.policy.Malloc(cpu, bytes);
  env.policy.Memset(cpu, p, 0, bytes);
  auto span = env.policy.OpenSpan(cpu, p, bytes);
  for (uint64_t off = 0; off + 8 <= bytes; off += kCacheLineSize) {
    span.template Store<uint64_t>(cpu, off, rng.Next());
  }
  return p;
}

// Dense random fill (one charged store per 8 bytes); for small arrays.
template <typename P>
typename P::Ptr AllocDenseFilled(Env<P>& env, Cpu& cpu, uint32_t bytes, Rng& rng) {
  auto p = env.policy.Malloc(cpu, bytes);
  auto span = env.policy.OpenSpan(cpu, p, bytes);
  for (uint64_t off = 0; off + 8 <= bytes; off += 8) {
    span.template Store<uint64_t>(cpu, off, rng.Next());
  }
  return p;
}

// [begin, end) slice of `total` for worker `tid` of `n`.
struct Slice {
  uint64_t begin;
  uint64_t end;
};

inline Slice SliceFor(uint64_t total, uint32_t tid, uint32_t nthreads) {
  const uint64_t per = total / nthreads;
  const uint64_t begin = static_cast<uint64_t>(tid) * per;
  const uint64_t end = tid + 1 == nthreads ? total : begin + per;
  return Slice{begin, end};
}

// Prevents the compiler from eliding host-side computation.
inline void Consume(uint64_t value) {
  volatile uint64_t sink = value;
  (void)sink;
}
inline void ConsumeDouble(double value) {
  volatile double sink = value;
  (void)sink;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_WORKLOADS_WORKLOAD_UTIL_H_
