#include "src/workloads/workload.h"

namespace sgxb {

const char* SizeClassName(SizeClass size) {
  switch (size) {
    case SizeClass::kXS:
      return "XS";
    case SizeClass::kS:
      return "S";
    case SizeClass::kM:
      return "M";
    case SizeClass::kL:
      return "L";
    case SizeClass::kXL:
      return "XL";
  }
  return "?";
}

uint32_t SizeMultiplier(SizeClass size) {
  switch (size) {
    case SizeClass::kXS:
      return 1;
    case SizeClass::kS:
      return 2;
    case SizeClass::kM:
      return 4;
    case SizeClass::kL:
      return 8;
    case SizeClass::kXL:
      return 16;
  }
  return 1;
}

WorkloadRegistry& WorkloadRegistry::Instance() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    RegisterPhoenixWorkloads(*r);
    RegisterParsecWorkloads(*r);
    RegisterSpecWorkloads(*r);
    RegisterIrWorkloads(*r);
    return r;
  }();
  return *registry;
}

void WorkloadRegistry::Add(WorkloadInfo info) { workloads_.push_back(std::move(info)); }

const WorkloadInfo* WorkloadRegistry::Find(const std::string& name) const {
  for (const auto& w : workloads_) {
    if (w.name == name) {
      return &w;
    }
  }
  return nullptr;
}

std::vector<const WorkloadInfo*> WorkloadRegistry::BySuite(const std::string& suite) const {
  std::vector<const WorkloadInfo*> out;
  for (const auto& w : workloads_) {
    if (w.suite == suite) {
      out.push_back(&w);
    }
  }
  return out;
}

std::vector<const WorkloadInfo*> WorkloadRegistry::All() const {
  std::vector<const WorkloadInfo*> out;
  for (const auto& w : workloads_) {
    out.push_back(&w);
  }
  return out;
}

}  // namespace sgxb
