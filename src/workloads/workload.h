// Workload registry: the benchmark programs of the paper's evaluation.
//
// Every workload is a policy-templated kernel (see src/policy/policy.h). The
// registry stores type-erased runners so benchmark binaries can iterate
// "for each workload x for each policy" the way the paper's Fig. 7/11 do.
//
// Input sizing follows SS6.3: five size classes XS..XL per workload, scaled
// so the interesting classes straddle the 94 MiB EPC. Since the simulator
// charges per access, kernels are written to touch their full working set
// with a bounded operation count (documented per kernel); the paper's
// relative overheads depend on access *patterns* and *working-set size*, not
// on wall-clock length.

#ifndef SGXBOUNDS_SRC_WORKLOADS_WORKLOAD_H_
#define SGXBOUNDS_SRC_WORKLOADS_WORKLOAD_H_

#include <functional>
#include <string>
#include <vector>

#include "src/policy/run.h"

namespace sgxb {

enum class SizeClass : uint8_t { kXS, kS, kM, kL, kXL };

const char* SizeClassName(SizeClass size);

struct WorkloadConfig {
  SizeClass size = SizeClass::kL;
  uint32_t threads = 1;
  uint64_t seed = 42;
};

using WorkloadRunner =
    std::function<RunResult(PolicyKind, const MachineSpec&, const PolicyOptions&,
                            const WorkloadConfig&)>;

struct WorkloadInfo {
  std::string name;
  std::string suite;  // "phoenix", "parsec", "spec", or "ir"
  bool multithreaded = true;
  WorkloadRunner run;
};

// Global registry (populated at static-init time by REGISTER_WORKLOAD).
class WorkloadRegistry {
 public:
  static WorkloadRegistry& Instance();

  void Add(WorkloadInfo info);
  const WorkloadInfo* Find(const std::string& name) const;
  std::vector<const WorkloadInfo*> BySuite(const std::string& suite) const;
  std::vector<const WorkloadInfo*> All() const;

 private:
  std::vector<WorkloadInfo> workloads_;
};

// Wraps a policy-templated body (a struct with a templated operator()) into
// a type-erased runner.
template <typename Body>
WorkloadRunner MakeRunner(Body body) {
  return [body](PolicyKind kind, const MachineSpec& spec, const PolicyOptions& options,
                const WorkloadConfig& cfg) {
    MachineSpec effective = spec;
    effective.threads = cfg.threads;
    effective.seed = cfg.seed;
    return RunPolicyKind(kind, effective, options,
                         [&body, &cfg](auto& env) { body(env, cfg); });
  };
}

// Suite registration hooks (called once by WorkloadRegistry::Instance();
// explicit functions rather than static initializers so a static-library
// link cannot drop them).
void RegisterPhoenixWorkloads(WorkloadRegistry& registry);
void RegisterParsecWorkloads(WorkloadRegistry& registry);
void RegisterSpecWorkloads(WorkloadRegistry& registry);
void RegisterIrWorkloads(WorkloadRegistry& registry);

#define REGISTER_WORKLOAD(registry, suite, name, multithreaded, BodyType) \
  (registry).Add(::sgxb::WorkloadInfo{name, suite, multithreaded, ::sgxb::MakeRunner(BodyType{})})

// Common scaling helper: returns a size-class multiplier 1, 2, 4, 8, 16.
uint32_t SizeMultiplier(SizeClass size);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_WORKLOADS_WORKLOAD_H_
