// Deterministic fault-injection engine.
//
// A FaultPlan schedules fault events at precise trigger points — guest access
// counts, allocation indices, or simulated-cycle thresholds — and a
// FaultInjector armed on an Enclave fires them through the *normal charged
// access paths*, so an injected run stays fully deterministic and remains
// recordable/replayable through the trace subsystem (src/trace).
//
// Event kinds:
//   alloc_fail    - the next Heap allocation fails (SimTrap kOutOfMemory),
//                   modelling transient allocator/EPC exhaustion.
//   wild_write    - one random 8-byte store into the allocated heap span,
//                   modelling a stray pointer in uninstrumented code.
//   epc_storm     - a charged one-byte sweep over the committed heap pages
//                   (up to one EPC's worth), evicting the resident set.
//   metadata_flip - one bit flip in the active scheme's own metadata (LB
//                   footer, ASan shadow byte, MPX bounds-table entry) via a
//                   corruptor callback the policy registers.
//
// Spec grammar (--faults=):   EVENT[;EVENT...][;seed=N]
//   EVENT := KIND @ TRIGGER : AT [* COUNT] [+ PERIOD]
//   KIND := alloc_fail | wild_write | epc_storm | metadata_flip
//   TRIGGER := access | alloc | cycle
// e.g. "alloc_fail@alloc:100;wild_write@access:5000*3+2500" fires an
// allocation failure at the 100th allocation and three wild writes at guest
// accesses 5000, 7500 and 10000.
//
// Determinism contract: the same binary, flags, plan, and seed produce the
// same injected faults, cycles and counters, bit for bit. Access- and
// alloc-indexed triggers are stable across cost-model changes; cycle-indexed
// triggers are (by nature) a function of the configuration being simulated.

#ifndef SGXBOUNDS_SRC_FAULT_FAULT_H_
#define SGXBOUNDS_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/enclave/fault_hooks.h"

namespace sgxb {

class Cpu;
class Enclave;
class Heap;

enum class FaultKind : uint8_t {
  kAllocFail = 0,
  kWildWrite = 1,
  kEpcStorm = 2,
  kMetadataFlip = 3,
};
inline constexpr uint32_t kFaultKindCount = 4;

const char* FaultKindName(FaultKind kind);
bool ParseFaultKind(const std::string& text, FaultKind* out);

enum class FaultTrigger : uint8_t {
  kAccessCount = 0,  // fires when the guest access counter reaches `at`
  kAllocIndex = 1,   // fires at the `at`-th heap allocation
  kCycleCount = 2,   // fires once simulated cycles reach `at`
};

const char* FaultTriggerName(FaultTrigger trigger);

struct FaultEvent {
  FaultKind kind = FaultKind::kAllocFail;
  FaultTrigger trigger = FaultTrigger::kAccessCount;
  uint64_t at = 0;     // first firing point
  uint32_t count = 1;  // total firings
  uint64_t period = 0; // spacing between firings; 0 means `at`
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  // Campaign RNG seed: drives wild-write targets and flip positions, not the
  // trigger points (those are explicit in the events).
  uint64_t seed = 1;

  bool empty() const { return events.empty(); }
  std::string ToSpec() const;

  // Parses the --faults= grammar above. On failure returns false and fills
  // `error` with a message naming the bad token and the valid choices.
  static bool Parse(const std::string& spec, FaultPlan* out, std::string* error);

  // Seeded single-kind campaign: `events` firings of `kind` at RNG-drawn
  // points in [span/8, span] of the kind's natural trigger space (alloc
  // index for kAllocFail, access count otherwise).
  static FaultPlan Campaign(FaultKind kind, uint64_t seed, uint32_t events, uint64_t span);

  // Seeded mixed campaign: `events` firings, each of an RNG-drawn kind.
  static FaultPlan Mixed(uint64_t seed, uint32_t events, uint64_t span);
};

struct FaultStats {
  uint64_t injected[kFaultKindCount] = {};
  // Events that fired with no applicable target (no corruptor registered,
  // empty heap, ...). Still deterministic: skipping consumes the same RNG
  // draws as injecting would not, so it is part of the plan's identity.
  uint64_t skipped = 0;

  uint64_t total_injected() const {
    uint64_t total = 0;
    for (uint32_t i = 0; i < kFaultKindCount; ++i) {
      total += injected[i];
    }
    return total;
  }
};

// Arms a FaultPlan on an enclave + heap. Attach via Arm() before the
// workload runs; the policy under test registers a metadata corruptor so
// kMetadataFlip lands in that scheme's own structures.
class FaultInjector : public FaultHooks {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // Attaches this injector to the enclave's access tap (and through
  // enclave->faults() to the heap's allocator entry).
  void Arm(Enclave* enclave, Heap* heap);
  void Disarm();

  // `corruptor(cpu, rng)` flips one bit of scheme metadata and returns true,
  // or returns false when there is nothing to corrupt (counted as skipped).
  using Corruptor = std::function<bool(Cpu&, Rng&)>;
  void RegisterMetadataCorruptor(Corruptor corruptor) { corruptor_ = std::move(corruptor); }

  // Fires one fault of `kind` immediately, outside any scheduled trigger —
  // the farm's shard-scoped injections (shard_fault.h) land epc_storm /
  // metadata_flip events at request positions through this. Draws from the
  // same injection rng as scheduled firings and counts into the same stats.
  void InjectNow(Cpu& cpu, FaultKind kind) { Fire(cpu, kind); }

  // FaultHooks:
  void OnAccess(Cpu& cpu, uint32_t addr, uint32_t size) override;
  bool OnAlloc(Cpu& cpu) override;

  const FaultStats& stats() const { return stats_; }
  uint64_t access_count() const { return access_count_; }
  uint64_t alloc_count() const { return alloc_count_; }

 private:
  struct Pending {
    FaultEvent event;
    uint64_t next = 0;   // next firing point
    uint32_t left = 0;   // firings remaining
  };

  static constexpr uint64_t kNever = ~0ull;

  void Fire(Cpu& cpu, FaultKind kind);
  void FireDue(Cpu& cpu, FaultTrigger trigger, uint64_t now);
  void RecomputePolls();
  void InjectWildWrite(Cpu& cpu);
  void InjectEpcStorm(Cpu& cpu);

  Enclave* enclave_ = nullptr;
  Heap* heap_ = nullptr;
  std::vector<Pending> pending_;
  Corruptor corruptor_;
  Rng rng_;
  FaultStats stats_;
  uint64_t access_count_ = 0;
  uint64_t alloc_count_ = 0;
  // Cheap threshold compares on the hot OnAccess path; recomputed after
  // every firing.
  uint64_t next_access_poll_ = kNever;
  uint64_t next_cycle_poll_ = kNever;
  // Alloc failures requested by access/cycle triggers, consumed by the next
  // OnAlloc.
  uint32_t pending_alloc_fails_ = 0;
  // Injected accesses re-enter OnAccess; they must not advance the counters
  // or fire further events.
  bool injecting_ = false;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_FAULT_FAULT_H_
