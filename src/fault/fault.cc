#include "src/fault/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/enclave/enclave.h"
#include "src/runtime/heap.h"

namespace sgxb {

namespace {

constexpr const char* kKindNames[kFaultKindCount] = {
    "alloc_fail",
    "wild_write",
    "epc_storm",
    "metadata_flip",
};

constexpr const char* kKindChoices = "alloc_fail|wild_write|epc_storm|metadata_flip";
constexpr const char* kTriggerChoices = "access|alloc|cycle";

// Restores the re-entrancy guard even if an injection throws a SimTrap.
struct InjectScope {
  explicit InjectScope(bool* flag) : flag_(flag) { *flag_ = true; }
  ~InjectScope() { *flag_ = false; }
  bool* flag_;
};

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

std::string Trimmed(const std::string& text) {
  size_t lo = text.find_first_not_of(" \t");
  if (lo == std::string::npos) {
    return "";
  }
  size_t hi = text.find_last_not_of(" \t");
  return text.substr(lo, hi - lo + 1);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  return kKindNames[static_cast<uint8_t>(kind)];
}

bool ParseFaultKind(const std::string& text, FaultKind* out) {
  for (uint32_t i = 0; i < kFaultKindCount; ++i) {
    if (text == kKindNames[i]) {
      *out = static_cast<FaultKind>(i);
      return true;
    }
  }
  return false;
}

const char* FaultTriggerName(FaultTrigger trigger) {
  switch (trigger) {
    case FaultTrigger::kAccessCount:
      return "access";
    case FaultTrigger::kAllocIndex:
      return "alloc";
    case FaultTrigger::kCycleCount:
      return "cycle";
  }
  return "?";
}

std::string FaultPlan::ToSpec() const {
  std::string spec;
  for (const FaultEvent& event : events) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s%s@%s:%llu", spec.empty() ? "" : ";",
                  FaultKindName(event.kind), FaultTriggerName(event.trigger),
                  static_cast<unsigned long long>(event.at));
    spec += buf;
    if (event.count != 1) {
      std::snprintf(buf, sizeof(buf), "*%u", event.count);
      spec += buf;
    }
    if (event.period != 0 && event.period != event.at) {
      std::snprintf(buf, sizeof(buf), "+%llu", static_cast<unsigned long long>(event.period));
      spec += buf;
    }
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%sseed=%llu", spec.empty() ? "" : ";",
                static_cast<unsigned long long>(seed));
  spec += buf;
  return spec;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find_first_of(";,", pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    const std::string token = Trimmed(spec.substr(pos, sep - pos));
    pos = sep + 1;
    if (token.empty()) {
      if (pos > spec.size()) {
        break;
      }
      continue;
    }
    if (token.rfind("seed=", 0) == 0) {
      if (!ParseU64(token.substr(5), &plan.seed)) {
        if (error != nullptr) {
          *error = "bad fault seed '" + token + "' (want seed=N)";
        }
        return false;
      }
      continue;
    }

    const size_t at_sign = token.find('@');
    const size_t colon = token.find(':', at_sign == std::string::npos ? 0 : at_sign);
    if (at_sign == std::string::npos || colon == std::string::npos) {
      if (error != nullptr) {
        *error = "bad fault event '" + token +
                 "' (want KIND@TRIGGER:AT[*COUNT][+PERIOD]; kinds: " + kKindChoices +
                 "; triggers: " + kTriggerChoices + ")";
      }
      return false;
    }

    FaultEvent event;
    const std::string kind_text = Trimmed(token.substr(0, at_sign));
    if (!ParseFaultKind(kind_text, &event.kind)) {
      if (error != nullptr) {
        *error = "unknown fault kind '" + kind_text + "' (valid: " + kKindChoices + ")";
      }
      return false;
    }
    const std::string trigger_text = Trimmed(token.substr(at_sign + 1, colon - at_sign - 1));
    if (trigger_text == "access") {
      event.trigger = FaultTrigger::kAccessCount;
    } else if (trigger_text == "alloc") {
      event.trigger = FaultTrigger::kAllocIndex;
    } else if (trigger_text == "cycle") {
      event.trigger = FaultTrigger::kCycleCount;
    } else {
      if (error != nullptr) {
        *error = "unknown fault trigger '" + trigger_text + "' (valid: " +
                 kTriggerChoices + ")";
      }
      return false;
    }

    std::string point_text = Trimmed(token.substr(colon + 1));
    const size_t plus = point_text.find('+');
    if (plus != std::string::npos) {
      if (!ParseU64(point_text.substr(plus + 1), &event.period) || event.period == 0) {
        if (error != nullptr) {
          *error = "bad fault period in '" + token + "'";
        }
        return false;
      }
      point_text = point_text.substr(0, plus);
    }
    const size_t star = point_text.find('*');
    if (star != std::string::npos) {
      uint64_t count = 0;
      if (!ParseU64(point_text.substr(star + 1), &count) || count == 0 ||
          count > 0xffffffffull) {
        if (error != nullptr) {
          *error = "bad fault count in '" + token + "'";
        }
        return false;
      }
      event.count = static_cast<uint32_t>(count);
      point_text = point_text.substr(0, star);
    }
    if (!ParseU64(point_text, &event.at) || event.at == 0) {
      if (error != nullptr) {
        *error = "bad fault trigger point in '" + token + "' (want a positive integer)";
      }
      return false;
    }
    plan.events.push_back(event);
  }
  *out = std::move(plan);
  return true;
}

FaultPlan FaultPlan::Campaign(FaultKind kind, uint64_t seed, uint32_t events, uint64_t span) {
  FaultPlan plan;
  plan.seed = seed;
  // Placement rng decoupled from the injection rng so adding events does not
  // shift where existing ones land their writes/flips.
  Rng rng(seed ^ 0x66a0f7a1c3d5e9bbull);
  if (span < 8) {
    span = 8;
  }
  const uint64_t lo = span / 8;
  for (uint32_t i = 0; i < events; ++i) {
    FaultEvent event;
    event.kind = kind;
    event.trigger =
        kind == FaultKind::kAllocFail ? FaultTrigger::kAllocIndex : FaultTrigger::kAccessCount;
    uint64_t point = lo + rng.NextBounded(span - lo + 1);
    if (event.trigger == FaultTrigger::kAllocIndex) {
      // Allocation indices are ~two orders of magnitude sparser than guest
      // accesses; scale the same span into that space.
      point = std::max<uint64_t>(1, point / 64);
    }
    event.at = point;
    plan.events.push_back(event);
  }
  return plan;
}

FaultPlan FaultPlan::Mixed(uint64_t seed, uint32_t events, uint64_t span) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed ^ 0x9d3f8c1b274a65e1ull);
  if (span < 8) {
    span = 8;
  }
  const uint64_t lo = span / 8;
  for (uint32_t i = 0; i < events; ++i) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(rng.NextBounded(kFaultKindCount));
    event.trigger =
        event.kind == FaultKind::kAllocFail ? FaultTrigger::kAllocIndex : FaultTrigger::kAccessCount;
    uint64_t point = lo + rng.NextBounded(span - lo + 1);
    if (event.trigger == FaultTrigger::kAllocIndex) {
      point = std::max<uint64_t>(1, point / 64);
    }
    event.at = point;
    plan.events.push_back(event);
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan) : rng_(plan.seed) {
  pending_.reserve(plan.events.size());
  for (const FaultEvent& event : plan.events) {
    Pending pending;
    pending.event = event;
    if (pending.event.period == 0) {
      pending.event.period = event.at;
    }
    pending.next = event.at;
    pending.left = event.count;
    pending_.push_back(pending);
  }
  RecomputePolls();
}

void FaultInjector::Arm(Enclave* enclave, Heap* heap) {
  enclave_ = enclave;
  heap_ = heap;
  enclave_->AttachFaults(this);
}

void FaultInjector::Disarm() {
  if (enclave_ != nullptr) {
    enclave_->AttachFaults(nullptr);
  }
}

void FaultInjector::RecomputePolls() {
  next_access_poll_ = kNever;
  next_cycle_poll_ = kNever;
  for (const Pending& pending : pending_) {
    if (pending.left == 0) {
      continue;
    }
    if (pending.event.trigger == FaultTrigger::kAccessCount) {
      next_access_poll_ = std::min(next_access_poll_, pending.next);
    } else if (pending.event.trigger == FaultTrigger::kCycleCount) {
      next_cycle_poll_ = std::min(next_cycle_poll_, pending.next);
    }
  }
}

void FaultInjector::OnAccess(Cpu& cpu, uint32_t addr, uint32_t size) {
  (void)addr;
  (void)size;
  if (injecting_) {
    return;
  }
  ++access_count_;
  if (access_count_ >= next_access_poll_) {
    FireDue(cpu, FaultTrigger::kAccessCount, access_count_);
  }
  if (next_cycle_poll_ != kNever && cpu.cycles() >= next_cycle_poll_) {
    FireDue(cpu, FaultTrigger::kCycleCount, cpu.cycles());
  }
}

bool FaultInjector::OnAlloc(Cpu& cpu) {
  if (injecting_) {
    return false;
  }
  ++alloc_count_;
  bool fail = false;
  for (Pending& pending : pending_) {
    if (pending.event.trigger != FaultTrigger::kAllocIndex) {
      continue;
    }
    while (pending.left > 0 && alloc_count_ >= pending.next) {
      pending.next += pending.event.period;
      --pending.left;
      if (pending.event.kind == FaultKind::kAllocFail) {
        ++stats_.injected[static_cast<uint8_t>(FaultKind::kAllocFail)];
        fail = true;
      } else {
        Fire(cpu, pending.event.kind);
      }
    }
  }
  if (pending_alloc_fails_ > 0) {
    --pending_alloc_fails_;
    ++stats_.injected[static_cast<uint8_t>(FaultKind::kAllocFail)];
    fail = true;
  }
  return fail;
}

void FaultInjector::FireDue(Cpu& cpu, FaultTrigger trigger, uint64_t now) {
  for (Pending& pending : pending_) {
    if (pending.event.trigger != trigger) {
      continue;
    }
    while (pending.left > 0 && now >= pending.next) {
      pending.next += pending.event.period;
      --pending.left;
      Fire(cpu, pending.event.kind);
    }
  }
  RecomputePolls();
}

void FaultInjector::Fire(Cpu& cpu, FaultKind kind) {
  InjectScope scope(&injecting_);
  switch (kind) {
    case FaultKind::kAllocFail:
      // Access/cycle-triggered allocation failures arm the *next* allocation;
      // the stat is counted when the failure is actually delivered.
      ++pending_alloc_fails_;
      break;
    case FaultKind::kWildWrite:
      InjectWildWrite(cpu);
      break;
    case FaultKind::kEpcStorm:
      InjectEpcStorm(cpu);
      break;
    case FaultKind::kMetadataFlip:
      if (corruptor_ && corruptor_(cpu, rng_)) {
        ++stats_.injected[static_cast<uint8_t>(FaultKind::kMetadataFlip)];
      } else {
        ++stats_.skipped;
      }
      break;
  }
}

void FaultInjector::InjectWildWrite(Cpu& cpu) {
  CHECK(enclave_ != nullptr && heap_ != nullptr);
  const uint64_t used = heap_->used_bytes();
  if (used < 16) {
    ++stats_.skipped;
    return;
  }
  // Probe a few RNG points in the allocated span for a committed slot; the
  // 8-byte alignment keeps the write inside one page, so one Addressable
  // check covers the whole store.
  for (int probe = 0; probe < 16; ++probe) {
    const uint32_t addr =
        heap_->base() + static_cast<uint32_t>(rng_.NextBounded(used - 8) & ~7ull);
    if (!enclave_->pages().Addressable(addr)) {
      continue;
    }
    enclave_->Store<uint64_t>(cpu, addr, rng_.Next(), AccessClass::kAppStore);
    ++stats_.injected[static_cast<uint8_t>(FaultKind::kWildWrite)];
    return;
  }
  ++stats_.skipped;
}

void FaultInjector::InjectEpcStorm(Cpu& cpu) {
  CHECK(enclave_ != nullptr && heap_ != nullptr);
  // A charged one-byte sweep over the committed heap pages (capped at one
  // EPC's worth): evicts the enclave's resident set through the normal
  // access path, so recorded runs replay bit-identically.
  const uint64_t used = heap_->used_bytes();
  const uint64_t cap_pages = enclave_->memsys().epc().capacity_pages();
  uint64_t touched = 0;
  for (uint64_t off = 0; off < used && touched < cap_pages; off += kPageSize) {
    const uint32_t addr = heap_->base() + static_cast<uint32_t>(off);
    if (!enclave_->pages().Addressable(addr)) {
      continue;
    }
    enclave_->Load<uint8_t>(cpu, addr, AccessClass::kMetadataLoad);
    ++touched;
  }
  if (touched > 0) {
    ++stats_.injected[static_cast<uint8_t>(FaultKind::kEpcStorm)];
  } else {
    ++stats_.skipped;
  }
}

}  // namespace sgxb
