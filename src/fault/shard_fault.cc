#include "src/fault/shard_fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"

namespace sgxb {

namespace {

constexpr const char* kKindNames[kShardFaultKindCount] = {
    "crash",
    "hang",
    "epc_storm",
    "poison",
};

constexpr const char* kKindChoices = "crash|hang|epc_storm|poison";

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

std::string Trimmed(const std::string& text) {
  const size_t lo = text.find_first_not_of(" \t");
  if (lo == std::string::npos) {
    return "";
  }
  const size_t hi = text.find_last_not_of(" \t");
  return text.substr(lo, hi - lo + 1);
}

}  // namespace

const char* ShardFaultKindName(ShardFaultKind kind) {
  return kKindNames[static_cast<uint8_t>(kind)];
}

bool ParseShardFaultKind(const std::string& text, ShardFaultKind* out) {
  for (uint32_t i = 0; i < kShardFaultKindCount; ++i) {
    if (text == kKindNames[i]) {
      *out = static_cast<ShardFaultKind>(i);
      return true;
    }
  }
  return false;
}

std::string ShardFaultPlan::ToSpec() const {
  std::string spec;
  for (const ShardFaultEvent& event : events) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s%s@%u:%llu", spec.empty() ? "" : ";",
                  ShardFaultKindName(event.kind), event.shard,
                  static_cast<unsigned long long>(event.at_request));
    spec += buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%sseed=%llu", spec.empty() ? "" : ";",
                static_cast<unsigned long long>(seed));
  spec += buf;
  return spec;
}

bool ShardFaultPlan::Parse(const std::string& spec, ShardFaultPlan* out,
                           std::string* error) {
  ShardFaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find_first_of(";,", pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    const std::string token = Trimmed(spec.substr(pos, sep - pos));
    pos = sep + 1;
    if (token.empty()) {
      if (pos > spec.size()) {
        break;
      }
      continue;
    }
    if (token.rfind("seed=", 0) == 0) {
      if (!ParseU64(token.substr(5), &plan.seed)) {
        if (error != nullptr) {
          *error = "bad shard-fault seed '" + token + "' (want seed=N)";
        }
        return false;
      }
      continue;
    }

    const size_t at_sign = token.find('@');
    const size_t colon = token.find(':', at_sign == std::string::npos ? 0 : at_sign);
    if (at_sign == std::string::npos || colon == std::string::npos) {
      if (error != nullptr) {
        *error = "bad shard-fault event '" + token +
                 "' (want KIND@SHARD:REQUEST; kinds: " + kKindChoices + ")";
      }
      return false;
    }

    ShardFaultEvent event;
    const std::string kind_text = Trimmed(token.substr(0, at_sign));
    if (!ParseShardFaultKind(kind_text, &event.kind)) {
      if (error != nullptr) {
        *error = "unknown shard-fault kind '" + kind_text + "' (valid: " +
                 kKindChoices + ")";
      }
      return false;
    }
    uint64_t shard = 0;
    if (!ParseU64(Trimmed(token.substr(at_sign + 1, colon - at_sign - 1)), &shard) ||
        shard > 0xffffffffull) {
      if (error != nullptr) {
        *error = "bad shard index in '" + token + "' (want KIND@SHARD:REQUEST)";
      }
      return false;
    }
    event.shard = static_cast<uint32_t>(shard);
    if (!ParseU64(Trimmed(token.substr(colon + 1)), &event.at_request) ||
        event.at_request == 0) {
      if (error != nullptr) {
        *error = "bad request trigger in '" + token + "' (want a positive integer)";
      }
      return false;
    }
    plan.events.push_back(event);
  }
  *out = std::move(plan);
  return true;
}

ShardFaultPlan ShardFaultPlan::Sampled(uint64_t seed, uint32_t shards, uint64_t requests,
                                       uint32_t events) {
  ShardFaultPlan plan;
  plan.seed = seed;
  if (shards == 0 || requests < 8) {
    return plan;
  }
  // Placement rng decoupled from the plan seed so a rate sweep at one seed
  // grows the event set monotonically (event i is identical at every rate
  // that includes it).
  Rng rng(seed ^ 0x5ca1ab1e0ddba11ull);
  const uint64_t lo = requests / 8;
  const uint64_t hi = (3 * requests) / 4;
  for (uint32_t i = 0; i < events; ++i) {
    ShardFaultEvent event;
    // Weighted kinds: half the campaign is crashes (where the recovery
    // policies differ most), the rest split across hang/epc_storm/poison.
    const uint64_t k = rng.NextBounded(8);
    if (k < 4) {
      event.kind = ShardFaultKind::kCrash;
    } else if (k < 6) {
      event.kind = ShardFaultKind::kHang;
    } else if (k < 7) {
      event.kind = ShardFaultKind::kEpcStorm;
    } else {
      event.kind = ShardFaultKind::kPoison;
    }
    event.shard = static_cast<uint32_t>(rng.NextBounded(shards));
    event.at_request = lo + rng.NextBounded(hi - lo + 1);
    plan.events.push_back(event);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const ShardFaultEvent& a, const ShardFaultEvent& b) {
              return a.at_request != b.at_request ? a.at_request < b.at_request
                                                  : a.shard < b.shard;
            });
  return plan;
}

}  // namespace sgxb
