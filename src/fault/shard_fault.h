// Shard-scoped fault plans for the enclave farm (src/farm).
//
// The per-enclave FaultPlan (fault.h) injects memory-safety faults *inside*
// one enclave; a ShardFaultPlan schedules fleet-level events against whole
// shards of a farm run, at request granularity so the plan is a pure
// function of the load stream and never of host timing:
//
//   crash     - the shard's process dies (fail-stop). Nothing it is serving
//               completes; the supervisor must restart it or fail it over.
//               This models host/enclave death, NOT a memory-safety trap —
//               those come from the per-enclave plan and are contained per
//               request (the paper's §3.4 story).
//   hang      - the shard stays up but every request it serves is slowed by
//               the configured factor (a slow/sick shard: EPC thrash from a
//               co-tenant, a spinning thread). Cleared by restart.
//   epc_storm - a charged eviction sweep is injected into the shard's
//               service-measurement phase at that request position, through
//               the per-enclave injector (fault.h): subsequent demands on
//               that shard genuinely inflate.
//   poison    - one scheme-metadata bit flip (the per-enclave metadata_flip)
//               lands in the shard's enclave at that request position:
//               victim requests trap and are contained, which the farm
//               supervisor can convict via its consecutive-failure rule.
//
// Spec grammar (--shard_faults=):  EVENT[;EVENT...][;seed=N]
//   EVENT := KIND @ SHARD : REQUEST
//   KIND := crash | hang | epc_storm | poison
// e.g. "crash@1:5000;hang@3:2000" crashes shard 1 when the farm dispatches
// its 5000th request and hangs shard 3 at the 2000th.
//
// Determinism contract: same plan + same load config => the same shard
// timeline, bit for bit, at any --bench_threads.

#ifndef SGXBOUNDS_SRC_FAULT_SHARD_FAULT_H_
#define SGXBOUNDS_SRC_FAULT_SHARD_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sgxb {

enum class ShardFaultKind : uint8_t {
  kCrash = 0,
  kHang = 1,
  kEpcStorm = 2,
  kPoison = 3,
};
inline constexpr uint32_t kShardFaultKindCount = 4;

const char* ShardFaultKindName(ShardFaultKind kind);
bool ParseShardFaultKind(const std::string& text, ShardFaultKind* out);

struct ShardFaultEvent {
  ShardFaultKind kind = ShardFaultKind::kCrash;
  uint32_t shard = 0;       // target shard index
  uint64_t at_request = 0;  // fires when this many requests have been dispatched
};

struct ShardFaultPlan {
  std::vector<ShardFaultEvent> events;
  uint64_t seed = 1;  // drives poison flip positions, not trigger points

  bool empty() const { return events.empty(); }
  std::string ToSpec() const;

  // Parses the --shard_faults= grammar above. On failure returns false and
  // fills `error` with a message naming the bad token and valid choices.
  static bool Parse(const std::string& spec, ShardFaultPlan* out, std::string* error);

  // Seeded campaign at a fault rate: `events` fault firings spread over a
  // run of `requests` dispatches across `shards` shards. Targets and kinds
  // are RNG-drawn (weighted toward crash, the event recovery policies differ
  // most on); trigger points land in [requests/8, 3*requests/4] so every
  // policy has post-fault runway to degrade or recover in.
  static ShardFaultPlan Sampled(uint64_t seed, uint32_t shards, uint64_t requests,
                                uint32_t events);
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_FAULT_SHARD_FAULT_H_
