// Fortified libc wrappers (paper SS3.2 "Function calls", SS5.1).
//
// The paper leaves libc uninstrumented and provides ~4.3 kLOC of manually
// written wrappers: each extracts the raw pointers from tagged arguments,
// checks them against bounds, and calls the real routine. Crucially, wrappers
// do NOT fall back to boundless memory - they return an errno-style error so
// servers can drop an offending request (SS5.1), which is exactly what the
// Heartbleed/Nginx case studies exercise.
//
// Bulk routines check bounds once per call and then move data at memcpy cost
// (charged as line-granular traffic), mirroring a real optimized libc.

#ifndef SGXBOUNDS_SRC_SGXBOUNDS_LIBC_H_
#define SGXBOUNDS_SRC_SGXBOUNDS_LIBC_H_

#include <cstdint>
#include <string>

#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {

// errno-style results from wrappers (0 = success).
enum class LibcError : int {
  kOk = 0,
  kEinval = 22,  // bounds violation detected on an argument
};

class FortifiedLibc {
 public:
  explicit FortifiedLibc(SgxBoundsRuntime* rt) : rt_(rt) {}

  // --- memory ---------------------------------------------------------------

  LibcError Memcpy(Cpu& cpu, TaggedPtr dst, TaggedPtr src, uint32_t n);
  LibcError Memset(Cpu& cpu, TaggedPtr dst, uint8_t value, uint32_t n);
  LibcError Memmove(Cpu& cpu, TaggedPtr dst, TaggedPtr src, uint32_t n);
  // memcmp result via out-param so bounds errors are distinguishable.
  LibcError Memcmp(Cpu& cpu, TaggedPtr a, TaggedPtr b, uint32_t n, int* result);

  // --- strings --------------------------------------------------------------

  // strlen stops at NUL or at the upper bound (returns error if unterminated).
  LibcError Strlen(Cpu& cpu, TaggedPtr s, uint32_t* len);
  LibcError Strcpy(Cpu& cpu, TaggedPtr dst, TaggedPtr src);
  LibcError Strncpy(Cpu& cpu, TaggedPtr dst, TaggedPtr src, uint32_t n);
  LibcError Strcmp(Cpu& cpu, TaggedPtr a, TaggedPtr b, int* result);
  LibcError Strchr(Cpu& cpu, TaggedPtr s, char c, TaggedPtr* out);

  // --- host-string bridge (for tests, apps and load generators) --------------

  // Copies a host std::string (with NUL) into enclave memory at dst.
  LibcError CopyInString(Cpu& cpu, TaggedPtr dst, const std::string& s);
  // Reads a NUL-terminated enclave string into a host std::string.
  LibcError ReadString(Cpu& cpu, TaggedPtr src, std::string* out);

  uint64_t violations() const { return violations_; }

 private:
  // Validates that [p, p+n) is inside the object's bounds; returns false and
  // bumps the violation counter otherwise. Untagged pointers pass.
  bool CheckArg(Cpu& cpu, TaggedPtr ptr, uint32_t n);

  SgxBoundsRuntime* rt_;
  uint64_t violations_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SGXBOUNDS_LIBC_H_
