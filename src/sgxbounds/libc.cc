#include "src/sgxbounds/libc.h"

#include <cstring>

namespace sgxb {

namespace {

// Fixed wrapper overhead: call, argument extraction, dispatch.
constexpr uint32_t kWrapperCycles = 12;

}  // namespace

bool FortifiedLibc::CheckArg(Cpu& cpu, TaggedPtr ptr, uint32_t n) {
  const uint32_t ub = ExtractUb(ptr);
  if (ub == 0) {
    return true;  // untagged: unbounded by construction
  }
  cpu.Alu(2);
  const uint32_t p = ExtractPtr(ptr);
  const uint32_t lb = rt_->LoadLb(cpu, ub);
  cpu.Alu(2);
  cpu.Branch();
  ++cpu.counters().bounds_checks;
  if (BoundsViolated(p, lb, ub, n)) {
    ++violations_;
    ++cpu.counters().bounds_violations;
    return false;
  }
  return true;
}

LibcError FortifiedLibc::Memcpy(Cpu& cpu, TaggedPtr dst, TaggedPtr src, uint32_t n) {
  cpu.Charge(kWrapperCycles);
  if (n == 0) {
    return LibcError::kOk;
  }
  if (!CheckArg(cpu, dst, n) || !CheckArg(cpu, src, n)) {
    return LibcError::kEinval;
  }
  Enclave* e = rt_->enclave();
  const uint32_t s = ExtractPtr(src);
  const uint32_t d = ExtractPtr(dst);
  cpu.MemAccess(s, n, AccessClass::kAppLoad);
  cpu.MemAccess(d, n, AccessClass::kAppStore);
  std::memmove(e->space().HostPtr(d), e->space().HostPtr(s), n);
  return LibcError::kOk;
}

LibcError FortifiedLibc::Memmove(Cpu& cpu, TaggedPtr dst, TaggedPtr src, uint32_t n) {
  return Memcpy(cpu, dst, src, n);
}

LibcError FortifiedLibc::Memset(Cpu& cpu, TaggedPtr dst, uint8_t value, uint32_t n) {
  cpu.Charge(kWrapperCycles);
  if (n == 0) {
    return LibcError::kOk;
  }
  if (!CheckArg(cpu, dst, n)) {
    return LibcError::kEinval;
  }
  Enclave* e = rt_->enclave();
  const uint32_t d = ExtractPtr(dst);
  cpu.MemAccess(d, n, AccessClass::kAppStore);
  std::memset(e->space().HostPtr(d), value, n);
  return LibcError::kOk;
}

LibcError FortifiedLibc::Memcmp(Cpu& cpu, TaggedPtr a, TaggedPtr b, uint32_t n, int* result) {
  cpu.Charge(kWrapperCycles);
  if (n == 0) {
    *result = 0;
    return LibcError::kOk;
  }
  if (!CheckArg(cpu, a, n) || !CheckArg(cpu, b, n)) {
    return LibcError::kEinval;
  }
  Enclave* e = rt_->enclave();
  cpu.MemAccess(ExtractPtr(a), n, AccessClass::kAppLoad);
  cpu.MemAccess(ExtractPtr(b), n, AccessClass::kAppLoad);
  *result = std::memcmp(e->space().HostPtr(ExtractPtr(a)), e->space().HostPtr(ExtractPtr(b)), n);
  return LibcError::kOk;
}

LibcError FortifiedLibc::Strlen(Cpu& cpu, TaggedPtr s, uint32_t* len) {
  cpu.Charge(kWrapperCycles);
  Enclave* e = rt_->enclave();
  const uint32_t p = ExtractPtr(s);
  const uint32_t ub = ExtractUb(s);
  // Scan up to the upper bound; an unterminated string is a bounds error
  // (this is what stops Heartbleed-style over-reads in wrapper code).
  const uint32_t limit = ub != 0 ? ub : p + 64 * 1024;  // untagged: sane cap
  if (ub != 0 && !CheckArg(cpu, s, 1)) {
    return LibcError::kEinval;
  }
  for (uint32_t q = p; q < limit; ++q) {
    cpu.Alu(1);
    if (*e->space().HostPtr(q) == 0) {
      cpu.MemAccess(p, q - p + 1, AccessClass::kAppLoad);
      *len = q - p;
      return LibcError::kOk;
    }
  }
  cpu.MemAccess(p, limit - p, AccessClass::kAppLoad);
  ++violations_;
  ++cpu.counters().bounds_violations;
  return LibcError::kEinval;
}

LibcError FortifiedLibc::Strcpy(Cpu& cpu, TaggedPtr dst, TaggedPtr src) {
  uint32_t len = 0;
  const LibcError err = Strlen(cpu, src, &len);
  if (err != LibcError::kOk) {
    return err;
  }
  return Memcpy(cpu, dst, src, len + 1);
}

LibcError FortifiedLibc::Strncpy(Cpu& cpu, TaggedPtr dst, TaggedPtr src, uint32_t n) {
  uint32_t len = 0;
  const LibcError err = Strlen(cpu, src, &len);
  if (err != LibcError::kOk) {
    return err;
  }
  const uint32_t copy = len + 1 < n ? len + 1 : n;
  return Memcpy(cpu, dst, src, copy);
}

LibcError FortifiedLibc::Strcmp(Cpu& cpu, TaggedPtr a, TaggedPtr b, int* result) {
  uint32_t la = 0;
  uint32_t lb = 0;
  LibcError err = Strlen(cpu, a, &la);
  if (err != LibcError::kOk) {
    return err;
  }
  err = Strlen(cpu, b, &lb);
  if (err != LibcError::kOk) {
    return err;
  }
  Enclave* e = rt_->enclave();
  *result = std::strcmp(reinterpret_cast<const char*>(e->space().HostPtr(ExtractPtr(a))),
                        reinterpret_cast<const char*>(e->space().HostPtr(ExtractPtr(b))));
  return LibcError::kOk;
}

LibcError FortifiedLibc::Strchr(Cpu& cpu, TaggedPtr s, char c, TaggedPtr* out) {
  uint32_t len = 0;
  const LibcError err = Strlen(cpu, s, &len);
  if (err != LibcError::kOk) {
    return err;
  }
  Enclave* e = rt_->enclave();
  const uint32_t p = ExtractPtr(s);
  for (uint32_t i = 0; i <= len; ++i) {
    cpu.Alu(1);
    if (static_cast<char>(*e->space().HostPtr(p + i)) == c) {
      *out = WithPtr(s, p + i);
      return LibcError::kOk;
    }
  }
  *out = 0;
  return LibcError::kOk;
}

LibcError FortifiedLibc::CopyInString(Cpu& cpu, TaggedPtr dst, const std::string& s) {
  cpu.Charge(kWrapperCycles);
  const uint32_t n = static_cast<uint32_t>(s.size()) + 1;
  if (!CheckArg(cpu, dst, n)) {
    return LibcError::kEinval;
  }
  Enclave* e = rt_->enclave();
  const uint32_t d = ExtractPtr(dst);
  cpu.MemAccess(d, n, AccessClass::kAppStore);
  std::memcpy(e->space().HostPtr(d), s.c_str(), n);
  return LibcError::kOk;
}

LibcError FortifiedLibc::ReadString(Cpu& cpu, TaggedPtr src, std::string* out) {
  uint32_t len = 0;
  const LibcError err = Strlen(cpu, src, &len);
  if (err != LibcError::kOk) {
    return err;
  }
  Enclave* e = rt_->enclave();
  out->assign(reinterpret_cast<const char*>(e->space().HostPtr(ExtractPtr(src))), len);
  return LibcError::kOk;
}

}  // namespace sgxb
