#include "src/sgxbounds/metadata.h"

namespace sgxb {

void MetadataRegistry::FireCreate(Cpu& cpu, uint32_t base, uint32_t size, ObjKind kind) const {
  for (const auto& hooks : hooks_) {
    if (hooks.on_create) {
      cpu.Call();
      hooks.on_create(cpu, base, size, kind);
    }
  }
}

void MetadataRegistry::FireAccess(Cpu& cpu, uint32_t addr, uint32_t size, uint32_t metadata,
                                  AccessType type) const {
  for (const auto& hooks : hooks_) {
    if (hooks.on_access) {
      cpu.Call();
      hooks.on_access(cpu, addr, size, metadata, type);
    }
  }
}

void MetadataRegistry::FireDelete(Cpu& cpu, uint32_t metadata) const {
  for (const auto& hooks : hooks_) {
    if (hooks.on_delete) {
      cpu.Call();
      hooks.on_delete(cpu, metadata);
    }
  }
}

}  // namespace sgxb
