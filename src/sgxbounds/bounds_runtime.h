// SGXBounds runtime (paper SS3.2, SS4).
//
// This is the run-time support library the paper's LLVM pass targets: object
// creation (`specify_bounds`, malloc/free wrappers), the bounds check
// inserted before each memory access, instrumented pointer arithmetic, and
// the out-of-bounds policy (fail-fast trap or boundless-memory redirect).
//
// Every primitive charges its simulated cost on the Cpu it runs on:
//   extract p/UB      2 ALU ops        (mask + shift)
//   LB load           1 metadata load  (at [UB], usually same line as object tail)
//   bounds compare    2 ALU + 1 branch
//   pointer add       2 ALU            (low-32 masking, SS3.2)
// so the hardened/native cycle ratio measured by the benchmarks reflects the
// real instrumentation profile.

#ifndef SGXBOUNDS_SRC_SGXBOUNDS_BOUNDS_RUNTIME_H_
#define SGXBOUNDS_SRC_SGXBOUNDS_BOUNDS_RUNTIME_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/heap.h"
#include "src/sgxbounds/boundless.h"
#include "src/sgxbounds/metadata.h"
#include "src/sgxbounds/tagged_ptr.h"

namespace sgxb {

enum class OobPolicy : uint8_t {
  kFailFast,   // trap with TrapKind::kSgxBoundsViolation (default)
  kBoundless,  // redirect into the boundless-memory overlay (SS4.2)
};

// Where a checked access should actually be performed.
struct ResolvedAccess {
  uint32_t addr = 0;        // target address (undefined when zero_fill)
  bool zero_fill = false;   // load must be satisfied with zeros
  bool redirected = false;  // went through the boundless overlay
};

struct BoundsRuntimeStats {
  uint64_t objects_created = 0;
  uint64_t objects_freed = 0;
  uint64_t checks = 0;
  uint64_t violations = 0;
};

class SgxBoundsRuntime {
 public:
  // `registry` may be shared by several runtimes; nullptr means "LB only, no
  // hooks" (the common case).
  SgxBoundsRuntime(Enclave* enclave, Heap* heap, OobPolicy policy = OobPolicy::kFailFast,
                   MetadataRegistry* registry = nullptr);

  // --- Object lifecycle -----------------------------------------------------

  // malloc wrapper (SS3.2): allocates size + footer, writes LB, tags.
  TaggedPtr Malloc(Cpu& cpu, uint32_t size);
  // posix_memalign/mmap wrapper: aligned base + footer. Note the footer makes
  // page-multiple requests span one extra page - the Apache pool-allocator
  // artifact the paper reports in SS7.
  TaggedPtr MallocAligned(Cpu& cpu, uint32_t size, uint32_t align);
  TaggedPtr Calloc(Cpu& cpu, uint32_t count, uint32_t elem_size);
  void Free(Cpu& cpu, TaggedPtr tagged);

  // specify_bounds for globals/stack objects whose storage the caller owns.
  // The caller must have reserved FooterBytes() after `ub`.
  TaggedPtr SpecifyBounds(Cpu& cpu, uint32_t p, uint32_t ub, ObjKind kind);

  // Bytes of footer added to every object (4 for LB + registered extras).
  uint32_t FooterBytes() const;

  // --- Instrumentation primitives --------------------------------------------

  // Instrumented pointer arithmetic (SS3.2): low 32 bits only.
  TaggedPtr PtrAdd(Cpu& cpu, TaggedPtr tagged, int64_t delta) {
    cpu.Alu(2);
    return TaggedAdd(tagged, delta);
  }

  // Full bounds check for an access of `size` bytes. Untagged pointers
  // (UB == 0) pass unchecked, mirroring uninstrumented/NULL pointers.
  // Inline: this runs before every checked access, and the in-bounds path is
  // a handful of charges around the LB footer load.
  ResolvedAccess CheckAccess(Cpu& cpu, TaggedPtr tagged, uint32_t size, AccessType type) {
    const uint32_t p = ExtractPtr(tagged);
    const uint32_t ub = ExtractUb(tagged);
    if (ub == 0) {
      // Untagged pointer: no bounds known (uninstrumented origin).
      return ResolvedAccess{p, false, false};
    }
    cpu.Alu(2);  // extract p, UB
    ++stats_.checks;
    ++cpu.counters().bounds_checks;
    const uint32_t lb = LoadLb(cpu, ub);
    cpu.Alu(2);
    cpu.Branch();
    if (registry_->has_hooks()) {
      registry_->FireAccess(cpu, p, size, ub, type);
    }
    if (BoundsViolated(p, lb, ub, size)) {
      return HandleViolation(cpu, p, size, type);
    }
    return ResolvedAccess{p, false, false};
  }

  // Upper-bound-only check used after loop-hoisting has proven the lower
  // bound (SS4.4): no LB footer load, saving the metadata access.
  ResolvedAccess CheckAccessUpperOnly(Cpu& cpu, TaggedPtr tagged, uint32_t size,
                                      AccessType type) {
    const uint32_t p = ExtractPtr(tagged);
    const uint32_t ub = ExtractUb(tagged);
    if (ub == 0) {
      return ResolvedAccess{p, false, false};
    }
    cpu.Alu(2);
    ++stats_.checks;
    ++cpu.counters().bounds_checks;
    cpu.Alu(1);
    cpu.Branch();
    if (static_cast<uint64_t>(p) + size > ub) {
      return HandleViolation(cpu, p, size, type);
    }
    return ResolvedAccess{p, false, false};
  }

  // Hoisted range check (SS4.4): verifies [p, p + extent) once; the loop body
  // may then access the range unchecked.
  void CheckRange(Cpu& cpu, TaggedPtr tagged, uint64_t extent_bytes);

  // --- SS8 extension: bounds narrowing for intra-object overflows -------------
  //
  // The paper's future-work item: when the program takes the address of a
  // struct field, narrow the pointer's bounds to that field so an overflow
  // of an inner buffer cannot reach a sibling member (the 8 RIPE attacks all
  // three schemes miss in Table 4).
  //
  // The returned pointer's UB is the field's end. Because no LB footer
  // exists inside the object, accesses through a narrowed pointer must use
  // CheckAccessUpperOnly (IsNarrowed() distinguishes them): the dangerous
  // forward direction is fully checked; backward underflow detection would
  // need the extended per-field metadata the paper sketches in SS4.3.
  TaggedPtr NarrowBounds(Cpu& cpu, TaggedPtr tagged, uint32_t field_off,
                         uint32_t field_size);

  // True if `tagged` was produced by NarrowBounds (its UB does not carry an
  // LB footer). Implemented with a host-side set of narrowed UBs.
  bool IsNarrowed(TaggedPtr tagged) const {
    return narrowed_ubs_.count(ExtractUb(tagged)) != 0;
  }

  // Dispatching check: full check for regular pointers, UB-only for
  // narrowed ones.
  ResolvedAccess CheckAccessAuto(Cpu& cpu, TaggedPtr tagged, uint32_t size,
                                 AccessType type) {
    if (IsNarrowed(tagged)) {
      return CheckAccessUpperOnly(cpu, tagged, size, type);
    }
    return CheckAccess(cpu, tagged, size, type);
  }

  // --- Checked typed access (check + data movement) --------------------------

  template <typename T>
  T Load(Cpu& cpu, TaggedPtr tagged) {
    const ResolvedAccess r = CheckAccess(cpu, tagged, sizeof(T), AccessType::kRead);
    if (r.zero_fill) {
      return T{};
    }
    return enclave_->Load<T>(cpu, r.addr);
  }

  template <typename T>
  void Store(Cpu& cpu, TaggedPtr tagged, T value) {
    const ResolvedAccess r = CheckAccess(cpu, tagged, sizeof(T), AccessType::kWrite);
    enclave_->Store<T>(cpu, r.addr, value);
  }

  // --- Accessors --------------------------------------------------------------

  // Loads the lower bound from the footer at `ub` (charged metadata load).
  uint32_t LoadLb(Cpu& cpu, uint32_t ub) {
    return enclave_->Load<uint32_t>(cpu, ub, AccessClass::kMetadataLoad);
  }

  // --- Fault campaigns (src/fault) -------------------------------------------

  // When object tracking is on, the runtime maintains a deterministic index
  // of live UB footers so a metadata corruptor can pick a victim
  // reproducibly. Off by default: normal runs pay nothing.
  void set_track_objects(bool on) { track_objects_ = on; }

  // Flips one RNG-chosen bit of one live object's LB footer (charged
  // metadata load + store). Returns false when no tracked object is live.
  bool CorruptLbFooter(Cpu& cpu, Rng& rng) {
    if (live_ubs_.empty()) {
      return false;
    }
    const uint32_t ub = live_ubs_[rng.NextBounded(live_ubs_.size())];
    const uint32_t lb = LoadLb(cpu, ub);
    const uint32_t flipped = lb ^ (1u << rng.NextBounded(32));
    enclave_->Store<uint32_t>(cpu, ub, flipped, AccessClass::kMetadataStore);
    return true;
  }

  Enclave* enclave() { return enclave_; }
  Heap* heap() { return heap_; }
  OobPolicy policy() const { return policy_; }
  void set_policy(OobPolicy policy) { policy_ = policy; }
  MetadataRegistry* registry() { return registry_; }
  BoundlessMemory& boundless() { return boundless_; }
  const BoundsRuntimeStats& stats() const { return stats_; }

 private:
  ResolvedAccess HandleViolation(Cpu& cpu, uint32_t p, uint32_t size, AccessType type);

  Enclave* enclave_;
  Heap* heap_;
  OobPolicy policy_;
  MetadataRegistry* registry_;
  MetadataRegistry default_registry_;
  BoundlessMemory boundless_;
  BoundsRuntimeStats stats_;
  std::set<uint32_t> narrowed_ubs_;
  // Live-object index for fault campaigns: vector for an O(1) deterministic
  // RNG pick, map for O(1) swap-erase on Free.
  bool track_objects_ = false;
  std::vector<uint32_t> live_ubs_;
  std::unordered_map<uint32_t, size_t> live_ub_index_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SGXBOUNDS_BOUNDS_RUNTIME_H_
