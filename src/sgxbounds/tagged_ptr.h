// Tagged-pointer codec (paper Fig. 5).
//
// A 64-bit SGXBounds pointer packs:
//   bits  0..31  - the pointer value `p` (enclave addresses fit in 32 bits)
//   bits 32..63  - the referent object's upper bound UB
//
// UB doubles as the address of the object's metadata area: the 4-byte lower
// bound (LB) is stored at [UB, UB+4), immediately after the object. A pointer
// with UB == 0 is "untagged": library code treats it as unbounded (this is
// what uninstrumented constants/NULL look like).
//
// All functions are branch-free bit manipulation; the simulator charges their
// ALU cost at the call sites in bounds_runtime.h.

#ifndef SGXBOUNDS_SRC_SGXBOUNDS_TAGGED_PTR_H_
#define SGXBOUNDS_SRC_SGXBOUNDS_TAGGED_PTR_H_

#include <cstdint>

namespace sgxb {

using TaggedPtr = uint64_t;

constexpr uint32_t ExtractPtr(TaggedPtr tagged) { return static_cast<uint32_t>(tagged); }

constexpr uint32_t ExtractUb(TaggedPtr tagged) { return static_cast<uint32_t>(tagged >> 32); }

constexpr TaggedPtr MakeTagged(uint32_t p, uint32_t ub) {
  return (static_cast<uint64_t>(ub) << 32) | p;
}

constexpr bool IsTagged(TaggedPtr tagged) { return ExtractUb(tagged) != 0; }

// Pointer arithmetic instrumented per SS3.2: only the low 32 bits change, so
// an overflowing index can never corrupt the upper bound.
constexpr TaggedPtr TaggedAdd(TaggedPtr tagged, int64_t delta) {
  const uint32_t p = static_cast<uint32_t>(ExtractPtr(tagged) + static_cast<uint64_t>(delta));
  return MakeTagged(p, ExtractUb(tagged));
}

// Re-tags a pointer with a new low half, keeping the bound (used for casts
// that round-trip through integers; SS3.2 "Type casts").
constexpr TaggedPtr WithPtr(TaggedPtr tagged, uint32_t p) {
  return MakeTagged(p, ExtractUb(tagged));
}

// The in-bounds predicate from SS3.2 (size-aware UB comparison):
//   violated iff p < LB or p + size > UB
constexpr bool BoundsViolated(uint32_t p, uint32_t lb, uint32_t ub, uint32_t size) {
  return p < lb || static_cast<uint64_t>(p) + size > ub;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SGXBOUNDS_TAGGED_PTR_H_
