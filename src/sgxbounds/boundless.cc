#include "src/sgxbounds/boundless.h"

#include <cstring>

#include "src/common/check.h"

namespace sgxb {

namespace {

// Global-lock acquire/release + hash lookup on the declared slow path.
constexpr uint32_t kSlowPathCycles = 220;

}  // namespace

BoundlessMemory::BoundlessMemory(Enclave* enclave, Heap* overlay_heap, uint32_t capacity_bytes)
    : enclave_(enclave), heap_(overlay_heap), capacity_chunks_(capacity_bytes / kChunkBytes) {
  CHECK_GT(capacity_chunks_, 0u);
}

void BoundlessMemory::ChargeSlowPath(Cpu& cpu) {
  cpu.Charge(kSlowPathCycles);
  cpu.Call();
}

uint32_t BoundlessMemory::LookupOrInsert(Cpu& cpu, uint32_t oob_addr, bool insert) {
  const uint32_t key = KeyFor(oob_addr);
  auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    // Move to MRU.
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return it->second.overlay_base + (oob_addr - key);
  }
  if (!insert) {
    return 0;
  }
  if (chunks_.size() >= capacity_chunks_) {
    if (exhaust_policy_ == OverlayExhaustPolicy::kFailFast) {
      ++stats_.exhaust_trips;
      throw SimTrap(TrapKind::kOutOfMemory, oob_addr, "boundless overlay exhausted");
    }
    const uint32_t victim_key = lru_.back();
    lru_.pop_back();
    auto victim = chunks_.find(victim_key);
    CHECK(victim != chunks_.end());
    heap_->Free(cpu, victim->second.overlay_base);
    chunks_.erase(victim);
    ++stats_.chunk_evictions;
  }
  const uint32_t base = heap_->Alloc(cpu, kChunkBytes, kChunkBytes);
  ++stats_.chunk_allocs;
  lru_.push_front(key);
  chunks_[key] = Chunk{base, lru_.begin()};
  // New chunks read as zeros; Commit() zeroed the pages, but a recycled heap
  // block may hold stale data - clear it host-side and charge the memset.
  std::memset(enclave_->space().HostPtr(base), 0, kChunkBytes);
  cpu.MemAccess(base, kChunkBytes, AccessClass::kMetadataStore);
  return base + (oob_addr - key);
}

uint32_t BoundlessMemory::RedirectStore(Cpu& cpu, uint32_t oob_addr) {
  ChargeSlowPath(cpu);
  ++stats_.redirected_stores;
  return LookupOrInsert(cpu, oob_addr, /*insert=*/true);
}

bool BoundlessMemory::RedirectLoad(Cpu& cpu, uint32_t oob_addr, uint32_t* overlay_addr) {
  ChargeSlowPath(cpu);
  ++stats_.redirected_loads;
  const uint32_t addr = LookupOrInsert(cpu, oob_addr, /*insert=*/false);
  if (addr == 0) {
    ++stats_.zero_fills;
    return false;
  }
  *overlay_addr = addr;
  return true;
}

}  // namespace sgxb
