// Boundless memory blocks (paper SS4.2, after Rinard et al.).
//
// When fail-oblivious mode is on, an out-of-bounds access is redirected into
// an "overlay" area instead of trapping:
//   * stores go to an on-demand 1 KiB overlay chunk keyed by the faulting
//     address, allocated from a dedicated overlay heap,
//   * loads from addresses with no overlay chunk return zeros,
//   * the overlay is a bounded LRU cache (default 1 MiB) so attacks spanning
//     gigabytes (negative-size bugs) cannot exhaust enclave memory.
//
// The paper implements this with uthash + a global lock; here the map is
// host-side runtime state and the lock cost is charged per redirect (it is a
// declared slow path).

#ifndef SGXBOUNDS_SRC_SGXBOUNDS_BOUNDLESS_H_
#define SGXBOUNDS_SRC_SGXBOUNDS_BOUNDLESS_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/runtime/heap.h"

namespace sgxb {

struct BoundlessStats {
  uint64_t redirected_loads = 0;
  uint64_t redirected_stores = 0;
  uint64_t zero_fills = 0;     // loads with no overlay chunk
  uint64_t chunk_allocs = 0;
  uint64_t chunk_evictions = 0;
  uint64_t exhaust_trips = 0;  // fail-fast refusals at full capacity
};

// What happens when the overlay cache is full and a new chunk is needed.
enum class OverlayExhaustPolicy : uint8_t {
  // Recycle the least-recently-used chunk (SS4.2 behaviour): the service
  // keeps running but the oldest redirected data is silently dropped.
  kEvictOldest,
  // Trap with kOutOfMemory instead: degradation is loud, so a recovery layer
  // can contain the request rather than let overlay data rot quietly.
  kFailFast,
};

class BoundlessMemory {
 public:
  static constexpr uint32_t kChunkBytes = 1024;      // SS4.2: 1 KiB chunks
  static constexpr uint32_t kDefaultCapacity = 1024 * 1024;  // SS4.2: 1 MiB cap

  // Overlay chunks are allocated from `overlay_heap` (normally the regular
  // enclave heap; kept explicit so tests can bound it separately).
  BoundlessMemory(Enclave* enclave, Heap* overlay_heap,
                  uint32_t capacity_bytes = kDefaultCapacity);

  // Resolves an out-of-bounds STORE target. Returns the overlay address to
  // write to (always succeeds; evicts LRU chunk if the cache is full).
  uint32_t RedirectStore(Cpu& cpu, uint32_t oob_addr);

  // Resolves an out-of-bounds LOAD. Returns true and sets *overlay_addr when
  // a chunk exists; returns false when the load must be satisfied with zeros.
  bool RedirectLoad(Cpu& cpu, uint32_t oob_addr, uint32_t* overlay_addr);

  const BoundlessStats& stats() const { return stats_; }
  size_t chunk_count() const { return chunks_.size(); }

  void set_exhaust_policy(OverlayExhaustPolicy policy) { exhaust_policy_ = policy; }
  OverlayExhaustPolicy exhaust_policy() const { return exhaust_policy_; }

 private:
  struct Chunk {
    uint32_t overlay_base;
    std::list<uint32_t>::iterator lru_pos;
  };

  uint32_t KeyFor(uint32_t addr) const { return addr & ~(kChunkBytes - 1); }
  uint32_t LookupOrInsert(Cpu& cpu, uint32_t oob_addr, bool insert);
  void ChargeSlowPath(Cpu& cpu);

  Enclave* enclave_;
  Heap* heap_;
  uint32_t capacity_chunks_;
  OverlayExhaustPolicy exhaust_policy_ = OverlayExhaustPolicy::kEvictOldest;
  BoundlessStats stats_;
  std::unordered_map<uint32_t, Chunk> chunks_;  // key -> chunk
  std::list<uint32_t> lru_;                     // front = MRU, holds keys
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SGXBOUNDS_BOUNDLESS_H_
