#include "src/sgxbounds/bounds_runtime.h"

#include <cstring>

#include "src/common/check.h"

namespace sgxb {

SgxBoundsRuntime::SgxBoundsRuntime(Enclave* enclave, Heap* heap, OobPolicy policy,
                                   MetadataRegistry* registry)
    : enclave_(enclave),
      heap_(heap),
      policy_(policy),
      registry_(registry != nullptr ? registry : &default_registry_),
      boundless_(enclave, heap) {}

uint32_t SgxBoundsRuntime::FooterBytes() const { return registry_->FooterBytes(); }

TaggedPtr SgxBoundsRuntime::Malloc(Cpu& cpu, uint32_t size) {
  // void* p = malloc_real(size + footer); return specify_bounds(p, p + size);
  const uint32_t base = heap_->Alloc(cpu, size + FooterBytes());
  return SpecifyBounds(cpu, base, base + size, ObjKind::kHeap);
}

TaggedPtr SgxBoundsRuntime::MallocAligned(Cpu& cpu, uint32_t size, uint32_t align) {
  const uint32_t base = heap_->Alloc(cpu, size + FooterBytes(), align);
  return SpecifyBounds(cpu, base, base + size, ObjKind::kHeap);
}

TaggedPtr SgxBoundsRuntime::Calloc(Cpu& cpu, uint32_t count, uint32_t elem_size) {
  const uint64_t total = static_cast<uint64_t>(count) * elem_size;
  CHECK_LE(total, 0xffffffffu);
  const TaggedPtr tagged = Malloc(cpu, static_cast<uint32_t>(total));
  // Zeroing cost: the heap recycles blocks, so calloc pays a full clear.
  const uint32_t base = ExtractPtr(tagged);
  std::memset(enclave_->space().HostPtr(base), 0, total);
  cpu.MemAccess(base, static_cast<uint32_t>(total), AccessClass::kAppStore);
  return tagged;
}

void SgxBoundsRuntime::Free(Cpu& cpu, TaggedPtr tagged) {
  const uint32_t ub = ExtractUb(tagged);
  CHECK_NE(ub, 0u);
  const uint32_t base = LoadLb(cpu, ub);
  // free(LB) hands the footer-recovered base straight to the allocator; if a
  // bit flip or wild write corrupted the footer, the base no longer names a
  // live block and the allocator's header validation (already charged inside
  // Heap::Free) turns it into a detected trap rather than silent reuse.
  if (base > ub || !heap_->IsBlockStart(base)) {
    ++stats_.violations;
    ++cpu.counters().bounds_violations;
    throw SimTrap(TrapKind::kSgxBoundsViolation, ub, "corrupted LB footer on free");
  }
  registry_->FireDelete(cpu, ub);
  if (track_objects_) {
    auto it = live_ub_index_.find(ub);
    if (it != live_ub_index_.end()) {
      const size_t pos = it->second;
      const uint32_t last = live_ubs_.back();
      live_ubs_[pos] = last;
      live_ub_index_[last] = pos;
      live_ubs_.pop_back();
      live_ub_index_.erase(it);
    }
  }
  heap_->Free(cpu, base);
  ++stats_.objects_freed;
}

TaggedPtr SgxBoundsRuntime::SpecifyBounds(Cpu& cpu, uint32_t p, uint32_t ub, ObjKind kind) {
  // *UB = p (the lower bound); extra slots start zeroed.
  enclave_->Store<uint32_t>(cpu, ub, p, AccessClass::kMetadataStore);
  for (uint32_t i = 0; i < registry_->extra_slots(); ++i) {
    enclave_->Store<uint32_t>(cpu, registry_->SlotAddr(ub, i), 0, AccessClass::kMetadataStore);
  }
  cpu.Alu(2);  // tagged = (UB << 32) | p
  ++stats_.objects_created;
  registry_->FireCreate(cpu, p, ub - p, kind);
  if (track_objects_ && live_ub_index_.emplace(ub, live_ubs_.size()).second) {
    live_ubs_.push_back(ub);
  }
  return MakeTagged(p, ub);
}

ResolvedAccess SgxBoundsRuntime::HandleViolation(Cpu& cpu, uint32_t p, uint32_t size,
                                                 AccessType type) {
  ++stats_.violations;
  ++cpu.counters().bounds_violations;
  if (policy_ == OobPolicy::kFailFast) {
    throw SimTrap(TrapKind::kSgxBoundsViolation, p, "out-of-bounds access");
  }
  // Boundless memory (SS4.2).
  ResolvedAccess r;
  r.redirected = true;
  if (type == AccessType::kRead) {
    uint32_t overlay = 0;
    if (boundless_.RedirectLoad(cpu, p, &overlay)) {
      r.addr = overlay;
    } else {
      r.zero_fill = true;
    }
  } else {
    r.addr = boundless_.RedirectStore(cpu, p);
  }
  (void)size;
  return r;
}

TaggedPtr SgxBoundsRuntime::NarrowBounds(Cpu& cpu, TaggedPtr tagged, uint32_t field_off,
                                         uint32_t field_size) {
  const uint32_t p = ExtractPtr(tagged);
  const uint32_t field_base = p + field_off;
  const uint32_t field_ub = field_base + field_size;
  cpu.Alu(3);  // lea field base, lea field end, repack
  // The narrowed field must itself be inside the object.
  if (ExtractUb(tagged) != 0) {
    const uint32_t lb = LoadLb(cpu, ExtractUb(tagged));
    cpu.Alu(2);
    cpu.Branch();
    if (BoundsViolated(field_base, lb, ExtractUb(tagged), field_size)) {
      ++stats_.violations;
      ++cpu.counters().bounds_violations;
      throw SimTrap(TrapKind::kSgxBoundsViolation, field_base,
                    "narrowed field escapes its object");
    }
  }
  narrowed_ubs_.insert(field_ub);
  return MakeTagged(field_base, field_ub);
}

void SgxBoundsRuntime::CheckRange(Cpu& cpu, TaggedPtr tagged, uint64_t extent_bytes) {
  const uint32_t p = ExtractPtr(tagged);
  const uint32_t ub = ExtractUb(tagged);
  if (ub == 0) {
    return;
  }
  cpu.Alu(2);
  ++stats_.checks;
  ++cpu.counters().bounds_checks;
  const uint32_t lb = LoadLb(cpu, ub);
  cpu.Alu(2);
  cpu.Branch();
  if (p < lb || static_cast<uint64_t>(p) + extent_bytes > ub) {
    ++stats_.violations;
    ++cpu.counters().bounds_violations;
    throw SimTrap(TrapKind::kSgxBoundsViolation, p, "hoisted range check failed");
  }
}

}  // namespace sgxb
