// Metadata management API (paper SS4.3, Table 2).
//
// SGXBounds' object footer generalizes beyond the 4-byte lower bound: the
// runtime can be configured with extra 4-byte metadata slots appended after
// LB, and clients can register hooks fired at the three object lifecycle
// points. The paper's examples - probabilistic double-free detection via a
// magic-number slot, and origin tracking for diagnostics - are implemented on
// this API in examples/metadata_hooks.cpp and tested in
// tests/sgxbounds_metadata_test.cc.
//
// Footer layout for an object [base, base+size):
//   [UB+0,  UB+4)          lower bound (always present)
//   [UB+4,  UB+4+4*i)      extra slot i, i in [0, extra_slots)
// where UB = base + size.

#ifndef SGXBOUNDS_SRC_SGXBOUNDS_METADATA_H_
#define SGXBOUNDS_SRC_SGXBOUNDS_METADATA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/enclave/enclave.h"
#include "src/sgxbounds/tagged_ptr.h"

namespace sgxb {

enum class ObjKind : uint8_t { kGlobal, kStack, kHeap };
enum class AccessType : uint8_t { kRead, kWrite, kReadWrite };

struct MetadataHooks {
  // on_create(objbase, objsize, objtype): after object creation.
  std::function<void(Cpu&, uint32_t base, uint32_t size, ObjKind kind)> on_create;
  // on_access(address, size, metadata, accesstype): before a memory access.
  // `metadata` is the footer address (== UB).
  std::function<void(Cpu&, uint32_t addr, uint32_t size, uint32_t metadata, AccessType type)>
      on_access;
  // on_delete(metadata): before heap-object destruction.
  std::function<void(Cpu&, uint32_t metadata)> on_delete;
};

class MetadataRegistry {
 public:
  // extra_slots: number of 4-byte metadata words after LB.
  explicit MetadataRegistry(uint32_t extra_slots = 0) : extra_slots_(extra_slots) {}

  void Register(MetadataHooks hooks) { hooks_.push_back(std::move(hooks)); }
  void Clear() { hooks_.clear(); }

  uint32_t extra_slots() const { return extra_slots_; }
  // Total footer size in bytes (LB + extra slots).
  uint32_t FooterBytes() const { return 4 + 4 * extra_slots_; }

  // Address of extra slot `i` for an object whose footer starts at `ub`.
  uint32_t SlotAddr(uint32_t ub, uint32_t i) const { return ub + 4 + 4 * i; }

  bool has_hooks() const { return !hooks_.empty(); }

  void FireCreate(Cpu& cpu, uint32_t base, uint32_t size, ObjKind kind) const;
  void FireAccess(Cpu& cpu, uint32_t addr, uint32_t size, uint32_t metadata,
                  AccessType type) const;
  void FireDelete(Cpu& cpu, uint32_t metadata) const;

 private:
  uint32_t extra_slots_;
  std::vector<MetadataHooks> hooks_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SGXBOUNDS_METADATA_H_
