// Per-thread stack allocator: bump allocation with frame push/pop. Used by
// the IR interpreter for allocas and by the RIPE attack scenarios (stack
// smashing needs a real stack layout in the simulated address space).
//
// Stacks grow upward in the simulation (frame N+1 above frame N); a guard
// page above the reservation stops runaway growth. Layout inside a frame is
// caller-controlled, which lets RIPE place a saved-return-address slot next
// to a vulnerable buffer exactly as the attack requires.

#ifndef SGXBOUNDS_SRC_RUNTIME_STACK_H_
#define SGXBOUNDS_SRC_RUNTIME_STACK_H_

#include <cstdint>
#include <vector>

#include "src/enclave/enclave.h"

namespace sgxb {

class StackAllocator {
 public:
  StackAllocator(Enclave* enclave, uint64_t reserve_bytes = 1 * kMiB,
                 const std::string& tag = "stack");

  // Opens a new frame; returns a frame id for PopFrame sanity checking.
  uint32_t PushFrame();
  void PopFrame(uint32_t frame_id);

  // Allocates `size` bytes in the current frame, aligned to `align`.
  uint32_t Alloca(Cpu& cpu, uint32_t size, uint32_t align = 16);

  uint32_t base() const { return base_; }
  uint32_t top() const { return top_; }
  uint32_t depth() const { return static_cast<uint32_t>(frames_.size()); }

 private:
  Enclave* enclave_;
  uint32_t base_;
  uint32_t limit_;
  uint32_t top_;
  std::vector<uint32_t> frames_;  // saved tops
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_RUNTIME_STACK_H_
