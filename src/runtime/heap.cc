#include "src/runtime/heap.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/check.h"

namespace sgxb {

namespace {

// Cycle prices for the allocator fast path (dlmalloc-class costs).
constexpr uint32_t kMallocCycles = 60;
constexpr uint32_t kFreeCycles = 45;

}  // namespace

Heap::Heap(Enclave* enclave, uint64_t reserve_bytes, const std::string& tag)
    : enclave_(enclave), reserve_bytes_(reserve_bytes) {
  base_ = enclave_->pages().ReserveLow(reserve_bytes, tag);
  wilderness_ = base_;
}

uint32_t Heap::Alloc(Cpu& cpu, uint32_t size, uint32_t align) {
  return AllocLocked(cpu, size, align, /*may_throw=*/true);
}

uint32_t Heap::TryAlloc(Cpu& cpu, uint32_t size, uint32_t align) {
  return AllocLocked(cpu, size, align, /*may_throw=*/false);
}

uint32_t Heap::AllocLocked(Cpu& cpu, uint32_t size, uint32_t align, bool may_throw) {
  CHECK_GT(align, 0u);
  CHECK_EQ((align & (align - 1)), 0u);
  if (size == 0) {
    size = 1;
  }
  const uint32_t needed = AlignUp(size, 16);
  cpu.Charge(kMallocCycles);

  // Fault campaigns can force this allocation to fail before any free-list
  // state changes, modelling transient allocator exhaustion.
  if (FaultHooks* faults = enclave_->faults()) {
    if (faults->OnAlloc(cpu)) {
      ++stats_.failed_allocs;
      if (may_throw) {
        throw SimTrap(TrapKind::kOutOfMemory, wilderness_, "injected allocation failure");
      }
      return 0;
    }
  }

  // First fit over the free list. Skip the scan when even the largest free
  // block cannot satisfy the request (slack >= 0, so size < needed never
  // fits) — the common case for fresh allocations — without changing which
  // block a fitting request picks.
  if (max_free_upper_ >= needed) {
    uint32_t scan_max = 0;
    for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
      if (it->second > scan_max) {
        scan_max = it->second;
      }
      const uint32_t addr = AlignUp(it->first, align);
      const uint32_t slack = addr - it->first;
      if (it->second < slack + needed) {
        continue;
      }
      const uint32_t block_base = it->first;
      const uint32_t block_size = it->second;
      FreeListErase(it);
      if (slack >= 16) {
        FreeListInsert(block_base, slack);
      }
      const uint32_t tail = block_size - slack - needed;
      if (tail >= 16) {
        FreeListInsert(addr + needed, tail);
      }
      live_blocks_[addr] = size;
      ++stats_.alloc_calls;
      stats_.live_bytes += size;
      stats_.peak_live_bytes = std::max(stats_.peak_live_bytes, stats_.live_bytes);
      cpu.MemAccess(addr, 8, AccessClass::kMetadataStore);  // header write
      if (TraceRecorder* trace = cpu.trace()) {
        trace->OnAlloc(cpu.trace_id(), addr, size);
      }
      return addr;
    }
    // Full scan without a fit: tighten the watermark to the exact maximum.
    max_free_upper_ = scan_max;
  }

  // Extend into the wilderness.
  const uint32_t addr = AlignUp(wilderness_, align);
  const uint64_t end = static_cast<uint64_t>(addr) + needed;
  if (end > static_cast<uint64_t>(base_) + reserve_bytes_) {
    ++stats_.failed_allocs;
    if (may_throw) {
      throw SimTrap(TrapKind::kOutOfMemory, wilderness_, "enclave heap exhausted");
    }
    return 0;
  }
  if (addr - wilderness_ >= 16) {
    FreeListInsert(wilderness_, addr - wilderness_);
  }
  wilderness_ = static_cast<uint32_t>(end);
  enclave_->pages().Commit(&cpu, addr, needed);
  live_blocks_[addr] = size;
  ++stats_.alloc_calls;
  stats_.live_bytes += size;
  stats_.peak_live_bytes = std::max(stats_.peak_live_bytes, stats_.live_bytes);
  cpu.MemAccess(addr, 8, AccessClass::kMetadataStore);
  if (TraceRecorder* trace = cpu.trace()) {
    trace->OnAlloc(cpu.trace_id(), addr, size);
  }
  return addr;
}

void Heap::Free(Cpu& cpu, uint32_t addr) {
  auto it = live_blocks_.find(addr);
  if (it == live_blocks_.end()) {
    // Freeing a pointer that is not a live block start (double free, or a
    // pointer/footer corrupted by a fault campaign): the allocator's header
    // validation catches it, as glibc's "free(): invalid pointer" abort
    // would. In-simulation that is a guest trap, not a harness failure.
    throw SimTrap(TrapKind::kSegFault, addr, "free of invalid or corrupted pointer");
  }
  const uint32_t size = it->second;
  const uint32_t block = AlignUp(size, 16);
  live_blocks_.erase(it);
  ++stats_.free_calls;
  stats_.live_bytes -= size;
  cpu.Charge(kFreeCycles);
  cpu.MemAccess(addr, 8, AccessClass::kMetadataLoad);  // header read
  if (TraceRecorder* trace = cpu.trace()) {
    trace->OnFree(cpu.trace_id(), addr);
  }

  // Insert and coalesce with neighbours.
  uint32_t start = addr;
  uint32_t extent = block;
  auto next = free_blocks_.lower_bound(addr);
  if (next != free_blocks_.end() && next->first == addr + block) {
    extent += next->second;
    FreeListErase(next);
  }
  auto prev = free_blocks_.lower_bound(addr);
  if (prev != free_blocks_.begin()) {
    --prev;
    if (prev->first + prev->second == addr) {
      start = prev->first;
      extent += prev->second;
      FreeListErase(prev);
    }
  }
  FreeListInsert(start, extent);
}

uint32_t Heap::BlockSize(uint32_t addr) const {
  auto it = live_blocks_.find(addr);
  if (it == live_blocks_.end()) {
    throw SimTrap(TrapKind::kSegFault, addr, "size query on invalid or corrupted pointer");
  }
  return it->second;
}

bool Heap::IsBlockStart(uint32_t addr) const { return live_blocks_.count(addr) != 0; }

namespace {

bool Fail(std::string* error, const char* fmt, uint64_t a, uint64_t b) {
  if (error != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    *error = buf;
  }
  return false;
}

}  // namespace

bool Heap::CheckInvariants(std::string* error) const {
  const uint64_t lo = base_;
  const uint64_t hi = wilderness_;
  uint32_t max_free = 0;
  uint64_t prev_end = lo;
  for (const auto& [addr, size] : free_blocks_) {
    if (size < 16) {
      return Fail(error, "free block at 0x%llx has size %llu < 16", addr, size);
    }
    if (addr < prev_end) {
      return Fail(error, "free block at 0x%llx overlaps previous ending at 0x%llx", addr,
                  prev_end);
    }
    const uint64_t end = static_cast<uint64_t>(addr) + size;
    if (end > hi) {
      return Fail(error, "free block ending at 0x%llx beyond wilderness 0x%llx", end, hi);
    }
    prev_end = end;
    max_free = std::max(max_free, size);
  }
  if (max_free > max_free_upper_) {
    return Fail(error, "free watermark %llu below actual max free size %llu", max_free_upper_,
                max_free);
  }

  // Live blocks, sorted by address, must tile [base, wilderness) with the
  // free blocks without overlap (gaps are fine: sub-16-byte fragments are
  // dropped by design).
  std::vector<std::pair<uint32_t, uint32_t>> live(live_blocks_.begin(), live_blocks_.end());
  std::sort(live.begin(), live.end());
  uint64_t live_bytes = 0;
  auto free_it = free_blocks_.begin();
  prev_end = lo;
  for (const auto& [addr, size] : live) {
    live_bytes += size;
    const uint64_t extent = AlignUp(std::max<uint32_t>(size, 1), 16);
    if (addr < prev_end) {
      return Fail(error, "live block at 0x%llx overlaps previous ending at 0x%llx", addr,
                  prev_end);
    }
    const uint64_t end = addr + extent;
    if (addr < lo || end > hi) {
      return Fail(error, "live block at 0x%llx outside heap span ending 0x%llx", addr, hi);
    }
    prev_end = end;
    while (free_it != free_blocks_.end() &&
           static_cast<uint64_t>(free_it->first) + free_it->second <= addr) {
      ++free_it;
    }
    if (free_it != free_blocks_.end() && free_it->first < end) {
      return Fail(error, "live block at 0x%llx overlaps free block at 0x%llx", addr,
                  free_it->first);
    }
  }
  if (live_bytes != stats_.live_bytes) {
    return Fail(error, "live byte accounting %llu != sum of live blocks %llu", stats_.live_bytes,
                live_bytes);
  }
  return true;
}

bool Heap::IsLive(uint32_t addr) const {
  // Diagnostic-only (tests): a linear scan keeps live_blocks_ hashable.
  for (const auto& [base, size] : live_blocks_) {
    if (addr >= base && addr < base + size) {
      return true;
    }
  }
  return false;
}

}  // namespace sgxb
