// SCONE-style syscall shim.
//
// Under shielded execution the enclave never issues syscalls directly: a
// wrapper copies arguments/buffers between enclave memory and the untrusted
// world (SS2.1). The shim models that boundary:
//   * each call charges the exit/enter cost,
//   * buffer payloads are copied for real between enclave memory and
//     host-side byte vectors (the "untrusted world"), generating genuine
//     enclave-memory traffic that the cache/EPC simulation observes.
//
// The networked case studies (Memcached/Apache/Nginx analogues) move all
// request/response bytes through Send/Recv here, which reproduces the
// double-copy overhead the paper reports for Nginx's 200 KB page.

#ifndef SGXBOUNDS_SRC_RUNTIME_SYSCALL_SHIM_H_
#define SGXBOUNDS_SRC_RUNTIME_SYSCALL_SHIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/enclave/enclave.h"

namespace sgxb {

struct ShimStats {
  uint64_t syscalls = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class SyscallShim {
 public:
  explicit SyscallShim(Enclave* enclave);

  // Copies untrusted bytes into enclave memory at `addr` (a recv/read).
  // Returns bytes copied (min(len, src.size() - offset)).
  uint32_t Recv(Cpu& cpu, uint32_t addr, const std::vector<uint8_t>& src, uint32_t offset,
                uint32_t len);

  // Copies enclave memory out to the untrusted world (a send/write).
  std::vector<uint8_t> Send(Cpu& cpu, uint32_t addr, uint32_t len);

  // A no-payload syscall (e.g. epoll_wait, futex).
  void Plain(Cpu& cpu);

  const ShimStats& stats() const { return stats_; }

 private:
  Enclave* enclave_;
  ShimStats stats_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_RUNTIME_SYSCALL_SHIM_H_
