#include "src/runtime/stack.h"

#include "src/common/check.h"

namespace sgxb {

StackAllocator::StackAllocator(Enclave* enclave, uint64_t reserve_bytes, const std::string& tag)
    : enclave_(enclave) {
  base_ = enclave_->pages().ReserveLow(reserve_bytes + kPageSize, tag);
  limit_ = static_cast<uint32_t>(base_ + reserve_bytes);
  // Guard page at the end of the reservation.
  enclave_->pages().SetGuardPage(PageOf(limit_));
  top_ = base_;
  enclave_->pages().Commit(nullptr, base_, kPageSize);
}

uint32_t StackAllocator::PushFrame() {
  frames_.push_back(top_);
  return static_cast<uint32_t>(frames_.size());
}

void StackAllocator::PopFrame(uint32_t frame_id) {
  CHECK_EQ(frame_id, static_cast<uint32_t>(frames_.size()));
  CHECK(!frames_.empty());
  top_ = frames_.back();
  frames_.pop_back();
}

uint32_t StackAllocator::Alloca(Cpu& cpu, uint32_t size, uint32_t align) {
  CHECK(!frames_.empty());
  const uint32_t addr = AlignUp(top_, align);
  const uint64_t end = static_cast<uint64_t>(addr) + size;
  if (end >= limit_) {
    throw SimTrap(TrapKind::kSegFault, limit_, "stack overflow into guard page");
  }
  top_ = static_cast<uint32_t>(end);
  enclave_->pages().Commit(&cpu, addr, size);
  return addr;
}

}  // namespace sgxb
