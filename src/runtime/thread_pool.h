// Deterministic simulated threading.
//
// The paper's multithreaded experiments (Figs. 7, 9) measure how hardening
// schemes scale with thread count. This pool models a parallel region the way
// an architecture simulator does:
//
//   * each worker gets a fresh Cpu (private L1/L2, zeroed counters) sharing
//     the enclave's LLC + EPC,
//   * worker bodies execute sequentially on the host (fully deterministic,
//     host-core-count independent),
//   * the parallel region's cost charged to the caller is the MAKESPAN:
//     max over workers of their cycle account, plus a per-thread spawn/join
//     cost (the paper's "lightweight wrappers around pthreads").
//
// This is exactly the measurement model the paper uses (wall time of the
// slowest thread), while staying reproducible on a 1-core CI box.

#ifndef SGXBOUNDS_SRC_RUNTIME_THREAD_POOL_H_
#define SGXBOUNDS_SRC_RUNTIME_THREAD_POOL_H_

#include <cstdint>
#include <functional>

#include "src/enclave/enclave.h"

namespace sgxb {

struct ThreadCtx {
  Cpu* cpu;
  uint32_t tid;
  uint32_t nthreads;
};

struct ParallelResult {
  uint64_t makespan_cycles = 0;
  PerfCounters combined;  // sum over workers (for counter-based tables)
};

// Runs `body` for tids 0..nthreads-1 and charges the makespan to `caller`.
ParallelResult RunParallel(Enclave& enclave, Cpu& caller, uint32_t nthreads,
                           const std::function<void(ThreadCtx&)>& body);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_RUNTIME_THREAD_POOL_H_
