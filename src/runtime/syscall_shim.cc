#include "src/runtime/syscall_shim.h"

#include <algorithm>

namespace sgxb {

SyscallShim::SyscallShim(Enclave* enclave) : enclave_(enclave) {}

uint32_t SyscallShim::Recv(Cpu& cpu, uint32_t addr, const std::vector<uint8_t>& src,
                           uint32_t offset, uint32_t len) {
  cpu.Syscall();
  ++stats_.syscalls;
  if (offset >= src.size()) {
    return 0;
  }
  const uint32_t n = std::min<uint32_t>(len, static_cast<uint32_t>(src.size() - offset));
  enclave_->StoreBytes(cpu, addr, src.data() + offset, n);
  stats_.bytes_in += n;
  return n;
}

std::vector<uint8_t> SyscallShim::Send(Cpu& cpu, uint32_t addr, uint32_t len) {
  cpu.Syscall();
  ++stats_.syscalls;
  std::vector<uint8_t> out(len);
  enclave_->LoadBytes(cpu, addr, out.data(), len);
  stats_.bytes_out += len;
  return out;
}

void SyscallShim::Plain(Cpu& cpu) {
  cpu.Syscall();
  ++stats_.syscalls;
}

}  // namespace sgxb
