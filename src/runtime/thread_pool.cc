#include "src/runtime/thread_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace sgxb {

namespace {

// pthread_create + join cost per worker, charged to the spawning thread.
constexpr uint32_t kSpawnCycles = 4500;

}  // namespace

ParallelResult RunParallel(Enclave& enclave, Cpu& caller, uint32_t nthreads,
                           const std::function<void(ThreadCtx&)>& body) {
  CHECK_GT(nthreads, 0u);
  ParallelResult result;
  TraceRecorder* trace = caller.trace();
  if (trace != nullptr) {
    trace->OnParallelBegin(caller.trace_id(), nthreads);
  }
  for (uint32_t tid = 0; tid < nthreads; ++tid) {
    Cpu* cpu = enclave.NewCpu();
    if (trace != nullptr) {
      trace->OnWorkerBegin(cpu->trace_id());
    }
    ThreadCtx ctx{cpu, tid, nthreads};
    body(ctx);
    if (trace != nullptr) {
      trace->OnWorkerEnd(cpu->trace_id());
    }
    result.makespan_cycles = std::max(result.makespan_cycles, cpu->cycles());
    result.combined += cpu->counters();
  }
  const uint64_t spawn_cycles = static_cast<uint64_t>(nthreads) * kSpawnCycles;
  if (trace != nullptr) {
    trace->OnParallelEnd(caller.trace_id(), spawn_cycles);
  }
  // Untraced: the replay engine re-derives the makespan from the replayed
  // workers' cycle totals (which depend on the replay configuration), and
  // the spawn cost rides in the parallel-end event.
  caller.ChargeUntraced(result.makespan_cycles + spawn_cycles);
  return result;
}

}  // namespace sgxb
