#include "src/runtime/thread_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace sgxb {

namespace {

// pthread_create + join cost per worker, charged to the spawning thread.
constexpr uint32_t kSpawnCycles = 4500;

}  // namespace

ParallelResult RunParallel(Enclave& enclave, Cpu& caller, uint32_t nthreads,
                           const std::function<void(ThreadCtx&)>& body) {
  CHECK_GT(nthreads, 0u);
  ParallelResult result;
  for (uint32_t tid = 0; tid < nthreads; ++tid) {
    Cpu* cpu = enclave.NewCpu();
    ThreadCtx ctx{cpu, tid, nthreads};
    body(ctx);
    result.makespan_cycles = std::max(result.makespan_cycles, cpu->cycles());
    result.combined += cpu->counters();
  }
  caller.Charge(result.makespan_cycles + static_cast<uint64_t>(nthreads) * kSpawnCycles);
  return result;
}

}  // namespace sgxb
