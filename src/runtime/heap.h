// Enclave heap allocator (the malloc the shielded libc provides).
//
// First-fit with address-ordered coalescing over a reserved heap region.
// Allocator bookkeeping lives host-side (it is "runtime" code, not app data),
// but its cost is charged: each malloc/free charges fixed cycles plus a
// header-sized metadata access at the block address, and page commits charge
// minor faults - so allocation-churn-heavy workloads (PARSEC swaptions) pay
// realistic costs.
//
// Hardening schemes wrap this allocator: SGXBounds adds 4 footer bytes
// (SS3.2), ASan adds redzones + quarantine, MPX allocates bounds tables on
// the side.

#ifndef SGXBOUNDS_SRC_RUNTIME_HEAP_H_
#define SGXBOUNDS_SRC_RUNTIME_HEAP_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "src/enclave/enclave.h"

namespace sgxb {

struct HeapStats {
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t live_bytes = 0;
  uint64_t peak_live_bytes = 0;
  uint64_t failed_allocs = 0;
};

class Heap {
 public:
  // reserve_bytes: maximum heap size; address space is reserved immediately
  // (counts toward peak virtual memory), pages commit on demand.
  Heap(Enclave* enclave, uint64_t reserve_bytes, const std::string& tag = "heap");

  // Returns the block address (16-byte aligned). Throws SimTrap(kOutOfMemory)
  // when the reservation is exhausted - this is how Intel MPX dies on dedup
  // and how Fig. 1 MPX dies on SQLite.
  uint32_t Alloc(Cpu& cpu, uint32_t size, uint32_t align = 16);

  // Convenience: allocation that returns 0 instead of trapping.
  uint32_t TryAlloc(Cpu& cpu, uint32_t size, uint32_t align = 16);

  void Free(Cpu& cpu, uint32_t addr);

  // Size originally requested for the block at `addr` (must be live).
  uint32_t BlockSize(uint32_t addr) const;

  const HeapStats& stats() const { return stats_; }
  uint32_t base() const { return base_; }
  uint64_t reserve_bytes() const { return reserve_bytes_; }
  // Start of the never-allocated tail; [base, wilderness) is the span the
  // allocator has ever handed out (fault campaigns target wild writes here).
  uint32_t wilderness() const { return wilderness_; }
  uint64_t used_bytes() const { return wilderness_ - base_; }

  // True if `addr` lies inside a live block (diagnostic; used by tests).
  bool IsLive(uint32_t addr) const;

  // True if `addr` is exactly the start of a live block (O(1); lets runtimes
  // validate a base pointer recovered from possibly-corrupted metadata).
  bool IsBlockStart(uint32_t addr) const;

  // Verifies allocator bookkeeping: free-list blocks sorted, non-overlapping
  // and inside [base, wilderness); live blocks disjoint from each other and
  // from every free block; live-byte accounting consistent; the first-fit
  // watermark a true upper bound. O(n log n) diagnostic for tests and fault
  // campaigns; returns false and fills `error` on the first violation.
  bool CheckInvariants(std::string* error) const;

 private:
  struct FreeBlock {
    uint32_t size;
  };

  uint32_t AllocLocked(Cpu& cpu, uint32_t size, uint32_t align, bool may_throw);

  // All free_blocks_ mutations go through these so max_free_upper_ stays an
  // upper bound on the largest free-block size.
  void FreeListInsert(uint32_t addr, uint32_t size) {
    free_blocks_[addr] = size;
    if (size > max_free_upper_) {
      max_free_upper_ = size;
    }
  }
  void FreeListErase(std::map<uint32_t, uint32_t>::iterator it) { free_blocks_.erase(it); }

  Enclave* enclave_;
  uint64_t reserve_bytes_;
  uint32_t base_;
  uint32_t wilderness_;  // start of the never-allocated tail
  HeapStats stats_;
  // Address-ordered free blocks (coalescing needs ordered neighbours); live
  // blocks only ever see exact-key lookups, so they live in a hash map.
  std::map<uint32_t, uint32_t> free_blocks_;            // addr -> size
  std::unordered_map<uint32_t, uint32_t> live_blocks_;  // addr -> requested size
  // Upper bound on the largest free-block size: lets the first-fit scan be
  // skipped outright when no block can be large enough (the common case for
  // fresh allocations), without changing which block a fitting request picks.
  // Grows on insert; tightened to the exact maximum whenever a full scan
  // completes without a fit.
  uint32_t max_free_upper_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_RUNTIME_HEAP_H_
