#include "src/ripe/ripe.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/units.h"

namespace sgxb {

const std::vector<AttackScenario>& RipeScenarios() {
  static const std::vector<AttackScenario>* scenarios = [] {
    auto* v = new std::vector<AttackScenario>{
        // --- 8 inter-object attacks -------------------------------------------
        // The two direct stack smashes MPX catches (Table 4).
        {"stack-direct-funcptr", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, false},
        {"stack-direct-longjmp", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kLongjmpBuf, false},
        // Six libc-mediated attacks: ASan/SGXBounds interpose libc; MPX loses
        // bounds across the uninstrumented call and misses them.
        {"stack-memcpy-funcptr", AttackLocation::kStack, AttackTechnique::kLibcMemcpy,
         AttackTarget::kFuncPtr, false},
        {"heap-memcpy-funcptr", AttackLocation::kHeap, AttackTechnique::kLibcMemcpy,
         AttackTarget::kFuncPtr, false},
        {"heap-strcpy-data", AttackLocation::kHeap, AttackTechnique::kLibcStrcpy,
         AttackTarget::kPlainData, false},
        {"bss-memcpy-funcptr", AttackLocation::kBss, AttackTechnique::kLibcMemcpy,
         AttackTarget::kFuncPtr, false},
        {"data-strcpy-funcptr", AttackLocation::kData, AttackTechnique::kLibcStrcpy,
         AttackTarget::kFuncPtr, false},
        {"heap-memcpy-longjmp", AttackLocation::kHeap, AttackTechnique::kLibcMemcpy,
         AttackTarget::kLongjmpBuf, false},
        // --- 8 intra-object attacks (missed by all three defenses) ------------
        {"stack-intra-funcptr", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"stack-intra-data", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kPlainData, true},
        {"heap-intra-funcptr", AttackLocation::kHeap, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"heap-intra-data", AttackLocation::kHeap, AttackTechnique::kDirectLoop,
         AttackTarget::kPlainData, true},
        {"bss-intra-funcptr", AttackLocation::kBss, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"bss-intra-longjmp", AttackLocation::kBss, AttackTechnique::kDirectLoop,
         AttackTarget::kLongjmpBuf, true},
        {"data-intra-funcptr", AttackLocation::kData, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"data-intra-data", AttackLocation::kData, AttackTechnique::kDirectLoop,
         AttackTarget::kPlainData, true},
    };
    return v;
  }();
  return *scenarios;
}

namespace {

constexpr uint32_t kBufBytes = 64;
constexpr uint64_t kAttackerValue = 0x41414141deadc0deULL;  // "hijacked" marker

// A per-run environment: the machine plus the scheme's defense, looked up
// through the registry. Carving layout (stack/bss/data adjacency) is driven
// by the defense's CarveAlign/CarveFootprint hooks.
struct AttackContext {
  explicit AttackContext(PolicyKind kind) {
    EnclaveConfig cfg;
    cfg.space_bytes = 512 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 128 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 1 * kMiB);
    stack->PushFrame();  // the vulnerable function's frame
    // The bss/data segments of the "program".
    machine.enclave = enclave.get();
    machine.heap = heap.get();
    machine.stack = stack.get();
    machine.bss_base = enclave->pages().ReserveLow(64 * kPageSize, "bss");
    enclave->pages().Commit(nullptr, machine.bss_base, 64 * kPageSize);
    machine.data_base = enclave->pages().ReserveLow(64 * kPageSize, "data");
    enclave->pages().Commit(nullptr, machine.data_base, 64 * kPageSize);
    const SchemeDescriptor& scheme = SchemeOf(kind);
    CHECK(scheme.make_ripe_defense != nullptr);
    defense = scheme.make_ripe_defense(machine);
  }

  Cpu& cpu() { return enclave->main_cpu(); }

  // Allocates an object at `location` and registers it with the defense.
  // For kStack/kBss/kData, consecutive calls yield adjacent objects (the
  // attack layouts rely on that, like RIPE's real frames/segments do).
  RipeObj Allocate(AttackLocation location, uint32_t size) {
    RipeObj obj;
    obj.size = size;
    switch (location) {
      case AttackLocation::kHeap:
        return defense->AllocateHeap(cpu(), size);
      case AttackLocation::kStack:
        obj.addr = stack->Alloca(cpu(), defense->CarveFootprint(size),
                                 defense->CarveAlign());
        break;
      case AttackLocation::kBss:
        obj.addr = SegmentCarve(&bss_cursor, machine.bss_base, size);
        break;
      case AttackLocation::kData:
        obj.addr = SegmentCarve(&data_cursor, machine.data_base, size);
        break;
    }
    defense->RegisterNonHeap(cpu(), obj);
    return obj;
  }

  uint32_t SegmentCarve(uint32_t* cursor, uint32_t base, uint32_t size) {
    const uint32_t addr = AlignUp(base + *cursor, defense->CarveAlign());
    *cursor = addr - base + defense->CarveFootprint(size);
    return addr;
  }

  RipeMachine machine;
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<RipeDefense> defense;
  uint32_t bss_cursor = 0;
  uint32_t data_cursor = 0;
};

}  // namespace

AttackOutcome RunAttack(const AttackScenario& scenario, PolicyKind kind,
                        bool narrow_bounds) {
  AttackOutcome outcome;
  AttackContext ctx(kind);

  try {
    RipeObj buf;
    uint32_t target_addr;  // where the victim slot lives

    if (scenario.intra_object) {
      // One struct: { char buf[64]; uint64 victim; } - a single allocation.
      buf = ctx.Allocate(scenario.location, kBufBytes + 8);
      target_addr = buf.addr + kBufBytes;
      if (narrow_bounds && ctx.defense->NarrowTo(ctx.cpu(), buf, 0, kBufBytes)) {
        // SS8 extension: &obj.buf is narrowed to the 64-byte field.
        buf.size = kBufBytes;
      }
      // The attacker overflows the *inner* buffer, staying inside the object.
    } else {
      // Two adjacent objects: the vulnerable buffer, then the victim.
      buf = ctx.Allocate(scenario.location, kBufBytes);
      const RipeObj victim = ctx.Allocate(scenario.location, 8);
      target_addr = victim.addr;
    }

    // Stamp the victim with a benign value.
    ctx.enclave->Poke<uint64_t>(target_addr, 0x600d600d600d600dULL);

    const uint32_t overflow_len = target_addr + 8 - buf.addr;
    CHECK_GT(overflow_len, kBufBytes);

    switch (scenario.technique) {
      case AttackTechnique::kDirectLoop: {
        // for (i = 0; i < overflow_len; i++) buf[i] = payload[i];
        for (uint32_t i = 0; i < overflow_len; ++i) {
          const uint8_t byte =
              reinterpret_cast<const uint8_t*>(&kAttackerValue)[(i - (overflow_len - 8)) % 8];
          ctx.defense->StoreByte(ctx.cpu(), buf, i, i < overflow_len - 8 ? 0x41 : byte);
        }
        break;
      }
      case AttackTechnique::kLibcMemcpy:
      case AttackTechnique::kLibcStrcpy: {
        std::vector<uint8_t> payload(overflow_len, 0x41);
        std::memcpy(payload.data() + overflow_len - 8, &kAttackerValue, 8);
        if (scenario.technique == AttackTechnique::kLibcStrcpy) {
          // strcpy semantics: no NUL until past the victim.
          for (auto& b : payload) {
            if (b == 0) {
              b = 0x42;
            }
          }
        }
        if (!ctx.defense->LibcCopyInto(ctx.cpu(), buf, payload.data(), overflow_len)) {
          outcome.prevented = true;
          outcome.detail = "libc wrapper returned EINVAL";
          return outcome;
        }
        break;
      }
    }

    // Did the attacker take the target? (Simulates dereferencing the
    // function pointer / longjmp-ing / using the data.)
    const uint64_t victim_value = ctx.enclave->Peek<uint64_t>(target_addr);
    if (victim_value == kAttackerValue) {
      outcome.succeeded = true;
      outcome.detail = "target overwritten; control-flow hijack possible";
    } else {
      outcome.detail = "attack ran but target survived";
    }
  } catch (const SimTrap& trap) {
    outcome.prevented = true;
    outcome.detail = trap.what();
  }
  return outcome;
}

RipeSummary RunRipeSuite(PolicyKind kind, std::vector<AttackOutcome>* outcomes,
                         bool narrow_bounds) {
  RipeSummary summary;
  for (const auto& scenario : RipeScenarios()) {
    const AttackOutcome outcome = RunAttack(scenario, kind, narrow_bounds);
    summary.total += 1;
    summary.prevented += outcome.prevented ? 1 : 0;
    summary.succeeded += outcome.succeeded ? 1 : 0;
    if (outcomes != nullptr) {
      outcomes->push_back(outcome);
    }
  }
  return summary;
}

}  // namespace sgxb
