#include "src/ripe/ripe.h"

#include <cstring>

#include "src/common/check.h"

namespace sgxb {

const char* DefenseName(Defense defense) {
  switch (defense) {
    case Defense::kNone:
      return "native";
    case Defense::kMpx:
      return "MPX";
    case Defense::kAsan:
      return "ASan";
    case Defense::kSgxBounds:
      return "SGXBounds";
  }
  return "?";
}

const std::vector<AttackScenario>& RipeScenarios() {
  static const std::vector<AttackScenario>* scenarios = [] {
    auto* v = new std::vector<AttackScenario>{
        // --- 8 inter-object attacks -------------------------------------------
        // The two direct stack smashes MPX catches (Table 4).
        {"stack-direct-funcptr", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, false},
        {"stack-direct-longjmp", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kLongjmpBuf, false},
        // Six libc-mediated attacks: ASan/SGXBounds interpose libc; MPX loses
        // bounds across the uninstrumented call and misses them.
        {"stack-memcpy-funcptr", AttackLocation::kStack, AttackTechnique::kLibcMemcpy,
         AttackTarget::kFuncPtr, false},
        {"heap-memcpy-funcptr", AttackLocation::kHeap, AttackTechnique::kLibcMemcpy,
         AttackTarget::kFuncPtr, false},
        {"heap-strcpy-data", AttackLocation::kHeap, AttackTechnique::kLibcStrcpy,
         AttackTarget::kPlainData, false},
        {"bss-memcpy-funcptr", AttackLocation::kBss, AttackTechnique::kLibcMemcpy,
         AttackTarget::kFuncPtr, false},
        {"data-strcpy-funcptr", AttackLocation::kData, AttackTechnique::kLibcStrcpy,
         AttackTarget::kFuncPtr, false},
        {"heap-memcpy-longjmp", AttackLocation::kHeap, AttackTechnique::kLibcMemcpy,
         AttackTarget::kLongjmpBuf, false},
        // --- 8 intra-object attacks (missed by all three defenses) ------------
        {"stack-intra-funcptr", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"stack-intra-data", AttackLocation::kStack, AttackTechnique::kDirectLoop,
         AttackTarget::kPlainData, true},
        {"heap-intra-funcptr", AttackLocation::kHeap, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"heap-intra-data", AttackLocation::kHeap, AttackTechnique::kDirectLoop,
         AttackTarget::kPlainData, true},
        {"bss-intra-funcptr", AttackLocation::kBss, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"bss-intra-longjmp", AttackLocation::kBss, AttackTechnique::kDirectLoop,
         AttackTarget::kLongjmpBuf, true},
        {"data-intra-funcptr", AttackLocation::kData, AttackTechnique::kDirectLoop,
         AttackTarget::kFuncPtr, true},
        {"data-intra-data", AttackLocation::kData, AttackTechnique::kDirectLoop,
         AttackTarget::kPlainData, true},
    };
    return v;
  }();
  return *scenarios;
}

namespace {

constexpr uint32_t kBufBytes = 64;
constexpr uint64_t kAttackerValue = 0x41414141deadc0deULL;  // "hijacked" marker

// A per-run environment with all defenses' runtimes constructed on demand.
struct DefenseContext {
  explicit DefenseContext(Defense defense_in) : defense(defense_in) {
    EnclaveConfig cfg;
    cfg.space_bytes = 512 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 128 * kMiB);
    stack = std::make_unique<StackAllocator>(enclave.get(), 1 * kMiB);
    stack->PushFrame();  // the vulnerable function's frame
    // The bss/data segments of the "program".
    bss_base = enclave->pages().ReserveLow(64 * kPageSize, "bss");
    enclave->pages().Commit(nullptr, bss_base, 64 * kPageSize);
    data_base = enclave->pages().ReserveLow(64 * kPageSize, "data");
    enclave->pages().Commit(nullptr, data_base, 64 * kPageSize);
    switch (defense) {
      case Defense::kSgxBounds:
        sgx = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
        libc = std::make_unique<FortifiedLibc>(sgx.get());
        break;
      case Defense::kAsan:
        asan = std::make_unique<AsanRuntime>(enclave.get(), heap.get());
        break;
      case Defense::kMpx:
        mpx = std::make_unique<MpxRuntime>(enclave.get());
        break;
      case Defense::kNone:
        break;
    }
  }

  Cpu& cpu() { return enclave->main_cpu(); }

  // An allocated object with the defense-specific handle attached.
  struct Obj {
    uint32_t addr = 0;
    uint32_t size = 0;
    TaggedPtr tagged = 0;  // SGXBounds handle
    MpxBounds bounds;      // MPX register-held bounds
  };

  // Allocates an object at `location` and registers it with the defense.
  // For kStack/kBss/kData, consecutive calls yield adjacent objects (the
  // attack layouts rely on that, like RIPE's real frames/segments do).
  Obj Allocate(AttackLocation location, uint32_t size) {
    Obj obj;
    obj.size = size;
    switch (location) {
      case AttackLocation::kHeap:
        if (sgx != nullptr) {
          obj.tagged = sgx->Malloc(cpu(), size);
          obj.addr = ExtractPtr(obj.tagged);
          return obj;
        }
        if (asan != nullptr) {
          obj.addr = asan->Malloc(cpu(), size);
          return obj;
        }
        obj.addr = heap->Alloc(cpu(), size);
        break;
      case AttackLocation::kStack:
        // ASan's stack instrumentation separates locals with redzones; the
        // extra 32 bytes reproduce that gap (poisoned by RegisterNonHeap).
        obj.addr = stack->Alloca(cpu(), size + FooterPad() + (asan != nullptr ? 32 : 0), 16);
        break;
      case AttackLocation::kBss:
        obj.addr = SegmentCarve(&bss_cursor, bss_base, size);
        break;
      case AttackLocation::kData:
        obj.addr = SegmentCarve(&data_cursor, data_base, size);
        break;
    }
    RegisterNonHeap(obj, size);
    return obj;
  }

  uint32_t FooterPad() const { return sgx != nullptr ? sgx->FooterBytes() : 0; }

  uint32_t SegmentCarve(uint32_t* cursor, uint32_t base, uint32_t size) {
    const uint32_t addr = AlignUp(base + *cursor, 16);
    *cursor = addr - base + size + FooterPad() + (asan != nullptr ? 32 : 0);
    return addr;
  }

  void RegisterNonHeap(Obj& obj, uint32_t size) {
    if (sgx != nullptr) {
      obj.tagged = sgx->SpecifyBounds(cpu(), obj.addr, obj.addr + size, ObjKind::kGlobal);
    } else if (asan != nullptr) {
      asan->RegisterObject(cpu(), obj.addr, size, AsanRuntime::kShadowGlobalRedzone);
    } else if (mpx != nullptr) {
      obj.bounds = mpx->BndMk(cpu(), obj.addr, size);
    }
  }

  // One instrumented byte store through the defense at obj+offset.
  // Returns false (prevention) instead of throwing so callers can classify.
  bool StoreByte(const Obj& obj, uint32_t offset, uint8_t value) {
    Cpu& c = cpu();
    if (sgx != nullptr) {
      const ResolvedAccess r =
          sgx->CheckAccessAuto(c, TaggedAdd(obj.tagged, offset), 1, AccessType::kWrite);
      (void)r;
      enclave->Store<uint8_t>(c, obj.addr + offset, value);
      return true;
    }
    if (asan != nullptr) {
      asan->CheckAccess(c, obj.addr + offset, 1, /*is_write=*/true);
      enclave->Store<uint8_t>(c, obj.addr + offset, value);
      return true;
    }
    if (mpx != nullptr) {
      mpx->BndCheck(c, obj.bounds, obj.addr + offset, 1);
      enclave->Store<uint8_t>(c, obj.addr + offset, value);
      return true;
    }
    enclave->Store<uint8_t>(c, obj.addr + offset, value);
    return true;
  }

  // A libc-mediated copy of `n` attacker bytes into obj (memcpy/strcpy-like).
  // Models each defense's real libc story:
  //   SGXBounds: fortified wrapper -> EINVAL, copy refused (SS5.1);
  //   ASan: interceptor checks the range -> report;
  //   MPX: libc is NOT instrumented -> the copy just happens;
  //   native: the copy just happens.
  bool LibcCopyInto(const Obj& obj, const uint8_t* payload, uint32_t n) {
    Cpu& c = cpu();
    if (sgx != nullptr) {
      // Stage the payload in an untagged scratch area (the attacker's
      // request buffer), then call the wrapper.
      const uint32_t scratch = heap->Alloc(c, n);
      std::memcpy(enclave->space().HostPtr(scratch), payload, n);
      const TaggedPtr src = MakeTagged(scratch, 0);
      const LibcError err = libc->Memcpy(c, obj.tagged, src, n);
      heap->Free(c, scratch);
      return err == LibcError::kOk;
    }
    if (asan != nullptr) {
      asan->CheckAccess(c, obj.addr, n, /*is_write=*/true);  // throws on overflow
      c.MemAccess(obj.addr, n, AccessClass::kAppStore);
      std::memcpy(enclave->space().HostPtr(obj.addr), payload, n);
      return true;
    }
    // MPX and native: uninstrumented libc copies blindly.
    c.MemAccess(obj.addr, n, AccessClass::kAppStore);
    std::memcpy(enclave->space().HostPtr(obj.addr), payload, n);
    return true;
  }

  Defense defense;
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<StackAllocator> stack;
  std::unique_ptr<SgxBoundsRuntime> sgx;
  std::unique_ptr<FortifiedLibc> libc;
  std::unique_ptr<AsanRuntime> asan;
  std::unique_ptr<MpxRuntime> mpx;
  uint32_t bss_base = 0;
  uint32_t data_base = 0;
  uint32_t bss_cursor = 0;
  uint32_t data_cursor = 0;
};

}  // namespace

AttackOutcome RunAttack(const AttackScenario& scenario, Defense defense,
                        bool narrow_bounds) {
  AttackOutcome outcome;
  DefenseContext ctx(defense);

  try {
    DefenseContext::Obj buf;
    uint32_t target_addr;  // where the victim slot lives

    if (scenario.intra_object) {
      // One struct: { char buf[64]; uint64 victim; } - a single allocation.
      buf = ctx.Allocate(scenario.location, kBufBytes + 8);
      target_addr = buf.addr + kBufBytes;
      if (narrow_bounds && ctx.sgx != nullptr) {
        // SS8 extension: &obj.buf is narrowed to the 64-byte field.
        buf.tagged = ctx.sgx->NarrowBounds(ctx.cpu(), buf.tagged, 0, kBufBytes);
        buf.size = kBufBytes;
      }
      // The attacker overflows the *inner* buffer, staying inside the object.
    } else {
      // Two adjacent objects: the vulnerable buffer, then the victim.
      buf = ctx.Allocate(scenario.location, kBufBytes);
      const DefenseContext::Obj victim = ctx.Allocate(scenario.location, 8);
      target_addr = victim.addr;
    }

    // Stamp the victim with a benign value.
    ctx.enclave->Poke<uint64_t>(target_addr, 0x600d600d600d600dULL);

    const uint32_t overflow_len = target_addr + 8 - buf.addr;
    CHECK_GT(overflow_len, kBufBytes);

    switch (scenario.technique) {
      case AttackTechnique::kDirectLoop: {
        // for (i = 0; i < overflow_len; i++) buf[i] = payload[i];
        for (uint32_t i = 0; i < overflow_len; ++i) {
          const uint8_t byte =
              reinterpret_cast<const uint8_t*>(&kAttackerValue)[(i - (overflow_len - 8)) % 8];
          ctx.StoreByte(buf, i, i < overflow_len - 8 ? 0x41 : byte);
        }
        break;
      }
      case AttackTechnique::kLibcMemcpy:
      case AttackTechnique::kLibcStrcpy: {
        std::vector<uint8_t> payload(overflow_len, 0x41);
        std::memcpy(payload.data() + overflow_len - 8, &kAttackerValue, 8);
        if (scenario.technique == AttackTechnique::kLibcStrcpy) {
          // strcpy semantics: no NUL until past the victim.
          for (auto& b : payload) {
            if (b == 0) {
              b = 0x42;
            }
          }
        }
        if (!ctx.LibcCopyInto(buf, payload.data(), overflow_len)) {
          outcome.prevented = true;
          outcome.detail = "libc wrapper returned EINVAL";
          return outcome;
        }
        break;
      }
    }

    // Did the attacker take the target? (Simulates dereferencing the
    // function pointer / longjmp-ing / using the data.)
    const uint64_t victim_value = ctx.enclave->Peek<uint64_t>(target_addr);
    if (victim_value == kAttackerValue) {
      outcome.succeeded = true;
      outcome.detail = "target overwritten; control-flow hijack possible";
    } else {
      outcome.detail = "attack ran but target survived";
    }
  } catch (const SimTrap& trap) {
    outcome.prevented = true;
    outcome.detail = trap.what();
  }
  return outcome;
}

RipeSummary RunRipeSuite(Defense defense, std::vector<AttackOutcome>* outcomes,
                         bool narrow_bounds) {
  RipeSummary summary;
  for (const auto& scenario : RipeScenarios()) {
    const AttackOutcome outcome = RunAttack(scenario, defense, narrow_bounds);
    summary.total += 1;
    summary.prevented += outcome.prevented ? 1 : 0;
    summary.succeeded += outcome.succeeded ? 1 : 0;
    if (outcomes != nullptr) {
      outcomes->push_back(outcome);
    }
  }
  return summary;
}

}  // namespace sgxb
