// RIPE-style runtime intrusion prevention evaluator (paper SS6.6, Table 4).
//
// The paper runs the RIPE buffer-overflow suite inside SCONE enclaves: of
// RIPE's attack matrix, 16 attacks survive in the SGX environment (shellcode
// variants die because SGX forbids the `int` instruction). Against those 16:
//
//     Intel MPX          2/16  (only the two direct stack smashes onto an
//                               adjacent function pointer; everything driven
//                               through uninstrumented libc loses its bounds)
//     AddressSanitizer   8/16  (all inter-object attacks; misses all 8
//                               intra-object overflows)
//     SGXBounds          8/16  (same 8: object-granularity bounds)
//
// This module reproduces that matrix with 16 scenarios spanning
//   location   x  {stack, heap, bss, data}
//   technique  x  {direct store loop, libc-mediated copy}
//   target     x  {function pointer, longjmp buffer, plain data}
//   containment:  inter-object vs intra-object (buffer and target in one
//                 struct - undetectable at object granularity)
//
// Each scenario is executed under each defense; the outcome is "prevented"
// (trap or wrapper EINVAL before the target is corrupted), "succeeded"
// (simulated control-flow target or secret overwritten), or "failed".

#ifndef SGXBOUNDS_SRC_RIPE_RIPE_H_
#define SGXBOUNDS_SRC_RIPE_RIPE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/policy/registry.h"
#include "src/ripe/defense.h"

namespace sgxb {

enum class AttackLocation : uint8_t { kStack, kHeap, kBss, kData };
enum class AttackTechnique : uint8_t { kDirectLoop, kLibcMemcpy, kLibcStrcpy };
enum class AttackTarget : uint8_t { kFuncPtr, kLongjmpBuf, kPlainData };

struct AttackScenario {
  std::string name;
  AttackLocation location;
  AttackTechnique technique;
  AttackTarget target;
  bool intra_object;  // buffer and target inside one allocation
};

// The 16 surviving attacks (8 inter-object, 8 intra-object).
const std::vector<AttackScenario>& RipeScenarios();

struct AttackOutcome {
  bool prevented = false;  // defense stopped it (trap or EINVAL)
  bool succeeded = false;  // target value was overwritten by attacker data
  std::string detail;
};

// Runs one scenario under one scheme's defense (looked up in the registry:
// SchemeOf(kind).make_ripe_defense) on a fresh simulated enclave.
// `narrow_bounds` enables the SS8 extension for schemes that support it:
// pointers into struct fields are narrowed to the field (RipeDefense::
// NarrowTo), which catches the intra-object overflows Table 4's defenses
// all miss; schemes without narrowing ignore the flag.
AttackOutcome RunAttack(const AttackScenario& scenario, PolicyKind kind,
                        bool narrow_bounds = false);

struct RipeSummary {
  int prevented = 0;
  int succeeded = 0;
  int total = 0;
};

// Runs the full matrix for a scheme.
RipeSummary RunRipeSuite(PolicyKind kind, std::vector<AttackOutcome>* outcomes = nullptr,
                         bool narrow_bounds = false);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_RIPE_RIPE_H_
