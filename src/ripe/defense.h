// The per-scheme surface of the RIPE evaluator (paper SS6.6, Table 4).
//
// ripe.cc owns the attack matrix and the machine (enclave, heap, stack, the
// fake bss/data segments); how a memory-safety scheme participates in an
// attack is captured by this interface and implemented next to each scheme
// in src/policy/<scheme>/scheme.cc, reachable through the registry's
// make_ripe_defense factory. Header-only so the policy library can implement
// defenses without linking against the ripe library (which links policy).

#ifndef SGXBOUNDS_SRC_RIPE_DEFENSE_H_
#define SGXBOUNDS_SRC_RIPE_DEFENSE_H_

#include <cstdint>

#include "src/enclave/enclave.h"
#include "src/runtime/heap.h"
#include "src/runtime/stack.h"

namespace sgxb {

// The simulated process RIPE attacks run in: 512 MiB enclave, 128 MiB heap,
// 1 MiB stack (one pushed frame), and two 64-page segments standing in for
// the program's bss and data. Owned by ripe.cc; defenses hold the pointers.
struct RipeMachine {
  Enclave* enclave = nullptr;
  Heap* heap = nullptr;
  StackAllocator* stack = nullptr;
  uint32_t bss_base = 0;
  uint32_t data_base = 0;
};

// An allocated object with the scheme-specific handle attached. `handle` is
// opaque to ripe.cc: a tagged pointer for SGXBounds/l4ptr, packed
// (ub<<32)|lb register bounds for MPX, unused for ASan/native.
struct RipeObj {
  uint32_t addr = 0;
  uint32_t size = 0;
  uint64_t handle = 0;
};

class RipeDefense {
 public:
  virtual ~RipeDefense() = default;

  // Heap allocation through the scheme's allocator (metadata attached).
  virtual RipeObj AllocateHeap(Cpu& cpu, uint32_t size) = 0;

  // Attaches scheme metadata to a stack/bss/data object carved by ripe.cc.
  virtual void RegisterNonHeap(Cpu& cpu, RipeObj& obj) = 0;

  // Layout of carved (stack/bss/data) objects: alignment of each object's
  // base, and the total bytes one object consumes in the segment - size plus
  // whatever the scheme's instrumentation adds (SGXBounds footer, ASan
  // redzone gap, l4ptr power-of-two padding).
  virtual uint32_t CarveAlign() const { return 16; }
  virtual uint32_t CarveFootprint(uint32_t size) const { return size; }

  // One instrumented byte store at obj+offset, as the compiler would emit
  // it. Returns false (prevention) instead of storing; may throw SimTrap.
  virtual bool StoreByte(Cpu& cpu, const RipeObj& obj, uint32_t offset, uint8_t value) = 0;

  // A libc-mediated copy of n attacker bytes into obj (memcpy/strcpy-like),
  // modelling the scheme's real libc story (fortified wrapper, interceptor,
  // or uninstrumented copy). Returns false when the wrapper refused.
  virtual bool LibcCopyInto(Cpu& cpu, const RipeObj& obj, const uint8_t* payload,
                            uint32_t n) = 0;

  // SS8 extension point: narrow obj's metadata to the field [offset,
  // offset+len). Returns false when the scheme has no narrowing support
  // (the default), leaving the object untouched.
  virtual bool NarrowTo(Cpu& cpu, RipeObj& obj, uint32_t offset, uint32_t len) {
    (void)cpu;
    (void)obj;
    (void)offset;
    (void)len;
    return false;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_RIPE_DEFENSE_H_
