// Nginx analogue (paper SS7, Fig. 13c): a single-threaded event-loop server
// with careful buffer management (few copies), serving a 200 KB static page.
//
// Reproduced behaviours:
//   * the 200 KB page is copied twice on the way out (response buffer, then
//     the SCONE syscall thread) - the 5-20% native-vs-SGX gap the paper
//     attributes to this double copy;
//   * frugal memory: ~1 MB total state (paper table: 0.9 MB), so the ASan
//     shadow reservation dwarfs it (893 MB in the paper's table);
//   * CVE-2013-2028 analogue: the chunked-transfer size is parsed into a
//     signed integer; a negative value becomes a huge memcpy length into a
//     4 KB stack buffer (the ROP-precursor stack smash).

#ifndef SGXBOUNDS_SRC_APPS_NGINX_APP_H_
#define SGXBOUNDS_SRC_APPS_NGINX_APP_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/policy/run.h"
#include "src/runtime/syscall_shim.h"

namespace sgxb {

template <typename P>
class NginxApp {
 public:
  using Ptr = typename P::Ptr;

  static constexpr uint32_t kPageBytes = 200 * 1024;
  static constexpr uint32_t kChunkBufBytes = 4096;  // the vulnerable buffer

  NginxApp(P* policy, Cpu* cpu, SyscallShim* shim)
      : policy_(policy), cpu_(cpu), shim_(shim) {
    page_ = policy_->Malloc(*cpu_, kPageBytes);
    for (uint32_t off = 0; off + 8 <= kPageBytes; off += kCacheLineSize) {
      policy_->template StoreField<uint64_t>(*cpu_, page_, off, 0x3c68746d6c3e0a0aULL);
    }
    rx_ = policy_->Malloc(*cpu_, 8 * 1024);
    tx_ = policy_->Malloc(*cpu_, kPageBytes + 512);
    chunk_buf_ = policy_->Malloc(*cpu_, kChunkBufBytes);
    // State the CVE attack wants to reach: a "stack" object adjacent to the
    // chunk buffer holding the saved return address analogue.
    saved_ret_ = policy_->Malloc(*cpu_, 8);
    policy_->template StoreField<uint64_t>(*cpu_, saved_ret_, 0, 0x600df00d600df00dULL);
  }

  // Serves one GET: parse, build the response in tx_ (copy #1), hand it to
  // the syscall thread (copy #2, via the shim).
  void ServeGet(const std::string& request) {
    const std::vector<uint8_t> wire(request.begin(), request.end());
    shim_->Recv(*cpu_, policy_->AddrOf(rx_), wire, 0, 8 * 1024);
    cpu_->Alu(static_cast<uint32_t>(8 + request.size()));
    cpu_->MemAccess(policy_->AddrOf(rx_),
                    std::min<uint32_t>(static_cast<uint32_t>(request.size()), 128),
                    AccessClass::kAppLoad);
    // Copy #1: page -> response buffer (nginx writes headers + body chain).
    policy_->Memcpy(*cpu_, tx_, page_, kPageBytes);
    // Copy #2: response buffer -> untrusted socket via the syscall thread.
    shim_->Send(*cpu_, policy_->AddrOf(tx_), kPageBytes);
    ++requests_served_;
  }

  // --- CVE-2013-2028 analogue -------------------------------------------------
  // ngx_http_parse_chunked stores the chunk size in a signed off_t; a huge
  // hex value goes negative, the discard path then uses it as a size_t and
  // overreads/overwrites the 4 KB buffer. `*survived` reports whether the
  // event loop can continue (boundless memory) or the worker died.
  // Returns true if the saved-return-address analogue was corrupted.
  bool ChunkedRequest(const std::string& size_hex, bool* survived, std::string* detail) {
    *survived = true;
    long long parsed = 0;
    std::sscanf(size_hex.c_str(), "%llx", reinterpret_cast<unsigned long long*>(&parsed));
    // The bug: signed overflow check missing; negative size becomes huge.
    const int64_t signed_size = static_cast<int64_t>(parsed);
    uint64_t copy_len = static_cast<uint64_t>(signed_size);
    if (signed_size >= 0 && signed_size <= kChunkBufBytes) {
      // Benign chunk.
      for (uint32_t i = 0; i < signed_size; ++i) {
        policy_->template Store<uint8_t>(*cpu_, policy_->Offset(*cpu_, chunk_buf_, i), 'c');
      }
      *detail = "chunk accepted";
      return false;
    }
    // Overflow path: the worker copies attacker bytes past the buffer.
    // (Capped iterations keep the simulation bounded; the real bug writes
    // until the stack guard kills the worker.)
    const uint64_t simulated = std::min<uint64_t>(copy_len, kChunkBufBytes + 64);
    try {
      for (uint64_t i = 0; i < simulated; ++i) {
        policy_->template Store<uint8_t>(
            *cpu_, policy_->Offset(*cpu_, chunk_buf_, static_cast<int64_t>(i)), 0x41);
      }
    } catch (const SimTrap& trap) {
      *survived = false;
      *detail = trap.what();
      return false;
    }
    const uint64_t ret = policy_->template LoadField<uint64_t>(*cpu_, saved_ret_, 0);
    if (ret != 0x600df00d600df00dULL) {
      *detail = "saved return address smashed (ROP possible)";
      return true;
    }
    *detail = "overflow contained";
    return false;
  }

  // For boundless-memory mode: checks that the server still works after an
  // attack (the event loop serves a normal request).
  bool StillServing() {
    const uint64_t before = requests_served_;
    ServeGet("GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    return requests_served_ == before + 1;
  }

  uint64_t requests_served() const { return requests_served_; }

 private:
  P* policy_;
  Cpu* cpu_;
  SyscallShim* shim_;
  Ptr page_{};
  Ptr rx_{};
  Ptr tx_{};
  Ptr chunk_buf_{};
  Ptr saved_ret_{};
  uint64_t requests_served_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_APPS_NGINX_APP_H_
