// Embedded ordered key-value store - the SQLite stand-in for Fig. 1.
//
// A B-tree with fixed-fanout nodes and heap-allocated value blobs, built
// entirely on the policy API so it can be "compiled" native/ASan/MPX/
// SGXBounds. Like SQLite it is exceptionally pointer-intensive: every tree
// descent loads child pointers from node memory (bndldx storms under MPX),
// and every row is a separate allocation (per-object metadata pressure).
//
// The speedtest workload mirrors SQLite's `speedtest1`: bulk inserts of N
// working-set rows, point queries, range scans, and updates, with the
// working set scaling linearly in N - the x-axis of Fig. 1.

#ifndef SGXBOUNDS_SRC_APPS_KVSTORE_H_
#define SGXBOUNDS_SRC_APPS_KVSTORE_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/policy/run.h"

namespace sgxb {

template <typename P>
class KvStore {
 public:
  // Node layout (8-byte slots):
  //   [0]      header: (nkeys << 1) | is_leaf
  //   [8]      keys: kFanout x u64
  //   [8+8F]   children/values: (kFanout+1) x pointer slot
  static constexpr uint32_t kFanout = 32;
  static constexpr uint32_t kKeysOff = 8;
  static constexpr uint32_t kPtrsOff = kKeysOff + kFanout * 8;
  static constexpr uint32_t kNodeBytes = kPtrsOff + (kFanout + 1) * kPtrSlotBytes;

  using Ptr = typename P::Ptr;

  KvStore(P* policy, Cpu* cpu) : policy_(policy), cpu_(cpu) {
    root_ = NewNode(/*leaf=*/true);
  }

  // Inserts `key` with a value blob of `value_size` bytes (pattern-filled).
  void Insert(uint64_t key, uint32_t value_size) {
    Ptr value = policy_->Malloc(*cpu_, value_size);
    // Fill one word per cache line (row serialization traffic).
    for (uint32_t off = 0; off + 8 <= value_size; off += kCacheLineSize) {
      policy_->template StoreField<uint64_t>(*cpu_, value, off, key ^ off);
    }
    InsertRec(root_, key, value, /*depth=*/0);
    ++size_;
  }

  // Point lookup; returns true and the first value word on hit.
  bool Get(uint64_t key, uint64_t* first_word) {
    Ptr node = root_;
    uint32_t depth = 0;
    for (;;) {
      const uint32_t header = Header(node);
      const bool leaf = (header & 1) != 0;
      const uint32_t nkeys = header >> 1;
      if (leaf) {
        const uint32_t idx = LowerBound(node, nkeys, key);
        if (idx < nkeys && KeyAt(node, idx) == key) {
          Ptr value = ChildAt(node, idx);
          *first_word = policy_->template LoadField<uint64_t>(*cpu_, value, 0);
          return true;
        }
        return false;
      }
      node = ChildAt(node, DescendIndex(node, nkeys, key));
      if (++depth > 64) {
        return false;  // defensive: malformed tree
      }
    }
  }

  // Updates the first word of an existing value (row update).
  bool Update(uint64_t key, uint64_t new_word) {
    Ptr node = root_;
    for (uint32_t depth = 0; depth <= 64; ++depth) {
      const uint32_t header = Header(node);
      const bool leaf = (header & 1) != 0;
      const uint32_t nkeys = header >> 1;
      if (leaf) {
        const uint32_t idx = LowerBound(node, nkeys, key);
        if (idx < nkeys && KeyAt(node, idx) == key) {
          Ptr value = ChildAt(node, idx);
          policy_->template StoreField<uint64_t>(*cpu_, value, 0, new_word);
          return true;
        }
        return false;
      }
      node = ChildAt(node, DescendIndex(node, nkeys, key));
    }
    return false;
  }

  // Scans up to `limit` keys starting at the leaf containing `start`,
  // returning the number visited (leaf-local, like a short ORDER BY LIMIT).
  uint32_t Scan(uint64_t start, uint32_t limit) {
    Ptr node = root_;
    for (uint32_t depth = 0; depth <= 64; ++depth) {
      const uint32_t header = Header(node);
      const bool leaf = (header & 1) != 0;
      const uint32_t nkeys = header >> 1;
      if (leaf) {
        const uint32_t idx = LowerBound(node, nkeys, key_clamp(start));
        uint32_t visited = 0;
        for (uint32_t i = idx; i < nkeys && visited < limit; ++i, ++visited) {
          Ptr value = ChildAt(node, i);
          (void)policy_->template LoadField<uint64_t>(*cpu_, value, 0);
        }
        return visited;
      }
      node = ChildAt(node, DescendIndex(node, nkeys, key_clamp(start)));
    }
    return 0;
  }

  uint64_t size() const { return size_; }

 private:
  static uint64_t key_clamp(uint64_t k) { return k; }

  Ptr NewNode(bool leaf) {
    Ptr node = policy_->Calloc(*cpu_, 1, kNodeBytes);
    SetHeader(node, leaf ? 1 : 0);
    return node;
  }

  uint32_t Header(Ptr node) {
    return policy_->template LoadField<uint32_t>(*cpu_, node, 0);
  }
  void SetHeader(Ptr node, uint32_t header) {
    policy_->template StoreField<uint32_t>(*cpu_, node, 0, header);
  }
  uint64_t KeyAt(Ptr node, uint32_t i) {
    return policy_->template LoadField<uint64_t>(*cpu_, node, kKeysOff + i * 8);
  }
  void SetKeyAt(Ptr node, uint32_t i, uint64_t key) {
    policy_->template StoreField<uint64_t>(*cpu_, node, kKeysOff + i * 8, key);
  }
  Ptr ChildAt(Ptr node, uint32_t i) {
    return policy_->LoadPtr(*cpu_,
                            policy_->Offset(*cpu_, node, kPtrsOff + i * kPtrSlotBytes));
  }
  void SetChildAt(Ptr node, uint32_t i, Ptr child) {
    policy_->StorePtr(*cpu_, policy_->Offset(*cpu_, node, kPtrsOff + i * kPtrSlotBytes),
                      child);
  }

  uint32_t LowerBound(Ptr node, uint32_t nkeys, uint64_t key) {
    uint32_t lo = 0;
    uint32_t hi = nkeys;
    while (lo < hi) {
      cpu_->Alu(3);
      cpu_->Branch();
      const uint32_t mid = (lo + hi) / 2;
      if (KeyAt(node, mid) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Internal-node descent index: first separator strictly greater than key
  // (separators duplicate the first key of their right sibling, so equal
  // keys must descend right).
  uint32_t DescendIndex(Ptr node, uint32_t nkeys, uint64_t key) {
    uint32_t lo = 0;
    uint32_t hi = nkeys;
    while (lo < hi) {
      cpu_->Alu(3);
      cpu_->Branch();
      const uint32_t mid = (lo + hi) / 2;
      if (KeyAt(node, mid) <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  struct SplitResult {
    bool split = false;
    uint64_t up_key = 0;
    Ptr right{};
  };

  SplitResult InsertRec(Ptr node, uint64_t key, Ptr value, uint32_t depth) {
    CHECK_LT(depth, 64u);
    const uint32_t header = Header(node);
    const bool leaf = (header & 1) != 0;
    uint32_t nkeys = header >> 1;
    const uint32_t idx = leaf ? LowerBound(node, nkeys, key) : DescendIndex(node, nkeys, key);

    if (leaf) {
      if (idx < nkeys && KeyAt(node, idx) == key) {
        SetChildAt(node, idx, value);  // overwrite
        return {};
      }
      // Shift right to make room.
      for (uint32_t i = nkeys; i > idx; --i) {
        SetKeyAt(node, i, KeyAt(node, i - 1));
        SetChildAt(node, i, ChildAt(node, i - 1));
      }
      SetKeyAt(node, idx, key);
      SetChildAt(node, idx, value);
      ++nkeys;
      SetHeader(node, (nkeys << 1) | 1);
      if (nkeys < kFanout) {
        return {};
      }
      return SplitNode(node, /*leaf=*/true);
    }

    Ptr child = ChildAt(node, idx);
    const SplitResult sub = InsertRec(child, key, value, depth + 1);
    if (!sub.split) {
      return {};
    }
    // Insert the separator and right child.
    for (uint32_t i = nkeys; i > idx; --i) {
      SetKeyAt(node, i, KeyAt(node, i - 1));
      SetChildAt(node, i + 1, ChildAt(node, i));
    }
    SetKeyAt(node, idx, sub.up_key);
    SetChildAt(node, idx + 1, sub.right);
    ++nkeys;
    SetHeader(node, nkeys << 1);
    if (nkeys < kFanout) {
      return {};
    }
    return SplitNode(node, /*leaf=*/false);
  }

  SplitResult SplitNode(Ptr node, bool leaf) {
    const uint32_t nkeys = Header(node) >> 1;
    const uint32_t mid = nkeys / 2;
    Ptr right = NewNode(leaf);
    const uint32_t right_keys = nkeys - mid - (leaf ? 0 : 1);
    for (uint32_t i = 0; i < right_keys; ++i) {
      const uint32_t src = mid + (leaf ? 0 : 1) + i;
      SetKeyAt(right, i, KeyAt(node, src));
      SetChildAt(right, i, ChildAt(node, src));
    }
    if (!leaf) {
      SetChildAt(right, right_keys, ChildAt(node, nkeys));
    }
    SetHeader(right, (right_keys << 1) | (leaf ? 1 : 0));
    const uint64_t up_key = KeyAt(node, mid);
    SetHeader(node, (mid << 1) | (leaf ? 1 : 0));

    SplitResult result;
    result.split = true;
    result.up_key = up_key;
    result.right = right;

    if (SamePtr(node, root_)) {
      Ptr new_root = NewNode(/*leaf=*/false);
      SetHeader(new_root, 1u << 1);
      SetKeyAt(new_root, 0, up_key);
      SetChildAt(new_root, 0, node);
      SetChildAt(new_root, 1, right);
      root_ = new_root;
      result.split = false;  // absorbed at the root
    }
    return result;
  }

  bool SamePtr(Ptr a, Ptr b) const { return policy_->AddrOf(a) == policy_->AddrOf(b); }

  P* policy_;
  Cpu* cpu_;
  Ptr root_{};
  uint64_t size_ = 0;
};

// --- the Fig. 1 speedtest workload ---------------------------------------------

struct SpeedtestConfig {
  uint64_t items = 100 * 1000;  // working-set rows
  uint32_t value_bytes = 360;   // row payload (SQLite speedtest rows ~few hundred B)
  uint32_t queries_per_item = 1;
  uint64_t seed = 42;
};

struct SpeedtestResult {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t scanned = 0;
};

template <typename P>
SpeedtestResult RunSpeedtest(Env<P>& env, const SpeedtestConfig& cfg) {
  KvStore<P> store(&env.policy, &env.cpu);
  Rng rng(cfg.seed);
  SpeedtestResult result;

  // Phase 1: bulk insert in shuffled key order (a multiplicative permutation
  // of [0, items), like speedtest1's randomized insert phase).
  const uint64_t stride = 2654435761ULL;
  for (uint64_t i = 0; i < cfg.items; ++i) {
    store.Insert((i * stride) % cfg.items, cfg.value_bytes);
  }

  // Phase 2: point queries.
  const uint64_t queries = cfg.items * cfg.queries_per_item;
  for (uint64_t q = 0; q < queries; ++q) {
    uint64_t word = 0;
    if (store.Get(rng.NextBounded(cfg.items), &word)) {
      ++result.hits;
    } else {
      ++result.misses;
    }
  }

  // Phase 3: updates on 10% of the keys.
  for (uint64_t u = 0; u < cfg.items / 10; ++u) {
    store.Update(rng.NextBounded(cfg.items), u);
  }

  // Phase 4: short range scans.
  for (uint64_t s = 0; s < cfg.items / 20; ++s) {
    result.scanned += store.Scan(rng.NextBounded(cfg.items), 10);
  }
  return result;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_APPS_KVSTORE_H_
