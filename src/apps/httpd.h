// Apache httpd analogue (paper SS7, Fig. 13b) with an OpenSSL-heartbeat
// extension carrying the Heartbleed bug.
//
// Reproduced behaviours:
//   * pool allocator: every connection gets page-aligned 8 KiB pools. Under
//     SGXBounds the 4-byte footer spills each pool onto one extra page -
//     the paper's "unexpected 50% increase in memory" artifact;
//   * ~1 MiB of connection state per client (the reason MPX's bounds
//     metadata balloons with client count in Fig. 13b);
//   * heartbeat echo (RFC6520-style): the response length is taken from the
//     attacker's request, and the copy runs directly over the request
//     buffer - claimed_len > actual payload reads adjacent heap memory.
//     Native leaks secrets; ASan/MPX trap; SGXBounds in boundless mode
//     answers with zeros and keeps serving (SS7 "Apache" paragraph).

#ifndef SGXBOUNDS_SRC_APPS_HTTPD_H_
#define SGXBOUNDS_SRC_APPS_HTTPD_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/policy/run.h"
#include "src/runtime/syscall_shim.h"

namespace sgxb {

// Worker-thread count of the modelled Apache (paper: 25 threads). A plain
// constant so drivers can reference it without naming a concrete policy.
inline constexpr uint32_t kHttpdWorkers = 25;

template <typename P>
class Httpd {
 public:
  using Ptr = typename P::Ptr;

  static constexpr uint32_t kPoolChunk = 8 * 1024;  // page-aligned pool chunks
  static constexpr uint32_t kWorkers = kHttpdWorkers;

  Httpd(P* policy, Cpu* cpu, SyscallShim* shim, uint32_t page_bytes = 16 * 1024)
      : policy_(policy), cpu_(cpu), shim_(shim), page_bytes_(page_bytes) {
    // The served document.
    document_ = policy_->Malloc(*cpu_, page_bytes_);
    for (uint32_t off = 0; off + 8 <= page_bytes_; off += kCacheLineSize) {
      policy_->template StoreField<uint64_t>(*cpu_, document_, off, 0x2f2f68746d6c3e3cULL);
    }
  }

  // Opens a connection: allocates its pool set (~1 MiB of state, as the
  // paper observes per Apache client). Returns a connection id.
  uint32_t OpenConnection() {
    Connection conn;
    // 16 KiB of immediately-touched state + reservation-style pools.
    for (int i = 0; i < 2; ++i) {
      conn.pools.push_back(AllocPool());
    }
    conn.rx = AllocPool();
    connections_.push_back(std::move(conn));
    return static_cast<uint32_t>(connections_.size() - 1);
  }

  // Serves one "GET /" request on connection `cid`: parse from the shim,
  // build headers in the connection pool, stream the document out.
  void ServeGet(uint32_t cid, const std::string& request) {
    Connection& conn = connections_[cid];
    const std::vector<uint8_t> wire(request.begin(), request.end());
    shim_->Recv(*cpu_, policy_->AddrOf(conn.rx), wire, 0, kPoolChunk);
    // Header parsing: charged byte scanning of the request line.
    cpu_->Alu(static_cast<uint32_t>(8 + request.size()));
    cpu_->MemAccess(policy_->AddrOf(conn.rx),
                    std::min<uint32_t>(static_cast<uint32_t>(request.size()), 256),
                    AccessClass::kAppLoad);
    // Response headers into the pool.
    Ptr pool = conn.pools[0];
    for (uint32_t off = 0; off < 256; off += kCacheLineSize) {
      policy_->template StoreField<uint64_t>(*cpu_, pool, off, 0x0d0a304f4b313032ULL);
    }
    shim_->Send(*cpu_, policy_->AddrOf(pool), 256);
    // Stream the document (read + copy out via the shim).
    for (uint32_t off = 0; off + 8 <= page_bytes_; off += kCacheLineSize) {
      (void)policy_->template LoadField<uint64_t>(*cpu_, document_, off);
    }
    shim_->Send(*cpu_, policy_->AddrOf(document_), page_bytes_);
    ++requests_served_;
  }

  // --- Heartbleed analogue ---------------------------------------------------
  // The server places `actual_payload` bytes of the heartbeat request in a
  // fresh allocation, then echoes `claimed_len` bytes from it. Returns the
  // echoed bytes (as recovered by the attacker) or an empty vector if the
  // defense stopped the request; `*survived` says whether the server can
  // keep serving afterwards.
  std::vector<uint8_t> Heartbeat(uint32_t actual_payload, uint32_t claimed_len,
                                 bool* survived) {
    *survived = true;
    // The request record, as OpenSSL allocates it from the SSL arena...
    Ptr record = policy_->Malloc(*cpu_, actual_payload);
    for (uint32_t i = 0; i < actual_payload; ++i) {
      policy_->template Store<uint8_t>(*cpu_, policy_->Offset(*cpu_, record, i), 'P');
    }
    // ...next to confidential material (a private-key fragment).
    Ptr secret = policy_->Malloc(*cpu_, 64);
    static const char kSecret[] = "-----PRIVATE-KEY-AAAA-BBBB-CCCC-DDDD----";
    for (uint32_t i = 0; i < sizeof(kSecret) - 1; ++i) {
      policy_->template Store<uint8_t>(*cpu_, policy_->Offset(*cpu_, secret, i),
                                       static_cast<uint8_t>(kSecret[i]));
    }

    // The bug: memcpy(bp, pl, payload) with payload from the wire. The copy
    // is the instrumented in-app loop (OpenSSL's copy was inlined app code,
    // not a libc call, which is why boundless-memory semantics apply).
    std::vector<uint8_t> echoed;
    echoed.reserve(claimed_len);
    for (uint32_t i = 0; i < claimed_len; ++i) {
      const uint8_t byte =
          policy_->template Load<uint8_t>(*cpu_, policy_->Offset(*cpu_, record, i));
      echoed.push_back(byte);
    }
    return echoed;
  }

  uint64_t requests_served() const { return requests_served_; }
  size_t connection_count() const { return connections_.size(); }

 private:
  struct Connection {
    std::vector<Ptr> pools;
    Ptr rx{};
  };

  Ptr AllocPool() {
    // Apache's allocator mmaps page-aligned, page-multiple chunks; the
    // 4-byte SGXBounds footer tips each chunk onto one extra page (SS7).
    Ptr pool = policy_->AlignedAlloc(*cpu_, kPoolChunk, kPageSize);
    // Pools are touched immediately (apr pools zero their headers).
    for (uint32_t off = 0; off < kPoolChunk; off += kPageSize) {
      policy_->template StoreField<uint64_t>(*cpu_, pool, off, 0);
    }
    return pool;
  }

  P* policy_;
  Cpu* cpu_;
  SyscallShim* shim_;
  uint32_t page_bytes_;
  Ptr document_{};
  std::vector<Connection> connections_;
  uint64_t requests_served_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_APPS_HTTPD_H_
