// Memcached analogue (paper SS7, Fig. 13a) - an in-memory cache with a
// chained hash table, LRU-stamped items, and a text get/set protocol served
// through the SCONE-style syscall shim. Policy-templated like everything
// else, so the four "builds" of Fig. 13a come from the same source.
//
// Reproduced behaviours:
//   * the working set (~70 MB at the memaslap-like load) stresses the EPC;
//   * items are individually allocated and chained by pointers, so Intel MPX
//     pays bndldx/bndstx per probe and its bounds tables push the working
//     set past the EPC (the paper's "abysmal" MPX throughput);
//   * CVE-2011-4971 analogue: a SET whose binary body length is negative is
//     reinterpreted as a huge unsigned copy length (the DoS the paper
//     reproduces in SS7).

#ifndef SGXBOUNDS_SRC_APPS_MEMCACHED_H_
#define SGXBOUNDS_SRC_APPS_MEMCACHED_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/policy/run.h"
#include "src/runtime/syscall_shim.h"

namespace sgxb {

template <typename P>
class Memcached {
 public:
  using Ptr = typename P::Ptr;

  // Item layout: [0]=next Ptr slot, [8]=key u64, [16]=value Ptr slot,
  // [24]=value_len u32, [28]=lru_stamp u32.
  static constexpr uint32_t kItemBytes = 32;

  Memcached(P* policy, Cpu* cpu, SyscallShim* shim, uint32_t buckets = 1 << 16)
      : policy_(policy), cpu_(cpu), shim_(shim), buckets_(buckets) {
    table_ = policy_->Calloc(*cpu_, buckets_, kPtrSlotBytes);
    rx_buf_ = policy_->Malloc(*cpu_, kRxBytes);
  }

  // --- cache operations -------------------------------------------------------

  void Set(uint64_t key, uint32_t value_bytes) {
    Ptr slot = BucketSlot(key);
    Ptr item = FindItem(slot, key);
    if (policy_->AddrOf(item) == 0) {
      item = policy_->Malloc(*cpu_, kItemBytes);
      policy_->template StoreField<uint64_t>(*cpu_, item, 8, key);
      Ptr head = policy_->LoadPtr(*cpu_, slot);
      policy_->StorePtr(*cpu_, policy_->Offset(*cpu_, item, 0), head);
      policy_->StorePtr(*cpu_, slot, item);
      ++item_count_;
    } else {
      // Replace: free the old value.
      Ptr old_value = policy_->LoadPtr(*cpu_, policy_->Offset(*cpu_, item, 16));
      if (policy_->AddrOf(old_value) != 0) {
        policy_->Free(*cpu_, old_value);
      }
    }
    Ptr value = policy_->Malloc(*cpu_, value_bytes);
    // Value payload write (one word per line, like a network copy would).
    for (uint32_t off = 0; off + 8 <= value_bytes; off += kCacheLineSize) {
      policy_->template StoreField<uint64_t>(*cpu_, value, off, key + off);
    }
    policy_->StorePtr(*cpu_, policy_->Offset(*cpu_, item, 16), value);
    policy_->template StoreField<uint32_t>(*cpu_, item, 24, value_bytes);
    policy_->template StoreField<uint32_t>(*cpu_, item, 28, ++lru_clock_);
  }

  // Returns value length (0 on miss) and touches the value like a real GET
  // (reads it for the response copy).
  uint32_t Get(uint64_t key) {
    Ptr slot = BucketSlot(key);
    Ptr item = FindItem(slot, key);
    if (policy_->AddrOf(item) == 0) {
      return 0;
    }
    policy_->template StoreField<uint32_t>(*cpu_, item, 28, ++lru_clock_);
    const uint32_t len = policy_->template LoadField<uint32_t>(*cpu_, item, 24);
    Ptr value = policy_->LoadPtr(*cpu_, policy_->Offset(*cpu_, item, 16));
    for (uint32_t off = 0; off + 8 <= len; off += kCacheLineSize) {
      (void)policy_->template LoadField<uint64_t>(*cpu_, value, off);
    }
    return len;
  }

  // --- protocol layer -----------------------------------------------------------

  // Serves one memaslap-style request arriving from the untrusted world.
  // Wire format (text-ish): "G <key>\n" or "S <key> <len>\n<payload>".
  // Returns the response size sent.
  uint32_t ServeRequest(const std::string& wire) {
    const std::vector<uint8_t> bytes(wire.begin(), wire.end());
    const uint32_t n =
        shim_->Recv(*cpu_, policy_->AddrOf(rx_buf_), bytes, 0,
                    std::min<uint32_t>(static_cast<uint32_t>(bytes.size()), kRxBytes));
    // Parse (charged byte loads over the request head).
    cpu_->Alu(12);
    cpu_->MemAccess(policy_->AddrOf(rx_buf_), std::min<uint32_t>(n, 64),
                    AccessClass::kAppLoad);
    char op = 0;
    uint64_t key = 0;
    uint32_t len = 0;
    if (std::sscanf(wire.c_str(), "%c %llu %u", &op,
                    reinterpret_cast<unsigned long long*>(&key), &len) < 2) {
      return 0;
    }
    if (op == 'G') {
      const uint32_t value_len = Get(key);
      if (value_len == 0) {
        shim_->Send(*cpu_, policy_->AddrOf(rx_buf_), 16);  // "NOT_FOUND"
        return 16;
      }
      // Response: header + value copied out through the shim.
      shim_->Send(*cpu_, policy_->AddrOf(rx_buf_), std::min(value_len, kRxBytes));
      return value_len;
    }
    if (op == 'S') {
      Set(key, len);
      shim_->Send(*cpu_, policy_->AddrOf(rx_buf_), 8);  // "STORED"
      return 8;
    }
    return 0;
  }

  // --- CVE-2011-4971 analogue -----------------------------------------------------
  // Binary-protocol SET with attacker-controlled *signed* body length. The
  // bug: vlen is sign-extended then used as an unsigned copy length.
  // Returns true if the server survived the request.
  bool HandleBinarySet(int32_t claimed_vlen, std::string* outcome) {
    const uint32_t item_bytes = 64;
    Ptr item = policy_->Malloc(*cpu_, item_bytes);
    const uint32_t copy_len = static_cast<uint32_t>(claimed_vlen);  // the bug
    // memcpy(item, rx_buf, copy_len) - expressed as the instrumented loop
    // memcached's hand-rolled copy performs. Capped iterations keep the
    // simulation bounded; a real negative length means ~4 billion writes.
    const uint32_t simulated = std::min<uint32_t>(copy_len, 4096);
    for (uint32_t i = 0; i < simulated; ++i) {
      policy_->template Store<uint8_t>(*cpu_, policy_->Offset(*cpu_, item, i),
                                       static_cast<uint8_t>(i));
    }
    if (copy_len > item_bytes) {
      *outcome = "overflow ran to completion (heap corrupted)";
      return false;
    }
    *outcome = "request handled";
    return true;
  }

  uint64_t item_count() const { return item_count_; }

 private:
  static constexpr uint32_t kRxBytes = 16 * 1024;

  Ptr BucketSlot(uint64_t key) {
    const uint32_t bucket = static_cast<uint32_t>((key * 2654435761ULL) % buckets_);
    cpu_->Alu(3);
    return policy_->Offset(*cpu_, table_, bucket * kPtrSlotBytes);
  }

  Ptr FindItem(Ptr slot, uint64_t key) {
    Ptr item = policy_->LoadPtr(*cpu_, slot);
    while (policy_->AddrOf(item) != 0) {
      cpu_->Branch();
      if (policy_->template LoadField<uint64_t>(*cpu_, item, 8) == key) {
        return item;
      }
      item = policy_->LoadPtr(*cpu_, policy_->Offset(*cpu_, item, 0));
    }
    return item;
  }

  P* policy_;
  Cpu* cpu_;
  SyscallShim* shim_;
  uint32_t buckets_;
  Ptr table_{};
  Ptr rx_buf_{};
  uint64_t item_count_ = 0;
  uint32_t lru_clock_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_APPS_MEMCACHED_H_
