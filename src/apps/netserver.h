// Closed-loop throughput/latency model for the networked case studies
// (Fig. 13). The simulator measures a server's *service demand* per request
// (cycles, at a given live-connection count); classic closed-loop queueing
// over that demand produces the throughput-latency pairs the paper plots
// with memaslap/ab:
//
//   c clients, k server threads, service s seconds/request, no think time:
//     throughput X(c) = min(c, k) / s
//     latency    W(c) = c * s / min(c, k)
//
// The interesting signal is in s itself: it is measured by running the real
// (policy-instrumented) server over the simulated enclave, so EPC thrashing
// from bounds tables or shadow memory shows up as a collapsing curve exactly
// as in the paper.

#ifndef SGXBOUNDS_SRC_APPS_NETSERVER_H_
#define SGXBOUNDS_SRC_APPS_NETSERVER_H_

#include <cstdint>
#include <vector>

namespace sgxb {

struct CurvePoint {
  uint32_t clients = 0;
  double kops_per_sec = 0;
  double latency_ms = 0;
};

inline CurvePoint ClosedLoopPoint(uint32_t clients, uint32_t server_threads,
                                  double service_cycles, double ghz = 3.6) {
  CurvePoint p;
  p.clients = clients;
  const double busy = clients < server_threads ? clients : server_threads;
  const double service_sec = service_cycles / (ghz * 1e9);
  p.kops_per_sec = busy / service_sec / 1000.0;
  p.latency_ms = clients * service_sec / busy * 1000.0;
  return p;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_APPS_NETSERVER_H_
