// Per-request containment wrappers for the service-style apps (SS7).
//
// The paper's shielded services *detect* memory-safety events; these wrappers
// are the layer that *survives* them. Every request runs under env.Serve():
// a trap classifies as transient (retried with backoff) or containable (the
// request is dropped, the service keeps going). Used by the fault-injection
// campaigns (bench/fig14_fault_campaign) to measure the detection /
// containment / silent-corruption matrix per scheme.
//
// The kvstore campaign additionally keeps a host-side oracle (std::map
// mirror of every acknowledged write), so a wild write or metadata flip that
// slips past the scheme's checks is still visible as an oracle mismatch -
// the "silent corruption" column no in-simulation counter can provide.

#ifndef SGXBOUNDS_SRC_APPS_CONTAINED_SERVICE_H_
#define SGXBOUNDS_SRC_APPS_CONTAINED_SERVICE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/apps/httpd.h"
#include "src/apps/kvstore.h"
#include "src/apps/memcached.h"
#include "src/apps/netserver.h"
#include "src/policy/run.h"

namespace sgxb {

struct ServiceResult {
  uint64_t served = 0;
  uint64_t dropped = 0;
};

struct OracleKvResult {
  uint64_t served = 0;
  uint64_t dropped = 0;
  // Point queries whose outcome was compared against the host-side mirror.
  uint64_t oracle_checks = 0;
  // Served queries that returned a wrong value or wrong presence: corruption
  // the scheme under test did not catch.
  uint64_t oracle_mismatches = 0;
};

// KvStore request stream (insert/get/update/scan mix) with every
// acknowledged write mirrored host-side. Request keys and the op mix are a
// pure function of `seed`.
template <typename P>
OracleKvResult RunOracleKvCampaign(Env<P>& env, uint64_t requests, uint64_t keyspace,
                                   uint32_t value_bytes, uint64_t seed) {
  KvStore<P> store(&env.policy, &env.cpu);
  std::map<uint64_t, uint64_t> oracle;  // key -> expected first value word
  Rng rng(seed);
  OracleKvResult result;
  for (uint64_t r = 0; r < requests; ++r) {
    const uint64_t key = rng.NextBounded(keyspace);
    const uint64_t op = rng.NextBounded(8);
    bool served = false;
    if (op < 4) {
      served = env.Serve([&] { store.Insert(key, value_bytes); });
      if (served) {
        oracle[key] = key;  // Insert fills word 0 with key ^ 0
      }
    } else if (op < 6) {
      uint64_t word = 0;
      bool hit = false;
      served = env.Serve([&] { hit = store.Get(key, &word); });
      if (served) {
        ++result.oracle_checks;
        const auto it = oracle.find(key);
        const bool expect_hit = it != oracle.end();
        if (hit != expect_hit || (hit && word != it->second)) {
          ++result.oracle_mismatches;
        }
      }
    } else if (op < 7) {
      const uint64_t new_word = key * 0x9e3779b97f4a7c15ULL + r;
      bool updated = false;
      served = env.Serve([&] { updated = store.Update(key, new_word); });
      if (served && updated) {
        oracle[key] = new_word;
      }
    } else {
      served = env.Serve([&] { store.Scan(key, 8); });
    }
    served ? ++result.served : ++result.dropped;
  }
  return result;
}

// Httpd: open `connections` clients, then serve `requests` GETs round-robin.
// A connection whose setup traps is abandoned; its requests fall to the
// surviving connections.
template <typename P>
ServiceResult RunContainedHttpdWorkload(Env<P>& env, uint32_t connections,
                                        uint64_t requests) {
  SyscallShim shim(&env.enclave);
  Httpd<P> httpd(&env.policy, &env.cpu, &shim);
  ServiceResult result;
  std::vector<uint32_t> live;
  for (uint32_t c = 0; c < connections; ++c) {
    env.Serve([&] { live.push_back(httpd.OpenConnection()); });
  }
  const std::string request = "GET / HTTP/1.1\r\nHost: enclave\r\n\r\n";
  for (uint64_t r = 0; r < requests; ++r) {
    if (live.empty()) {
      result.dropped += requests - r;
      break;
    }
    const uint32_t cid = live[r % live.size()];
    const bool served = env.Serve([&] { httpd.ServeGet(cid, request); });
    served ? ++result.served : ++result.dropped;
  }
  return result;
}

// Memcached: memaslap-style get/set mix over the text protocol.
template <typename P>
ServiceResult RunContainedMemcachedWorkload(Env<P>& env, uint64_t requests,
                                            uint64_t keyspace, uint64_t seed) {
  SyscallShim shim(&env.enclave);
  Memcached<P> cache(&env.policy, &env.cpu, &shim, /*buckets=*/1 << 10);
  Rng rng(seed);
  ServiceResult result;
  char wire[64];
  for (uint64_t r = 0; r < requests; ++r) {
    const uint64_t key = rng.NextZipf(keyspace, 0.99);
    if (rng.NextBounded(10) < 9) {
      std::snprintf(wire, sizeof(wire), "G %llu\n", static_cast<unsigned long long>(key));
    } else {
      std::snprintf(wire, sizeof(wire), "S %llu 128\n",
                    static_cast<unsigned long long>(key));
    }
    const bool served = env.Serve([&] { cache.ServeRequest(wire); });
    served ? ++result.served : ++result.dropped;
  }
  return result;
}

// Netserver: closed-loop throughput point derived from a contained run.
// Dropped requests consumed their cycles but served nobody, so the effective
// service demand is total cycles over *served* requests - graceful
// degradation shows up as a sagging curve, not a dead server.
inline CurvePoint ContainedCurvePoint(uint32_t clients, uint32_t server_threads,
                                      uint64_t total_cycles, const ServiceResult& r,
                                      double ghz = 3.6) {
  if (r.served == 0) {
    return CurvePoint{clients, 0.0, 0.0};
  }
  const double demand = static_cast<double>(total_cycles) / static_cast<double>(r.served);
  return ClosedLoopPoint(clients, server_threads, demand, ghz);
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_APPS_CONTAINED_SERVICE_H_
