// Consistent-hash request routing for the enclave farm.
//
// Every (shard, virtual-node) pair owns a point on a 64-bit ring; a request
// key routes to the shard owning the first point at or after the key's hash
// (wrapping). Point positions depend only on the pair — never on the shard
// count — so growing a farm from n to n+1 shards moves ~1/(n+1) of the key
// space and leaves everything else where it was (the property the farm's
// warm 32-bit arenas care about, and what ring_test pins).
//
// Routing is pure and stateless after construction: the farm can hand one
// ring to every host worker thread and partition a request stream
// deterministically regardless of the worker count.

#ifndef SGXBOUNDS_SRC_FARM_RING_H_
#define SGXBOUNDS_SRC_FARM_RING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace sgxb {

class ConsistentHashRing {
 public:
  // splitmix64 finalizer: the ring's only hash. Also used to spread request
  // keys before routing so sequential key spaces don't alias one shard.
  static uint64_t Mix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  explicit ConsistentHashRing(uint32_t shards, uint32_t vnodes_per_shard = 64)
      : shards_(shards), live_(shards) {
    CHECK_GT(shards, 0u);
    CHECK_GT(vnodes_per_shard, 0u);
    points_.reserve(static_cast<size_t>(shards) * vnodes_per_shard);
    for (uint32_t s = 0; s < shards; ++s) {
      for (uint32_t v = 0; v < vnodes_per_shard; ++v) {
        // Position depends only on (s, v): stable under shard add/remove.
        const uint64_t pos =
            Mix64((static_cast<uint64_t>(s) << 32) | (v + 1));
        points_.push_back(Point{pos, s});
      }
    }
    std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
      return a.pos != b.pos ? a.pos < b.pos : a.shard < b.shard;
    });
  }

  uint32_t shards() const { return shards_; }
  size_t points() const { return points_.size(); }
  uint32_t live_shards() const { return live_; }

  // Fails `shard` out of the ring: erases exactly its points, leaving every
  // other (shard, vnode) position untouched. Keys the victim owned move to
  // whichever surviving shard owns the next point — the same bounded-movement
  // property as shrinking n+1 -> n shards — and every other key stays put
  // (the farm supervisor's failover primitive; asserted by
  // farm_resilience_test). No-op on the last live shard: a ring must always
  // route somewhere.
  bool RemoveShard(uint32_t shard) {
    if (live_ <= 1) {
      return false;
    }
    const size_t before = points_.size();
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [shard](const Point& p) { return p.shard == shard; }),
                  points_.end());
    if (points_.size() == before) {
      return false;  // already removed (or never existed)
    }
    --live_;
    return true;
  }

  // Re-adds a previously removed shard's points (restart-after-failover).
  // Positions depend only on (shard, vnode), so the ring returns to exactly
  // its pre-removal state.
  void AddShard(uint32_t shard, uint32_t vnodes_per_shard) {
    for (uint32_t v = 0; v < vnodes_per_shard; ++v) {
      const uint64_t pos = Mix64((static_cast<uint64_t>(shard) << 32) | (v + 1));
      points_.push_back(Point{pos, shard});
    }
    std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
      return a.pos != b.pos ? a.pos < b.pos : a.shard < b.shard;
    });
    ++live_;
  }

  // Shard owning `key`. O(log points).
  uint32_t Route(uint64_t key) const {
    const uint64_t h = Mix64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const Point& p, uint64_t v) { return p.pos < v; });
    if (it == points_.end()) {
      it = points_.begin();  // wrap
    }
    return it->shard;
  }

  // First shard after `key`'s owner on the ring that is a *different* shard:
  // the classic hedged-request target. Returns the owner itself when the
  // ring has a single live shard left.
  uint32_t RouteSecond(uint64_t key) const {
    const uint64_t h = Mix64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const Point& p, uint64_t v) { return p.pos < v; });
    if (it == points_.end()) {
      it = points_.begin();
    }
    const uint32_t owner = it->shard;
    for (size_t step = 1; step < points_.size(); ++step) {
      ++it;
      if (it == points_.end()) {
        it = points_.begin();
      }
      if (it->shard != owner) {
        return it->shard;
      }
    }
    return owner;
  }

 private:
  struct Point {
    uint64_t pos;
    uint32_t shard;
  };
  std::vector<Point> points_;
  uint32_t shards_;
  uint32_t live_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_FARM_RING_H_
