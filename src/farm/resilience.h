// Fault tolerance for the enclave farm: supervisor, client-side robustness,
// and the availability report (the fleet-scale analogue of the paper's §3.4
// per-enclave tolerance story).
//
// The farm's phase A measures per-request service demands in each shard's
// enclave; this layer replaces the fair-weather phase-B timing pass with a
// discrete-event simulation in which shards fail. Inputs are the measured
// demands, a ShardFaultPlan (src/fault/shard_fault.h) of crash/hang events
// pinned to request-dispatch counts, and a RecoveryMode:
//
//   failstop        - no supervisor action: a dead shard stays dead, its ring
//                     points stay, its keyspace times out for the rest of the
//                     run. The paper's "memory-safety fault = crash" baseline
//                     lifted to fleet scale.
//   restart         - the supervisor detects the failure after a watchdog
//                     deadline (health probes time out), cold-restarts the
//                     enclave, and charges the warm-up from the cost model;
//                     the ring never changes.
//   failover        - detection removes exactly the victim's ring points:
//                     bounded key movement (ring.h) remigrates only its
//                     keyspace onto survivors; the shard never returns.
//   failover+hedge  - failover plus client-side hedged requests: if the
//                     primary attempt has not completed after hedge_delay,
//                     a duplicate is issued to the next distinct ring shard
//                     and the first completion wins.
//
// Client-side robustness applies in every mode: a per-attempt timeout, then
// capped exponential backoff with seeded jitter for up to max_retries
// re-dispatches through the *current* ring (so post-failover retries land on
// survivors). Every decision — fault points, detection instants, backoff
// draws, hedge targets — is a pure function of (plan, config, load seed):
// the whole pass is sequential and bit-identical at any --bench_threads.
//
// The supervisor has a second, request-count conviction path: contained
// traps whose ShardImpact (src/policy/recovery.h) is kSuspectShard bump a
// per-shard consecutive-failure counter; crossing sick_threshold convicts
// the shard (poisoned-metadata shards get recovered without ever missing a
// health probe). Successes reset the counter.

#ifndef SGXBOUNDS_SRC_FARM_RESILIENCE_H_
#define SGXBOUNDS_SRC_FARM_RESILIENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/farm/load_gen.h"
#include "src/farm/ring.h"
#include "src/fault/shard_fault.h"
#include "src/sim/cost_model.h"

namespace sgxb {

enum class RecoveryMode : uint8_t {
  kFailStop = 0,
  kRestart = 1,
  kFailover = 2,
  kFailoverHedge = 3,
};
inline constexpr uint32_t kRecoveryModeCount = 4;

const char* RecoveryModeName(RecoveryMode mode);
bool ParseRecoveryMode(const std::string& text, RecoveryMode* out);
std::vector<std::string> RecoveryModeChoices();

struct ResilienceConfig {
  // Off by default: RunFarm takes the historical fair-weather timing pass
  // and every pre-existing result byte is unchanged.
  bool enabled = false;
  RecoveryMode mode = RecoveryMode::kFailStop;
  ShardFaultPlan shard_faults;

  // Client-side robustness (all modes).
  uint64_t request_timeout_cycles = 400000;  // per-attempt deadline (~111 us)
  uint32_t max_retries = 3;                  // re-dispatches after the first attempt
  uint64_t backoff_cycles = 20000;           // first retry backoff; doubles per retry
  uint64_t backoff_cap_cycles = 320000;      // exponential growth cap
  // failover+hedge: duplicate an attempt that has not answered after this
  // long. Set near the p999 of *healthy* latency (~28 us here): a tail-only
  // trigger fires for requests stuck behind a dead/hung shard — the point of
  // hedging — but not for ordinary queueing, which would spiral (hedge adds
  // load, load adds latency, latency adds hedges) once failovers shrink
  // surviving capacity.
  uint64_t hedge_delay_cycles = 100000;

  // Supervisor.
  uint64_t watchdog_cycles = 1000000;  // health-probe deadline convicting a dead
                                       // shard (~278 us); hung shards answer
                                       // probes slowly and take 2x to convict
  uint32_t sick_threshold = 8;         // consecutive suspect drops convicting a shard
  uint64_t hang_slowdown = 8;          // service-demand multiplier on a hung shard
  // Cold-restart warm-up charged on a supervisor restart; 0 derives it from
  // the machine's cost model via RestartWarmupCycles.
  uint64_t restart_warmup_cycles = 0;
};

// Cold enclave re-init priced from the cost table: rebuild the arena's
// first-touch pages, refill one EPC working set through the MEE, and (when
// the transition axis is on) the ECALL storm of re-attaching clients.
// ~0.9 ms at the calibrated table.
inline uint64_t RestartWarmupCycles(const CostModel& costs) {
  return 256ull * costs.minor_fault + 64ull * costs.epc_fault + 100ull * costs.ecall;
}

// Backoff before retry `attempt` (1-based) of `request`: capped exponential
// plus deterministic jitter in [0, backoff/4] drawn from (seed, request,
// attempt) — reproducible bit for bit, desynchronized across requests.
inline uint64_t RetryBackoffCycles(const ResilienceConfig& rc, uint64_t seed,
                                   uint32_t request, uint32_t attempt) {
  const uint32_t shift = attempt > 0 ? attempt - 1 : 0;
  uint64_t backoff = shift >= 40 ? rc.backoff_cap_cycles : rc.backoff_cycles << shift;
  if (backoff > rc.backoff_cap_cycles) {
    backoff = rc.backoff_cap_cycles;
  }
  const uint64_t span = rc.backoff_cycles / 4 + 1;
  const uint64_t jitter = ConsistentHashRing::Mix64(
                              seed ^ 0x9e3779b97f4a7c15ull * (request + 1) ^
                              0xbf58476d1ce4e5b9ull * (attempt + 1)) %
                          span;
  return backoff + jitter;
}

// Per-shard availability over one run.
struct ShardAvailability {
  uint64_t up_cycles = 0;    // alive or hung (responding, possibly slowly)
  uint64_t down_cycles = 0;  // dead or restarting
  uint32_t crashes = 0;
  uint32_t hangs = 0;
  uint32_t restarts = 0;
  bool removed = false;  // failed over out of the ring
  double uptime = 1.0;   // up / (up + down)
};

// The availability/SLO report the fig16 driver emits.
struct ResilienceReport {
  bool enabled = false;

  // Request outcomes. completed + failed_app + failed_timeout = requests.
  uint64_t completed = 0;       // served within some attempt's deadline
  uint64_t failed_app = 0;      // contained app error (dropped, not retried)
  uint64_t failed_timeout = 0;  // every attempt timed out

  // Client-side mechanics.
  uint64_t attempts = 0;           // total dispatches incl. retries + hedges
  uint64_t retries = 0;            // timeout-triggered re-dispatches
  uint64_t hedges = 0;             // hedged duplicates issued
  uint64_t hedge_wins = 0;         // requests resolved by the hedge first
  uint64_t timed_out_attempts = 0; // attempts the client gave up on
  uint64_t wasted_cycles = 0;      // shard work finishing after the client gave up

  // Supervisor mechanics.
  uint64_t detections = 0;   // watchdog deadline convictions
  uint64_t convictions = 0;  // consecutive-suspect-failure convictions
  uint64_t restarts = 0;
  uint64_t failovers = 0;    // ring removals

  // Latency split: a request is "degraded" when dispatched while any
  // in-ring shard was dead/hung/restarting, "healthy" otherwise. Timeouts
  // are recorded via LatencyHistogram::AddTimeout in the matching window.
  LatencyHistogram healthy;
  LatencyHistogram degraded;

  std::vector<ShardAvailability> shards;
  double goodput_rps = 0.0;  // completed / makespan

  // FNV over every counter above + both histogram digests; folded into
  // FarmResult::digest when resilience is on.
  uint64_t digest = 0;
};

// Inputs the resilient timing pass needs from the farm run (phase A).
struct ResilientTimingInput {
  const std::vector<FarmRequest>* reqs = nullptr;
  // Demand oracle: per-request service cycles measured in the request's
  // static-ring shard. The timing pass treats demand as request-intrinsic
  // (every shard is an identical enclave), so re-routed attempts charge the
  // same demand on their new shard.
  const std::vector<uint64_t>* service_cycles = nullptr;
  // Per-request phase-A outcome: 0 = served, 1 = dropped (request-only
  // trap), 2 = dropped (suspect-shard trap; feeds the conviction counter).
  // Outcomes 1 are request-intrinsic and follow the request to any shard;
  // outcome 2 is specific to the request's phase-A shard (poisoned metadata)
  // and clears when an attempt is re-routed elsewhere.
  const std::vector<uint8_t>* outcome = nullptr;
  // Static-ring shard each request was measured on in phase A.
  const std::vector<uint32_t>* primary_shard = nullptr;
  bool open_loop = false;
  double offered_rps = 0.0;
  double ghz = 3.6;
  uint64_t think_cycles = 0;
  uint32_t clients = 1;
  uint64_t seed = 42;
};

// Runs the fault-tolerant discrete-event timing pass over measured demands.
// `ring` is taken by value: failover mutates the copy. Fills `report`, the
// overall `latency` histogram, and the served/dropped totals; returns the
// makespan in simulated cycles. Sequential and deterministic.
uint64_t ResilientTiming(const ResilientTimingInput& in, const ResilienceConfig& rc,
                         ConsistentHashRing ring, ResilienceReport* report,
                         LatencyHistogram* latency, uint64_t* served, uint64_t* dropped);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_FARM_RESILIENCE_H_
