// Sharded enclave serving farm (paper §6 at fleet scale).
//
// A farm is N independent shards, each a full simulated enclave — its own
// 32-bit arena, EPC, cache hierarchy and policy-instrumented app instance —
// fronted by consistent-hash request routing (src/farm/ring.h) and driven by
// a deterministic load generator (src/farm/load_gen.h).
//
// A run has two phases:
//
//   Phase A (service measurement, host-parallel): each shard executes its
//   routed request subsequence in global-request order inside its own
//   enclave, charging every cost axis the simulator models — including
//   ECALL dispatch and OCALL syscall transitions when the machine spec's
//   cost table enables them — and records per-request service cycles.
//   Shards share no mutable state, so they fan out over
//   ParallelForWorkStealing with results in shard-indexed slots:
//   bit-identical for any host thread count.
//
//   Phase B (timing, sequential host-side): a discrete-event queueing pass
//   replays the measured service demands against the arrival process —
//   open-loop Poisson arrivals at an offered rate, or closed-loop clients
//   with think time — producing per-request latencies (into the mergeable
//   log-bucket histogram), fleet throughput, and a result digest the smoke
//   tests pin across thread counts.

#ifndef SGXBOUNDS_SRC_FARM_FARM_H_
#define SGXBOUNDS_SRC_FARM_FARM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/farm/load_gen.h"
#include "src/farm/resilience.h"
#include "src/policy/run.h"

namespace sgxb {

// Which in-sim app each shard wraps. All five are the §6/§7 services.
enum class FarmApp : uint8_t {
  kKvStore = 0,
  kMemcached = 1,
  kHttpd = 2,
  kNginx = 3,
  kNetserver = 4,
};

const char* FarmAppName(FarmApp app);
bool ParseFarmApp(const std::string& name, FarmApp* out);
std::vector<std::string> FarmAppChoices();

struct FarmConfig {
  uint32_t shards = 4;
  uint32_t vnodes = 64;  // ring points per shard
  PolicyKind policy = PolicyKind::kNative;
  FarmApp app = FarmApp::kKvStore;
  LoadGenConfig load;

  // Arrival process. Closed loop (default): `load.clients` clients, each
  // with one outstanding request plus `think_cycles` between requests.
  // Open loop: Poisson arrivals at `offered_rps` requests/second.
  bool open_loop = false;
  double offered_rps = 0.0;
  uint64_t think_cycles = 0;
  double ghz = 3.6;

  // Host-side parallelism for phase A (0 = HostHardwareThreads()). Never
  // changes any result byte — only wall-clock time.
  uint32_t host_threads = 1;

  // Per-shard machine template: EPC size, enclave mode, cost table
  // (machine.costs.EnableTransitions() turns on the ECALL/OCALL axis),
  // recovery config for per-request containment.
  MachineSpec machine;
  PolicyOptions options;

  // Per-enclave fault campaign (--faults= grammar, src/fault/fault.h),
  // replicated into every shard's enclave with a per-shard reseed so the
  // same plan does not land on identical targets fleet-wide. Empty = none;
  // machine.faults is ignored by the farm (per-shard plans need per-shard
  // lifetime).
  FaultPlan faults;

  // Fault-tolerance layer (src/farm/resilience.h): shard-scoped fault plan,
  // supervisor recovery mode, client timeout/retry/hedging. Disabled by
  // default; when disabled the classic phase-B pass runs and every result
  // byte matches the pre-resilience farm.
  ResilienceConfig resilience;
};

struct FarmShardStats {
  uint64_t requests = 0;
  // Phase-A measurement outcomes (requests the shard's enclave served vs
  // dropped while demands were measured). With resilience enabled the
  // authoritative request outcomes live in FarmResult::resilience; these
  // stay as the measurement-phase view.
  uint64_t served = 0;
  uint64_t dropped = 0;
  uint64_t cycles = 0;  // shard main-cpu cycle total (its busy time)
  PerfCounters counters;
  bool crashed = false;
};

struct FarmResult {
  uint64_t served = 0;
  uint64_t dropped = 0;
  // Simulated wall-clock of the whole run: completion time of the last
  // request under the arrival process.
  uint64_t makespan_cycles = 0;
  double throughput_rps = 0.0;
  LatencyHistogram latency;  // served-request latency, simulated cycles
  PerfCounters totals;       // summed over shards
  std::vector<FarmShardStats> shards;
  // Fleet-summed per-enclave fault + recovery accounting (zero unless the
  // config armed faults / enabled recovery).
  FaultStats fault_totals;
  RecoveryStats recovery_totals;
  // Availability report from the resilient timing pass (enabled flag false
  // when the config left resilience off).
  ResilienceReport resilience;
  // FNV digest over shard outcomes + latency histogram + makespan: pinned by
  // the farm smoke test at 1/4/16 host threads. Recovery, fault, and
  // resilience counters are mixed in only when the respective layer is
  // enabled, so fair-weather digests match the pre-resilience farm byte for
  // byte.
  uint64_t digest = 0;
};

FarmResult RunFarm(const FarmConfig& cfg);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_FARM_FARM_H_
