#include "src/farm/farm.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <queue>

#include "src/apps/httpd.h"
#include "src/apps/kvstore.h"
#include "src/apps/memcached.h"
#include "src/apps/nginx_app.h"
#include "src/common/host_parallel.h"
#include "src/farm/ring.h"
#include "src/runtime/syscall_shim.h"

namespace sgxb {

namespace {

constexpr const char* kAppNames[] = {"kvstore", "memcached", "httpd", "nginx",
                                     "netserver"};
constexpr size_t kAppCount = sizeof kAppNames / sizeof kAppNames[0];

// Per-shard phase-A output, written into a shard-indexed slot.
struct ShardOut {
  RunResult run;
  std::vector<uint64_t> service_cycles;  // parallel to the shard's subsequence
  std::vector<uint8_t> served_flags;     // 1 = served, 0 = dropped/trapped
  // Per-position drop class: 0 = served, 1 = request-only trap (transient),
  // 2 = suspect-shard trap (ShardImpact::kSuspectShard — feeds the farm
  // supervisor's conviction counter).
  std::vector<uint8_t> fail_class;
  uint64_t served = 0;
  uint64_t dropped = 0;
};

// Shard-scoped phase-A injection: fire this fault through the enclave's
// armed injector just before serving the local request position.
struct ShardInjection {
  uint32_t at_local = 0;
  FaultKind kind = FaultKind::kEpcStorm;

  bool operator<(const ShardInjection& other) const {
    return at_local != other.at_local ? at_local < other.at_local
                                      : kind < other.kind;
  }
};

// Executes one shard's routed subsequence against its app instance. `mine`
// holds global request indices in arrival order; per-request op mixes are
// derived from (key, global index) so they do not depend on the shard count.
template <typename P>
void ServeShard(Env<P>& env, const FarmConfig& cfg, const std::vector<FarmRequest>& reqs,
                const std::vector<uint32_t>& mine,
                const std::vector<ShardInjection>& inject, ShardOut* out) {
  SyscallShim shim(&env.enclave);
  std::optional<KvStore<P>> kv;
  std::optional<Memcached<P>> mc;
  std::optional<Httpd<P>> httpd;
  std::optional<NginxApp<P>> nginx;
  typename P::Ptr echo_buf{};
  std::vector<uint32_t> conns;
  const std::string get_req = "GET / HTTP/1.1\r\nHost: enclave\r\n\r\n";
  constexpr uint32_t kEchoBytes = 4096;
  switch (cfg.app) {
    case FarmApp::kKvStore:
      kv.emplace(&env.policy, &env.cpu);
      break;
    case FarmApp::kMemcached:
      mc.emplace(&env.policy, &env.cpu, &shim, /*buckets=*/1 << 10);
      break;
    case FarmApp::kHttpd: {
      httpd.emplace(&env.policy, &env.cpu, &shim);
      // Connection state is ~1 MiB each (paper Fig. 13b); cap the per-shard
      // pool so fleet-size sweeps stay inside the 32-bit arena.
      const uint32_t n = std::min<uint32_t>(std::max(1u, cfg.load.clients), 16);
      for (uint32_t c = 0; c < n; ++c) {
        conns.push_back(httpd->OpenConnection());
      }
      break;
    }
    case FarmApp::kNginx:
      nginx.emplace(&env.policy, &env.cpu, &shim);
      break;
    case FarmApp::kNetserver:
      echo_buf = env.policy.Malloc(env.cpu, kEchoBytes);
      break;
  }

  out->service_cycles.resize(mine.size());
  out->served_flags.resize(mine.size());
  out->fail_class.resize(mine.size());
  char wire[64];
  std::vector<uint8_t> payload(64, 0x5a);
  size_t next_inject = 0;
  for (size_t i = 0; i < mine.size(); ++i) {
    // Land shard-scoped faults (epc_storm eviction sweeps, poison metadata
    // flips) at their request positions, through the normal charged paths.
    while (next_inject < inject.size() && inject[next_inject].at_local <= i) {
      if (env.faults != nullptr) {
        env.faults->InjectNow(env.cpu, inject[next_inject].kind);
      }
      ++next_inject;
    }
    const uint32_t gid = mine[i];
    const FarmRequest& rq = reqs[gid];
    // Shard-count-invariant op selector: a pure function of the request.
    const uint64_t op =
        ConsistentHashRing::Mix64(rq.key + 0x100000001b3ull * (gid + 1)) & 7u;
    const uint64_t before = env.cpu.cycles();
    env.cpu.Ecall();  // request dispatch crosses into the shard's enclave
    bool served = false;
    switch (cfg.app) {
      case FarmApp::kKvStore:
        if (op < 3) {
          served = env.Serve([&] { kv->Insert(rq.key, 64); });
        } else if (op < 7) {
          uint64_t word = 0;
          served = env.Serve([&] { kv->Get(rq.key, &word); });
        } else {
          served = env.Serve([&] { kv->Update(rq.key, rq.key ^ gid); });
        }
        break;
      case FarmApp::kMemcached:
        if (op < 7) {
          std::snprintf(wire, sizeof wire, "G %llu\n",
                        static_cast<unsigned long long>(rq.key));
        } else {
          std::snprintf(wire, sizeof wire, "S %llu 128\n",
                        static_cast<unsigned long long>(rq.key));
        }
        served = env.Serve([&] { mc->ServeRequest(wire); });
        break;
      case FarmApp::kHttpd: {
        const uint32_t cid = conns[rq.client % conns.size()];
        served = env.Serve([&] { httpd->ServeGet(cid, get_req); });
        break;
      }
      case FarmApp::kNginx:
        served = env.Serve([&] { nginx->ServeGet(get_req); });
        break;
      case FarmApp::kNetserver:
        // Minimal echo: receive a 64-byte datagram into the enclave buffer,
        // touch it, send it back. The syscall pair is what makes this app
        // the cleanest probe of the OCALL transition axis.
        served = env.Serve([&] {
          const uint32_t addr = env.policy.AddrOf(echo_buf);
          shim.Recv(env.cpu, addr, payload, 0, kEchoBytes);
          env.cpu.MemAccess(addr, 64, AccessClass::kAppLoad);
          env.cpu.Alu(64);
          shim.Send(env.cpu, addr, 64);
        });
        break;
    }
    out->service_cycles[i] = env.cpu.cycles() - before;
    out->served_flags[i] = served ? 1 : 0;
    if (served) {
      out->fail_class[i] = 0;
    } else if (env.recovery->has_trap() &&
               ClassifyShardImpact(env.recovery->last_trap()) ==
                   ShardImpact::kSuspectShard) {
      out->fail_class[i] = 2;
    } else {
      out->fail_class[i] = 1;
    }
    served ? ++out->served : ++out->dropped;
  }
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* FarmAppName(FarmApp app) {
  const size_t i = static_cast<size_t>(app);
  return i < kAppCount ? kAppNames[i] : "?";
}

bool ParseFarmApp(const std::string& name, FarmApp* out) {
  for (size_t i = 0; i < kAppCount; ++i) {
    if (name == kAppNames[i]) {
      *out = static_cast<FarmApp>(i);
      return true;
    }
  }
  return false;
}

std::vector<std::string> FarmAppChoices() {
  return std::vector<std::string>(kAppNames, kAppNames + kAppCount);
}

FarmResult RunFarm(const FarmConfig& cfg) {
  CHECK_GT(cfg.shards, 0u);
  const ConsistentHashRing ring(cfg.shards, cfg.vnodes);
  const std::vector<FarmRequest> reqs = GenerateRequests(cfg.load);

  // Route the stream: per shard, global indices in arrival order.
  std::vector<std::vector<uint32_t>> routed(cfg.shards);
  std::vector<uint32_t> shard_of(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    const uint32_t s = ring.Route(reqs[i].key);
    shard_of[i] = s;
    routed[s].push_back(static_cast<uint32_t>(i));
  }

  // Map shard-scoped phase-A injections (epc_storm, poison) to local request
  // positions in each victim's subsequence: an event at global dispatch N
  // fires just before the shard serves its first request at or after N.
  // Crash/hang are phase-B process-level events, handled by ResilientTiming.
  std::vector<std::vector<ShardInjection>> injections(cfg.shards);
  if (cfg.resilience.enabled) {
    for (const ShardFaultEvent& ev : cfg.resilience.shard_faults.events) {
      if ((ev.kind != ShardFaultKind::kEpcStorm && ev.kind != ShardFaultKind::kPoison) ||
          ev.shard >= cfg.shards) {
        continue;
      }
      const std::vector<uint32_t>& mine = routed[ev.shard];
      const uint32_t g = ev.at_request > 0 ? static_cast<uint32_t>(ev.at_request - 1) : 0;
      const auto it = std::lower_bound(mine.begin(), mine.end(), g);
      if (it == mine.end()) {
        continue;  // fires past the end of the shard's stream
      }
      injections[ev.shard].push_back(
          {static_cast<uint32_t>(it - mine.begin()),
           ev.kind == ShardFaultKind::kEpcStorm ? FaultKind::kEpcStorm
                                                : FaultKind::kMetadataFlip});
    }
    for (std::vector<ShardInjection>& v : injections) {
      std::sort(v.begin(), v.end());
    }
  }

  // Phase A: measure service demands, one independent simulation per shard.
  std::vector<ShardOut> outs(cfg.shards);
  const uint32_t threads =
      cfg.host_threads == 0 ? HostHardwareThreads() : cfg.host_threads;
  // The injector is armed whenever a per-enclave plan exists or resilience
  // needs a channel for shard-scoped injections; arming with an empty plan
  // leaves simulated results untouched.
  const bool arm_faults = !cfg.faults.empty() || cfg.resilience.enabled;
  ParallelForWorkStealing(cfg.shards, threads, [&](size_t s) {
    MachineSpec spec = cfg.machine;
    spec.seed = cfg.machine.seed + 1000003ull * s;  // per-shard env rng stream
    FaultPlan shard_plan = cfg.faults;
    shard_plan.seed = cfg.faults.seed + 7919ull * s;  // de-alias fault targets
    if (arm_faults) {
      spec.faults = &shard_plan;
    }
    outs[s].run = RunPolicyKind(cfg.policy, spec, cfg.options, [&](auto& env) {
      ServeShard(env, cfg, reqs, routed[s], injections[s], &outs[s]);
    });
  });

  // Flatten phase-A outputs back to global request order.
  std::vector<uint64_t> svc(reqs.size(), 0);
  std::vector<uint8_t> ok(reqs.size(), 0);
  std::vector<uint8_t> outcome(reqs.size(), 2);
  {
    std::vector<size_t> next(cfg.shards, 0);
    for (size_t i = 0; i < reqs.size(); ++i) {
      const uint32_t s = shard_of[i];
      const size_t j = next[s]++;
      // A shard that trapped mid-stream leaves its tail unmeasured; those
      // requests count as dropped with zero demand (outcome stays 2: the
      // enclave died, which indicts the shard).
      if (j < outs[s].service_cycles.size()) {
        svc[i] = outs[s].service_cycles[j];
        ok[i] = outs[s].served_flags[j];
        outcome[i] = outs[s].fail_class[j];
      }
    }
  }

  // Phase B: deterministic discrete-event queueing over measured demands.
  FarmResult result;
  std::vector<uint64_t> free_at(cfg.shards, 0);
  uint64_t makespan = 0;
  if (cfg.resilience.enabled) {
    ResilienceConfig rc = cfg.resilience;
    if (rc.restart_warmup_cycles == 0) {
      rc.restart_warmup_cycles = RestartWarmupCycles(cfg.machine.costs);
    }
    ResilientTimingInput tin;
    tin.reqs = &reqs;
    tin.service_cycles = &svc;
    tin.outcome = &outcome;
    tin.primary_shard = &shard_of;
    tin.open_loop = cfg.open_loop;
    tin.offered_rps = cfg.offered_rps;
    tin.ghz = cfg.ghz;
    tin.think_cycles = cfg.think_cycles;
    tin.clients = std::max(1u, cfg.load.clients);
    tin.seed = cfg.load.seed;
    makespan = ResilientTiming(tin, rc, ring, &result.resilience, &result.latency,
                               &result.served, &result.dropped);
  } else if (cfg.open_loop) {
    const std::vector<uint64_t> arrivals =
        PoissonArrivals(reqs.size(), cfg.offered_rps, cfg.ghz, cfg.load.seed);
    for (size_t i = 0; i < reqs.size(); ++i) {
      const uint32_t s = shard_of[i];
      const uint64_t start = std::max(arrivals[i], free_at[s]);
      const uint64_t done = start + svc[i];
      free_at[s] = done;
      makespan = std::max(makespan, done);
      if (ok[i] != 0) {
        result.latency.Add(done - arrivals[i]);
      }
    }
  } else {
    // Closed loop: each client has one outstanding request; its next request
    // is issued `think_cycles` after the previous completion. Ties break on
    // client id, so the schedule is a pure function of the inputs.
    const uint32_t clients = std::max(1u, cfg.load.clients);
    std::vector<std::vector<uint32_t>> per_client(clients);
    for (size_t i = 0; i < reqs.size(); ++i) {
      per_client[reqs[i].client % clients].push_back(static_cast<uint32_t>(i));
    }
    using Ready = std::pair<uint64_t, uint32_t>;  // (time, client)
    std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> pq;
    std::vector<size_t> cursor(clients, 0);
    for (uint32_t c = 0; c < clients; ++c) {
      if (!per_client[c].empty()) {
        pq.push({0, c});
      }
    }
    while (!pq.empty()) {
      const auto [ready, c] = pq.top();
      pq.pop();
      const uint32_t i = per_client[c][cursor[c]++];
      const uint32_t s = shard_of[i];
      const uint64_t start = std::max(ready, free_at[s]);
      const uint64_t done = start + svc[i];
      free_at[s] = done;
      makespan = std::max(makespan, done);
      if (ok[i] != 0) {
        result.latency.Add(done - ready);
      }
      if (cursor[c] < per_client[c].size()) {
        pq.push({done + cfg.think_cycles, c});
      }
    }
  }

  result.makespan_cycles = makespan;
  result.shards.resize(cfg.shards);
  uint64_t digest = 1469598103934665603ull;
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    FarmShardStats& st = result.shards[s];
    st.requests = routed[s].size();
    st.served = outs[s].served;
    st.dropped = outs[s].dropped + (routed[s].size() - outs[s].service_cycles.size());
    st.cycles = outs[s].run.cycles;
    st.counters = outs[s].run.counters;
    st.crashed = outs[s].run.crashed;
    if (!cfg.resilience.enabled) {
      // With resilience on, ResilientTiming already set the authoritative
      // request outcomes; shard stats stay the phase-A measurement view.
      result.served += st.served;
      result.dropped += st.dropped;
    }
    result.totals += st.counters;
    const FaultStats& fs = outs[s].run.fault_stats;
    for (uint32_t k = 0; k < kFaultKindCount; ++k) {
      result.fault_totals.injected[k] += fs.injected[k];
    }
    result.fault_totals.skipped += fs.skipped;
    const RecoveryStats& rs = outs[s].run.recovery_stats;
    result.recovery_totals.requests += rs.requests;
    result.recovery_totals.contained += rs.contained;
    result.recovery_totals.retried += rs.retried;
    result.recovery_totals.recovered += rs.recovered;
    result.recovery_totals.watchdog_kills += rs.watchdog_kills;
    for (uint32_t k = 0; k < kTrapKindCount; ++k) {
      result.recovery_totals.trap_by_kind[k] += rs.trap_by_kind[k];
    }
    digest = FnvMix(digest, st.served);
    digest = FnvMix(digest, st.dropped);
    digest = FnvMix(digest, st.cycles);
    digest = FnvMix(digest, st.counters.ecalls);
    digest = FnvMix(digest, st.counters.ocalls);
    digest = FnvMix(digest, st.counters.transition_cycles);
  }
  if (makespan > 0) {
    result.throughput_rps = static_cast<double>(result.served) /
                            (static_cast<double>(makespan) / (cfg.ghz * 1e9));
  }
  digest = FnvMix(digest, result.latency.Digest());
  digest = FnvMix(digest, makespan);
  // Gated mixes: each layer folds in only when enabled, so a fair-weather
  // run's digest is byte-identical to the pre-resilience farm.
  if (cfg.machine.recovery.enabled) {
    digest = FnvMix(digest, result.recovery_totals.requests);
    digest = FnvMix(digest, result.recovery_totals.contained);
    digest = FnvMix(digest, result.recovery_totals.retried);
    digest = FnvMix(digest, result.recovery_totals.recovered);
    digest = FnvMix(digest, result.recovery_totals.watchdog_kills);
    digest = FnvMix(digest, result.recovery_totals.total_traps());
  }
  if (!cfg.faults.empty() || cfg.resilience.enabled) {
    digest = FnvMix(digest, result.fault_totals.total_injected());
    digest = FnvMix(digest, result.fault_totals.skipped);
  }
  if (cfg.resilience.enabled) {
    digest = FnvMix(digest, result.resilience.digest);
  }
  result.digest = digest;
  return result;
}

}  // namespace sgxb
