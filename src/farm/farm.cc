#include "src/farm/farm.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <queue>

#include "src/apps/httpd.h"
#include "src/apps/kvstore.h"
#include "src/apps/memcached.h"
#include "src/apps/nginx_app.h"
#include "src/common/host_parallel.h"
#include "src/farm/ring.h"
#include "src/runtime/syscall_shim.h"

namespace sgxb {

namespace {

constexpr const char* kAppNames[] = {"kvstore", "memcached", "httpd", "nginx",
                                     "netserver"};
constexpr size_t kAppCount = sizeof kAppNames / sizeof kAppNames[0];

// Per-shard phase-A output, written into a shard-indexed slot.
struct ShardOut {
  RunResult run;
  std::vector<uint64_t> service_cycles;  // parallel to the shard's subsequence
  std::vector<uint8_t> served_flags;     // 1 = served, 0 = dropped/trapped
  uint64_t served = 0;
  uint64_t dropped = 0;
};

// Executes one shard's routed subsequence against its app instance. `mine`
// holds global request indices in arrival order; per-request op mixes are
// derived from (key, global index) so they do not depend on the shard count.
template <typename P>
void ServeShard(Env<P>& env, const FarmConfig& cfg, const std::vector<FarmRequest>& reqs,
                const std::vector<uint32_t>& mine, ShardOut* out) {
  SyscallShim shim(&env.enclave);
  std::optional<KvStore<P>> kv;
  std::optional<Memcached<P>> mc;
  std::optional<Httpd<P>> httpd;
  std::optional<NginxApp<P>> nginx;
  typename P::Ptr echo_buf{};
  std::vector<uint32_t> conns;
  const std::string get_req = "GET / HTTP/1.1\r\nHost: enclave\r\n\r\n";
  constexpr uint32_t kEchoBytes = 4096;
  switch (cfg.app) {
    case FarmApp::kKvStore:
      kv.emplace(&env.policy, &env.cpu);
      break;
    case FarmApp::kMemcached:
      mc.emplace(&env.policy, &env.cpu, &shim, /*buckets=*/1 << 10);
      break;
    case FarmApp::kHttpd: {
      httpd.emplace(&env.policy, &env.cpu, &shim);
      // Connection state is ~1 MiB each (paper Fig. 13b); cap the per-shard
      // pool so fleet-size sweeps stay inside the 32-bit arena.
      const uint32_t n = std::min<uint32_t>(std::max(1u, cfg.load.clients), 16);
      for (uint32_t c = 0; c < n; ++c) {
        conns.push_back(httpd->OpenConnection());
      }
      break;
    }
    case FarmApp::kNginx:
      nginx.emplace(&env.policy, &env.cpu, &shim);
      break;
    case FarmApp::kNetserver:
      echo_buf = env.policy.Malloc(env.cpu, kEchoBytes);
      break;
  }

  out->service_cycles.resize(mine.size());
  out->served_flags.resize(mine.size());
  char wire[64];
  std::vector<uint8_t> payload(64, 0x5a);
  for (size_t i = 0; i < mine.size(); ++i) {
    const uint32_t gid = mine[i];
    const FarmRequest& rq = reqs[gid];
    // Shard-count-invariant op selector: a pure function of the request.
    const uint64_t op =
        ConsistentHashRing::Mix64(rq.key + 0x100000001b3ull * (gid + 1)) & 7u;
    const uint64_t before = env.cpu.cycles();
    env.cpu.Ecall();  // request dispatch crosses into the shard's enclave
    bool served = false;
    switch (cfg.app) {
      case FarmApp::kKvStore:
        if (op < 3) {
          served = env.Serve([&] { kv->Insert(rq.key, 64); });
        } else if (op < 7) {
          uint64_t word = 0;
          served = env.Serve([&] { kv->Get(rq.key, &word); });
        } else {
          served = env.Serve([&] { kv->Update(rq.key, rq.key ^ gid); });
        }
        break;
      case FarmApp::kMemcached:
        if (op < 7) {
          std::snprintf(wire, sizeof wire, "G %llu\n",
                        static_cast<unsigned long long>(rq.key));
        } else {
          std::snprintf(wire, sizeof wire, "S %llu 128\n",
                        static_cast<unsigned long long>(rq.key));
        }
        served = env.Serve([&] { mc->ServeRequest(wire); });
        break;
      case FarmApp::kHttpd: {
        const uint32_t cid = conns[rq.client % conns.size()];
        served = env.Serve([&] { httpd->ServeGet(cid, get_req); });
        break;
      }
      case FarmApp::kNginx:
        served = env.Serve([&] { nginx->ServeGet(get_req); });
        break;
      case FarmApp::kNetserver:
        // Minimal echo: receive a 64-byte datagram into the enclave buffer,
        // touch it, send it back. The syscall pair is what makes this app
        // the cleanest probe of the OCALL transition axis.
        served = env.Serve([&] {
          const uint32_t addr = env.policy.AddrOf(echo_buf);
          shim.Recv(env.cpu, addr, payload, 0, kEchoBytes);
          env.cpu.MemAccess(addr, 64, AccessClass::kAppLoad);
          env.cpu.Alu(64);
          shim.Send(env.cpu, addr, 64);
        });
        break;
    }
    out->service_cycles[i] = env.cpu.cycles() - before;
    out->served_flags[i] = served ? 1 : 0;
    served ? ++out->served : ++out->dropped;
  }
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* FarmAppName(FarmApp app) {
  const size_t i = static_cast<size_t>(app);
  return i < kAppCount ? kAppNames[i] : "?";
}

bool ParseFarmApp(const std::string& name, FarmApp* out) {
  for (size_t i = 0; i < kAppCount; ++i) {
    if (name == kAppNames[i]) {
      *out = static_cast<FarmApp>(i);
      return true;
    }
  }
  return false;
}

std::vector<std::string> FarmAppChoices() {
  return std::vector<std::string>(kAppNames, kAppNames + kAppCount);
}

FarmResult RunFarm(const FarmConfig& cfg) {
  CHECK_GT(cfg.shards, 0u);
  const ConsistentHashRing ring(cfg.shards, cfg.vnodes);
  const std::vector<FarmRequest> reqs = GenerateRequests(cfg.load);

  // Route the stream: per shard, global indices in arrival order.
  std::vector<std::vector<uint32_t>> routed(cfg.shards);
  std::vector<uint32_t> shard_of(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    const uint32_t s = ring.Route(reqs[i].key);
    shard_of[i] = s;
    routed[s].push_back(static_cast<uint32_t>(i));
  }

  // Phase A: measure service demands, one independent simulation per shard.
  std::vector<ShardOut> outs(cfg.shards);
  const uint32_t threads =
      cfg.host_threads == 0 ? HostHardwareThreads() : cfg.host_threads;
  ParallelForWorkStealing(cfg.shards, threads, [&](size_t s) {
    MachineSpec spec = cfg.machine;
    spec.seed = cfg.machine.seed + 1000003ull * s;  // per-shard env rng stream
    outs[s].run = RunPolicyKind(cfg.policy, spec, cfg.options, [&](auto& env) {
      ServeShard(env, cfg, reqs, routed[s], &outs[s]);
    });
  });

  // Flatten phase-A outputs back to global request order.
  std::vector<uint64_t> svc(reqs.size(), 0);
  std::vector<uint8_t> ok(reqs.size(), 0);
  {
    std::vector<size_t> next(cfg.shards, 0);
    for (size_t i = 0; i < reqs.size(); ++i) {
      const uint32_t s = shard_of[i];
      const size_t j = next[s]++;
      // A shard that trapped mid-stream leaves its tail unmeasured; those
      // requests count as dropped with zero demand.
      if (j < outs[s].service_cycles.size()) {
        svc[i] = outs[s].service_cycles[j];
        ok[i] = outs[s].served_flags[j];
      }
    }
  }

  // Phase B: deterministic discrete-event queueing over measured demands.
  FarmResult result;
  std::vector<uint64_t> free_at(cfg.shards, 0);
  uint64_t makespan = 0;
  if (cfg.open_loop) {
    const std::vector<uint64_t> arrivals =
        PoissonArrivals(reqs.size(), cfg.offered_rps, cfg.ghz, cfg.load.seed);
    for (size_t i = 0; i < reqs.size(); ++i) {
      const uint32_t s = shard_of[i];
      const uint64_t start = std::max(arrivals[i], free_at[s]);
      const uint64_t done = start + svc[i];
      free_at[s] = done;
      makespan = std::max(makespan, done);
      if (ok[i] != 0) {
        result.latency.Add(done - arrivals[i]);
      }
    }
  } else {
    // Closed loop: each client has one outstanding request; its next request
    // is issued `think_cycles` after the previous completion. Ties break on
    // client id, so the schedule is a pure function of the inputs.
    const uint32_t clients = std::max(1u, cfg.load.clients);
    std::vector<std::vector<uint32_t>> per_client(clients);
    for (size_t i = 0; i < reqs.size(); ++i) {
      per_client[reqs[i].client % clients].push_back(static_cast<uint32_t>(i));
    }
    using Ready = std::pair<uint64_t, uint32_t>;  // (time, client)
    std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> pq;
    std::vector<size_t> cursor(clients, 0);
    for (uint32_t c = 0; c < clients; ++c) {
      if (!per_client[c].empty()) {
        pq.push({0, c});
      }
    }
    while (!pq.empty()) {
      const auto [ready, c] = pq.top();
      pq.pop();
      const uint32_t i = per_client[c][cursor[c]++];
      const uint32_t s = shard_of[i];
      const uint64_t start = std::max(ready, free_at[s]);
      const uint64_t done = start + svc[i];
      free_at[s] = done;
      makespan = std::max(makespan, done);
      if (ok[i] != 0) {
        result.latency.Add(done - ready);
      }
      if (cursor[c] < per_client[c].size()) {
        pq.push({done + cfg.think_cycles, c});
      }
    }
  }

  result.makespan_cycles = makespan;
  result.shards.resize(cfg.shards);
  uint64_t digest = 1469598103934665603ull;
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    FarmShardStats& st = result.shards[s];
    st.requests = routed[s].size();
    st.served = outs[s].served;
    st.dropped = outs[s].dropped + (routed[s].size() - outs[s].service_cycles.size());
    st.cycles = outs[s].run.cycles;
    st.counters = outs[s].run.counters;
    st.crashed = outs[s].run.crashed;
    result.served += st.served;
    result.dropped += st.dropped;
    result.totals += st.counters;
    digest = FnvMix(digest, st.served);
    digest = FnvMix(digest, st.dropped);
    digest = FnvMix(digest, st.cycles);
    digest = FnvMix(digest, st.counters.ecalls);
    digest = FnvMix(digest, st.counters.ocalls);
    digest = FnvMix(digest, st.counters.transition_cycles);
  }
  if (makespan > 0) {
    result.throughput_rps = static_cast<double>(result.served) /
                            (static_cast<double>(makespan) / (cfg.ghz * 1e9));
  }
  digest = FnvMix(digest, result.latency.Digest());
  digest = FnvMix(digest, makespan);
  result.digest = digest;
  return result;
}

}  // namespace sgxb
