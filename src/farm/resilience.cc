#include "src/farm/resilience.h"

#include <algorithm>
#include <queue>

#include "src/common/check.h"

namespace sgxb {

namespace {

constexpr const char* kModeNames[] = {"failstop", "restart", "failover",
                                      "failover+hedge"};

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

// One discrete event. Ordering is (time, seq) with seq assigned at push, so
// simultaneous events resolve in a fixed, input-determined order; in
// particular an attempt's kDone is always pushed before its kTimeout, so a
// completion exactly at the deadline counts as served.
struct Event {
  enum Kind : uint8_t {
    kArrival,      // id = request
    kDone,         // id = attempt
    kTimeout,      // id = attempt
    kHedge,        // id = request
    kRetry,        // id = request
    kDetect,       // id = shard
    kRestartDone,  // id = shard
  };
  uint64_t time = 0;
  uint64_t seq = 0;
  Kind kind = kArrival;
  uint32_t id = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

enum class SState : uint8_t { kAlive, kHung, kDead, kRestarting };

struct ShardState {
  SState st = SState::kAlive;
  uint64_t free_at = 0;      // FCFS queue tail
  uint64_t last_change = 0;  // for up/down-time integration
  uint32_t consec = 0;       // consecutive suspect drops (conviction counter)
  uint32_t epoch = 0;        // bumped on crash/restart: invalidates in-flight work
  bool in_ring = true;
};

struct AttemptState {
  uint32_t req = 0;
  uint32_t shard = 0;
  uint32_t epoch = 0;      // shard epoch at dispatch
  uint64_t demand = 0;     // charged service cycles (hang slowdown applied)
  bool hedge = false;
  bool ended = false;      // client-side: completed or abandoned at deadline
};

struct ReqState {
  uint64_t issue = 0;
  uint32_t chain = 0;  // primary-chain attempts dispatched (first + retries)
  uint32_t live = 0;   // attempts not yet ended
  bool resolved = false;
  bool degraded = false;      // any in-ring shard unhealthy at issue time
  bool hedge_pending = false; // kHedge scheduled and not yet fired
  bool pending_retry = false; // kRetry scheduled and not yet fired
};

}  // namespace

const char* RecoveryModeName(RecoveryMode mode) {
  const size_t i = static_cast<size_t>(mode);
  return i < kRecoveryModeCount ? kModeNames[i] : "?";
}

bool ParseRecoveryMode(const std::string& text, RecoveryMode* out) {
  for (uint32_t i = 0; i < kRecoveryModeCount; ++i) {
    if (text == kModeNames[i]) {
      *out = static_cast<RecoveryMode>(i);
      return true;
    }
  }
  return false;
}

std::vector<std::string> RecoveryModeChoices() {
  return std::vector<std::string>(kModeNames, kModeNames + kRecoveryModeCount);
}

uint64_t ResilientTiming(const ResilientTimingInput& in, const ResilienceConfig& rc,
                         ConsistentHashRing ring, ResilienceReport* report,
                         LatencyHistogram* latency, uint64_t* served, uint64_t* dropped) {
  const std::vector<FarmRequest>& reqs = *in.reqs;
  const std::vector<uint64_t>& svc = *in.service_cycles;
  const std::vector<uint8_t>& outcome = *in.outcome;
  const std::vector<uint32_t>& primary = *in.primary_shard;
  CHECK_EQ(svc.size(), reqs.size());
  CHECK_EQ(outcome.size(), reqs.size());
  CHECK_EQ(primary.size(), reqs.size());
  const uint32_t nshards = ring.shards();
  const uint64_t warmup = rc.restart_warmup_cycles;
  const bool hedging = rc.mode == RecoveryMode::kFailoverHedge;
  const bool supervised = rc.mode != RecoveryMode::kFailStop;

  ResilienceReport& rep = *report;
  rep = ResilienceReport{};
  rep.enabled = true;
  rep.shards.resize(nshards);

  std::vector<ShardState> shard(nshards);
  std::vector<ReqState> rstate(reqs.size());
  std::vector<AttemptState> attempts;
  attempts.reserve(reqs.size() + reqs.size() / 4);

  // Count of in-ring shards that are not kAlive: classifies each request's
  // dispatch window as healthy/degraded.
  uint32_t unhealthy = 0;

  std::priority_queue<Event, std::vector<Event>, EventAfter> pq;
  uint64_t seq = 0;
  auto push = [&](uint64_t time, Event::Kind kind, uint32_t id) {
    pq.push(Event{time, seq++, kind, id});
  };

  // Makespan: last client-visible resolution or executed shard completion.
  uint64_t end_time = 0;

  auto set_state = [&](uint32_t s, SState ns, uint64_t t) {
    ShardState& sh = shard[s];
    ShardAvailability& av = rep.shards[s];
    const bool was_up = sh.st == SState::kAlive || sh.st == SState::kHung;
    (was_up ? av.up_cycles : av.down_cycles) += t - sh.last_change;
    if (sh.in_ring) {
      const bool was_healthy = sh.st == SState::kAlive;
      const bool now_healthy = ns == SState::kAlive;
      if (was_healthy && !now_healthy) {
        ++unhealthy;
      } else if (!was_healthy && now_healthy) {
        --unhealthy;
      }
    }
    sh.st = ns;
    sh.last_change = t;
  };

  // Removes `s` from the serving set (ring points + health accounting).
  // False when the ring refuses (last live shard, or already removed).
  auto remove_from_ring = [&](uint32_t s) {
    if (!ring.RemoveShard(s)) {
      return false;
    }
    ShardState& sh = shard[s];
    if (sh.in_ring && sh.st != SState::kAlive) {
      --unhealthy;
    }
    sh.in_ring = false;
    rep.shards[s].removed = true;
    ++rep.failovers;
    return true;
  };

  // Phase-A outcome of running request `r` on shard `s`. Suspect-shard drops
  // are shard-specific (poisoned metadata): re-routing away from the primary
  // shard clears them. Request-only drops (transient allocation pressure)
  // follow the request anywhere.
  auto outcome_on = [&](uint32_t r, uint32_t s) -> uint8_t {
    if (outcome[r] == 2 && s != primary[r]) {
      return 0;
    }
    return outcome[r];
  };

  // The supervisor repairs shard `s` at time `t` (watchdog detection or
  // consecutive-failure conviction). No-op under failstop.
  auto repair = [&](uint32_t s, uint64_t t) {
    ShardState& sh = shard[s];
    if (rc.mode == RecoveryMode::kRestart) {
      set_state(s, SState::kRestarting, t);
      ++sh.epoch;  // in-flight work dies with the old incarnation
      sh.consec = 0;
      push(t + warmup, Event::kRestartDone, s);
    } else {
      remove_from_ring(s);  // shard never returns; survivors absorb its keys
    }
  };

  auto dispatch = [&](uint32_t r, uint64_t t, bool hedge) {
    const uint32_t s = hedge ? ring.RouteSecond(reqs[r].key) : ring.Route(reqs[r].key);
    AttemptState at;
    at.req = r;
    at.shard = s;
    at.hedge = hedge;
    ShardState& sh = shard[s];
    at.epoch = sh.epoch;
    ++rep.attempts;
    ++rstate[r].live;
    if (sh.st == SState::kAlive || sh.st == SState::kHung) {
      at.demand = sh.st == SState::kHung ? svc[r] * rc.hang_slowdown : svc[r];
      const uint64_t start = std::max(t, sh.free_at);
      sh.free_at = start + at.demand;
      const uint32_t id = static_cast<uint32_t>(attempts.size());
      attempts.push_back(at);
      // kDone before kTimeout: a completion exactly at the deadline wins.
      push(sh.free_at, Event::kDone, id);
      push(t + rc.request_timeout_cycles, Event::kTimeout, id);
    } else {
      // Dead or restarting: the attempt falls on the floor; only the
      // client's deadline notices.
      const uint32_t id = static_cast<uint32_t>(attempts.size());
      attempts.push_back(at);
      push(t + rc.request_timeout_cycles, Event::kTimeout, id);
    }
  };

  // Closed-loop bookkeeping (ignored when open_loop).
  const uint32_t clients = std::max(1u, in.clients);
  std::vector<std::vector<uint32_t>> per_client;
  std::vector<size_t> cursor;
  std::vector<uint64_t> arrivals;
  if (in.open_loop) {
    arrivals = PoissonArrivals(reqs.size(), in.offered_rps, in.ghz, in.seed);
    if (!reqs.empty()) {
      push(arrivals[0], Event::kArrival, 0);
    }
  } else {
    per_client.resize(clients);
    cursor.assign(clients, 0);
    for (size_t i = 0; i < reqs.size(); ++i) {
      per_client[reqs[i].client % clients].push_back(static_cast<uint32_t>(i));
    }
    for (uint32_t c = 0; c < clients; ++c) {
      if (!per_client[c].empty()) {
        push(0, Event::kArrival, per_client[c][0]);
      }
    }
  }

  // A request's final resolution (served or failed): closed-loop clients
  // issue their next request `think_cycles` later.
  auto resolve_client = [&](uint32_t r, uint64_t t) {
    end_time = std::max(end_time, t);
    if (in.open_loop) {
      return;
    }
    const uint32_t c = reqs[r].client % clients;
    if (++cursor[c] < per_client[c].size()) {
      push(t + in.think_cycles, Event::kArrival, per_client[c][cursor[c]]);
    }
  };

  auto fail_request = [&](uint32_t r, uint64_t t) {
    ReqState& rq = rstate[r];
    rq.resolved = true;
    ++rep.failed_timeout;
    const uint64_t residence = t - rq.issue;
    latency->AddTimeout(residence);
    (rq.degraded ? rep.degraded : rep.healthy).AddTimeout(residence);
    resolve_client(r, t);
  };

  // Nothing in flight, nothing scheduled: the request can never resolve.
  auto maybe_fail = [&](uint32_t r, uint64_t t) {
    ReqState& rq = rstate[r];
    if (!rq.resolved && rq.live == 0 && !rq.pending_retry && !rq.hedge_pending) {
      fail_request(r, t);
    }
  };

  // Shard-fault plan, applied at global dispatch counts. Only crash/hang are
  // phase-B events; epc_storm/poison were injected during phase A and their
  // effects already live in svc[]/outcome[].
  std::vector<ShardFaultEvent> plan;
  for (const ShardFaultEvent& ev : rc.shard_faults.events) {
    if (ev.kind == ShardFaultKind::kCrash || ev.kind == ShardFaultKind::kHang) {
      plan.push_back(ev);
    }
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const ShardFaultEvent& a, const ShardFaultEvent& b) {
                     return a.at_request < b.at_request;
                   });
  size_t next_fault = 0;
  uint64_t dispatched = 0;

  auto apply_fault = [&](const ShardFaultEvent& ev, uint64_t t) {
    if (ev.shard >= nshards) {
      return;
    }
    ShardState& sh = shard[ev.shard];
    if (ev.kind == ShardFaultKind::kCrash) {
      if (sh.st != SState::kAlive && sh.st != SState::kHung) {
        return;  // already down
      }
      set_state(ev.shard, SState::kDead, t);
      ++sh.epoch;  // queued + executing work dies with the process
      ++rep.shards[ev.shard].crashes;
      if (supervised) {
        push(t + rc.watchdog_cycles, Event::kDetect, ev.shard);
      }
    } else {  // kHang
      if (sh.st != SState::kAlive) {
        return;
      }
      set_state(ev.shard, SState::kHung, t);
      ++rep.shards[ev.shard].hangs;
      if (supervised) {
        // Slow-but-alive answers health probes late; conviction takes 2x.
        push(t + 2 * rc.watchdog_cycles, Event::kDetect, ev.shard);
      }
    }
  };

  while (!pq.empty()) {
    const Event ev = pq.top();
    pq.pop();
    const uint64_t t = ev.time;
    switch (ev.kind) {
      case Event::kArrival: {
        const uint32_t r = ev.id;
        while (next_fault < plan.size() && plan[next_fault].at_request <= dispatched + 1) {
          apply_fault(plan[next_fault++], t);
        }
        ++dispatched;
        ReqState& rq = rstate[r];
        rq.issue = t;
        rq.degraded = unhealthy > 0;
        rq.chain = 1;
        dispatch(r, t, /*hedge=*/false);
        if (hedging && ring.live_shards() > 1) {
          rq.hedge_pending = true;
          push(t + rc.hedge_delay_cycles, Event::kHedge, r);
        }
        if (in.open_loop && static_cast<size_t>(r) + 1 < reqs.size()) {
          push(arrivals[r + 1], Event::kArrival, r + 1);
        }
        break;
      }
      case Event::kDone: {
        AttemptState& at = attempts[ev.id];
        ShardState& sh = shard[at.shard];
        if (at.epoch != sh.epoch) {
          break;  // the shard died under this attempt; it never completes
        }
        end_time = std::max(end_time, t);
        const uint8_t oc = outcome_on(at.req, at.shard);
        // The supervisor watches responses: suspect drops accumulate toward
        // conviction, successes clear the counter.
        if (oc == 2) {
          if (++sh.consec >= rc.sick_threshold && supervised && sh.in_ring &&
              sh.st == SState::kAlive) {
            ++rep.convictions;
            repair(at.shard, t);
          }
        } else if (oc == 0) {
          sh.consec = 0;
        }
        ReqState& rq = rstate[at.req];
        if (at.ended || rq.resolved) {
          // The client gave up, or a duplicate already answered: the shard's
          // work was wasted.
          rep.wasted_cycles += at.demand;
          if (!at.ended) {
            at.ended = true;
            --rq.live;
          }
          break;
        }
        at.ended = true;
        --rq.live;
        rq.resolved = true;
        if (oc == 0) {
          ++rep.completed;
          const uint64_t lat = t - rq.issue;
          latency->Add(lat);
          (rq.degraded ? rep.degraded : rep.healthy).Add(lat);
          if (at.hedge) {
            ++rep.hedge_wins;
          }
        } else {
          // Contained app error: a definitive reply, not a timeout — the
          // client does not retry it.
          ++rep.failed_app;
        }
        resolve_client(at.req, t);
        break;
      }
      case Event::kTimeout: {
        AttemptState& at = attempts[ev.id];
        if (at.ended) {
          break;  // completed at or before the deadline
        }
        ReqState& rq = rstate[at.req];
        at.ended = true;
        --rq.live;
        if (rq.resolved) {
          break;  // a duplicate already answered; abandon quietly
        }
        ++rep.timed_out_attempts;
        if (!at.hedge && rq.chain < 1 + rc.max_retries) {
          rq.pending_retry = true;
          push(t + RetryBackoffCycles(rc, in.seed, at.req, rq.chain), Event::kRetry,
               at.req);
        }
        maybe_fail(at.req, t);
        break;
      }
      case Event::kRetry: {
        const uint32_t r = ev.id;
        ReqState& rq = rstate[r];
        rq.pending_retry = false;
        if (rq.resolved) {
          break;
        }
        ++rq.chain;
        ++rep.retries;
        // Routed through the *current* ring: post-failover retries land on
        // survivors.
        dispatch(r, t, /*hedge=*/false);
        break;
      }
      case Event::kHedge: {
        const uint32_t r = ev.id;
        ReqState& rq = rstate[r];
        rq.hedge_pending = false;
        if (rq.resolved) {
          break;
        }
        if (ring.live_shards() > 1) {
          ++rep.hedges;
          dispatch(r, t, /*hedge=*/true);
        } else {
          maybe_fail(r, t);
        }
        break;
      }
      case Event::kDetect: {
        ShardState& sh = shard[ev.id];
        if (sh.st != SState::kDead && sh.st != SState::kHung) {
          break;  // stale: already repaired or convicted
        }
        ++rep.detections;
        repair(ev.id, t);
        break;
      }
      case Event::kRestartDone: {
        ShardState& sh = shard[ev.id];
        set_state(ev.id, SState::kAlive, t);
        sh.free_at = t;  // fresh incarnation, empty queue
        sh.consec = 0;
        ++rep.shards[ev.id].restarts;
        ++rep.restarts;
        break;
      }
    }
  }

  // Flush up/down-time integrals to the end of the run.
  for (uint32_t s = 0; s < nshards; ++s) {
    ShardState& sh = shard[s];
    ShardAvailability& av = rep.shards[s];
    if (end_time > sh.last_change) {
      const bool up = sh.st == SState::kAlive || sh.st == SState::kHung;
      (up ? av.up_cycles : av.down_cycles) += end_time - sh.last_change;
    }
    const uint64_t span = av.up_cycles + av.down_cycles;
    av.uptime = span == 0 ? 1.0 : static_cast<double>(av.up_cycles) / span;
  }
  if (end_time > 0) {
    rep.goodput_rps = static_cast<double>(rep.completed) /
                      (static_cast<double>(end_time) / (in.ghz * 1e9));
  }
  *served = rep.completed;
  *dropped = rep.failed_app + rep.failed_timeout;

  uint64_t digest = 1469598103934665603ull;
  digest = FnvMix(digest, rep.completed);
  digest = FnvMix(digest, rep.failed_app);
  digest = FnvMix(digest, rep.failed_timeout);
  digest = FnvMix(digest, rep.attempts);
  digest = FnvMix(digest, rep.retries);
  digest = FnvMix(digest, rep.hedges);
  digest = FnvMix(digest, rep.hedge_wins);
  digest = FnvMix(digest, rep.timed_out_attempts);
  digest = FnvMix(digest, rep.wasted_cycles);
  digest = FnvMix(digest, rep.detections);
  digest = FnvMix(digest, rep.convictions);
  digest = FnvMix(digest, rep.restarts);
  digest = FnvMix(digest, rep.failovers);
  for (const ShardAvailability& av : rep.shards) {
    digest = FnvMix(digest, av.up_cycles);
    digest = FnvMix(digest, av.down_cycles);
    digest = FnvMix(digest, (static_cast<uint64_t>(av.crashes) << 32) |
                                (static_cast<uint64_t>(av.hangs) << 16) |
                                (static_cast<uint64_t>(av.restarts) << 1) |
                                (av.removed ? 1u : 0u));
  }
  digest = FnvMix(digest, rep.healthy.Digest());
  digest = FnvMix(digest, rep.degraded.Digest());
  rep.digest = digest;
  return end_time;
}

}  // namespace sgxb
