// Deterministic load generator for the enclave farm.
//
// Produces the request stream up front as a pure function of the seed: per
// request a key (optionally Zipf-skewed, as memaslap's hot-key distributions
// are) and an issuing client (optionally skewed, modeling fat connections).
// Arrival timing is the timing model's job (src/farm/farm.cc): open-loop
// runs draw Poisson inter-arrival gaps from this generator's rng stream;
// closed-loop runs derive arrivals from completions plus think time.
//
// Everything here is host-side bookkeeping — no simulated cycles are charged
// for generating load, mirroring how memaslap/ab run on separate client
// machines in the paper's §6 setup.

#ifndef SGXBOUNDS_SRC_FARM_LOAD_GEN_H_
#define SGXBOUNDS_SRC_FARM_LOAD_GEN_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace sgxb {

struct LoadGenConfig {
  uint64_t requests = 10000;
  uint64_t keyspace = 4096;
  // Zipf exponent for key popularity; 0 = uniform. 0.99 matches the
  // memaslap-style hot-key mix used by the contained memcached workload.
  double key_theta = 0.0;
  uint32_t clients = 64;
  // Zipf exponent for client fan-in; 0 = uniform round-robin-ish. Nonzero
  // models a few fat connections issuing most of the traffic.
  double client_theta = 0.0;
  uint64_t seed = 42;
};

struct FarmRequest {
  uint64_t key = 0;
  uint32_t client = 0;
};

// The full request stream for one farm run. Pure function of the config.
inline std::vector<FarmRequest> GenerateRequests(const LoadGenConfig& cfg) {
  std::vector<FarmRequest> reqs(cfg.requests);
  Rng rng(cfg.seed ^ 0xfa12fa12fa12fa12ull);
  for (auto& r : reqs) {
    r.key = cfg.key_theta > 0.0 ? rng.NextZipf(cfg.keyspace, cfg.key_theta)
                                : rng.NextBounded(cfg.keyspace);
    r.client = static_cast<uint32_t>(
        cfg.client_theta > 0.0 ? rng.NextZipf(cfg.clients, cfg.client_theta)
                               : rng.NextBounded(cfg.clients));
  }
  return reqs;
}

// Open-loop Poisson arrival times (in simulated cycles) for `n` requests at
// `rate_rps` offered requests/second on a `ghz` GHz machine. Monotone
// nondecreasing; pure function of the seed.
inline std::vector<uint64_t> PoissonArrivals(uint64_t n, double rate_rps, double ghz,
                                             uint64_t seed) {
  std::vector<uint64_t> arrivals(n);
  const double mean_gap = rate_rps > 0.0 ? ghz * 1e9 / rate_rps : 0.0;
  Rng rng(seed ^ 0x9031903190319031ull);
  double t = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    // Inverse-CDF exponential gap; 1 - u in (0, 1] avoids log(0).
    const double u = rng.NextDouble();
    t += -std::log(1.0 - u) * mean_gap;
    arrivals[i] = static_cast<uint64_t>(t);
  }
  return arrivals;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_FARM_LOAD_GEN_H_
