// Host-level parallel dispatch for independent simulations.
//
// The simulator itself is single-threaded by design (see src/sim/machine.h):
// simulated "threads" are modeled deterministically inside one Enclave. What
// IS safely parallel is running *independent* simulations — each (workload,
// policy) run owns its own Enclave, Heap and Cpus and shares no mutable
// state — so the bench drivers fan those out across host threads and join
// results in a deterministic order.
//
//   std::vector<RunResult> out(jobs.size());
//   ParallelFor(jobs.size(), HostHardwareThreads(),
//               [&](size_t i) { out[i] = jobs[i](); });
//
// Results are written into caller-owned slots indexed by job id, so output
// ordering (and therefore every printed table) is byte-identical regardless
// of the thread count.

#ifndef SGXBOUNDS_SRC_COMMON_HOST_PARALLEL_H_
#define SGXBOUNDS_SRC_COMMON_HOST_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sgxb {

// Number of host hardware threads (always >= 1).
uint32_t HostHardwareThreads();

// Invokes fn(0) .. fn(n-1), each exactly once, distributed over up to
// `threads` host threads (clamped to n; <= 1 runs inline). fn must be safe
// to call concurrently for distinct indices. If any invocation throws, the
// first exception (in completion order) is rethrown on the calling thread
// after all workers join; remaining indices may or may not run.
void ParallelFor(size_t n, uint32_t threads, const std::function<void(size_t)>& fn);

// Same contract as ParallelFor, but with work stealing: the index range is
// pre-split into one contiguous chunk per worker, and a worker that drains
// its chunk steals the back half of the largest remaining chunk. Preferable
// when per-index costs are wildly uneven (a sweep grid mixes microsecond
// capture re-pricings with full replays that run five orders of magnitude
// longer): the atomic-counter ParallelFor serializes every index through one
// cache line, while stealing touches shared state only when a worker runs
// dry. Results must still be written to caller-owned indexed slots; the
// execution order is nondeterministic but the index->slot mapping keeps
// output deterministic.
void ParallelForWorkStealing(size_t n, uint32_t threads,
                             const std::function<void(size_t)>& fn);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_HOST_PARALLEL_H_
