#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace sgxb {

namespace {

std::string DefaultToString(FlagParser* unused, const void* target, int kind_index) {
  (void)unused;
  std::ostringstream os;
  switch (kind_index) {
    case 0:
      os << *static_cast<const int64_t*>(target);
      break;
    case 1:
      os << *static_cast<const uint64_t*>(target);
      break;
    case 2:
      os << *static_cast<const double*>(target);
      break;
    case 3:
      os << (*static_cast<const bool*>(target) ? "true" : "false");
      break;
    case 4:
      os << *static_cast<const std::string*>(target);
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace

void FlagParser::AddInt(const std::string& name, int64_t* target, const std::string& help) {
  flags_.push_back({name, Kind::kInt, target, help, DefaultToString(this, target, 0)});
}

void FlagParser::AddUint(const std::string& name, uint64_t* target, const std::string& help) {
  flags_.push_back({name, Kind::kUint, target, help, DefaultToString(this, target, 1)});
}

void FlagParser::AddDouble(const std::string& name, double* target, const std::string& help) {
  flags_.push_back({name, Kind::kDouble, target, help, DefaultToString(this, target, 2)});
}

void FlagParser::AddBool(const std::string& name, bool* target, const std::string& help) {
  flags_.push_back({name, Kind::kBool, target, help, DefaultToString(this, target, 3)});
}

void FlagParser::AddString(const std::string& name, std::string* target, const std::string& help) {
  flags_.push_back({name, Kind::kString, target, help, DefaultToString(this, target, 4)});
}

void FlagParser::AddChoice(const std::string& name, std::string* target,
                           std::vector<std::string> choices, const std::string& help) {
  flags_.push_back({name, Kind::kChoice, target, help, DefaultToString(this, target, 4), nullptr,
                    std::move(choices)});
}

void FlagParser::AddCallback(const std::string& name,
                             std::function<bool(const std::string&)> parse,
                             const std::string& help, const std::string& default_display,
                             std::vector<std::string> choices) {
  flags_.push_back({name, Kind::kCallback, nullptr, help, default_display, std::move(parse),
                    std::move(choices)});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

bool FlagParser::SetValue(const Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0') {
        return false;
      }
      *static_cast<int64_t*>(flag.target) = v;
      return true;
    }
    case Kind::kUint: {
      const unsigned long long v = std::strtoull(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0') {
        return false;
      }
      *static_cast<uint64_t*>(flag.target) = v;
      return true;
    }
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return false;
      }
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
    }
    case Kind::kString: {
      *static_cast<std::string*>(flag.target) = value;
      return true;
    }
    case Kind::kChoice: {
      for (const std::string& choice : flag.choices) {
        if (value == choice) {
          *static_cast<std::string*>(flag.target) = value;
          return true;
        }
      }
      return false;
    }
    case Kind::kCallback:
      return flag.parse(value);
  }
  return false;
}

std::vector<std::string> FlagParser::Parse(int argc, char** argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(), Usage(argv[0]).c_str());
      std::exit(2);
    }
    if (!has_value && flag->kind != Kind::kBool) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        std::exit(2);
      }
      value = argv[++i];
      has_value = true;
    }
    if (!SetValue(*flag, value)) {
      if (!flag->choices.empty()) {
        std::string valid;
        for (const std::string& choice : flag->choices) {
          if (!valid.empty()) {
            valid += "|";
          }
          valid += choice;
        }
        std::fprintf(stderr, "invalid value '%s' for flag --%s (valid: %s)\n", value.c_str(),
                     name.c_str(), valid.c_str());
      } else {
        std::fprintf(stderr, "invalid value '%s' for flag --%s\n", value.c_str(), name.c_str());
      }
      std::exit(2);
    }
  }
  return positional;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& flag : flags_) {
    os << "  --" << flag.name << "  " << flag.help;
    if (!flag.choices.empty()) {
      os << " (one of: ";
      for (size_t i = 0; i < flag.choices.size(); ++i) {
        os << (i == 0 ? "" : "|") << flag.choices[i];
      }
      os << ")";
    }
    os << " (default: " << flag.default_value << ")\n";
  }
  return os.str();
}

}  // namespace sgxb
