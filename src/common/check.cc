#include "src/common/check.h"

namespace sgxb {

void FatalError(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace sgxb
