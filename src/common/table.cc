#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sgxb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  Row row;
  row.cells = std::move(cells);
  rows_.push_back(std::move(row));
}

void Table::AddSeparator() {
  Row row;
  row.separator = true;
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto emit_line = [&](std::ostringstream& os) {
    os << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) {
        os << '-';
      }
      os << '+';
    }
    os << '\n';
  };

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells,
                      bool header) {
    os << '|';
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      const size_t pad = widths[i] - cell.size();
      os << ' ';
      if (i == 0 || header) {
        os << cell;
        for (size_t p = 0; p < pad; ++p) {
          os << ' ';
        }
      } else {
        for (size_t p = 0; p < pad; ++p) {
          os << ' ';
        }
        os << cell;
      }
      os << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_line(os);
  emit_row(os, headers_, /*header=*/true);
  emit_line(os);
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_line(os);
    } else {
      emit_row(os, row.cells, /*header=*/false);
    }
  }
  emit_line(os);
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace sgxb
