// Deterministic, seedable PRNG used by every workload and load generator.
//
// xoshiro256** with a SplitMix64 seeder. All experiment results in this repo
// are deterministic functions of the seed, which is what makes the benchmark
// output reproducible run-to-run.

#ifndef SGXBOUNDS_SRC_COMMON_RNG_H_
#define SGXBOUNDS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace sgxb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound) without modulo bias for practical bounds.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Zipf-distributed rank in [0, n) with exponent `theta` (used by the
  // memcached/kvstore load generators for realistic skew).
  uint64_t NextZipf(uint64_t n, double theta);

  // Fills `out` with `len` random lowercase letters.
  std::string NextKey(size_t len);

 private:
  uint64_t s_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_RNG_H_
