// Byte-size and address constants shared across the simulator.

#ifndef SGXBOUNDS_SRC_COMMON_UNITS_H_
#define SGXBOUNDS_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace sgxb {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kPageShift = 12;
inline constexpr uint32_t kCacheLineSize = 64;
inline constexpr uint32_t kCacheLineShift = 6;

inline constexpr uint32_t PageOf(uint32_t addr) { return addr >> kPageShift; }
inline constexpr uint32_t LineOf(uint32_t addr) { return addr >> kCacheLineShift; }
inline constexpr uint64_t PagesFor(uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}
inline constexpr uint32_t AlignUp(uint32_t value, uint32_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}
inline constexpr uint64_t AlignUp64(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_UNITS_H_
