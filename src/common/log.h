// Minimal leveled logging. Usage:
//
//   LOG(INFO) << "enclave created, epc=" << epc_bytes;
//
// The global level defaults to kInfo and can be raised/lowered with
// SetLogLevel(). Output goes to stderr so benchmark result tables on stdout
// stay machine-parsable.

#ifndef SGXBOUNDS_SRC_COMMON_LOG_H_
#define SGXBOUNDS_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace sgxb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace sgxb

#define SGXB_LOG_DEBUG ::sgxb::LogLevel::kDebug
#define SGXB_LOG_INFO ::sgxb::LogLevel::kInfo
#define SGXB_LOG_WARNING ::sgxb::LogLevel::kWarning
#define SGXB_LOG_ERROR ::sgxb::LogLevel::kError

#define LOG(severity) ::sgxb::LogMessage(SGXB_LOG_##severity, __FILE__, __LINE__).stream()

#endif  // SGXBOUNDS_SRC_COMMON_LOG_H_
