#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace sgxb {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RunningStat::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double GeoMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  CHECK(!values.empty());
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::string FormatOverheadPercent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024.0));
  } else if (bytes >= 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace sgxb
