#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace sgxb {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RunningStat::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

uint32_t LatencyHistogram::BucketOf(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  // floor(log_gamma(v)) + 1; bucket i >= 1 holds (gamma^(i-1), gamma^i].
  const double lg = std::log(static_cast<double>(value)) / std::log(kGamma);
  uint32_t b = static_cast<uint32_t>(std::max(0.0, std::ceil(lg)));
  // Guard against floating-point edge cases at exact powers of gamma: the
  // invariant is value <= gamma^b and value > gamma^(b-1).
  while (static_cast<double>(value) > std::pow(kGamma, b)) {
    ++b;
  }
  while (b > 0 && static_cast<double>(value) <= std::pow(kGamma, b - 1)) {
    --b;
  }
  return b + 1;
}

double LatencyHistogram::BucketRep(uint32_t bucket) {
  if (bucket == 0) {
    return 0.0;
  }
  // Stored index `bucket` holds (gamma^(bucket-2), gamma^(bucket-1)]; the
  // harmonic midpoint 2*gamma^(bucket-1)/(gamma+1) keeps the relative
  // distance to any value in the bucket at most (gamma - 1) / (gamma + 1).
  return 2.0 * std::pow(kGamma, bucket - 1) / (kGamma + 1.0);
}

void LatencyHistogram::Add(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  const uint32_t b = BucketOf(value);
  if (buckets_.size() <= b) {
    buckets_.resize(b + 1, 0);
  }
  buckets_[b] += count;
  if (total_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void LatencyHistogram::AddTimeout(uint64_t deadline, uint64_t count) {
  timeouts_ += count;
  timeout_deadline_ = std::max(timeout_deadline_, deadline);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  timeouts_ += other.timeouts_;
  timeout_deadline_ = std::max(timeout_deadline_, other.timeout_deadline_);
  if (other.total_ == 0) {
    return;
  }
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LatencyHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total_)));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const double rep = BucketRep(static_cast<uint32_t>(i));
      return std::min(static_cast<double>(max_),
                      std::max(static_cast<double>(min_), rep));
    }
  }
  return static_cast<double>(max_);
}

double LatencyHistogram::CappedQuantile(double q) const {
  const uint64_t all = total_ + timeouts_;
  if (all == 0) {
    return 0.0;
  }
  if (timeouts_ == 0) {
    return Quantile(q);
  }
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(all)));
  if (rank == 0) {
    rank = 1;
  }
  // Timeouts sort above every completed sample (they lasted at least the
  // deadline, which exceeds any completion the client accepted).
  if (rank > total_) {
    return static_cast<double>(timeout_deadline_);
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const double rep = BucketRep(static_cast<uint32_t>(i));
      return std::min(static_cast<double>(max_),
                      std::max(static_cast<double>(min_), rep));
    }
  }
  return static_cast<double>(max_);
}

uint64_t LatencyHistogram::Digest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix64 = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      mix64(i);
      mix64(buckets_[i]);
    }
  }
  mix64(total_);
  mix64(min_);
  mix64(max_);
  // Timeout counters join the digest only when present, so every histogram
  // recorded before timeouts existed keeps its exact digest.
  if (timeouts_ != 0) {
    mix64(0x7107u);  // domain separator: timeout block follows
    mix64(timeouts_);
    mix64(timeout_deadline_);
  }
  return h;
}

double GeoMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  CHECK(!values.empty());
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::string FormatOverheadPercent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024.0));
  } else if (bytes >= 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace sgxb
