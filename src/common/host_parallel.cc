#include "src/common/host_parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sgxb {

uint32_t HostHardwareThreads() {
  const uint32_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(size_t n, uint32_t threads, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const uint32_t workers =
      static_cast<uint32_t>(std::min<size_t>(threads == 0 ? 1 : threads, n));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (uint32_t t = 1; t < workers; ++t) {
    pool.emplace_back(body);
  }
  body();  // the calling thread is worker 0
  for (auto& th : pool) {
    th.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ParallelForWorkStealing(size_t n, uint32_t threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const uint32_t workers =
      static_cast<uint32_t>(std::min<size_t>(threads == 0 ? 1 : threads, n));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // One contiguous [begin, end) chunk per worker. Owners pop from the front,
  // thieves take the back half, both under the chunk's mutex; the ranges are
  // small enough (two size_t) that a mutex beats a lock-free deque here and
  // keeps the invariant trivial: every index is handed out exactly once.
  struct Chunk {
    std::mutex mu;
    size_t begin = 0;
    size_t end = 0;
  };
  std::vector<Chunk> chunks(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    chunks[w].begin = n * w / workers;
    chunks[w].end = n * (w + 1) / workers;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&](uint32_t self) {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      size_t index = n;  // n = sentinel for "own chunk empty"
      {
        std::lock_guard<std::mutex> lock(chunks[self].mu);
        if (chunks[self].begin < chunks[self].end) {
          index = chunks[self].begin++;
        }
      }
      if (index == n) {
        // Steal: scan for the victim with the most remaining work, then take
        // the back half of its range into our own (empty) chunk. The scan is
        // racy by design — if the victim drains between scan and steal we
        // just rescan. Seeing every chunk empty only ends THIS worker: a
        // range mid-steal is invisible for an instant, but its thief still
        // runs it, so each index executes exactly once and the join at the
        // bottom waits for all of it.
        uint32_t victim = workers;
        size_t victim_remaining = 0;
        for (uint32_t v = 0; v < workers; ++v) {
          if (v == self) {
            continue;
          }
          std::lock_guard<std::mutex> lock(chunks[v].mu);
          const size_t remaining = chunks[v].end - chunks[v].begin;
          if (remaining > victim_remaining) {
            victim_remaining = remaining;
            victim = v;
          }
        }
        if (victim == workers) {
          return;
        }
        size_t steal_begin = 0, steal_end = 0;
        {
          std::lock_guard<std::mutex> lock(chunks[victim].mu);
          const size_t remaining = chunks[victim].end - chunks[victim].begin;
          if (remaining == 0) {
            continue;  // lost the race; rescan
          }
          const size_t take = (remaining + 1) / 2;
          steal_begin = chunks[victim].end - take;
          steal_end = chunks[victim].end;
          chunks[victim].end = steal_begin;
        }
        {
          std::lock_guard<std::mutex> lock(chunks[self].mu);
          chunks[self].begin = steal_begin;
          chunks[self].end = steal_end;
        }
        continue;
      }
      try {
        fn(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (uint32_t t = 1; t < workers; ++t) {
    pool.emplace_back(body, t);
  }
  body(0);  // the calling thread is worker 0
  for (auto& th : pool) {
    th.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace sgxb
