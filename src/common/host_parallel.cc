#include "src/common/host_parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sgxb {

uint32_t HostHardwareThreads() {
  const uint32_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(size_t n, uint32_t threads, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const uint32_t workers =
      static_cast<uint32_t>(std::min<size_t>(threads == 0 ? 1 : threads, n));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (uint32_t t = 1; t < workers; ++t) {
    pool.emplace_back(body);
  }
  body();  // the calling thread is worker 0
  for (auto& th : pool) {
    th.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace sgxb
