// Console table printer used by the benchmark binaries so every figure/table
// reproduction prints aligned, diff-friendly rows.

#ifndef SGXBOUNDS_SRC_COMMON_TABLE_H_
#define SGXBOUNDS_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace sgxb {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Inserts a horizontal separator before the next row.
  void AddSeparator();

  // Renders with column alignment. First column left-aligned, the rest
  // right-aligned (numbers).
  std::string ToString() const;
  void Print() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_TABLE_H_
