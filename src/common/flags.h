// Tiny command-line flag parser for the benchmark and example binaries.
//
//   FlagParser parser;
//   int threads = 8;
//   parser.AddInt("threads", &threads, "worker thread count");
//   parser.Parse(argc, argv);   // accepts --threads=4 and --threads 4
//
// Unknown flags abort with usage text; positional arguments are collected.

#ifndef SGXBOUNDS_SRC_COMMON_FLAGS_H_
#define SGXBOUNDS_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sgxb {

class FlagParser {
 public:
  void AddInt(const std::string& name, int64_t* target, const std::string& help);
  void AddUint(const std::string& name, uint64_t* target, const std::string& help);
  void AddDouble(const std::string& name, double* target, const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target, const std::string& help);

  // Enum-valued string flag: the value must be one of `choices`; anything
  // else is a hard startup error listing the valid spellings.
  void AddChoice(const std::string& name, std::string* target,
                 std::vector<std::string> choices, const std::string& help);

  // Custom-parsed flag: `parse` receives the raw value and returns false to
  // reject it (same error path as a malformed int). `default_display` is
  // shown in --help. When `choices` is non-empty the rejection error lists
  // them (the parser itself still decides validity).
  void AddCallback(const std::string& name, std::function<bool(const std::string&)> parse,
                   const std::string& help, const std::string& default_display,
                   std::vector<std::string> choices = {});

  // Returns positional (non-flag) arguments. Exits on --help or parse errors.
  std::vector<std::string> Parse(int argc, char** argv);

  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kUint, kDouble, kBool, kString, kChoice, kCallback };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_value;
    std::function<bool(const std::string&)> parse;
    std::vector<std::string> choices;
  };

  const Flag* Find(const std::string& name) const;
  static bool SetValue(const Flag& flag, const std::string& value);

  std::vector<Flag> flags_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_FLAGS_H_
