// Small statistics helpers for benchmark reporting: running mean/min/max,
// geometric mean (the paper reports "gmean" across benchmarks), percentiles
// for latency distributions, and overhead formatting.

#ifndef SGXBOUNDS_SRC_COMMON_STATS_H_
#define SGXBOUNDS_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sgxb {

class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  // Sample standard deviation (Welford).
  double stddev() const;

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Mergeable log-bucket latency histogram (DDSketch-flavoured): values map to
// geometrically spaced buckets with exact integer counts, so any quantile
// comes back with bounded relative error (<= `kGamma - 1` ≈ 2%) and two
// histograms recorded independently merge into exactly the histogram of the
// combined stream — which is what lets the farm accumulate per-shard request
// latencies host-parallel and still report deterministic fleet p50/p99/p999.
//
// Values are nonnegative integers (simulated cycles). Zero gets its own
// exact bucket; everything else lands in bucket floor(log_gamma(v)).
//
// Timeout semantics: an open-loop run with per-request deadlines produces
// requests that never complete. Recording nothing for them silently deflates
// the tail quantiles (a hung shard would *improve* reported p999), so
// timeouts are first-class: AddTimeout(deadline) counts the request and
// remembers the largest client deadline observed. Quantile()/P99()/... keep
// their historical meaning and EXCLUDE timeouts (quantiles of completed
// requests only); CappedQuantile() INCLUDES each timeout as a sample capped
// at the deadline — a lower bound on the true quantile, which is the honest
// choice for availability reporting. Digest() covers the timeout counters
// only when they are nonzero, so histograms without timeouts keep their
// pre-existing digests bit for bit.
class LatencyHistogram {
 public:
  // Bucket boundaries grow by kGamma per bucket: relative quantile error is
  // at most (kGamma - 1) / (kGamma + 1) one-sided, < 2% reported value.
  static constexpr double kGamma = 1.04;

  void Add(uint64_t value, uint64_t count = 1);
  // Records `count` requests that hit their deadline of `deadline` cycles
  // without completing. Excluded from Quantile(); capped into
  // CappedQuantile(); never touches min/max/mean of completed samples.
  void AddTimeout(uint64_t deadline, uint64_t count = 1);
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return total_; }
  uint64_t timeout_count() const { return timeouts_; }
  // Largest deadline recorded via AddTimeout (0 when none).
  uint64_t timeout_deadline() const { return timeout_deadline_; }
  uint64_t min() const { return total_ == 0 ? 0 : min_; }
  uint64_t max() const { return total_ == 0 ? 0 : max_; }
  double mean() const { return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_); }

  // q in [0, 1]. Returns the representative value (geometric bucket
  // midpoint, clamped to observed min/max) of the bucket holding the
  // ceil(q * count)-th smallest sample; 0 for an empty histogram.
  double Quantile(double q) const;

  double P50() const { return Quantile(0.50); }
  double P99() const { return Quantile(0.99); }
  double P999() const { return Quantile(0.999); }

  // Quantile over completed samples PLUS timed-out requests, each counted as
  // a sample at its deadline (the largest recorded one). Reads at or above
  // the timeout mass return the deadline — "p99 >= 111 us (timed out)".
  double CappedQuantile(double q) const;

  // FNV-1a over (bucket index, count) pairs + totals: the digest the farm
  // smoke test pins across worker-thread counts.
  uint64_t Digest() const;

 private:
  static uint32_t BucketOf(uint64_t value);
  static double BucketRep(uint32_t bucket);

  std::vector<uint64_t> buckets_;  // [0] = exact zeros; [i] = gamma^(i-1)..gamma^i
  uint64_t total_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
  uint64_t timeouts_ = 0;          // requests that never completed
  uint64_t timeout_deadline_ = 0;  // max deadline seen by AddTimeout
};

// Geometric mean of strictly positive values; returns 0 for an empty input.
double GeoMean(const std::vector<double>& values);

// p in [0, 100]; linear interpolation between closest ranks. Sorts a copy.
double Percentile(std::vector<double> values, double p);

// Formats a ratio as the paper does: "1.17x" or "17%" style strings.
std::string FormatRatio(double ratio);
std::string FormatOverheadPercent(double ratio);

// Human-readable byte counts ("71.6 MB").
std::string FormatBytes(uint64_t bytes);

// Fixed-point helper, e.g. FormatDouble(3.14159, 2) -> "3.14".
std::string FormatDouble(double value, int decimals);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_STATS_H_
