// Small statistics helpers for benchmark reporting: running mean/min/max,
// geometric mean (the paper reports "gmean" across benchmarks), percentiles
// for latency distributions, and overhead formatting.

#ifndef SGXBOUNDS_SRC_COMMON_STATS_H_
#define SGXBOUNDS_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sgxb {

class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  // Sample standard deviation (Welford).
  double stddev() const;

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Geometric mean of strictly positive values; returns 0 for an empty input.
double GeoMean(const std::vector<double>& values);

// p in [0, 100]; linear interpolation between closest ranks. Sorts a copy.
double Percentile(std::vector<double> values, double p);

// Formats a ratio as the paper does: "1.17x" or "17%" style strings.
std::string FormatRatio(double ratio);
std::string FormatOverheadPercent(double ratio);

// Human-readable byte counts ("71.6 MB").
std::string FormatBytes(uint64_t bytes);

// Fixed-point helper, e.g. FormatDouble(3.14159, 2) -> "3.14".
std::string FormatDouble(double value, int decimals);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_STATS_H_
