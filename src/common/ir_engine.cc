#include "src/common/ir_engine.h"

namespace sgxb {

IrEngine& DefaultIrEngine() {
  static IrEngine engine = IrEngine::kThreaded;
  return engine;
}

bool ParseIrEngine(const std::string& text, IrEngine* out) {
  if (text == "reference") {
    *out = IrEngine::kReference;
    return true;
  }
  if (text == "threaded") {
    *out = IrEngine::kThreaded;
    return true;
  }
  if (text == "jit") {
    *out = IrEngine::kJit;
    return true;
  }
  return false;
}

const char* IrEngineName(IrEngine engine) {
  switch (engine) {
    case IrEngine::kDefault:
      return "default";
    case IrEngine::kReference:
      return "reference";
    case IrEngine::kThreaded:
      return "threaded";
    case IrEngine::kJit:
      return "jit";
  }
  return "?";
}

IrExecStats& GlobalIrExecStats() {
  static IrExecStats stats;
  return stats;
}

}  // namespace sgxb
