#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace sgxb {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // 128-bit multiply-shift: unbiased enough for simulation purposes.
  const unsigned __int128 product = static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_gaussian_ = true;
  return u * factor;
}

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  CHECK_GT(n, 0u);
  // Approximate inverse-CDF sampling; exact Zipf is irrelevant for the
  // experiments, skew is what matters.
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = std::pow(static_cast<double>(n), 1.0 - theta) / (1.0 - theta);
  const double u = NextDouble();
  const double uz = u * zetan;
  double rank = std::pow(uz * (1.0 - theta), alpha);
  if (rank >= static_cast<double>(n)) {
    rank = static_cast<double>(n - 1);
  }
  return static_cast<uint64_t>(rank);
}

std::string Rng::NextKey(size_t len) {
  std::string out(len, 'a');
  for (auto& c : out) {
    c = static_cast<char>('a' + NextBounded(26));
  }
  return out;
}

}  // namespace sgxb
