// Process-wide selection of the IR execution engine (see src/ir/exec/).
//
// Lives in src/common (not src/ir) so the policy/run layer can plumb an
// engine choice through PolicyOptions without depending on the IR library:
// the enum is plain data, and the flag default is a process-global that the
// bench driver sets from --ir_engine.
//
//   kReference  the original per-instruction switch interpreter - the
//               differential oracle (tests compare against it);
//   kThreaded   the pre-decoded micro-op engine with direct-threaded
//               dispatch - same simulated results, faster host execution;
//   kJit        the template JIT: decoded micro-op streams assembled to
//               native x86-64 (src/ir/exec/jit/) - same simulated results
//               again; falls back to kThreaded where executable memory is
//               unavailable;
//   kDefault    "whatever the process default is" (kThreaded unless
//               --ir_engine was passed).

#ifndef SGXBOUNDS_SRC_COMMON_IR_ENGINE_H_
#define SGXBOUNDS_SRC_COMMON_IR_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace sgxb {

enum class IrEngine : uint8_t { kDefault = 0, kReference, kThreaded, kJit };

// The process default used wherever kDefault is requested. Initially
// kThreaded; mutated (once, at flag-parse time) by --ir_engine.
IrEngine& DefaultIrEngine();

// Maps kDefault to the process default; identity otherwise.
inline IrEngine ResolveIrEngine(IrEngine engine) {
  return engine == IrEngine::kDefault ? DefaultIrEngine() : engine;
}

// Parses "reference"/"threaded"/"jit"; returns false on anything else.
bool ParseIrEngine(const std::string& text, IrEngine* out);

const char* IrEngineName(IrEngine engine);

// Process-wide decode/compile cache statistics, aggregated across every
// Interpreter instance (each holds its own caches, but --selftime wants one
// per-run summary). Atomics: bench drivers run jobs host-parallel.
struct IrExecStats {
  std::atomic<uint64_t> decode_hits{0};
  std::atomic<uint64_t> decode_misses{0};
  std::atomic<uint64_t> jit_hits{0};
  std::atomic<uint64_t> jit_compiles{0};
  std::atomic<uint64_t> jit_compiled_bytes{0};
  std::atomic<uint64_t> jit_compile_ns{0};
  std::atomic<uint64_t> jit_noexec_fallbacks{0};
};

IrExecStats& GlobalIrExecStats();

// Plain-value snapshot for printing.
struct IrExecStatsSnapshot {
  uint64_t decode_hits = 0;
  uint64_t decode_misses = 0;
  uint64_t jit_hits = 0;
  uint64_t jit_compiles = 0;
  uint64_t jit_compiled_bytes = 0;
  uint64_t jit_compile_ns = 0;
  uint64_t jit_noexec_fallbacks = 0;
};

inline IrExecStatsSnapshot SnapshotIrExecStats() {
  IrExecStats& s = GlobalIrExecStats();
  IrExecStatsSnapshot out;
  out.decode_hits = s.decode_hits.load(std::memory_order_relaxed);
  out.decode_misses = s.decode_misses.load(std::memory_order_relaxed);
  out.jit_hits = s.jit_hits.load(std::memory_order_relaxed);
  out.jit_compiles = s.jit_compiles.load(std::memory_order_relaxed);
  out.jit_compiled_bytes = s.jit_compiled_bytes.load(std::memory_order_relaxed);
  out.jit_compile_ns = s.jit_compile_ns.load(std::memory_order_relaxed);
  out.jit_noexec_fallbacks = s.jit_noexec_fallbacks.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_IR_ENGINE_H_
