// Process-wide selection of the IR execution engine (see src/ir/exec/).
//
// Lives in src/common (not src/ir) so the policy/run layer can plumb an
// engine choice through PolicyOptions without depending on the IR library:
// the enum is plain data, and the flag default is a process-global that the
// bench driver sets from --ir_engine.
//
//   kReference  the original per-instruction switch interpreter - the
//               differential oracle (tests compare against it);
//   kThreaded   the pre-decoded micro-op engine with direct-threaded
//               dispatch - same simulated results, faster host execution;
//   kDefault    "whatever the process default is" (kThreaded unless
//               --ir_engine=reference was passed).

#ifndef SGXBOUNDS_SRC_COMMON_IR_ENGINE_H_
#define SGXBOUNDS_SRC_COMMON_IR_ENGINE_H_

#include <cstdint>
#include <string>

namespace sgxb {

enum class IrEngine : uint8_t { kDefault = 0, kReference, kThreaded };

// The process default used wherever kDefault is requested. Initially
// kThreaded; mutated (once, at flag-parse time) by --ir_engine.
IrEngine& DefaultIrEngine();

// Maps kDefault to the process default; identity otherwise.
inline IrEngine ResolveIrEngine(IrEngine engine) {
  return engine == IrEngine::kDefault ? DefaultIrEngine() : engine;
}

// Parses "reference"/"threaded"; returns false on anything else.
bool ParseIrEngine(const std::string& text, IrEngine* out);

const char* IrEngineName(IrEngine engine);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_COMMON_IR_ENGINE_H_
