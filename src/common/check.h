// Lightweight assertion and fatal-error macros used across the project.
//
// CHECK(cond)      - always-on invariant check; aborts with a message on failure.
// CHECK_xx(a, b)   - binary comparison variants that print both operands.
// DCHECK(cond)     - debug-only variant (compiled out in NDEBUG builds).
// FATAL(msg)       - unconditional abort with a message.
//
// These are deliberately minimal: no streaming of arbitrary state, no
// stack-trace machinery. The project is a simulator, so a failed CHECK means a
// logic bug, and the file:line is enough to find it.

#ifndef SGXBOUNDS_SRC_COMMON_CHECK_H_
#define SGXBOUNDS_SRC_COMMON_CHECK_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sgxb {

[[noreturn]] void FatalError(const char* file, int line, const std::string& message);

namespace internal {

template <typename A, typename B>
std::string FormatBinaryCheck(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " (lhs=" << a << ", rhs=" << b << ")";
  return os.str();
}

}  // namespace internal

}  // namespace sgxb

#define SGXB_STRINGIFY_INNER(x) #x
#define SGXB_STRINGIFY(x) SGXB_STRINGIFY_INNER(x)

#define CHECK(cond)                                                             \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::sgxb::FatalError(__FILE__, __LINE__, "CHECK failed: " #cond);           \
    }                                                                           \
  } while (0)

#define SGXB_CHECK_OP(op, a, b)                                                 \
  do {                                                                          \
    const auto& sgxb_check_a = (a);                                             \
    const auto& sgxb_check_b = (b);                                             \
    if (!(sgxb_check_a op sgxb_check_b)) {                                      \
      ::sgxb::FatalError(__FILE__, __LINE__,                                    \
                         ::sgxb::internal::FormatBinaryCheck(                   \
                             #a " " #op " " #b, sgxb_check_a, sgxb_check_b));   \
    }                                                                           \
  } while (0)

#define CHECK_EQ(a, b) SGXB_CHECK_OP(==, a, b)
#define CHECK_NE(a, b) SGXB_CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) SGXB_CHECK_OP(<, a, b)
#define CHECK_LE(a, b) SGXB_CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) SGXB_CHECK_OP(>, a, b)
#define CHECK_GE(a, b) SGXB_CHECK_OP(>=, a, b)

#define FATAL(msg) ::sgxb::FatalError(__FILE__, __LINE__, (msg))

#ifdef NDEBUG
#define DCHECK(cond) \
  do {               \
  } while (0)
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // SGXBOUNDS_SRC_COMMON_CHECK_H_
