// AddressSanitizer-style runtime (paper SS2.2, SS5.2), rebuilt inside the
// simulated enclave as the software baseline.
//
// Faithful mechanisms:
//   * shadow memory at 1/8 scale over the whole 32-bit enclave space: a
//     512 MiB region reserved at startup (the paper forces ASan's 32-bit
//     mode for SGX, which carves exactly 512 MiB);
//   * size-scaled redzones around every object, poisoned in shadow;
//   * a byte-granular shadow encoding (0 = addressable, 1..7 = partially
//     addressable, >=0x80 = poisoned) checked before every access;
//   * a FIFO quarantine that delays reuse of freed blocks (the reason
//     swaptions blows up to 413 MB in the paper).
//
// Every shadow read/write is charged as metadata traffic into the simulated
// cache/EPC hierarchy - that traffic, landing far from the data it shadows,
// is what breaks cache locality and causes ASan's EPC thrashing in Figs. 8
// and 11.

#ifndef SGXBOUNDS_SRC_ASAN_ASAN_RUNTIME_H_
#define SGXBOUNDS_SRC_ASAN_ASAN_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/runtime/heap.h"

namespace sgxb {

struct AsanConfig {
  // Shadow scale: 1 shadow byte covers 2^scale app bytes (ASan default 3).
  uint32_t shadow_scale = 3;
  // Quarantine capacity; freed blocks are only recycled after eviction.
  // (Real ASan defaults to 256 MiB; inside a 94 MiB-EPC enclave the paper's
  // blow-ups appear long before that.)
  uint64_t quarantine_bytes = 64 * kMiB;
  // Left redzone minimum; right redzone computed per allocation size.
  uint32_t min_redzone = 16;
};

struct AsanStats {
  uint64_t mallocs = 0;
  uint64_t frees = 0;
  uint64_t quarantine_bytes_held = 0;
  uint64_t quarantine_evictions = 0;
  uint64_t shadow_checks = 0;
  uint64_t reports = 0;
};

class AsanRuntime {
 public:
  static constexpr uint8_t kShadowAddressable = 0x00;
  static constexpr uint8_t kShadowHeapRedzone = 0xfa;
  static constexpr uint8_t kShadowFreed = 0xfd;
  static constexpr uint8_t kShadowGlobalRedzone = 0xf9;
  static constexpr uint8_t kShadowStackRedzone = 0xf1;

  AsanRuntime(Enclave* enclave, Heap* heap, const AsanConfig& config = AsanConfig());

  // --- allocator interceptors -------------------------------------------------

  // Returns the user address (redzones hidden on both sides).
  uint32_t Malloc(Cpu& cpu, uint32_t size);
  void Free(Cpu& cpu, uint32_t addr);

  // Registers a non-heap object (global or stack) with surrounding redzones.
  // The caller provides storage that already includes the redzones:
  // [base, base+left_rz) and [base+left_rz+size, ...) get poisoned.
  void RegisterObject(Cpu& cpu, uint32_t user_addr, uint32_t size, uint8_t redzone_magic);

  // --- the instrumented check --------------------------------------------------

  // Shadow lookup before an access; throws SimTrap(kAsanReport) on poisoned
  // shadow. `fatal=false` turns the report into a return value (used by the
  // RIPE harness to count detections without unwinding). Inline so the common
  // shape — a word access inside one fully-addressable granule — resolves
  // without a call; anything else drops to the granule-walk slow path.
  bool CheckAccess(Cpu& cpu, uint32_t addr, uint32_t size, bool is_write, bool fatal = true) {
    (void)is_write;
    ++stats_.shadow_checks;
    ++cpu.counters().bounds_checks;
    // The instrumentation sequence: shadow = *(base + (addr >> 3)); test the
    // granule byte; branch to the slow path for partial granules; branch on
    // the verdict (ASan emits two conditional branches per check).
    cpu.Alu(3);
    const uint32_t saddr = ShadowAddr(addr);
    enclave_->pages().Commit(&cpu, saddr, (size >> config_.shadow_scale) + 1);
    cpu.MemAccess(saddr, (size >> config_.shadow_scale) + 1, AccessClass::kMetadataLoad);
    cpu.Branch(2);
    const uint32_t granule_mask = (1u << config_.shadow_scale) - 1;
    const uint8_t* shadow_ptr = enclave_->space().HostPtr(saddr);
    if (*shadow_ptr == kShadowAddressable && ((addr ^ (addr + size - 1)) & ~granule_mask) == 0) {
      return true;
    }
    return CheckAccessSlow(cpu, addr, size, fatal, shadow_ptr);
  }

  // --- shadow primitives (used by interceptors and tests) ---------------------

  void PoisonRegion(Cpu& cpu, uint32_t addr, uint32_t size, uint8_t magic);
  void UnpoisonRegion(Cpu& cpu, uint32_t addr, uint32_t size);
  uint8_t ShadowByte(uint32_t addr) const;

  // Redzone sizing, exposed for tests: grows with allocation size, clamped
  // to [min_redzone, 2048].
  uint32_t RedzoneFor(uint32_t size) const;

  uint32_t shadow_base() const { return shadow_base_; }
  const AsanStats& stats() const { return stats_; }

  // Fault campaigns (src/fault): flips one RNG-chosen bit of the shadow byte
  // covering an RNG-chosen address in the allocated heap span (charged
  // metadata load + store). A flip can fabricate a poison value (false
  // report) or clear one (missed report). Returns false on an empty heap.
  bool CorruptShadow(Cpu& cpu, Rng& rng) {
    const uint64_t span = heap_->used_bytes();
    if (span == 0) {
      return false;
    }
    const uint32_t addr = heap_->base() + static_cast<uint32_t>(rng.NextBounded(span));
    const uint32_t saddr = ShadowAddr(addr);
    enclave_->pages().Commit(&cpu, saddr, 1);
    const uint8_t byte = enclave_->Load<uint8_t>(cpu, saddr, AccessClass::kMetadataLoad);
    const uint8_t flipped = byte ^ static_cast<uint8_t>(1u << rng.NextBounded(8));
    enclave_->Store<uint8_t>(cpu, saddr, flipped, AccessClass::kMetadataStore);
    return true;
  }

 private:
  uint32_t ShadowAddr(uint32_t addr) const { return shadow_base_ + (addr >> config_.shadow_scale); }
  // Granule-by-granule poison walk for partial granules and poisoned shadow;
  // `shadow_ptr` is the host byte for the access's first granule.
  bool CheckAccessSlow(Cpu& cpu, uint32_t addr, uint32_t size, bool fatal,
                       const uint8_t* shadow_ptr);
  void WriteShadow(Cpu& cpu, uint32_t addr, uint32_t size, uint8_t value);
  void MaybeEvictQuarantine(Cpu& cpu);

  struct QuarantinedBlock {
    uint32_t base;   // block base including redzones
    uint32_t user;   // user address
    uint32_t bytes;  // full block size
  };

  Enclave* enclave_;
  Heap* heap_;
  AsanConfig config_;
  uint32_t shadow_base_;
  AsanStats stats_;
  std::deque<QuarantinedBlock> quarantine_;
  // user addr -> (block base, user size); host-side allocator metadata,
  // exact-key lookups only.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> live_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_ASAN_ASAN_RUNTIME_H_
