#include "src/asan/asan_runtime.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace sgxb {

AsanRuntime::AsanRuntime(Enclave* enclave, Heap* heap, const AsanConfig& config)
    : enclave_(enclave), heap_(heap), config_(config) {
  // 32-bit mode: shadow covers the whole space at 1/8 scale = 512 MiB for a
  // 4 GiB space, reserved up-front (counts fully toward virtual memory, as
  // the paper's Fig. 7 memory panel shows). Shadow pages commit on demand.
  const uint64_t shadow_bytes = enclave_->pages().space_bytes() >> config_.shadow_scale;
  shadow_base_ = enclave_->pages().ReserveHigh(shadow_bytes, "asan-shadow", VmAccounting::kFull);
}

uint32_t AsanRuntime::RedzoneFor(uint32_t size) const {
  uint32_t rz = config_.min_redzone;
  if (size >= 128) {
    rz = 32;
  }
  if (size >= 512) {
    rz = 64;
  }
  if (size >= 4096) {
    rz = 128;
  }
  if (size >= 64 * 1024) {
    rz = 256;
  }
  if (size >= 512 * 1024) {
    rz = 1024;
  }
  if (size >= 4 * 1024 * 1024) {
    rz = 2048;
  }
  return rz;
}

void AsanRuntime::WriteShadow(Cpu& cpu, uint32_t addr, uint32_t size, uint8_t value) {
  if (size == 0) {
    return;
  }
  const uint32_t granule = 1u << config_.shadow_scale;
  const uint32_t first = ShadowAddr(addr);
  const uint32_t last = ShadowAddr(addr + size - 1);
  const uint32_t bytes = last - first + 1;
  enclave_->pages().Commit(&cpu, first, bytes);
  // One metadata store covering the shadow range (line-granular charge).
  cpu.MemAccess(first, bytes, AccessClass::kMetadataStore);
  std::memset(enclave_->space().HostPtr(first), value, bytes);
  // Partially-addressable last granule when unpoisoning an unaligned tail.
  if (value == kShadowAddressable) {
    const uint32_t tail = (addr + size) & (granule - 1);
    if (tail != 0) {
      *enclave_->space().HostPtr(last) = static_cast<uint8_t>(tail);
    }
  }
}

void AsanRuntime::PoisonRegion(Cpu& cpu, uint32_t addr, uint32_t size, uint8_t magic) {
  WriteShadow(cpu, addr, size, magic);
}

void AsanRuntime::UnpoisonRegion(Cpu& cpu, uint32_t addr, uint32_t size) {
  WriteShadow(cpu, addr, size, kShadowAddressable);
}

uint8_t AsanRuntime::ShadowByte(uint32_t addr) const {
  return *enclave_->space().HostPtr(ShadowAddr(addr));
}

uint32_t AsanRuntime::Malloc(Cpu& cpu, uint32_t size) {
  const uint32_t rz = RedzoneFor(size);
  // Layout: [left rz][user][right rz]; granule-align the user size so shadow
  // poisoning is exact.
  const uint32_t granule = 1u << config_.shadow_scale;
  const uint32_t user_span = AlignUp(size, granule);
  const uint32_t total = rz + user_span + rz;
  const uint32_t base = heap_->Alloc(cpu, total, granule * 2);
  const uint32_t user = base + rz;
  PoisonRegion(cpu, base, rz, kShadowHeapRedzone);
  UnpoisonRegion(cpu, user, size);
  if (user_span > size) {
    PoisonRegion(cpu, user + user_span, 0, kShadowHeapRedzone);  // no-op guard
  }
  PoisonRegion(cpu, user + user_span, total - rz - user_span, kShadowHeapRedzone);
  live_[user] = {base, size};
  ++stats_.mallocs;
  return user;
}

void AsanRuntime::Free(Cpu& cpu, uint32_t addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    // Double free / invalid free: ASan reports it.
    ++stats_.reports;
    throw SimTrap(TrapKind::kAsanReport, addr, "invalid or double free");
  }
  const uint32_t base = it->second.first;
  const uint32_t size = it->second.second;
  live_.erase(it);
  ++stats_.frees;
  // Poison the whole block and park it in quarantine: memory is NOT reused
  // until eviction, which is what defeats allocator locality in the paper.
  PoisonRegion(cpu, addr, size, kShadowFreed);
  const uint32_t block_bytes = heap_->BlockSize(base);
  quarantine_.push_back({base, addr, block_bytes});
  stats_.quarantine_bytes_held += block_bytes;
  MaybeEvictQuarantine(cpu);
}

void AsanRuntime::MaybeEvictQuarantine(Cpu& cpu) {
  while (stats_.quarantine_bytes_held > config_.quarantine_bytes && !quarantine_.empty()) {
    const QuarantinedBlock block = quarantine_.front();
    quarantine_.pop_front();
    stats_.quarantine_bytes_held -= block.bytes;
    heap_->Free(cpu, block.base);
    ++stats_.quarantine_evictions;
  }
}

void AsanRuntime::RegisterObject(Cpu& cpu, uint32_t user_addr, uint32_t size,
                                 uint8_t redzone_magic) {
  const uint32_t rz = RedzoneFor(size);
  PoisonRegion(cpu, user_addr - rz, rz, redzone_magic);
  UnpoisonRegion(cpu, user_addr, size);
  PoisonRegion(cpu, user_addr + AlignUp(size, 1u << config_.shadow_scale), rz, redzone_magic);
}

bool AsanRuntime::CheckAccessSlow(Cpu& cpu, uint32_t addr, uint32_t size, bool fatal,
                                  const uint8_t* shadow_ptr) {
  const uint32_t granule = 1u << config_.shadow_scale;
  bool bad = false;
  // Check first and last granule precisely, interior granules for poison.
  // Shadow bytes for consecutive granules are host-contiguous, so walk the
  // host pointer directly instead of recomputing ShadowAddr per granule.
  for (uint32_t a = addr & ~(granule - 1); a < addr + size; a += granule, ++shadow_ptr) {
    const uint8_t shadow = *shadow_ptr;
    if (shadow == kShadowAddressable) {
      continue;
    }
    if (shadow < 8) {
      // Partially addressable granule: bytes [0, shadow) are valid.
      const uint32_t begin = std::max(a, addr);
      const uint32_t end = std::min(a + granule, addr + size);
      if (end - a > shadow || begin - a >= shadow) {
        bad = true;
        break;
      }
      continue;
    }
    bad = true;
    break;
  }
  if (!bad) {
    return true;
  }
  ++stats_.reports;
  ++cpu.counters().bounds_violations;
  if (fatal) {
    throw SimTrap(TrapKind::kAsanReport, addr, "poisoned shadow (redzone or freed object)");
  }
  return false;
}

}  // namespace sgxb
