#include "src/mpx/mpx_runtime.h"

#include <cstring>

#include "src/common/check.h"

namespace sgxb {

MpxRuntime::MpxRuntime(Enclave* enclave) : enclave_(enclave) {
  // 32 KiB Bounds Directory, mapped at startup (SS5.2).
  bd_base_ = enclave_->pages().ReserveHigh(4096 * kBdEntryBytes, "mpx-bd", VmAccounting::kFull);
  enclave_->pages().Commit(nullptr, bd_base_, 4096 * kBdEntryBytes);
  spill_base_ = enclave_->pages().ReserveHigh(kPageSize, "mpx-spill", VmAccounting::kFull);
  enclave_->pages().Commit(nullptr, spill_base_, kPageSize);
}

MpxBounds MpxRuntime::BndMk(Cpu& cpu, uint32_t base, uint32_t size) {
  ++stats_.bndmk;
  cpu.Alu(1);
  return MpxBounds{base, base + size};
}

bool MpxRuntime::BndCheckFail(Cpu& cpu, uint32_t addr, bool fatal) {
  ++stats_.violations;
  ++cpu.counters().bounds_violations;
  if (fatal) {
    throw SimTrap(TrapKind::kMpxBoundRange, addr, "#BR bound range exceeded");
  }
  return false;
}

uint32_t MpxRuntime::BtFor(Cpu& cpu, uint32_t ptr_loc, bool allocate) {
  const uint32_t bd_index = ptr_loc >> kBdIndexShift;
  // The BD entry read is part of every bndldx/bndstx.
  const uint32_t bd_entry = bd_base_ + bd_index * kBdEntryBytes;
  cpu.MemAccess(bd_entry, kBdEntryBytes, AccessClass::kMetadataLoad);
  auto it = bt_bases_.find(bd_index);
  if (it != bt_bases_.end()) {
    return it->second;
  }
  if (!allocate) {
    return 0;
  }
  // #BR fault -> in-enclave BT allocation (SS5.2): reserve 4 MiB of enclave
  // address space; pages commit as entries are touched. The reservation
  // itself counts fully toward virtual memory, like the kernel's mmap would.
  const uint32_t bt_base =
      enclave_->pages().ReserveLow(kBtBytes, "mpx-bt", VmAccounting::kFull);
  ++stats_.bt_allocs;
  // Fault forwarding + allocation logic; rare, so a fixed charge suffices.
  cpu.Charge(6000);
  cpu.MemAccess(bd_entry, kBdEntryBytes, AccessClass::kMetadataStore);
  bt_bases_.emplace(bd_index, bt_base);
  return bt_base;
}

// Instruction overhead of the bndldx/bndstx microcoded address translation
// (index math + two dependent table references beyond the memory traffic
// charged below; measured latencies are tens of cycles, see the authors'
// "Intel MPX Explained" report).
constexpr uint32_t kTableWalkCycles = 50;

void MpxRuntime::BndStx(Cpu& cpu, uint32_t ptr_loc, uint32_t ptr_value, const MpxBounds& bounds) {
  ++stats_.bndstx;
  cpu.Charge(kTableWalkCycles);
  cpu.Alu(4);
  const uint32_t bt_base = BtFor(cpu, ptr_loc, /*allocate=*/true);
  const uint32_t entry = BtEntryAddr(bt_base, ptr_loc);
  enclave_->pages().Commit(&cpu, entry, kBtEntryBytes);
  cpu.MemAccess(entry, kBtEntryBytes, AccessClass::kMetadataStore);
  auto* host = enclave_->space().HostPtr(entry);
  uint32_t words[4] = {bounds.lb, bounds.ub, ptr_value, 0};
  std::memcpy(host, words, sizeof(words));
  if (track_entries_ && entry_seen_.insert(entry).second) {
    entry_addrs_.push_back(entry);
  }
  RegInsert(cpu, ptr_loc, bounds);
}

MpxBounds MpxRuntime::BndLdx(Cpu& cpu, uint32_t ptr_loc, uint32_t ptr_value) {
  ++stats_.bndldx;
  cpu.Charge(kTableWalkCycles);
  cpu.Alu(4);
  const uint32_t bt_base = BtFor(cpu, ptr_loc, /*allocate=*/false);
  if (bt_base == 0) {
    // No table: INIT bounds (pointer never stored with bndstx).
    ++stats_.value_mismatches;
    return MpxBounds{};
  }
  const uint32_t entry = BtEntryAddr(bt_base, ptr_loc);
  if (!enclave_->pages().Committed(entry)) {
    ++stats_.value_mismatches;
    return MpxBounds{};
  }
  cpu.MemAccess(entry, kBtEntryBytes, AccessClass::kMetadataLoad);
  uint32_t words[4];
  std::memcpy(words, enclave_->space().HostPtr(entry), sizeof(words));
  cpu.Alu(1);  // pointer-value comparison
  if (words[2] != ptr_value) {
    // Stale entry (pointer was overwritten without bndstx, e.g. by
    // uninstrumented libc, or raced by another thread): hardware returns
    // INIT bounds and the access goes unchecked.
    ++stats_.value_mismatches;
    return MpxBounds{};
  }
  const MpxBounds bounds{words[0], words[1]};
  RegInsert(cpu, ptr_loc, bounds);
  return bounds;
}

bool MpxRuntime::RegLookup(uint32_t ptr_loc, MpxBounds* bounds) {
  for (auto& reg : regs_) {
    if (reg.ptr_loc == ptr_loc) {
      reg.stamp = ++reg_tick_;
      *bounds = reg.bounds;
      ++stats_.reg_hits;
      return true;
    }
  }
  return false;
}

void MpxRuntime::RegInsert(Cpu& cpu, uint32_t ptr_loc, const MpxBounds& bounds) {
  RegEntry* victim = &regs_[0];
  for (auto& reg : regs_) {
    if (reg.ptr_loc == ptr_loc) {
      victim = &reg;
      break;
    }
    if (reg.stamp < victim->stamp) {
      victim = &reg;
    }
  }
  if (victim->ptr_loc != 0xffffffffu && victim->ptr_loc != ptr_loc) {
    // bndmov spill of the evicted bounds to the frame's spill slot.
    const uint32_t slot = spill_base_ + (victim - regs_) * 16;
    cpu.Charge(4);
    cpu.MemAccess(slot, 16, AccessClass::kMetadataStore);
  }
  victim->ptr_loc = ptr_loc;
  victim->bounds = bounds;
  victim->stamp = ++reg_tick_;
}

void MpxRuntime::RegInvalidate(uint32_t ptr_loc) {
  for (auto& reg : regs_) {
    if (reg.ptr_loc == ptr_loc) {
      reg.ptr_loc = 0xffffffffu;
      reg.stamp = 0;
    }
  }
}

}  // namespace sgxb
