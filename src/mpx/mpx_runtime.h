// Intel MPX emulation (paper SS2.2, SS5.2), the hardware baseline.
//
// Modeled mechanisms, matching the paper's in-enclave port:
//   * 4 bounds registers (bnd0-3). The compiler keeps bounds of the hottest
//     pointers in registers; we model this with a 4-entry LRU keyed by the
//     pointer's home location, so repeated uses of the same pointer skip
//     table traffic exactly like register-allocated bounds do (this is why
//     matrixmul is free under MPX - 3 arrays, 3 registers, Table 3).
//   * bndmk/bndcl/bndcu: pure ALU cost.
//   * bndldx/bndstx: two-level table walk. 32-bit mode (SS5.2): a 32 KiB
//     Bounds Directory indexed by addr[31:20] (4096 entries x 8 B), and
//     4 MiB Bounds Tables indexed by addr[19:2] (2^18 entries x 16 B:
//     {LB, UB, pointer value, reserved}). BTs are allocated on demand INSIDE
//     the enclave (the paper moves the kernel's BT-allocation logic into the
//     MPX runtime); each allocation reserves 4 MiB of enclave address space,
//     which is how MPX exhausts memory on SQLite/dedup/mcf.
//   * The stored-pointer-value check: if the entry's pointer value does not
//     match the loaded pointer, bndldx returns INIT (unbounded) bounds. This
//     faithfully reproduces both MPX escape hatches the paper leans on:
//     pointers stored by uninstrumented libc code are unprotected (RIPE,
//     Table 4), and racy pointer/bounds updates in multithreaded code cause
//     false positives/negatives (SS4.1).

#ifndef SGXBOUNDS_SRC_MPX_MPX_RUNTIME_H_
#define SGXBOUNDS_SRC_MPX_MPX_RUNTIME_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/heap.h"

namespace sgxb {

// A bounds-register value. INIT bounds (lb=0, ub=max) mean "unchecked".
struct MpxBounds {
  uint32_t lb = 0;
  uint32_t ub = 0xffffffffu;

  bool IsInit() const { return lb == 0 && ub == 0xffffffffu; }
};

struct MpxStats {
  uint64_t bndmk = 0;
  uint64_t bndcl_bndcu = 0;
  uint64_t bndldx = 0;
  uint64_t bndstx = 0;
  uint64_t bt_allocs = 0;
  uint64_t value_mismatches = 0;  // bndldx returned INIT due to stale entry
  uint64_t violations = 0;
  uint64_t reg_hits = 0;  // table walk avoided by a bounds register
};

class MpxRuntime {
 public:
  explicit MpxRuntime(Enclave* enclave);

  // bndmk: create bounds for a new object.
  MpxBounds BndMk(Cpu& cpu, uint32_t base, uint32_t size);

  // bndcl + bndcu: check [addr, addr+size) against `bounds`. Throws
  // SimTrap(kMpxBoundRange) unless `fatal` is false (RIPE harness mode).
  // Inline: runs before every MPX-checked access; violations are rare and
  // handled out of line.
  bool BndCheck(Cpu& cpu, const MpxBounds& bounds, uint32_t addr, uint32_t size,
                bool fatal = true) {
    ++stats_.bndcl_bndcu;
    ++cpu.counters().bounds_checks;
    cpu.Alu(3);  // bndcl + bndcu + the duplicated address lea GCC emits
    const bool ok =
        addr >= bounds.lb && static_cast<uint64_t>(addr) + size <= static_cast<uint64_t>(bounds.ub);
    if (ok) {
      return true;
    }
    return BndCheckFail(cpu, addr, fatal);
  }

  // bndstx: associate `bounds` with the pointer stored at `ptr_loc`
  // (the pointer's own value is part of the entry).
  void BndStx(Cpu& cpu, uint32_t ptr_loc, uint32_t ptr_value, const MpxBounds& bounds);

  // bndldx: load the bounds associated with the pointer at `ptr_loc` whose
  // loaded value is `ptr_value`. Returns INIT bounds on empty/stale entries.
  MpxBounds BndLdx(Cpu& cpu, uint32_t ptr_loc, uint32_t ptr_value);

  // Bounds-register file model: returns true (and the bounds) if `ptr_loc`'s
  // bounds currently live in one of the 4 registers.
  bool RegLookup(uint32_t ptr_loc, MpxBounds* bounds);
  // Inserting into a full register file evicts the LRU entry with a bndmov
  // spill to the stack (charged 16 B of metadata traffic) - the register
  // pressure that multiplies MPX's instruction count on pointer-dense code.
  void RegInsert(Cpu& cpu, uint32_t ptr_loc, const MpxBounds& bounds);
  void RegInvalidate(uint32_t ptr_loc);

  uint32_t bt_count() const { return static_cast<uint32_t>(bt_bases_.size()); }
  const MpxStats& stats() const { return stats_; }

  // Fault campaigns (src/fault): when entry tracking is on, every bndstx
  // records its BT entry address so a corruptor can pick a populated entry
  // deterministically. Off by default: normal runs pay nothing.
  void set_track_entries(bool on) { track_entries_ = on; }

  // Flips one RNG-chosen bit in the {LB, UB, pointer value} words of an
  // RNG-chosen populated bounds-table entry (charged metadata load + store).
  // A ptr-value flip silently widens to INIT bounds; an LB/UB flip can
  // fabricate or mask a #BR. Returns false when no entry was ever stored.
  bool CorruptBoundsTable(Cpu& cpu, Rng& rng) {
    if (entry_addrs_.empty()) {
      return false;
    }
    const uint32_t entry = entry_addrs_[rng.NextBounded(entry_addrs_.size())];
    const uint32_t word = entry + 4 * static_cast<uint32_t>(rng.NextBounded(3));
    const uint32_t value = enclave_->Load<uint32_t>(cpu, word, AccessClass::kMetadataLoad);
    const uint32_t flipped = value ^ (1u << rng.NextBounded(32));
    enclave_->Store<uint32_t>(cpu, word, flipped, AccessClass::kMetadataStore);
    return true;
  }

 private:
  static constexpr uint32_t kBdIndexShift = 20;            // addr[31:20]
  static constexpr uint32_t kBdEntryBytes = 8;             // 4096 * 8 = 32 KiB
  static constexpr uint32_t kBtIndexMask = (1u << 18) - 1;  // addr[19:2]
  static constexpr uint32_t kBtEntryBytes = 16;            // 2^18 * 16 = 4 MiB
  static constexpr uint64_t kBtBytes = 4 * kMiB;

  // Violation tail of BndCheck: count it, then trap or report.
  bool BndCheckFail(Cpu& cpu, uint32_t addr, bool fatal);

  // Returns the BT base covering ptr_loc, allocating the table on demand.
  uint32_t BtFor(Cpu& cpu, uint32_t ptr_loc, bool allocate);
  uint32_t BtEntryAddr(uint32_t bt_base, uint32_t ptr_loc) const {
    return bt_base + ((ptr_loc >> 2) & kBtIndexMask) * kBtEntryBytes;
  }

  struct RegEntry {
    uint32_t ptr_loc = 0xffffffffu;
    MpxBounds bounds;
    uint64_t stamp = 0;
  };

  Enclave* enclave_;
  uint32_t bd_base_;
  uint32_t spill_base_;  // the function frame's bounds spill slots
  MpxStats stats_;
  std::unordered_map<uint32_t, uint32_t> bt_bases_;  // BD index -> BT base
  RegEntry regs_[4];
  uint64_t reg_tick_ = 0;
  // Populated-entry index for fault campaigns (insertion-ordered vector for
  // a deterministic RNG pick; set for O(1) dedup).
  bool track_entries_ = false;
  std::vector<uint32_t> entry_addrs_;
  std::unordered_set<uint32_t> entry_seen_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_MPX_MPX_RUNTIME_H_
