#include "src/sim/epc.h"

#include "src/common/check.h"
#include "src/common/units.h"

namespace sgxb {

EpcSim::EpcSim(uint64_t capacity_bytes)
    : capacity_pages_(capacity_bytes / kPageSize), nodes_(kMaxPages, Node{kNotResident, kNil}) {
  CHECK_GT(capacity_pages_, 0u);
}

bool EpcSim::Fault(Node& nd, uint32_t page) {
  ++faults_;
  if (resident_count_ >= capacity_pages_) {
    const uint32_t victim = tail_;
    CHECK_NE(victim, kNil);
    Node& vd = nodes_[victim];
    Unlink(vd);
    vd.prev = kNotResident;
    --resident_count_;
    ++evictions_;
  }
  ++resident_count_;
  PushFront(nd, page);
  return true;
}

bool EpcSim::Resident(uint32_t page) const {
  CHECK_LT(page, kMaxPages);
  return nodes_[page].prev != kNotResident;
}

void EpcSim::Invalidate(uint32_t page) {
  CHECK_LT(page, kMaxPages);
  Node& nd = nodes_[page];
  if (nd.prev == kNotResident) {
    return;
  }
  Unlink(nd);
  nd.prev = kNotResident;
  --resident_count_;
}

void EpcSim::Reset() {
  for (uint32_t page = head_; page != kNil;) {
    Node& nd = nodes_[page];
    const uint32_t next = nd.next;
    nd.prev = kNotResident;
    nd.next = kNil;
    page = next;
  }
  head_ = kNil;
  tail_ = kNil;
  resident_count_ = 0;
  faults_ = 0;
  evictions_ = 0;
}

}  // namespace sgxb
