#include "src/sim/epc.h"

#include "src/common/check.h"
#include "src/common/units.h"

namespace sgxb {

EpcSim::EpcSim(uint64_t capacity_bytes)
    : capacity_pages_(capacity_bytes / kPageSize),
      prev_(kMaxPages, kNil),
      next_(kMaxPages, kNil),
      resident_(kMaxPages, 0) {
  CHECK_GT(capacity_pages_, 0u);
}

void EpcSim::Unlink(uint32_t page) {
  const uint32_t p = prev_[page];
  const uint32_t n = next_[page];
  if (p != kNil) {
    next_[p] = n;
  } else {
    head_ = n;
  }
  if (n != kNil) {
    prev_[n] = p;
  } else {
    tail_ = p;
  }
  prev_[page] = kNil;
  next_[page] = kNil;
}

void EpcSim::PushFront(uint32_t page) {
  prev_[page] = kNil;
  next_[page] = head_;
  if (head_ != kNil) {
    prev_[head_] = page;
  }
  head_ = page;
  if (tail_ == kNil) {
    tail_ = page;
  }
}

bool EpcSim::Touch(uint32_t page) {
  CHECK_LT(page, kMaxPages);
  if (resident_[page]) {
    if (head_ != page) {
      Unlink(page);
      PushFront(page);
    }
    return false;
  }
  ++faults_;
  if (resident_count_ >= capacity_pages_) {
    const uint32_t victim = tail_;
    CHECK_NE(victim, kNil);
    Unlink(victim);
    resident_[victim] = 0;
    --resident_count_;
    ++evictions_;
  }
  resident_[page] = 1;
  ++resident_count_;
  PushFront(page);
  return true;
}

bool EpcSim::Resident(uint32_t page) const {
  CHECK_LT(page, kMaxPages);
  return resident_[page] != 0;
}

void EpcSim::Invalidate(uint32_t page) {
  CHECK_LT(page, kMaxPages);
  if (!resident_[page]) {
    return;
  }
  Unlink(page);
  resident_[page] = 0;
  --resident_count_;
}

void EpcSim::Reset() {
  for (uint32_t page = head_; page != kNil;) {
    const uint32_t next = next_[page];
    resident_[page] = 0;
    prev_[page] = kNil;
    next_[page] = kNil;
    page = next;
  }
  head_ = kNil;
  tail_ = kNil;
  resident_count_ = 0;
  faults_ = 0;
  evictions_ = 0;
}

}  // namespace sgxb
