// Cycle cost table for the simulated machine.
//
// The evaluation in the SGXBounds paper is driven entirely by memory-system
// effects: cache locality of bounds metadata, EPC paging, and the MEE
// encryption overhead of Intel SGX (paper Fig. 2). This cost model assigns a
// cycle price to each event class; the simulator charges these prices while
// executing real workloads over a simulated 32-bit enclave address space.
//
// Absolute numbers are calibrated to commodity Skylake-class latencies; the
// reproduction targets relative shape (ratios between hardened and native
// runs), which is insensitive to modest changes in these constants.

#ifndef SGXBOUNDS_SRC_SIM_COST_MODEL_H_
#define SGXBOUNDS_SRC_SIM_COST_MODEL_H_

#include <cstdint>

namespace sgxb {

struct CostModel {
  // Scalar compute.
  uint32_t alu = 1;        // integer/logic op
  uint32_t branch = 1;     // taken/untaken branch
  uint32_t fp = 2;         // floating-point op
  uint32_t call = 4;       // function-call overhead (libc wrapper, hook)

  // Memory hierarchy hit latencies (per cache-line access).
  uint32_t l1_hit = 4;
  uint32_t l2_hit = 12;
  uint32_t l3_hit = 40;
  uint32_t dram = 150;

  // Intel SGX specifics.
  // Extra cost on an LLC miss served from EPC: the Memory Encryption Engine
  // decrypts the line and verifies integrity (paper SS2.1: "5.5-10x slower"
  // than an L3 hit for a random read).
  uint32_t mee_line = 180;
  // EPC page fault: evict an LRU page (re-encrypt) and load + decrypt the
  // requested one. Paper SS2.1: paging costs 2x for sequential accesses and up
  // to 2000x for random ones; at 64 lines/page this constant lands in that
  // envelope (sequential sweep ~2.5x DRAM cost, random thrash ~200x+).
  uint32_t epc_fault = 30000;
  // Regular (non-enclave) soft page fault for first-touch commits.
  uint32_t minor_fault = 2500;

  // Syscall boundary crossing under shielded execution (SCONE-style
  // asynchronous syscalls; copies are charged separately as memory traffic).
  uint32_t syscall_exit = 3000;
  uint32_t syscall_native = 800;

  // Enclave transition costs (EENTER/EEXIT world switches, after Open
  // Enclave's calls.c/hostcalls.c split). All-zero by default: the axis is
  // off and every existing trace, counter and cost-table id is unchanged.
  // When enabled (EnableTransitions), an ECALL charges `ecall` cycles and
  // every enclave-mode syscall additionally pays an OCALL: `ocall` cycles in
  // synchronous mode, or `switchless_ocall` when `switchless` is set (the
  // request is handed to a spinning host worker without leaving the enclave).
  uint32_t ecall = 0;
  uint32_t ocall = 0;
  uint32_t switchless_ocall = 0;
  uint32_t switchless = 0;  // 0 = synchronous OCALLs, 1 = switchless

  bool TransitionsEnabled() const {
    return (ecall | ocall | switchless_ocall) != 0;
  }
  uint64_t OcallCost() const { return switchless != 0 ? switchless_ocall : ocall; }

  // Turns the transition axis on with calibrated defaults: ~7600 cycles per
  // ECALL and ~8400 per synchronous OCALL (SDK-measured EENTER/EEXIT round
  // trips incl. register scrubbing and stack switch), ~620 cycles for a
  // switchless OCALL (HotCalls-style shared-memory handoff).
  CostModel& EnableTransitions(bool use_switchless = false) {
    ecall = 7600;
    ocall = 8400;
    switchless_ocall = 620;
    switchless = use_switchless ? 1 : 0;
    return *this;
  }
};

// Field-wise equality, used by the sweep engine's memoization key
// (src/trace/sweep.h). Keep in sync with the field list above.
inline bool operator==(const CostModel& a, const CostModel& b) {
  return a.alu == b.alu && a.branch == b.branch && a.fp == b.fp && a.call == b.call &&
         a.l1_hit == b.l1_hit && a.l2_hit == b.l2_hit && a.l3_hit == b.l3_hit &&
         a.dram == b.dram && a.mee_line == b.mee_line && a.epc_fault == b.epc_fault &&
         a.minor_fault == b.minor_fault && a.syscall_exit == b.syscall_exit &&
         a.syscall_native == b.syscall_native && a.ecall == b.ecall && a.ocall == b.ocall &&
         a.switchless_ocall == b.switchless_ocall && a.switchless == b.switchless;
}
inline bool operator!=(const CostModel& a, const CostModel& b) { return !(a == b); }

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_COST_MODEL_H_
