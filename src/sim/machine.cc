#include "src/sim/machine.h"

namespace sgxb {

MemorySystem::MemorySystem(const SimConfig& config)
    : config_(config),
      l3_(config.l3_bytes, config.l3_ways),
      epc_(config.epc_bytes) {}

void MemorySystem::FlushCaches() { l3_.Flush(); }

Cpu::Cpu(MemorySystem* memory)
    : memory_(memory),
      costs_(&memory->costs()),
      l1_(memory->config().l1_bytes, memory->config().l1_ways),
      l2_(memory->config().l2_bytes, memory->config().l2_ways) {}

void Cpu::MissLine(uint32_t line) {
  ++counters_.l1_misses;
  uint64_t cost;
  if (l2_.Access(line)) {
    cost = costs_->l2_hit;
  } else {
    ++counters_.l2_misses;
    cost = memory_->ServiceL2Miss(line, counters_);
  }
  counters_.cycles += cost;
}

void Cpu::MemAccessSpan(uint32_t first_line, uint32_t last_line) {
  for (uint32_t line = first_line;; ++line) {
    ++counters_.l1_accesses;
    if (line == last_l1_line_) {
      l1_.CountMruHit();
      counters_.cycles += costs_->l1_hit;
    } else {
      AccessLine(line);
    }
    if (line == last_line) {
      break;
    }
  }
}

}  // namespace sgxb
