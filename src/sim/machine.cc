#include "src/sim/machine.h"

namespace sgxb {

MemorySystem::MemorySystem(const SimConfig& config)
    : config_(config),
      l3_(config.l3_bytes, config.l3_ways),
      epc_(config.epc_bytes) {}

uint64_t MemorySystem::ServiceL2Miss(uint32_t line, PerfCounters& counters) {
  ++counters.llc_accesses;
  if (l3_.Access(line)) {
    return config_.costs.l3_hit;
  }
  ++counters.llc_misses;
  uint64_t cost = config_.costs.dram;
  if (config_.enclave_mode) {
    const uint32_t page = line >> (kPageShift - kCacheLineShift);
    if (epc_.Touch(page)) {
      ++counters.epc_faults;
      cost += config_.costs.epc_fault;
    }
    cost += config_.costs.mee_line;
  }
  return cost;
}

void MemorySystem::FlushCaches() { l3_.Flush(); }

Cpu::Cpu(MemorySystem* memory)
    : memory_(memory),
      l1_(memory->config().l1_bytes, memory->config().l1_ways),
      l2_(memory->config().l2_bytes, memory->config().l2_ways) {}

void Cpu::MemAccess(uint32_t addr, uint32_t size, AccessClass klass) {
  switch (klass) {
    case AccessClass::kAppLoad:
      ++counters_.loads;
      break;
    case AccessClass::kAppStore:
      ++counters_.stores;
      break;
    case AccessClass::kMetadataLoad:
      ++counters_.metadata_loads;
      break;
    case AccessClass::kMetadataStore:
      ++counters_.metadata_stores;
      break;
  }
  if (size == 0) {
    return;
  }
  const uint32_t first_line = LineOf(addr);
  const uint32_t last_line = LineOf(addr + size - 1);
  for (uint32_t line = first_line;; ++line) {
    ++counters_.l1_accesses;
    uint64_t cost;
    if (l1_.Access(line)) {
      cost = memory_->costs().l1_hit;
    } else {
      ++counters_.l1_misses;
      if (l2_.Access(line)) {
        cost = memory_->costs().l2_hit;
      } else {
        ++counters_.l2_misses;
        cost = memory_->ServiceL2Miss(line, counters_);
      }
    }
    counters_.cycles += cost;
    if (line == last_line) {
      break;
    }
  }
}

}  // namespace sgxb
