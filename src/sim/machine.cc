#include "src/sim/machine.h"

namespace sgxb {

MemorySystem::MemorySystem(const SimConfig& config)
    : config_(config),
      l3_(config.l3_bytes, config.l3_ways),
      epc_(config.epc_bytes) {}

void MemorySystem::FlushCaches() { l3_.Flush(); }

Cpu::Cpu(MemorySystem* memory)
    : memory_(memory),
      costs_(&memory->costs()),
      l1_(memory->config().l1_bytes, memory->config().l1_ways),
      l2_(memory->config().l2_bytes, memory->config().l2_ways) {}

void Cpu::MissLine(uint32_t line) {
  ++counters_.l1_misses;
  uint64_t cost;
  if (l2_.Access(line)) {
    cost = costs_->l2_hit;
  } else {
    ++counters_.l2_misses;
    cost = memory_->ServiceL2Miss(line, counters_);
  }
  counters_.cycles += cost;
}

void Cpu::MemAccessRun(uint32_t addr, uint32_t size, int64_t stride, uint64_t count,
                       AccessClass klass) {
  if (size == 0 || trace_ != nullptr) {
    // Zero-size accesses need MemAccess's early-out, and re-recording a
    // replay must drive the per-access tap. Both are cold paths.
    int64_t a = addr;
    for (uint64_t i = 0; i < count; ++i, a += stride) {
      MemAccess(static_cast<uint32_t>(a), size, klass);
    }
    return;
  }
  int64_t a = addr;
  uint64_t i = 0;
  while (i < count) {
    const uint32_t cur = static_cast<uint32_t>(a);
    const uint32_t first_line = LineOf(cur);
    if (LineOf(cur + size - 1) != first_line) {
      BumpClassCounter(klass);
      MemAccessSpan(first_line, LineOf(cur + size - 1));
      ++i;
      a += stride;
      continue;
    }
    // Extend over the consecutive accesses that stay fully inside this line.
    uint64_t k = 1;
    for (int64_t next = a + stride; i + k < count; next += stride) {
      const uint32_t naddr = static_cast<uint32_t>(next);
      if (LineOf(naddr) != first_line || LineOf(naddr + size - 1) != first_line) {
        break;
      }
      ++k;
    }
    // First access of the group takes the real single-line path...
    BumpClassCounter(klass);
    ++counters_.l1_accesses;
    if (first_line == last_l1_line_) {
      l1_.CountMruHit();
      counters_.cycles += costs_->l1_hit;
    } else {
      AccessLine(first_line);
    }
    // ...after which last_l1_line_ == first_line, so the remaining k-1 are
    // exactly the MRU-hit fast path of MemAccess, batched.
    if (k > 1) {
      BumpClassCounterN(klass, k - 1);
      counters_.l1_accesses += k - 1;
      l1_.CountMruHits(k - 1);
      counters_.cycles += (k - 1) * costs_->l1_hit;
    }
    i += k;
    a += static_cast<int64_t>(k) * stride;
  }
}

void Cpu::MemAccessSpan(uint32_t first_line, uint32_t last_line) {
  for (uint32_t line = first_line;; ++line) {
    ++counters_.l1_accesses;
    if (line == last_l1_line_) {
      l1_.CountMruHit();
      counters_.cycles += costs_->l1_hit;
    } else {
      AccessLine(line);
    }
    if (line == last_line) {
      break;
    }
  }
}

}  // namespace sgxb
