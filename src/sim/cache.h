// Set-associative cache model with true-LRU replacement.
//
// Operates on cache-line identifiers (address >> 6). Each level is an
// independent Cache; the Cpu/MemorySystem wiring in machine.h composes them
// into an inclusive-enough hierarchy (a miss at level N is looked up at level
// N+1; fills propagate back).

#ifndef SGXBOUNDS_SRC_SIM_CACHE_H_
#define SGXBOUNDS_SRC_SIM_CACHE_H_

#include <cstdint>
#include <vector>

namespace sgxb {

class Cache {
 public:
  // size_bytes must be a multiple of line_size * ways; the set count is
  // derived and must be a power of two.
  Cache(uint64_t size_bytes, uint32_t ways);

  // Looks up a line; on miss, inserts it (evicting LRU). Returns true on hit.
  bool Access(uint32_t line);

  // Lookup without allocation (used by tests and the EPC prefetch logic).
  bool Contains(uint32_t line) const;

  // Drops all content (e.g. when an experiment resets the machine).
  void Flush();

  uint64_t size_bytes() const { return size_bytes_; }
  uint32_t ways() const { return ways_; }
  uint32_t sets() const { return sets_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Way {
    uint32_t line = kInvalidLine;
    uint64_t stamp = 0;
  };

  static constexpr uint32_t kInvalidLine = 0xffffffffu;

  uint64_t size_bytes_;
  uint32_t ways_;
  uint32_t sets_;
  uint32_t set_mask_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<Way> slots_;  // sets_ * ways_, row-major by set
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_CACHE_H_
