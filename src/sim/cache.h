// Set-associative cache model with true-LRU replacement.
//
// Operates on cache-line identifiers (address >> 6). Each level is an
// independent Cache; the Cpu/MemorySystem wiring in machine.h composes them
// into an inclusive-enough hierarchy (a miss at level N is looked up at level
// N+1; fills propagate back).
//
// Ways within a set are stored in recency order (way 0 = MRU, way ways-1 =
// LRU), so the hot-line common case resolves on the first probe and eviction
// needs no stamp scan. This is behaviourally identical to stamp-based
// true-LRU: hit/miss outcomes and victim choices match access-for-access.

#ifndef SGXBOUNDS_SRC_SIM_CACHE_H_
#define SGXBOUNDS_SRC_SIM_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace sgxb {

class Cache {
 public:
  // size_bytes must be a multiple of line_size * ways; the set count is
  // derived and must be a power of two.
  Cache(uint64_t size_bytes, uint32_t ways);

  // Looks up a line; on miss, inserts it (evicting LRU). Returns true on hit.
  bool Access(uint32_t line) {
    uint32_t* base = &slots_[static_cast<size_t>(line & set_mask_) * ways_];
    if (base[0] == line) {  // MRU fast path: repeated hot-line access
      ++hits_;
      return true;
    }
    if (base[1] == line) {  // way-1 fast path: two lines alternating
      base[1] = base[0];    // (data+metadata interleavings make this common)
      base[0] = line;
      ++hits_;
      return true;
    }
    return AccessSlow(line, base);
  }

  // Books a hit without probing. Only valid when the caller knows `line` is
  // this cache's MRU line for its set (e.g. the Cpu's last-line fast path):
  // re-accessing the MRU line changes no replacement state, so counting the
  // hit is all Access() would have done.
  void CountMruHit() { ++hits_; }
  // Batched form, same precondition for every one of the `n` hits.
  void CountMruHits(uint64_t n) { hits_ += n; }

  // Lookup without allocation (used by tests and the EPC prefetch logic).
  bool Contains(uint32_t line) const;

  // Drops all content (e.g. when an experiment resets the machine).
  void Flush();

  uint64_t size_bytes() const { return size_bytes_; }
  uint32_t ways() const { return ways_; }
  uint32_t sets() const { return sets_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  static constexpr uint32_t kInvalidLine = 0xffffffffu;

  // Scan beyond ways 0-1 (probed inline); promote on hit, evict the LRU way
  // on miss.
  bool AccessSlow(uint32_t line, uint32_t* base);

  uint64_t size_bytes_;
  uint32_t ways_;
  uint32_t sets_;
  uint32_t set_mask_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t num_slots_ = 0;  // sets_ * ways_ + 1 sentinel
  struct AlignedDelete {
    void operator()(uint32_t* p) const { ::operator delete[](p, std::align_val_t{64}); }
  };
  // sets_ * ways_ line ids, row-major by set, MRU first. 64-byte aligned so a
  // set's ways never straddle host cache lines (a 16-way set is exactly one
  // line); a plain vector's 16-byte alignment would split most probes in two.
  std::unique_ptr<uint32_t[], AlignedDelete> slots_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_CACHE_H_
