// Enclave Page Cache (EPC) residency simulator.
//
// Intel SGX keeps enclave pages in a small MEE-protected region (128 MiB on
// the paper's hardware, ~94 MiB usable). When the enclave working set exceeds
// the EPC, the OS pages encrypted pages in and out ("EPC thrashing"), which is
// the dominant performance effect in the paper's experiments (SS2.1, Table 3).
//
// This model tracks the resident page set with true LRU replacement. A touch
// of a non-resident page is an EPC fault; the cost is charged by the caller
// from CostModel::epc_fault.

#ifndef SGXBOUNDS_SRC_SIM_EPC_H_
#define SGXBOUNDS_SRC_SIM_EPC_H_

#include <cstdint>
#include <vector>

namespace sgxb {

class EpcSim {
 public:
  // capacity_bytes: usable EPC size. The page table covers the whole 32-bit
  // enclave address space (2^20 pages of 4 KiB).
  explicit EpcSim(uint64_t capacity_bytes);

  // Marks a page access. Returns true if this access faulted (page was not
  // resident and had to be paged in, possibly evicting the LRU page).
  bool Touch(uint32_t page);

  bool Resident(uint32_t page) const;

  // Discards residency for a page (e.g. pages decommitted by the allocator).
  void Invalidate(uint32_t page);

  void Reset();

  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t resident_pages() const { return resident_count_; }
  uint64_t faults() const { return faults_; }
  uint64_t evictions() const { return evictions_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint32_t kMaxPages = 1u << 20;  // 4 GiB / 4 KiB

  void Unlink(uint32_t page);
  void PushFront(uint32_t page);

  uint64_t capacity_pages_;
  uint64_t resident_count_ = 0;
  uint64_t faults_ = 0;
  uint64_t evictions_ = 0;
  uint32_t head_ = kNil;  // MRU
  uint32_t tail_ = kNil;  // LRU
  std::vector<uint32_t> prev_;
  std::vector<uint32_t> next_;
  std::vector<uint8_t> resident_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_EPC_H_
