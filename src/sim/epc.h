// Enclave Page Cache (EPC) residency simulator.
//
// Intel SGX keeps enclave pages in a small MEE-protected region (128 MiB on
// the paper's hardware, ~94 MiB usable). When the enclave working set exceeds
// the EPC, the OS pages encrypted pages in and out ("EPC thrashing"), which is
// the dominant performance effect in the paper's experiments (SS2.1, Table 3).
//
// This model tracks the resident page set with true LRU replacement. A touch
// of a non-resident page is an EPC fault; the cost is charged by the caller
// from CostModel::epc_fault.
//
// The LRU list is intrusive over a single packed node array: one 8-byte node
// per page holds both links, and residency is encoded as a sentinel in the
// prev link. A touch of a resident page (every L2 miss in enclave mode) thus
// costs one cache line for the page's own state instead of three.

#ifndef SGXBOUNDS_SRC_SIM_EPC_H_
#define SGXBOUNDS_SRC_SIM_EPC_H_

#include <cstdint>
#include <vector>

namespace sgxb {

class EpcSim {
 public:
  // capacity_bytes: usable EPC size. The page table covers the whole 32-bit
  // enclave address space (2^20 pages of 4 KiB).
  explicit EpcSim(uint64_t capacity_bytes);

  // Marks a page access. Returns true if this access faulted (page was not
  // resident and had to be paged in, possibly evicting the LRU page).
  bool Touch(uint32_t page) {
    Node& nd = nodes_[page];
    if (nd.prev != kNotResident) {
      if (head_ != page) {
        Unlink(nd);
        PushFront(nd, page);
      }
      return false;
    }
    return Fault(nd, page);
  }

  bool Resident(uint32_t page) const;

  // Discards residency for a page (e.g. pages decommitted by the allocator).
  void Invalidate(uint32_t page);

  void Reset();

  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t resident_pages() const { return resident_count_; }
  uint64_t faults() const { return faults_; }
  uint64_t evictions() const { return evictions_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  // prev-link sentinel marking a non-resident page. Never a valid page id.
  static constexpr uint32_t kNotResident = 0xfffffffeu;
  static constexpr uint32_t kMaxPages = 1u << 20;  // 4 GiB / 4 KiB

  struct Node {
    uint32_t prev;
    uint32_t next;
  };

  void Unlink(Node& nd) {
    const uint32_t p = nd.prev;
    const uint32_t n = nd.next;
    if (p != kNil) {
      nodes_[p].next = n;
    } else {
      head_ = n;
    }
    if (n != kNil) {
      nodes_[n].prev = p;
    } else {
      tail_ = p;
    }
  }

  void PushFront(Node& nd, uint32_t page) {
    nd.prev = kNil;
    nd.next = head_;
    if (head_ != kNil) {
      nodes_[head_].prev = page;
    }
    head_ = page;
    if (tail_ == kNil) {
      tail_ = page;
    }
  }

  // Non-resident touch: page-in, evicting the LRU page when full.
  bool Fault(Node& nd, uint32_t page);

  uint64_t capacity_pages_;
  uint64_t resident_count_ = 0;
  uint64_t faults_ = 0;
  uint64_t evictions_ = 0;
  uint32_t head_ = kNil;  // MRU
  uint32_t tail_ = kNil;  // LRU
  std::vector<Node> nodes_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_EPC_H_
