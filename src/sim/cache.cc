#include "src/sim/cache.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/common/units.h"

namespace sgxb {

namespace {

bool IsPowerOfTwo(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

Cache::Cache(uint64_t size_bytes, uint32_t ways) : size_bytes_(size_bytes), ways_(ways) {
  CHECK_GT(ways, 0u);
  const uint64_t lines = size_bytes / kCacheLineSize;
  CHECK_EQ(lines % ways, 0u);
  const uint64_t sets = lines / ways;
  CHECK(IsPowerOfTwo(static_cast<uint32_t>(sets)));
  sets_ = static_cast<uint32_t>(sets);
  set_mask_ = sets_ - 1;
  // One sentinel slot of padding so the inline way-1 probe in Access() may
  // read base[1] even for a direct-mapped cache's last set. For ways == 1 the
  // probe can never false-positive: a stored line id from another set differs
  // in its set bits, and the sentinel is not a representable line id.
  num_slots_ = static_cast<size_t>(sets_) * ways_ + 1;
  slots_.reset(new (std::align_val_t{64}) uint32_t[num_slots_]);
  Flush();
}

bool Cache::AccessSlow(uint32_t line, uint32_t* base) {
  // Ways 0 and 1 were probed inline by Access().
  for (uint32_t w = 2; w < ways_; ++w) {
    if (base[w] == line) {
      // Promote to MRU: slide [0, w) down one way.
      std::memmove(base + 1, base, w * sizeof(uint32_t));
      base[0] = line;
      ++hits_;
      return true;
    }
  }
  // Miss: the last way is the LRU victim by construction.
  std::memmove(base + 1, base, (ways_ - 1) * sizeof(uint32_t));
  base[0] = line;
  ++misses_;
  return false;
}

bool Cache::Contains(uint32_t line) const {
  const uint32_t* base = &slots_[static_cast<size_t>(line & set_mask_) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w] == line) {
      return true;
    }
  }
  return false;
}

void Cache::Flush() {
  std::fill_n(slots_.get(), num_slots_, kInvalidLine);
}

}  // namespace sgxb
