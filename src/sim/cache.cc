#include "src/sim/cache.h"

#include "src/common/check.h"
#include "src/common/units.h"

namespace sgxb {

namespace {

bool IsPowerOfTwo(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

Cache::Cache(uint64_t size_bytes, uint32_t ways) : size_bytes_(size_bytes), ways_(ways) {
  CHECK_GT(ways, 0u);
  const uint64_t lines = size_bytes / kCacheLineSize;
  CHECK_EQ(lines % ways, 0u);
  const uint64_t sets = lines / ways;
  CHECK(IsPowerOfTwo(static_cast<uint32_t>(sets)));
  sets_ = static_cast<uint32_t>(sets);
  set_mask_ = sets_ - 1;
  slots_.resize(static_cast<size_t>(sets_) * ways_);
}

bool Cache::Access(uint32_t line) {
  const uint32_t set = line & set_mask_;
  Way* base = &slots_[static_cast<size_t>(set) * ways_];
  ++tick_;
  uint32_t victim = 0;
  uint64_t victim_stamp = UINT64_MAX;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w].line == line) {
      base[w].stamp = tick_;
      ++hits_;
      return true;
    }
    if (base[w].stamp < victim_stamp) {
      victim_stamp = base[w].stamp;
      victim = w;
    }
  }
  base[victim].line = line;
  base[victim].stamp = tick_;
  ++misses_;
  return false;
}

bool Cache::Contains(uint32_t line) const {
  const uint32_t set = line & set_mask_;
  const Way* base = &slots_[static_cast<size_t>(set) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w].line == line) {
      return true;
    }
  }
  return false;
}

void Cache::Flush() {
  for (auto& slot : slots_) {
    slot.line = kInvalidLine;
    slot.stamp = 0;
  }
  tick_ = 0;
}

}  // namespace sgxb
