// Hardware-counter analogues collected during simulation. Table 3 of the
// paper reports LLC misses, page faults and bounds-table counts; these
// counters are the source for that reproduction and for all cycle totals.

#ifndef SGXBOUNDS_SRC_SIM_PERF_COUNTERS_H_
#define SGXBOUNDS_SRC_SIM_PERF_COUNTERS_H_

#include <cstdint>

namespace sgxb {

struct PerfCounters {
  // Cycle account (the "time" axis of every figure).
  uint64_t cycles = 0;

  // Instruction mix.
  uint64_t alu_ops = 0;
  uint64_t branches = 0;
  uint64_t fp_ops = 0;
  uint64_t calls = 0;
  uint64_t syscalls = 0;

  // Application memory traffic.
  uint64_t loads = 0;
  uint64_t stores = 0;

  // Metadata traffic added by a hardening scheme (shadow memory, bounds
  // tables, LB footers). Counted separately so instrumentation cost is
  // attributable.
  uint64_t metadata_loads = 0;
  uint64_t metadata_stores = 0;

  // Cache behaviour.
  uint64_t l1_accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t llc_accesses = 0;
  uint64_t llc_misses = 0;

  // Paging behaviour.
  uint64_t epc_faults = 0;
  uint64_t minor_faults = 0;

  // Bounds-check outcome counts (security-relevant).
  uint64_t bounds_checks = 0;
  uint64_t bounds_violations = 0;

  // Enclave transitions (zero unless CostModel::TransitionsEnabled()).
  // `ocalls` mirrors enclave-mode syscalls when the axis is on;
  // `transition_cycles` is the slice of `cycles` attributable to world
  // switches, so transition overhead is separable in every table.
  uint64_t ecalls = 0;
  uint64_t ocalls = 0;
  uint64_t transition_cycles = 0;

  uint64_t instructions() const { return alu_ops + branches + fp_ops + loads + stores; }
  uint64_t page_faults() const { return epc_faults + minor_faults; }

  // Exact equality across every counter - the engine-differential tests'
  // definition of "bit-identical simulation".
  bool operator==(const PerfCounters& other) const {
    return cycles == other.cycles && alu_ops == other.alu_ops &&
           branches == other.branches && fp_ops == other.fp_ops &&
           calls == other.calls && syscalls == other.syscalls &&
           loads == other.loads && stores == other.stores &&
           metadata_loads == other.metadata_loads &&
           metadata_stores == other.metadata_stores &&
           l1_accesses == other.l1_accesses && l1_misses == other.l1_misses &&
           l2_misses == other.l2_misses && llc_accesses == other.llc_accesses &&
           llc_misses == other.llc_misses && epc_faults == other.epc_faults &&
           minor_faults == other.minor_faults && bounds_checks == other.bounds_checks &&
           bounds_violations == other.bounds_violations && ecalls == other.ecalls &&
           ocalls == other.ocalls && transition_cycles == other.transition_cycles;
  }
  bool operator!=(const PerfCounters& other) const { return !(*this == other); }

  PerfCounters& operator+=(const PerfCounters& other) {
    cycles += other.cycles;
    alu_ops += other.alu_ops;
    branches += other.branches;
    fp_ops += other.fp_ops;
    calls += other.calls;
    syscalls += other.syscalls;
    loads += other.loads;
    stores += other.stores;
    metadata_loads += other.metadata_loads;
    metadata_stores += other.metadata_stores;
    l1_accesses += other.l1_accesses;
    l1_misses += other.l1_misses;
    l2_misses += other.l2_misses;
    llc_accesses += other.llc_accesses;
    llc_misses += other.llc_misses;
    epc_faults += other.epc_faults;
    minor_faults += other.minor_faults;
    bounds_checks += other.bounds_checks;
    bounds_violations += other.bounds_violations;
    ecalls += other.ecalls;
    ocalls += other.ocalls;
    transition_cycles += other.transition_cycles;
    return *this;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_PERF_COUNTERS_H_
