// Cpu + MemorySystem: the cycle-charging execution context.
//
// A MemorySystem models the shared part of the machine (LLC, EPC, cost
// table); a Cpu models one hardware thread (private L1/L2, perf counters,
// cycle account). Workloads run "on" a Cpu: every modeled memory access and
// every modeled ALU/branch/FP op charges cycles into the Cpu's counters.
//
// Threads are simulated deterministically: worker bodies execute sequentially
// on separate Cpus sharing one MemorySystem, and the parallel region's cost is
// the max over workers (see src/runtime/thread_pool.h). No host-level
// concurrency ever touches these classes, so they are lock-free by design.

#ifndef SGXBOUNDS_SRC_SIM_MACHINE_H_
#define SGXBOUNDS_SRC_SIM_MACHINE_H_

#include <cstdint>
#include <memory>

#include "src/common/units.h"
#include "src/sim/cache.h"
#include "src/sim/cost_model.h"
#include "src/sim/epc.h"
#include "src/sim/perf_counters.h"

namespace sgxb {

struct SimConfig {
  uint64_t l1_bytes = 32 * kKiB;
  uint32_t l1_ways = 8;
  uint64_t l2_bytes = 256 * kKiB;
  uint32_t l2_ways = 8;
  uint64_t l3_bytes = 8 * kMiB;
  uint32_t l3_ways = 16;
  // Usable EPC (paper: 128 MiB total, ~94 MiB available to enclaves).
  uint64_t epc_bytes = 94 * kMiB;
  // true = inside an SGX enclave (EPC + MEE charged); false = normal process.
  bool enclave_mode = true;
  CostModel costs;
};

class MemorySystem {
 public:
  explicit MemorySystem(const SimConfig& config);

  // Services an L2 miss for `line`. Returns the cycle cost and updates the
  // shared structures; per-thread counters are updated through `counters`.
  uint64_t ServiceL2Miss(uint32_t line, PerfCounters& counters);

  void FlushCaches();

  const SimConfig& config() const { return config_; }
  Cache& l3() { return l3_; }
  EpcSim& epc() { return epc_; }
  bool enclave_mode() const { return config_.enclave_mode; }
  const CostModel& costs() const { return config_.costs; }

 private:
  SimConfig config_;
  Cache l3_;
  EpcSim epc_;
};

enum class AccessClass : uint8_t {
  kAppLoad,
  kAppStore,
  kMetadataLoad,
  kMetadataStore,
};

class Cpu {
 public:
  explicit Cpu(MemorySystem* memory);

  // Compute charging.
  void Alu(uint32_t n = 1) {
    counters_.alu_ops += n;
    counters_.cycles += static_cast<uint64_t>(n) * memory_->costs().alu;
  }
  void Branch(uint32_t n = 1) {
    counters_.branches += n;
    counters_.cycles += static_cast<uint64_t>(n) * memory_->costs().branch;
  }
  void Fp(uint32_t n = 1) {
    counters_.fp_ops += n;
    counters_.cycles += static_cast<uint64_t>(n) * memory_->costs().fp;
  }
  void Call() { counters_.cycles += memory_->costs().call; }
  void Charge(uint64_t cycles) { counters_.cycles += cycles; }

  // Charges the memory hierarchy for an access of `size` bytes at enclave
  // address `addr`. Touches every cache line the access spans.
  void MemAccess(uint32_t addr, uint32_t size, AccessClass klass);

  // Syscall boundary crossing (SS2.1: SCONE syscall interface).
  void Syscall() {
    counters_.cycles += memory_->enclave_mode() ? memory_->costs().syscall_exit
                                                : memory_->costs().syscall_native;
  }

  PerfCounters& counters() { return counters_; }
  const PerfCounters& counters() const { return counters_; }
  uint64_t cycles() const { return counters_.cycles; }
  MemorySystem* memory() { return memory_; }

  void ResetCounters() { counters_ = PerfCounters(); }

 private:
  MemorySystem* memory_;
  Cache l1_;
  Cache l2_;
  PerfCounters counters_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_MACHINE_H_
