// Cpu + MemorySystem: the cycle-charging execution context.
//
// A MemorySystem models the shared part of the machine (LLC, EPC, cost
// table); a Cpu models one hardware thread (private L1/L2, perf counters,
// cycle account). Workloads run "on" a Cpu: every modeled memory access and
// every modeled ALU/branch/FP op charges cycles into the Cpu's counters.
//
// Threads are simulated deterministically: worker bodies execute sequentially
// on separate Cpus sharing one MemorySystem, and the parallel region's cost is
// the max over workers (see src/runtime/thread_pool.h). No host-level
// concurrency ever touches these classes, so they are lock-free by design.

#ifndef SGXBOUNDS_SRC_SIM_MACHINE_H_
#define SGXBOUNDS_SRC_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/cache.h"
#include "src/sim/cost_model.h"
#include "src/sim/epc.h"
#include "src/sim/perf_counters.h"
#include "src/trace/trace_recorder.h"

namespace sgxb {

struct SimConfig {
  uint64_t l1_bytes = 32 * kKiB;
  uint32_t l1_ways = 8;
  uint64_t l2_bytes = 256 * kKiB;
  uint32_t l2_ways = 8;
  uint64_t l3_bytes = 8 * kMiB;
  uint32_t l3_ways = 16;
  // Usable EPC (paper: 128 MiB total, ~94 MiB available to enclaves).
  uint64_t epc_bytes = 94 * kMiB;
  // true = inside an SGX enclave (EPC + MEE charged); false = normal process.
  bool enclave_mode = true;
  CostModel costs;
};

// Field-wise equality, used by the sweep engine's memoization key
// (src/trace/sweep.h): two equal configs replay to identical counters, so
// comparing full configs (rather than hashes) makes memo hits collision-proof.
inline bool operator==(const SimConfig& a, const SimConfig& b) {
  return a.l1_bytes == b.l1_bytes && a.l1_ways == b.l1_ways && a.l2_bytes == b.l2_bytes &&
         a.l2_ways == b.l2_ways && a.l3_bytes == b.l3_bytes && a.l3_ways == b.l3_ways &&
         a.epc_bytes == b.epc_bytes && a.enclave_mode == b.enclave_mode &&
         a.costs == b.costs;
}
inline bool operator!=(const SimConfig& a, const SimConfig& b) { return !(a == b); }

class MemorySystem {
 public:
  explicit MemorySystem(const SimConfig& config);

  // Services an L2 miss for `line`. Returns the cycle cost and updates the
  // shared structures; per-thread counters are updated through `counters`.
  uint64_t ServiceL2Miss(uint32_t line, PerfCounters& counters) {
    ++counters.llc_accesses;
    if (l3_.Access(line)) {
      return config_.costs.l3_hit;
    }
    ++counters.llc_misses;
    uint64_t cost = config_.costs.dram;
    if (config_.enclave_mode) {
      const uint32_t page = line >> (kPageShift - kCacheLineShift);
      if (miss_log_ != nullptr) {
        miss_log_->push_back(page);
      }
      if (epc_.Touch(page)) {
        ++counters.epc_faults;
        cost += config_.costs.epc_fault;
      }
      cost += config_.costs.mee_line;
    }
    return cost;
  }

  void FlushCaches();

  const SimConfig& config() const { return config_; }
  Cache& l3() { return l3_; }
  const Cache& l3() const { return l3_; }
  EpcSim& epc() { return epc_; }
  const EpcSim& epc() const { return epc_; }
  bool enclave_mode() const { return config_.enclave_mode; }
  const CostModel& costs() const { return config_.costs; }

  // Optional trace recorder shared by every Cpu on this machine; null unless
  // a recording was requested (see src/trace/trace_recorder.h).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }

  // Optional log of the EPC page touched by every enclave LLC miss, in
  // simulation order. The stream is EPC-size-independent (faults never alter
  // cache behaviour), which is what lets the trace EPC sweeper re-simulate
  // other EPC sizes without re-running the cache model.
  void set_miss_log(std::vector<uint32_t>* log) { miss_log_ = log; }

 private:
  SimConfig config_;
  Cache l3_;
  EpcSim epc_;
  TraceRecorder* trace_ = nullptr;
  std::vector<uint32_t>* miss_log_ = nullptr;
};

enum class AccessClass : uint8_t {
  kAppLoad,
  kAppStore,
  kMetadataLoad,
  kMetadataStore,
};

class Cpu {
 public:
  explicit Cpu(MemorySystem* memory);

  // Compute charging.
  void Alu(uint32_t n = 1) {
    counters_.alu_ops += n;
    counters_.cycles += static_cast<uint64_t>(n) * costs_->alu;
  }
  void Branch(uint32_t n = 1) {
    counters_.branches += n;
    counters_.cycles += static_cast<uint64_t>(n) * costs_->branch;
  }
  void Fp(uint32_t n = 1) {
    counters_.fp_ops += n;
    counters_.cycles += static_cast<uint64_t>(n) * costs_->fp;
  }
  void Call() {
    ++counters_.calls;
    counters_.cycles += costs_->call;
  }

  // Constant-cost cycle charge (heap, libc wrappers, instrumentation slow
  // paths). Traced as part of the aggregated compute delta: every Charge
  // call site must be configuration-independent. Config-dependent charges
  // (page-fault repricing, parallel makespans) go through CommitPages /
  // ChargeUntraced instead.
  void Charge(uint64_t cycles) {
    counters_.cycles += cycles;
    if (trace_ != nullptr) {
      trace_->OnRawCharge(trace_id_, cycles);
    }
  }

  // Cycle charge excluded from the trace's compute aggregate: the replay
  // engine re-derives it structurally (parallel-region makespans).
  void ChargeUntraced(uint64_t cycles) { counters_.cycles += cycles; }

  // Commits `count` fresh pages: the minor-fault accounting choke point.
  // Recorded as a structural event so replays under a different cost table
  // reprice the faults instead of replaying stale cycle counts.
  void CommitPages(uint32_t first_page, uint32_t count) {
    counters_.minor_faults += count;
    counters_.cycles += static_cast<uint64_t>(count) * costs_->minor_fault;
    if (trace_ != nullptr) {
      trace_->OnCommit(trace_id_, first_page, count);
    }
  }

  // Epoch/phase annotation (workload-defined id); a trace marker only.
  void Epoch(uint32_t id) {
    if (trace_ != nullptr) {
      trace_->OnEpoch(trace_id_, id);
    }
  }

  // Charges the memory hierarchy for an access of `size` bytes at enclave
  // address `addr`. Touches every cache line the access spans.
  //
  // Two fast paths keep the common case cheap without changing any modeled
  // outcome: accesses contained in one line skip the span loop, and a repeat
  // of the immediately preceding line is a guaranteed L1 hit (nothing can
  // evict it in between — the L1 is private and only accesses evict), so it
  // charges the hit without probing the cache.
  void MemAccess(uint32_t addr, uint32_t size, AccessClass klass) {
    if (trace_ != nullptr) {
      trace_->OnAccess(trace_id_, addr, size, static_cast<uint8_t>(klass));
    }
    BumpClassCounter(klass);
    if (size == 0) {
      return;
    }
    const uint32_t first_line = LineOf(addr);
    const uint32_t last_line = LineOf(addr + size - 1);
    if (first_line == last_line) {
      ++counters_.l1_accesses;
      if (first_line == last_l1_line_) {
        l1_.CountMruHit();
        counters_.cycles += costs_->l1_hit;
        return;
      }
      AccessLine(first_line);
      return;
    }
    MemAccessSpan(first_line, last_line);
  }

  // `count` accesses of `size` bytes starting at `addr`, `stride` bytes
  // apart. Bit-identical to calling MemAccess once per access, but batches
  // the guaranteed-MRU repeats of each cache line, which is what lets trace
  // replay (src/trace) outrun live execution.
  void MemAccessRun(uint32_t addr, uint32_t size, int64_t stride, uint64_t count,
                    AccessClass klass);

  // Syscall boundary crossing (SS2.1: SCONE syscall interface). When the
  // transition axis is on (CostModel::TransitionsEnabled()), an enclave-mode
  // syscall additionally pays an OCALL world switch — synchronous EEXIT/EENTER
  // or a switchless handoff, per CostModel::OcallCost().
  void Syscall() {
    ++counters_.syscalls;
    counters_.cycles += memory_->enclave_mode() ? costs_->syscall_exit
                                                : costs_->syscall_native;
    if (memory_->enclave_mode() && costs_->TransitionsEnabled()) {
      ++counters_.ocalls;
      const uint64_t cost = costs_->OcallCost();
      counters_.transition_cycles += cost;
      counters_.cycles += cost;
    }
  }

  // ECALL world switch (host -> enclave request dispatch). Always recorded in
  // the trace as a structural event; counted and charged only when this
  // machine models an enclave and the transition axis is on, so default
  // configurations are bit-identical with or without Ecall call sites.
  void Ecall() {
    if (trace_ != nullptr) {
      trace_->OnEcall(trace_id_);
    }
    if (memory_->enclave_mode() && costs_->TransitionsEnabled()) {
      ++counters_.ecalls;
      counters_.transition_cycles += costs_->ecall;
      counters_.cycles += costs_->ecall;
    }
  }

  PerfCounters& counters() { return counters_; }
  const PerfCounters& counters() const { return counters_; }
  uint64_t cycles() const { return counters_.cycles; }
  MemorySystem* memory() { return memory_; }

  // Points this Cpu's taps at `trace` under trace cpu id `id`. Passing null
  // detaches (the hot paths revert to their single-pointer-test cost).
  void AttachTrace(TraceRecorder* trace, uint32_t id) {
    trace_ = trace;
    trace_id_ = id;
  }
  TraceRecorder* trace() const { return trace_; }
  uint32_t trace_id() const { return trace_id_; }

  void ResetCounters() { counters_ = PerfCounters(); }

 private:
  static constexpr uint32_t kNoLine = 0xffffffffu;

  void BumpClassCounter(AccessClass klass) { BumpClassCounterN(klass, 1); }

  void BumpClassCounterN(AccessClass klass, uint64_t n) {
    switch (klass) {
      case AccessClass::kAppLoad:
        counters_.loads += n;
        break;
      case AccessClass::kAppStore:
        counters_.stores += n;
        break;
      case AccessClass::kMetadataLoad:
        counters_.metadata_loads += n;
        break;
      case AccessClass::kMetadataStore:
        counters_.metadata_stores += n;
        break;
    }
  }

  // Full lookup for one line (l1_accesses already counted by the caller).
  // The L1-hit path stays inline; misses go out of line so the inline code
  // at every Load/Store site stays small.
  void AccessLine(uint32_t line) {
    last_l1_line_ = line;
    if (l1_.Access(line)) {
      counters_.cycles += costs_->l1_hit;
      return;
    }
    MissLine(line);
  }
  // L1 miss: walk L2 -> LLC -> DRAM/EPC and charge the final cost.
  void MissLine(uint32_t line);
  // Multi-line (cache-line-crossing) accesses.
  void MemAccessSpan(uint32_t first_line, uint32_t last_line);

  MemorySystem* memory_;
  // Cached &memory_->costs(): the cost table is immutable after construction,
  // and every charge on the hot path reads it.
  const CostModel* costs_;
  Cache l1_;
  Cache l2_;
  // Line of the most recent L1 access; repeats are guaranteed hits.
  uint32_t last_l1_line_ = kNoLine;
  // Trace tap: null unless this run is being recorded.
  TraceRecorder* trace_ = nullptr;
  uint32_t trace_id_ = 0;
  PerfCounters counters_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_SIM_MACHINE_H_
