// SweepEngine: decode-once, replay-many across a (trace x SimConfig) grid.
//
// The unit of work is a SweepRequest — one shared DecodedTrace replayed
// under one SimConfig. Run() answers a whole batch, choosing per request the
// cheapest sound tier (see src/trace/trace_replay.h):
//
//   1. memo hit      — (stream hash, full SimConfig) already answered;
//   2. capture       — requests sharing a trace and a cache geometry are
//                      grouped; one ConfigSweeper capture per group answers
//                      every EPC-size / cost-table / enclave-mode variant by
//                      re-pricing (microseconds each);
//   3. full replay   — geometry singletons and capture-ineligible configs
//                      replay the shared decode directly.
//
// Captures and replays fan out over ParallelForWorkStealing: grids mix
// microsecond re-pricings with full replays that run five orders of
// magnitude longer, so chunk-stealing — not a fixed pre-split — is what
// keeps 8 threads busy. Results land in slots indexed by request order and
// every tier is bit-identical to a sequential full replay, so the output
// (and anything printed from it) is byte-identical for any thread count.
//
// The memo key pairs the FNV-1a stream hash with the FULL SimConfig (not a
// config hash): equal keys therefore guarantee equal results, and a hash
// collision costs a bucket probe, never a wrong answer. The memo persists
// across Run() calls; duplicates inside one batch are folded before
// dispatch, which also keeps SweepStats independent of the thread count.

#ifndef SGXBOUNDS_SRC_TRACE_SWEEP_H_
#define SGXBOUNDS_SRC_TRACE_SWEEP_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/trace/decoded_trace.h"
#include "src/trace/trace_replay.h"

namespace sgxb {

// Stable FNV-1a over every SimConfig field; the bucket-index half of the
// memo key (equality is decided by operator==, never by this hash).
uint64_t SimConfigHash(const SimConfig& config);

struct SweepRequest {
  const DecodedTrace* trace = nullptr;  // borrowed; must outlive Run()
  SimConfig config;
};

struct SweepOptions {
  uint32_t threads = 0;      // 0 = HostHardwareThreads()
  bool memoize = true;       // reuse results across Run() calls
  bool use_capture = true;   // false = force full replay (verification mode)
};

// Cumulative across Run() calls; deterministic for a given request sequence
// regardless of the thread count.
struct SweepStats {
  uint64_t requests = 0;         // total requests seen
  uint64_t memo_hits = 0;        // answered from the memo (incl. in-batch dups)
  uint64_t captures_built = 0;   // full replays spent building captures
  uint64_t capture_replays = 0;  // requests answered by capture re-pricing
  uint64_t full_replays = 0;     // requests answered by full replay
};

class SweepEngine {
 public:
  explicit SweepEngine(const SweepOptions& options = SweepOptions());

  // Replays every request; out[i] answers requests[i]. Bit-identical to
  // calling ReplayDecoded(*requests[i].trace, requests[i].config) for each.
  std::vector<ReplayResult> Run(const std::vector<SweepRequest>& requests);

  const SweepStats& stats() const { return stats_; }
  size_t memo_size() const { return memo_.size(); }
  void ClearMemo() { memo_.clear(); }

 private:
  struct MemoKey {
    uint64_t trace_hash = 0;
    SimConfig config;
    bool operator==(const MemoKey& other) const {
      return trace_hash == other.trace_hash && config == other.config;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& key) const {
      return static_cast<size_t>(key.trace_hash ^ SimConfigHash(key.config));
    }
  };

  SweepOptions options_;
  std::unordered_map<MemoKey, ReplayResult, MemoKeyHash> memo_;
  SweepStats stats_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_SWEEP_H_
