#include "src/trace/decoded_trace.h"

namespace sgxb {

DecodedTrace::DecodedTrace(const Trace& trace)
    : DecodedTrace(trace.header, trace.summary, trace.events.data(),
                   trace.events.data() + trace.events.size()) {}

DecodedTrace::DecodedTrace(const TraceHeader& header, const TraceSummary& summary,
                           const uint8_t* begin, const uint8_t* end)
    : header_(header), summary_(summary) {
  Decode(begin, end);
}

void DecodedTrace::Decode(const uint8_t* begin, const uint8_t* end) {
  encoded_bytes_ = static_cast<size_t>(end - begin);
  stream_hash_ = summary_.truncated == 0 ? summary_.stream_hash
                                         : FnvUpdate(kFnvOffset, begin, encoded_bytes_);
  // Typical encodings run a few bytes per event; reserving at bytes/2 keeps
  // reallocation off the decode path without overshooting much.
  events_.reserve(encoded_bytes_ / 2 + 16);

  TraceReader reader(begin, end);
  TraceEvent ev;
  while (reader.Next(&ev)) {
    DecodedEvent d;
    d.kind = ev.kind;
    d.sub = ev.sub;
    d.klass = ev.klass;
    d.cpu = ev.cpu;
    d.addr = ev.addr;
    d.size = ev.size;
    d.page = ev.page;
    d.stride = ev.stride;
    d.count = ev.count;
    d.value = ev.value;
    if (ev.kind == TraceEventKind::kCpuDelta) {
      d.aux = static_cast<uint32_t>(deltas_.size());
      deltas_.push_back(ev.delta);
    } else if (ev.kind == TraceEventKind::kControl &&
               static_cast<ControlSub>(ev.sub) == ControlSub::kLoopRun) {
      d.period = static_cast<uint8_t>(ev.period);
      d.aux = static_cast<uint32_t>(phases_.size());
      phases_.insert(phases_.end(), ev.phases, ev.phases + ev.period);
    }
    events_.push_back(d);
  }
  events_.shrink_to_fit();
  deltas_.shrink_to_fit();
  phases_.shrink_to_fit();
}

}  // namespace sgxb
