// TraceRecorder: the record half of the record/replay subsystem.
//
// Attached to an Enclave (see Enclave::AttachTrace / MachineSpec::trace), it
// observes the simulation at its choke points — Cpu::MemAccess, raw cycle
// charges, page commits/decommits, parallel-region boundaries — and encodes
// a compact event stream (trace_format.h). Detach is the default: every tap
// is a single `if (trace_ != nullptr)` test on a pointer that is null unless
// a recording was explicitly requested, so the PR-1 fast paths keep their
// speed when tracing is off.
//
// Two aggregation strategies keep recorded streams small and recording
// overhead low:
//   * compute charges (Alu/Branch/Fp/Call/Syscall and constant-cost raw
//     Charge calls) are order-independent within a thread, so they are not
//     recorded per call: the recorder snapshots each Cpu's PerfCounters and
//     emits one kCpuDelta event per flush point (parallel-region boundaries
//     and finalize);
//   * consecutive accesses with equal class/size and constant stride
//     coalesce into one kAccessRun event;
//   * periodic sequences of access events (what instrumented loops produce:
//     a fixed cadence of data + bounds/shadow accesses per element, each
//     phase advancing by its own constant per-iteration step) coalesce into
//     one kLoopRun event per loop. A small window of not-yet-emitted access
//     events feeds the detector; marker and commit events bypass it (their
//     replay effect commutes with accesses), so allocation loops coalesce
//     across their per-iteration markers.
//
// Buffering never reorders access events relative to each other, and only
// reorders replay-commutative events (markers, page commits) relative to
// accesses — replayed cache/EPC state transitions are exactly the live ones.
//
// This header must stay independent of src/sim/machine.h (machine.h includes
// it to inline the taps), so access classes travel as raw uint8_t here.

#ifndef SGXBOUNDS_SRC_TRACE_TRACE_RECORDER_H_
#define SGXBOUNDS_SRC_TRACE_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/perf_counters.h"
#include "src/trace/trace_format.h"

namespace sgxb {

class TraceRecorder {
 public:
  explicit TraceRecorder(std::string workload = "", std::string note = "");

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Called once by the run harness before any event: fills the machine
  // fields of the header (workload/note identification is preserved).
  void BeginRun(const TraceHeader& machine_fields);

  // Registers a hardware thread; returns its trace cpu id. The pointer must
  // stay valid until Finalize (the recorder reads counters at flush points).
  uint32_t RegisterCpu(const PerfCounters* counters);

  // Retain only the first `n` events in the buffer (hash and count still
  // cover the full stream; the summary marks the trace truncated). Golden
  // prefix traces use this to stay checked-in sized.
  void set_event_limit(uint64_t n) { event_limit_ = n; }

  // --- hot taps ---

  void OnAccess(uint32_t cpu, uint32_t addr, uint32_t size, uint8_t klass) {
    if (cpu != current_cpu_) {
      FlushAccessStream();
      EmitSwitch(cpu);
    }
    if (run_count_ > 0 && klass == run_klass_ && size == run_size_) {
      if (run_count_ == 1) {
        run_stride_ = static_cast<int64_t>(addr) - static_cast<int64_t>(run_addr_);
        run_count_ = 2;
        return;
      }
      if (static_cast<int64_t>(addr) ==
          static_cast<int64_t>(run_addr_) + run_stride_ * static_cast<int64_t>(run_count_)) {
        ++run_count_;
        return;
      }
    }
    FlushRun();
    run_addr_ = addr;
    run_size_ = size;
    run_klass_ = klass;
    run_count_ = 1;
  }

  void OnRawCharge(uint32_t cpu, uint64_t cycles) { tracks_[cpu].pending_raw += cycles; }

  // ECALL tap (Cpu::Ecall). Counts are order-independent within a thread, so
  // they aggregate like compute deltas and flush as one kEcall control event
  // per flush point.
  void OnEcall(uint32_t cpu) { ++tracks_[cpu].pending_ecalls; }

  // --- structural events ---

  void OnCommit(uint32_t cpu, uint32_t first_page, uint32_t count);
  void OnDecommit(uint32_t first_page, uint32_t count);
  void OnParallelBegin(uint32_t caller_cpu, uint32_t nthreads);
  void OnWorkerBegin(uint32_t cpu);
  void OnWorkerEnd(uint32_t cpu);
  void OnParallelEnd(uint32_t caller_cpu, uint64_t spawn_cycles);
  void OnAlloc(uint32_t cpu, uint32_t addr, uint32_t size);
  void OnFree(uint32_t cpu, uint32_t addr);
  void OnEpoch(uint32_t cpu, uint32_t id);

  // Flushes everything, emits the end-of-stream event and fills the summary
  // outcome fields. Idempotent wiring is the harness's job: call once.
  struct Outcome {
    uint64_t live_cycles = 0;
    uint64_t peak_vm_bytes = 0;
    uint32_t mpx_bt_count = 0;
    bool crashed = false;
    uint8_t trap_kind = 0;
    std::string trap_message;
  };
  void Finalize(const Outcome& outcome);

  bool finalized() const { return finalized_; }

  // Moves the finished trace out of the recorder (valid after Finalize).
  Trace TakeTrace();

 private:
  struct CounterSnap {
    uint64_t alu = 0, branches = 0, fp = 0, calls = 0, syscalls = 0;
    uint64_t bounds_checks = 0, bounds_violations = 0;
  };
  struct CpuTrack {
    const PerfCounters* counters = nullptr;
    CounterSnap snap;
    uint64_t pending_raw = 0;
    uint64_t pending_ecalls = 0;
  };

  // One access event awaiting emission: a single access (count 1) or an
  // already-coalesced constant-stride run.
  struct AccessDesc {
    uint32_t addr = 0;
    uint32_t size = 0;
    uint8_t klass = 0;
    int64_t stride = 0;  // intra-run stride; 0 for singles
    uint64_t count = 1;
    bool SameShape(const AccessDesc& o) const {
      return klass == o.klass && size == o.size && stride == o.stride && count == o.count;
    }
  };

  // The detector needs three full iterations before committing to a period.
  static constexpr size_t kWindowCap = 3 * kMaxLoopPeriod;

  // Closes the pending first-level run, if any, and feeds it downstream.
  void FlushRun();
  // Second stage: extend the active loop / detect a new one / buffer.
  void PushDesc(const AccessDesc& d);
  bool TryDetectLoop();
  // Emits the active kLoopRun event plus any partial-iteration leftovers.
  void FlushLoop();
  // Encodes one access/run event against the emission-order address context.
  void EmitDesc(const AccessDesc& d);
  // Hard barrier: emits everything buffered, in arrival order.
  void FlushAccessStream();
  // Emits the kCpuDelta event for `cpu` if it has non-zero pending deltas
  // (caller has already made `cpu` current).
  void FlushCpuDeltas(uint32_t cpu);
  void EmitSwitch(uint32_t cpu);
  void SwitchTo(uint32_t cpu) {
    if (cpu != current_cpu_) {
      FlushAccessStream();
      EmitSwitch(cpu);
    }
  }
  // Appends one encoded event: hashes and counts it always, retains the
  // bytes only while under the event limit.
  void EmitEvent(const std::vector<uint8_t>& scratch);

  Trace trace_;
  std::vector<CpuTrack> tracks_;
  bool begun_ = false;
  bool finalized_ = false;
  uint64_t event_limit_ = ~0ull;
  uint64_t event_count_ = 0;
  uint64_t hash_ = kFnvOffset;
  bool truncated_ = false;

  // Encoder context (mirrored by the decoder).
  uint32_t current_cpu_ = 0;
  uint32_t last_addr_ = 0;
  uint32_t last_page_ = 0;

  // Open parallel regions (caller cpu ids), mirroring the decoder's stack.
  std::vector<uint32_t> parallel_callers_;

  // Pending access run.
  uint32_t run_addr_ = 0;
  uint32_t run_size_ = 0;
  uint8_t run_klass_ = 0;
  int64_t run_stride_ = 0;
  uint32_t run_count_ = 0;

  // Periodic-pattern detector. While a loop is active the window is empty:
  // matching descs are consumed phase by phase, anything else flushes the
  // loop. Otherwise descs buffer in `window_` (FIFO, emitted on overflow)
  // until three consecutive iterations of some period <= kMaxLoopPeriod
  // line up.
  bool loop_active_ = false;
  uint32_t loop_period_ = 0;
  uint32_t loop_phase_ = 0;
  uint64_t loop_iters_ = 0;
  AccessDesc loop_base_[kMaxLoopPeriod];   // iteration-0 descs
  int64_t loop_delta_[kMaxLoopPeriod] = {};  // per-iteration address steps
  std::vector<AccessDesc> window_;

  std::vector<uint8_t> scratch_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_TRACE_RECORDER_H_
