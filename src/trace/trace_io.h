// .sgxtrace file save/load.
//
// Layout: magic, version, serialized header, event-byte blob, serialized
// summary, footer magic. All integers little-endian fixed width; strings are
// u32 length + bytes. Load verifies magic/version/footer and re-hashes the
// retained event bytes against the summary (full-stream hash for complete
// traces, prefix consistency left to the caller for truncated ones).

#ifndef SGXBOUNDS_SRC_TRACE_TRACE_IO_H_
#define SGXBOUNDS_SRC_TRACE_TRACE_IO_H_

#include <string>

#include "src/trace/trace_format.h"

namespace sgxb {

// Returns true on success; on failure fills *error.
bool SaveTrace(const Trace& trace, const std::string& path, std::string* error);
bool LoadTrace(const std::string& path, Trace* trace, std::string* error);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_TRACE_IO_H_
