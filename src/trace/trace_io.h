// .sgxtrace file save/load.
//
// Layout: magic, version, serialized header, event-byte blob, serialized
// summary, footer magic. All integers little-endian fixed width; strings are
// u32 length + bytes. Load verifies magic/version/footer and re-hashes the
// retained event bytes against the summary (full-stream hash for complete
// traces, prefix consistency left to the caller for truncated ones).

#ifndef SGXBOUNDS_SRC_TRACE_TRACE_IO_H_
#define SGXBOUNDS_SRC_TRACE_TRACE_IO_H_

#include <cstddef>
#include <string>

#include "src/trace/trace_format.h"

namespace sgxb {

// Returns true on success; on failure fills *error.
bool SaveTrace(const Trace& trace, const std::string& path, std::string* error);
bool LoadTrace(const std::string& path, Trace* trace, std::string* error);

// Zero-copy load: maps the file read-only and parses header/summary in
// place; the event bytes stay a view into the mapping instead of a heap
// copy, so a multi-GB trace opens in microseconds and the pages fault in
// lazily as the decoder walks them (integrity hashing still touches them
// all once). The view is valid for the lifetime of this object; feed it
// straight to DecodedTrace, which reads the bytes exactly once. Falls back
// to a heap read on platforms without mmap.
class MappedTrace {
 public:
  MappedTrace() = default;
  ~MappedTrace();
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  // Loads `path`; on failure fills *error and leaves the object empty.
  bool Load(const std::string& path, std::string* error);

  bool loaded() const { return events_begin_ != nullptr; }
  const TraceHeader& header() const { return header_; }
  const TraceSummary& summary() const { return summary_; }
  const uint8_t* events_begin() const { return events_begin_; }
  const uint8_t* events_end() const { return events_begin_ + events_size_; }
  size_t events_size() const { return events_size_; }

  // Materializes a heap-owned Trace (for APIs that mutate or outlive the
  // mapping). Copies the event bytes.
  Trace Copy() const;

 private:
  void Unmap();

  TraceHeader header_;
  TraceSummary summary_;
  const uint8_t* events_begin_ = nullptr;
  size_t events_size_ = 0;
  void* map_base_ = nullptr;  // non-null only when backed by mmap
  size_t map_size_ = 0;
  std::vector<uint8_t> fallback_;  // heap copy when mmap is unavailable
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_TRACE_IO_H_
