// TraceReader: sequential decoder for the event stream in trace_format.h.
//
// The reader mirrors the encoder's delta context (current cpu, last address,
// last page, open parallel regions) so the same compact bytes decode to the
// same absolute events. Used by the replay engine, the diff tool and the
// golden-trace tests; there is exactly one decoder implementation so encoder
// and consumers cannot drift apart.

#ifndef SGXBOUNDS_SRC_TRACE_TRACE_READER_H_
#define SGXBOUNDS_SRC_TRACE_TRACE_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace_format.h"

namespace sgxb {

// One phase of a kLoopRun event: a single access (count 1) or an embedded
// constant-stride run, whose base address advances by iter_delta every loop
// iteration.
struct LoopPhase {
  uint8_t klass = 0;
  uint32_t size = 0;
  uint32_t addr = 0;       // iteration-0 address
  int64_t iter_delta = 0;  // per-iteration address step
  int64_t stride = 0;      // intra-run stride
  uint64_t count = 1;      // intra-run access count

  bool operator==(const LoopPhase& other) const {
    return klass == other.klass && size == other.size && addr == other.addr &&
           iter_delta == other.iter_delta && stride == other.stride &&
           count == other.count;
  }
};

// One decoded event, with absolute operands.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kControl;
  uint8_t sub = 0;     // ParallelSub / MarkerSub / ControlSub
  uint8_t klass = 0;   // AccessClass for (run) accesses
  uint32_t cpu = 0;    // cpu the event applies to (post-switch semantics)
  uint32_t addr = 0;   // accesses, runs, alloc/free markers
  uint32_t size = 0;   // access size / alloc size
  int64_t stride = 0;  // kAccessRun
  uint64_t count = 0;  // kAccessRun / kCommit / kDecommit runs / kLoopRun iters
  uint32_t page = 0;   // kCommit / kDecommit first page
  uint64_t value = 0;  // nthreads (begin) / spawn cycles (end) / epoch id
  CpuDelta delta;      // kCpuDelta
  uint32_t period = 0;               // kLoopRun phase count
  LoopPhase phases[kMaxLoopPeriod];  // kLoopRun phases [0, period)

  bool operator==(const TraceEvent& other) const;
};

// Human-readable one-line rendering (diff/info output).
std::string FormatTraceEvent(const TraceEvent& ev);

class TraceReader {
 public:
  explicit TraceReader(const Trace& trace)
      : p_(trace.events.data()),
        begin_(trace.events.data()),
        end_(trace.events.data() + trace.events.size()) {}
  TraceReader(const uint8_t* begin, const uint8_t* end)
      : p_(begin), begin_(begin), end_(end) {}

  // Decodes the next event into *ev. Returns false at end-of-stream (after
  // the kControl/kEnd event or when the buffer is exhausted, e.g. for
  // truncated prefix traces).
  bool Next(TraceEvent* ev);

  // Events decoded so far.
  uint64_t position() const { return position_; }
  // Encoded bytes consumed so far (per-kind size attribution in trace_tool
  // info and decode accounting in DecodedTrace).
  size_t byte_offset() const { return static_cast<size_t>(p_ - begin_); }
  // True once the explicit end-of-stream event has been consumed.
  bool saw_end() const { return saw_end_; }

 private:
  const uint8_t* p_;
  const uint8_t* begin_;
  const uint8_t* end_;
  uint64_t position_ = 0;
  bool saw_end_ = false;

  // Decoder context, mirroring the encoder.
  uint32_t current_cpu_ = 0;
  uint32_t last_addr_ = 0;
  uint32_t last_page_ = 0;
  std::vector<uint32_t> parallel_callers_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_TRACE_READER_H_
