#include "src/trace/trace_reader.h"

#include <cinttypes>
#include <cstdio>

namespace sgxb {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAccess: return "access";
    case TraceEventKind::kAccessRun: return "access-run";
    case TraceEventKind::kCpuDelta: return "cpu-delta";
    case TraceEventKind::kCommit: return "commit";
    case TraceEventKind::kDecommit: return "decommit";
    case TraceEventKind::kParallel: return "parallel";
    case TraceEventKind::kMarker: return "marker";
    case TraceEventKind::kControl: return "control";
  }
  return "?";
}

bool TraceEvent::operator==(const TraceEvent& other) const {
  if (kind != other.kind || sub != other.sub || klass != other.klass ||
      cpu != other.cpu || addr != other.addr || size != other.size ||
      stride != other.stride || count != other.count || page != other.page ||
      value != other.value || period != other.period) {
    return false;
  }
  for (uint32_t j = 0; j < period && j < kMaxLoopPeriod; ++j) {
    if (!(phases[j] == other.phases[j])) {
      return false;
    }
  }
  return delta.alu == other.delta.alu && delta.branches == other.delta.branches &&
         delta.fp == other.delta.fp && delta.calls == other.delta.calls &&
         delta.syscalls == other.delta.syscalls &&
         delta.bounds_checks == other.delta.bounds_checks &&
         delta.bounds_violations == other.delta.bounds_violations &&
         delta.raw_cycles == other.delta.raw_cycles;
}

std::string FormatTraceEvent(const TraceEvent& ev) {
  static const char* kClassNames[4] = {"app-load", "app-store", "meta-load",
                                       "meta-store"};
  char buf[256];
  switch (ev.kind) {
    case TraceEventKind::kAccess:
      std::snprintf(buf, sizeof buf, "access cpu=%u %s addr=0x%08x size=%u", ev.cpu,
                    kClassNames[ev.klass & 3], ev.addr, ev.size);
      break;
    case TraceEventKind::kAccessRun:
      std::snprintf(buf, sizeof buf,
                    "access-run cpu=%u %s addr=0x%08x size=%u stride=%" PRId64
                    " count=%" PRIu64,
                    ev.cpu, kClassNames[ev.klass & 3], ev.addr, ev.size, ev.stride,
                    ev.count);
      break;
    case TraceEventKind::kCpuDelta:
      std::snprintf(buf, sizeof buf,
                    "cpu-delta cpu=%u alu=%" PRIu64 " br=%" PRIu64 " fp=%" PRIu64
                    " call=%" PRIu64 " sys=%" PRIu64 " bc=%" PRIu64 " bv=%" PRIu64
                    " raw=%" PRIu64,
                    ev.cpu, ev.delta.alu, ev.delta.branches, ev.delta.fp, ev.delta.calls,
                    ev.delta.syscalls, ev.delta.bounds_checks, ev.delta.bounds_violations,
                    ev.delta.raw_cycles);
      break;
    case TraceEventKind::kCommit:
      std::snprintf(buf, sizeof buf, "commit cpu=%u page=%u count=%" PRIu64, ev.cpu,
                    ev.page, ev.count);
      break;
    case TraceEventKind::kDecommit:
      std::snprintf(buf, sizeof buf, "decommit page=%u count=%" PRIu64, ev.page,
                    ev.count);
      break;
    case TraceEventKind::kParallel:
      switch (static_cast<ParallelSub>(ev.sub)) {
        case ParallelSub::kBegin:
          std::snprintf(buf, sizeof buf, "parallel-begin caller=%u nthreads=%" PRIu64,
                        ev.cpu, ev.value);
          break;
        case ParallelSub::kWorkerBegin:
          std::snprintf(buf, sizeof buf, "worker-begin cpu=%u", ev.cpu);
          break;
        case ParallelSub::kWorkerEnd:
          std::snprintf(buf, sizeof buf, "worker-end cpu=%u", ev.cpu);
          break;
        case ParallelSub::kEnd:
          std::snprintf(buf, sizeof buf,
                        "parallel-end caller=%u spawn_cycles=%" PRIu64, ev.cpu, ev.value);
          break;
      }
      break;
    case TraceEventKind::kMarker:
      switch (static_cast<MarkerSub>(ev.sub)) {
        case MarkerSub::kAlloc:
          std::snprintf(buf, sizeof buf, "alloc cpu=%u addr=0x%08x size=%u", ev.cpu,
                        ev.addr, ev.size);
          break;
        case MarkerSub::kFree:
          std::snprintf(buf, sizeof buf, "free cpu=%u addr=0x%08x", ev.cpu, ev.addr);
          break;
        case MarkerSub::kEpoch:
          std::snprintf(buf, sizeof buf, "epoch cpu=%u id=%" PRIu64, ev.cpu, ev.value);
          break;
      }
      break;
    case TraceEventKind::kControl:
      switch (static_cast<ControlSub>(ev.sub)) {
        case ControlSub::kEnd:
          std::snprintf(buf, sizeof buf, "end");
          break;
        case ControlSub::kSwitchCpu:
          std::snprintf(buf, sizeof buf, "switch-cpu cpu=%u", ev.cpu);
          break;
        case ControlSub::kLoopRun: {
          std::string out;
          std::snprintf(buf, sizeof buf, "loop-run cpu=%u period=%u iters=%" PRIu64,
                        ev.cpu, ev.period, ev.count);
          out = buf;
          for (uint32_t j = 0; j < ev.period && j < kMaxLoopPeriod; ++j) {
            const LoopPhase& ph = ev.phases[j];
            std::snprintf(buf, sizeof buf,
                          " [%s addr=0x%08x size=%u step=%" PRId64 " stride=%" PRId64
                          " count=%" PRIu64 "]",
                          kClassNames[ph.klass & 3], ph.addr, ph.size, ph.iter_delta,
                          ph.stride, ph.count);
            out += buf;
          }
          return out;
        }
        case ControlSub::kEcall:
          std::snprintf(buf, sizeof buf, "ecall cpu=%u count=%" PRIu64, ev.cpu, ev.count);
          break;
        default:
          std::snprintf(buf, sizeof buf, "control sub=%u", ev.sub);
          break;
      }
      break;
  }
  return buf;
}

bool TraceReader::Next(TraceEvent* ev) {
  if (saw_end_ || p_ >= end_) {
    return false;
  }
  const uint8_t b0 = *p_++;
  const TraceEventKind kind = static_cast<TraceEventKind>(b0 & 7u);
  *ev = TraceEvent{};
  ev->kind = kind;
  ev->cpu = current_cpu_;
  switch (kind) {
    case TraceEventKind::kAccess:
    case TraceEventKind::kAccessRun: {
      ev->klass = (b0 >> 3) & 3u;
      const uint8_t tag = b0 >> 5;
      const int64_t delta = UnZigZag(GetVarint(&p_, end_));
      ev->addr = static_cast<uint32_t>(static_cast<int64_t>(last_addr_) + delta);
      if (kind == TraceEventKind::kAccessRun) {
        ev->stride = UnZigZag(GetVarint(&p_, end_));
        ev->count = GetVarint(&p_, end_);
      } else {
        ev->count = 1;
      }
      ev->size = tag == 0 ? static_cast<uint32_t>(GetVarint(&p_, end_)) : SizeOfTag(tag);
      last_addr_ = static_cast<uint32_t>(
          static_cast<int64_t>(ev->addr) +
          ev->stride * static_cast<int64_t>(ev->count - 1));
      break;
    }
    case TraceEventKind::kCpuDelta: {
      if (p_ >= end_) {
        return false;
      }
      const uint8_t mask = *p_++;
      uint64_t* fields[8] = {&ev->delta.alu,
                             &ev->delta.branches,
                             &ev->delta.fp,
                             &ev->delta.calls,
                             &ev->delta.syscalls,
                             &ev->delta.bounds_checks,
                             &ev->delta.bounds_violations,
                             &ev->delta.raw_cycles};
      for (int i = 0; i < 8; ++i) {
        if (mask & (1u << i)) {
          *fields[i] = GetVarint(&p_, end_);
        }
      }
      break;
    }
    case TraceEventKind::kCommit:
    case TraceEventKind::kDecommit: {
      const int64_t delta = UnZigZag(GetVarint(&p_, end_));
      ev->page = static_cast<uint32_t>(static_cast<int64_t>(last_page_) + delta);
      ev->count = GetVarint(&p_, end_);
      last_page_ = static_cast<uint32_t>(ev->page + ev->count - 1);
      break;
    }
    case TraceEventKind::kParallel: {
      ev->sub = (b0 >> 3) & 3u;
      switch (static_cast<ParallelSub>(ev->sub)) {
        case ParallelSub::kBegin:
          ev->value = GetVarint(&p_, end_);
          parallel_callers_.push_back(current_cpu_);
          break;
        case ParallelSub::kWorkerBegin:
          ev->cpu = static_cast<uint32_t>(GetVarint(&p_, end_));
          current_cpu_ = ev->cpu;
          break;
        case ParallelSub::kWorkerEnd:
          break;
        case ParallelSub::kEnd:
          ev->value = GetVarint(&p_, end_);
          if (!parallel_callers_.empty()) {
            current_cpu_ = parallel_callers_.back();
            parallel_callers_.pop_back();
          }
          ev->cpu = current_cpu_;
          break;
      }
      break;
    }
    case TraceEventKind::kMarker: {
      ev->sub = (b0 >> 3) & 3u;
      switch (static_cast<MarkerSub>(ev->sub)) {
        case MarkerSub::kAlloc:
          ev->addr = static_cast<uint32_t>(static_cast<int64_t>(last_addr_) +
                                           UnZigZag(GetVarint(&p_, end_)));
          ev->size = static_cast<uint32_t>(GetVarint(&p_, end_));
          last_addr_ = ev->addr;
          break;
        case MarkerSub::kFree:
          ev->addr = static_cast<uint32_t>(static_cast<int64_t>(last_addr_) +
                                           UnZigZag(GetVarint(&p_, end_)));
          last_addr_ = ev->addr;
          break;
        case MarkerSub::kEpoch:
          ev->value = GetVarint(&p_, end_);
          break;
      }
      break;
    }
    case TraceEventKind::kControl: {
      ev->sub = b0 >> 3;
      switch (static_cast<ControlSub>(ev->sub)) {
        case ControlSub::kEnd:
          saw_end_ = true;
          break;
        case ControlSub::kSwitchCpu:
          ev->cpu = static_cast<uint32_t>(GetVarint(&p_, end_));
          current_cpu_ = ev->cpu;
          break;
        case ControlSub::kLoopRun: {
          ev->period = static_cast<uint32_t>(GetVarint(&p_, end_));
          ev->count = GetVarint(&p_, end_);  // iterations
          if (ev->period == 0 || ev->period > kMaxLoopPeriod) {
            return false;  // corrupt stream
          }
          uint32_t prev = last_addr_;
          for (uint32_t j = 0; j < ev->period; ++j) {
            LoopPhase& ph = ev->phases[j];
            if (p_ >= end_) {
              return false;
            }
            const uint8_t pb = *p_++;
            ph.klass = pb & 3u;
            const uint8_t tag = (pb >> 2) & 7u;
            ph.addr = static_cast<uint32_t>(static_cast<int64_t>(prev) +
                                            UnZigZag(GetVarint(&p_, end_)));
            ph.iter_delta = UnZigZag(GetVarint(&p_, end_));
            if ((pb >> 5) & 1u) {
              ph.stride = UnZigZag(GetVarint(&p_, end_));
              ph.count = GetVarint(&p_, end_);
            } else {
              ph.stride = 0;
              ph.count = 1;
            }
            ph.size = tag == 0 ? static_cast<uint32_t>(GetVarint(&p_, end_))
                               : SizeOfTag(tag);
            prev = ph.addr;
          }
          const LoopPhase& lastp = ev->phases[ev->period - 1];
          last_addr_ = static_cast<uint32_t>(
              static_cast<int64_t>(lastp.addr) +
              lastp.iter_delta * static_cast<int64_t>(ev->count - 1) +
              lastp.stride * static_cast<int64_t>(lastp.count - 1));
          break;
        }
        case ControlSub::kEcall:
          ev->count = GetVarint(&p_, end_);
          break;
      }
      break;
    }
  }
  ++position_;
  return true;
}

}  // namespace sgxb
