#include "src/trace/trace_recorder.h"

#include "src/common/check.h"

namespace sgxb {

TraceRecorder::TraceRecorder(std::string workload, std::string note) {
  trace_.header.workload = std::move(workload);
  trace_.header.note = std::move(note);
  scratch_.reserve(64);
  trace_.events.reserve(1 << 16);
}

void TraceRecorder::BeginRun(const TraceHeader& machine_fields) {
  CHECK(!begun_);
  std::string workload = std::move(trace_.header.workload);
  std::string note = std::move(trace_.header.note);
  trace_.header = machine_fields;
  trace_.header.version = trace_.header.costs.TransitionsEnabled()
                              ? kTraceVersionTransitions
                              : kTraceVersion;
  trace_.header.cost_table_id = CostTableId(trace_.header.costs);
  if (!workload.empty()) {
    trace_.header.workload = std::move(workload);
  }
  if (!note.empty()) {
    trace_.header.note = std::move(note);
  }
  begun_ = true;
}

uint32_t TraceRecorder::RegisterCpu(const PerfCounters* counters) {
  const uint32_t id = static_cast<uint32_t>(tracks_.size());
  CpuTrack track;
  track.counters = counters;
  tracks_.push_back(track);
  return id;
}

void TraceRecorder::EmitEvent(const std::vector<uint8_t>& scratch) {
  hash_ = FnvUpdate(hash_, scratch.data(), scratch.size());
  ++event_count_;
  if (event_count_ <= event_limit_) {
    trace_.events.insert(trace_.events.end(), scratch.begin(), scratch.end());
  } else {
    truncated_ = true;
  }
}

void TraceRecorder::EmitSwitch(uint32_t cpu) {
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kControl) |
                     static_cast<uint8_t>(ControlSub::kSwitchCpu) << 3);
  PutVarint(scratch_, cpu);
  EmitEvent(scratch_);
  current_cpu_ = cpu;
}

void TraceRecorder::FlushRun() {
  if (run_count_ == 0) {
    return;
  }
  AccessDesc d;
  d.addr = run_addr_;
  d.size = run_size_;
  d.klass = run_klass_;
  if (run_count_ == 2) {
    // A two-access "run" is just a pair. Folding it would bake the pair's
    // stride — often the distance between two unrelated arrays, different on
    // every loop iteration — into the descriptor shape, which defeats the
    // periodic detector (matrixmul's inner product is the canonical victim).
    // Push both accesses raw and let the loop detector see the real pattern.
    const uint32_t second = static_cast<uint32_t>(
        static_cast<int64_t>(run_addr_) + run_stride_);
    d.stride = 0;
    d.count = 1;
    run_count_ = 0;
    run_stride_ = 0;
    PushDesc(d);
    d.addr = second;
    PushDesc(d);
    return;
  }
  d.stride = run_count_ > 1 ? run_stride_ : 0;
  d.count = run_count_;
  run_count_ = 0;
  run_stride_ = 0;
  PushDesc(d);
}

void TraceRecorder::EmitDesc(const AccessDesc& d) {
  const uint8_t tag = SizeTagOf(d.size);
  scratch_.clear();
  const TraceEventKind kind =
      d.count == 1 ? TraceEventKind::kAccess : TraceEventKind::kAccessRun;
  scratch_.push_back(static_cast<uint8_t>(kind) | (d.klass & 3u) << 3 | tag << 5);
  PutZigZag(scratch_, static_cast<int64_t>(d.addr) - static_cast<int64_t>(last_addr_));
  if (d.count > 1) {
    PutZigZag(scratch_, d.stride);
    PutVarint(scratch_, d.count);
  }
  if (tag == 0) {
    PutVarint(scratch_, d.size);
  }
  EmitEvent(scratch_);
  last_addr_ = static_cast<uint32_t>(static_cast<int64_t>(d.addr) +
                                     d.stride * static_cast<int64_t>(d.count - 1));
}

void TraceRecorder::PushDesc(const AccessDesc& d) {
  if (loop_active_) {
    const AccessDesc& b = loop_base_[loop_phase_];
    const uint32_t expected = static_cast<uint32_t>(
        static_cast<int64_t>(b.addr) +
        loop_delta_[loop_phase_] * static_cast<int64_t>(loop_iters_));
    if (d.SameShape(b) && d.addr == expected) {
      if (++loop_phase_ == loop_period_) {
        loop_phase_ = 0;
        ++loop_iters_;
      }
      return;
    }
    FlushLoop();
  }
  window_.push_back(d);
  if (TryDetectLoop()) {
    return;
  }
  if (window_.size() > kWindowCap) {
    EmitDesc(window_.front());
    window_.erase(window_.begin());
  }
}

bool TraceRecorder::TryDetectLoop() {
  const size_t w = window_.size();
  for (uint32_t period = 1; period <= kMaxLoopPeriod; ++period) {
    if (w < 3u * period) {
      break;
    }
    const AccessDesc* it0 = &window_[w - 3u * period];  // oldest iteration
    const AccessDesc* it1 = &window_[w - 2u * period];
    const AccessDesc* it2 = &window_[w - period];
    bool match = true;
    for (uint32_t j = 0; j < period; ++j) {
      const int64_t d01 = static_cast<int64_t>(it1[j].addr) - static_cast<int64_t>(it0[j].addr);
      const int64_t d12 = static_cast<int64_t>(it2[j].addr) - static_cast<int64_t>(it1[j].addr);
      if (!it0[j].SameShape(it1[j]) || !it1[j].SameShape(it2[j]) || d01 != d12) {
        match = false;
        break;
      }
    }
    if (!match) {
      continue;
    }
    // Pre-loop descs emit as-is; the three matched iterations seed the loop.
    for (size_t i = 0; i + 3u * period < w; ++i) {
      EmitDesc(window_[i]);
    }
    for (uint32_t j = 0; j < period; ++j) {
      loop_base_[j] = it0[j];
      loop_delta_[j] = static_cast<int64_t>(it1[j].addr) - static_cast<int64_t>(it0[j].addr);
    }
    loop_active_ = true;
    loop_period_ = period;
    loop_phase_ = 0;
    loop_iters_ = 3;
    window_.clear();
    return true;
  }
  return false;
}

void TraceRecorder::FlushLoop() {
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kControl) |
                     static_cast<uint8_t>(ControlSub::kLoopRun) << 3);
  PutVarint(scratch_, loop_period_);
  PutVarint(scratch_, loop_iters_);
  uint32_t prev = last_addr_;
  for (uint32_t j = 0; j < loop_period_; ++j) {
    const AccessDesc& b = loop_base_[j];
    const uint8_t tag = SizeTagOf(b.size);
    scratch_.push_back(static_cast<uint8_t>((b.klass & 3u) | tag << 2 |
                                            (b.count > 1 ? 1u << 5 : 0u)));
    PutZigZag(scratch_, static_cast<int64_t>(b.addr) - static_cast<int64_t>(prev));
    PutZigZag(scratch_, loop_delta_[j]);
    if (b.count > 1) {
      PutZigZag(scratch_, b.stride);
      PutVarint(scratch_, b.count);
    }
    if (tag == 0) {
      PutVarint(scratch_, b.size);
    }
    prev = b.addr;
  }
  EmitEvent(scratch_);
  const AccessDesc& lastp = loop_base_[loop_period_ - 1];
  last_addr_ = static_cast<uint32_t>(
      static_cast<int64_t>(lastp.addr) +
      loop_delta_[loop_period_ - 1] * static_cast<int64_t>(loop_iters_ - 1) +
      lastp.stride * static_cast<int64_t>(lastp.count - 1));
  // Phases already matched in the unfinished final iteration replay as
  // plain events after the loop.
  const uint32_t partial = loop_phase_;
  const uint64_t n = loop_iters_;
  loop_active_ = false;
  loop_phase_ = 0;
  for (uint32_t j = 0; j < partial; ++j) {
    AccessDesc d = loop_base_[j];
    d.addr = static_cast<uint32_t>(static_cast<int64_t>(d.addr) +
                                   loop_delta_[j] * static_cast<int64_t>(n));
    EmitDesc(d);
  }
}

void TraceRecorder::FlushAccessStream() {
  FlushRun();
  if (loop_active_) {
    FlushLoop();
  }
  for (const AccessDesc& d : window_) {
    EmitDesc(d);
  }
  window_.clear();
}

void TraceRecorder::FlushCpuDeltas(uint32_t cpu) {
  CpuTrack& track = tracks_[cpu];
  const PerfCounters& c = *track.counters;
  CpuDelta d;
  d.alu = c.alu_ops - track.snap.alu;
  d.branches = c.branches - track.snap.branches;
  d.fp = c.fp_ops - track.snap.fp;
  d.calls = c.calls - track.snap.calls;
  d.syscalls = c.syscalls - track.snap.syscalls;
  d.bounds_checks = c.bounds_checks - track.snap.bounds_checks;
  d.bounds_violations = c.bounds_violations - track.snap.bounds_violations;
  d.raw_cycles = track.pending_raw;
  if (d.Empty() && track.pending_ecalls == 0) {
    return;
  }
  track.snap = {c.alu_ops,  c.branches,      c.fp_ops,
                c.calls,    c.syscalls,      c.bounds_checks,
                c.bounds_violations};
  track.pending_raw = 0;

  if (!d.Empty()) {
    uint8_t mask = 0;
    const uint64_t fields[8] = {d.alu,      d.branches,      d.fp,
                                d.calls,    d.syscalls,      d.bounds_checks,
                                d.bounds_violations, d.raw_cycles};
    for (int i = 0; i < 8; ++i) {
      if (fields[i] != 0) {
        mask |= static_cast<uint8_t>(1u << i);
      }
    }
    scratch_.clear();
    scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kCpuDelta));
    scratch_.push_back(mask);
    for (int i = 0; i < 8; ++i) {
      if (fields[i] != 0) {
        PutVarint(scratch_, fields[i]);
      }
    }
    EmitEvent(scratch_);
  }
  if (track.pending_ecalls != 0) {
    scratch_.clear();
    scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kControl) |
                       static_cast<uint8_t>(ControlSub::kEcall) << 3);
    PutVarint(scratch_, track.pending_ecalls);
    EmitEvent(scratch_);
    track.pending_ecalls = 0;
  }
}

void TraceRecorder::OnCommit(uint32_t cpu, uint32_t first_page, uint32_t count) {
  // Pass-through: a commit's replay effect (minor-fault pricing on this cpu)
  // commutes with access events, so it does not flush the pattern detector —
  // page-touching loops keep coalescing across it.
  SwitchTo(cpu);
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kCommit));
  PutZigZag(scratch_,
            static_cast<int64_t>(first_page) - static_cast<int64_t>(last_page_));
  PutVarint(scratch_, count);
  EmitEvent(scratch_);
  last_page_ = first_page + count - 1;
}

void TraceRecorder::OnDecommit(uint32_t first_page, uint32_t count) {
  // Decommit invalidates EPC residency: its order against accesses matters,
  // so it is a hard barrier.
  FlushAccessStream();
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kDecommit));
  PutZigZag(scratch_,
            static_cast<int64_t>(first_page) - static_cast<int64_t>(last_page_));
  PutVarint(scratch_, count);
  EmitEvent(scratch_);
  last_page_ = first_page + count - 1;
}

void TraceRecorder::OnParallelBegin(uint32_t caller_cpu, uint32_t nthreads) {
  SwitchTo(caller_cpu);
  FlushAccessStream();
  FlushCpuDeltas(caller_cpu);
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kParallel) |
                     static_cast<uint8_t>(ParallelSub::kBegin) << 3);
  PutVarint(scratch_, nthreads);
  EmitEvent(scratch_);
  parallel_callers_.push_back(caller_cpu);
}

void TraceRecorder::OnWorkerBegin(uint32_t cpu) {
  FlushAccessStream();
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kParallel) |
                     static_cast<uint8_t>(ParallelSub::kWorkerBegin) << 3);
  PutVarint(scratch_, cpu);
  EmitEvent(scratch_);
  current_cpu_ = cpu;
}

void TraceRecorder::OnWorkerEnd(uint32_t cpu) {
  SwitchTo(cpu);
  FlushAccessStream();
  FlushCpuDeltas(cpu);
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kParallel) |
                     static_cast<uint8_t>(ParallelSub::kWorkerEnd) << 3);
  EmitEvent(scratch_);
}

void TraceRecorder::OnParallelEnd(uint32_t caller_cpu, uint64_t spawn_cycles) {
  FlushAccessStream();
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kParallel) |
                     static_cast<uint8_t>(ParallelSub::kEnd) << 3);
  PutVarint(scratch_, spawn_cycles);
  EmitEvent(scratch_);
  // The decoder pops its region stack here; mirror it.
  CHECK(!parallel_callers_.empty());
  CHECK_EQ(parallel_callers_.back(), caller_cpu);
  parallel_callers_.pop_back();
  current_cpu_ = caller_cpu;
}

void TraceRecorder::OnAlloc(uint32_t cpu, uint32_t addr, uint32_t size) {
  // Markers are replay-ignored annotations: pass-through keeps per-iteration
  // alloc/free markers from breaking loop coalescing.
  SwitchTo(cpu);
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kMarker) |
                     static_cast<uint8_t>(MarkerSub::kAlloc) << 3);
  PutZigZag(scratch_, static_cast<int64_t>(addr) - static_cast<int64_t>(last_addr_));
  PutVarint(scratch_, size);
  EmitEvent(scratch_);
  last_addr_ = addr;
}

void TraceRecorder::OnFree(uint32_t cpu, uint32_t addr) {
  SwitchTo(cpu);
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kMarker) |
                     static_cast<uint8_t>(MarkerSub::kFree) << 3);
  PutZigZag(scratch_, static_cast<int64_t>(addr) - static_cast<int64_t>(last_addr_));
  EmitEvent(scratch_);
  last_addr_ = addr;
}

void TraceRecorder::OnEpoch(uint32_t cpu, uint32_t id) {
  SwitchTo(cpu);
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kMarker) |
                     static_cast<uint8_t>(MarkerSub::kEpoch) << 3);
  PutVarint(scratch_, id);
  EmitEvent(scratch_);
}

void TraceRecorder::Finalize(const Outcome& outcome) {
  CHECK(begun_);
  CHECK(!finalized_);
  FlushAccessStream();
  for (uint32_t cpu = 0; cpu < tracks_.size(); ++cpu) {
    CpuTrack& track = tracks_[cpu];
    const PerfCounters& c = *track.counters;
    const bool dirty = c.alu_ops != track.snap.alu || c.branches != track.snap.branches ||
                       c.fp_ops != track.snap.fp || c.calls != track.snap.calls ||
                       c.syscalls != track.snap.syscalls ||
                       c.bounds_checks != track.snap.bounds_checks ||
                       c.bounds_violations != track.snap.bounds_violations ||
                       track.pending_raw != 0 || track.pending_ecalls != 0;
    if (dirty) {
      SwitchTo(cpu);
      FlushCpuDeltas(cpu);
    }
  }
  scratch_.clear();
  scratch_.push_back(static_cast<uint8_t>(TraceEventKind::kControl) |
                     static_cast<uint8_t>(ControlSub::kEnd) << 3);
  EmitEvent(scratch_);

  trace_.summary.event_count = event_count_;
  trace_.summary.stream_hash = hash_;
  trace_.summary.cpu_count = static_cast<uint32_t>(tracks_.size());
  trace_.summary.truncated = truncated_ ? 1 : 0;
  trace_.summary.crashed = outcome.crashed ? 1 : 0;
  trace_.summary.trap_kind = outcome.trap_kind;
  trace_.summary.live_cycles = outcome.live_cycles;
  trace_.summary.peak_vm_bytes = outcome.peak_vm_bytes;
  trace_.summary.mpx_bt_count = outcome.mpx_bt_count;
  // Bound the trap message before it enters the trace summary: .sgxtrace
  // files must not grow with whatever detail string a trap carried.
  constexpr size_t kMaxTrapMessageBytes = 256;
  trace_.summary.trap_message = outcome.trap_message.substr(0, kMaxTrapMessageBytes);
  finalized_ = true;
}

Trace TraceRecorder::TakeTrace() {
  CHECK(finalized_);
  return std::move(trace_);
}

}  // namespace sgxb
