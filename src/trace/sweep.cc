#include "src/trace/sweep.h"

#include <map>
#include <tuple>

#include "src/common/host_parallel.h"

namespace sgxb {

namespace {

uint64_t FnvFold(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t SimConfigHash(const SimConfig& config) {
  uint64_t h = 14695981039346656037ull;
  h = FnvFold(h, config.l1_bytes);
  h = FnvFold(h, config.l1_ways);
  h = FnvFold(h, config.l2_bytes);
  h = FnvFold(h, config.l2_ways);
  h = FnvFold(h, config.l3_bytes);
  h = FnvFold(h, config.l3_ways);
  h = FnvFold(h, config.epc_bytes);
  h = FnvFold(h, config.enclave_mode ? 1 : 0);
  const CostModel& c = config.costs;
  const uint32_t costs[] = {c.alu,       c.branch,     c.fp,          c.call,
                            c.l1_hit,    c.l2_hit,     c.l3_hit,      c.dram,
                            c.mee_line,  c.epc_fault,  c.minor_fault, c.syscall_exit,
                            c.syscall_native};
  for (uint32_t f : costs) {
    h = FnvFold(h, f);
  }
  return h;
}

SweepEngine::SweepEngine(const SweepOptions& options) : options_(options) {}

std::vector<ReplayResult> SweepEngine::Run(const std::vector<SweepRequest>& requests) {
  std::vector<ReplayResult> out(requests.size());
  stats_.requests += requests.size();

  // Phase A (serial): memo lookups, then fold in-batch duplicates onto one
  // canonical request each. Doing all dedup before dispatch keeps SweepStats
  // a pure function of the request sequence — no thread-count dependence.
  std::vector<size_t> canon;                       // canonical request indices
  std::vector<std::vector<size_t>> copies(requests.size());
  std::unordered_map<MemoKey, size_t, MemoKeyHash> seen;
  for (size_t i = 0; i < requests.size(); ++i) {
    const SweepRequest& r = requests[i];
    const MemoKey key{r.trace->stream_hash(), r.config};
    if (options_.memoize) {
      const auto hit = memo_.find(key);
      if (hit != memo_.end()) {
        out[i] = hit->second;
        ++stats_.memo_hits;
        continue;
      }
    }
    const auto ins = seen.emplace(key, i);
    if (!ins.second) {
      copies[ins.first->second].push_back(i);
      ++stats_.memo_hits;
    } else {
      canon.push_back(i);
    }
  }

  // Phase B (serial): group canonical requests by (trace, cache geometry) —
  // the partition within which one capture covers every config. std::map
  // keeps group numbering (and so stats and capture bases) deterministic.
  struct Group {
    std::vector<size_t> members;  // indices into `requests`
    std::unique_ptr<ConfigSweeper> sweeper;
  };
  using GroupKey = std::tuple<const DecodedTrace*, uint64_t, uint32_t, uint64_t,
                              uint32_t, uint64_t, uint32_t>;
  std::map<GroupKey, size_t> group_index;
  std::vector<Group> groups;
  std::vector<size_t> group_of(canon.size(), 0);
  for (size_t k = 0; k < canon.size(); ++k) {
    const SweepRequest& r = requests[canon[k]];
    const SimConfig& c = r.config;
    const GroupKey key{r.trace,    c.l1_bytes, c.l1_ways, c.l2_bytes,
                       c.l2_ways,  c.l3_bytes, c.l3_ways};
    const auto ins = group_index.emplace(key, groups.size());
    if (ins.second) {
      groups.emplace_back();
    }
    groups[ins.first->second].members.push_back(canon[k]);
    group_of[k] = ins.first->second;
  }

  const uint32_t threads =
      options_.threads == 0 ? HostHardwareThreads() : options_.threads;

  // Phase C (parallel): build captures. A capture costs one full replay, so
  // it only pays off when a group has at least two members; singletons go
  // straight to full replay in phase D.
  std::vector<size_t> capture_groups;
  if (options_.use_capture) {
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].members.size() >= 2) {
        capture_groups.push_back(g);
      }
    }
  }
  ParallelForWorkStealing(capture_groups.size(), threads, [&](size_t i) {
    Group& g = groups[capture_groups[i]];
    const SweepRequest& first = requests[g.members.front()];
    SimConfig base = SimConfigFromHeader(first.trace->header());
    const SimConfig& c = first.config;
    base.l1_bytes = c.l1_bytes;
    base.l1_ways = c.l1_ways;
    base.l2_bytes = c.l2_bytes;
    base.l2_ways = c.l2_ways;
    base.l3_bytes = c.l3_bytes;
    base.l3_ways = c.l3_ways;
    base.enclave_mode = true;  // an enclave-ON capture covers both modes
    g.sweeper = std::make_unique<ConfigSweeper>(*first.trace, base);
  });
  stats_.captures_built += capture_groups.size();

  // Phase D (parallel): answer every canonical request over the shared
  // decode — capture re-pricing where a group sweeper covers the config,
  // full replay otherwise. Work stealing absorbs the five-orders-of-
  // magnitude cost spread between the two tiers.
  ParallelForWorkStealing(canon.size(), threads, [&](size_t k) {
    const SweepRequest& r = requests[canon[k]];
    const ConfigSweeper* sweeper = groups[group_of[k]].sweeper.get();
    if (sweeper != nullptr && sweeper->Covers(r.config)) {
      out[canon[k]] = sweeper->Replay(r.config);
    } else {
      out[canon[k]] = ReplayDecoded(*r.trace, r.config);
    }
  });
  for (size_t k = 0; k < canon.size(); ++k) {
    const ConfigSweeper* sweeper = groups[group_of[k]].sweeper.get();
    if (sweeper != nullptr && sweeper->Covers(requests[canon[k]].config)) {
      ++stats_.capture_replays;
    } else {
      ++stats_.full_replays;
    }
  }

  // Phase E (serial): fan results out to in-batch duplicates and publish to
  // the memo for future Run() calls.
  for (size_t k = 0; k < canon.size(); ++k) {
    const size_t i = canon[k];
    for (size_t j : copies[i]) {
      out[j] = out[i];
    }
    if (options_.memoize) {
      memo_.emplace(MemoKey{requests[i].trace->stream_hash(), requests[i].config},
                    out[i]);
    }
  }
  return out;
}

}  // namespace sgxb
