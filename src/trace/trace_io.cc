#include "src/trace/trace_io.h"

#include <cstdio>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define SGXB_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sgxb {

namespace {

void Put32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void Put64(std::vector<uint8_t>& out, uint64_t v) {
  Put32(out, static_cast<uint32_t>(v));
  Put32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  Put32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Cursor {
 public:
  Cursor(const uint8_t* p, const uint8_t* end) : p_(p), end_(end) {}

  bool ok() const { return ok_; }
  const uint8_t* pos() const { return p_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t Get8() {
    if (remaining() < 1) {
      ok_ = false;
      return 0;
    }
    return *p_++;
  }

  uint32_t Get32() {
    if (remaining() < 4) {
      ok_ = false;
      return 0;
    }
    uint32_t v = static_cast<uint32_t>(p_[0]) | static_cast<uint32_t>(p_[1]) << 8 |
                 static_cast<uint32_t>(p_[2]) << 16 | static_cast<uint32_t>(p_[3]) << 24;
    p_ += 4;
    return v;
  }

  uint64_t Get64() {
    const uint64_t lo = Get32();
    const uint64_t hi = Get32();
    return lo | hi << 32;
  }

  std::string GetString() {
    const uint32_t n = Get32();
    if (remaining() < n) {
      ok_ = false;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  bool Skip(size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return false;
    }
    p_ += n;
    return true;
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

// Version 1 carries the 13 pre-transition cost fields; version 2 appends the
// four transition fields. v1 files therefore stay byte-identical and load
// with transitions off.
void SerializeCosts(std::vector<uint8_t>& out, const CostModel& c, uint32_t version) {
  const uint32_t fields[] = {c.alu,       c.branch,     c.fp,          c.call,
                             c.l1_hit,    c.l2_hit,     c.l3_hit,      c.dram,
                             c.mee_line,  c.epc_fault,  c.minor_fault, c.syscall_exit,
                             c.syscall_native};
  for (uint32_t f : fields) {
    Put32(out, f);
  }
  if (version >= kTraceVersionTransitions) {
    Put32(out, c.ecall);
    Put32(out, c.ocall);
    Put32(out, c.switchless_ocall);
    Put32(out, c.switchless);
  }
}

void DeserializeCosts(Cursor& in, CostModel* c, uint32_t version) {
  uint32_t* fields[] = {&c->alu,       &c->branch,     &c->fp,          &c->call,
                        &c->l1_hit,    &c->l2_hit,     &c->l3_hit,      &c->dram,
                        &c->mee_line,  &c->epc_fault,  &c->minor_fault, &c->syscall_exit,
                        &c->syscall_native};
  for (uint32_t* f : fields) {
    *f = in.Get32();
  }
  if (version >= kTraceVersionTransitions) {
    c->ecall = in.Get32();
    c->ocall = in.Get32();
    c->switchless_ocall = in.Get32();
    c->switchless = in.Get32();
  } else {
    c->ecall = c->ocall = c->switchless_ocall = c->switchless = 0;
  }
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

// Parses a serialized trace image in place. On success *events_off /
// *events_len locate the event blob inside `data` — nothing is copied, so
// both the heap loader and the mmap loader share one parser.
bool ParseTraceImage(const uint8_t* data, size_t size, const std::string& path,
                     TraceHeader* header, TraceSummary* summary, size_t* events_off,
                     size_t* events_len, std::string* error) {
  Cursor in(data, data + size);
  if (in.remaining() < sizeof kTraceMagic ||
      std::memcmp(in.pos(), kTraceMagic, sizeof kTraceMagic) != 0) {
    return Fail(error, "not a .sgxtrace file (bad magic): " + path);
  }
  in.Skip(sizeof kTraceMagic);

  TraceHeader& h = *header;
  h = TraceHeader{};
  h.version = in.Get32();
  if (h.version != kTraceVersion && h.version != kTraceVersionTransitions) {
    return Fail(error, "unsupported trace version " + std::to_string(h.version) +
                           " (expected " + std::to_string(kTraceVersion) + " or " +
                           std::to_string(kTraceVersionTransitions) + ")");
  }
  h.policy = in.Get8();
  h.enclave_mode = in.Get8();
  h.threads = in.Get32();
  h.seed = in.Get64();
  h.space_bytes = in.Get64();
  h.heap_reserve = in.Get64();
  h.l1_bytes = in.Get64();
  h.l1_ways = in.Get32();
  h.l2_bytes = in.Get64();
  h.l2_ways = in.Get32();
  h.l3_bytes = in.Get64();
  h.l3_ways = in.Get32();
  h.epc_bytes = in.Get64();
  DeserializeCosts(in, &h.costs, h.version);
  h.cost_table_id = in.Get64();
  h.workload = in.GetString();
  h.note = in.GetString();

  const uint64_t nbytes = in.Get64();
  if (!in.ok() || in.remaining() < nbytes) {
    return Fail(error, "truncated trace file: " + path);
  }
  *events_off = static_cast<size_t>(in.pos() - data);
  *events_len = static_cast<size_t>(nbytes);
  in.Skip(static_cast<size_t>(nbytes));

  TraceSummary& s = *summary;
  s = TraceSummary{};
  s.event_count = in.Get64();
  s.stream_hash = in.Get64();
  s.cpu_count = in.Get32();
  s.truncated = in.Get8();
  s.crashed = in.Get8();
  s.trap_kind = in.Get8();
  s.live_cycles = in.Get64();
  s.peak_vm_bytes = in.Get64();
  s.mpx_bt_count = in.Get32();
  s.trap_message = in.GetString();
  const uint32_t footer = in.Get32();
  if (!in.ok() || footer != kTraceFooterMagic) {
    return Fail(error, "corrupt trace file (bad footer): " + path);
  }

  // Integrity: for complete traces the retained bytes are the whole stream,
  // so their hash must match the summary. Truncated prefixes carry the
  // full-stream hash, which the prefix cannot reproduce; skip those.
  if (s.truncated == 0) {
    const uint64_t hash = FnvUpdate(kFnvOffset, data + *events_off, *events_len);
    if (hash != s.stream_hash) {
      return Fail(error, "trace stream hash mismatch (corrupt events): " + path);
    }
  }
  return true;
}

}  // namespace

bool SaveTrace(const Trace& trace, const std::string& path, std::string* error) {
  std::vector<uint8_t> out;
  out.reserve(trace.events.size() + 512);
  out.insert(out.end(), kTraceMagic, kTraceMagic + sizeof kTraceMagic);
  Put32(out, trace.header.version);

  const TraceHeader& h = trace.header;
  out.push_back(h.policy);
  out.push_back(h.enclave_mode);
  Put32(out, h.threads);
  Put64(out, h.seed);
  Put64(out, h.space_bytes);
  Put64(out, h.heap_reserve);
  Put64(out, h.l1_bytes);
  Put32(out, h.l1_ways);
  Put64(out, h.l2_bytes);
  Put32(out, h.l2_ways);
  Put64(out, h.l3_bytes);
  Put32(out, h.l3_ways);
  Put64(out, h.epc_bytes);
  SerializeCosts(out, h.costs, trace.header.version);
  Put64(out, h.cost_table_id);
  PutString(out, h.workload);
  PutString(out, h.note);

  Put64(out, trace.events.size());
  out.insert(out.end(), trace.events.begin(), trace.events.end());

  const TraceSummary& s = trace.summary;
  Put64(out, s.event_count);
  Put64(out, s.stream_hash);
  Put32(out, s.cpu_count);
  out.push_back(s.truncated);
  out.push_back(s.crashed);
  out.push_back(s.trap_kind);
  Put64(out, s.live_cycles);
  Put64(out, s.peak_vm_bytes);
  Put32(out, s.mpx_bt_count);
  PutString(out, s.trap_message);
  Put32(out, kTraceFooterMagic);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Fail(error, "cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return Fail(error, "short write: " + path);
  }
  return true;
}

bool LoadTrace(const std::string& path, Trace* trace, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Fail(error, "cannot open: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> raw(size > 0 ? static_cast<size_t>(size) : 0);
  const size_t read = raw.empty() ? 0 : std::fread(raw.data(), 1, raw.size(), f);
  std::fclose(f);
  if (read != raw.size()) {
    return Fail(error, "short read: " + path);
  }

  *trace = Trace{};
  size_t events_off = 0, events_len = 0;
  if (!ParseTraceImage(raw.data(), raw.size(), path, &trace->header, &trace->summary,
                       &events_off, &events_len, error)) {
    return false;
  }
  trace->events.assign(raw.data() + events_off, raw.data() + events_off + events_len);
  return true;
}

MappedTrace::~MappedTrace() { Unmap(); }

void MappedTrace::Unmap() {
#if SGXB_TRACE_HAVE_MMAP
  if (map_base_ != nullptr) {
    munmap(map_base_, map_size_);
  }
#endif
  map_base_ = nullptr;
  map_size_ = 0;
  events_begin_ = nullptr;
  events_size_ = 0;
  fallback_.clear();
}

bool MappedTrace::Load(const std::string& path, std::string* error) {
  Unmap();
  const uint8_t* data = nullptr;
  size_t size = 0;
#if SGXB_TRACE_HAVE_MMAP
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Fail(error, "cannot open: " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size < 0) {
    close(fd);
    return Fail(error, "cannot stat: " + path);
  }
  map_size_ = static_cast<size_t>(st.st_size);
  if (map_size_ > 0) {
    map_base_ = mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map_base_ == MAP_FAILED) {
      map_base_ = nullptr;
      close(fd);
      return Fail(error, "mmap failed: " + path);
    }
  }
  close(fd);
  data = static_cast<const uint8_t*>(map_base_);
  size = map_size_;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Fail(error, "cannot open: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  fallback_.resize(fsize > 0 ? static_cast<size_t>(fsize) : 0);
  const size_t read =
      fallback_.empty() ? 0 : std::fread(fallback_.data(), 1, fallback_.size(), f);
  std::fclose(f);
  if (read != fallback_.size()) {
    Unmap();
    return Fail(error, "short read: " + path);
  }
  data = fallback_.data();
  size = fallback_.size();
#endif

  size_t events_off = 0, events_len = 0;
  if (!ParseTraceImage(data, size, path, &header_, &summary_, &events_off, &events_len,
                       error)) {
    Unmap();
    return false;
  }
  events_begin_ = data + events_off;
  events_size_ = events_len;
  return true;
}

Trace MappedTrace::Copy() const {
  Trace out;
  out.header = header_;
  out.summary = summary_;
  out.events.assign(events_begin(), events_end());
  return out;
}

}  // namespace sgxb
