// DecodedTrace: the event stream decoded and delta-expanded exactly once.
//
// TraceReader decodes the compact byte stream sequentially, carrying a
// mutable delta context (current cpu, last address, open parallel regions).
// That makes a raw Trace cheap to store but expensive to replay repeatedly:
// every ReplayTrace call re-pays the varint/zigzag decode. A DecodedTrace
// front-loads that cost — one pass through TraceReader materializes a flat,
// absolute-operand event array plus side tables for the two bulky payloads
// (compute deltas, loop-run phases) — and is immutable afterwards, so any
// number of replays, on any number of host threads, can iterate it
// concurrently without re-parsing or synchronization. This is the shared
// substrate of the parallel sweep engine (src/trace/sweep.h).
//
// The decode uses the one TraceReader implementation, so the decoded event
// sequence is definitionally identical to what a streaming replay sees:
// ReplayDecoded(DecodedTrace(t), cfg) == ReplayTrace(t, cfg) bit-for-bit.

#ifndef SGXBOUNDS_SRC_TRACE_DECODED_TRACE_H_
#define SGXBOUNDS_SRC_TRACE_DECODED_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace_format.h"
#include "src/trace/trace_reader.h"

namespace sgxb {

// One decoded event, compacted to 48 bytes: the two payloads that would
// bloat every event (CpuDelta: 64 bytes, LoopPhase[8]: 320 bytes) live in
// side tables indexed by `aux`, so a multi-million-event trace decodes to a
// few tens of MB instead of hundreds.
struct DecodedEvent {
  TraceEventKind kind = TraceEventKind::kControl;
  uint8_t sub = 0;     // ParallelSub / MarkerSub / ControlSub
  uint8_t klass = 0;   // AccessClass for (run) accesses
  uint8_t period = 0;  // kLoopRun phase count
  uint32_t cpu = 0;    // post-switch semantics, as TraceEvent
  uint32_t addr = 0;
  uint32_t size = 0;
  uint32_t page = 0;
  uint32_t aux = 0;    // kCpuDelta: index into deltas(); kLoopRun: first phase
  int64_t stride = 0;
  uint64_t count = 0;
  uint64_t value = 0;
};

class DecodedTrace {
 public:
  DecodedTrace() = default;

  // Decodes the full retained stream. Truncated prefix traces decode as far
  // as the bytes go, exactly like a streaming reader would.
  explicit DecodedTrace(const Trace& trace);

  // Zero-copy variant: decodes `[begin, end)` (e.g. a MappedTrace's event
  // view) without an intermediate Trace. The bytes are only read during
  // construction; the mapping may be released afterwards.
  DecodedTrace(const TraceHeader& header, const TraceSummary& summary,
               const uint8_t* begin, const uint8_t* end);

  const TraceHeader& header() const { return header_; }
  const TraceSummary& summary() const { return summary_; }
  const std::vector<DecodedEvent>& events() const { return events_; }
  const CpuDelta& delta(uint32_t aux) const { return deltas_[aux]; }
  const LoopPhase* phases(uint32_t aux) const { return &phases_[aux]; }

  // FNV-1a of the encoded stream this was decoded from: the trace half of
  // the sweep engine's memoization key. For complete traces this equals
  // summary().stream_hash; truncated prefixes hash the retained bytes.
  uint64_t stream_hash() const { return stream_hash_; }
  uint64_t event_count() const { return events_.size(); }
  size_t encoded_bytes() const { return encoded_bytes_; }

 private:
  void Decode(const uint8_t* begin, const uint8_t* end);

  TraceHeader header_;
  TraceSummary summary_;
  std::vector<DecodedEvent> events_;
  std::vector<CpuDelta> deltas_;
  std::vector<LoopPhase> phases_;
  uint64_t stream_hash_ = 0;
  size_t encoded_bytes_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_DECODED_TRACE_H_
