// Trace replay: re-drives the cache + EPC + cost-model stack from a recorded
// event stream, without re-executing the workload.
//
// The replay machine is a bare MemorySystem plus one Cpu per recorded
// hardware thread — no enclave arena, no host data movement, no policy
// logic. Memory events go through the exact same Cpu::MemAccess /
// CommitPages code the live run used, so replaying under the recording
// configuration reproduces the live PerfCounters and cycle totals
// bit-for-bit; replaying under a different SimConfig (EPC size, cache
// geometry, cost table, enclave mode) yields the counters that configuration
// WOULD have produced, which is what turns one execution into an arbitrary
// configuration sweep.
//
// Three tiers, fastest first:
//   ConfigSweeper::Replay   — structural capture re-pricing (EPC size, cost
//                             table, enclave mode; cache geometry fixed)
//   ReplayDecoded           — full replay over a shared DecodedTrace (any
//                             config; decode amortized across replays)
//   ReplayTrace             — decode + full replay (one-shot convenience)
// All three produce bit-identical results for the configurations they
// cover; tests/trace_test.cc asserts the equivalences.

#ifndef SGXBOUNDS_SRC_TRACE_TRACE_REPLAY_H_
#define SGXBOUNDS_SRC_TRACE_TRACE_REPLAY_H_

#include "src/sim/machine.h"
#include "src/trace/decoded_trace.h"
#include "src/trace/trace_format.h"

namespace sgxb {

// The recording machine configuration; mutate fields to sweep.
SimConfig SimConfigFromHeader(const TraceHeader& header);

struct ReplayResult {
  uint64_t cycles = 0;       // main-cpu cycle total (the figures' time axis)
  PerfCounters counters;     // summed over all replayed cpus
  uint32_t cpu_count = 0;
  uint64_t events_replayed = 0;
  // Copied through from the recording (configuration-independent outcomes).
  uint64_t peak_vm_bytes = 0;
  uint32_t mpx_bt_count = 0;
  bool crashed = false;
  uint8_t trap_kind = 0;
};

// Full replay over a decoded stream. The DecodedTrace is read-only here, so
// any number of configs can replay the same decode concurrently.
ReplayResult ReplayDecoded(const DecodedTrace& trace, const SimConfig& config);

// One-shot convenience: decodes, then replays. A truncated prefix trace
// replays as far as it goes (useful for diffing, not for totals).
ReplayResult ReplayTrace(const Trace& trace, const SimConfig& config);

// Convenience: replay under the recording configuration.
inline ReplayResult ReplayTrace(const Trace& trace) {
  return ReplayTrace(trace, SimConfigFromHeader(trace.header));
}

// Structural-capture sweeps over every config axis that cannot disturb the
// cache model. The constructor runs ONE full replay under `base`, capturing
// (a) the EPC page touched by each enclave LLC miss, in order, (b) per
// "segment" (everything one cpu did between two structural boundaries) the
// count of every priced event category, and (c) the parallel-region /
// decommit structure. Replay(cfg) then re-prices the capture under any
// SimConfig sharing base's cache geometry in microseconds, bit-identical to
// a full ReplayDecoded at that config.
//
// Soundness of the capture axes (asserted by tests/trace_test.cc):
//   * EPC size: EpcSim::Touch only counts and charges — faults never alter
//     cache behaviour, so the LLC-miss page stream is EPC-size-independent.
//   * Cost table: prices only scale charges; every counter is price-blind.
//   * Enclave mode: ServiceL2Miss routes misses identically; the mode only
//     selects pricing (MEE/EPC surcharge, syscall exit cost). A capture
//     taken with enclave mode ON carries the page stream needed for both
//     modes; a capture taken with it OFF has no page stream and covers only
//     out-of-enclave configs.
//   * Cache geometry (l1/l2/l3 size or ways) changes hit/miss outcomes —
//     NOT coverable; Covers() returns false and callers (the sweep engine)
//     fall back to full replay.
class ConfigSweeper {
 public:
  // Captures from a decoded stream (preferred: the decode is shared).
  ConfigSweeper(const DecodedTrace& trace, const SimConfig& base);
  // Legacy convenience: decodes internally.
  ConfigSweeper(const Trace& trace, const SimConfig& base);

  // True when `cfg` is derivable from a capture under `base`.
  static bool CaptureCovers(const SimConfig& base, const SimConfig& cfg);
  bool Covers(const SimConfig& cfg) const { return CaptureCovers(config_, cfg); }

  // Re-prices the capture under `cfg`; requires Covers(cfg). Equivalent to
  // ReplayDecoded(trace, cfg), bit-identical counters included.
  ReplayResult Replay(const SimConfig& cfg) const;

  // EPC-axis shorthand (the fig08 working-set sweep).
  ReplayResult ReplayAt(uint64_t epc_bytes) const {
    SimConfig cfg = config_;
    cfg.epc_bytes = epc_bytes;
    return Replay(cfg);
  }

  // The structural replay's own result (at `base`).
  const ReplayResult& base_result() const { return base_; }
  const SimConfig& base_config() const { return config_; }

 private:
  friend struct SweepCapture;
  enum OpType : uint8_t { kSegment, kParallelBegin, kWorkerEnd, kParallelEnd, kDecommit };
  struct Op {
    OpType type;
    uint32_t cpu = 0;   // segment owner / worker / region caller
    uint32_t seg = 0;   // kSegment: index into segs_
    uint64_t value = 0; // kParallelEnd: spawn cycles; kDecommit: page | count<<32
  };
  // Per-segment priced-event counts. `resid` is the segment's
  // configuration-independent cycle remainder (raw Cpu::Charge sums),
  // derived by subtracting every priced component under `base` from the
  // observed segment cycles.
  struct SegCounts {
    uint64_t alu = 0, branches = 0, fp = 0, calls = 0, syscalls = 0;
    uint64_t l1_hits = 0, l2_hits = 0, l3_hits = 0, dram = 0;
    uint64_t minor_faults = 0;
    uint64_t ecalls = 0;
    uint64_t resid = 0;
    uint32_t misses = 0;  // miss-stream entries consumed by this segment

    // Total segment cycles under `cfg` when its miss slice produced
    // `faults` EPC faults.
    uint64_t Price(const SimConfig& cfg, uint64_t faults) const;
  };

  SimConfig config_;
  ReplayResult base_;
  uint64_t total_ecalls_ = 0;  // event-derived; repriced under any config
  std::vector<uint32_t> miss_pages_;  // EPC page per enclave LLC miss, in order
  std::vector<SegCounts> segs_;
  std::vector<Op> ops_;
};

// The EPC-size sweeper predates the generalized capture; same object.
using EpcSweeper = ConfigSweeper;

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_TRACE_REPLAY_H_
