// Trace replay: re-drives the cache + EPC + cost-model stack from a recorded
// event stream, without re-executing the workload.
//
// The replay machine is a bare MemorySystem plus one Cpu per recorded
// hardware thread — no enclave arena, no host data movement, no policy
// logic. Memory events go through the exact same Cpu::MemAccess /
// CommitPages code the live run used, so replaying under the recording
// configuration reproduces the live PerfCounters and cycle totals
// bit-for-bit; replaying under a different SimConfig (EPC size, cache
// geometry, cost table, enclave mode) yields the counters that configuration
// WOULD have produced, which is what turns one execution into an arbitrary
// configuration sweep.

#ifndef SGXBOUNDS_SRC_TRACE_TRACE_REPLAY_H_
#define SGXBOUNDS_SRC_TRACE_TRACE_REPLAY_H_

#include "src/sim/machine.h"
#include "src/trace/trace_format.h"

namespace sgxb {

// The recording machine configuration; mutate fields to sweep.
SimConfig SimConfigFromHeader(const TraceHeader& header);

struct ReplayResult {
  uint64_t cycles = 0;       // main-cpu cycle total (the figures' time axis)
  PerfCounters counters;     // summed over all replayed cpus
  uint32_t cpu_count = 0;
  uint64_t events_replayed = 0;
  // Copied through from the recording (configuration-independent outcomes).
  uint64_t peak_vm_bytes = 0;
  uint32_t mpx_bt_count = 0;
  bool crashed = false;
  uint8_t trap_kind = 0;
};

// Replays `trace` under `config`. A truncated prefix trace replays as far as
// it goes (useful for diffing, not for totals).
ReplayResult ReplayTrace(const Trace& trace, const SimConfig& config);

// Convenience: replay under the recording configuration.
inline ReplayResult ReplayTrace(const Trace& trace) {
  return ReplayTrace(trace, SimConfigFromHeader(trace.header));
}

// EPC-size sweeps, the fig08 working-set axis, without re-running the cache
// model per point. EPC faults never alter cache behaviour — EpcSim::Touch
// only counts and charges — so the LLC-miss page stream and every non-fault
// cycle charge are the same at every EPC size. The constructor runs one full
// structural replay under `base` (cache geometry, cost table, enclave mode),
// capturing that stream plus the per-cpu segment and parallel-region
// structure; ReplayAt() then re-simulates any EPC size from the capture in
// milliseconds, bit-identical to a full ReplayTrace at that size.
class EpcSweeper {
 public:
  // `base.enclave_mode` must be set: EPC sizes are meaningless outside an
  // enclave. base.epc_bytes is the structural replay's (and base_result's)
  // EPC size.
  EpcSweeper(const Trace& trace, const SimConfig& base);

  // Re-simulates the capture under `epc_bytes`. Equivalent to
  // ReplayTrace(trace, base with epc_bytes) — asserted by tests/trace_test.
  ReplayResult ReplayAt(uint64_t epc_bytes) const;

  // The structural replay's own result (at base.epc_bytes).
  const ReplayResult& base_result() const { return base_; }

 private:
  friend struct SweepCapture;
  enum OpType : uint8_t { kSegment, kParallelBegin, kWorkerEnd, kParallelEnd, kDecommit };
  struct Op {
    OpType type;
    uint32_t cpu = 0;       // segment owner / worker / region caller
    uint32_t misses = 0;    // kSegment: miss-stream entries consumed
    uint64_t value = 0;     // kSegment: fault-free cycles; kParallelEnd:
                            // spawn cycles; kDecommit: first_page | count<<32
  };

  SimConfig config_;
  ReplayResult base_;
  std::vector<uint32_t> miss_pages_;  // EPC page per enclave LLC miss, in order
  std::vector<Op> ops_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_TRACE_REPLAY_H_
