// Workload-level record/replay helpers: glue between the trace subsystem and
// the workload registry, used by bench/trace_tool and the replay-backed
// sweep modes of the figure drivers.

#ifndef SGXBOUNDS_SRC_TRACE_RECORD_H_
#define SGXBOUNDS_SRC_TRACE_RECORD_H_

#include <string>
#include <utility>

#include "src/trace/trace_recorder.h"
#include "src/trace/trace_replay.h"
#include "src/workloads/workload.h"

namespace sgxb {

struct RecordedRun {
  Trace trace;
  RunResult live;  // the recording run's own result
};

// Executes `info` once under `kind` on the machine in `spec`, recording the
// event stream. The returned trace identifies the workload as
// "<name>/<size-class>".
inline RecordedRun RecordWorkloadRun(const WorkloadInfo& info, PolicyKind kind,
                                     const MachineSpec& spec, const PolicyOptions& options,
                                     const WorkloadConfig& cfg, std::string note = "") {
  TraceRecorder recorder(info.name + "/" + SizeClassName(cfg.size), std::move(note));
  MachineSpec traced = spec;
  traced.trace = &recorder;
  RecordedRun out;
  out.live = info.run(kind, traced, options, cfg);
  out.trace = recorder.TakeTrace();
  return out;
}

// Presents a replay outcome in live-run clothing so the figure drivers'
// table printers work unchanged on replayed data.
inline RunResult ToRunResult(const ReplayResult& replay, const TraceHeader& header,
                             const TraceSummary& summary) {
  RunResult out;
  out.kind = static_cast<PolicyKind>(header.policy);
  out.cycles = replay.cycles;
  out.peak_vm_bytes = replay.peak_vm_bytes;
  out.counters = replay.counters;
  out.crashed = replay.crashed;
  out.trap = static_cast<TrapKind>(replay.trap_kind);
  out.trap_message = summary.trap_message;
  out.mpx_bt_count = replay.mpx_bt_count;
  return out;
}

inline RunResult ToRunResult(const ReplayResult& replay, const Trace& trace) {
  return ToRunResult(replay, trace.header, trace.summary);
}

// DecodedTrace carries the same header/summary; used by the sweep-backed
// figure modes (src/trace/sweep.h).
inline RunResult ToRunResult(const ReplayResult& replay, const DecodedTrace& trace) {
  return ToRunResult(replay, trace.header(), trace.summary());
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_RECORD_H_
