#include "src/trace/trace_replay.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

namespace sgxb {

SimConfig SimConfigFromHeader(const TraceHeader& h) {
  SimConfig cfg;
  cfg.l1_bytes = h.l1_bytes;
  cfg.l1_ways = h.l1_ways;
  cfg.l2_bytes = h.l2_bytes;
  cfg.l2_ways = h.l2_ways;
  cfg.l3_bytes = h.l3_bytes;
  cfg.l3_ways = h.l3_ways;
  cfg.epc_bytes = h.epc_bytes;
  cfg.enclave_mode = h.enclave_mode != 0;
  cfg.costs = h.costs;
  return cfg;
}

namespace {

// Applies an aggregated compute delta: identical arithmetic to the live
// charging paths (Cpu::Alu/Branch/Fp/Call/Syscall and raw Charge), priced
// from the REPLAY cost table so configuration sweeps reprice compute.
void ApplyDelta(Cpu& cpu, const CpuDelta& d, const SimConfig& cfg) {
  PerfCounters& c = cpu.counters();
  const CostModel& costs = cfg.costs;
  c.alu_ops += d.alu;
  c.branches += d.branches;
  c.fp_ops += d.fp;
  c.calls += d.calls;
  c.syscalls += d.syscalls;
  c.bounds_checks += d.bounds_checks;
  c.bounds_violations += d.bounds_violations;
  c.cycles += d.alu * costs.alu + d.branches * costs.branch + d.fp * costs.fp +
              d.calls * costs.call +
              d.syscalls * (cfg.enclave_mode ? costs.syscall_exit : costs.syscall_native) +
              d.raw_cycles;
  // Mirror of Cpu::Syscall's OCALL arm: every enclave-mode syscall is an
  // OCALL when the replay config's transition axis is on.
  if (cfg.enclave_mode && costs.TransitionsEnabled()) {
    c.ocalls += d.syscalls;
    const uint64_t oc = d.syscalls * costs.OcallCost();
    c.transition_cycles += oc;
    c.cycles += oc;
  }
}

struct Region {
  Cpu* caller;
  uint64_t makespan = 0;
};

}  // namespace

// Prices every configuration-dependent component of a segment under `cfg`
// (resid rides along unchanged: it is the configuration-independent
// remainder). `faults` is the EPC fault count the segment's miss slice
// produced under cfg's EPC size; ignored outside the enclave.
uint64_t ConfigSweeper::SegCounts::Price(const SimConfig& cfg, uint64_t faults) const {
  const CostModel& c = cfg.costs;
  uint64_t cyc = alu * c.alu + branches * c.branch + fp * c.fp + calls * c.call +
                 syscalls * (cfg.enclave_mode ? c.syscall_exit : c.syscall_native) +
                 l1_hits * c.l1_hit + l2_hits * c.l2_hit + l3_hits * c.l3_hit +
                 dram * c.dram + minor_faults * c.minor_fault + resid;
  if (cfg.enclave_mode) {
    cyc += dram * c.mee_line + faults * c.epc_fault;
    if (c.TransitionsEnabled()) {
      cyc += ecalls * c.ecall + syscalls * c.OcallCost();
    }
  }
  return cyc;
}

// Capture sink for ConfigSweeper: accumulates the cache-geometry-independent
// replay structure while the structural replay runs. A "segment" is
// everything the current cpu did between two structural boundaries; it is
// stored as priced-event COUNTS (plus the config-independent cycle
// remainder), so any EPC size, cost table or enclave mode can re-price it.
struct SweepCapture {
  explicit SweepCapture(ConfigSweeper* sweeper) : sweeper_(sweeper) {}

  void CloseSegment(uint32_t cpu_id, const Cpu& cpu) {
    Grow(cpu_id);
    const PerfCounters& now = cpu.counters();
    const PerfCounters& was = last_[cpu_id];
    ConfigSweeper::SegCounts s;
    s.alu = now.alu_ops - was.alu_ops;
    s.branches = now.branches - was.branches;
    s.fp = now.fp_ops - was.fp_ops;
    s.calls = now.calls - was.calls;
    s.syscalls = now.syscalls - was.syscalls;
    s.l1_hits = (now.l1_accesses - was.l1_accesses) - (now.l1_misses - was.l1_misses);
    s.l2_hits = (now.l1_misses - was.l1_misses) - (now.l2_misses - was.l2_misses);
    s.l3_hits = (now.llc_accesses - was.llc_accesses) - (now.llc_misses - was.llc_misses);
    s.dram = now.llc_misses - was.llc_misses;
    s.minor_faults = now.minor_faults - was.minor_faults;
    s.ecalls = TakePendingEcalls(cpu_id);
    s.misses = static_cast<uint32_t>(sweeper_->miss_pages_.size() - miss_mark_);
    const uint64_t cycles = now.cycles - was.cycles;
    const uint64_t faults = now.epc_faults - was.epc_faults;
    // Everything priced is derived from counters; the remainder is the
    // segment's raw (config-independent) charges. Exact by construction.
    s.resid = cycles - s.Price(sweeper_->config_, faults);
    if (cycles != 0 || s.misses != 0 ||
        (s.alu | s.branches | s.fp | s.calls | s.syscalls | s.l1_hits | s.l2_hits |
         s.l3_hits | s.dram | s.minor_faults | s.ecalls) != 0) {
      ConfigSweeper::Op op;
      op.type = ConfigSweeper::kSegment;
      op.cpu = cpu_id;
      op.seg = static_cast<uint32_t>(sweeper_->segs_.size());
      sweeper_->segs_.push_back(s);
      sweeper_->ops_.push_back(op);
    }
    last_[cpu_id] = now;
    miss_mark_ = sweeper_->miss_pages_.size();
  }

  void Push(ConfigSweeper::OpType type, uint32_t cpu, uint64_t value) {
    ConfigSweeper::Op op;
    op.type = type;
    op.cpu = cpu;
    op.value = value;
    sweeper_->ops_.push_back(op);
  }

  std::vector<uint32_t>* miss_log() { return &sweeper_->miss_pages_; }
  void PushDecommit(uint32_t first_page, uint64_t count) {
    Push(ConfigSweeper::kDecommit, 0, static_cast<uint64_t>(first_page) | count << 32);
  }
  void PushParallelBegin(uint32_t caller) { Push(ConfigSweeper::kParallelBegin, caller, 0); }
  void PushWorkerEnd(uint32_t cpu) { Push(ConfigSweeper::kWorkerEnd, cpu, 0); }
  void PushParallelEnd(uint32_t caller, uint64_t spawn) {
    Push(ConfigSweeper::kParallelEnd, caller, spawn);
  }

  // After the structural replay applies a parallel-region charge to the
  // caller, rebaseline it so the charge is not double-counted in the
  // caller's next segment (Replay re-derives it from worker cycles).
  void Rebaseline(uint32_t cpu_id, const Cpu& cpu) {
    Grow(cpu_id);
    last_[cpu_id] = cpu.counters();
  }

  void Grow(uint32_t cpu_id) {
    if (last_.size() <= cpu_id) {
      last_.resize(cpu_id + 1);
    }
  }

  // ECALL counts are event-derived (not counter diffs): the structural
  // replay's counters only see them when the base config charges them, but a
  // capture must reprice them under any config.
  void AddEcalls(uint32_t cpu_id, uint64_t n) {
    if (pending_ecalls_.size() <= cpu_id) {
      pending_ecalls_.resize(cpu_id + 1, 0);
    }
    pending_ecalls_[cpu_id] += n;
    sweeper_->total_ecalls_ += n;
  }
  uint64_t TakePendingEcalls(uint32_t cpu_id) {
    if (pending_ecalls_.size() <= cpu_id) {
      return 0;
    }
    const uint64_t n = pending_ecalls_[cpu_id];
    pending_ecalls_[cpu_id] = 0;
    return n;
  }

  ConfigSweeper* sweeper_;
  std::vector<PerfCounters> last_;
  std::vector<uint64_t> pending_ecalls_;
  size_t miss_mark_ = 0;
};

namespace {

ReplayResult ReplayDecodedImpl(const DecodedTrace& trace, const SimConfig& config,
                               SweepCapture* capture) {
  MemorySystem memsys(config);
  if (capture != nullptr) {
    memsys.set_miss_log(capture->miss_log());
  }
  std::vector<std::unique_ptr<Cpu>> cpus;
  auto cpu_at = [&](uint32_t id) -> Cpu& {
    while (cpus.size() <= id) {
      cpus.push_back(std::make_unique<Cpu>(&memsys));
    }
    return *cpus[id];
  };
  Cpu* cur = &cpu_at(0);
  uint32_t cur_id = 0;
  std::vector<Region> regions;
  std::vector<uint32_t> region_callers;

  for (const DecodedEvent& ev : trace.events()) {
    switch (ev.kind) {
      case TraceEventKind::kAccess:
        cur->MemAccess(ev.addr, ev.size, static_cast<AccessClass>(ev.klass));
        break;
      case TraceEventKind::kAccessRun:
        cur->MemAccessRun(ev.addr, ev.size, ev.stride, ev.count,
                          static_cast<AccessClass>(ev.klass));
        break;
      case TraceEventKind::kCpuDelta:
        ApplyDelta(*cur, trace.delta(ev.aux), config);
        break;
      case TraceEventKind::kCommit:
        cur->CommitPages(ev.page, static_cast<uint32_t>(ev.count));
        break;
      case TraceEventKind::kDecommit:
        if (capture != nullptr) {
          capture->CloseSegment(cur_id, *cur);
          capture->PushDecommit(ev.page, ev.count);
        }
        for (uint64_t i = 0; i < ev.count; ++i) {
          memsys.epc().Invalidate(static_cast<uint32_t>(ev.page + i));
        }
        break;
      case TraceEventKind::kParallel:
        switch (static_cast<ParallelSub>(ev.sub)) {
          case ParallelSub::kBegin:
            if (capture != nullptr) {
              capture->CloseSegment(cur_id, *cur);
              capture->PushParallelBegin(cur_id);
            }
            regions.push_back(Region{cur});
            region_callers.push_back(cur_id);
            break;
          case ParallelSub::kWorkerBegin:
            if (capture != nullptr) {
              capture->CloseSegment(cur_id, *cur);
            }
            cur = &cpu_at(ev.cpu);
            cur_id = ev.cpu;
            break;
          case ParallelSub::kWorkerEnd:
            if (capture != nullptr) {
              capture->CloseSegment(cur_id, *cur);
              capture->PushWorkerEnd(cur_id);
            }
            if (!regions.empty()) {
              regions.back().makespan = std::max(regions.back().makespan, cur->cycles());
            }
            break;
          case ParallelSub::kEnd: {
            if (!regions.empty()) {
              if (capture != nullptr) {
                capture->CloseSegment(cur_id, *cur);
              }
              const Region region = regions.back();
              regions.pop_back();
              cur = region.caller;
              const uint32_t caller_id = region_callers.back();
              region_callers.pop_back();
              if (capture != nullptr) {
                capture->PushParallelEnd(caller_id, ev.value);
              }
              cur_id = caller_id;
              // Mirrors RunParallel: the caller pays the slowest worker plus
              // the recorded spawn/join cost.
              cur->ChargeUntraced(region.makespan + ev.value);
              if (capture != nullptr) {
                capture->Rebaseline(caller_id, *cur);
              }
            }
            break;
          }
        }
        break;
      case TraceEventKind::kMarker:
        break;  // annotations only
      case TraceEventKind::kControl:
        if (static_cast<ControlSub>(ev.sub) == ControlSub::kSwitchCpu) {
          if (capture != nullptr) {
            capture->CloseSegment(cur_id, *cur);
          }
          cur = &cpu_at(ev.cpu);
          cur_id = ev.cpu;
        } else if (static_cast<ControlSub>(ev.sub) == ControlSub::kEcall) {
          if (capture != nullptr) {
            capture->AddEcalls(cur_id, ev.count);
          }
          // Same gate as Cpu::Ecall: free unless the replay config models an
          // enclave with the transition axis on.
          if (config.enclave_mode && config.costs.TransitionsEnabled()) {
            PerfCounters& c = cur->counters();
            c.ecalls += ev.count;
            const uint64_t cyc = ev.count * config.costs.ecall;
            c.transition_cycles += cyc;
            c.cycles += cyc;
          }
        } else if (static_cast<ControlSub>(ev.sub) == ControlSub::kLoopRun) {
          // Re-execute the periodic pattern access by access, in recorded
          // order; each phase goes through the same MemAccess(/Run) paths a
          // live run takes, so all counters stay bit-identical.
          const LoopPhase* phases = trace.phases(ev.aux);
          for (uint64_t n = 0; n < ev.count; ++n) {
            for (uint32_t j = 0; j < ev.period; ++j) {
              const LoopPhase& ph = phases[j];
              const uint32_t a = static_cast<uint32_t>(
                  static_cast<int64_t>(ph.addr) +
                  ph.iter_delta * static_cast<int64_t>(n));
              if (ph.count > 1) {
                cur->MemAccessRun(a, ph.size, ph.stride, ph.count,
                                  static_cast<AccessClass>(ph.klass));
              } else {
                cur->MemAccess(a, ph.size, static_cast<AccessClass>(ph.klass));
              }
            }
          }
        }
        break;
    }
  }

  if (capture != nullptr) {
    capture->CloseSegment(cur_id, *cur);
  }

  ReplayResult result;
  result.cycles = cpus[0]->cycles();
  for (const auto& cpu : cpus) {
    result.counters += cpu->counters();
  }
  result.cpu_count = static_cast<uint32_t>(cpus.size());
  result.events_replayed = trace.event_count();
  result.peak_vm_bytes = trace.summary().peak_vm_bytes;
  result.mpx_bt_count = trace.summary().mpx_bt_count;
  result.crashed = trace.summary().crashed != 0;
  result.trap_kind = trace.summary().trap_kind;
  return result;
}

}  // namespace

ReplayResult ReplayDecoded(const DecodedTrace& trace, const SimConfig& config) {
  return ReplayDecodedImpl(trace, config, nullptr);
}

ReplayResult ReplayTrace(const Trace& trace, const SimConfig& config) {
  return ReplayDecodedImpl(DecodedTrace(trace), config, nullptr);
}

ConfigSweeper::ConfigSweeper(const DecodedTrace& trace, const SimConfig& base)
    : config_(base) {
  SweepCapture capture(this);
  base_ = ReplayDecodedImpl(trace, base, &capture);
}

ConfigSweeper::ConfigSweeper(const Trace& trace, const SimConfig& base)
    : ConfigSweeper(DecodedTrace(trace), base) {}

bool ConfigSweeper::CaptureCovers(const SimConfig& base, const SimConfig& cfg) {
  // Cache geometry shapes the hit/miss pattern the capture froze.
  if (base.l1_bytes != cfg.l1_bytes || base.l1_ways != cfg.l1_ways ||
      base.l2_bytes != cfg.l2_bytes || base.l2_ways != cfg.l2_ways ||
      base.l3_bytes != cfg.l3_bytes || base.l3_ways != cfg.l3_ways) {
    return false;
  }
  // An out-of-enclave capture has no EPC page stream to re-simulate from.
  return base.enclave_mode || !cfg.enclave_mode;
}

ReplayResult ConfigSweeper::Replay(const SimConfig& cfg) const {
  if (!Covers(cfg)) {
    std::fprintf(stderr,
                 "ConfigSweeper::Replay: config not covered by the capture "
                 "(cache geometry differs, or enclave replay from an "
                 "out-of-enclave capture); use a full replay instead\n");
    std::abort();
  }
  EpcSim epc(cfg.epc_bytes);
  std::vector<uint64_t> cycles(std::max(base_.cpu_count, 1u), 0);
  std::vector<uint64_t> faults(cycles.size(), 0);
  struct Region2 {
    uint32_t caller;
    uint64_t makespan = 0;
  };
  std::vector<Region2> regions;
  size_t mi = 0;
  for (const Op& op : ops_) {
    switch (op.type) {
      case kSegment: {
        const SegCounts& s = segs_[op.seg];
        uint64_t f = 0;
        if (cfg.enclave_mode) {
          const size_t end = mi + s.misses;
          for (; mi < end; ++mi) {
            f += epc.Touch(miss_pages_[mi]) ? 1 : 0;
          }
        } else {
          mi += s.misses;  // keep the stream aligned for later segments
        }
        faults[op.cpu] += f;
        cycles[op.cpu] += s.Price(cfg, f);
        break;
      }
      case kParallelBegin:
        regions.push_back(Region2{op.cpu});
        break;
      case kWorkerEnd:
        if (!regions.empty()) {
          regions.back().makespan = std::max(regions.back().makespan, cycles[op.cpu]);
        }
        break;
      case kParallelEnd:
        if (!regions.empty()) {
          const Region2 region = regions.back();
          regions.pop_back();
          cycles[region.caller] += region.makespan + op.value;
        }
        break;
      case kDecommit: {
        if (cfg.enclave_mode) {
          const uint32_t first = static_cast<uint32_t>(op.value);
          const uint64_t count = op.value >> 32;
          for (uint64_t i = 0; i < count; ++i) {
            epc.Invalidate(first + static_cast<uint32_t>(i));
          }
        }
        break;
      }
    }
  }

  ReplayResult result = base_;
  result.cycles = cycles[0];
  uint64_t total_cycles = 0, total_faults = 0;
  for (size_t i = 0; i < cycles.size(); ++i) {
    total_cycles += cycles[i];
    total_faults += faults[i];
  }
  result.counters.cycles = total_cycles;
  result.counters.epc_faults = total_faults;
  // Transition counters depend on the target config's gate, not the base's.
  if (cfg.enclave_mode && cfg.costs.TransitionsEnabled()) {
    result.counters.ecalls = total_ecalls_;
    result.counters.ocalls = result.counters.syscalls;
    result.counters.transition_cycles =
        total_ecalls_ * cfg.costs.ecall +
        result.counters.syscalls * cfg.costs.OcallCost();
  } else {
    result.counters.ecalls = 0;
    result.counters.ocalls = 0;
    result.counters.transition_cycles = 0;
  }
  return result;
}

}  // namespace sgxb
