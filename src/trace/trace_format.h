// On-the-wire format of the .sgxtrace record/replay streams.
//
// A trace is the complete simulated-machine input of one policy run: every
// memory access (with AccessClass), page commit/decommit, parallel-region
// boundary, and an aggregate of the config-independent compute charges. It
// deliberately excludes everything the machine configuration *produces*
// (cache hits, EPC faults, cycle costs): replaying the stream through a
// fresh Cpu/MemorySystem stack under any EPC size, cache geometry, cost
// table or enclave mode re-derives those, so one execution can be simulated
// under every configuration.
//
// Encoding: a byte-oriented stream of events. The first byte packs the
// event kind in bits 0-2 and kind-specific payload bits above; operands are
// LEB128 varints, with addresses and page numbers delta-encoded (zigzag)
// against a running context shared by encoder and decoder. Monotone access
// runs (constant stride, same class/size) collapse into one kAccessRun
// event, which is what keeps streaming workloads' traces small and replay
// decode off the critical path.
//
// The format is versioned; golden-trace tests pin both the stream content
// and this encoding, so bump kTraceVersion on any change to either.

#ifndef SGXBOUNDS_SRC_TRACE_TRACE_FORMAT_H_
#define SGXBOUNDS_SRC_TRACE_TRACE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/cost_model.h"

namespace sgxb {

inline constexpr uint32_t kTraceVersion = 1;
// Version 2 streams are byte-identical to version 1 except the header cost
// table carries four extra fields (ecall/ocall/switchless_ocall/switchless).
// Recordings use v2 only when the transition axis is on, so every
// transitions-off trace — including the checked-in goldens — stays v1.
inline constexpr uint32_t kTraceVersionTransitions = 2;
inline constexpr char kTraceMagic[8] = {'S', 'G', 'X', 'T', 'R', 'A', 'C', 'E'};
inline constexpr uint32_t kTraceFooterMagic = 0x53545246u;  // "FRTS"

// --- event kinds (first byte, bits 0-2) ---

enum class TraceEventKind : uint8_t {
  kAccess = 0,     // bits 3-4: AccessClass, bits 5-7: size tag
  kAccessRun = 1,  // same payload bits; + stride + count operands
  kCpuDelta = 2,   // aggregated compute/raw-charge deltas for current cpu
  kCommit = 3,     // page-commit run (minor faults) on current cpu
  kDecommit = 4,   // decommit range: EPC residency invalidation
  kParallel = 5,   // bits 3-4: ParallelSub
  kMarker = 6,     // bits 3-4: MarkerSub (annotations; ignored by replay)
  kControl = 7,    // bits 3-7: ControlSub
};

enum class ParallelSub : uint8_t {
  kBegin = 0,        // operand: nthreads
  kWorkerBegin = 1,  // operand: cpu id (becomes current cpu)
  kWorkerEnd = 2,    // current worker done; replay samples its cycle total
  kEnd = 3,          // operand: spawn/join cycles; current cpu reverts to caller
};

enum class MarkerSub : uint8_t {
  kAlloc = 0,  // operands: addr delta, size
  kFree = 1,   // operand: addr delta
  kEpoch = 2,  // operand: epoch/phase id
};

enum class ControlSub : uint8_t {
  kEnd = 0,        // end of stream
  kSwitchCpu = 1,  // operand: cpu id
  // Periodic access pattern: P phases repeated N times. Instrumented loops
  // (data access + bounds/shadow accesses per element) emit one of these per
  // loop instead of millions of per-access events; this is what makes traces
  // compact and replay faster than live execution.
  // Operands: P, N, then per phase: a shape byte (klass | size-tag<<2 |
  // has-run<<5), zigzag addr0 delta (phase 0 vs the running address context,
  // later phases vs the previous phase's addr0), zigzag per-iteration
  // address step, [zigzag intra-run stride + varint intra-run count when
  // has-run], [varint size when size-tag 0].
  kLoopRun = 2,
  // Aggregated ECALL count for the current cpu since its last kEcall event
  // (operand: varint count). Structural like syscalls-in-deltas: the count is
  // config-independent, and replay prices it only when the replay config is
  // enclave-mode with the transition axis enabled.
  kEcall = 3,
};

// Phase count cap for kLoopRun events (covers the patterns real
// instrumented loops produce; larger periods simply don't coalesce).
inline constexpr uint32_t kMaxLoopPeriod = 8;

// Size tag in kAccess/kAccessRun bits 5-7: common power-of-two access sizes
// encode in the opcode byte, everything else (tag 0) as a trailing varint.
inline uint8_t SizeTagOf(uint32_t size) {
  switch (size) {
    case 1: return 1;
    case 2: return 2;
    case 4: return 3;
    case 8: return 4;
    case 16: return 5;
    case 32: return 6;
    case 64: return 7;
    default: return 0;
  }
}
inline uint32_t SizeOfTag(uint8_t tag) {
  return tag == 0 ? 0 : 1u << (tag - 1);
}

// kCpuDelta field presence mask (one varint per set bit, in this order).
enum CpuDeltaField : uint8_t {
  kDeltaAlu = 1u << 0,
  kDeltaBranch = 1u << 1,
  kDeltaFp = 1u << 2,
  kDeltaCall = 1u << 3,
  kDeltaSyscall = 1u << 4,
  kDeltaBoundsChecks = 1u << 5,
  kDeltaBoundsViolations = 1u << 6,
  kDeltaRawCycles = 1u << 7,
};

struct CpuDelta {
  uint64_t alu = 0;
  uint64_t branches = 0;
  uint64_t fp = 0;
  uint64_t calls = 0;
  uint64_t syscalls = 0;
  uint64_t bounds_checks = 0;
  uint64_t bounds_violations = 0;
  uint64_t raw_cycles = 0;  // constant-cost Cpu::Charge sums (heap, libc, ...)

  bool Empty() const {
    return (alu | branches | fp | calls | syscalls | bounds_checks | bounds_violations |
            raw_cycles) == 0;
  }
};

// --- varints ---

inline void PutVarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutZigZag(std::vector<uint8_t>& out, int64_t v) { PutVarint(out, ZigZag(v)); }

// Decode-side varint: advances *p; returns 0 and pins *p to end on overrun
// (the caller detects truncation by position).
inline uint64_t GetVarint(const uint8_t** p, const uint8_t* end) {
  uint64_t v = 0;
  uint32_t shift = 0;
  while (*p < end) {
    const uint8_t byte = *(*p)++;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
  return v;
}

// --- stream hashing (FNV-1a 64) ---

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t FnvUpdate(uint64_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * kFnvPrime;
  }
  return h;
}

// Stable id of a cost table (reported in headers and repro banners so two
// result sets are comparable at a glance).
inline uint64_t CostTableId(const CostModel& c) {
  const uint32_t fields[] = {c.alu,       c.branch,     c.fp,          c.call,
                             c.l1_hit,    c.l2_hit,     c.l3_hit,      c.dram,
                             c.mee_line,  c.epc_fault,  c.minor_fault, c.syscall_exit,
                             c.syscall_native};
  uint64_t h = kFnvOffset;
  for (uint32_t f : fields) {
    uint8_t bytes[4];
    bytes[0] = static_cast<uint8_t>(f);
    bytes[1] = static_cast<uint8_t>(f >> 8);
    bytes[2] = static_cast<uint8_t>(f >> 16);
    bytes[3] = static_cast<uint8_t>(f >> 24);
    h = FnvUpdate(h, bytes, 4);
  }
  // The transition fields join the hash only when the axis is on: every
  // transitions-off table (including the default) keeps its pre-transition
  // id, which the golden-trace regression pins.
  if (c.TransitionsEnabled()) {
    const uint32_t extra[] = {c.ecall, c.ocall, c.switchless_ocall, c.switchless};
    for (uint32_t f : extra) {
      uint8_t bytes[4];
      bytes[0] = static_cast<uint8_t>(f);
      bytes[1] = static_cast<uint8_t>(f >> 8);
      bytes[2] = static_cast<uint8_t>(f >> 16);
      bytes[3] = static_cast<uint8_t>(f >> 24);
      h = FnvUpdate(h, bytes, 4);
    }
  }
  return h;
}

// --- header / summary ---

// Everything needed to rebuild the recording machine configuration, plus
// identification of what was recorded.
struct TraceHeader {
  uint32_t version = kTraceVersion;
  uint8_t policy = 0;  // PolicyKind
  uint8_t enclave_mode = 1;
  uint32_t threads = 1;
  uint64_t seed = 0;
  uint64_t space_bytes = 0;
  uint64_t heap_reserve = 0;
  // SimConfig of the recording machine.
  uint64_t l1_bytes = 0;
  uint32_t l1_ways = 0;
  uint64_t l2_bytes = 0;
  uint32_t l2_ways = 0;
  uint64_t l3_bytes = 0;
  uint32_t l3_ways = 0;
  uint64_t epc_bytes = 0;
  CostModel costs;
  uint64_t cost_table_id = 0;
  // Identification (free-form; set by the recording driver).
  std::string workload;
  std::string note;
};

// Written after the event stream: the live run's outcome, used to validate
// same-config replays and to carry the config-independent result fields
// (peak VM, crash status) that replay cannot re-derive.
struct TraceSummary {
  uint64_t event_count = 0;  // total events, including any not retained
  uint64_t stream_hash = 0;  // FNV-1a over ALL encoded event bytes
  uint32_t cpu_count = 0;
  uint8_t truncated = 0;  // event bytes cut at the recorder's event limit
  uint8_t crashed = 0;
  uint8_t trap_kind = 0;  // TrapKind, valid when crashed
  uint64_t live_cycles = 0;       // main-cpu cycle total of the live run
  uint64_t peak_vm_bytes = 0;     // config-independent; copied into replays
  uint32_t mpx_bt_count = 0;      // config-independent; copied into replays
  std::string trap_message;
};

// A complete in-memory trace.
struct Trace {
  TraceHeader header;
  TraceSummary summary;
  std::vector<uint8_t> events;  // encoded stream (possibly a truncated prefix)
};

const char* TraceEventKindName(TraceEventKind kind);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_TRACE_TRACE_FORMAT_H_
