// Compatibility facade over the scheme-generic check-optimization pipeline
// (src/ir/opt/). The historical entry points — the reproduction of the
// paper's LLVM pass (SS5.1) and of the baselines' compiler support — are
// kept as thin wrappers:
//
//   RunSgxBoundsPass: rewrites malloc/alloca/free to the tagged wrappers,
//     masks pointer arithmetic (kMaskPtr after every gep), inserts kSgxCheck
//     before every load/store. Options control the two SS4.4 optimizations
//     (safe-access elision, SCEV loop hoisting).
//   RunAsanPass: allocator interception + shadow check before every access.
//   RunMpxPass: bndcl/bndcu before every access, bndldx after pointer loads,
//     bndstx after pointer stores.
//
// New code (every SchemeIrLowering specialization) should call
// RunCheckPipeline directly: it adds the ShadowBound-style passes
// (redundant-check elimination, pattern loop hoisting, in-field elision)
// behind per-scheme legality masks. The analyses formerly declared here
// (FindCountedLoops, LoopInfo, safe-access analysis) live in
// src/ir/opt/analysis.h and are re-exported through this header.
//
// All passes preserve program semantics for in-bounds executions.

#ifndef SGXBOUNDS_SRC_IR_PASSES_H_
#define SGXBOUNDS_SRC_IR_PASSES_H_

#include "src/ir/opt/analysis.h"
#include "src/ir/opt/pipeline.h"

namespace sgxb {

struct SgxPassOptions {
  bool elide_safe = true;
  bool hoist_loops = true;
  // SS4.4: hoisting applies only to loops with increments up to 1024 bytes.
  uint32_t max_hoist_stride = 1024;
};

struct SgxPassStats {
  uint32_t checks_inserted = 0;
  uint32_t checks_elided_safe = 0;
  uint32_t checks_hoisted = 0;
  uint32_t geps_masked = 0;
};

SgxPassStats RunSgxBoundsPass(IrFunction& fn, const SgxPassOptions& options = {});

// Same lowering for a registry-plugged tagged-pointer scheme: emits the
// generic kSchemeCheck/kSchemeCheckRange opcodes and the "scheme" allocation
// symbol, dispatched at run time to the attached IrSchemeRuntime.
SgxPassStats RunSchemePass(IrFunction& fn, const SgxPassOptions& options = {});

struct BaselinePassStats {
  uint32_t checks_inserted = 0;
  uint32_t ptr_loads_instrumented = 0;   // MPX bndldx
  uint32_t ptr_stores_instrumented = 0;  // MPX bndstx
};

BaselinePassStats RunAsanPass(IrFunction& fn);
BaselinePassStats RunMpxPass(IrFunction& fn);

// True if the load/store at (block, index) is provably in bounds: its
// address is gep(object, const index) with const offset+size within the
// object's statically known size.
bool IsProvablySafeAccess(const IrFunction& fn, uint32_t block, size_t instr_index);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_PASSES_H_
