#include "src/ir/ir.h"

#include <sstream>

namespace sgxb {

uint32_t IrTypeSize(IrType type) {
  switch (type) {
    case IrType::kI8:
      return 1;
    case IrType::kI16:
      return 2;
    case IrType::kI32:
      return 4;
    case IrType::kI64:
    case IrType::kPtr:
      return 8;
  }
  return 8;
}

const char* IrTypeName(IrType type) {
  switch (type) {
    case IrType::kI8:
      return "i8";
    case IrType::kI16:
      return "i16";
    case IrType::kI32:
      return "i32";
    case IrType::kI64:
      return "i64";
    case IrType::kPtr:
      return "ptr";
  }
  return "?";
}

const char* IrOpName(IrOp op) {
  switch (op) {
    case IrOp::kConst:
      return "const";
    case IrOp::kArg:
      return "arg";
    case IrOp::kAdd:
      return "add";
    case IrOp::kSub:
      return "sub";
    case IrOp::kMul:
      return "mul";
    case IrOp::kUDiv:
      return "udiv";
    case IrOp::kURem:
      return "urem";
    case IrOp::kAnd:
      return "and";
    case IrOp::kOr:
      return "or";
    case IrOp::kXor:
      return "xor";
    case IrOp::kShl:
      return "shl";
    case IrOp::kLShr:
      return "lshr";
    case IrOp::kICmp:
      return "icmp";
    case IrOp::kPhi:
      return "phi";
    case IrOp::kBr:
      return "br";
    case IrOp::kCondBr:
      return "condbr";
    case IrOp::kRet:
      return "ret";
    case IrOp::kAlloca:
      return "alloca";
    case IrOp::kMalloc:
      return "malloc";
    case IrOp::kFree:
      return "free";
    case IrOp::kGep:
      return "gep";
    case IrOp::kLoad:
      return "load";
    case IrOp::kStore:
      return "store";
    case IrOp::kSgxCheck:
      return "sgx.check";
    case IrOp::kSgxCheckUpper:
      return "sgx.check.ub";
    case IrOp::kSgxCheckRange:
      return "sgx.check.range";
    case IrOp::kMaskPtr:
      return "sgx.maskptr";
    case IrOp::kAsanCheck:
      return "asan.check";
    case IrOp::kMpxCheck:
      return "mpx.check";
    case IrOp::kMpxLdx:
      return "mpx.bndldx";
    case IrOp::kMpxStx:
      return "mpx.bndstx";
    case IrOp::kSchemeCheck:
      return "scheme.check";
    case IrOp::kSchemeCheckRange:
      return "scheme.check.range";
    case IrOp::kCall:
      return "call";
  }
  return "?";
}

std::string IrFunction::ToString() const {
  std::ostringstream os;
  os << "func @" << name << "(" << num_args << " args)\n";
  for (size_t b = 0; b < blocks.size(); ++b) {
    os << "bb" << b << ":";
    if (!blocks[b].preds.empty()) {
      os << "  ; preds:";
      for (uint32_t p : blocks[b].preds) {
        os << " bb" << p;
      }
    }
    os << "\n";
    for (const auto& instr : blocks[b].instrs) {
      os << "  ";
      if (instr.id != 0) {
        os << "%" << instr.id << " = ";
      }
      os << IrOpName(instr.op) << " " << IrTypeName(instr.type);
      for (ValueId a : instr.args) {
        os << " %" << a;
      }
      if (instr.imm != 0 || instr.op == IrOp::kConst || instr.op == IrOp::kBr ||
          instr.op == IrOp::kCondBr) {
        os << " #" << instr.imm;
      }
      if (instr.imm2 != 0) {
        os << " ##" << instr.imm2;
      }
      if (!instr.symbol.empty()) {
        os << " @" << instr.symbol;
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string IrFunction::Verify() const {
  if (blocks.empty()) {
    return "function has no blocks";
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    const IrBlock& block = blocks[b];
    if (block.instrs.empty()) {
      return "empty block bb" + std::to_string(b);
    }
    const IrOp term = block.instrs.back().op;
    if (term != IrOp::kBr && term != IrOp::kCondBr && term != IrOp::kRet) {
      return "bb" + std::to_string(b) + " lacks a terminator";
    }
    bool seen_non_phi = false;
    for (const auto& instr : block.instrs) {
      if (instr.op == IrOp::kPhi) {
        if (seen_non_phi) {
          return "phi after non-phi in bb" + std::to_string(b);
        }
        if (instr.args.size() != block.preds.size()) {
          return "phi arity mismatch in bb" + std::to_string(b);
        }
      } else {
        seen_non_phi = true;
      }
      for (ValueId a : instr.args) {
        if (a == 0 || a >= num_values) {
          return "operand out of range in bb" + std::to_string(b);
        }
      }
      if (instr.op == IrOp::kBr && instr.imm >= static_cast<int64_t>(blocks.size())) {
        return "branch target out of range";
      }
      if (instr.op == IrOp::kCondBr &&
          (instr.imm >= static_cast<int64_t>(blocks.size()) ||
           instr.imm2 >= static_cast<int64_t>(blocks.size()))) {
        return "condbr target out of range";
      }
    }
  }
  return "";
}

size_t IrFunction::InstrCount() const {
  size_t n = 0;
  for (const auto& block : blocks) {
    n += block.instrs.size();
  }
  return n;
}

size_t IrFunction::CountOp(IrOp op) const {
  size_t n = 0;
  for (const auto& block : blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.op == op) {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace sgxb
