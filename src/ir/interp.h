// IR interpreter executing over the simulated enclave.
//
// Every instruction charges its cost on the Cpu; loads/stores move real bytes
// through Enclave::Load/Store (cache + EPC + MEE charged); instrumentation
// opcodes call into the attached hardening runtimes. Violations surface as
// SimTrap, exactly like the policy layer.
//
// Pointer values follow the instrumentation mode: an uninstrumented program
// holds raw 32-bit addresses in 64-bit SSA values; an SGXBounds-instrumented
// program holds tagged pointers (the pass rewrites allocations, masks
// arithmetic, and inserts checks).
//
// Three execution engines produce bit-identical simulated results:
//
//   * reference - the original per-instruction switch over IrInstr vectors
//     (RunReference); kept as the differential-testing oracle;
//   * threaded  - functions are pre-decoded once into a flat micro-op stream
//     (src/ir/exec/) and executed with direct-threaded dispatch; decoded
//     programs are cached per (function, instrumentation) pair;
//   * jit       - decoded streams are template-compiled to native x86-64
//     (src/ir/exec/jit/) and cached under the same key; where executable
//     memory is unavailable, jit falls back to threaded with a one-time
//     warning (SGXB_IR_FORCE_NOEXEC forces that path).
//
// Run() routes according to set_engine(); the default follows the process
// default (--ir_engine flag; threaded unless overridden).

#ifndef SGXBOUNDS_SRC_IR_INTERP_H_
#define SGXBOUNDS_SRC_IR_INTERP_H_

#include <vector>

#include "src/asan/asan_runtime.h"
#include "src/common/ir_engine.h"
#include "src/ir/exec/decode_cache.h"
#include "src/ir/exec/jit/jit_cache.h"
#include "src/ir/ir.h"
#include "src/ir/scheme_rt.h"
#include "src/mpx/mpx_runtime.h"
#include "src/runtime/stack.h"
#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {

struct InterpStats {
  uint64_t steps = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t checks = 0;
};

class Interpreter {
 public:
  Interpreter(Enclave* enclave, Heap* heap, StackAllocator* stack);

  // Attach hardening runtimes (required iff the program contains the
  // corresponding instrumentation opcodes).
  void AttachSgx(SgxBoundsRuntime* rt) { sgx_ = rt; }
  void AttachAsan(AsanRuntime* rt) { asan_ = rt; }
  void AttachMpx(MpxRuntime* rt) { mpx_ = rt; }
  // Generic hook for registry-plugged schemes (kSchemeCheck/"scheme" opcodes
  // emitted by RunSchemePass).
  void AttachScheme(IrSchemeRuntime* rt) { scheme_ = rt; }

  // Selects the execution engine for subsequent Run() calls. kDefault
  // resolves to the process default (see src/common/ir_engine.h).
  void set_engine(IrEngine engine) { engine_ = engine; }
  IrEngine engine() const { return engine_; }

  // Executes `fn`; returns the kRet value (0 if none). Throws SimTrap on
  // memory-safety violations and on exceeding `max_steps` (runaway loop).
  uint64_t Run(const IrFunction& fn, Cpu& cpu, const std::vector<uint64_t>& args = {},
               uint64_t max_steps = 200 * 1000 * 1000);

  // The oracle: always interprets IrInstr vectors directly, regardless of
  // the selected engine.
  uint64_t RunReference(const IrFunction& fn, Cpu& cpu,
                        const std::vector<uint64_t>& args = {},
                        uint64_t max_steps = 200 * 1000 * 1000);

  const InterpStats& stats() const { return stats_; }
  const DecodeCache& decode_cache() const { return cache_; }
  const JitCache& jit_cache() const { return jit_cache_; }

 private:
  // Direct-threaded execution of a decoded program (src/ir/exec/engine.cc).
  uint64_t RunDecoded(const DecodedFunction& df, Cpu& cpu,
                      const std::vector<uint64_t>& args, uint64_t max_steps);
  // Native execution of a compiled program (src/ir/exec/jit/jit_engine.cc).
  uint64_t RunJit(const jit::JitProgram& jp, Cpu& cpu,
                  const std::vector<uint64_t>& args, uint64_t max_steps);

  Enclave* enclave_;
  Heap* heap_;
  StackAllocator* stack_;
  SgxBoundsRuntime* sgx_ = nullptr;
  AsanRuntime* asan_ = nullptr;
  MpxRuntime* mpx_ = nullptr;
  IrSchemeRuntime* scheme_ = nullptr;
  InterpStats stats_;
  IrEngine engine_ = IrEngine::kDefault;
  DecodeCache cache_;
  JitCache jit_cache_;

  // Scratch buffers reused across Run() calls (sized to fn.num_values each
  // call; capacity persists so steady-state runs allocate nothing). The MPX
  // side table is a flat array indexed by SSA id — the "register" association
  // a compiler tracks for pointer temps — with a validity byte instead of a
  // hash lookup. Only populated when an MPX runtime is attached.
  std::vector<uint64_t> values_;
  std::vector<MpxBounds> mpx_bounds_;
  std::vector<uint8_t> mpx_valid_;
  std::vector<std::pair<ValueId, uint64_t>> phi_scratch_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_INTERP_H_
