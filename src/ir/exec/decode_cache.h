// Memoizes DecodeFunction results per (function, instrumentation) pair so
// repeated Interpreter::Run calls and multi-policy bench loops decode once.
//
// The key is (structural hash, name, mpx-tracking): re-instrumenting a
// function (the passes mutate it in place) changes the hash, so a stale
// entry can never be executed; attaching an MPX runtime switches to the
// bounds-tracking decode of the same body.

#ifndef SGXBOUNDS_SRC_IR_EXEC_DECODE_CACHE_H_
#define SGXBOUNDS_SRC_IR_EXEC_DECODE_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "src/common/ir_engine.h"
#include "src/ir/exec/decoder.h"

namespace sgxb {

class DecodeCache {
 public:
  const DecodedFunction& Get(const IrFunction& fn, const DecodeOptions& options) {
    const Key key{HashIrFunction(fn), fn.name, options.track_mpx, options.fuse};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      GlobalIrExecStats().decode_misses.fetch_add(1, std::memory_order_relaxed);
      it = entries_
               .emplace(key, std::make_unique<DecodedFunction>(DecodeFunction(fn, options)))
               .first;
    } else {
      ++hits_;
      GlobalIrExecStats().decode_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return *it->second;
  }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  using Key = std::tuple<uint64_t, std::string, bool, bool>;
  std::map<Key, std::unique_ptr<DecodedFunction>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_DECODE_CACHE_H_
