#include "src/ir/exec/decoder.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/check.h"

namespace sgxb {

namespace {

bool IsTerminator(IrOp op) {
  return op == IrOp::kBr || op == IrOp::kCondBr || op == IrOp::kRet;
}

// A branch-target field awaiting edge resolution.
struct Fixup {
  size_t uop_index;
  bool second_field;  // patch imm2 instead of imm
  uint32_t pred;
  uint32_t succ;
};

struct Move {
  uint32_t dst;
  uint32_t src;
};

class Decoder {
 public:
  Decoder(const IrFunction& fn, const DecodeOptions& options) : fn_(fn), options_(options) {}

  DecodedFunction Run() {
    CHECK(!fn_.blocks.empty());
    ScanConstants();
    block_entry_.resize(fn_.blocks.size());
    for (uint32_t b = 0; b < fn_.blocks.size(); ++b) {
      LowerBlock(b);
    }
    ResolveEdges();
    df_.num_slots = fn_.num_values + max_stub_temps_;
    df_.entry = block_entry_[0];
    df_.track_mpx = options_.track_mpx;
    return std::move(df_);
  }

 private:
  MicroOp& Emit(UOp op) {
    df_.code.emplace_back();
    df_.code.back().op = op;
    return df_.code.back();
  }

  void ScanConstants() {
    is_const_.assign(fn_.num_values, 0);
    const_val_.assign(fn_.num_values, 0);
    for (const IrBlock& bb : fn_.blocks) {
      for (const IrInstr& in : bb.instrs) {
        if (in.op == IrOp::kConst) {
          is_const_[in.id] = 1;
          const_val_[in.id] = static_cast<uint64_t>(in.imm);
        }
      }
    }
  }

  // --- straight-line lowering ---------------------------------------------------

  // Maps a slot-slot ALU op to its const-rhs superinstruction, or kCount if
  // the op has no folded form (div/rem keep their runtime zero check).
  static UOp ImmForm(IrOp op) {
    switch (op) {
      case IrOp::kAdd:
        return UOp::kAddImm;
      case IrOp::kSub:
        return UOp::kSubImm;
      case IrOp::kMul:
        return UOp::kMulImm;
      case IrOp::kAnd:
        return UOp::kAndImm;
      case IrOp::kOr:
        return UOp::kOrImm;
      case IrOp::kXor:
        return UOp::kXorImm;
      case IrOp::kShl:
        return UOp::kShlImm;
      case IrOp::kLShr:
        return UOp::kLShrImm;
      default:
        return UOp::kCount;
    }
  }

  static UOp SlotForm(IrOp op) {
    switch (op) {
      case IrOp::kAdd:
        return UOp::kAdd;
      case IrOp::kSub:
        return UOp::kSub;
      case IrOp::kMul:
        return UOp::kMul;
      case IrOp::kUDiv:
        return UOp::kUDiv;
      case IrOp::kURem:
        return UOp::kURem;
      case IrOp::kAnd:
        return UOp::kAnd;
      case IrOp::kOr:
        return UOp::kOr;
      case IrOp::kXor:
        return UOp::kXor;
      case IrOp::kShl:
        return UOp::kShl;
      case IrOp::kLShr:
        return UOp::kLShr;
      default:
        return UOp::kCount;
    }
  }

  // True if `in[i..]` starts the xorshift mixing pair
  //   t = shl/lshr x, const ; d = xor {x, t} (either operand order)
  // which fuses into one dispatch. The intermediate t is still written, so
  // later uses of it stay valid without liveness analysis, and ALU results
  // carry no MPX bounds, so the fusion is safe under bounds tracking.
  bool MatchXorShiftImm(const std::vector<IrInstr>& instrs, size_t i, size_t end,
                        UOp* fused) const {
    if (!options_.fuse || i + 1 >= end) {
      return false;
    }
    const IrInstr& s = instrs[i];
    if ((s.op != IrOp::kShl && s.op != IrOp::kLShr) || s.args.size() < 2 ||
        !is_const_[s.args[1]]) {
      return false;
    }
    const IrInstr& x = instrs[i + 1];
    if (x.op != IrOp::kXor || x.args.size() < 2) {
      return false;
    }
    const bool forward = x.args[0] == s.args[0] && x.args[1] == s.id;
    const bool swapped = x.args[0] == s.id && x.args[1] == s.args[0];
    if (!forward && !swapped) {
      return false;
    }
    *fused = s.op == IrOp::kShl ? UOp::kXorShlImm : UOp::kXorLShrImm;
    return true;
  }

  // True if `in[i..]` starts the instrumented access shape the SGXBounds
  // pass emits:
  //   t = gep base, idx ; p = maskptr t, base ; [sgxcheck p] ; load/store p
  // Fills the fused opcode and the number of IR instructions consumed (3
  // without a check, 4 with). Scale and offset must both fit 32 bits so one
  // imm field can carry them packed.
  bool MatchGepMaskAccess(const std::vector<IrInstr>& instrs, size_t i, size_t end,
                          UOp* fused, size_t* consumed) const {
    if (!options_.fuse || options_.track_mpx || i + 2 >= end) {
      return false;
    }
    const IrInstr& gep = instrs[i];
    if (gep.op != IrOp::kGep || gep.imm < 0 || gep.imm > 0xffffffff ||
        gep.imm2 < 0 || gep.imm2 > 0xffffffff) {
      return false;
    }
    const IrInstr& mask = instrs[i + 1];
    if (mask.op != IrOp::kMaskPtr || mask.args.size() < 2 ||
        mask.args[0] != gep.id || mask.args[1] != gep.args[0]) {
      return false;
    }
    size_t a = i + 2;
    bool has_check = false;
    bool upper = false;
    bool scheme = false;
    const IrInstr& chk = instrs[a];
    if (chk.op == IrOp::kSgxCheck || chk.op == IrOp::kSgxCheckUpper ||
        chk.op == IrOp::kSchemeCheck) {
      if (a + 1 >= end || chk.args.empty() || chk.args[0] != mask.id) {
        return false;
      }
      has_check = true;
      upper = chk.op == IrOp::kSgxCheckUpper;
      scheme = chk.op == IrOp::kSchemeCheck;
      ++a;
    }
    const IrInstr& acc = instrs[a];
    const uint32_t access_size = IrTypeSize(acc.type);
    if (access_size > 0xff ||
        (has_check && chk.imm != static_cast<int64_t>(access_size))) {
      return false;
    }
    if (acc.op == IrOp::kLoad && !acc.args.empty() && acc.args[0] == mask.id) {
      *fused = has_check
                   ? (scheme ? UOp::kGepMaskSchemeCheckLoad
                             : upper ? UOp::kGepMaskSgxCheckUpperLoad
                                     : UOp::kGepMaskSgxCheckLoad)
                   : UOp::kGepMaskLoad;
    } else if (acc.op == IrOp::kStore && acc.args.size() >= 2 &&
               acc.args[1] == mask.id) {
      *fused = has_check
                   ? (scheme ? UOp::kGepMaskSchemeCheckStore
                             : upper ? UOp::kGepMaskSgxCheckUpperStore
                                     : UOp::kGepMaskSgxCheckStore)
                   : UOp::kGepMaskStore;
    } else {
      return false;
    }
    *consumed = a - i + 1;
    return true;
  }

  // True if `in[i..]` starts the gep+sgxcheck+access pattern; fills the
  // fused opcode. Requires the check and access to agree on size so one aux
  // field carries both.
  bool MatchGepCheckAccess(const std::vector<IrInstr>& instrs, size_t i, size_t end,
                           UOp* fused) const {
    if (!options_.fuse || options_.track_mpx || i + 2 >= end) {
      return false;
    }
    const IrInstr& gep = instrs[i];
    const IrInstr& chk = instrs[i + 1];
    const IrInstr& acc = instrs[i + 2];
    if (gep.op != IrOp::kGep) {
      return false;
    }
    const bool upper = chk.op == IrOp::kSgxCheckUpper;
    if (chk.op != IrOp::kSgxCheck && !upper) {
      return false;
    }
    if (chk.args.empty() || chk.args[0] != gep.id) {
      return false;
    }
    const uint32_t access_size = IrTypeSize(acc.type);
    if (chk.imm != static_cast<int64_t>(access_size) || access_size > 0xff) {
      return false;
    }
    if (acc.op == IrOp::kLoad && acc.args[0] == gep.id) {
      *fused = upper ? UOp::kGepSgxCheckUpperLoad : UOp::kGepSgxCheckLoad;
      return true;
    }
    if (acc.op == IrOp::kStore && acc.args[1] == gep.id) {
      *fused = upper ? UOp::kGepSgxCheckUpperStore : UOp::kGepSgxCheckStore;
      return true;
    }
    return false;
  }

  void LowerBlock(uint32_t block) {
    const IrBlock& bb = fn_.blocks[block];
    // Skip leading phis (compiled into edge stubs); reference FATALs on a
    // phi in the straight-line phase, so a non-leading phi is a decode error.
    size_t i = 0;
    while (i < bb.instrs.size() && bb.instrs[i].op == IrOp::kPhi) {
      ++i;
    }
    block_entry_[block] = static_cast<uint32_t>(df_.code.size());

    // Execution stops at the first terminator; anything after is dead.
    size_t end = i;
    while (end < bb.instrs.size() && !IsTerminator(bb.instrs[end].op)) {
      CHECK(bb.instrs[end].op != IrOp::kPhi);
      ++end;
    }
    CHECK(end < bb.instrs.size());  // reference CHECK(jumped): terminator required

    for (; i < end; ++i) {
      const IrInstr& in = bb.instrs[i];
      UOp fused = UOp::kCount;
      size_t consumed = 0;
      if (MatchGepMaskAccess(bb.instrs, i, end, &fused, &consumed)) {
        const IrInstr& gep = bb.instrs[i];
        const IrInstr& mask = bb.instrs[i + 1];
        const IrInstr& acc = bb.instrs[i + consumed - 1];
        MicroOp& u = Emit(fused);
        u.a = gep.args[0];
        u.b = gep.args[1];
        u.c = gep.id;
        u.imm2 = static_cast<int64_t>(mask.id);
        u.imm = static_cast<int64_t>((static_cast<uint64_t>(gep.imm) << 32) |
                                     static_cast<uint64_t>(gep.imm2));
        u.aux = static_cast<uint8_t>(IrTypeSize(acc.type));
        u.type = acc.type;
        u.dst = acc.op == IrOp::kLoad ? acc.id : acc.args[0];
        if (consumed == 4) {
          u.flag = bb.instrs[i + 2].imm2 != 0 ? 1 : 0;
        }
        ++df_.fused_superinstructions;
        i += consumed - 1;
        continue;
      }
      if (MatchGepCheckAccess(bb.instrs, i, end, &fused)) {
        const IrInstr& gep = bb.instrs[i];
        const IrInstr& chk = bb.instrs[i + 1];
        const IrInstr& acc = bb.instrs[i + 2];
        MicroOp& u = Emit(fused);
        u.a = gep.args[0];
        u.b = gep.args[1];
        u.c = gep.id;
        u.imm = gep.imm;
        u.imm2 = gep.imm2;
        u.aux = static_cast<uint8_t>(IrTypeSize(acc.type));
        u.flag = chk.imm2 != 0 ? 1 : 0;
        u.type = acc.type;
        u.dst = acc.op == IrOp::kLoad ? acc.id : acc.args[0];  // result / stored value
        ++df_.fused_superinstructions;
        i += 2;
        continue;
      }
      if (MatchXorShiftImm(bb.instrs, i, end, &fused)) {
        const IrInstr& s = bb.instrs[i];
        const IrInstr& x = bb.instrs[i + 1];
        MicroOp& u = Emit(fused);
        u.dst = x.id;
        u.a = s.args[0];
        u.c = s.id;
        u.imm = static_cast<int64_t>(const_val_[s.args[1]] & 63);
        ++df_.fused_superinstructions;
        i += 1;
        continue;
      }
      LowerInstr(in);
    }

    LowerTerminator(block, bb.instrs[end]);
  }

  // Lowers the terminator; fuses icmp+condbr when the preceding lowered uop
  // was exactly that icmp (checked against the last emitted micro-op).
  void LowerTerminator(uint32_t block, const IrInstr& term) {
    switch (term.op) {
      case IrOp::kRet: {
        MicroOp& u = Emit(UOp::kRet);
        u.a = term.args.empty() ? 0 : term.args[0];
        u.flag = term.args.empty() ? 0 : 1;
        break;
      }
      case IrOp::kBr: {
        MicroOp& u = Emit(UOp::kBr);
        (void)u;
        fixups_.push_back({df_.code.size() - 1, false, block,
                           static_cast<uint32_t>(term.imm)});
        break;
      }
      case IrOp::kCondBr: {
        // icmp+condbr fusion: the last emitted uop must be the icmp
        // producing the branch condition. kCmpBr reads slot operands; a
        // folded kICmpImm keeps its rhs const slot in `b` (the const's slot
        // is always materialized), so the conversion is uniform.
        if (options_.fuse && !df_.code.empty() && !term.args.empty()) {
          MicroOp& last = df_.code.back();
          if ((last.op == UOp::kICmp || last.op == UOp::kICmpImm) &&
              last.dst == term.args[0]) {
            last.op = UOp::kCmpBr;
            last.imm = 0;
            last.imm2 = 0;
            ++df_.fused_superinstructions;
            fixups_.push_back({df_.code.size() - 1, false, block,
                               static_cast<uint32_t>(term.imm)});
            fixups_.push_back({df_.code.size() - 1, true, block,
                               static_cast<uint32_t>(term.imm2)});
            break;
          }
        }
        MicroOp& u = Emit(UOp::kCondBr);
        u.a = term.args[0];
        fixups_.push_back({df_.code.size() - 1, false, block,
                           static_cast<uint32_t>(term.imm)});
        fixups_.push_back({df_.code.size() - 1, true, block,
                           static_cast<uint32_t>(term.imm2)});
        break;
      }
      default:
        FATAL("non-terminator at block end");
    }
  }

  void LowerInstr(const IrInstr& in) {
    switch (in.op) {
      case IrOp::kConst: {
        MicroOp& u = Emit(UOp::kConst);
        u.dst = in.id;
        u.imm = in.imm;
        break;
      }
      case IrOp::kArg: {
        MicroOp& u = Emit(UOp::kArg);
        u.dst = in.id;
        u.imm = in.imm;
        break;
      }
      case IrOp::kAdd:
      case IrOp::kSub:
      case IrOp::kMul:
      case IrOp::kUDiv:
      case IrOp::kURem:
      case IrOp::kAnd:
      case IrOp::kOr:
      case IrOp::kXor:
      case IrOp::kShl:
      case IrOp::kLShr: {
        const UOp imm_form = ImmForm(in.op);
        if (options_.fuse && imm_form != UOp::kCount && is_const_[in.args[1]]) {
          MicroOp& u = Emit(imm_form);
          u.dst = in.id;
          u.a = in.args[0];
          uint64_t rhs = const_val_[in.args[1]];
          if (in.op == IrOp::kShl || in.op == IrOp::kLShr) {
            rhs &= 63;  // reference masks the shift amount at runtime
          }
          u.imm = static_cast<int64_t>(rhs);
          break;
        }
        MicroOp& u = Emit(SlotForm(in.op));
        u.dst = in.id;
        u.a = in.args[0];
        u.b = in.args[1];
        break;
      }
      case IrOp::kICmp: {
        if (options_.fuse && is_const_[in.args[1]]) {
          MicroOp& u = Emit(UOp::kICmpImm);
          u.dst = in.id;
          u.a = in.args[0];
          u.aux = static_cast<uint8_t>(in.imm);
          u.imm = static_cast<int64_t>(const_val_[in.args[1]]);
          // Keep the slot too so CmpBr fusion can fall back to slot reads.
          u.b = in.args[1];
          break;
        }
        MicroOp& u = Emit(UOp::kICmp);
        u.dst = in.id;
        u.a = in.args[0];
        u.b = in.args[1];
        u.aux = static_cast<uint8_t>(in.imm);
        break;
      }
      case IrOp::kAlloca: {
        UOp op = UOp::kAllocaNative;
        if (in.symbol == "sgx") {
          op = UOp::kAllocaSgx;
        } else if (in.symbol == "asan") {
          op = UOp::kAllocaAsan;
        } else if (in.symbol == "scheme") {
          op = UOp::kAllocaScheme;
        } else if (options_.track_mpx) {
          op = UOp::kAllocaNativeMpx;
        }
        MicroOp& u = Emit(op);
        u.dst = in.id;
        u.imm = in.imm;
        break;
      }
      case IrOp::kMalloc: {
        UOp op = UOp::kMallocNative;
        if (in.symbol == "sgx") {
          op = UOp::kMallocSgx;
        } else if (in.symbol == "asan") {
          op = UOp::kMallocAsan;
        } else if (in.symbol == "scheme") {
          op = UOp::kMallocScheme;
        } else if (options_.track_mpx) {
          op = UOp::kMallocNativeMpx;
        }
        MicroOp& u = Emit(op);
        u.dst = in.id;
        u.a = in.args[0];
        break;
      }
      case IrOp::kFree: {
        UOp op = UOp::kFreeNative;
        if (in.symbol == "sgx") {
          op = UOp::kFreeSgx;
        } else if (in.symbol == "asan") {
          op = UOp::kFreeAsan;
        } else if (in.symbol == "scheme") {
          op = UOp::kFreeScheme;
        }
        MicroOp& u = Emit(op);
        u.a = in.args[0];
        break;
      }
      case IrOp::kGep: {
        MicroOp& u = Emit(options_.track_mpx ? UOp::kGepMpx : UOp::kGep);
        u.dst = in.id;
        u.a = in.args[0];
        u.b = in.args[1];
        u.imm = in.imm;
        u.imm2 = in.imm2;
        break;
      }
      case IrOp::kMaskPtr: {
        MicroOp& u = Emit(UOp::kMaskPtr);
        u.dst = in.id;
        u.a = in.args[0];
        u.b = in.args[1];
        break;
      }
      case IrOp::kLoad: {
        MicroOp& u = Emit(UOp::kLoad);
        u.dst = in.id;
        u.a = in.args[0];
        u.type = in.type;
        u.aux = static_cast<uint8_t>(IrTypeSize(in.type));
        break;
      }
      case IrOp::kStore: {
        MicroOp& u = Emit(UOp::kStore);
        u.a = in.args[0];
        u.b = in.args[1];
        u.type = in.type;
        u.aux = static_cast<uint8_t>(IrTypeSize(in.type));
        break;
      }
      case IrOp::kSgxCheck:
      case IrOp::kSgxCheckUpper: {
        MicroOp& u =
            Emit(in.op == IrOp::kSgxCheck ? UOp::kSgxCheck : UOp::kSgxCheckUpper);
        u.a = in.args[0];
        u.imm = in.imm;
        u.flag = in.imm2 != 0 ? 1 : 0;
        break;
      }
      case IrOp::kSgxCheckRange: {
        MicroOp& u = Emit(UOp::kSgxCheckRange);
        u.a = in.args[0];
        u.b = in.args[1];
        break;
      }
      case IrOp::kSchemeCheck: {
        MicroOp& u = Emit(UOp::kSchemeCheck);
        u.a = in.args[0];
        u.imm = in.imm;
        u.flag = in.imm2 != 0 ? 1 : 0;
        break;
      }
      case IrOp::kSchemeCheckRange: {
        MicroOp& u = Emit(UOp::kSchemeCheckRange);
        u.a = in.args[0];
        u.b = in.args[1];
        break;
      }
      case IrOp::kAsanCheck: {
        MicroOp& u = Emit(UOp::kAsanCheck);
        u.a = in.args[0];
        u.imm = in.imm;
        u.flag = in.imm2 != 0 ? 1 : 0;
        break;
      }
      case IrOp::kMpxCheck: {
        MicroOp& u = Emit(UOp::kMpxCheck);
        u.a = in.args[0];
        u.imm = in.imm;
        break;
      }
      case IrOp::kMpxLdx: {
        MicroOp& u = Emit(UOp::kMpxLdx);
        u.a = in.args[0];
        u.b = in.args[1];
        break;
      }
      case IrOp::kMpxStx: {
        MicroOp& u = Emit(UOp::kMpxStx);
        u.a = in.args[0];
        u.b = in.args[1];
        break;
      }
      case IrOp::kCall: {
        if (in.symbol == "abs64" && !in.args.empty()) {
          MicroOp& u = Emit(UOp::kCallAbs64);
          u.dst = in.id;
          u.a = in.args[0];
        } else {
          MicroOp& u = Emit(UOp::kCallNop);
          u.dst = in.id;
        }
        break;
      }
      case IrOp::kPhi:
      case IrOp::kBr:
      case IrOp::kCondBr:
      case IrOp::kRet:
        FATAL("terminator/phi in straight-line lowering");
    }
  }

  // --- phi edges ------------------------------------------------------------------

  // Reference semantics: on entering `succ` from `pred`, each leading phi
  // takes the incoming value aligned with the position of `pred` in
  // succ.preds (first match; position 0 if absent). Values are read in
  // parallel (scratch buffer); MPX bounds are copied sequentially in phi
  // order. The stub reproduces both orders exactly.
  uint32_t EdgeTarget(uint32_t pred, uint32_t succ) {
    const IrBlock& bb = fn_.blocks[succ];
    size_t n_phis = 0;
    while (n_phis < bb.instrs.size() && bb.instrs[n_phis].op == IrOp::kPhi) {
      ++n_phis;
    }
    // Reference phi phase only runs when the successor has predecessors
    // recorded; an empty pred list skips phi evaluation entirely.
    if (n_phis == 0 || bb.preds.empty()) {
      return block_entry_[succ];
    }
    const auto key = std::make_pair(pred, succ);
    const auto it = stub_cache_.find(key);
    if (it != stub_cache_.end()) {
      return it->second;
    }

    size_t pred_index = 0;
    for (size_t p = 0; p < bb.preds.size(); ++p) {
      if (bb.preds[p] == pred) {
        pred_index = p;
        break;
      }
    }

    std::vector<Move> moves;
    const uint32_t stub_start = static_cast<uint32_t>(df_.code.size());
    for (size_t i = 0; i < n_phis; ++i) {
      const IrInstr& phi = bb.instrs[i];
      const uint32_t src = phi.args[pred_index];
      if (options_.track_mpx) {
        MicroOp& u = Emit(UOp::kBoundsCopy);
        u.dst = phi.id;
        u.a = src;
      }
      if (src != phi.id) {
        moves.push_back({phi.id, src});
      }
    }
    EmitParallelCopies(moves);
    // The IR terminator already charged the branch; the stub exit is free.
    MicroOp& br = Emit(UOp::kJump);
    br.imm = block_entry_[succ];

    ++df_.edge_stubs;
    stub_cache_[key] = stub_start;
    return stub_start;
  }

  // Sequentializes a parallel copy: emit moves whose destination no other
  // pending move still reads; break cycles by parking a destination in a
  // fresh temporary slot and redirecting its readers.
  void EmitParallelCopies(std::vector<Move> pending) {
    uint32_t temps = 0;
    while (!pending.empty()) {
      bool progress = false;
      for (size_t i = 0; i < pending.size(); ++i) {
        const uint32_t d = pending[i].dst;
        bool read_later = false;
        for (size_t j = 0; j < pending.size(); ++j) {
          if (j != i && pending[j].src == d) {
            read_later = true;
            break;
          }
        }
        if (!read_later) {
          MicroOp& u = Emit(UOp::kCopy);
          u.dst = pending[i].dst;
          u.a = pending[i].src;
          pending.erase(pending.begin() + i);
          progress = true;
          break;
        }
      }
      if (!progress) {
        const uint32_t d = pending[0].dst;
        const uint32_t t = fn_.num_values + temps;
        ++temps;
        MicroOp& u = Emit(UOp::kCopy);
        u.dst = t;
        u.a = d;
        for (Move& m : pending) {
          if (m.src == d) {
            m.src = t;
          }
        }
      }
    }
    max_stub_temps_ = std::max(max_stub_temps_, temps);
    df_.phi_cycle_temps = std::max(df_.phi_cycle_temps, temps);
  }

  void ResolveEdges() {
    for (const Fixup& fx : fixups_) {
      const uint32_t target = EdgeTarget(fx.pred, fx.succ);
      MicroOp& u = df_.code[fx.uop_index];
      if (fx.second_field) {
        u.imm2 = target;
      } else {
        u.imm = target;
      }
    }
  }

  const IrFunction& fn_;
  const DecodeOptions options_;
  DecodedFunction df_;
  std::vector<uint32_t> block_entry_;
  std::vector<Fixup> fixups_;
  std::vector<uint8_t> is_const_;
  std::vector<uint64_t> const_val_;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> stub_cache_;
  uint32_t max_stub_temps_ = 0;
};

}  // namespace

DecodedFunction DecodeFunction(const IrFunction& fn, const DecodeOptions& options) {
  return Decoder(fn, options).Run();
}

uint64_t HashIrFunction(const IrFunction& fn) {
  uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(fn.num_args);
  mix(fn.num_values);
  mix(fn.blocks.size());
  for (const IrBlock& bb : fn.blocks) {
    mix(bb.preds.size());
    for (const uint32_t p : bb.preds) {
      mix(p);
    }
    mix(bb.instrs.size());
    for (const IrInstr& in : bb.instrs) {
      mix(in.id);
      mix(static_cast<uint64_t>(in.op));
      mix(static_cast<uint64_t>(in.type));
      mix(in.args.size());
      for (const ValueId a : in.args) {
        mix(a);
      }
      mix(static_cast<uint64_t>(in.imm));
      mix(static_cast<uint64_t>(in.imm2));
      mix(in.symbol.size());
      for (const char c : in.symbol) {
        mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
      }
    }
  }
  return h;
}

const char* UOpName(UOp op) {
  switch (op) {
    case UOp::kConst: return "const";
    case UOp::kArg: return "arg";
    case UOp::kAdd: return "add";
    case UOp::kSub: return "sub";
    case UOp::kMul: return "mul";
    case UOp::kUDiv: return "udiv";
    case UOp::kURem: return "urem";
    case UOp::kAnd: return "and";
    case UOp::kOr: return "or";
    case UOp::kXor: return "xor";
    case UOp::kShl: return "shl";
    case UOp::kLShr: return "lshr";
    case UOp::kAddImm: return "add.i";
    case UOp::kSubImm: return "sub.i";
    case UOp::kMulImm: return "mul.i";
    case UOp::kAndImm: return "and.i";
    case UOp::kOrImm: return "or.i";
    case UOp::kXorImm: return "xor.i";
    case UOp::kShlImm: return "shl.i";
    case UOp::kLShrImm: return "lshr.i";
    case UOp::kXorShlImm: return "xor+shl.i";
    case UOp::kXorLShrImm: return "xor+lshr.i";
    case UOp::kICmp: return "icmp";
    case UOp::kICmpImm: return "icmp.i";
    case UOp::kBr: return "br";
    case UOp::kCondBr: return "condbr";
    case UOp::kCmpBr: return "cmpbr";
    case UOp::kRet: return "ret";
    case UOp::kCopy: return "copy";
    case UOp::kBoundsCopy: return "bcopy";
    case UOp::kJump: return "jump";
    case UOp::kAllocaNative: return "alloca";
    case UOp::kAllocaNativeMpx: return "alloca.mpx";
    case UOp::kAllocaSgx: return "alloca.sgx";
    case UOp::kAllocaAsan: return "alloca.asan";
    case UOp::kMallocNative: return "malloc";
    case UOp::kMallocNativeMpx: return "malloc.mpx";
    case UOp::kMallocSgx: return "malloc.sgx";
    case UOp::kMallocAsan: return "malloc.asan";
    case UOp::kFreeNative: return "free";
    case UOp::kFreeSgx: return "free.sgx";
    case UOp::kFreeAsan: return "free.asan";
    case UOp::kGep: return "gep";
    case UOp::kGepMpx: return "gep.mpx";
    case UOp::kMaskPtr: return "maskptr";
    case UOp::kLoad: return "load";
    case UOp::kStore: return "store";
    case UOp::kSgxCheck: return "sgxcheck";
    case UOp::kSgxCheckUpper: return "sgxcheck.ub";
    case UOp::kSgxCheckRange: return "sgxcheck.range";
    case UOp::kAsanCheck: return "asancheck";
    case UOp::kMpxCheck: return "mpxcheck";
    case UOp::kMpxLdx: return "mpxldx";
    case UOp::kMpxStx: return "mpxstx";
    case UOp::kGepSgxCheckLoad: return "gep+check+load";
    case UOp::kGepSgxCheckUpperLoad: return "gep+check.ub+load";
    case UOp::kGepSgxCheckStore: return "gep+check+store";
    case UOp::kGepSgxCheckUpperStore: return "gep+check.ub+store";
    case UOp::kGepMaskLoad: return "gep+mask+load";
    case UOp::kGepMaskStore: return "gep+mask+store";
    case UOp::kGepMaskSgxCheckLoad: return "gep+mask+check+load";
    case UOp::kGepMaskSgxCheckUpperLoad: return "gep+mask+check.ub+load";
    case UOp::kGepMaskSgxCheckStore: return "gep+mask+check+store";
    case UOp::kGepMaskSgxCheckUpperStore: return "gep+mask+check.ub+store";
    case UOp::kCallAbs64: return "call.abs64";
    case UOp::kCallNop: return "call.nop";
    case UOp::kAllocaScheme: return "alloca.scheme";
    case UOp::kMallocScheme: return "malloc.scheme";
    case UOp::kFreeScheme: return "free.scheme";
    case UOp::kSchemeCheck: return "schemecheck";
    case UOp::kSchemeCheckRange: return "schemecheck.range";
    case UOp::kGepMaskSchemeCheckLoad: return "gep+mask+scheck+load";
    case UOp::kGepMaskSchemeCheckStore: return "gep+mask+scheck+store";
    case UOp::kCount: break;
  }
  return "?";
}

}  // namespace sgxb
