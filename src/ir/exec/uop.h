// Micro-op program representation for the direct-threaded IR engine.
//
// An IrFunction is lowered once (see decoder.cc) into a flat array of
// fixed-size MicroOps:
//
//   * operands are register-slot indices into one contiguous value array
//     (SSA id-indexed, plus decoder-allocated temporaries for phi cycles);
//   * branch targets are micro-op offsets - no block lookup, no phi scan;
//   * phi nodes are compiled away into parallel-copy stubs materialized on
//     each control-flow edge (kCopy/kBoundsCopy sequences);
//   * runtime symbol dispatch ("sgx"/"asan"/builtin call names) is resolved
//     at decode time into distinct opcodes;
//   * the patterns the instrumentation passes emit are fused into
//     superinstructions (gep+check+load, gep+check+store, icmp+condbr,
//     const-operand ALU forms).
//
// The decoded program preserves the reference interpreter's observable
// behaviour exactly: same step accounting (phi copies are free, fused ops
// count one step per fused instruction, checked against max_steps at each),
// same Cpu charges in the same order, same memory-access sequence, same
// traps. Only host-side dispatch cost changes.

#ifndef SGXBOUNDS_SRC_IR_EXEC_UOP_H_
#define SGXBOUNDS_SRC_IR_EXEC_UOP_H_

#include <cstdint>
#include <vector>

#include "src/ir/ir.h"

namespace sgxb {

enum class UOp : uint8_t {
  // Values.
  kConst,  // dst, imm
  kArg,    // dst, imm = argument index (reference semantics: OOB/negative -> 0)
  // ALU, slot-slot forms: dst, a, b.
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kURem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  // ALU, const-rhs superinstructions: dst, a, imm = folded constant.
  kAddImm,
  kSubImm,
  kMulImm,
  kAndImm,
  kOrImm,
  kXorImm,
  kShlImm,
  kLShrImm,
  // Fused xorshift pair, the mixing idiom ALU-heavy kernels repeat:
  //   t = shl/lshr x, const ; d = xor x, t
  // One dispatch, two simulated instructions (two steps, two Alu charges,
  // and the intermediate t is still written - no liveness analysis needed).
  // dst = d, a = x, c = t, imm = pre-masked shift amount.
  kXorShlImm,
  kXorLShrImm,
  // Comparison: dst, a, b (or imm), aux = IrCmp.
  kICmp,
  kICmpImm,
  // Control flow; targets are micro-op offsets.
  kBr,      // imm = target
  kCondBr,  // a = cond slot; imm = true target, imm2 = false target
  kCmpBr,   // fused icmp+condbr: dst = cmp result slot, a, b, aux = IrCmp,
            // imm = true target, imm2 = false target
  kRet,     // a = value slot, flag = has-value (flag 0 returns 0)
  // Phi-edge parallel copies (free: no step, no Cpu charge - matching the
  // reference's phi phase).
  kCopy,        // dst <- a (value only)
  kBoundsCopy,  // dst <- a (MPX bounds only, sequential reference order)
  kJump,        // imm = target; free stub-internal jump (no step, no charge)
  // Allocation, symbol dispatch resolved at decode time. imm = byte size for
  // allocas; a = size slot for mallocs.
  kAllocaNative,
  kAllocaNativeMpx,  // + BndMk side-table entry (MPX tracking decode)
  kAllocaSgx,
  kAllocaAsan,
  kMallocNative,
  kMallocNativeMpx,
  kMallocSgx,
  kMallocAsan,
  kFreeNative,  // a = ptr slot
  kFreeSgx,
  kFreeAsan,
  // Address arithmetic.
  kGep,     // dst, a = base, b = index, imm = scale, imm2 = offset
  kGepMpx,  // + bounds propagation from base
  kMaskPtr,  // dst, a = ptr-after-arith, b = ptr-before
  // Memory: type = access type, aux = byte size.
  kLoad,   // dst, a = ptr
  kStore,  // a = value, b = ptr
  // Instrumentation: a = ptr slot, imm = access size, flag = is-write.
  kSgxCheck,
  kSgxCheckUpper,
  kSgxCheckRange,  // a = ptr, b = extent slot
  kAsanCheck,
  kMpxCheck,
  kMpxLdx,  // a = loaded-ptr slot, b = slot-ptr slot
  kMpxStx,
  // Superinstructions for the access patterns the SGXBounds pass emits:
  // gep (a=base, b=index, imm=scale, imm2=offset, c=gep result slot)
  // + bounds check (aux = access size, flag = is-write)
  // + load (dst = result slot, type) / store (dst = value slot, type).
  kGepSgxCheckLoad,
  kGepSgxCheckUpperLoad,
  kGepSgxCheckStore,
  kGepSgxCheckUpperStore,
  // Superinstructions for the shapes the SGXBounds pass actually emits: the
  // pass renames the gep result and re-tags it through a maskptr, so the
  // lowered access is
  //   t = gep base, idx ; p = maskptr t, base ; [sgxcheck p] ; load/store p
  // (the check is absent when it was hoisted to the preheader or elided).
  // Encoding: a = base, b = index, c = t slot, imm2 = p slot, dst = load
  // result / store value slot, aux = access size, flag = is-write, and imm
  // packs (scale << 32) | offset - both verified to fit 32 bits at decode.
  kGepMaskLoad,
  kGepMaskStore,
  kGepMaskSgxCheckLoad,
  kGepMaskSgxCheckUpperLoad,
  kGepMaskSgxCheckStore,
  kGepMaskSgxCheckUpperStore,
  // Calls (symbol resolved at decode time).
  kCallAbs64,  // dst, a
  kCallNop,    // dst (0 = no result)
  // Registry-plugged scheme forms (symbol "scheme" / kSchemeCheck*), all
  // dispatched through the attached IrSchemeRuntime. Appended at the end so
  // existing uop values stay stable.
  kAllocaScheme,      // dst, imm = byte size
  kMallocScheme,      // dst, a = size slot
  kFreeScheme,        // a = ptr slot
  kSchemeCheck,       // a = ptr, imm = access size, flag = is-write
  kSchemeCheckRange,  // a = ptr, b = extent slot
  // Fused gep+mask+check+access, same encoding as kGepMaskSgxCheckLoad/Store
  // but checking through the scheme runtime.
  kGepMaskSchemeCheckLoad,
  kGepMaskSchemeCheckStore,
  kCount
};

const char* UOpName(UOp op);

struct MicroOp {
  UOp op = UOp::kCallNop;
  IrType type = IrType::kI64;
  uint8_t aux = 0;   // access byte size / IrCmp predicate
  uint8_t flag = 0;  // is-write for checks
  uint32_t dst = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;    // fused gep result slot
  int64_t imm = 0;
  int64_t imm2 = 0;
};

struct DecodeOptions {
  // Track the MPX side table alongside values (required when an MpxRuntime
  // is attached: phi/gep/alloca/malloc propagate bounds in the reference).
  bool track_mpx = false;
  // Enable superinstruction fusion (disabled automatically for the SGX
  // access patterns when track_mpx is set: the fused forms do not propagate
  // bounds through the gep).
  bool fuse = true;
};

// The decoded, directly executable form of one IrFunction.
struct DecodedFunction {
  std::vector<MicroOp> code;
  uint32_t num_slots = 0;  // fn.num_values + phi-cycle temporaries
  uint32_t entry = 0;      // offset of the first executed micro-op
  bool track_mpx = false;
  // Decoder statistics (asserted by tests, printed by benches).
  uint32_t fused_superinstructions = 0;
  uint32_t edge_stubs = 0;
  uint32_t phi_cycle_temps = 0;

  size_t CountUOp(UOp op) const {
    size_t n = 0;
    for (const MicroOp& u : code) {
      n += u.op == op ? 1 : 0;
    }
    return n;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_UOP_H_
