// Interpreter::RunJit - the C++ wrapper around one native execution.
//
// Mirrors RunDecoded's structure exactly: slot/side-table setup, stack frame
// push, hot counters seeded from stats_, and the same three exits -
//   kRet      -> flush pending charges, write stats back, pop, return;
//   trap      -> same bookkeeping, then rethrow (the helper parked the
//                exception; generated code cannot be unwound through);
//   steplimit -> same bookkeeping, then the interpreters' exact SimTrap.

#include <exception>

#include "src/common/check.h"
#include "src/ir/exec/flush.h"
#include "src/ir/exec/jit/jit_cache.h"
#include "src/ir/exec/jit/jit_frame.h"
#include "src/ir/interp.h"

namespace sgxb {

uint64_t Interpreter::RunJit(const jit::JitProgram& jp, Cpu& cpu,
                             const std::vector<uint64_t>& args, uint64_t max_steps) {
  values_.assign(jp.num_slots, 0);
  if (jp.track_mpx) {
    CHECK(mpx_ != nullptr);
    mpx_bounds_.assign(jp.num_slots, MpxBounds{});
    mpx_valid_.assign(jp.num_slots, 0);
  }

  const uint32_t frame = stack_->PushFrame();
  std::exception_ptr pending_exception;

  JitFrame f;
  f.v = values_.data();
  f.steps = stats_.steps;
  f.pend_alu = 0;
  f.pend_branch = 0;
  f.max_steps = max_steps;
  f.pend_call = 0;
  f.loads = stats_.loads;
  f.stores = stats_.stores;
  f.checks = stats_.checks;
  f.args = args.data();
  f.nargs = args.size();
  f.code = jp.code.data();
  f.cpu = &cpu;
  f.enclave = enclave_;
  f.heap = heap_;
  f.stack = stack_;
  f.sgx = sgx_;
  f.asan = asan_;
  f.mpx = mpx_;
  f.scheme = scheme_;
  f.mpx_bounds = jp.track_mpx ? mpx_bounds_.data() : nullptr;
  f.mpx_valid = jp.track_mpx ? mpx_valid_.data() : nullptr;
  f.ex_slot = &pending_exception;

  jp.entry(&f);

  // Every exit restores the interpreter invariants in the threaded engine's
  // order: flush what's still pending, write the counters back, pop the
  // stack frame - then return or raise.
  FlushPending(cpu, f.pend_alu, f.pend_branch, f.pend_call);
  stats_.steps = f.steps;
  stats_.loads = f.loads;
  stats_.stores = f.stores;
  stats_.checks = f.checks;
  stack_->PopFrame(frame);

  switch (f.status) {
    case kJitStatusOk:
      return f.ret;
    case kJitStatusBail:
      CHECK(pending_exception != nullptr);
      std::rethrow_exception(pending_exception);
    case kJitStatusStepLimit:
      throw SimTrap(TrapKind::kIllegalInstruction, 0, "interpreter step limit exceeded");
  }
  FATAL("JIT program returned an unknown status");
}

}  // namespace sgxb
