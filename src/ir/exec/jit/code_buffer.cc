#include "src/ir/exec/jit/code_buffer.h"

#include <cstdlib>
#include <cstring>

#if defined(_WIN32)
// No mmap: the probe fails and every caller falls back to the threaded
// engine. Kept compiling so the tree builds on non-POSIX hosts.
#else
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace sgxb {
namespace jit {

namespace {

constexpr size_t kPage = 4096;

size_t RoundUpToPage(size_t n) { return (n + kPage - 1) & ~(kPage - 1); }

bool ForcedNoExec() {
  const char* env = std::getenv("SGXB_IR_FORCE_NOEXEC");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

#if !defined(_WIN32)
bool ProbeExecOnce() {
  void* p = mmap(nullptr, kPage, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return false;
  }
  const bool ok = mprotect(p, kPage, PROT_READ | PROT_EXEC) == 0;
  munmap(p, kPage);
  return ok;
}
#endif

}  // namespace

bool JitExecutableAvailable() {
  if (ForcedNoExec()) {
    return false;
  }
#if defined(_WIN32)
  return false;
#else
  static const bool available = ProbeExecOnce();
  return available;
#endif
}

bool ExecCodeBuffer::Install(const uint8_t* bytes, size_t n) {
#if defined(_WIN32)
  (void)bytes;
  (void)n;
  return false;
#else
  if (n == 0 || !JitExecutableAvailable()) {
    return false;
  }
  const size_t size = RoundUpToPage(n);
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return false;
  }
  std::memcpy(p, bytes, n);
  if (mprotect(p, size, PROT_READ | PROT_EXEC) != 0) {
    munmap(p, size);
    return false;
  }
  base_ = p;
  size_ = size;
  return true;
#endif
}

void ExecCodeBuffer::Release() {
#if !defined(_WIN32)
  if (base_ != nullptr) {
    munmap(base_, size_);
  }
#endif
  base_ = nullptr;
  size_ = 0;
}

}  // namespace jit
}  // namespace sgxb
