#include "src/ir/exec/jit/code_buffer.h"

#include <cstdlib>
#include <cstring>

#if defined(_WIN32)
// No mmap: the probe fails and every caller falls back to the threaded
// engine. Kept compiling so the tree builds on non-POSIX hosts.
#else
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace sgxb {
namespace jit {

// The compiler emits x86-64 machine code; on any other ISA the PROT_EXEC
// probe would succeed and the first JIT call would SIGILL. Gate every
// entry point on the host architecture so other hosts take the documented
// threaded-engine fallback instead.
#if !defined(_WIN32) && defined(__x86_64__)
#define SGXB_JIT_HOST_OK 1
#else
#define SGXB_JIT_HOST_OK 0
#endif

namespace {

bool ForcedNoExec() {
  const char* env = std::getenv("SGXB_IR_FORCE_NOEXEC");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

#if SGXB_JIT_HOST_OK
size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

size_t RoundUpToPage(size_t n) {
  const size_t page = PageSize();
  return (n + page - 1) & ~(page - 1);
}

bool ProbeExecOnce() {
  void* p = mmap(nullptr, PageSize(), PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return false;
  }
  const bool ok = mprotect(p, PageSize(), PROT_READ | PROT_EXEC) == 0;
  munmap(p, PageSize());
  return ok;
}
#endif

}  // namespace

bool JitExecutableAvailable() {
  if (ForcedNoExec()) {
    return false;
  }
#if !SGXB_JIT_HOST_OK
  return false;
#else
  static const bool available = ProbeExecOnce();
  return available;
#endif
}

bool ExecCodeBuffer::Install(const uint8_t* bytes, size_t n) {
#if !SGXB_JIT_HOST_OK
  (void)bytes;
  (void)n;
  return false;
#else
  if (n == 0 || !JitExecutableAvailable()) {
    return false;
  }
  const size_t size = RoundUpToPage(n);
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return false;
  }
  std::memcpy(p, bytes, n);
  if (mprotect(p, size, PROT_READ | PROT_EXEC) != 0) {
    munmap(p, size);
    return false;
  }
  base_ = p;
  size_ = size;
  return true;
#endif
}

void ExecCodeBuffer::Release() {
#if SGXB_JIT_HOST_OK
  if (base_ != nullptr) {
    munmap(base_, size_);
  }
#endif
  base_ = nullptr;
  size_ = 0;
}

}  // namespace jit
}  // namespace sgxb
