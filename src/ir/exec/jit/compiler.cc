// Per-op x86-64 templates for the JIT tier. See jit_frame.h for the register
// pinning and the helper-call protocol; semantics for every template are
// copied from the threaded engine's op bodies (exec/engine.cc) - same step
// accounting, same pending-charge increments, same value write-back order.

#include "src/ir/exec/jit/compiler.h"

#include <chrono>
#include <cstddef>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/ir_engine.h"
#include "src/ir/exec/jit/assembler.h"

namespace sgxb {
namespace jit {

namespace {

// Pinned registers (all callee-saved; see jit_frame.h).
constexpr Reg kFrame = RBX;
constexpr Reg kSlots = R12;
constexpr Reg kSteps = R13;
constexpr Reg kPendAlu = R14;
constexpr Reg kPendBranch = RBP;
constexpr Reg kMaxSteps = R15;

#define SGXB_JIT_OFF(field) static_cast<int32_t>(offsetof(JitFrame, field))

bool FitsInt32(int64_t x) { return x >= INT32_MIN && x <= INT32_MAX; }

Cond CondFor(IrCmp pred) {
  switch (pred) {
    case IrCmp::kEq:
      return kCondE;
    case IrCmp::kNe:
      return kCondNE;
    case IrCmp::kULt:
      return kCondB;
    case IrCmp::kULe:
      return kCondBE;
    case IrCmp::kUGt:
      return kCondA;
    case IrCmp::kUGe:
      return kCondAE;
    case IrCmp::kSLt:
      return kCondL;
    case IrCmp::kSLe:
      return kCondLE;
    case IrCmp::kSGt:
      return kCondG;
    case IrCmp::kSGe:
      return kCondGE;
  }
  FATAL("invalid IrCmp predicate");
}

bool HelperOnlyMode() {
  const char* env = std::getenv("SGXB_IR_JIT_HELPER_ONLY");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

class Compiler {
 public:
  Compiler(const DecodedFunction& df, JitProgram* out)
      : df_(df), out_(out), helper_only_(HelperOnlyMode()) {}

  void Compile() {
    // Slot displacements are baked as disp32: cap the slot count well below
    // the 2^31 byte limit (never hit in practice - SSA ids per function).
    CHECK(df_.num_slots < (1u << 27));
    EmitPrologue();
    uop_pos_.resize(df_.code.size());
    for (size_t i = 0; i < df_.code.size(); ++i) {
      uop_pos_[i] = a_.size();
      EmitOp(i);
    }
    // The decoder guarantees every path ends in kRet/branch; trap loudly if
    // generated code ever falls off the stream (ud2).
    a_.U8(0x0F);
    a_.U8(0x0B);
    EmitStubsAndEpilogue();
    PatchJumps();
    out_->native_bytes = a_.size();
  }

  const X64Assembler& assembler() const { return a_; }

 private:
  // --- emission helpers ----------------------------------------------------

  int32_t SlotDisp(uint32_t slot) const {
    CHECK(slot < df_.num_slots);
    return static_cast<int32_t>(slot) * 8;
  }

  void LoadSlot(Reg r, uint32_t slot) { a_.MovRegMem(r, kSlots, SlotDisp(slot)); }
  void StoreSlot(uint32_t slot, Reg r) { a_.MovMemReg(kSlots, SlotDisp(slot), r); }

  void LoadImm(Reg r, uint64_t imm) {
    if (imm <= 0xffffffffull) {
      a_.MovReg32Imm32(r, static_cast<uint32_t>(imm));
    } else {
      a_.MovRegImm64(r, imm);
    }
  }

  // ++steps; if (steps > max_steps) -> step-limit stub.
  void Step() {
    a_.IncReg(kSteps);
    a_.CmpRegReg(kSteps, kMaxSteps);
    step_fixups_.push_back(a_.JccRel32(kCondA));
  }

  void SpillHot() {
    a_.MovMemReg(kFrame, SGXB_JIT_OFF(steps), kSteps);
    a_.MovMemReg(kFrame, SGXB_JIT_OFF(pend_alu), kPendAlu);
    a_.MovMemReg(kFrame, SGXB_JIT_OFF(pend_branch), kPendBranch);
  }
  void ReloadHot() {
    a_.MovRegMem(kSteps, kFrame, SGXB_JIT_OFF(steps));
    a_.MovRegMem(kPendAlu, kFrame, SGXB_JIT_OFF(pend_alu));
    a_.MovRegMem(kPendBranch, kFrame, SGXB_JIT_OFF(pend_branch));
  }

  // rax = rax OP imm, matching 64-bit wrapping semantics exactly.
  // `ext` is the group-1 /ext; `rr` the r64,r/m64 opcode for the wide case.
  void AluImm(uint8_t ext, uint8_t rr, int64_t imm) {
    if (FitsInt32(imm)) {
      a_.AluRegImm32(ext, RAX, static_cast<int32_t>(imm));
    } else {
      LoadImm(RCX, static_cast<uint64_t>(imm));
      a_.AluRegReg(rr, RAX, RCX);
    }
  }

  void MulImm(Reg r, int64_t imm) {
    if (imm == 1) {
      return;
    }
    if (FitsInt32(imm)) {
      a_.ImulRegRegImm32(r, r, static_cast<int32_t>(imm));
    } else {
      LoadImm(RCX, static_cast<uint64_t>(imm));
      a_.ImulRegReg(r, RCX);
    }
  }

  void AddImm(Reg r, int64_t imm) {
    if (imm == 0) {
      return;
    }
    if (FitsInt32(imm)) {
      a_.AddRegImm(r, static_cast<int32_t>(imm));
    } else {
      LoadImm(RCX, static_cast<uint64_t>(imm));
      a_.AluRegReg(0x03, r, RCX);
    }
  }

  void JumpToUop(int64_t target) {
    jump_fixups_.push_back({a_.JmpRel32(), static_cast<size_t>(target)});
  }
  void JccToUop(Cond cc, int64_t target) {
    jump_fixups_.push_back({a_.JccRel32(cc), static_cast<size_t>(target)});
  }

  // The uniform helper call: spill hot state, call the op's specialized
  // slow-path thunk (SgxbJitSlowOp ABI with the dispatch switch folded away),
  // bail on nonzero, reload hot state (helpers may flush, stepping through
  // runtime code that charges the Cpu and zeroes the pending counters).
  void EmitSlow(size_t i) {
    SpillHot();
    a_.MovRegReg(RDI, kFrame);
    a_.MovReg32Imm32(RSI, static_cast<uint32_t>(i));
    a_.MovRegImm64(RAX, reinterpret_cast<uint64_t>(SgxbJitSlowFnFor(
                            static_cast<uint16_t>(df_.code[i].op))));
    a_.CallReg(RAX);
    a_.TestRegReg(RAX, RAX);
    bail_fixups_.push_back(a_.JccRel32(kCondNE));
    ReloadHot();
    ++out_->helper_ops;
  }

  // --- layout --------------------------------------------------------------

  void EmitPrologue() {
    a_.PushReg(RBP);
    a_.PushReg(RBX);
    a_.PushReg(R12);
    a_.PushReg(R13);
    a_.PushReg(R14);
    a_.PushReg(R15);
    a_.SubRspImm8(8);  // 16-byte call alignment for helper calls
    a_.MovRegReg(kFrame, RDI);
    a_.MovRegMem(kSlots, kFrame, SGXB_JIT_OFF(v));
    a_.MovRegMem(kSteps, kFrame, SGXB_JIT_OFF(steps));
    a_.MovRegMem(kPendAlu, kFrame, SGXB_JIT_OFF(pend_alu));
    a_.MovRegMem(kPendBranch, kFrame, SGXB_JIT_OFF(pend_branch));
    a_.MovRegMem(kMaxSteps, kFrame, SGXB_JIT_OFF(max_steps));
    jump_fixups_.push_back({a_.JmpRel32(), df_.entry});
  }

  void EmitStubsAndEpilogue() {
    // Step-limit stub: steps already incremented past the limit, exactly the
    // state the threaded engine's throw site observes.
    steplimit_pos_ = a_.size();
    SpillHot();
    a_.MovMemImm32(kFrame, SGXB_JIT_OFF(status), kJitStatusStepLimit);
    const size_t to_epi = a_.JmpRel32();
    // Bail stub: the helper already spilled-and-mutated frame state; only the
    // status needs recording.
    bail_pos_ = a_.size();
    a_.MovMemImm32(kFrame, SGXB_JIT_OFF(status), kJitStatusBail);
    // Epilogue (fallthrough from bail).
    const size_t epilogue = a_.size();
    a_.PatchRel32(to_epi, epilogue);
    a_.AddRspImm8(8);
    a_.PopReg(R15);
    a_.PopReg(R14);
    a_.PopReg(R13);
    a_.PopReg(R12);
    a_.PopReg(RBX);
    a_.PopReg(RBP);
    a_.Ret();
    epilogue_pos_ = epilogue;
  }

  void PatchJumps() {
    for (const auto& [pos, target] : jump_fixups_) {
      CHECK(target < uop_pos_.size());
      a_.PatchRel32(pos, uop_pos_[target]);
    }
    for (size_t pos : step_fixups_) {
      a_.PatchRel32(pos, steplimit_pos_);
    }
    for (size_t pos : bail_fixups_) {
      a_.PatchRel32(pos, bail_pos_);
    }
    for (size_t pos : ret_fixups_) {
      a_.PatchRel32(pos, epilogue_pos_);
    }
  }

  // --- per-op templates ----------------------------------------------------

  void EmitOp(size_t i) {
    const MicroOp& u = df_.code[i];
    switch (u.op) {
      // Control flow is always inlined (the helper protocol has no way to
      // redirect the native pc), as are the free phi-edge value moves.
      case UOp::kBr:
        Step();
        a_.IncReg(kPendBranch);
        JumpToUop(u.imm);
        ++out_->inline_ops;
        return;
      case UOp::kCondBr:
        Step();
        a_.IncReg(kPendBranch);
        LoadSlot(RAX, u.a);
        a_.TestRegReg(RAX, RAX);
        JccToUop(kCondNE, u.imm);
        JumpToUop(u.imm2);
        ++out_->inline_ops;
        return;
      case UOp::kCmpBr:
        // icmp component: step, Alu charge, result write-back...
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        a_.AluRegMem(0x3B, RAX, kSlots, SlotDisp(u.b));
        a_.SetccAl(CondFor(static_cast<IrCmp>(u.aux)));
        a_.MovzxEaxAl();
        StoreSlot(u.dst, RAX);
        // ...then the condbr component. Step() clobbered the flags, so the
        // branch re-tests the materialized result - the step-limit check
        // fires between the components exactly as in the interpreters.
        Step();
        a_.IncReg(kPendBranch);
        a_.TestRegReg(RAX, RAX);
        JccToUop(kCondNE, u.imm);
        JumpToUop(u.imm2);
        ++out_->inline_ops;
        return;
      case UOp::kRet:
        Step();
        if (u.flag != 0) {
          LoadSlot(RAX, u.a);
        } else {
          a_.ZeroReg(RAX);
        }
        a_.MovMemReg(kFrame, SGXB_JIT_OFF(ret), RAX);
        SpillHot();
        a_.MovMemImm32(kFrame, SGXB_JIT_OFF(status), kJitStatusOk);
        ret_fixups_.push_back(a_.JmpRel32());
        ++out_->inline_ops;
        return;
      case UOp::kJump:
        JumpToUop(u.imm);
        ++out_->inline_ops;
        return;
      default:
        break;
    }

    if (helper_only_) {
      EmitSlow(i);
      return;
    }

    switch (u.op) {
      case UOp::kConst:
        Step();
        LoadImm(RAX, static_cast<uint64_t>(u.imm));
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kArg:
        Step();
        a_.ZeroReg(RAX);
        if (u.imm >= 0) {
          LoadImm(RCX, static_cast<uint64_t>(u.imm));
          a_.MovRegMem(RDX, kFrame, SGXB_JIT_OFF(nargs));
          a_.CmpRegReg(RCX, RDX);
          const size_t oob = a_.JccRel32(kCondAE);
          a_.MovRegMem(RDX, kFrame, SGXB_JIT_OFF(args));
          a_.MovRegMemIndex8(RAX, RDX, RCX);
          a_.BindHere(oob);
        }
        StoreSlot(u.dst, RAX);
        break;

      case UOp::kAdd:
      case UOp::kSub:
      case UOp::kAnd:
      case UOp::kOr:
      case UOp::kXor: {
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        const uint8_t opcode = u.op == UOp::kAdd   ? 0x03
                               : u.op == UOp::kSub ? 0x2B
                               : u.op == UOp::kAnd ? 0x23
                               : u.op == UOp::kOr  ? 0x0B
                                                   : 0x33;
        a_.AluRegMem(opcode, RAX, kSlots, SlotDisp(u.b));
        StoreSlot(u.dst, RAX);
        break;
      }
      case UOp::kMul:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        a_.ImulRegMem(RAX, kSlots, SlotDisp(u.b));
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kUDiv:
      case UOp::kURem: {
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        LoadSlot(RCX, u.b);
        a_.TestRegReg(RCX, RCX);
        const size_t zero = a_.JccRel32(kCondE);
        a_.ZeroReg(RDX);
        a_.DivReg(RCX);
        if (u.op == UOp::kURem) {
          a_.MovRegReg(RAX, RDX);
        }
        const size_t done = a_.JmpRel32();
        a_.BindHere(zero);
        a_.ZeroReg(RAX);  // divide by zero yields 0, as in the interpreters
        a_.BindHere(done);
        StoreSlot(u.dst, RAX);
        break;
      }
      case UOp::kShl:
      case UOp::kLShr:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        LoadSlot(RCX, u.b);
        // Hardware masks the count to 6 bits - the interpreters' `& 63`.
        if (u.op == UOp::kShl) {
          a_.ShlRegCl(RAX);
        } else {
          a_.ShrRegCl(RAX);
        }
        StoreSlot(u.dst, RAX);
        break;

      case UOp::kAddImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        AluImm(0, 0x03, u.imm);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kSubImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        AluImm(5, 0x2B, u.imm);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kMulImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        MulImm(RAX, u.imm);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kAndImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        AluImm(4, 0x23, u.imm);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kOrImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        AluImm(1, 0x0B, u.imm);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kXorImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        AluImm(6, 0x33, u.imm);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kShlImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        a_.ShlRegImm8(RAX, static_cast<uint8_t>(u.imm));  // pre-masked &63
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kLShrImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        a_.ShrRegImm8(RAX, static_cast<uint8_t>(u.imm));
        StoreSlot(u.dst, RAX);
        break;

      case UOp::kXorShlImm:
      case UOp::kXorLShrImm:
        // Fused shift+xor pair: two steps, two Alu charges, intermediate t
        // written to slot c before the second component. The template keeps
        // v[a] cached in RAX across the StoreSlot(c) write, so the decoder
        // must never alias c with a (the interpreters re-read v[a] after it).
        CHECK(u.c != u.a);
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        a_.MovRegReg(RCX, RAX);
        if (u.op == UOp::kXorShlImm) {
          a_.ShlRegImm8(RCX, static_cast<uint8_t>(u.imm));
        } else {
          a_.ShrRegImm8(RCX, static_cast<uint8_t>(u.imm));
        }
        StoreSlot(u.c, RCX);
        Step();
        a_.IncReg(kPendAlu);
        a_.AluRegReg(0x33, RAX, RCX);
        StoreSlot(u.dst, RAX);
        break;

      case UOp::kICmp:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        a_.AluRegMem(0x3B, RAX, kSlots, SlotDisp(u.b));
        a_.SetccAl(CondFor(static_cast<IrCmp>(u.aux)));
        a_.MovzxEaxAl();
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kICmpImm:
        Step();
        a_.IncReg(kPendAlu);
        LoadSlot(RAX, u.a);
        if (FitsInt32(u.imm)) {
          a_.AluRegImm32(7, RAX, static_cast<int32_t>(u.imm));
        } else {
          LoadImm(RCX, static_cast<uint64_t>(u.imm));
          a_.AluRegReg(0x3B, RAX, RCX);
        }
        a_.SetccAl(CondFor(static_cast<IrCmp>(u.aux)));
        a_.MovzxEaxAl();
        StoreSlot(u.dst, RAX);
        break;

      case UOp::kCopy:
        LoadSlot(RAX, u.a);
        StoreSlot(u.dst, RAX);
        break;

      case UOp::kGep:
        Step();
        a_.AluRegImm8(0, kPendAlu, 2);
        LoadSlot(RAX, u.b);
        MulImm(RAX, u.imm);
        a_.AluRegMem(0x03, RAX, kSlots, SlotDisp(u.a));
        AddImm(RAX, u.imm2);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kMaskPtr:
        Step();
        a_.AluRegImm8(0, kPendAlu, 2);
        LoadSlot(RAX, u.b);
        a_.MovRegImm64(RCX, 0xffffffff00000000ull);
        a_.AluRegReg(0x23, RAX, RCX);
        // 32-bit load zero-extends: exactly v[a] & 0xffffffff.
        a_.MovReg32Mem(RDX, kSlots, SlotDisp(u.a));
        a_.AluRegReg(0x0B, RAX, RDX);
        StoreSlot(u.dst, RAX);
        break;

      case UOp::kCallAbs64:
        Step();
        a_.IncMem(kFrame, SGXB_JIT_OFF(pend_call));
        LoadSlot(RAX, u.a);
        // Branch-free |x|: sar mask, xor, sub (INT64_MIN wraps to itself,
        // matching the interpreters' two's-complement negation).
        a_.MovRegReg(RCX, RAX);
        a_.SarRegImm8(RCX, 63);
        a_.AluRegReg(0x33, RAX, RCX);
        a_.AluRegReg(0x2B, RAX, RCX);
        StoreSlot(u.dst, RAX);
        break;
      case UOp::kCallNop:
        Step();
        a_.IncMem(kFrame, SGXB_JIT_OFF(pend_call));
        if (u.dst != 0) {
          a_.ZeroReg(RAX);
          StoreSlot(u.dst, RAX);
        }
        break;

      default:
        // Observable ops (memory, checks, allocation, MPX side table,
        // scheme hooks, fused access quads) share the interpreter's C++
        // bodies through the slow-path thunk.
        EmitSlow(i);
        return;
    }
    ++out_->inline_ops;
  }

  const DecodedFunction& df_;
  JitProgram* out_;
  const bool helper_only_;
  X64Assembler a_;
  std::vector<size_t> uop_pos_;
  std::vector<std::pair<size_t, size_t>> jump_fixups_;  // (rel32 pos, uop index)
  std::vector<size_t> step_fixups_;
  std::vector<size_t> bail_fixups_;
  std::vector<size_t> ret_fixups_;
  size_t steplimit_pos_ = 0;
  size_t bail_pos_ = 0;
  size_t epilogue_pos_ = 0;
};

#undef SGXB_JIT_OFF

}  // namespace

JitProgram CompileDecodedFunction(const DecodedFunction& df) {
  const auto start = std::chrono::steady_clock::now();
  JitProgram program;
  program.code = df.code;
  program.num_slots = df.num_slots;
  program.track_mpx = df.track_mpx;

  Compiler compiler(df, &program);
  compiler.Compile();

  if (program.buffer.Install(compiler.assembler().data(),
                             compiler.assembler().size())) {
    program.entry =
        reinterpret_cast<JitProgram::EntryFn>(const_cast<void*>(program.buffer.entry()));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    IrExecStats& stats = GlobalIrExecStats();
    stats.jit_compiles.fetch_add(1, std::memory_order_relaxed);
    stats.jit_compiled_bytes.fetch_add(program.native_bytes, std::memory_order_relaxed);
    stats.jit_compile_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
        std::memory_order_relaxed);
  }
  return program;
}

}  // namespace jit
}  // namespace sgxb
