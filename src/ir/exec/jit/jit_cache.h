// Memoizes CompileDecodedFunction results per (function, instrumentation)
// pair, keyed exactly like the decode cache: the structural hash changes
// whenever a pass re-instruments the body, so a stale compilation can never
// execute. A failed compilation (executable memory unavailable) is cached
// too - as a null entry - so the per-function fallback to the threaded
// engine doesn't retry mmap on every call.

#ifndef SGXBOUNDS_SRC_IR_EXEC_JIT_JIT_CACHE_H_
#define SGXBOUNDS_SRC_IR_EXEC_JIT_JIT_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "src/common/ir_engine.h"
#include "src/ir/exec/decoder.h"
#include "src/ir/exec/jit/compiler.h"

namespace sgxb {

class JitCache {
 public:
  // Returns the compiled program, or nullptr when native code is unavailable
  // for this function (caller falls back to RunDecoded).
  const jit::JitProgram* Get(const IrFunction& fn, const DecodedFunction& df,
                             const DecodeOptions& options) {
    const Key key{HashIrFunction(fn), fn.name, options.track_mpx, options.fuse};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      it = entries_
               .emplace(key, std::make_unique<jit::JitProgram>(
                                 jit::CompileDecodedFunction(df)))
               .first;
      compiled_bytes_ += it->second->native_bytes;
    } else {
      ++hits_;
      GlobalIrExecStats().jit_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second->ok() ? it->second.get() : nullptr;
  }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t compiled_bytes() const { return compiled_bytes_; }

 private:
  using Key = std::tuple<uint64_t, std::string, bool, bool>;
  std::map<Key, std::unique_ptr<jit::JitProgram>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t compiled_bytes_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_JIT_JIT_CACHE_H_
