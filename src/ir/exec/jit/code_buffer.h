// W^X executable code buffer for the template JIT.
//
// Discipline: code is assembled into plain heap memory, copied into a fresh
// RW anonymous mapping, and the mapping is flipped to RX (never RWX) before
// the entry pointer is handed out. One mapping per compiled function,
// unmapped on destruction.
//
// JitExecutableAvailable() answers "can this process execute generated
// code": a cached one-page mmap/mprotect probe, overridable per-call by the
// SGXB_IR_FORCE_NOEXEC environment knob (any non-empty value other than "0")
// so tests and hardened deployments can force the threaded-engine fallback.

#ifndef SGXBOUNDS_SRC_IR_EXEC_JIT_CODE_BUFFER_H_
#define SGXBOUNDS_SRC_IR_EXEC_JIT_CODE_BUFFER_H_

#include <cstddef>
#include <cstdint>

namespace sgxb {
namespace jit {

class ExecCodeBuffer {
 public:
  ExecCodeBuffer() = default;
  ~ExecCodeBuffer() { Release(); }
  ExecCodeBuffer(const ExecCodeBuffer&) = delete;
  ExecCodeBuffer& operator=(const ExecCodeBuffer&) = delete;
  ExecCodeBuffer(ExecCodeBuffer&& other) noexcept
      : base_(other.base_), size_(other.size_) {
    other.base_ = nullptr;
    other.size_ = 0;
  }
  ExecCodeBuffer& operator=(ExecCodeBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      base_ = other.base_;
      size_ = other.size_;
      other.base_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  // Maps RW, copies `n` bytes, seals to RX. Returns false (leaving the
  // buffer empty) if the mapping or the permission flip fails.
  bool Install(const uint8_t* bytes, size_t n);

  const void* entry() const { return base_; }
  size_t size() const { return size_; }

 private:
  void Release();

  void* base_ = nullptr;
  size_t size_ = 0;
};

bool JitExecutableAvailable();

}  // namespace jit
}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_JIT_CODE_BUFFER_H_
