// The JIT's slow-path op implementations: every observable micro-op (memory
// traffic, checks, allocation, MPX side table, scheme hooks, fused access
// quads) executes here, in C++ bodies copied line-for-line from the threaded
// engine (exec/engine.cc) - policy semantics live in one place and the JIT
// can never drift from the interpreters on anything a simulation observes.
//
// Also the exception firewall: generated code has no unwind tables, so a
// SimTrap (or anything else) thrown by a runtime must not propagate through
// the JIT frame. SgxbJitSlowOp catches everything, parks the exception in
// the wrapper-owned std::exception_ptr behind JitFrame::ex_slot, and returns
// kJitBail; Interpreter::RunJit rethrows after restoring the interpreter
// invariants.

#include <array>
#include <exception>
#include <utility>

#include "src/asan/asan_runtime.h"
#include "src/common/check.h"
#include "src/enclave/enclave.h"
#include "src/ir/eval.h"
#include "src/ir/exec/flush.h"
#include "src/ir/exec/jit/jit_frame.h"
#include "src/ir/exec/uop.h"
#include "src/ir/scheme_rt.h"
#include "src/mpx/mpx_runtime.h"
#include "src/runtime/heap.h"
#include "src/runtime/stack.h"
#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {

namespace {

#define SGXB_STEP()                                                                  \
  do {                                                                               \
    if (++f.steps > f.max_steps) {                                                   \
      throw SimTrap(TrapKind::kIllegalInstruction, 0, "interpreter step limit exceeded"); \
    }                                                                                \
  } while (0)

#define SGXB_FLUSH() FlushPending(cpu, f.pend_alu, f.pend_branch, f.pend_call)

// kKnownOp == UOp::kCount selects generic dispatch on u.op (the extern "C"
// SgxbJitSlowOp entry); any other value folds the switch to that single op's
// body, giving the compiler's per-opcode call sites a helper with no
// dispatch at all.
template <UOp kKnownOp>
void ExecSlowOp(JitFrame& f, const MicroOp& u) {
  uint64_t* const v = f.v;
  Cpu& cpu = *f.cpu;

  const auto set_bounds = [&f](uint32_t id, const MpxBounds& b) {
    f.mpx_bounds[id] = b;
    f.mpx_valid[id] = 1;
  };
  const auto copy_bounds = [&f](uint32_t dst, uint32_t src) {
    if (f.mpx_valid[src]) {
      f.mpx_bounds[dst] = f.mpx_bounds[src];
      f.mpx_valid[dst] = 1;
    }
  };
  const auto bounds_or_init = [&f](uint32_t id) {
    return f.mpx_valid[id] ? f.mpx_bounds[id] : MpxBounds{};
  };

  switch (kKnownOp == UOp::kCount ? u.op : kKnownOp) {
    // Pure-compute ops land here only under SGXB_IR_JIT_HELPER_ONLY (the
    // thunk-vs-template cross-check mode); bodies still match the threaded
    // engine exactly.
    case UOp::kConst:
      SGXB_STEP();
      v[u.dst] = static_cast<uint64_t>(u.imm);
      break;
    case UOp::kArg:
      SGXB_STEP();
      v[u.dst] = u.imm >= 0 && u.imm < static_cast<int64_t>(f.nargs)
                     ? f.args[static_cast<size_t>(u.imm)]
                     : 0;
      break;
    case UOp::kAdd:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] + v[u.b];
      break;
    case UOp::kSub:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] - v[u.b];
      break;
    case UOp::kMul:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] * v[u.b];
      break;
    case UOp::kUDiv:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.b] == 0 ? 0 : v[u.a] / v[u.b];
      break;
    case UOp::kURem:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.b] == 0 ? 0 : v[u.a] % v[u.b];
      break;
    case UOp::kAnd:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] & v[u.b];
      break;
    case UOp::kOr:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] | v[u.b];
      break;
    case UOp::kXor:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] ^ v[u.b];
      break;
    case UOp::kShl:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] << (v[u.b] & 63);
      break;
    case UOp::kLShr:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] >> (v[u.b] & 63);
      break;
    case UOp::kAddImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] + static_cast<uint64_t>(u.imm);
      break;
    case UOp::kSubImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] - static_cast<uint64_t>(u.imm);
      break;
    case UOp::kMulImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] * static_cast<uint64_t>(u.imm);
      break;
    case UOp::kAndImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] & static_cast<uint64_t>(u.imm);
      break;
    case UOp::kOrImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] | static_cast<uint64_t>(u.imm);
      break;
    case UOp::kXorImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] ^ static_cast<uint64_t>(u.imm);
      break;
    case UOp::kShlImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] << static_cast<uint64_t>(u.imm);  // pre-masked &63
      break;
    case UOp::kLShrImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] >> static_cast<uint64_t>(u.imm);  // pre-masked &63
      break;
    case UOp::kXorShlImm: {
      SGXB_STEP();
      ++f.pend_alu;
      const uint64_t t = v[u.a] << static_cast<uint64_t>(u.imm);
      v[u.c] = t;
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] ^ t;
      break;
    }
    case UOp::kXorLShrImm: {
      SGXB_STEP();
      ++f.pend_alu;
      const uint64_t t = v[u.a] >> static_cast<uint64_t>(u.imm);
      v[u.c] = t;
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = v[u.a] ^ t;
      break;
    }
    case UOp::kICmp:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] = EvalCmp(static_cast<IrCmp>(u.aux), v[u.a], v[u.b]) ? 1 : 0;
      break;
    case UOp::kICmpImm:
      SGXB_STEP();
      ++f.pend_alu;
      v[u.dst] =
          EvalCmp(static_cast<IrCmp>(u.aux), v[u.a], static_cast<uint64_t>(u.imm)) ? 1
                                                                                   : 0;
      break;
    case UOp::kCopy:
      v[u.dst] = v[u.a];
      break;
    case UOp::kBoundsCopy:
      copy_bounds(u.dst, u.a);
      break;
    case UOp::kGep:
      SGXB_STEP();
      f.pend_alu += 2;
      v[u.dst] = v[u.a] + v[u.b] * static_cast<uint64_t>(u.imm) +
                 static_cast<uint64_t>(u.imm2);
      break;
    case UOp::kMaskPtr:
      SGXB_STEP();
      f.pend_alu += 2;
      v[u.dst] = (v[u.b] & 0xffffffff00000000ULL) | (v[u.a] & 0xffffffffULL);
      break;
    case UOp::kCallAbs64: {
      SGXB_STEP();
      ++f.pend_call;
      // Negate in unsigned arithmetic: -INT64_MIN is signed-overflow UB, but
      // 0 - ux wraps to the same bit pattern the JIT's branch-free abs yields.
      const uint64_t ux = v[u.a];
      v[u.dst] = static_cast<int64_t>(ux) < 0 ? 0 - ux : ux;
      break;
    }
    case UOp::kCallNop:
      SGXB_STEP();
      ++f.pend_call;
      if (u.dst != 0) {
        v[u.dst] = 0;
      }
      break;

    // --- observable ops: the JIT always routes these here ------------------

    case UOp::kAllocaNative:
      SGXB_STEP();
      SGXB_FLUSH();
      v[u.dst] = f.stack->Alloca(cpu, static_cast<uint32_t>(u.imm));
      break;
    case UOp::kAllocaNativeMpx: {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(u.imm);
      v[u.dst] = f.stack->Alloca(cpu, size);
      set_bounds(u.dst, f.mpx->BndMk(cpu, static_cast<uint32_t>(v[u.dst]), size));
      break;
    }
    case UOp::kAllocaSgx: {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(u.imm);
      const uint32_t base = f.stack->Alloca(cpu, size + f.sgx->FooterBytes());
      v[u.dst] = f.sgx->SpecifyBounds(cpu, base, base + size, ObjKind::kStack);
      break;
    }
    case UOp::kAllocaAsan: {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(u.imm);
      const uint32_t rz = f.asan->RedzoneFor(size);
      const uint32_t base = f.stack->Alloca(cpu, size + 2 * rz, 16);
      f.asan->RegisterObject(cpu, base + rz, size, AsanRuntime::kShadowStackRedzone);
      v[u.dst] = base + rz;
      break;
    }
    case UOp::kMallocNative:
      SGXB_STEP();
      SGXB_FLUSH();
      v[u.dst] = f.heap->Alloc(cpu, static_cast<uint32_t>(v[u.a]));
      break;
    case UOp::kMallocNativeMpx: {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(v[u.a]);
      v[u.dst] = f.heap->Alloc(cpu, size);
      set_bounds(u.dst, f.mpx->BndMk(cpu, static_cast<uint32_t>(v[u.dst]), size));
      break;
    }
    case UOp::kMallocSgx:
      SGXB_STEP();
      SGXB_FLUSH();
      v[u.dst] = f.sgx->Malloc(cpu, static_cast<uint32_t>(v[u.a]));
      break;
    case UOp::kMallocAsan:
      SGXB_STEP();
      SGXB_FLUSH();
      v[u.dst] = f.asan->Malloc(cpu, static_cast<uint32_t>(v[u.a]));
      break;
    case UOp::kFreeNative:
      SGXB_STEP();
      SGXB_FLUSH();
      f.heap->Free(cpu, static_cast<uint32_t>(v[u.a]));
      break;
    case UOp::kFreeSgx:
      SGXB_STEP();
      SGXB_FLUSH();
      f.sgx->Free(cpu, v[u.a]);
      break;
    case UOp::kFreeAsan:
      SGXB_STEP();
      SGXB_FLUSH();
      f.asan->Free(cpu, static_cast<uint32_t>(v[u.a]));
      break;

    case UOp::kGepMpx:
      SGXB_STEP();
      f.pend_alu += 2;
      v[u.dst] = v[u.a] + v[u.b] * static_cast<uint64_t>(u.imm) +
                 static_cast<uint64_t>(u.imm2);
      copy_bounds(u.dst, u.a);
      break;

    case UOp::kLoad: {
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.loads;
      uint64_t raw = 0;
      f.enclave->LoadBytes(cpu, static_cast<uint32_t>(v[u.a]), &raw, u.aux);
      v[u.dst] = TruncateToType(u.type, raw);
      break;
    }
    case UOp::kStore: {
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.stores;
      const uint64_t raw = TruncateToType(u.type, v[u.a]);
      f.enclave->StoreBytes(cpu, static_cast<uint32_t>(v[u.b]), &raw, u.aux);
      break;
    }

    case UOp::kSgxCheck:
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.sgx->CheckAccess(cpu, v[u.a], static_cast<uint32_t>(u.imm),
                         u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      break;
    case UOp::kSgxCheckUpper:
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.sgx->CheckAccessUpperOnly(cpu, v[u.a], static_cast<uint32_t>(u.imm),
                                  u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      break;
    case UOp::kSgxCheckRange:
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.sgx->CheckRange(cpu, v[u.a], v[u.b]);
      break;
    case UOp::kAsanCheck:
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.asan->CheckAccess(cpu, static_cast<uint32_t>(v[u.a]),
                          static_cast<uint32_t>(u.imm), u.flag != 0);
      break;
    case UOp::kMpxCheck:
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.mpx->BndCheck(cpu, bounds_or_init(u.a), static_cast<uint32_t>(v[u.a]),
                      static_cast<uint32_t>(u.imm));
      break;
    case UOp::kMpxLdx:
      SGXB_STEP();
      SGXB_FLUSH();
      set_bounds(u.a, f.mpx->BndLdx(cpu, static_cast<uint32_t>(v[u.b]),
                                    static_cast<uint32_t>(v[u.a])));
      break;
    case UOp::kMpxStx:
      SGXB_STEP();
      SGXB_FLUSH();
      f.mpx->BndStx(cpu, static_cast<uint32_t>(v[u.b]), static_cast<uint32_t>(v[u.a]),
                    bounds_or_init(u.a));
      break;

    case UOp::kGepSgxCheckLoad: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t g = v[u.a] + v[u.b] * static_cast<uint64_t>(u.imm) +
                         static_cast<uint64_t>(u.imm2);
      v[u.c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.sgx->CheckAccess(cpu, g, u.aux,
                         u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.loads;
      uint64_t raw = 0;
      f.enclave->LoadBytes(cpu, static_cast<uint32_t>(g), &raw, u.aux);
      v[u.dst] = TruncateToType(u.type, raw);
      break;
    }
    case UOp::kGepSgxCheckUpperLoad: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t g = v[u.a] + v[u.b] * static_cast<uint64_t>(u.imm) +
                         static_cast<uint64_t>(u.imm2);
      v[u.c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.sgx->CheckAccessUpperOnly(cpu, g, u.aux,
                                  u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.loads;
      uint64_t raw = 0;
      f.enclave->LoadBytes(cpu, static_cast<uint32_t>(g), &raw, u.aux);
      v[u.dst] = TruncateToType(u.type, raw);
      break;
    }
    case UOp::kGepSgxCheckStore: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t g = v[u.a] + v[u.b] * static_cast<uint64_t>(u.imm) +
                         static_cast<uint64_t>(u.imm2);
      v[u.c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.sgx->CheckAccess(cpu, g, u.aux,
                         u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.stores;
      // v[dst] read after the gep writeback, as in the reference.
      const uint64_t raw = TruncateToType(u.type, v[u.dst]);
      f.enclave->StoreBytes(cpu, static_cast<uint32_t>(g), &raw, u.aux);
      break;
    }
    case UOp::kGepSgxCheckUpperStore: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t g = v[u.a] + v[u.b] * static_cast<uint64_t>(u.imm) +
                         static_cast<uint64_t>(u.imm2);
      v[u.c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.sgx->CheckAccessUpperOnly(cpu, g, u.aux,
                                  u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.stores;
      const uint64_t raw = TruncateToType(u.type, v[u.dst]);
      f.enclave->StoreBytes(cpu, static_cast<uint32_t>(g), &raw, u.aux);
      break;
    }

    case UOp::kGepMaskLoad: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.loads;
      SGXB_FLUSH();
      uint64_t raw = 0;
      f.enclave->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      v[u.dst] = TruncateToType(u.type, raw);
      break;
    }
    case UOp::kGepMaskStore: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.stores;
      SGXB_FLUSH();
      const uint64_t raw = TruncateToType(u.type, v[u.dst]);
      f.enclave->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      break;
    }
    case UOp::kGepMaskSgxCheckLoad: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.checks;
      SGXB_FLUSH();
      f.sgx->CheckAccess(cpu, p, u.aux,
                         u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.loads;
      uint64_t raw = 0;
      f.enclave->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      v[u.dst] = TruncateToType(u.type, raw);
      break;
    }
    case UOp::kGepMaskSgxCheckUpperLoad: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.checks;
      SGXB_FLUSH();
      f.sgx->CheckAccessUpperOnly(cpu, p, u.aux,
                                  u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.loads;
      uint64_t raw = 0;
      f.enclave->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      v[u.dst] = TruncateToType(u.type, raw);
      break;
    }
    case UOp::kGepMaskSgxCheckStore: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.checks;
      SGXB_FLUSH();
      f.sgx->CheckAccess(cpu, p, u.aux,
                         u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.stores;
      const uint64_t raw = TruncateToType(u.type, v[u.dst]);
      f.enclave->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      break;
    }
    case UOp::kGepMaskSgxCheckUpperStore: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.checks;
      SGXB_FLUSH();
      f.sgx->CheckAccessUpperOnly(cpu, p, u.aux,
                                  u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.stores;
      const uint64_t raw = TruncateToType(u.type, v[u.dst]);
      f.enclave->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      break;
    }

    case UOp::kAllocaScheme:
      SGXB_STEP();
      SGXB_FLUSH();
      v[u.dst] = f.scheme->IrAlloca(cpu, *f.stack, static_cast<uint32_t>(u.imm));
      break;
    case UOp::kMallocScheme:
      SGXB_STEP();
      SGXB_FLUSH();
      v[u.dst] = f.scheme->IrMalloc(cpu, static_cast<uint32_t>(v[u.a]));
      break;
    case UOp::kFreeScheme:
      SGXB_STEP();
      SGXB_FLUSH();
      f.scheme->IrFree(cpu, v[u.a]);
      break;
    case UOp::kSchemeCheck:
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.scheme->IrCheck(cpu, v[u.a], static_cast<uint32_t>(u.imm),
                        u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      break;
    case UOp::kSchemeCheckRange:
      SGXB_STEP();
      SGXB_FLUSH();
      ++f.checks;
      f.scheme->IrCheckRange(cpu, v[u.a], v[u.b]);
      break;
    case UOp::kGepMaskSchemeCheckLoad: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.checks;
      SGXB_FLUSH();
      f.scheme->IrCheck(cpu, p, u.aux,
                        u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.loads;
      uint64_t raw = 0;
      f.enclave->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      v[u.dst] = TruncateToType(u.type, raw);
      break;
    }
    case UOp::kGepMaskSchemeCheckStore: {
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(u.imm);
      const uint64_t t = v[u.a] + v[u.b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[u.c] = t;
      SGXB_STEP();
      f.pend_alu += 2;
      const uint64_t p = (v[u.a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(u.imm2)] = p;
      SGXB_STEP();
      ++f.checks;
      SGXB_FLUSH();
      f.scheme->IrCheck(cpu, p, u.aux,
                        u.flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++f.stores;
      const uint64_t raw = TruncateToType(u.type, v[u.dst]);
      f.enclave->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, u.aux);
      break;
    }

    case UOp::kBr:
    case UOp::kCondBr:
    case UOp::kCmpBr:
    case UOp::kRet:
    case UOp::kJump:
    case UOp::kCount:
      // Control flow is always inlined by the compiler; reaching here means
      // the template emission and the thunk disagree about the op split.
      FATAL("control-flow micro-op routed to the JIT slow path");
  }
}

#undef SGXB_STEP
#undef SGXB_FLUSH

template <UOp kOp>
uint64_t SlowOpThunk(JitFrame* frame, uint64_t index) noexcept {
  try {
    ExecSlowOp<kOp>(*frame, frame->code[index]);
    return kJitContinue;
  } catch (...) {
    *static_cast<std::exception_ptr*>(frame->ex_slot) = std::current_exception();
    return kJitBail;
  }
}

template <size_t... I>
constexpr std::array<SgxbJitSlowFn, sizeof...(I)> MakeSlowOpTable(
    std::index_sequence<I...>) {
  return {{&SlowOpThunk<static_cast<UOp>(I)>...}};
}

const std::array<SgxbJitSlowFn, static_cast<size_t>(UOp::kCount)> kSlowOpTable =
    MakeSlowOpTable(std::make_index_sequence<static_cast<size_t>(UOp::kCount)>{});

}  // namespace

SgxbJitSlowFn SgxbJitSlowFnFor(uint16_t op) {
  CHECK(op < static_cast<uint16_t>(UOp::kCount));
  return kSlowOpTable[op];
}

extern "C" uint64_t SgxbJitSlowOp(JitFrame* frame, uint64_t index) noexcept {
  return SlowOpThunk<UOp::kCount>(frame, index);
}

}  // namespace sgxb
