// Template compilation of decoded micro-op streams to x86-64.
//
// Each MicroOp is stamped out from a hand-written code template (pure
// compute and control flow inline; everything observable - memory traffic,
// runtime calls, checks, allocation - bails to the shared C++ slow op via
// SgxbJitSlowOp). Branch targets are recorded during emission and fixed up
// in a second pass once every op's native offset is known. See jit_frame.h
// for the frame ABI and compiler.cc for the per-op templates.

#ifndef SGXBOUNDS_SRC_IR_EXEC_JIT_COMPILER_H_
#define SGXBOUNDS_SRC_IR_EXEC_JIT_COMPILER_H_

#include <cstdint>
#include <vector>

#include "src/ir/exec/jit/code_buffer.h"
#include "src/ir/exec/jit/jit_frame.h"
#include "src/ir/exec/uop.h"

namespace sgxb {
namespace jit {

struct JitProgram {
  using EntryFn = void (*)(JitFrame*);

  // Private copy of the micro-op stream: generated code embeds op indices
  // for the slow-path thunk, and slow ops read their operands from here. The
  // copy pins the lifetime to the program (a DecodeCache entry could in
  // principle be evicted independently).
  std::vector<MicroOp> code;
  uint32_t num_slots = 0;
  bool track_mpx = false;

  ExecCodeBuffer buffer;
  EntryFn entry = nullptr;
  // Compile statistics, surfaced through --selftime.
  size_t native_bytes = 0;
  uint32_t inline_ops = 0;
  uint32_t helper_ops = 0;

  bool ok() const { return entry != nullptr; }
};

// Lowers `df` to native code. A program with ok()==false means executable
// memory was unavailable; the caller falls back to the threaded engine.
//
// Env knob SGXB_IR_JIT_HELPER_ONLY: route every non-control op through the
// slow-path thunk instead of its inline template - a degenerate but
// semantically complete compilation mode used by tests to cross-check the
// thunk implementations against the inline templates.
JitProgram CompileDecodedFunction(const DecodedFunction& df);

}  // namespace jit
}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_JIT_COMPILER_H_
