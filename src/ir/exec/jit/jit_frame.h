// The calling convention between Interpreter::RunJit and JIT-compiled code.
//
// Compiled code receives one argument: a JitFrame*. The frame is plain data
// (standard layout - the compiler bakes offsetof() constants into generated
// instructions), holding the slot array, the original micro-op stream (for
// helper bail-outs), the hot counters, and every host object the slow paths
// need.
//
// Register pinning inside generated code (all callee-saved, so they survive
// SysV helper calls untouched):
//
//   rbx  JitFrame*
//   r12  slot array base (frame->v)
//   r13  steps
//   r14  pend_alu
//   rbp  pend_branch
//   r15  max_steps
//
// pend_call and the loads/stores/checks counters live in frame memory (cold).
//
// Helper protocol: non-template-able ops call
//   uint64_t JitSlowOp(JitFrame*, uint64_t op_index)
// with steps/pend_alu/pend_branch spilled to the frame first. The helper runs
// the exact C++ op body the threaded engine uses (jit/runtime.cc), mutating
// frame fields, and returns kJitContinue or kJitBail. C++ exceptions never
// unwind through the JIT frame (it has no unwind info): the helper catches
// everything, stashes the std::exception_ptr through ex_slot, and bails; the
// RunJit wrapper rethrows after restoring the interpreter's invariants
// (flush, stats write-back, frame pop) - exactly the threaded engine's
// catch(...) path. Control flow is never delegated: branches are always
// inlined, so a helper's answer is only "keep going" or "stop".

#ifndef SGXBOUNDS_SRC_IR_EXEC_JIT_JIT_FRAME_H_
#define SGXBOUNDS_SRC_IR_EXEC_JIT_JIT_FRAME_H_

#include <cstdint>

namespace sgxb {

class Cpu;
class Enclave;
class Heap;
class StackAllocator;
class SgxBoundsRuntime;
class AsanRuntime;
class MpxRuntime;
class IrSchemeRuntime;
struct MpxBounds;
struct MicroOp;

// Values of JitFrame::status when compiled code returns.
enum : uint64_t {
  kJitStatusOk = 0,         // kRet executed; result in frame->ret
  kJitStatusBail = 1,       // helper stashed an exception through ex_slot
  kJitStatusStepLimit = 2,  // inline step check tripped (max_steps exceeded)
};

// JitSlowOp return values.
enum : uint64_t {
  kJitContinue = 0,
  kJitBail = 1,
};

struct JitFrame {
  // Hot state mirrored into pinned registers by the prologue.
  uint64_t* v = nullptr;         // slot array (num_slots entries)
  uint64_t steps = 0;
  uint64_t pend_alu = 0;
  uint64_t pend_branch = 0;
  uint64_t max_steps = 0;
  // Frame-resident state.
  uint64_t pend_call = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t checks = 0;
  uint64_t status = kJitStatusOk;
  uint64_t ret = 0;
  const uint64_t* args = nullptr;
  uint64_t nargs = 0;
  const MicroOp* code = nullptr;  // decoded stream, indexed by JitSlowOp
  // Host objects for the slow paths (null when not attached).
  Cpu* cpu = nullptr;
  Enclave* enclave = nullptr;
  Heap* heap = nullptr;
  StackAllocator* stack = nullptr;
  SgxBoundsRuntime* sgx = nullptr;
  AsanRuntime* asan = nullptr;
  MpxRuntime* mpx = nullptr;
  IrSchemeRuntime* scheme = nullptr;
  MpxBounds* mpx_bounds = nullptr;  // SSA-id-indexed side table (may be null)
  uint8_t* mpx_valid = nullptr;
  void* ex_slot = nullptr;  // std::exception_ptr* owned by the RunJit wrapper
};

// The uniform helper-call thunk (jit/runtime.cc). noexcept by construction:
// every exception is converted into a kJitBail through ex_slot.
extern "C" uint64_t SgxbJitSlowOp(JitFrame* frame, uint64_t index) noexcept;

// Per-opcode specialization of SgxbJitSlowOp: identical ABI and semantics,
// but the opcode switch is folded away at compile time, so each generated
// call site targets a helper containing only its own op body. `op` is the
// numeric UOp value of the micro-op at that site.
using SgxbJitSlowFn = uint64_t (*)(JitFrame*, uint64_t);
SgxbJitSlowFn SgxbJitSlowFnFor(uint16_t op);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_JIT_JIT_FRAME_H_
