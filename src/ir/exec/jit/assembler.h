// Minimal x86-64 byte emitter for the template JIT.
//
// Only the encodings the op templates need: 64-bit mov/ALU in reg-reg,
// reg-mem ([base+disp32]) and reg-imm forms, shifts, setcc, div, call, and
// rel32 jumps with two-pass fixups. No scheduling, no register allocation -
// the compiler (compiler.cc) pins its registers statically and uses
// rax/rcx/rdx as scratch.

#ifndef SGXBOUNDS_SRC_IR_EXEC_JIT_ASSEMBLER_H_
#define SGXBOUNDS_SRC_IR_EXEC_JIT_ASSEMBLER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/check.h"

namespace sgxb {
namespace jit {

enum Reg : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// The x86 condition-code nibble (used in 0F 8x jcc and 0F 9x setcc).
enum Cond : uint8_t {
  kCondB = 0x2,   // unsigned <
  kCondAE = 0x3,  // unsigned >=
  kCondE = 0x4,
  kCondNE = 0x5,
  kCondBE = 0x6,  // unsigned <=
  kCondA = 0x7,   // unsigned >
  kCondL = 0xC,   // signed <
  kCondGE = 0xD,
  kCondLE = 0xE,
  kCondG = 0xF,
};

class X64Assembler {
 public:
  size_t size() const { return buf_.size(); }
  const uint8_t* data() const { return buf_.data(); }

  void U8(uint8_t b) { buf_.push_back(b); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  // --- moves ---------------------------------------------------------------

  // mov dst, [base+disp]
  void MovRegMem(Reg dst, Reg base, int32_t disp) {
    RexW(dst, base);
    U8(0x8B);
    Mem(dst, base, disp);
  }
  // mov [base+disp], src
  void MovMemReg(Reg base, int32_t disp, Reg src) {
    RexW(src, base);
    U8(0x89);
    Mem(src, base, disp);
  }
  // mov dst32, [base+disp] - 32-bit load, zero-extends into the full register
  void MovReg32Mem(Reg dst, Reg base, int32_t disp) {
    Rex(dst, base);
    U8(0x8B);
    Mem(dst, base, disp);
  }
  // movabs dst, imm64
  void MovRegImm64(Reg dst, uint64_t imm) {
    U8(0x48 | (dst >> 3));
    U8(0xB8 + (dst & 7));
    U64(imm);
  }
  // mov dst32, imm32 (zero-extends; 5-7 bytes vs movabs' 10)
  void MovReg32Imm32(Reg dst, uint32_t imm) {
    if (dst >> 3) U8(0x41);
    U8(0xB8 + (dst & 7));
    U32(imm);
  }
  // mov dst, src (64-bit)
  void MovRegReg(Reg dst, Reg src) {
    RexW(dst, src);
    U8(0x8B);
    ModRM(3, dst, src);
  }
  // mov qword [base+disp], imm32 (sign-extended)
  void MovMemImm32(Reg base, int32_t disp, int32_t imm) {
    RexW(0, base);
    U8(0xC7);
    Mem(0, base, disp);
    U32(static_cast<uint32_t>(imm));
  }
  // mov dst, [base + index*8] - caller must not pass RBP/R13 as base
  void MovRegMemIndex8(Reg dst, Reg base, Reg index) {
    CHECK((base & 7) != 5);
    U8(0x48 | ((dst >> 3) << 2) | ((index >> 3) << 1) | (base >> 3));
    U8(0x8B);
    ModRM(0, dst, 4);
    U8((3 << 6) | ((index & 7) << 3) | (base & 7));
  }

  // --- ALU -----------------------------------------------------------------

  // Two-operand ALU, dst = dst OP src. Opcode is the r64,r/m64 form:
  // add 0x03, sub 0x2B, and 0x23, or 0x0B, xor 0x33, cmp 0x3B.
  void AluRegReg(uint8_t opcode, Reg dst, Reg src) {
    RexW(dst, src);
    U8(opcode);
    ModRM(3, dst, src);
  }
  void AluRegMem(uint8_t opcode, Reg dst, Reg base, int32_t disp) {
    RexW(dst, base);
    U8(opcode);
    Mem(dst, base, disp);
  }
  // Group-1 ALU with sign-extended imm32; ext: add /0, or /1, and /4,
  // sub /5, xor /6, cmp /7.
  void AluRegImm32(uint8_t ext, Reg reg, int32_t imm) {
    RexW(0, reg);
    U8(0x81);
    ModRM(3, ext, reg);
    U32(static_cast<uint32_t>(imm));
  }
  void AluRegImm8(uint8_t ext, Reg reg, int8_t imm) {
    RexW(0, reg);
    U8(0x83);
    ModRM(3, ext, reg);
    U8(static_cast<uint8_t>(imm));
  }
  void ImulRegReg(Reg dst, Reg src) {
    RexW(dst, src);
    U8(0x0F);
    U8(0xAF);
    ModRM(3, dst, src);
  }
  void ImulRegMem(Reg dst, Reg base, int32_t disp) {
    RexW(dst, base);
    U8(0x0F);
    U8(0xAF);
    Mem(dst, base, disp);
  }
  void ImulRegRegImm32(Reg dst, Reg src, int32_t imm) {
    RexW(dst, src);
    U8(0x69);
    ModRM(3, dst, src);
    U32(static_cast<uint32_t>(imm));
  }
  // xor dst32, dst32 - canonical zero idiom
  void ZeroReg(Reg reg) {
    Rex(reg, reg);
    U8(0x31);
    ModRM(3, reg, reg);
  }
  void ShlRegImm8(Reg reg, uint8_t n) { ShiftImm(4, reg, n); }
  void ShrRegImm8(Reg reg, uint8_t n) { ShiftImm(5, reg, n); }
  void SarRegImm8(Reg reg, uint8_t n) { ShiftImm(7, reg, n); }
  void ShlRegCl(Reg reg) { ShiftCl(4, reg); }
  void ShrRegCl(Reg reg) { ShiftCl(5, reg); }
  // test a, b (sets flags from a & b)
  void TestRegReg(Reg a, Reg b) {
    RexW(b, a);
    U8(0x85);
    ModRM(3, b, a);
  }
  // cmp a, b (flags from a - b)
  void CmpRegReg(Reg a, Reg b) {
    RexW(b, a);
    U8(0x39);
    ModRM(3, b, a);
  }
  void IncReg(Reg reg) {
    RexW(0, reg);
    U8(0xFF);
    ModRM(3, 0, reg);
  }
  void AddRegImm(Reg reg, int32_t imm) {
    if (imm >= -128 && imm <= 127) {
      AluRegImm8(0, reg, static_cast<int8_t>(imm));
    } else {
      AluRegImm32(0, reg, imm);
    }
  }
  // inc qword [base+disp]
  void IncMem(Reg base, int32_t disp) {
    RexW(0, base);
    U8(0xFF);
    Mem(0, base, disp);
  }
  // div rcx-class: unsigned rdx:rax / reg -> quotient rax, remainder rdx
  void DivReg(Reg reg) {
    RexW(0, reg);
    U8(0xF7);
    ModRM(3, 6, reg);
  }
  // setcc al (no REX: al is encodable unprefixed)
  void SetccAl(Cond cc) {
    U8(0x0F);
    U8(0x90 | cc);
    ModRM(3, 0, RAX);
  }
  // movzx eax, al
  void MovzxEaxAl() {
    U8(0x0F);
    U8(0xB6);
    ModRM(3, RAX, RAX);
  }

  // --- control -------------------------------------------------------------

  void PushReg(Reg r) {
    if (r >> 3) U8(0x41);
    U8(0x50 + (r & 7));
  }
  void PopReg(Reg r) {
    if (r >> 3) U8(0x41);
    U8(0x58 + (r & 7));
  }
  void SubRspImm8(int8_t n) { U8(0x48); U8(0x83); ModRM(3, 5, RSP); U8(n); }
  void AddRspImm8(int8_t n) { U8(0x48); U8(0x83); ModRM(3, 0, RSP); U8(n); }
  void CallReg(Reg reg) {
    if (reg >> 3) U8(0x41);
    U8(0xFF);
    ModRM(3, 2, reg);
  }
  void Ret() { U8(0xC3); }

  // Emits a jmp/jcc with a rel32 placeholder; returns the placeholder offset
  // for PatchRel32.
  size_t JmpRel32() {
    U8(0xE9);
    const size_t pos = buf_.size();
    U32(0);
    return pos;
  }
  size_t JccRel32(Cond cc) {
    U8(0x0F);
    U8(0x80 | cc);
    const size_t pos = buf_.size();
    U32(0);
    return pos;
  }
  void PatchRel32(size_t pos, size_t target) {
    const int64_t rel = static_cast<int64_t>(target) - (static_cast<int64_t>(pos) + 4);
    CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
    const uint32_t enc = static_cast<uint32_t>(static_cast<int32_t>(rel));
    std::memcpy(&buf_[pos], &enc, 4);
  }
  // Binds a pending placeholder to the current position.
  void BindHere(size_t pos) { PatchRel32(pos, buf_.size()); }

 private:
  // REX.W prefix: reg extends modrm.reg, rm extends modrm.rm / SIB base.
  void RexW(uint8_t reg, uint8_t rm) {
    U8(0x48 | ((reg >> 3) << 2) | (rm >> 3));
  }
  // Optional REX (no W) for 32-bit forms touching r8-r15.
  void Rex(uint8_t reg, uint8_t rm) {
    const uint8_t bits = static_cast<uint8_t>(((reg >> 3) << 2) | (rm >> 3));
    if (bits) U8(0x40 | bits);
  }
  void ModRM(uint8_t mod, uint8_t reg, uint8_t rm) {
    U8(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }
  // [base+disp32] with the rsp/r12 SIB escape (mod=2 keeps rbp/r13 regular).
  void Mem(uint8_t reg, Reg base, int32_t disp) {
    ModRM(2, reg, base);
    if ((base & 7) == 4) U8(0x24);
    U32(static_cast<uint32_t>(disp));
  }
  void ShiftImm(uint8_t ext, Reg reg, uint8_t n) {
    RexW(0, reg);
    U8(0xC1);
    ModRM(3, ext, reg);
    U8(n);
  }
  void ShiftCl(uint8_t ext, Reg reg) {
    RexW(0, reg);
    U8(0xD3);
    ModRM(3, ext, reg);
  }

  std::vector<uint8_t> buf_;
};

}  // namespace jit
}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_JIT_ASSEMBLER_H_
