// Direct-threaded execution of decoded micro-op programs.
//
// Dispatch is a computed goto on GCC/Clang (one indirect jump per micro-op,
// no bounds check, no loop); define SGXB_IR_FORCE_SWITCH to fall back to a
// portable for(;;)+switch loop with identical semantics. Every simulated
// effect - step accounting, Cpu charges, memory traffic, runtime calls,
// traps - replicates the reference interpreter bit-for-bit; see uop.h.

#include "src/common/check.h"
#include "src/ir/eval.h"
#include "src/ir/exec/flush.h"
#include "src/ir/exec/uop.h"
#include "src/ir/interp.h"

#if defined(__GNUC__) && !defined(SGXB_IR_FORCE_SWITCH)
#define SGXB_IR_COMPUTED_GOTO 1
#else
#define SGXB_IR_COMPUTED_GOTO 0
#endif

namespace sgxb {

uint64_t Interpreter::RunDecoded(const DecodedFunction& df, Cpu& cpu,
                                 const std::vector<uint64_t>& args, uint64_t max_steps) {
  values_.assign(df.num_slots, 0);
  uint64_t* const v = values_.data();
  if (df.track_mpx) {
    CHECK(mpx_ != nullptr);
    mpx_bounds_.assign(df.num_slots, MpxBounds{});
    mpx_valid_.assign(df.num_slots, 0);
  }

  const uint32_t frame = stack_->PushFrame();
  const MicroOp* const code = df.code.data();
  const MicroOp* pc = code + df.entry;

  // Hot counters live in registers; written back to stats_ on every exit
  // path so mid-trap observations match the reference exactly.
  uint64_t steps = stats_.steps;
  uint64_t loads = stats_.loads;
  uint64_t stores = stats_.stores;
  uint64_t checks = stats_.checks;

  // Pure compute charges (Alu/Branch/Call) are commutative cycle sums that
  // nothing observes between two observable points (memory access, runtime
  // call, trap, return) - so they accumulate in registers and flush just
  // before each observable. Every cycle stamp the simulation can record is
  // therefore identical to the reference's, which charges per instruction.
  uint64_t pend_alu = 0;
  uint64_t pend_branch = 0;
  uint64_t pend_call = 0;

#define SGXB_FLUSH() FlushPending(cpu, pend_alu, pend_branch, pend_call)

#define SGXB_STEP()                                                                  \
  do {                                                                               \
    if (++steps > max_steps) {                                                       \
      throw SimTrap(TrapKind::kIllegalInstruction, 0, "interpreter step limit exceeded"); \
    }                                                                                \
  } while (0)

  auto set_bounds = [this](uint32_t id, const MpxBounds& b) {
    mpx_bounds_[id] = b;
    mpx_valid_[id] = 1;
  };
  auto copy_bounds = [this](uint32_t dst, uint32_t src) {
    if (mpx_valid_[src]) {
      mpx_bounds_[dst] = mpx_bounds_[src];
      mpx_valid_[dst] = 1;
    }
  };
  auto bounds_or_init = [this](uint32_t id) {
    return mpx_valid_[id] ? mpx_bounds_[id] : MpxBounds{};
  };

  try {
#if SGXB_IR_COMPUTED_GOTO
    // Label table indexed by UOp; order must match the enum exactly.
    static const void* const kLabels[] = {
        &&L_kConst, &&L_kArg,
        &&L_kAdd, &&L_kSub, &&L_kMul, &&L_kUDiv, &&L_kURem, &&L_kAnd, &&L_kOr,
        &&L_kXor, &&L_kShl, &&L_kLShr,
        &&L_kAddImm, &&L_kSubImm, &&L_kMulImm, &&L_kAndImm, &&L_kOrImm,
        &&L_kXorImm, &&L_kShlImm, &&L_kLShrImm,
        &&L_kXorShlImm, &&L_kXorLShrImm,
        &&L_kICmp, &&L_kICmpImm,
        &&L_kBr, &&L_kCondBr, &&L_kCmpBr, &&L_kRet,
        &&L_kCopy, &&L_kBoundsCopy, &&L_kJump,
        &&L_kAllocaNative, &&L_kAllocaNativeMpx, &&L_kAllocaSgx, &&L_kAllocaAsan,
        &&L_kMallocNative, &&L_kMallocNativeMpx, &&L_kMallocSgx, &&L_kMallocAsan,
        &&L_kFreeNative, &&L_kFreeSgx, &&L_kFreeAsan,
        &&L_kGep, &&L_kGepMpx, &&L_kMaskPtr,
        &&L_kLoad, &&L_kStore,
        &&L_kSgxCheck, &&L_kSgxCheckUpper, &&L_kSgxCheckRange, &&L_kAsanCheck,
        &&L_kMpxCheck, &&L_kMpxLdx, &&L_kMpxStx,
        &&L_kGepSgxCheckLoad, &&L_kGepSgxCheckUpperLoad, &&L_kGepSgxCheckStore,
        &&L_kGepSgxCheckUpperStore,
        &&L_kGepMaskLoad, &&L_kGepMaskStore,
        &&L_kGepMaskSgxCheckLoad, &&L_kGepMaskSgxCheckUpperLoad,
        &&L_kGepMaskSgxCheckStore, &&L_kGepMaskSgxCheckUpperStore,
        &&L_kCallAbs64, &&L_kCallNop,
        &&L_kAllocaScheme, &&L_kMallocScheme, &&L_kFreeScheme,
        &&L_kSchemeCheck, &&L_kSchemeCheckRange,
        &&L_kGepMaskSchemeCheckLoad, &&L_kGepMaskSchemeCheckStore,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      static_cast<size_t>(UOp::kCount),
                  "label table out of sync with UOp");
#define VMCASE(name) L_##name:
#define VMNEXT()                                        \
  do {                                                  \
    ++pc;                                               \
    goto* kLabels[static_cast<uint8_t>(pc->op)];        \
  } while (0)
#define VMJUMP(target)                                  \
  do {                                                  \
    pc = code + (target);                               \
    goto* kLabels[static_cast<uint8_t>(pc->op)];        \
  } while (0)
    goto* kLabels[static_cast<uint8_t>(pc->op)];
#else
#define VMCASE(name) case UOp::name:
#define VMNEXT()                                        \
  {                                                     \
    ++pc;                                               \
    break;                                              \
  }
#define VMJUMP(target)                                  \
  {                                                     \
    pc = code + (target);                               \
    break;                                              \
  }
    for (;;) {
      switch (pc->op) {
#endif

    VMCASE(kConst) {
      SGXB_STEP();
      v[pc->dst] = static_cast<uint64_t>(pc->imm);
    }
    VMNEXT();
    VMCASE(kArg) {
      SGXB_STEP();
      v[pc->dst] = pc->imm >= 0 && pc->imm < static_cast<int64_t>(args.size())
                       ? args[static_cast<size_t>(pc->imm)]
                       : 0;
    }
    VMNEXT();

    VMCASE(kAdd) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] + v[pc->b];
    }
    VMNEXT();
    VMCASE(kSub) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] - v[pc->b];
    }
    VMNEXT();
    VMCASE(kMul) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] * v[pc->b];
    }
    VMNEXT();
    VMCASE(kUDiv) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->b] == 0 ? 0 : v[pc->a] / v[pc->b];
    }
    VMNEXT();
    VMCASE(kURem) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->b] == 0 ? 0 : v[pc->a] % v[pc->b];
    }
    VMNEXT();
    VMCASE(kAnd) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] & v[pc->b];
    }
    VMNEXT();
    VMCASE(kOr) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] | v[pc->b];
    }
    VMNEXT();
    VMCASE(kXor) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] ^ v[pc->b];
    }
    VMNEXT();
    VMCASE(kShl) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] << (v[pc->b] & 63);
    }
    VMNEXT();
    VMCASE(kLShr) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] >> (v[pc->b] & 63);
    }
    VMNEXT();

    VMCASE(kAddImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] + static_cast<uint64_t>(pc->imm);
    }
    VMNEXT();
    VMCASE(kSubImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] - static_cast<uint64_t>(pc->imm);
    }
    VMNEXT();
    VMCASE(kMulImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] * static_cast<uint64_t>(pc->imm);
    }
    VMNEXT();
    VMCASE(kAndImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] & static_cast<uint64_t>(pc->imm);
    }
    VMNEXT();
    VMCASE(kOrImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] | static_cast<uint64_t>(pc->imm);
    }
    VMNEXT();
    VMCASE(kXorImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] ^ static_cast<uint64_t>(pc->imm);
    }
    VMNEXT();
    VMCASE(kShlImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] << static_cast<uint64_t>(pc->imm);  // pre-masked &63
    }
    VMNEXT();
    VMCASE(kLShrImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] >> static_cast<uint64_t>(pc->imm);  // pre-masked &63
    }
    VMNEXT();

    VMCASE(kXorShlImm) {
      // Fused shl-by-const + xor: the shift result t (slot c) is written
      // first, then the xor - two steps and two Alu charges, exactly the
      // reference's accounting for the two instructions.
      SGXB_STEP();
      ++pend_alu;
      const uint64_t t = v[pc->a] << static_cast<uint64_t>(pc->imm);
      v[pc->c] = t;
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] ^ t;
    }
    VMNEXT();
    VMCASE(kXorLShrImm) {
      SGXB_STEP();
      ++pend_alu;
      const uint64_t t = v[pc->a] >> static_cast<uint64_t>(pc->imm);
      v[pc->c] = t;
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = v[pc->a] ^ t;
    }
    VMNEXT();

    VMCASE(kICmp) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] = EvalCmp(static_cast<IrCmp>(pc->aux), v[pc->a], v[pc->b]) ? 1 : 0;
    }
    VMNEXT();
    VMCASE(kICmpImm) {
      SGXB_STEP();
      ++pend_alu;
      v[pc->dst] =
          EvalCmp(static_cast<IrCmp>(pc->aux), v[pc->a], static_cast<uint64_t>(pc->imm))
              ? 1
              : 0;
    }
    VMNEXT();

    VMCASE(kBr) {
      SGXB_STEP();
      ++pend_branch;
      VMJUMP(pc->imm);
    }
    VMCASE(kCondBr) {
      SGXB_STEP();
      ++pend_branch;
      VMJUMP(v[pc->a] != 0 ? pc->imm : pc->imm2);
    }
    VMCASE(kCmpBr) {
      // Fused icmp (step, Alu, write) + condbr (step, Branch, jump): the
      // step-limit check fires between the components exactly as the
      // reference does between the two instructions.
      SGXB_STEP();
      ++pend_alu;
      const bool taken = EvalCmp(static_cast<IrCmp>(pc->aux), v[pc->a], v[pc->b]);
      v[pc->dst] = taken ? 1 : 0;
      SGXB_STEP();
      ++pend_branch;
      VMJUMP(taken ? pc->imm : pc->imm2);
    }
    VMCASE(kRet) {
      SGXB_STEP();
      const uint64_t ret = pc->flag != 0 ? v[pc->a] : 0;
      SGXB_FLUSH();
      stats_.steps = steps;
      stats_.loads = loads;
      stats_.stores = stores;
      stats_.checks = checks;
      stack_->PopFrame(frame);
      return ret;
    }

    VMCASE(kCopy) { v[pc->dst] = v[pc->a]; }
    VMNEXT();
    VMCASE(kBoundsCopy) { copy_bounds(pc->dst, pc->a); }
    VMNEXT();
    VMCASE(kJump) { VMJUMP(pc->imm); }

    VMCASE(kAllocaNative) {
      SGXB_STEP();
      SGXB_FLUSH();
      v[pc->dst] = stack_->Alloca(cpu, static_cast<uint32_t>(pc->imm));
    }
    VMNEXT();
    VMCASE(kAllocaNativeMpx) {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(pc->imm);
      v[pc->dst] = stack_->Alloca(cpu, size);
      set_bounds(pc->dst, mpx_->BndMk(cpu, static_cast<uint32_t>(v[pc->dst]), size));
    }
    VMNEXT();
    VMCASE(kAllocaSgx) {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(pc->imm);
      const uint32_t base = stack_->Alloca(cpu, size + sgx_->FooterBytes());
      v[pc->dst] = sgx_->SpecifyBounds(cpu, base, base + size, ObjKind::kStack);
    }
    VMNEXT();
    VMCASE(kAllocaAsan) {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(pc->imm);
      const uint32_t rz = asan_->RedzoneFor(size);
      const uint32_t base = stack_->Alloca(cpu, size + 2 * rz, 16);
      asan_->RegisterObject(cpu, base + rz, size, AsanRuntime::kShadowStackRedzone);
      v[pc->dst] = base + rz;
    }
    VMNEXT();

    VMCASE(kMallocNative) {
      SGXB_STEP();
      SGXB_FLUSH();
      v[pc->dst] = heap_->Alloc(cpu, static_cast<uint32_t>(v[pc->a]));
    }
    VMNEXT();
    VMCASE(kMallocNativeMpx) {
      SGXB_STEP();
      SGXB_FLUSH();
      const uint32_t size = static_cast<uint32_t>(v[pc->a]);
      v[pc->dst] = heap_->Alloc(cpu, size);
      set_bounds(pc->dst, mpx_->BndMk(cpu, static_cast<uint32_t>(v[pc->dst]), size));
    }
    VMNEXT();
    VMCASE(kMallocSgx) {
      SGXB_STEP();
      SGXB_FLUSH();
      v[pc->dst] = sgx_->Malloc(cpu, static_cast<uint32_t>(v[pc->a]));
    }
    VMNEXT();
    VMCASE(kMallocAsan) {
      SGXB_STEP();
      SGXB_FLUSH();
      v[pc->dst] = asan_->Malloc(cpu, static_cast<uint32_t>(v[pc->a]));
    }
    VMNEXT();

    VMCASE(kFreeNative) {
      SGXB_STEP();
      SGXB_FLUSH();
      heap_->Free(cpu, static_cast<uint32_t>(v[pc->a]));
    }
    VMNEXT();
    VMCASE(kFreeSgx) {
      SGXB_STEP();
      SGXB_FLUSH();
      sgx_->Free(cpu, v[pc->a]);
    }
    VMNEXT();
    VMCASE(kFreeAsan) {
      SGXB_STEP();
      SGXB_FLUSH();
      asan_->Free(cpu, static_cast<uint32_t>(v[pc->a]));
    }
    VMNEXT();

    VMCASE(kGep) {
      SGXB_STEP();
      pend_alu += 2;
      v[pc->dst] = v[pc->a] + v[pc->b] * static_cast<uint64_t>(pc->imm) +
                   static_cast<uint64_t>(pc->imm2);
    }
    VMNEXT();
    VMCASE(kGepMpx) {
      SGXB_STEP();
      pend_alu += 2;
      v[pc->dst] = v[pc->a] + v[pc->b] * static_cast<uint64_t>(pc->imm) +
                   static_cast<uint64_t>(pc->imm2);
      copy_bounds(pc->dst, pc->a);
    }
    VMNEXT();
    VMCASE(kMaskPtr) {
      SGXB_STEP();
      pend_alu += 2;
      v[pc->dst] = (v[pc->b] & 0xffffffff00000000ULL) | (v[pc->a] & 0xffffffffULL);
    }
    VMNEXT();

    VMCASE(kLoad) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++loads;
      uint64_t raw = 0;
      enclave_->LoadBytes(cpu, static_cast<uint32_t>(v[pc->a]), &raw, pc->aux);
      v[pc->dst] = TruncateToType(pc->type, raw);
    }
    VMNEXT();
    VMCASE(kStore) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++stores;
      const uint64_t raw = TruncateToType(pc->type, v[pc->a]);
      enclave_->StoreBytes(cpu, static_cast<uint32_t>(v[pc->b]), &raw, pc->aux);
    }
    VMNEXT();

    VMCASE(kSgxCheck) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      sgx_->CheckAccess(cpu, v[pc->a], static_cast<uint32_t>(pc->imm),
                        pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
    }
    VMNEXT();
    VMCASE(kSgxCheckUpper) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      sgx_->CheckAccessUpperOnly(cpu, v[pc->a], static_cast<uint32_t>(pc->imm),
                                 pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
    }
    VMNEXT();
    VMCASE(kSgxCheckRange) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      sgx_->CheckRange(cpu, v[pc->a], v[pc->b]);
    }
    VMNEXT();
    VMCASE(kAsanCheck) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      asan_->CheckAccess(cpu, static_cast<uint32_t>(v[pc->a]),
                         static_cast<uint32_t>(pc->imm), pc->flag != 0);
    }
    VMNEXT();
    VMCASE(kMpxCheck) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      mpx_->BndCheck(cpu, bounds_or_init(pc->a), static_cast<uint32_t>(v[pc->a]),
                     static_cast<uint32_t>(pc->imm));
    }
    VMNEXT();
    VMCASE(kMpxLdx) {
      SGXB_STEP();
      SGXB_FLUSH();
      set_bounds(pc->a, mpx_->BndLdx(cpu, static_cast<uint32_t>(v[pc->b]),
                                     static_cast<uint32_t>(v[pc->a])));
    }
    VMNEXT();
    VMCASE(kMpxStx) {
      SGXB_STEP();
      SGXB_FLUSH();
      mpx_->BndStx(cpu, static_cast<uint32_t>(v[pc->b]), static_cast<uint32_t>(v[pc->a]),
                   bounds_or_init(pc->a));
    }
    VMNEXT();

    VMCASE(kGepSgxCheckLoad) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t g = v[pc->a] + v[pc->b] * static_cast<uint64_t>(pc->imm) +
                         static_cast<uint64_t>(pc->imm2);
      v[pc->c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      sgx_->CheckAccess(cpu, g, pc->aux,
                        pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      SGXB_FLUSH();
      ++loads;
      uint64_t raw = 0;
      enclave_->LoadBytes(cpu, static_cast<uint32_t>(g), &raw, pc->aux);
      v[pc->dst] = TruncateToType(pc->type, raw);
    }
    VMNEXT();
    VMCASE(kGepSgxCheckUpperLoad) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t g = v[pc->a] + v[pc->b] * static_cast<uint64_t>(pc->imm) +
                         static_cast<uint64_t>(pc->imm2);
      v[pc->c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      sgx_->CheckAccessUpperOnly(cpu, g, pc->aux,
                                 pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      SGXB_FLUSH();
      ++loads;
      uint64_t raw = 0;
      enclave_->LoadBytes(cpu, static_cast<uint32_t>(g), &raw, pc->aux);
      v[pc->dst] = TruncateToType(pc->type, raw);
    }
    VMNEXT();
    VMCASE(kGepSgxCheckStore) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t g = v[pc->a] + v[pc->b] * static_cast<uint64_t>(pc->imm) +
                         static_cast<uint64_t>(pc->imm2);
      v[pc->c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      sgx_->CheckAccess(cpu, g, pc->aux,
                        pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++stores;
      // v[dst] read after the gep writeback: a store of the pointer itself
      // observes the gep result, as in the reference.
      const uint64_t raw = TruncateToType(pc->type, v[pc->dst]);
      enclave_->StoreBytes(cpu, static_cast<uint32_t>(g), &raw, pc->aux);
    }
    VMNEXT();
    VMCASE(kGepSgxCheckUpperStore) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t g = v[pc->a] + v[pc->b] * static_cast<uint64_t>(pc->imm) +
                         static_cast<uint64_t>(pc->imm2);
      v[pc->c] = g;
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      sgx_->CheckAccessUpperOnly(cpu, g, pc->aux,
                                 pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++stores;
      const uint64_t raw = TruncateToType(pc->type, v[pc->dst]);
      enclave_->StoreBytes(cpu, static_cast<uint32_t>(g), &raw, pc->aux);
    }
    VMNEXT();

    // gep + maskptr [+ sgxcheck] + access quads: components step and charge
    // in reference order; the gep result t and the re-tagged pointer p are
    // both written back before the access, so a store of either value (or a
    // mid-quad trap) observes exactly the reference's state.
    VMCASE(kGepMaskLoad) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++loads;
      SGXB_FLUSH();
      uint64_t raw = 0;
      enclave_->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
      v[pc->dst] = TruncateToType(pc->type, raw);
    }
    VMNEXT();
    VMCASE(kGepMaskStore) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++stores;
      SGXB_FLUSH();
      const uint64_t raw = TruncateToType(pc->type, v[pc->dst]);
      enclave_->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
    }
    VMNEXT();
    VMCASE(kGepMaskSgxCheckLoad) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++checks;
      SGXB_FLUSH();
      sgx_->CheckAccess(cpu, p, pc->aux,
                        pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++loads;
      uint64_t raw = 0;
      enclave_->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
      v[pc->dst] = TruncateToType(pc->type, raw);
    }
    VMNEXT();
    VMCASE(kGepMaskSgxCheckUpperLoad) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++checks;
      SGXB_FLUSH();
      sgx_->CheckAccessUpperOnly(cpu, p, pc->aux,
                                 pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++loads;
      uint64_t raw = 0;
      enclave_->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
      v[pc->dst] = TruncateToType(pc->type, raw);
    }
    VMNEXT();
    VMCASE(kGepMaskSgxCheckStore) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++checks;
      SGXB_FLUSH();
      sgx_->CheckAccess(cpu, p, pc->aux,
                        pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++stores;
      const uint64_t raw = TruncateToType(pc->type, v[pc->dst]);
      enclave_->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
    }
    VMNEXT();
    VMCASE(kGepMaskSgxCheckUpperStore) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++checks;
      SGXB_FLUSH();
      sgx_->CheckAccessUpperOnly(cpu, p, pc->aux,
                                 pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++stores;
      const uint64_t raw = TruncateToType(pc->type, v[pc->dst]);
      enclave_->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
    }
    VMNEXT();

    VMCASE(kCallAbs64) {
      SGXB_STEP();
      ++pend_call;
      // Unsigned negate: -INT64_MIN is signed-overflow UB; 0 - ux wraps to
      // the same bit pattern the other engines produce.
      const uint64_t ux = v[pc->a];
      v[pc->dst] = static_cast<int64_t>(ux) < 0 ? 0 - ux : ux;
    }
    VMNEXT();
    VMCASE(kCallNop) {
      SGXB_STEP();
      ++pend_call;
      if (pc->dst != 0) {
        v[pc->dst] = 0;
      }
    }
    VMNEXT();

    VMCASE(kAllocaScheme) {
      SGXB_STEP();
      SGXB_FLUSH();
      v[pc->dst] = scheme_->IrAlloca(cpu, *stack_, static_cast<uint32_t>(pc->imm));
    }
    VMNEXT();
    VMCASE(kMallocScheme) {
      SGXB_STEP();
      SGXB_FLUSH();
      v[pc->dst] = scheme_->IrMalloc(cpu, static_cast<uint32_t>(v[pc->a]));
    }
    VMNEXT();
    VMCASE(kFreeScheme) {
      SGXB_STEP();
      SGXB_FLUSH();
      scheme_->IrFree(cpu, v[pc->a]);
    }
    VMNEXT();
    VMCASE(kSchemeCheck) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      scheme_->IrCheck(cpu, v[pc->a], static_cast<uint32_t>(pc->imm),
                       pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
    }
    VMNEXT();
    VMCASE(kSchemeCheckRange) {
      SGXB_STEP();
      SGXB_FLUSH();
      ++checks;
      scheme_->IrCheckRange(cpu, v[pc->a], v[pc->b]);
    }
    VMNEXT();
    VMCASE(kGepMaskSchemeCheckLoad) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++checks;
      SGXB_FLUSH();
      scheme_->IrCheck(cpu, p, pc->aux,
                       pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++loads;
      uint64_t raw = 0;
      enclave_->LoadBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
      v[pc->dst] = TruncateToType(pc->type, raw);
    }
    VMNEXT();
    VMCASE(kGepMaskSchemeCheckStore) {
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t packed = static_cast<uint64_t>(pc->imm);
      const uint64_t t =
          v[pc->a] + v[pc->b] * (packed >> 32) + (packed & 0xffffffffULL);
      v[pc->c] = t;
      SGXB_STEP();
      pend_alu += 2;
      const uint64_t p = (v[pc->a] & 0xffffffff00000000ULL) | (t & 0xffffffffULL);
      v[static_cast<uint32_t>(pc->imm2)] = p;
      SGXB_STEP();
      ++checks;
      SGXB_FLUSH();
      scheme_->IrCheck(cpu, p, pc->aux,
                       pc->flag != 0 ? AccessType::kWrite : AccessType::kRead);
      SGXB_STEP();
      ++stores;
      const uint64_t raw = TruncateToType(pc->type, v[pc->dst]);
      enclave_->StoreBytes(cpu, static_cast<uint32_t>(p), &raw, pc->aux);
    }
    VMNEXT();

#if !SGXB_IR_COMPUTED_GOTO
        case UOp::kCount:
          FATAL("invalid micro-op");
      }
    }
#endif
#undef VMCASE
#undef VMNEXT
#undef VMJUMP
#undef SGXB_STEP
  } catch (...) {
    SGXB_FLUSH();
    stats_.steps = steps;
    stats_.loads = loads;
    stats_.stores = stores;
    stats_.checks = checks;
    stack_->PopFrame(frame);
    throw;
  }
#undef SGXB_FLUSH
  FATAL("decoded program fell off the end");
}

}  // namespace sgxb
