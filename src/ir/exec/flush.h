// Batched pure-compute charge flushing, shared by the direct-threaded engine
// (engine.cc) and the JIT helper thunks (jit/runtime.cc).
//
// Both engines accumulate Alu/Branch/Call charges in plain counters and flush
// them just before every observable point (memory access, runtime call, trap,
// return). Keeping the flush in one function is what guarantees the two
// engines charge the Cpu in exactly the same chunk sequence - any cycle stamp
// the simulation records is identical to the reference interpreter's, which
// charges per instruction.

#ifndef SGXBOUNDS_SRC_IR_EXEC_FLUSH_H_
#define SGXBOUNDS_SRC_IR_EXEC_FLUSH_H_

#include <cstdint>

#include "src/sim/machine.h"

namespace sgxb {

inline void FlushPending(Cpu& cpu, uint64_t& pend_alu, uint64_t& pend_branch,
                         uint64_t& pend_call) {
  while (pend_alu > 0) {
    const uint32_t n =
        pend_alu > 0x40000000 ? 0x40000000u : static_cast<uint32_t>(pend_alu);
    cpu.Alu(n);
    pend_alu -= n;
  }
  while (pend_branch > 0) {
    const uint32_t n =
        pend_branch > 0x40000000 ? 0x40000000u : static_cast<uint32_t>(pend_branch);
    cpu.Branch(n);
    pend_branch -= n;
  }
  for (; pend_call > 0; --pend_call) {
    cpu.Call();
  }
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_FLUSH_H_
