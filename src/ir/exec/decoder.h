// Lowers an IrFunction into the flat micro-op form executed by the
// direct-threaded engine (see uop.h for the representation contract).

#ifndef SGXBOUNDS_SRC_IR_EXEC_DECODER_H_
#define SGXBOUNDS_SRC_IR_EXEC_DECODER_H_

#include "src/ir/exec/uop.h"

namespace sgxb {

// One-shot lowering: resolves operands to slots, compiles phis into edge
// copies, fuses superinstructions. FATALs on structurally invalid functions
// (missing terminator, non-leading phi) - the same programs the reference
// interpreter FATALs/CHECKs on.
DecodedFunction DecodeFunction(const IrFunction& fn, const DecodeOptions& options = {});

// Structural FNV-1a hash over the function body; the decode-cache key. Two
// differently-instrumented copies of the same source hash differently, so a
// (function, policy-instrumentation) pair decodes exactly once.
uint64_t HashIrFunction(const IrFunction& fn);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EXEC_DECODER_H_
