#include "src/ir/interp.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/ir/eval.h"
#include "src/ir/exec/jit/code_buffer.h"

namespace sgxb {

Interpreter::Interpreter(Enclave* enclave, Heap* heap, StackAllocator* stack)
    : enclave_(enclave), heap_(heap), stack_(stack) {}

uint64_t Interpreter::Run(const IrFunction& fn, Cpu& cpu, const std::vector<uint64_t>& args,
                          uint64_t max_steps) {
  const IrEngine engine = ResolveIrEngine(engine_);
  if (engine == IrEngine::kReference) {
    return RunReference(fn, cpu, args, max_steps);
  }
  const DecodeOptions opts{/*track_mpx=*/mpx_ != nullptr, /*fuse=*/true};
  const DecodedFunction& df = cache_.Get(fn, opts);
  if (engine == IrEngine::kJit) {
    const jit::JitProgram* jp =
        jit::JitExecutableAvailable() ? jit_cache_.Get(fn, df, opts) : nullptr;
    if (jp != nullptr) {
      return RunJit(*jp, cpu, args, max_steps);
    }
    // JIT unavailable (non-x86-64 host, sandbox denying PROT_EXEC,
    // SGXB_IR_FORCE_NOEXEC, mmap failure): degrade to the threaded engine -
    // identical simulated results, slower host execution. Warn once per
    // process, not per call.
    GlobalIrExecStats().jit_noexec_fallbacks.fetch_add(1, std::memory_order_relaxed);
    static const bool warned = [] {
      std::fprintf(stderr,
                   "[ir_engine] warning: jit requested but unavailable on this "
                   "host (non-x86-64 or executable memory denied); falling "
                   "back to the threaded engine\n");
      return true;
    }();
    (void)warned;
  }
  return RunDecoded(df, cpu, args, max_steps);
}

uint64_t Interpreter::RunReference(const IrFunction& fn, Cpu& cpu,
                                   const std::vector<uint64_t>& args, uint64_t max_steps) {
  values_.assign(fn.num_values, 0);
  auto& values = values_;
  if (mpx_ != nullptr) {
    mpx_bounds_.assign(fn.num_values, MpxBounds{});
    mpx_valid_.assign(fn.num_values, 0);
  }

  const uint32_t frame = stack_->PushFrame();
  uint32_t block = 0;
  uint32_t prev_block = ~0u;
  uint64_t ret = 0;

  auto addr_of = [](uint64_t v) { return static_cast<uint32_t>(v); };
  auto set_bounds = [this](ValueId id, const MpxBounds& b) {
    mpx_bounds_[id] = b;
    mpx_valid_[id] = 1;
  };
  // Propagates bounds from src to dst iff src is tracked (untracked pointers
  // stay untracked, matching the erased-map semantics).
  auto copy_bounds = [this](ValueId dst, ValueId src) {
    if (mpx_valid_[src]) {
      mpx_bounds_[dst] = mpx_bounds_[src];
      mpx_valid_[dst] = 1;
    }
  };
  auto bounds_or_init = [this](ValueId id) {
    return mpx_valid_[id] ? mpx_bounds_[id] : MpxBounds{};
  };

  try {
    for (;;) {
      const IrBlock& bb = fn.blocks[block];
      // Phase 1: evaluate phis against predecessor values.
      size_t i = 0;
      if (prev_block != ~0u && !bb.preds.empty()) {
        size_t pred_index = 0;
        for (size_t p = 0; p < bb.preds.size(); ++p) {
          if (bb.preds[p] == prev_block) {
            pred_index = p;
            break;
          }
        }
        phi_scratch_.clear();
        for (; i < bb.instrs.size() && bb.instrs[i].op == IrOp::kPhi; ++i) {
          const IrInstr& phi = bb.instrs[i];
          phi_scratch_.emplace_back(phi.id, values[phi.args[pred_index]]);
          if (mpx_ != nullptr) {
            copy_bounds(phi.id, phi.args[pred_index]);
          }
        }
        for (const auto& [id, v] : phi_scratch_) {
          values[id] = v;
        }
      } else {
        while (i < bb.instrs.size() && bb.instrs[i].op == IrOp::kPhi) {
          ++i;
        }
      }

      // Phase 2: straight-line execution.
      bool jumped = false;
      for (; i < bb.instrs.size(); ++i) {
        const IrInstr& in = bb.instrs[i];
        if (++stats_.steps > max_steps) {
          throw SimTrap(TrapKind::kIllegalInstruction, 0, "interpreter step limit exceeded");
        }
        switch (in.op) {
          case IrOp::kConst:
            values[in.id] = static_cast<uint64_t>(in.imm);
            break;
          case IrOp::kArg:
            values[in.id] = in.imm >= 0 && in.imm < static_cast<int64_t>(args.size())
                                ? args[static_cast<size_t>(in.imm)]
                                : 0;
            break;
          case IrOp::kAdd:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] + values[in.args[1]];
            break;
          case IrOp::kSub:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] - values[in.args[1]];
            break;
          case IrOp::kMul:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] * values[in.args[1]];
            break;
          case IrOp::kUDiv:
            cpu.Alu(1);
            values[in.id] =
                values[in.args[1]] == 0 ? 0 : values[in.args[0]] / values[in.args[1]];
            break;
          case IrOp::kURem:
            cpu.Alu(1);
            values[in.id] =
                values[in.args[1]] == 0 ? 0 : values[in.args[0]] % values[in.args[1]];
            break;
          case IrOp::kAnd:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] & values[in.args[1]];
            break;
          case IrOp::kOr:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] | values[in.args[1]];
            break;
          case IrOp::kXor:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] ^ values[in.args[1]];
            break;
          case IrOp::kShl:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] << (values[in.args[1]] & 63);
            break;
          case IrOp::kLShr:
            cpu.Alu(1);
            values[in.id] = values[in.args[0]] >> (values[in.args[1]] & 63);
            break;
          case IrOp::kICmp:
            cpu.Alu(1);
            values[in.id] =
                EvalCmp(static_cast<IrCmp>(in.imm), values[in.args[0]], values[in.args[1]])
                    ? 1
                    : 0;
            break;
          case IrOp::kBr:
            cpu.Branch();
            prev_block = block;
            block = static_cast<uint32_t>(in.imm);
            jumped = true;
            break;
          case IrOp::kCondBr:
            cpu.Branch();
            prev_block = block;
            block = values[in.args[0]] != 0 ? static_cast<uint32_t>(in.imm)
                                            : static_cast<uint32_t>(in.imm2);
            jumped = true;
            break;
          case IrOp::kRet:
            if (!in.args.empty()) {
              ret = values[in.args[0]];
            }
            stack_->PopFrame(frame);
            return ret;
          case IrOp::kAlloca: {
            const uint32_t size = static_cast<uint32_t>(in.imm);
            if (in.symbol == "sgx") {
              const uint32_t base = stack_->Alloca(cpu, size + sgx_->FooterBytes());
              values[in.id] = sgx_->SpecifyBounds(cpu, base, base + size, ObjKind::kStack);
            } else if (in.symbol == "asan") {
              const uint32_t rz = asan_->RedzoneFor(size);
              const uint32_t base = stack_->Alloca(cpu, size + 2 * rz, 16);
              asan_->RegisterObject(cpu, base + rz, size, AsanRuntime::kShadowStackRedzone);
              values[in.id] = base + rz;
            } else if (in.symbol == "scheme") {
              values[in.id] = scheme_->IrAlloca(cpu, *stack_, size);
            } else {
              values[in.id] = stack_->Alloca(cpu, size);
              if (mpx_ != nullptr) {
                set_bounds(in.id, mpx_->BndMk(cpu, addr_of(values[in.id]), size));
              }
            }
            break;
          }
          case IrOp::kMalloc: {
            const uint32_t size = static_cast<uint32_t>(values[in.args[0]]);
            if (in.symbol == "sgx") {
              values[in.id] = sgx_->Malloc(cpu, size);
            } else if (in.symbol == "asan") {
              values[in.id] = asan_->Malloc(cpu, size);
            } else if (in.symbol == "scheme") {
              values[in.id] = scheme_->IrMalloc(cpu, size);
            } else {
              values[in.id] = heap_->Alloc(cpu, size);
              if (mpx_ != nullptr) {
                set_bounds(in.id, mpx_->BndMk(cpu, addr_of(values[in.id]), size));
              }
            }
            break;
          }
          case IrOp::kFree:
            if (in.symbol == "sgx") {
              sgx_->Free(cpu, values[in.args[0]]);
            } else if (in.symbol == "asan") {
              asan_->Free(cpu, addr_of(values[in.args[0]]));
            } else if (in.symbol == "scheme") {
              scheme_->IrFree(cpu, values[in.args[0]]);
            } else {
              heap_->Free(cpu, addr_of(values[in.args[0]]));
            }
            break;
          case IrOp::kGep: {
            cpu.Alu(2);
            values[in.id] = values[in.args[0]] +
                            values[in.args[1]] * static_cast<uint64_t>(in.imm) +
                            static_cast<uint64_t>(in.imm2);
            if (mpx_ != nullptr) {
              copy_bounds(in.id, in.args[0]);
            }
            break;
          }
          case IrOp::kMaskPtr: {
            // tagged = (UB of original) | (low 32 of arithmetic result).
            cpu.Alu(2);
            values[in.id] = (values[in.args[1]] & 0xffffffff00000000ULL) |
                            (values[in.args[0]] & 0xffffffffULL);
            break;
          }
          case IrOp::kLoad: {
            ++stats_.loads;
            const uint32_t addr = addr_of(values[in.args[0]]);
            const uint32_t size = IrTypeSize(in.type);
            uint64_t raw = 0;
            enclave_->LoadBytes(cpu, addr, &raw, size);
            values[in.id] = TruncateToType(in.type, raw);
            break;
          }
          case IrOp::kStore: {
            ++stats_.stores;
            const uint32_t addr = addr_of(values[in.args[1]]);
            const uint32_t size = IrTypeSize(in.type);
            const uint64_t raw = TruncateToType(in.type, values[in.args[0]]);
            enclave_->StoreBytes(cpu, addr, &raw, size);
            break;
          }
          case IrOp::kSgxCheck: {
            ++stats_.checks;
            sgx_->CheckAccess(cpu, values[in.args[0]], static_cast<uint32_t>(in.imm),
                              in.imm2 != 0 ? AccessType::kWrite : AccessType::kRead);
            break;
          }
          case IrOp::kSgxCheckUpper: {
            ++stats_.checks;
            sgx_->CheckAccessUpperOnly(cpu, values[in.args[0]], static_cast<uint32_t>(in.imm),
                                       in.imm2 != 0 ? AccessType::kWrite : AccessType::kRead);
            break;
          }
          case IrOp::kSgxCheckRange: {
            ++stats_.checks;
            sgx_->CheckRange(cpu, values[in.args[0]], values[in.args[1]]);
            break;
          }
          case IrOp::kAsanCheck: {
            ++stats_.checks;
            asan_->CheckAccess(cpu, addr_of(values[in.args[0]]),
                               static_cast<uint32_t>(in.imm), in.imm2 != 0);
            break;
          }
          case IrOp::kMpxCheck: {
            ++stats_.checks;
            mpx_->BndCheck(cpu, bounds_or_init(in.args[0]), addr_of(values[in.args[0]]),
                           static_cast<uint32_t>(in.imm));
            break;
          }
          case IrOp::kSchemeCheck: {
            ++stats_.checks;
            scheme_->IrCheck(cpu, values[in.args[0]], static_cast<uint32_t>(in.imm),
                             in.imm2 != 0 ? AccessType::kWrite : AccessType::kRead);
            break;
          }
          case IrOp::kSchemeCheckRange: {
            ++stats_.checks;
            scheme_->IrCheckRange(cpu, values[in.args[0]], values[in.args[1]]);
            break;
          }
          case IrOp::kMpxLdx: {
            set_bounds(in.args[0], mpx_->BndLdx(cpu, addr_of(values[in.args[1]]),
                                                addr_of(values[in.args[0]])));
            break;
          }
          case IrOp::kMpxStx: {
            mpx_->BndStx(cpu, addr_of(values[in.args[1]]), addr_of(values[in.args[0]]),
                         bounds_or_init(in.args[0]));
            break;
          }
          case IrOp::kCall: {
            cpu.Call();
            // Builtin runtime symbols; unknown symbols are no-ops returning 0
            // (external functions are out of scope for the mini IR).
            if (in.symbol == "abs64" && !in.args.empty()) {
              // Unsigned negate: -INT64_MIN is signed-overflow UB; 0 - ux
              // wraps to the same bit pattern the other engines produce.
              const uint64_t ux = values[in.args[0]];
              values[in.id] = static_cast<int64_t>(ux) < 0 ? 0 - ux : ux;
            } else if (in.id != 0) {
              values[in.id] = 0;
            }
            break;
          }
          case IrOp::kPhi:
            FATAL("phi reached in straight-line phase");
        }
        if (jumped) {
          break;
        }
      }
      CHECK(jumped);
    }
  } catch (...) {
    stack_->PopFrame(frame);
    throw;
  }
}

}  // namespace sgxb
